// Preemption contrasts the paper's two scheduler templates (the
// non-preemptive Fig. 4 automaton and the preemptive Fig. 5 automaton with
// its dynamic deadline D) on a two-application system, and mechanically
// verifies the side condition the paper highlights: the preemption
// accumulator D stays bounded, so model checking remains possible.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ta"
)

func build(sched arch.SchedKind) (*arch.System, *arch.Requirement, *arch.Requirement) {
	sys := arch.NewSystem("preemption")
	cpu := sys.AddProcessor("CPU", 10, sched)
	urgent := sys.AddScenario("urgent", 2, arch.PeriodicUnknownOffset(arch.MS(20, 1)))
	urgent.Compute("isr", cpu, 50000) // 5 ms
	bulk := sys.AddScenario("bulk", 1, arch.PeriodicUnknownOffset(arch.MS(50, 1)))
	bulk.Compute("batch", cpu, 200000) // 20 ms
	return sys, arch.EndToEnd("urgent", urgent), arch.EndToEnd("bulk", bulk)
}

func main() {
	for _, sched := range []arch.SchedKind{arch.SchedNondet, arch.SchedFP, arch.SchedFPPreempt} {
		sys, urgentReq, bulkReq := build(sched)
		fmt.Printf("scheduler: %v\n", sched)
		for _, req := range []*arch.Requirement{urgentReq, bulkReq} {
			res, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 500}, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s WCRT = %s ms\n", req.Name, res)
		}
	}

	// The paper warns that D must provably stay finite. Compile the
	// preemptive model and check AG(D <= isr-budget) mechanically.
	sys, urgentReq, _ := build(arch.SchedFPPreempt)
	compiled, err := arch.Compile(sys, urgentReq, arch.Options{HorizonMS: 500})
	if err != nil {
		log.Fatal(err)
	}
	dIdx := -1
	for i, v := range compiled.Net.Vars {
		if v.Name == "CPU.D" {
			dIdx = i
			break
		}
	}
	if dIdx < 0 {
		log.Fatal("compiled model has no preemption accumulator")
	}
	checker, err := core.NewChecker(compiled.Net)
	if err != nil {
		log.Fatal(err)
	}
	// One 20ms batch can be hit by at most two 5ms preemptions before it
	// completes: D never exceeds 20 + 2*5 = 30 ms.
	scale := compiled.Scale.Int64()
	bound := 30 * scale
	res, err := checker.CheckSafety(core.Property{
		Desc:  "preemption accumulator bounded",
		Holds: func(s *core.State) bool { return s.Vars[dIdx] <= bound },
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAG(D <= 30ms): %v  (%s)\n", res.Holds, res.Stats)
	if !res.Holds {
		fmt.Println(core.FormatTrace(compiled.Net, res.Counterexample))
	}
	_ = ta.NoSync // keep the low-level package visible to readers
}
