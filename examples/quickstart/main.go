// Quickstart: build a small network of timed automata with the low-level ta
// API — the paper's Fig. 4 pattern of a hardware server fed by a periodic
// environment — and compute a worst-case response time with the zone-based
// model checker, both as a single-pass clock supremum and with the paper's
// binary-search methodology (Property 1).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ta"
)

func main() {
	net := ta.NewNetwork("quickstart")

	// Clocks: the generator's period clock, the server's execution clock,
	// and the observer's response-time clock.
	gx := net.AddClock("gx")
	sx := net.AddClock("sx")
	y := net.AddClock("y")
	net.EnsureMaxConst(y.ID, 100) // observation horizon for y

	// A shared counter holds pending requests (the paper's "rec" variable),
	// and the urgent "hurry" channel makes dispatching greedy.
	rec := net.AddVar("rec", 0, 0, 4)
	hurry := net.AddChan("hurry", ta.BroadcastUrgent)
	done := net.AddChan("done", ta.Broadcast)

	// Environment (Fig. 7a): strictly periodic events, period 10, offset 0.
	gen := net.AddProcess("GEN")
	g0 := gen.AddLocation("tick", ta.Normal, ta.CLE(gx, 10))
	gen.AddEdge(ta.Edge{
		Src: g0, Dst: g0,
		ClockGuard: ta.CEq(gx, 10),
		Resets:     []ta.Reset{{Clock: gx.ID, Value: 0}},
		Update:     ta.Inc(rec, 1),
	})

	// Server (Fig. 4): idle until a request is pending, then busy for
	// exactly 3 time units.
	srv := net.AddProcess("SRV")
	idle := srv.AddLocation("idle", ta.Normal)
	busy := srv.AddLocation("busy", ta.Normal, ta.CLE(sx, 3))
	srv.AddEdge(ta.Edge{
		Src: idle, Dst: busy,
		Guard:  ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Resets: []ta.Reset{{Clock: sx.ID, Value: 0}},
		Update: ta.Inc(rec, -1),
	})
	srv.AddEdge(ta.Edge{
		Src: busy, Dst: idle,
		ClockGuard: ta.CEq(sx, 3),
		Sync:       ta.Sync{Chan: done.ID, Dir: ta.Emit},
	})

	// Observer: y is reset on each generator tick; to keep the quickstart
	// small we measure the interval from dispatch to completion instead of
	// the full Fig. 9 machinery (internal/arch generates that for you).
	obs := net.AddProcess("OBS")
	watch := obs.AddLocation("watch", ta.Normal)
	seen := obs.AddLocation("seen", ta.Committed)
	obs.AddEdge(ta.Edge{Src: watch, Dst: seen, Sync: ta.Sync{Chan: done.ID, Dir: ta.Recv}})
	obs.AddEdge(ta.Edge{Src: seen, Dst: watch, Resets: []ta.Reset{{Clock: y.ID, Value: 0}}})

	if err := net.Finalize(); err != nil {
		log.Fatal(err)
	}

	checker, err := core.NewChecker(net)
	if err != nil {
		log.Fatal(err)
	}
	atSeen := func(s *core.State) bool { return s.Locs[2] == seen }

	// One-pass supremum of y over all completion instants.
	sup, err := checker.SupClock(y.ID, atSeen, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sup of y at completion: %v  (%s)\n", sup.Max, sup.Stats)

	// The paper's methodology: binary search for the least C with
	// AG(seen -> y < C).
	bs, err := checker.BinarySearchWCRT(y.ID, atSeen, 0, 100, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary search: AG(seen -> y < C) first holds at C = %d (%d runs)\n",
		bs.MinimalC, bs.Iterations)

	// Safety: requests never queue (the server keeps up with the load).
	sr, err := checker.CheckSafety(core.Property{
		Desc:  "no queueing",
		Holds: func(s *core.State) bool { return s.Vars[rec.ID] <= 1 },
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AG(rec <= 1): %v  (%s)\n", sr.Holds, sr.Stats)
}
