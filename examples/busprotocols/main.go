// Busprotocols explores the paper's Section 3.2 observation: because the
// hardware automata interface to the bus only through shared counters, the
// bus arbitration can be swapped without touching anything else. We compare
// three bus disciplines on the case study — the nondeterministic Fig. 6 bus,
// a fixed-priority non-preemptive bus (RS-485 style), and the idealized
// preemptive priority bus — and report the exact WCRT of both applications.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/icrns"
)

func main() {
	buses := []struct {
		name  string
		sched arch.SchedKind
	}{
		{"nondeterministic (Fig. 6)", arch.SchedNondet},
		{"fixed-priority, non-preemptive", arch.SchedFP},
		{"fixed-priority, preemptive (idealized)", arch.SchedFPPreempt},
	}
	for _, b := range buses {
		cfg := icrns.DefaultConfig()
		cfg.Bus = b.sched
		fmt.Printf("bus: %s\n", b.name)
		for _, req := range []string{icrns.ReqHandleTMC, icrns.ReqAddressLookup} {
			sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPNO, cfg)
			start := time.Now()
			res, err := arch.AnalyzeWCRT(sys, reqs[req],
				arch.Options{HorizonMS: icrns.HorizonMS(req)},
				core.Options{MaxStates: 2_000_000})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s WCRT = %s ms  (%d states, %v)\n",
				req, res, res.Stats.Stored, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Println("\nThe AddressLookup bound grows by one bulk transfer (7.111 ms) as")
	fmt.Println("soon as TMC messages can block priority messages; with TMC traffic")
	fmt.Println("this sparse, nondeterministic arbitration happens to coincide with")
	fmt.Println("fixed priority — the exact analysis tells these protocols apart")
	fmt.Println("for free, the paper's argument for swapping bus automata.")
}
