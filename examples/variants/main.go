// Variants performs the design-space exploration that motivates the paper
// (and its companion MPA case study): the same three applications are
// deployed on alternative hardware architectures, and the exact WCRTs decide
// which architecture meets the timeliness requirements at the lowest cost.
//
// Variant A is the paper's Figure 1 (three processors, one 72 kbit/s bus).
// Variant B merges the radio onto the navigation processor (two CPUs).
// Variant C additionally doubles the bus speed.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
)

type variant struct {
	name  string
	build func() (*arch.System, map[string]*arch.Requirement)
}

// scenarios wires the three applications onto the given resources.
func scenarios(sys *arch.System, mmi, nav, rad *arch.Processor, bus *arch.Bus) map[string]*arch.Requirement {
	tmc := sys.AddScenario("TMC", 1, arch.PeriodicUnknownOffset(arch.MS(3000, 1)))
	tmc.Compute("HandleTMC", rad, 1_000_000).
		Transfer("TMCtoNAV", bus, 64).
		Compute("DecodeTMC", nav, 5_000_000).
		Transfer("TMCtoMMI", bus, 64).
		Compute("UpdateScreen", mmi, 500_000)
	al := sys.AddScenario("AL", 2, arch.PeriodicUnknownOffset(arch.MS(1000, 1)))
	al.Compute("HandleKeyPress", mmi, 100_000).
		Transfer("LookupReq", bus, 4).
		Compute("DatabaseLookup", nav, 5_000_000).
		Transfer("LookupResp", bus, 64).
		Compute("UpdateScreen", mmi, 500_000)
	return map[string]*arch.Requirement{
		"TMC": arch.EndToEnd("TMC", tmc),
		"AL":  arch.EndToEnd("AL", al),
	}
}

func main() {
	variants := []variant{
		{"A: MMI(22) NAV(113) RAD(11), bus 72k (Figure 1)", func() (*arch.System, map[string]*arch.Requirement) {
			sys := arch.NewSystem("A")
			mmi := sys.AddProcessor("MMI", 22, arch.SchedFPPreempt)
			nav := sys.AddProcessor("NAV", 113, arch.SchedFPPreempt)
			rad := sys.AddProcessor("RAD", 11, arch.SchedFPPreempt)
			bus := sys.AddBus("BUS", 72, arch.SchedFPPreempt)
			return sys, scenarios(sys, mmi, nav, rad, bus)
		}},
		{"B: radio folded into NAV (two CPUs)", func() (*arch.System, map[string]*arch.Requirement) {
			sys := arch.NewSystem("B")
			mmi := sys.AddProcessor("MMI", 22, arch.SchedFPPreempt)
			nav := sys.AddProcessor("NAV", 113, arch.SchedFPPreempt)
			bus := sys.AddBus("BUS", 72, arch.SchedFPPreempt)
			// HandleTMC now competes with DecodeTMC and DatabaseLookup on NAV.
			return sys, scenarios(sys, mmi, nav, nav, bus)
		}},
		{"C: variant B with a 144 kbit/s bus", func() (*arch.System, map[string]*arch.Requirement) {
			sys := arch.NewSystem("C")
			mmi := sys.AddProcessor("MMI", 22, arch.SchedFPPreempt)
			nav := sys.AddProcessor("NAV", 113, arch.SchedFPPreempt)
			bus := sys.AddBus("BUS", 144, arch.SchedFPPreempt)
			return sys, scenarios(sys, mmi, nav, nav, bus)
		}},
	}
	fmt.Printf("%-50s %-14s %-14s\n", "architecture", "TMC WCRT (ms)", "AL WCRT (ms)")
	for _, v := range variants {
		sys, reqs := v.build()
		row := fmt.Sprintf("%-50s", v.name)
		for _, name := range []string{"TMC", "AL"} {
			res, err := arch.AnalyzeWCRT(sys, reqs[name],
				arch.Options{HorizonMS: 1500}, core.Options{Workers: 2})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %-14s", res)
		}
		fmt.Println(row)
	}
	fmt.Println("\nFolding the radio into the navigation CPU removes a processor but")
	fmt.Println("runs HandleTMC at 113 MIPS; the exact analysis quantifies what each")
	fmt.Println("architecture buys — the decision support the paper's introduction")
	fmt.Println("argues early-phase performance models must provide.")
}
