// Radionav reproduces selected cells of the paper's Table 1 on the in-car
// radio navigation case study (Figures 1-3): the HandleTMC and AddressLookup
// requirements under synchronous (po) and asynchronous (pno) environments,
// using the high-level architecture API and the exact model checker.
//
// Expected output (paper values in parentheses):
//
//	HandleTMC (+ AddressLookup)  po  = 172.106 (172.106)
//	HandleTMC (+ AddressLookup)  pno = 239.081 (239.080, truncated print)
//	AddressLookup (+ HandleTMC)  po  = 79.076  (79.075, truncated print)
//	AddressLookup (+ HandleTMC)  pno = 79.076
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/icrns"
)

func main() {
	cells := []struct {
		row   icrns.Row
		col   icrns.Column
		paper string
	}{
		{icrns.Table1Rows[1], icrns.ColPO, "172.106"},
		{icrns.Table1Rows[1], icrns.ColPNO, "239.080"},
		{icrns.Table1Rows[4], icrns.ColPO, "79.075"},
		{icrns.Table1Rows[4], icrns.ColPNO, "79.075"},
	}
	opts := icrns.CellOptions{Cfg: icrns.DefaultConfig(), MaxStates: 2_000_000}
	for _, c := range cells {
		start := time.Now()
		res, err := icrns.Cell(c.row, c.col, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %-16v = %s ms   paper: %s   (%d states, %v)\n",
			c.row.Label, c.col, res, c.paper,
			res.Stats.Stored, time.Since(start).Round(time.Millisecond))
	}
}
