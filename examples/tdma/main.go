// Tdma demonstrates the time-division bus extension (the protocol family the
// paper's Section 3.2 points to via the templates of Perathoner et al.).
//
// The demonstrated property is composability: under TDMA, each stream's
// worst-case response time is completely independent of the other stream's
// load, whereas on a shared fixed-priority bus the low-priority stream's
// bound degrades as the high-priority stream's rate grows. (With short
// transfers a fixed-priority bus often yields the smaller absolute bounds —
// the slot granularity is the price of isolation, which the numbers below
// also show.)
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
)

// build assembles the system: a control stream with the given period and a
// bulk stream, sharing one 8 kbit/s bus (1 byte = 1 ms).
func build(tdma bool, ctrlArrival arch.EventModel) (*arch.System, *arch.Requirement, *arch.Requirement) {
	sys := arch.NewSystem("tdma-demo")
	sched := arch.SchedFP
	if tdma {
		sched = arch.SchedTDMA
	}
	bus := sys.AddBus("BUS", 8, sched)

	ctrl := sys.AddScenario("control", 2, ctrlArrival)
	ctrl.Transfer("cmd", bus, 2)
	bulk := sys.AddScenario("bulk", 1, arch.Sporadic(arch.MS(30, 1)))
	bulk.Transfer("chunk", bus, 6)

	if tdma {
		bus.TDMA = &arch.TDMAConfig{
			CycleMS: arch.MS(10, 1),
			Slots: []arch.TDMASlot{
				{Scenario: ctrl, StartMS: arch.MS(0, 1), EndMS: arch.MS(3, 1)},
				{Scenario: bulk, StartMS: arch.MS(3, 1), EndMS: arch.MS(10, 1)},
			},
		}
	}
	return sys, arch.EndToEnd("control", ctrl), arch.EndToEnd("bulk", bulk)
}

func wcrt(sys *arch.System, req *arch.Requirement) string {
	res, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 300}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return res.String()
}

func main() {
	fmt.Println("bulk stream's WCRT as the control stream gets burstier:")
	fmt.Printf("%-36s %-16s %-16s\n", "control arrival", "FP bus", "TDMA bus")
	for _, ctrl := range []arch.EventModel{
		arch.Sporadic(arch.MS(12, 1)),
		arch.PeriodicJitter(arch.MS(12, 1), arch.MS(12, 1)),
		arch.Bursty(arch.MS(12, 1), arch.MS(36, 1), arch.MS(0, 1)),
	} {
		sysFP, _, bulkFP := build(false, ctrl)
		sysTD, _, bulkTD := build(true, ctrl)
		fmt.Printf("%-36v %-16s %-16s\n", ctrl, wcrt(sysFP, bulkFP), wcrt(sysTD, bulkTD))
	}
	fmt.Println()
	sysFP, ctrlFP, _ := build(false, arch.Sporadic(arch.MS(12, 1)))
	sysTD, ctrlTD, _ := build(true, arch.Sporadic(arch.MS(12, 1)))
	fmt.Printf("control stream: FP bus %s ms, TDMA bus %s ms\n",
		wcrt(sysFP, ctrlFP), wcrt(sysTD, ctrlTD))
	fmt.Println()
	fmt.Println("Under TDMA the bulk bound is constant — its slot is dedicated, so")
	fmt.Println("the control stream's rate is irrelevant (composability). On the")
	fmt.Println("fixed-priority bus the bulk bound degrades with control load, while")
	fmt.Println("absolute bounds are smaller as long as the interference is light —")
	fmt.Println("the slot granularity is the price of isolation.")
}
