// Package repro_test benches the reproduction of every table and figure of
// Hendriks & Verhoef, "Timed Automata Based Analysis of Embedded System
// Architectures" (IPPS 2006).
//
// Table 1 benches regenerate WCRT cells with the exact zone-based model
// checker (expensive ChangeVolume cells run with a state budget, mirroring
// the paper's own df/rdf fallback). Table 2 benches run the four competing
// engines on the same row. Figure benches exercise the automaton templates
// of Figs. 4-9 through compilation and exhaustive exploration. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/icrns"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/symta"
)

// benchCell runs one Table 1 cell per iteration and reports the value and
// exploration size as metrics.
func benchCell(b *testing.B, row icrns.Row, col icrns.Column, budget int) {
	b.Helper()
	// Always report allocations: the CI bench gate (scripts/benchgate.go)
	// holds the exact Table 1 cells to an exact allocs/op ceiling, and the
	// sequential engine with a fixed seed makes the count deterministic.
	b.ReportAllocs()
	opts := icrns.CellOptions{
		Cfg: icrns.DefaultConfig(), MaxStates: budget, FallbackStates: budget, Seed: 1,
	}
	var res arch.WCRTResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = icrns.Cell(row, col, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	ms, _ := res.MS.Float64()
	b.ReportMetric(ms, "wcrt_ms")
	b.ReportMetric(float64(res.Stats.Stored), "states")
}

// --- Table 1: five requirements × five event models ---

func BenchmarkTable1_HandleTMC_CV_po(b *testing.B) {
	benchCell(b, icrns.Table1Rows[0], icrns.ColPO, 120_000)
}
func BenchmarkTable1_HandleTMC_CV_pno(b *testing.B) {
	benchCell(b, icrns.Table1Rows[0], icrns.ColPNO, 120_000)
}
func BenchmarkTable1_HandleTMC_CV_sp(b *testing.B) {
	benchCell(b, icrns.Table1Rows[0], icrns.ColSP, 120_000)
}
func BenchmarkTable1_HandleTMC_CV_pj(b *testing.B) {
	benchCell(b, icrns.Table1Rows[0], icrns.ColPJ, 120_000)
}
func BenchmarkTable1_HandleTMC_CV_bur(b *testing.B) {
	benchCell(b, icrns.Table1Rows[0], icrns.ColBUR, 120_000)
}

func BenchmarkTable1_HandleTMC_AL_po(b *testing.B) { benchCell(b, icrns.Table1Rows[1], icrns.ColPO, 0) }
func BenchmarkTable1_HandleTMC_AL_pno(b *testing.B) {
	benchCell(b, icrns.Table1Rows[1], icrns.ColPNO, 0)
}
func BenchmarkTable1_HandleTMC_AL_sp(b *testing.B) {
	benchCell(b, icrns.Table1Rows[1], icrns.ColSP, 120_000)
}
func BenchmarkTable1_HandleTMC_AL_pj(b *testing.B) {
	benchCell(b, icrns.Table1Rows[1], icrns.ColPJ, 120_000)
}
func BenchmarkTable1_HandleTMC_AL_bur(b *testing.B) {
	benchCell(b, icrns.Table1Rows[1], icrns.ColBUR, 120_000)
}

func BenchmarkTable1_K2A_po(b *testing.B)  { benchCell(b, icrns.Table1Rows[2], icrns.ColPO, 120_000) }
func BenchmarkTable1_K2A_pno(b *testing.B) { benchCell(b, icrns.Table1Rows[2], icrns.ColPNO, 120_000) }
func BenchmarkTable1_K2A_sp(b *testing.B)  { benchCell(b, icrns.Table1Rows[2], icrns.ColSP, 120_000) }
func BenchmarkTable1_K2A_pj(b *testing.B)  { benchCell(b, icrns.Table1Rows[2], icrns.ColPJ, 120_000) }
func BenchmarkTable1_K2A_bur(b *testing.B) { benchCell(b, icrns.Table1Rows[2], icrns.ColBUR, 120_000) }

func BenchmarkTable1_A2V_po(b *testing.B)  { benchCell(b, icrns.Table1Rows[3], icrns.ColPO, 120_000) }
func BenchmarkTable1_A2V_pno(b *testing.B) { benchCell(b, icrns.Table1Rows[3], icrns.ColPNO, 120_000) }
func BenchmarkTable1_A2V_sp(b *testing.B)  { benchCell(b, icrns.Table1Rows[3], icrns.ColSP, 120_000) }
func BenchmarkTable1_A2V_pj(b *testing.B)  { benchCell(b, icrns.Table1Rows[3], icrns.ColPJ, 120_000) }
func BenchmarkTable1_A2V_bur(b *testing.B) { benchCell(b, icrns.Table1Rows[3], icrns.ColBUR, 120_000) }

func BenchmarkTable1_AddressLookup_po(b *testing.B) {
	benchCell(b, icrns.Table1Rows[4], icrns.ColPO, 0)
}
func BenchmarkTable1_AddressLookup_pno(b *testing.B) {
	benchCell(b, icrns.Table1Rows[4], icrns.ColPNO, 0)
}
func BenchmarkTable1_AddressLookup_sp(b *testing.B) {
	benchCell(b, icrns.Table1Rows[4], icrns.ColSP, 120_000)
}
func BenchmarkTable1_AddressLookup_pj(b *testing.B) {
	benchCell(b, icrns.Table1Rows[4], icrns.ColPJ, 120_000)
}
func BenchmarkTable1_AddressLookup_bur(b *testing.B) {
	benchCell(b, icrns.Table1Rows[4], icrns.ColBUR, 120_000)
}

// BenchmarkTable1_HandleTMC_AL_po_Budgeted is the budgeted twin of the
// HandleTMC_AL_po cell: the same exhaustive sweep under a zone-memory budget
// far too high to ever trip. Its CI baseline (scripts/bench_baseline.json)
// sits a fixed handful of allocs/op above the unbudgeted twin — the one-time
// per-run budget cells — pinning the accounting itself to zero allocations
// on the per-state hot path.
func BenchmarkTable1_HandleTMC_AL_po_Budgeted(b *testing.B) {
	b.ReportAllocs()
	row := icrns.Table1Rows[1]
	opts := icrns.CellOptions{Cfg: icrns.DefaultConfig(), Seed: 1, MaxBytes: 1 << 40}
	var res arch.WCRTResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = icrns.Cell(row, icrns.ColPO, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	ms, _ := res.MS.Float64()
	b.ReportMetric(ms, "wcrt_ms")
	b.ReportMetric(float64(res.Stats.Stored), "states")
}

// BenchmarkTable1_HandleTMC_AL_po_Profiled is the profiled twin: the same
// cell with a sweep profile attached (phase spans, per-worker sampled
// series). Its baseline sits a fixed handful of allocs/op above the plain
// twin — the per-run ring buffers — while the plain twin's unchanged exact
// baseline pins the profile-DISABLED hot path to zero extra allocations.
func BenchmarkTable1_HandleTMC_AL_po_Profiled(b *testing.B) {
	b.ReportAllocs()
	row := icrns.Table1Rows[1]
	var mon *core.Monitor
	var res arch.WCRTResult
	var err error
	for i := 0; i < b.N; i++ {
		// A fresh monitor per iteration keeps the profiling cost (rings,
		// span list) a constant per run, so allocs/op is exact.
		mon = &core.Monitor{}
		mon.EnableProfile(core.ProfileConfig{})
		res, err = icrns.Cell(row, icrns.ColPO,
			icrns.CellOptions{Cfg: icrns.DefaultConfig(), Seed: 1, Monitor: mon})
		if err != nil {
			b.Fatal(err)
		}
	}
	if prof := mon.Profile(); prof == nil || len(prof.Phases) == 0 {
		b.Fatal("profiled run recorded no phases")
	}
	ms, _ := res.MS.Float64()
	b.ReportMetric(ms, "wcrt_ms")
	b.ReportMetric(float64(res.Stats.Stored), "states")
}

// --- Table 2: tool comparison on the AddressLookup and HandleTMC rows ---

func table2System() (*arch.System, *arch.Requirement) {
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPNO, icrns.DefaultConfig())
	return sys, reqs[icrns.ReqAddressLookup]
}

func BenchmarkTable2_UppaalPNO(b *testing.B) {
	sys, req := table2System()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 500}, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_UppaalPNO_Parallel runs the same Table 2 row on the
// work-stealing explorer with Workers = NumCPU, the acceptance comparison
// for the parallel engine. On single-core hosts Workers is floored at 2 so
// the parallel machinery (deques, sharded store, termination barrier) is
// actually exercised rather than silently routed to the sequential path.
func BenchmarkTable2_UppaalPNO_Parallel(b *testing.B) {
	sys, req := table2System()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	for i := 0; i < b.N; i++ {
		if _, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 500},
			core.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_POOSL(b *testing.B) {
	sys, req := table2System()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(sys, []*arch.Requirement{req},
			sim.Options{Seed: int64(i + 1), HorizonMS: 60000, Replications: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_SymTA(b *testing.B) {
	sys, req := table2System()
	for i := 0; i < b.N; i++ {
		if _, err := symta.Analyze(sys, []*arch.Requirement{req}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_MPA(b *testing.B) {
	sys, req := table2System()
	for i := 0; i < b.N; i++ {
		if _, err := rtc.Analyze(sys, []*arch.Requirement{req}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 4: search orders (the paper's structured-testing modes) ---

func benchOrder(b *testing.B, order core.Order) {
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPNO, icrns.DefaultConfig())
	req := reqs[icrns.ReqHandleTMC]
	for i := 0; i < b.N; i++ {
		res, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 1500},
			core.Options{Order: order, Seed: int64(i), MaxStates: 20_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ms, _ := res.MS.Float64()
			b.ReportMetric(ms, "lower_bound_ms")
		}
	}
}

func BenchmarkSearchOrder_BFS(b *testing.B)  { benchOrder(b, core.BFS) }
func BenchmarkSearchOrder_DFS(b *testing.B)  { benchOrder(b, core.DFS) }
func BenchmarkSearchOrder_RDFS(b *testing.B) { benchOrder(b, core.RDFS) }

// --- Figures 4-6: hardware, preemption, and bus automata ---

// figSystem is a compact two-application system whose compiled network
// contains the Fig. 4/5/6 templates.
func figSystem(cpuSched, busSched arch.SchedKind) (*arch.System, *arch.Requirement) {
	sys := arch.NewSystem("fig")
	cpu := sys.AddProcessor("CPU", 10, cpuSched)
	bus := sys.AddBus("BUS", 8, busSched)
	hi := sys.AddScenario("hi", 2, arch.PeriodicUnknownOffset(arch.MS(40, 1)))
	hi.Compute("h", cpu, 50000).Transfer("hm", bus, 10)
	lo := sys.AddScenario("lo", 1, arch.PeriodicUnknownOffset(arch.MS(80, 1)))
	lo.Compute("l", cpu, 100000).Transfer("lm", bus, 20)
	return sys, arch.EndToEnd("hi", hi)
}

func benchFig(b *testing.B, cpuSched, busSched arch.SchedKind) {
	sys, req := figSystem(cpuSched, busSched)
	for i := 0; i < b.N; i++ {
		if _, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 300}, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_NonPreemptiveServer(b *testing.B) { benchFig(b, arch.SchedNondet, arch.SchedFP) }
func BenchmarkFig5_PreemptiveServer(b *testing.B)    { benchFig(b, arch.SchedFPPreempt, arch.SchedFP) }
func BenchmarkFig6_NondetBus(b *testing.B)           { benchFig(b, arch.SchedFP, arch.SchedNondet) }

// --- Figures 7-8: environment automata ---

func benchEnv(b *testing.B, m arch.EventModel) {
	sys := arch.NewSystem("env")
	p := sys.AddProcessor("P", 10, arch.SchedFP)
	sc := sys.AddScenario("s", 1, m)
	sc.Compute("op", p, 50000)
	req := arch.EndToEnd("e2e", sc)
	for i := 0; i < b.N; i++ {
		if _, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 200}, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_PeriodicOffset(b *testing.B) {
	benchEnv(b, arch.Periodic(arch.MS(20, 1), arch.MS(5, 1)))
}
func BenchmarkFig7b_PeriodicUnknownOffset(b *testing.B) {
	benchEnv(b, arch.PeriodicUnknownOffset(arch.MS(20, 1)))
}
func BenchmarkFig7c_Sporadic(b *testing.B) {
	benchEnv(b, arch.Sporadic(arch.MS(20, 1)))
}
func BenchmarkFig7d_PeriodicJitter(b *testing.B) {
	benchEnv(b, arch.PeriodicJitter(arch.MS(20, 1), arch.MS(20, 1)))
}
func BenchmarkFig8_Bursty(b *testing.B) {
	benchEnv(b, arch.Bursty(arch.MS(20, 1), arch.MS(40, 1), arch.MS(0, 1)))
}

// --- Figure 9 / Property 1: measuring observer and binary search ---

func BenchmarkFig9_BinarySearchWCRT(b *testing.B) {
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPO, icrns.DefaultConfig())
	req := reqs[icrns.ReqAddressLookup]
	for i := 0; i < b.N; i++ {
		if _, _, err := arch.AnalyzeWCRTBinary(sys, req, arch.Options{HorizonMS: 500},
			core.Options{}, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: bus arbitration (Section 3.2's protocol swap) ---

func benchBusAblation(b *testing.B, sched arch.SchedKind) {
	cfg := icrns.DefaultConfig()
	cfg.Bus = sched
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPO, cfg)
	req := reqs[icrns.ReqAddressLookup]
	var res arch.WCRTResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 500}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	ms, _ := res.MS.Float64()
	b.ReportMetric(ms, "wcrt_ms")
}

func BenchmarkAblationBus_Nondet(b *testing.B)     { benchBusAblation(b, arch.SchedNondet) }
func BenchmarkAblationBus_FP(b *testing.B)         { benchBusAblation(b, arch.SchedFP) }
func BenchmarkAblationBus_Preemptive(b *testing.B) { benchBusAblation(b, arch.SchedFPPreempt) }

// --- Model compilation itself ---

func BenchmarkCompileCaseStudy(b *testing.B) {
	sys, reqs := icrns.Build(icrns.ComboCV, icrns.ColBUR, icrns.DefaultConfig())
	req := reqs[icrns.ReqK2A]
	for i := 0; i < b.N; i++ {
		if _, err := arch.Compile(sys, req, arch.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Multi-requirement analysis: batch (one exploration) vs sequential ---

// multiReqSystem returns the tractable Table 1 combination with both of its
// requirements, the workload the query-set engine amortizes: k observers in
// one network, k suprema from one sweep.
func multiReqSystem() (*arch.System, []*arch.Requirement) {
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPNO, icrns.DefaultConfig())
	return sys, []*arch.Requirement{reqs[icrns.ReqHandleTMC], reqs[icrns.ReqAddressLookup]}
}

func multiReqHorizon(r *arch.Requirement) int64 { return icrns.HorizonMS(r.Name) }

// BenchmarkMultiReq_AL_pno_Sequential is the historical shape: one
// compilation + one exploration per requirement.
func BenchmarkMultiReq_AL_pno_Sequential(b *testing.B) {
	sys, reqs := multiReqSystem()
	states := 0
	for i := 0; i < b.N; i++ {
		states = 0
		for _, req := range reqs {
			res, err := arch.AnalyzeWCRT(sys, req,
				arch.Options{HorizonMS: multiReqHorizon(req)}, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			states += res.Stats.Stored
		}
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkMultiReq_AL_pno_Batch answers the same requirements from ONE
// compiled network and ONE exploration (arch.AnalyzeAll).
func BenchmarkMultiReq_AL_pno_Batch(b *testing.B) {
	b.ReportAllocs()
	sys, reqs := multiReqSystem()
	var res *arch.AllResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = arch.AnalyzeAll(sys, reqs,
			arch.Options{HorizonMSFor: multiReqHorizon}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Stored), "states")
}

// BenchmarkMultiReq_AL_pno_Batch_Parallel runs the batch sweep on the
// work-stealing frontier.
func BenchmarkMultiReq_AL_pno_Batch_Parallel(b *testing.B) {
	sys, reqs := multiReqSystem()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	for i := 0; i < b.N; i++ {
		if _, err := arch.AnalyzeAll(sys, reqs,
			arch.Options{HorizonMSFor: multiReqHorizon}, core.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Channel scaling: successor cost as synchronization structure grows ---

// scalingSystem builds a synthetic system with n independent periodic
// scenarios on one fixed-priority processor and one end-to-end requirement
// each. Every requirement adds a measuring observer listening on its own
// broadcast completion channels, so n scales the network's CHANNEL count —
// the axis the compiled successor index flattens (the legacy enumerator
// rescanned every process's out-edges once per channel). Arrivals are
// periodic with known offsets, keeping the product state space small and
// deterministic while the synchronization structure grows.
func scalingSystem(n int) (*arch.System, []*arch.Requirement) {
	sys := arch.NewSystem("scale")
	cpu := sys.AddProcessor("CPU", 10, arch.SchedNondet)
	reqs := make([]*arch.Requirement, n)
	for i := 0; i < n; i++ {
		name := "s" + string(rune('0'+i))
		sc := sys.AddScenario(name, i+1, arch.Periodic(arch.MS(int64(40+40*(i%2)), 1), arch.MS(int64(3*i), 1)))
		sc.Compute("op"+string(rune('0'+i)), cpu, 45000)
		reqs[i] = arch.EndToEnd("r"+string(rune('0'+i)), sc)
	}
	return sys, reqs
}

func benchMultiReqScaling(b *testing.B, n int) {
	b.Helper()
	b.ReportAllocs()
	sys, reqs := scalingSystem(n)
	var res *arch.AllResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = arch.AnalyzeAll(sys, reqs, arch.Options{HorizonMS: 120}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Stats.Stored), "states")
}

func BenchmarkMultiReq_Scaling_1(b *testing.B) { benchMultiReqScaling(b, 1) }
func BenchmarkMultiReq_Scaling_4(b *testing.B) { benchMultiReqScaling(b, 4) }
func BenchmarkMultiReq_Scaling_8(b *testing.B) { benchMultiReqScaling(b, 8) }

// BenchmarkMultiReq_BinarySearch measures the rebuilt Property 1 procedure,
// which now answers every bisection threshold from a single sweep instead of
// re-exploring per iteration.
func BenchmarkMultiReq_BinarySearch(b *testing.B) {
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPO, icrns.DefaultConfig())
	req := reqs[icrns.ReqAddressLookup]
	for i := 0; i < b.N; i++ {
		if _, _, err := arch.AnalyzeWCRTBinary(sys, req, arch.Options{HorizonMS: 500},
			core.Options{}, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel explorer scaling ---

func benchParallelSup(b *testing.B, workers int) {
	sys, reqs := icrns.Build(icrns.ComboAL, icrns.ColPNO, icrns.DefaultConfig())
	req := reqs[icrns.ReqHandleTMC]
	for i := 0; i < b.N; i++ {
		if _, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 1500},
			core.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelSup_1(b *testing.B) { benchParallelSup(b, 1) }
func BenchmarkParallelSup_2(b *testing.B) { benchParallelSup(b, 2) }
func BenchmarkParallelSup_4(b *testing.B) { benchParallelSup(b, 4) }
