// Package icrns encodes the paper's case study: the in-car radio navigation
// system of Figures 1–3, its three applications (ChangeVolume, HandleTMC,
// AddressLookup), the five timeliness requirements of Table 1, and the five
// event-model columns (po, pno, sp, pj, bur).
//
// Hardware parameters (Figure 1) follow the companion MPA case study
// (Wandeler et al., ISoLA 2004): MMI 22 MIPS, NAV 113 MIPS, RAD 11 MIPS,
// one 72 kbit/s bus. With these values the unloaded HandleTMC chain is
// exactly 172.106 ms and AddressLookup exactly 79.07607 ms — matching the
// paper's 172.106 and (truncated) 79.075, which validates the
// reconstruction.
package icrns

import (
	"fmt"
	"math/big"

	"repro/internal/arch"
)

// Combo selects which pair of applications runs concurrently, as in the
// paper's analysis ("the modeling of the scenarios is very similar").
type Combo int

const (
	// ComboCV runs ChangeVolume together with HandleTMC.
	ComboCV Combo = iota
	// ComboAL runs AddressLookup together with HandleTMC.
	ComboAL
)

func (c Combo) String() string {
	if c == ComboCV {
		return "ChangeVolume+HandleTMC"
	}
	return "AddressLookup+HandleTMC"
}

// Column selects the environment models of one Table 1 column.
type Column int

const (
	// ColPO: strictly periodic, all offsets zero (synchronous environment).
	ColPO Column = iota
	// ColPNO: strictly periodic, unknown offsets (asynchronous environment).
	ColPNO
	// ColSP: sporadic event streams.
	ColSP
	// ColPJ: periodic with jitter J = P for the radio station, sporadic
	// for the others.
	ColPJ
	// ColBUR: bursty (J = 2P, D = 0) for the radio station, sporadic for
	// the others.
	ColBUR
)

// Columns lists all Table 1 columns in paper order.
var Columns = []Column{ColPO, ColPNO, ColSP, ColPJ, ColBUR}

func (c Column) String() string {
	switch c {
	case ColPO:
		return "po (F=0)"
	case ColPNO:
		return "pno"
	case ColSP:
		return "sp"
	case ColPJ:
		return "pj (J=P)"
	case ColBUR:
		return "bur (J=2P, D=0)"
	}
	return "?col"
}

// Config selects the scheduling disciplines of the four shared resources.
// The default (everything preemptive fixed priority, including the idealized
// priority bus) is the configuration that reproduces the paper's published
// values; see DESIGN.md for the calibration argument.
type Config struct {
	MMI, NAV, RAD arch.SchedKind
	Bus           arch.SchedKind
}

// DefaultConfig reproduces the paper's analysis configuration.
func DefaultConfig() Config {
	return Config{
		MMI: arch.SchedFPPreempt,
		NAV: arch.SchedFPPreempt,
		RAD: arch.SchedFPPreempt,
		Bus: arch.SchedFPPreempt,
	}
}

// RealisticBusConfig keeps the CPUs preemptive but uses a realistic
// non-preemptive priority bus (RS-485 style), the ablation DESIGN.md calls
// out.
func RealisticBusConfig() Config {
	c := DefaultConfig()
	c.Bus = arch.SchedFP
	return c
}

// Requirement names of Table 1 rows.
const (
	ReqHandleTMC     = "HandleTMC"
	ReqK2A           = "K2A"
	ReqA2V           = "A2V"
	ReqAddressLookup = "AddressLookup"
)

// Periods of the three applications (ms).
var (
	periodCV  = arch.MS(125, 4) // 32 events per second
	periodTMC = arch.MS(3000, 1)
	periodAL  = arch.MS(1000, 1)
)

// tmcArrival returns the radio-station event model of a column.
func tmcArrival(col Column) arch.EventModel {
	switch col {
	case ColPO:
		return arch.Periodic(periodTMC, arch.MS(0, 1))
	case ColPNO:
		return arch.PeriodicUnknownOffset(periodTMC)
	case ColSP:
		return arch.Sporadic(periodTMC)
	case ColPJ:
		return arch.PeriodicJitter(periodTMC, periodTMC)
	case ColBUR:
		return arch.Bursty(periodTMC, arch.MS(6000, 1), arch.MS(0, 1))
	}
	panic("icrns: unknown column")
}

// Build constructs the case-study system for one combination and column, and
// returns the system plus its requirements keyed by name.
func Build(combo Combo, col Column, cfg Config) (*arch.System, map[string]*arch.Requirement) {
	sys := arch.NewSystem("icrns")
	mmi := sys.AddProcessor("MMI", 22, cfg.MMI)
	nav := sys.AddProcessor("NAV", 113, cfg.NAV)
	rad := sys.AddProcessor("RAD", 11, cfg.RAD)
	bus := sys.AddBus("BUS", 72, cfg.Bus)

	userModel := func(period *big.Rat) arch.EventModel {
		switch col {
		case ColPO:
			return arch.Periodic(period, arch.MS(0, 1))
		case ColPNO:
			return arch.PeriodicUnknownOffset(period)
		default: // sp, pj, bur use sporadic models for the user actors
			return arch.Sporadic(period)
		}
	}

	reqs := map[string]*arch.Requirement{}

	// HandleTMC (Figure 3): the radio receives a TMC message, the navigation
	// system decodes it against the map database, the MMI displays it.
	tmc := sys.AddScenario("TMC", 1, tmcArrival(col))
	tmc.Compute("HandleTMC", rad, 1_000_000).
		Transfer("TMCtoNAV", bus, 64).
		Compute("DecodeTMC", nav, 5_000_000).
		Transfer("TMCtoMMI", bus, 64).
		Compute("UpdateScreen", mmi, 500_000)
	reqs[ReqHandleTMC] = arch.EndToEnd(ReqHandleTMC, tmc)

	switch combo {
	case ComboCV:
		// ChangeVolume (Figure 2): keypress, volume adjustment on the radio
		// (audible), read-back and screen update (visual).
		cv := sys.AddScenario("CV", 2, userModel(periodCV))
		cv.Compute("HandleKeyPress", mmi, 100_000).
			Transfer("SetVolume", bus, 4).
			Compute("AdjustVolume", rad, 100_000).
			Transfer("GetVolume", bus, 4).
			Compute("UpdateScreen", mmi, 500_000)
		reqs[ReqK2A] = arch.Span(ReqK2A, cv, -1, cv.StepIndex("AdjustVolume"))
		reqs[ReqA2V] = arch.Span(ReqA2V, cv,
			cv.StepIndex("AdjustVolume"), cv.StepIndex("UpdateScreen"))
	case ComboAL:
		// AddressLookup: keypress, database lookup on the navigation
		// system, result rendered by the MMI.
		al := sys.AddScenario("AL", 2, userModel(periodAL))
		al.Compute("HandleKeyPress", mmi, 100_000).
			Transfer("LookupReq", bus, 4).
			Compute("DatabaseLookup", nav, 5_000_000).
			Transfer("LookupResp", bus, 64).
			Compute("UpdateScreen", mmi, 500_000)
		reqs[ReqAddressLookup] = arch.EndToEnd(ReqAddressLookup, al)
	}
	return sys, reqs
}

// ComboFor returns the application combination in which a requirement is
// analyzed, following Table 1's rows.
func ComboFor(req string) (Combo, error) {
	switch req {
	case ReqK2A, ReqA2V:
		return ComboCV, nil
	case ReqAddressLookup:
		return ComboAL, nil
	case ReqHandleTMC:
		return ComboCV, nil // disambiguated by the caller for the +AL row
	}
	return 0, fmt.Errorf("icrns: unknown requirement %q", req)
}
