package icrns

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/symta"
)

// chainSum returns the exact sum of the scenario's step durations — the
// uncontended end-to-end latency.
func chainSum(sc *arch.Scenario) *big.Rat {
	total := new(big.Rat)
	for i := range sc.Steps {
		total.Add(total, sc.Steps[i].DurationMS())
	}
	return total
}

func TestReconstructedHardwareMatchesPaper(t *testing.T) {
	// The validation argument from DESIGN.md: with the reconstructed
	// Figure 1 parameters, the unloaded chains equal the paper's Table 1
	// values exactly.
	sys, _ := Build(ComboAL, ColPO, DefaultConfig())
	tmc := sys.ScenarioByName("TMC")
	al := sys.ScenarioByName("AL")
	// 1000/11 + 64/9 + 5000/113 + 64/9 + 250/11 ms = 172.106...
	wantTMC, _ := new(big.Rat).SetString("1925354/11187")
	if got := chainSum(tmc); got.Cmp(wantTMC) != 0 {
		t.Errorf("TMC chain = %s (%s ms), want %s", got.RatString(), got.FloatString(3), wantTMC.RatString())
	}
	if s := chainSum(tmc).FloatString(3); s != "172.106" {
		t.Errorf("TMC chain = %s ms, want 172.106 (paper)", s)
	}
	if s := chainSum(al).FloatString(3); s != "79.076" {
		t.Errorf("AL chain = %s ms, want 79.076 (paper's 79.075 truncated)", s)
	}
}

func TestTMCPlusALSynchronousCell(t *testing.T) {
	// Table 1, row "HandleTMC (+ AddressLookup)", column po: with all
	// offsets zero the applications never collide and the WCRT equals the
	// unloaded chain exactly.
	res, err := Cell(Table1Rows[1], ColPO, CellOptions{Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := Build(ComboAL, ColPO, DefaultConfig())
	want := chainSum(sys.ScenarioByName("TMC"))
	if res.MS.Cmp(want) != 0 {
		t.Errorf("TMC+AL po = %s ms, want %s (unloaded chain)",
			res.MS.FloatString(3), want.FloatString(3))
	}
	if !res.Exact || !res.Attained {
		t.Errorf("po cell should be exact and attained: %+v", res)
	}
}

func TestALConstantAcrossColumnsPO_PNO(t *testing.T) {
	// The paper's observation: AddressLookup keeps its unloaded WCRT in
	// every column because priority traffic is never blocked and never
	// queues behind itself.
	want := "79.076"
	for _, col := range []Column{ColPO, ColPNO} {
		res, err := Cell(Table1Rows[4], col, CellOptions{Cfg: DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.MS.FloatString(3); got != want {
			t.Errorf("AddressLookup %v = %s, want %s", col, got, want)
		}
	}
}

func TestTMCPlusALAsynchronousCell(t *testing.T) {
	// Table 1, row "HandleTMC (+ AddressLookup)", column pno: one
	// DatabaseLookup (44.248) plus one UpdateScreen (22.727) of
	// interference on top of the chain; exact value 239.081 (the paper
	// prints the truncation 239.080).
	res, err := Cell(Table1Rows[1], ColPNO, CellOptions{Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MS.FloatString(3); got != "239.081" {
		t.Errorf("TMC+AL pno = %s ms, want 239.081", got)
	}
}

func TestRealisticBusRaisesAL(t *testing.T) {
	// Ablation: with a realistic non-preemptive bus, a bulk TMC transfer
	// (7.111 ms) can block the AddressLookup request, so its WCRT exceeds
	// the unloaded chain.
	res, err := Cell(Table1Rows[4], ColPNO, CellOptions{Cfg: RealisticBusConfig()})
	if err != nil {
		t.Fatal(err)
	}
	floor, _ := new(big.Rat).SetString("79.076")
	if res.MS.Cmp(floor) <= 0 {
		t.Errorf("realistic bus should add blocking: AL pno = %s", res.MS.FloatString(3))
	}
}

func TestColumnsMonotoneForTMC(t *testing.T) {
	// po <= pno and pno <= pj <= bur for the TMC row (+AL): richer event
	// models only add behaviors.
	opts := CellOptions{Cfg: DefaultConfig()}
	var prev *big.Rat
	for _, col := range []Column{ColPO, ColPNO} {
		res, err := Cell(Table1Rows[1], col, opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && res.MS.Cmp(prev) < 0 {
			t.Errorf("column %v decreased the TMC WCRT", col)
		}
		prev = res.MS
	}
}

func TestTable2ToolOrderingAL(t *testing.T) {
	// The theoretical picture of Table 2 on the AddressLookup row:
	// simulation <= exact model checking <= busy-window <= (roughly) RTC;
	// we assert sim <= uppaal <= symta and sim <= uppaal <= mpa.
	cfg := DefaultConfig()
	sys, reqs := Build(ComboAL, ColPNO, cfg)
	req := reqs[ReqAddressLookup]

	exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 500}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Simulate(sys, []*arch.Requirement{req},
		sim.Options{Seed: 3, HorizonMS: 20000, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	symtaRes, err := symta.Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	rtcRes, err := rtc.Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	if simRes[ReqAddressLookup].MaxMS.Cmp(exact.MS) > 0 {
		t.Errorf("sim %s > exact %s", simRes[ReqAddressLookup].MaxMS.FloatString(3), exact.MS.FloatString(3))
	}
	if symtaRes[ReqAddressLookup].MS.Cmp(exact.MS) < 0 {
		t.Errorf("symta %s < exact %s", symtaRes[ReqAddressLookup].MS.FloatString(3), exact.MS.FloatString(3))
	}
	if rtcRes[ReqAddressLookup].MS.Cmp(exact.MS) < 0 {
		t.Errorf("rtc %s < exact %s", rtcRes[ReqAddressLookup].MS.FloatString(3), exact.MS.FloatString(3))
	}
}

func TestCellFallbackProducesLowerBound(t *testing.T) {
	// A deliberately tiny budget forces the structured-testing fallback;
	// the result must be a non-exact lower bound below the true value.
	res, err := Cell(Table1Rows[1], ColPNO, CellOptions{
		Cfg: DefaultConfig(), MaxStates: 300, FallbackStates: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("budgeted cell must not be exact")
	}
	// Exact truth: the unloaded chain plus one DatabaseLookup and one
	// UpdateScreen of interference.
	sys, _ := Build(ComboAL, ColPNO, DefaultConfig())
	truth := chainSum(sys.ScenarioByName("TMC"))
	truth.Add(truth, new(big.Rat).SetFrac64(5000, 113))
	truth.Add(truth, new(big.Rat).SetFrac64(250, 11))
	if res.MS.Cmp(truth) > 0 {
		t.Errorf("lower bound %s exceeds the true WCRT %s",
			res.MS.FloatString(4), truth.FloatString(4))
	}
	if res.MS.Sign() <= 0 {
		t.Error("fallback should observe at least one completion")
	}
}

func TestBuildShape(t *testing.T) {
	sys, reqs := Build(ComboCV, ColPO, DefaultConfig())
	if sys.ScenarioByName("CV") == nil || sys.ScenarioByName("TMC") == nil {
		t.Fatal("CV combo must contain CV and TMC")
	}
	if len(reqs) != 3 {
		t.Errorf("CV combo has %d requirements, want 3 (TMC, K2A, A2V)", len(reqs))
	}
	if reqs[ReqK2A].ToStep != 2 || reqs[ReqA2V].FromStep != 2 || reqs[ReqA2V].ToStep != 4 {
		t.Errorf("K2A/A2V spans wrong: %+v %+v", reqs[ReqK2A], reqs[ReqA2V])
	}
	sys2, reqs2 := Build(ComboAL, ColBUR, DefaultConfig())
	if sys2.ScenarioByName("AL") == nil {
		t.Fatal("AL combo must contain AL")
	}
	if reqs2[ReqAddressLookup] == nil {
		t.Fatal("AL combo must expose the AddressLookup requirement")
	}
	if got := sys2.ScenarioByName("TMC").Arrival.Kind; got != arch.KindBursty {
		t.Errorf("bur column TMC arrival = %v, want bursty", got)
	}
	if got := sys2.ScenarioByName("AL").Arrival.Kind; got != arch.KindSporadic {
		t.Errorf("bur column AL arrival = %v, want sporadic", got)
	}
}

func TestComboFor(t *testing.T) {
	if c, err := ComboFor(ReqK2A); err != nil || c != ComboCV {
		t.Errorf("ComboFor(K2A) = %v, %v", c, err)
	}
	if c, err := ComboFor(ReqAddressLookup); err != nil || c != ComboAL {
		t.Errorf("ComboFor(AddressLookup) = %v, %v", c, err)
	}
	if _, err := ComboFor("nope"); err == nil {
		t.Error("unknown requirement must error")
	}
}

func TestFormatters(t *testing.T) {
	res, err := Cell(Table1Rows[4], ColPO, CellOptions{Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	grid := map[Row]map[Column]arch.WCRTResult{}
	for _, row := range Table1Rows {
		grid[row] = map[Column]arch.WCRTResult{}
		for _, col := range Columns {
			grid[row][col] = res
		}
	}
	if s := FormatTable1(grid); len(s) == 0 {
		t.Error("FormatTable1 empty")
	}
	grid2 := map[Row]map[Table2Tool]string{}
	for _, row := range Table1Rows {
		grid2[row] = map[Table2Tool]string{}
		for _, tool := range Table2Tools {
			grid2[row][tool] = "1.000"
		}
	}
	if s := FormatTable2(grid2); len(s) == 0 {
		t.Error("FormatTable2 empty")
	}
	for _, c := range Columns {
		if c.String() == "?col" {
			t.Error("column stringer incomplete")
		}
	}
	for _, tl := range Table2Tools {
		if tl.String() == "?tool" {
			t.Error("tool stringer incomplete")
		}
	}
	if ComboCV.String() == ComboAL.String() {
		t.Error("combo strings must differ")
	}
}

func TestVerifyDeadlines(t *testing.T) {
	// Under the synchronous environment every requirement meets its
	// Figure 2/3 deadline except A2V, whose 50 ms budget is missed by both
	// the paper's value (41.796 — met) — ours is 35.919, also met.
	verdicts, err := Verify(ComboAL, ColPO, CellOptions{Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts[ReqHandleTMC] {
		t.Error("HandleTMC must meet its 1s deadline under po")
	}
	if !verdicts[ReqAddressLookup] {
		t.Error("AddressLookup must meet its 200ms budget under po")
	}
}

func TestVerifyDeadlineViolationHasTrace(t *testing.T) {
	sys, reqs := Build(ComboAL, ColPO, DefaultConfig())
	// An impossible 10ms deadline for AddressLookup must be refuted with a
	// trace.
	ok, trace, err := arch.VerifyDeadline(sys, reqs[ReqAddressLookup],
		arch.MS(10, 1), arch.Options{HorizonMS: 500}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("10ms AddressLookup deadline cannot hold")
	}
	if trace == "" {
		t.Error("violation must carry a counterexample trace")
	}
}

func TestWitnessTraceForCheapCell(t *testing.T) {
	trace, res, err := Witness(Table1Rows[4], ColPO, CellOptions{Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.MS.FloatString(3) != "79.076" {
		t.Errorf("witness WCRT = %s, want 79.076", res.MS.FloatString(3))
	}
	for _, step := range []string{"HandleKeyPress", "DatabaseLookup", "UpdateScreen", "OBS.watch->seen"} {
		if !strings.Contains(trace, step) {
			t.Errorf("critical-instant trace missing %q", step)
		}
	}
}

func TestTable2CellVariants(t *testing.T) {
	opts := Table2Options{
		Cell: CellOptions{Cfg: DefaultConfig()},
		Sim:  sim.Options{Seed: 1, HorizonMS: 5000, Replications: 2},
	}
	for _, tool := range Table2Tools {
		cell, err := Table2Cell(Table1Rows[4], tool, opts)
		if err != nil {
			t.Fatalf("tool %v: %v", tool, err)
		}
		if cell == "" {
			t.Errorf("tool %v produced an empty cell", tool)
		}
	}
}
