package icrns

import (
	"math/big"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dbm"
)

// This file is the case-study half of the batch-vs-sequential oracle (the
// stress-network half lives in internal/arch/analyze_all_test.go): the
// acceptance bar for the query-set engine is that AnalyzeAll over the
// paper's requirements performs exactly ONE exploration and reproduces the
// per-requirement results bit for bit.

// alReqNames are the requirements of the AddressLookup+HandleTMC
// combination, the exhaustively tractable half of Table 1.
var alReqNames = []string{ReqHandleTMC, ReqAddressLookup}

// TestAnalyzeAllMatchesPerRequirementCells compares the batch API against
// per-requirement Cell on the exhaustive ComboAL columns, sequentially and
// with Workers > 1 (run under -race by CI), and asserts the
// one-exploration invariant through the shared Stats.
func TestAnalyzeAllMatchesPerRequirementCells(t *testing.T) {
	for _, col := range []Column{ColPO, ColPNO} {
		sys, reqs := Build(ComboAL, col, DefaultConfig())
		ordered := []*arch.Requirement{reqs[ReqHandleTMC], reqs[ReqAddressLookup]}
		for _, workers := range []int{1, 3} {
			all, err := arch.AnalyzeAll(sys, ordered, arch.Options{HorizonMSFor: batchHorizons},
				core.Options{Workers: workers})
			if err != nil {
				t.Fatalf("col %v workers %d: %v", col, workers, err)
			}
			for i, req := range ordered {
				row := Row{Req: req.Name, Combo: ComboAL}
				single, err := Cell(Row{Req: req.Name, Combo: ComboAL, Label: row.Req}, col,
					CellOptions{Cfg: DefaultConfig(), Workers: workers})
				if err != nil {
					t.Fatalf("col %v: Cell(%s): %v", col, req.Name, err)
				}
				got := all.Results[i]
				if got.MS.Cmp(single.MS) != 0 || got.Attained != single.Attained ||
					got.Exact != single.Exact || got.BeyondHorizon != single.BeyondHorizon {
					t.Errorf("col %v workers %d: batch %s = %s (att=%v exact=%v) != per-requirement %s (att=%v exact=%v)",
						col, workers, req.Name, got.MS.FloatString(3), got.Attained, got.Exact,
						single.MS.FloatString(3), single.Attained, single.Exact)
				}
				// Exactly one exploration: every result carries the shared
				// sweep's stats, not its own.
				if got.Stats != all.Stats {
					t.Errorf("col %v: %s carries stats %+v != shared sweep %+v — more than one exploration?",
						col, req.Name, got.Stats, all.Stats)
				}
			}
		}
	}
}

// TestBatchCellsReproducePaperValues anchors the batch path to the paper:
// the two published ComboAL po cells, answered from one sweep.
func TestBatchCellsReproducePaperValues(t *testing.T) {
	cells, err := Cells(ComboAL, ColPO, alReqNames, CellOptions{Cfg: DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if got := cells[ReqHandleTMC].MS.FloatString(3); got != "172.106" {
		t.Errorf("batch HandleTMC (+AL, po) = %s, want 172.106", got)
	}
	if got := cells[ReqAddressLookup].MS.FloatString(3); got != "79.076" {
		t.Errorf("batch AddressLookup (po) = %s, want 79.076", got)
	}
}

// TestBatchWitnessFromSharedNetwork materializes a critical-instant trace
// for one requirement directly on the shared multi-observer network: a seen
// state of that requirement's observer reaching the batch-computed bound
// must be reachable, with a replay-valid trace — the batch network preserves
// each observer's measurements, traces included.
func TestBatchWitnessFromSharedNetwork(t *testing.T) {
	sys, reqs := Build(ComboAL, ColPO, DefaultConfig())
	ordered := []*arch.Requirement{reqs[ReqHandleTMC], reqs[ReqAddressLookup]}
	cs, err := arch.CompileAll(sys, ordered, arch.Options{HorizonMSFor: batchHorizons})
	if err != nil {
		t.Fatal(err)
	}
	all, err := arch.AnalyzeAll(sys, ordered, arch.Options{HorizonMSFor: batchHorizons}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(cs.Net)
	if err != nil {
		t.Fatal(err)
	}
	// AddressLookup's bound in model units on the shared scale.
	res := all.Results[1]
	bound := new(big.Rat).Mul(res.MS, new(big.Rat).SetInt(cs.Scale))
	if !bound.IsInt() {
		t.Fatalf("bound %s not integral in model units", res.MS.RatString())
	}
	v := bound.Num().Int64()
	atSeen := cs.AtSeen(1)
	yID := int(cs.Obs[1].Y.ID)
	found, trace, _, err := checker.Reachable(func(s *core.State) bool {
		return atSeen(s) && s.Zone.Sup(yID) >= dbm.LE(v)
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !found || len(trace) == 0 {
		t.Fatal("the batch-computed WCRT must be realizable on the shared network")
	}
	last := trace[len(trace)-1].State
	if !atSeen(last) || last.Zone.Sup(yID) < dbm.LE(v) {
		t.Error("witness does not end in a seen state attaining the bound")
	}
}

// TestBatchCellsFallbackProducesLowerBounds exercises the truncated-sweep
// path of Cells on the expensive ChangeVolume combination: a tiny budget
// truncates the shared sweep, and every cell must degrade to a non-exact
// lower bound via the per-cell randomized depth-first fallback, exactly
// like Cell's.
func TestBatchCellsFallbackProducesLowerBounds(t *testing.T) {
	names := []string{ReqHandleTMC, ReqK2A, ReqA2V}
	cells, err := Cells(ComboCV, ColPO, names, CellOptions{
		Cfg: DefaultConfig(), MaxStates: 2000, FallbackStates: 3000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		res := cells[name]
		if res.Exact {
			t.Errorf("%s: a 2000-state budget cannot be exact on ComboCV", name)
		}
		if res.MS.Sign() <= 0 {
			t.Errorf("%s: fallback lower bound must be positive, got %s", name, res.MS.RatString())
		}
	}
}

// TestVerifyBatchMatchesVerifyDeadline compares the batched Verify verdicts
// against the per-requirement VerifyDeadline model checks they replace.
func TestVerifyBatchMatchesVerifyDeadline(t *testing.T) {
	opts := CellOptions{Cfg: DefaultConfig()}
	verdicts, err := Verify(ComboAL, ColPO, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, reqs := Build(ComboAL, ColPO, DefaultConfig())
	for name, deadline := range Deadlines() {
		req := reqs[name]
		if req == nil {
			continue
		}
		want, _, err := arch.VerifyDeadline(sys, req, deadline,
			arch.Options{HorizonMS: HorizonMS(name)}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := verdicts[name]; !ok || got != want {
			t.Errorf("%s: batch verdict %v (present=%v) != VerifyDeadline %v", name, got, ok, want)
		}
	}
}
