package icrns

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/symta"
)

// Row identifies one Table 1 / Table 2 row: a requirement analyzed in a
// specific application combination.
type Row struct {
	Req   string
	Combo Combo
	Label string
}

// Table1Rows lists the five rows of the paper's Table 1, in order.
var Table1Rows = []Row{
	{ReqHandleTMC, ComboCV, "HandleTMC (+ ChangeVolume)"},
	{ReqHandleTMC, ComboAL, "HandleTMC (+ AddressLookup)"},
	{ReqK2A, ComboCV, "K2A (ChangeVolume + HandleTMC)"},
	{ReqA2V, ComboCV, "A2V (ChangeVolume + HandleTMC)"},
	{ReqAddressLookup, ComboAL, "AddressLookup (+ HandleTMC)"},
}

// HorizonMS returns a sufficient observation horizon per requirement.
func HorizonMS(req string) int64 {
	switch req {
	case ReqHandleTMC:
		return 1500
	case ReqAddressLookup:
		return 500
	default: // K2A, A2V
		return 250
	}
}

// CellOptions tunes one WCRT computation.
type CellOptions struct {
	Cfg Config
	// MaxStates caps the exhaustive exploration; 0 = unlimited.
	MaxStates int
	// FallbackStates, when the exhaustive run is truncated, bounds a
	// randomized depth-first "structured testing" run that produces a lower
	// bound — the paper's df/rdf mode. 0 disables the fallback.
	FallbackStates int
	// Seed feeds the randomized fallback search.
	Seed int64
	// Workers > 1 enables parallel exploration per cell, witness traces
	// included.
	Workers int
	// MaxBytes bounds each exploration's zone memory; exceeding it fails the
	// cell with core.ErrMemoryBudget instead of exhausting the host. Unlike
	// MaxStates there is no degraded answer past this bound — memory is a
	// hard resource. 0 = unbounded.
	MaxBytes int64
	// Monitor, when set, observes every exploration these options feed — the
	// -profile-out hookup. A profile-enabled monitor records each cell's
	// sweep; an exhausted cell's rdf fallback appends a second explore span.
	Monitor *core.Monitor
}

// coreOpts maps the shared exploration knobs onto engine options; the
// randomized fallback runs override MaxStates and Order on top of it.
func (o CellOptions) coreOpts() core.Options {
	return core.Options{MaxStates: o.MaxStates, MaxBytes: o.MaxBytes,
		Workers: o.Workers, Monitor: o.Monitor}
}

// Cell computes one Table 1 cell: the WCRT of row.Req under column col.
// When the exhaustive search exceeds its budget the result degrades to a
// lower bound obtained by randomized depth-first search, exactly as the
// paper reports "> 400.000 (df)" entries.
func Cell(row Row, col Column, opts CellOptions) (arch.WCRTResult, error) {
	sys, reqs := Build(row.Combo, col, opts.Cfg)
	req := reqs[row.Req]
	if req == nil {
		return arch.WCRTResult{}, fmt.Errorf("icrns: requirement %s not in combo %v", row.Req, row.Combo)
	}
	copts := arch.Options{HorizonMS: HorizonMS(row.Req)}
	res, err := arch.AnalyzeWCRT(sys, req, copts,
		opts.coreOpts())
	if err != nil {
		return res, err
	}
	if res.Exact || opts.FallbackStates == 0 {
		return res, nil
	}
	// Structured-testing fallback: randomized depth-first lower bound.
	fb, err := arch.AnalyzeWCRT(sys, req, copts, core.Options{Order: core.RDFS, Seed: opts.Seed,
		MaxStates: opts.FallbackStates, MaxBytes: opts.MaxBytes})
	if err != nil {
		return res, err
	}
	if fb.MS.Cmp(res.MS) > 0 {
		fb.Exact = false
		return fb, nil
	}
	return res, nil
}

// batchHorizons is the per-requirement horizon rule shared by every batch
// compilation of the case study.
var batchHorizons = func(r *arch.Requirement) int64 { return HorizonMS(r.Name) }

// Cells computes the Table 1 cells of several requirements under one
// (combination, column) pair from a SINGLE compilation and a SINGLE
// exploration: one measuring observer per requirement in one network
// (arch.CompileAll), one supremum query per observer on one sweep
// (arch.AnalyzeAll). Cells whose shared exhaustive sweep is truncated fall
// back to the same per-cell randomized depth-first lower bound Cell uses.
func Cells(combo Combo, col Column, reqNames []string, opts CellOptions) (map[string]arch.WCRTResult, error) {
	sys, reqs := Build(combo, col, opts.Cfg)
	ordered := make([]*arch.Requirement, len(reqNames))
	for i, name := range reqNames {
		if ordered[i] = reqs[name]; ordered[i] == nil {
			return nil, fmt.Errorf("icrns: requirement %s not in combo %v", name, combo)
		}
	}
	all, err := arch.AnalyzeAll(sys, ordered, arch.Options{HorizonMSFor: batchHorizons},
		opts.coreOpts())
	if err != nil {
		return nil, err
	}
	out := map[string]arch.WCRTResult{}
	for i, req := range ordered {
		res := all.Results[i]
		if !res.Exact && opts.FallbackStates > 0 {
			// Structured-testing fallback, per cell as in Cell: the batch
			// sweep was truncated, so tighten each lower bound with a
			// randomized depth-first run of its own observer.
			fb, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: HorizonMS(req.Name)},
				core.Options{Order: core.RDFS, Seed: opts.Seed,
					MaxStates: opts.FallbackStates, MaxBytes: opts.MaxBytes})
			if err != nil {
				return nil, err
			}
			if fb.MS.Cmp(res.MS) > 0 {
				fb.Exact = false
				res = fb
			}
		}
		out[req.Name] = res
	}
	return out, nil
}

// Table1 computes the full Table 1 grid. The five rows split into two
// application combinations; each (combination, column) group is answered by
// one compilation and one exploration via Cells, so the whole grid costs
// 2 × 5 sweeps instead of 5 × 5. Cells whose exhaustive exploration exceeds
// the budget are reported as "> bound" rows.
func Table1(opts CellOptions) (map[Row]map[Column]arch.WCRTResult, error) {
	out := map[Row]map[Column]arch.WCRTResult{}
	groups := map[Combo][]Row{}
	for _, row := range Table1Rows {
		out[row] = map[Column]arch.WCRTResult{}
		groups[row.Combo] = append(groups[row.Combo], row)
	}
	// Combo iteration order follows the rows' first appearance, so a row
	// with a new combination is computed rather than silently dropped.
	var combos []Combo
	for _, row := range Table1Rows {
		if len(groups[row.Combo]) > 0 && row == groups[row.Combo][0] {
			combos = append(combos, row.Combo)
		}
	}
	for _, col := range Columns {
		for _, combo := range combos {
			rows := groups[combo]
			names := make([]string, len(rows))
			for i, r := range rows {
				names[i] = r.Req
			}
			cells, err := Cells(combo, col, names, opts)
			if err != nil {
				return nil, fmt.Errorf("combo %v col %v: %w", combo, col, err)
			}
			for _, r := range rows {
				out[r][col] = cells[r.Req]
			}
		}
	}
	return out, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(t map[Row]map[Column]arch.WCRTResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s", "Requirement \\ Event model")
	for _, col := range Columns {
		fmt.Fprintf(&sb, " %-18s", col)
	}
	sb.WriteString("\n")
	for _, row := range Table1Rows {
		fmt.Fprintf(&sb, "%-34s", row.Label)
		for _, col := range Columns {
			fmt.Fprintf(&sb, " %-18s", t[row][col].String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table2Tool identifies one comparison column of Table 2.
type Table2Tool int

const (
	ToolUppaalPO Table2Tool = iota
	ToolUppaalPNO
	ToolPOOSL
	ToolSymTA
	ToolMPA
)

// Table2Tools lists the Table 2 columns in paper order.
var Table2Tools = []Table2Tool{ToolUppaalPO, ToolUppaalPNO, ToolPOOSL, ToolSymTA, ToolMPA}

func (t Table2Tool) String() string {
	switch t {
	case ToolUppaalPO:
		return "Uppaal (po)"
	case ToolUppaalPNO:
		return "Uppaal (pno)"
	case ToolPOOSL:
		return "POOSL (pno)"
	case ToolSymTA:
		return "SymTA/S (pno)"
	case ToolMPA:
		return "MPA (pno)"
	}
	return "?tool"
}

// Table2Options tunes the tool-comparison run.
type Table2Options struct {
	Cell CellOptions
	// Sim configures the POOSL-style simulation campaign.
	Sim sim.Options
}

// Table2Cell computes one comparison cell.
func Table2Cell(row Row, tool Table2Tool, opts Table2Options) (string, error) {
	switch tool {
	case ToolUppaalPO, ToolUppaalPNO:
		col := ColPNO
		if tool == ToolUppaalPO {
			col = ColPO
		}
		res, err := Cell(row, col, opts.Cell)
		if err != nil {
			return "", err
		}
		return res.String(), nil
	case ToolPOOSL:
		sys, reqs := Build(row.Combo, ColPNO, opts.Cell.Cfg)
		req := reqs[row.Req]
		results, err := sim.Simulate(sys, []*arch.Requirement{req}, opts.Sim)
		if err != nil {
			return "", err
		}
		return results[row.Req].MaxMS.FloatString(3), nil
	case ToolSymTA:
		sys, reqs := Build(row.Combo, ColPNO, opts.Cell.Cfg)
		req := reqs[row.Req]
		results, err := symta.Analyze(sys, []*arch.Requirement{req})
		if err != nil {
			return "", err
		}
		return results[row.Req].MS.FloatString(3), nil
	case ToolMPA:
		sys, reqs := Build(row.Combo, ColPNO, opts.Cell.Cfg)
		req := reqs[row.Req]
		results, err := rtc.Analyze(sys, []*arch.Requirement{req})
		if err != nil {
			return "", err
		}
		return results[row.Req].MS.FloatString(3), nil
	}
	return "", fmt.Errorf("icrns: unknown tool %v", tool)
}

// Table2 computes the full tool-comparison grid.
func Table2(opts Table2Options) (map[Row]map[Table2Tool]string, error) {
	out := map[Row]map[Table2Tool]string{}
	for _, row := range Table1Rows {
		out[row] = map[Table2Tool]string{}
		for _, tool := range Table2Tools {
			cell, err := Table2Cell(row, tool, opts)
			if err != nil {
				return nil, fmt.Errorf("row %q tool %v: %w", row.Label, tool, err)
			}
			out[row][tool] = cell
		}
	}
	return out, nil
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(t map[Row]map[Table2Tool]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s", "Requirement \\ Tool")
	for _, tool := range Table2Tools {
		fmt.Fprintf(&sb, " %-16s", tool)
	}
	sb.WriteString("\n")
	for _, row := range Table1Rows {
		fmt.Fprintf(&sb, "%-34s", row.Label)
		for _, tool := range Table2Tools {
			fmt.Fprintf(&sb, " %-16s", t[row][tool])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Witness returns a critical-instant trace for one Table 1 cell: a symbolic
// schedule realizing the worst-case response time. This is the capability
// the paper highlights — "some results found by simulation could be
// falsified by showing the counter example from the model checker".
func Witness(row Row, col Column, opts CellOptions) (string, arch.WCRTResult, error) {
	sys, reqs := Build(row.Combo, col, opts.Cfg)
	req := reqs[row.Req]
	if req == nil {
		return "", arch.WCRTResult{}, fmt.Errorf("icrns: requirement %s not in combo %v", row.Req, row.Combo)
	}
	return arch.WCRTWitness(sys, req,
		arch.Options{HorizonMS: HorizonMS(row.Req)},
		opts.coreOpts())
}

// Deadlines lists the timeliness requirements annotated in the paper's
// sequence diagrams (Figures 2-3) and case description: keypress-to-audible
// and audible-to-visual for ChangeVolume, one second for urgent TMC
// messages, and the address lookup budget.
func Deadlines() map[string]*big.Rat {
	return map[string]*big.Rat{
		ReqK2A:           arch.MS(50, 1),   // part of "A2V delay < 50 ms" family; K2A budget
		ReqA2V:           arch.MS(50, 1),   // Figure 2: A2V delay < 50 msec
		ReqHandleTMC:     arch.MS(1000, 1), // Figure 3: TMC delay < 1 sec
		ReqAddressLookup: arch.MS(200, 1),  // case description budget
	}
}

// Verify checks every requirement of the given combination and column
// against its deadline, returning per-requirement verdicts. All deadlines
// are decided from ONE exploration: the batch compilation carries one
// observer per requirement, and each verdict is the measured supremum tested
// against the deadline — the same AG(seen → y < deadline) property
// VerifyDeadline model-checks one requirement at a time. Like
// VerifyDeadline, any per-requirement horizon below its deadline is raised
// to cover it, so a BeyondHorizon result soundly counts as a violation.
func Verify(combo Combo, col Column, opts CellOptions) (map[string]bool, error) {
	sys, reqs := Build(combo, col, opts.Cfg)
	deadlines := Deadlines()
	names := make([]string, 0, len(reqs))
	for name := range reqs {
		if deadlines[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ordered := make([]*arch.Requirement, len(names))
	for i, name := range names {
		ordered[i] = reqs[name]
	}
	horizons := func(r *arch.Requirement) int64 {
		h := HorizonMS(r.Name)
		d := deadlines[r.Name]
		dCeil := new(big.Int).Add(d.Num(), new(big.Int).Sub(d.Denom(), big.NewInt(1)))
		dCeil.Div(dCeil, d.Denom())
		if h < dCeil.Int64() {
			h = dCeil.Int64() * 2
		}
		return h
	}
	all, err := arch.AnalyzeAll(sys, ordered, arch.Options{HorizonMSFor: horizons},
		opts.coreOpts())
	if err != nil {
		return nil, fmt.Errorf("verify %v: %w", combo, err)
	}
	verdicts := map[string]bool{}
	for i, name := range names {
		verdicts[name] = !all.Results[i].ViolatesDeadline(deadlines[name])
	}
	return verdicts, nil
}
