// Package sim is a discrete-event simulator for the architecture
// descriptions of internal/arch. It plays the role POOSL/SHESIM plays in the
// paper's Table 2: the same system is executed with concrete, randomly
// sampled event streams, and the largest observed response time is reported.
//
// Simulation can only ever underestimate the worst case — the paper's
// central observation about simulation-based performance analysis — because
// only finitely many offset/jitter choices are exercised. The cross-check
// tests in this package assert exactly that relation against the model
// checker.
package sim

import (
	"container/heap"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"repro/internal/arch"
)

// Options configures a simulation campaign.
type Options struct {
	// Seed makes the campaign reproducible.
	Seed int64
	// HorizonMS is the simulated time per replication in milliseconds
	// (default 60000).
	HorizonMS int64
	// Replications is the number of independent runs, each with freshly
	// sampled offsets and jitters (default 20).
	Replications int
}

func (o Options) withDefaults() Options {
	if o.HorizonMS == 0 {
		o.HorizonMS = 60000
	}
	if o.Replications == 0 {
		o.Replications = 20
	}
	return o
}

// Result summarizes the observed response times of one requirement.
type Result struct {
	Req *arch.Requirement
	// MaxMS is the largest observed response time (a lower bound on the
	// WCRT).
	MaxMS *big.Rat
	// MeanMS is the mean over all completed activations.
	MeanMS *big.Rat
	// P50MS, P95MS, P99MS are latency percentiles over all activations —
	// the distribution view a discrete-event simulator offers that the
	// worst-case techniques cannot.
	P50MS, P95MS, P99MS *big.Rat
	// Completed counts measured activations across all replications.
	Completed int64
}

// Simulate runs the campaign and reports per-requirement observations.
func Simulate(sys *arch.System, reqs []*arch.Requirement, opts Options) (map[string]*Result, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	scale, err := sys.TimeScale()
	if err != nil {
		return nil, err
	}
	horizon, err := arch.ToUnits(new(big.Rat).SetInt64(opts.HorizonMS), scale)
	if err != nil {
		return nil, err
	}
	out := map[string]*Result{}
	type acc struct {
		max     int64
		sum     *big.Int
		count   int64
		samples []int64
	}
	accs := map[string]*acc{}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		out[r.Name] = &Result{Req: r}
		accs[r.Name] = &acc{sum: new(big.Int)}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for rep := 0; rep < opts.Replications; rep++ {
		run, err := newRun(sys, scale, horizon, rand.New(rand.NewSource(rng.Int63())))
		if err != nil {
			return nil, err
		}
		run.execute()
		for _, r := range reqs {
			a := accs[r.Name]
			for _, inst := range run.finished {
				if inst.sc != r.Scenario {
					continue
				}
				start := inst.inject
				if r.FromStep >= 0 {
					start = inst.doneAt[r.FromStep]
				}
				lat := inst.doneAt[r.ToStep] - start
				if lat > a.max {
					a.max = lat
				}
				a.sum.Add(a.sum, big.NewInt(lat))
				a.count++
				a.samples = append(a.samples, lat)
			}
		}
	}
	for name, a := range accs {
		res := out[name]
		res.Completed = a.count
		res.MaxMS = arch.UnitsToMS(a.max, scale)
		if a.count > 0 {
			mean := new(big.Rat).SetFrac(a.sum, new(big.Int).Mul(scale, big.NewInt(a.count)))
			res.MeanMS = mean
		} else {
			res.MeanMS = new(big.Rat)
		}
		sortInt64(a.samples)
		res.P50MS = arch.UnitsToMS(percentile(a.samples, 50), scale)
		res.P95MS = arch.UnitsToMS(percentile(a.samples, 95), scale)
		res.P99MS = arch.UnitsToMS(percentile(a.samples, 99), scale)
	}
	return out, nil
}

// instance is one activation of a scenario flowing through its step chain.
type instance struct {
	sc        *arch.Scenario
	step      int
	prio      int
	inject    int64
	seq       int64 // FIFO tiebreaker within equal priority
	remaining int64 // work left in the current step (for preemption)
	doneAt    []int64
}

// resource is the runtime state of one processor or bus.
type resource struct {
	name       string
	sched      arch.SchedKind
	preemptive bool
	tdma       *arch.TDMAConfig // non-nil for time-division buses
	queue      []*instance
	running    *instance
	lastStart  int64 // when the running instance (re)started
	token      int64 // invalidates stale completion events
}

// event is a calendar entry.
type event struct {
	at    int64
	kind  int // 0 arrival, 1 completion, 2 TDMA grant
	inst  *instance
	res   *resource
	sc    *arch.Scenario // grant owner (kind 2)
	token int64
	idx   int
}

type calendar []*event

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	// Arrivals before completions at equal times keeps queueing pessimistic.
	return c[i].kind < c[j].kind
}
func (c calendar) Swap(i, j int) { c[i], c[j] = c[j], c[i]; c[i].idx = i; c[j].idx = j }
func (c *calendar) Push(x any)   { e := x.(*event); e.idx = len(*c); *c = append(*c, e) }
func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	e := old[n-1]
	*c = old[:n-1]
	return e
}

// run is one replication.
type run struct {
	sys      *arch.System
	scale    *big.Int
	horizon  int64
	rng      *rand.Rand
	cal      calendar
	res      map[any]*resource
	durs     map[*arch.Scenario][]int64
	finished []*instance
	seq      int64
}

func newRun(sys *arch.System, scale *big.Int, horizon int64, rng *rand.Rand) (*run, error) {
	r := &run{
		sys: sys, scale: scale, horizon: horizon, rng: rng,
		res:  map[any]*resource{},
		durs: map[*arch.Scenario][]int64{},
	}
	for _, p := range sys.Processors {
		r.res[p] = &resource{name: p.Name, sched: p.Sched,
			preemptive: p.Sched == arch.SchedFPPreempt}
	}
	for _, b := range sys.Buses {
		res := &resource{name: b.Name, sched: b.Sched,
			preemptive: b.Sched == arch.SchedFPPreempt}
		if b.Sched == arch.SchedTDMA {
			res.tdma = b.TDMA
		}
		r.res[b] = res
	}
	for _, sc := range sys.Scenarios {
		durs := make([]int64, len(sc.Steps))
		for i := range sc.Steps {
			d, err := arch.ToUnits(sc.Steps[i].DurationMS(), scale)
			if err != nil {
				return nil, err
			}
			durs[i] = d
		}
		r.durs[sc] = durs
		for _, t := range r.sampleArrivals(sc) {
			inst := &instance{sc: sc, prio: sc.Priority, inject: t,
				doneAt: make([]int64, len(sc.Steps))}
			heap.Push(&r.cal, &event{at: t, kind: 0, inst: inst})
		}
	}
	// TDMA buses: schedule a grant per slot per cycle up to the horizon
	// (plus slack for in-flight work).
	for _, b := range sys.Buses {
		res := r.res[b]
		if res.tdma == nil {
			continue
		}
		cycle, err := arch.ToUnits(res.tdma.CycleMS, scale)
		if err != nil {
			return nil, err
		}
		for i := range res.tdma.Slots {
			sl := &res.tdma.Slots[i]
			start, err := arch.ToUnits(sl.StartMS, scale)
			if err != nil {
				return nil, err
			}
			for t := start; t <= horizon+2*cycle; t += cycle {
				heap.Push(&r.cal, &event{at: t, kind: 2, res: res, sc: sl.Scenario})
			}
		}
	}
	return r, nil
}

// sampleArrivals draws one concrete event stream for the scenario's arrival
// model, up to the horizon.
func (r *run) sampleArrivals(sc *arch.Scenario) []int64 {
	m := sc.Arrival
	period, _ := arch.ToUnits(m.PeriodMS, r.scale)
	var times []int64
	switch m.Kind {
	case arch.KindPeriodic:
		offset, _ := arch.ToUnits(m.OffsetMS, r.scale)
		for t := offset; t <= r.horizon; t += period {
			times = append(times, t)
		}
	case arch.KindPeriodicUnknownOffset:
		phase := r.rng.Int63n(period)
		for t := phase; t <= r.horizon; t += period {
			times = append(times, t)
		}
	case arch.KindSporadic:
		// Separations of at least one period, with occasional slack: a
		// sporadic source admits infinitely many behaviors, of which a
		// simulation samples only a few.
		t := r.rng.Int63n(period)
		for t <= r.horizon {
			times = append(times, t)
			gap := period
			if r.rng.Intn(2) == 0 {
				gap += r.rng.Int63n(period/2 + 1)
			}
			t += gap
		}
	case arch.KindPeriodicJitter:
		jitter, _ := arch.ToUnits(m.JitterMS, r.scale)
		phase := r.rng.Int63n(period)
		for k := int64(0); ; k++ {
			t := phase + k*period + r.rng.Int63n(jitter+1)
			if phase+k*period > r.horizon {
				break
			}
			times = append(times, t)
		}
	case arch.KindBursty:
		jitter, _ := arch.ToUnits(m.JitterMS, r.scale)
		minSep, _ := arch.ToUnits(m.MinSepMS, r.scale)
		phase := r.rng.Int63n(period)
		var raw []int64
		for k := int64(0); phase+k*period <= r.horizon; k++ {
			raw = append(raw, phase+k*period+r.rng.Int63n(jitter+1))
		}
		// Order-preserving FIFO release with the minimal separation.
		sortInt64(raw)
		last := int64(-1 << 62)
		for _, t := range raw {
			if t <= last+minSep {
				t = last + minSep + 1
			}
			times = append(times, t)
			last = t
		}
	}
	return times
}

func sortInt64(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// percentile returns the nearest-rank p-th percentile of sorted samples.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// execute drains the calendar.
func (r *run) execute() {
	for r.cal.Len() > 0 {
		e := heap.Pop(&r.cal).(*event)
		switch e.kind {
		case 0: // arrival of an instance at its current step's resource
			r.enqueue(e.at, e.inst)
		case 1: // completion of the running instance on a resource
			res := e.res
			if res.token != e.token || res.running == nil {
				continue // superseded by a preemption
			}
			r.complete(e.at, res)
		case 2: // TDMA grant: start one pending message of the slot owner
			res := e.res
			if res.running != nil {
				continue
			}
			best := -1
			for i, inst := range res.queue {
				if inst.sc == e.sc && (best < 0 || inst.seq < res.queue[best].seq) {
					best = i
				}
			}
			if best >= 0 {
				inst := res.queue[best]
				res.queue = append(res.queue[:best], res.queue[best+1:]...)
				r.start(e.at, res, inst)
			}
		}
	}
}

func (r *run) resourceOf(inst *instance) *resource {
	st := &inst.sc.Steps[inst.step]
	if st.IsCompute() {
		return r.res[st.Proc]
	}
	return r.res[st.Bus]
}

// enqueue delivers an instance to its step's resource, possibly preempting.
// Fresh arrivals get the step's full duration as remaining work; preempted
// instances re-enter the queue keeping their banked remainder.
func (r *run) enqueue(now int64, inst *instance) {
	inst.seq = r.seq
	r.seq++
	inst.remaining = r.durs[inst.sc][inst.step]
	res := r.resourceOf(inst)
	r.offer(now, res, inst)
}

// offer places an instance on a resource: run it, preempt for it, or queue it.
// On TDMA buses instances always queue and wait for their slot grant.
func (r *run) offer(now int64, res *resource, inst *instance) {
	if res.tdma != nil {
		res.queue = append(res.queue, inst)
		return
	}
	if res.running == nil {
		r.start(now, res, inst)
		return
	}
	if res.preemptive && inst.prio > res.running.prio {
		// Preempt: bank the remaining work of the running instance.
		prev := res.running
		prev.remaining -= now - res.lastStart
		res.queue = append(res.queue, prev)
		res.running = nil
		res.token++
		r.start(now, res, inst)
		return
	}
	res.queue = append(res.queue, inst)
}

// start begins (or resumes) executing an instance on an idle resource.
func (r *run) start(now int64, res *resource, inst *instance) {
	res.running = inst
	res.lastStart = now
	res.token++
	heap.Push(&r.cal, &event{at: now + inst.remaining, kind: 1, res: res, token: res.token})
}

// complete finishes the running instance's current step and dispatches the
// next pending one.
func (r *run) complete(now int64, res *resource) {
	inst := res.running
	res.running = nil
	inst.doneAt[inst.step] = now
	if inst.step+1 < len(inst.sc.Steps) {
		inst.step++
		r.enqueue(now, inst)
	} else if now <= r.horizon {
		r.finished = append(r.finished, inst)
	}
	r.dispatch(now, res)
}

// dispatch picks the next instance for an idle resource per its scheduler.
// TDMA buses dispatch only on grant events.
func (r *run) dispatch(now int64, res *resource) {
	if res.tdma != nil || len(res.queue) == 0 || res.running != nil {
		return
	}
	best := 0
	switch res.sched {
	case arch.SchedNondet:
		best = r.rng.Intn(len(res.queue))
	default: // fixed priority, FIFO among equals
		for i := 1; i < len(res.queue); i++ {
			q, b := res.queue[i], res.queue[best]
			if q.prio > b.prio || (q.prio == b.prio && q.seq < b.seq) {
				best = i
			}
		}
	}
	inst := res.queue[best]
	res.queue = append(res.queue[:best], res.queue[best+1:]...)
	r.start(now, res, inst)
}

// FormatResults renders the campaign results in Table 2 style.
func FormatResults(results map[string]*Result, names []string) string {
	s := ""
	for _, n := range names {
		r := results[n]
		s += fmt.Sprintf("%-16s max=%s ms p99=%s p95=%s p50=%s mean=%s ms (n=%d)\n",
			n, r.MaxMS.FloatString(3), r.P99MS.FloatString(3), r.P95MS.FloatString(3),
			r.P50MS.FloatString(3), r.MeanMS.FloatString(3), r.Completed)
	}
	return s
}
