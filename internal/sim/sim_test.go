package sim

import (
	"math/big"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

func ratMS(num, den int64) *big.Rat { return new(big.Rat).SetFrac64(num, den) }

func TestDeterministicPipeline(t *testing.T) {
	// Uncontended periodic chain: every activation takes exactly 30ms.
	sys := arch.NewSystem("pipe")
	pa := sys.AddProcessor("A", 10, arch.SchedFP)
	pb := sys.AddProcessor("B", 20, arch.SchedFP)
	bus := sys.AddBus("BUS", 8, arch.SchedFP)
	sc := sys.AddScenario("job", 1, arch.Periodic(arch.MS(100, 1), arch.MS(0, 1)))
	sc.Compute("opA", pa, 100000).Transfer("msg", bus, 10).Compute("opB", pb, 200000)
	req := arch.EndToEnd("e2e", sc)

	res, err := Simulate(sys, []*arch.Requirement{req}, Options{Seed: 1, HorizonMS: 2000, Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := res["e2e"]
	if r.Completed == 0 {
		t.Fatal("no activations completed")
	}
	if r.MaxMS.Cmp(ratMS(30, 1)) != 0 || r.MeanMS.Cmp(ratMS(30, 1)) != 0 {
		t.Errorf("deterministic latency: max=%s mean=%s, want 30",
			r.MaxMS.FloatString(3), r.MeanMS.FloatString(3))
	}
}

func TestSpanRequirementMeasured(t *testing.T) {
	sys := arch.NewSystem("pipe")
	pa := sys.AddProcessor("A", 10, arch.SchedFP)
	pb := sys.AddProcessor("B", 10, arch.SchedFP)
	sc := sys.AddScenario("job", 1, arch.Periodic(arch.MS(100, 1), arch.MS(0, 1)))
	sc.Compute("opA", pa, 100000).Compute("opB", pb, 50000)
	req := arch.Span("a2b", sc, 0, 1)
	res, err := Simulate(sys, []*arch.Requirement{req}, Options{Seed: 2, HorizonMS: 1000, Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res["a2b"].MaxMS; got.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("span latency = %s, want 5", got.FloatString(3))
	}
}

// contended mirrors the arch test: hi (5ms / 20ms) and lo (10ms / 40ms) on
// one processor.
func contended(sched arch.SchedKind, kind arch.EventKind) (*arch.System, *arch.Requirement, *arch.Requirement) {
	sys := arch.NewSystem("cont")
	p := sys.AddProcessor("P", 10, sched)
	model := func(p *big.Rat) arch.EventModel {
		switch kind {
		case arch.KindPeriodicUnknownOffset:
			return arch.PeriodicUnknownOffset(p)
		case arch.KindSporadic:
			return arch.Sporadic(p)
		default:
			return arch.Periodic(p, arch.MS(0, 1))
		}
	}
	hi := sys.AddScenario("hi", 2, model(arch.MS(20, 1)))
	hi.Compute("hop", p, 50000)
	lo := sys.AddScenario("lo", 1, model(arch.MS(40, 1)))
	lo.Compute("lop", p, 100000)
	return sys, arch.EndToEnd("hi", hi), arch.EndToEnd("lo", lo)
}

func TestSimulationUnderestimatesModelChecker(t *testing.T) {
	// The paper's Table 2 lesson: for every requirement, the simulated
	// maximum is at most the exact WCRT from the model checker.
	for _, sched := range []arch.SchedKind{arch.SchedFP, arch.SchedFPPreempt} {
		sys, hiReq, loReq := contended(sched, arch.KindPeriodicUnknownOffset)
		exactHi, err := arch.AnalyzeWCRT(sys, hiReq, arch.Options{HorizonMS: 100}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exactLo, err := arch.AnalyzeWCRT(sys, loReq, arch.Options{HorizonMS: 100}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := Simulate(sys, []*arch.Requirement{hiReq, loReq},
			Options{Seed: 7, HorizonMS: 4000, Replications: 10})
		if err != nil {
			t.Fatal(err)
		}
		if simRes["hi"].MaxMS.Cmp(exactHi.MS) > 0 {
			t.Errorf("sched %v: simulated hi max %s exceeds exact WCRT %s",
				sched, simRes["hi"].MaxMS.FloatString(3), exactHi.MS.FloatString(3))
		}
		if simRes["lo"].MaxMS.Cmp(exactLo.MS) > 0 {
			t.Errorf("sched %v: simulated lo max %s exceeds exact WCRT %s",
				sched, simRes["lo"].MaxMS.FloatString(3), exactLo.MS.FloatString(3))
		}
		if simRes["hi"].MaxMS.Sign() <= 0 {
			t.Error("simulation should observe positive latencies")
		}
	}
}

func TestPreemptiveSimBeatsNonPreemptiveForHi(t *testing.T) {
	sysN, hiN, _ := contended(arch.SchedFP, arch.KindPeriodicUnknownOffset)
	sysP, hiP, _ := contended(arch.SchedFPPreempt, arch.KindPeriodicUnknownOffset)
	rn, err := Simulate(sysN, []*arch.Requirement{hiN}, Options{Seed: 5, HorizonMS: 4000, Replications: 20})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Simulate(sysP, []*arch.Requirement{hiP}, Options{Seed: 5, HorizonMS: 4000, Replications: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Preemption can only help the high-priority task; with enough samples
	// the non-preemptive max should show blocking (> 5ms).
	if rp["hi"].MaxMS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("preemptive hi max = %s, want exactly 5 (never blocked)",
			rp["hi"].MaxMS.FloatString(3))
	}
	if rn["hi"].MaxMS.Cmp(ratMS(5, 1)) <= 0 {
		t.Errorf("non-preemptive hi max = %s, expected observed blocking > 5",
			rn["hi"].MaxMS.FloatString(3))
	}
}

func TestJitterAndBurstySampling(t *testing.T) {
	sys := arch.NewSystem("jit")
	p := sys.AddProcessor("P", 10, arch.SchedFP)
	sc := sys.AddScenario("s", 1, arch.PeriodicJitter(arch.MS(20, 1), arch.MS(10, 1)))
	sc.Compute("op", p, 50000)
	req := arch.EndToEnd("e2e", sc)
	res, err := Simulate(sys, []*arch.Requirement{req}, Options{Seed: 3, HorizonMS: 2000, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res["e2e"].MaxMS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("jitter within slack must not queue: max = %s", res["e2e"].MaxMS.FloatString(3))
	}

	sysB := arch.NewSystem("bur")
	pb := sysB.AddProcessor("P", 10, arch.SchedFP)
	scb := sysB.AddScenario("s", 1, arch.Bursty(arch.MS(20, 1), arch.MS(40, 1), arch.MS(0, 1)))
	scb.Compute("op", pb, 50000)
	reqb := arch.EndToEnd("e2e", scb)
	resB, err := Simulate(sysB, []*arch.Requirement{reqb}, Options{Seed: 3, HorizonMS: 2000, Replications: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Bursts may queue events: the observed max must stay within the exact
	// WCRT of 15ms and should exceed the uncontended 5ms.
	if resB["e2e"].MaxMS.Cmp(ratMS(15, 1)) > 0 {
		t.Errorf("bursty sim max %s exceeds exact WCRT 15", resB["e2e"].MaxMS.FloatString(3))
	}
	if resB["e2e"].MaxMS.Cmp(ratMS(5, 1)) <= 0 {
		t.Errorf("bursty sim should observe queueing, max = %s", resB["e2e"].MaxMS.FloatString(3))
	}
}

func TestNondetSchedulerRuns(t *testing.T) {
	sys, hiReq, _ := contended(arch.SchedNondet, arch.KindPeriodicUnknownOffset)
	res, err := Simulate(sys, []*arch.Requirement{hiReq}, Options{Seed: 11, HorizonMS: 2000, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res["hi"].Completed == 0 {
		t.Error("nondet scheduler must complete work")
	}
}

func TestFormatResults(t *testing.T) {
	sys, hiReq, _ := contended(arch.SchedFP, arch.KindPeriodicUnknownOffset)
	res, err := Simulate(sys, []*arch.Requirement{hiReq}, Options{Seed: 1, HorizonMS: 500, Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatResults(res, []string{"hi"}); s == "" {
		t.Error("FormatResults must render")
	}
}

func TestReproducibility(t *testing.T) {
	sys, hiReq, _ := contended(arch.SchedFP, arch.KindSporadic)
	a, err := Simulate(sys, []*arch.Requirement{hiReq}, Options{Seed: 9, HorizonMS: 2000, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sys, []*arch.Requirement{hiReq}, Options{Seed: 9, HorizonMS: 2000, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a["hi"].MaxMS.Cmp(b["hi"].MaxMS) != 0 || a["hi"].Completed != b["hi"].Completed {
		t.Error("same seed must reproduce the same campaign")
	}
}

func TestPercentiles(t *testing.T) {
	sys, hiReq, _ := contended(arch.SchedFP, arch.KindPeriodicUnknownOffset)
	res, err := Simulate(sys, []*arch.Requirement{hiReq},
		Options{Seed: 4, HorizonMS: 4000, Replications: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := res["hi"]
	// Percentiles are ordered and bounded by the max.
	if r.P50MS.Cmp(r.P95MS) > 0 || r.P95MS.Cmp(r.P99MS) > 0 || r.P99MS.Cmp(r.MaxMS) > 0 {
		t.Errorf("percentile ordering broken: p50=%s p95=%s p99=%s max=%s",
			r.P50MS.FloatString(3), r.P95MS.FloatString(3),
			r.P99MS.FloatString(3), r.MaxMS.FloatString(3))
	}
	// The uncontended latency (5ms) is the floor of every percentile.
	if r.P50MS.Cmp(ratMS(5, 1)) < 0 {
		t.Errorf("p50 %s below the execution time", r.P50MS.FloatString(3))
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    int
		want int64
	}{{50, 50}, {95, 100}, {99, 100}, {1, 10}, {100, 100}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%d) = %d, want %d", c.p, got, c.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty samples must give 0")
	}
}
