// Package profflag wires runtime/pprof CPU and heap profiling into the
// analysis CLIs as -cpuprofile / -memprofile flags, so hot-path work on the
// successor engine can be measured on the real workloads (a Table 1 sweep,
// a batch analysis) instead of synthetic benchmarks only. The -profile-out
// flag additionally captures the engine's own sweep profile (phase spans +
// sampled per-worker series, core.SweepProfile) as JSON.
package profflag

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
)

// Profiles holds the profile destinations parsed from the command line.
type Profiles struct {
	cpu string
	mem string
	out string
	mon *core.Monitor
}

// Register declares -cpuprofile, -memprofile, and -profile-out on the default
// flag set. Call before flag.Parse.
func Register() *Profiles {
	p := &Profiles{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&p.out, "profile-out", "", "write the sweep profile (phase spans + per-worker series) as JSON to this file")
	return p
}

// Monitor returns the profile-enabled monitor to thread into the run's
// core.Options, or nil when -profile-out was not given — so a run without
// the flag provably pays no sampling cost. Call after flag.Parse.
func (p *Profiles) Monitor() *core.Monitor {
	if p.out == "" {
		return nil
	}
	if p.mon == nil {
		p.mon = &core.Monitor{}
		p.mon.EnableProfile(core.ProfileConfig{})
	}
	return p.mon
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function flushes the CPU profile and writes the heap profile; defer it on
// the normal return path (profiles are not written when the command exits
// through a fatal error — a failed run is not the workload being measured).
// Call after flag.Parse.
func (p *Profiles) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.cpu != "" {
		cpuFile, err = os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture before dumping
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
		p.writeSweepProfile()
	}, nil
}

// writeSweepProfile dumps the recorded core.SweepProfile as indented JSON.
// Nothing is written when -profile-out is unset or no run used the monitor.
func (p *Profiles) writeSweepProfile() {
	if p.out == "" || p.mon == nil {
		return
	}
	prof := p.mon.Profile()
	if prof == nil {
		fmt.Fprintln(os.Stderr, "profile-out: no profile recorded (did the run use the monitor?)")
		return
	}
	data, err := json.MarshalIndent(prof, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile-out:", err)
		return
	}
	if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "profile-out:", err)
	}
}
