// Package profflag wires runtime/pprof CPU and heap profiling into the
// analysis CLIs as -cpuprofile / -memprofile flags, so hot-path work on the
// successor engine can be measured on the real workloads (a Table 1 sweep,
// a batch analysis) instead of synthetic benchmarks only.
package profflag

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the profile destinations parsed from the command line.
type Profiles struct {
	cpu string
	mem string
}

// Register declares -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func Register() *Profiles {
	p := &Profiles{}
	flag.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function flushes the CPU profile and writes the heap profile; defer it on
// the normal return path (profiles are not written when the command exits
// through a fatal error — a failed run is not the workload being measured).
// Call after flag.Parse.
func (p *Profiles) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.cpu != "" {
		cpuFile, err = os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture before dumping
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
