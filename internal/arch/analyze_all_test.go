package arch

import (
	"math/big"
	"testing"

	"repro/internal/core"
)

// This file is the arch-level batch-vs-sequential oracle: AnalyzeAll over a
// requirement set (one compilation, one exploration) must reproduce the
// per-requirement AnalyzeWCRT verdicts, suprema, and attainment flags
// bit-for-bit, on the stress networks that exercise every scheduler
// template. The icrns case-study half of the oracle lives in
// internal/icrns/batch_test.go.

// assertBatchMatchesSingles runs AnalyzeAll over reqs and AnalyzeWCRT per
// requirement with the same options, comparing every verdict, and asserts
// the batch performed exactly one exploration (every per-requirement Stats
// equal the shared sweep's).
func assertBatchMatchesSingles(t *testing.T, sys *System, reqs []*Requirement,
	copts Options, opts core.Options) *AllResult {
	t.Helper()
	all, err := AnalyzeAll(sys, reqs, copts, opts)
	if err != nil {
		t.Fatalf("AnalyzeAll: %v", err)
	}
	if len(all.Results) != len(reqs) {
		t.Fatalf("AnalyzeAll returned %d results for %d requirements", len(all.Results), len(reqs))
	}
	for i, req := range reqs {
		single, err := AnalyzeWCRT(sys, req, copts, opts)
		if err != nil {
			t.Fatalf("AnalyzeWCRT(%s): %v", req.Name, err)
		}
		got := all.Results[i]
		if got.Req != req {
			t.Errorf("result %d is for %v, want %s", i, got.Req, req.Name)
		}
		if got.MS.Cmp(single.MS) != 0 {
			t.Errorf("%s: batch WCRT %s != single %s", req.Name, got.MS.RatString(), single.MS.RatString())
		}
		if got.Attained != single.Attained || got.Exact != single.Exact ||
			got.BeyondHorizon != single.BeyondHorizon {
			t.Errorf("%s: batch flags (att=%v exact=%v beyond=%v) != single (att=%v exact=%v beyond=%v)",
				req.Name, got.Attained, got.Exact, got.BeyondHorizon,
				single.Attained, single.Exact, single.BeyondHorizon)
		}
		// Exactly one exploration: each result carries the one shared sweep.
		if got.Stats != all.Stats {
			t.Errorf("%s: result stats %+v differ from the shared sweep %+v — more than one exploration?",
				req.Name, got.Stats, all.Stats)
		}
	}
	return all
}

// TestAnalyzeAllContended covers the Fig. 4/5 processor templates: both
// scenarios of the contended system measured at once, non-preemptive and
// preemptive, sequentially and on the work-stealing frontier.
func TestAnalyzeAllContended(t *testing.T) {
	for _, sched := range []SchedKind{SchedFP, SchedFPPreempt, SchedNondet} {
		sys, hi, lo := contended(sched)
		reqs := []*Requirement{EndToEnd("hi", hi), EndToEnd("lo", lo)}
		for _, workers := range []int{1, 3} {
			assertBatchMatchesSingles(t, sys, reqs,
				Options{HorizonMS: 100}, core.Options{Workers: workers})
		}
	}
}

// TestAnalyzeAllSpanObservers covers requirements that share signals: the
// end of one span is the start of the next, so the shared done-channel is
// heard by two observers of the same scenario plus the end-to-end one.
func TestAnalyzeAllSpanObservers(t *testing.T) {
	sys, e2e := pipeline(Sporadic(MS(100, 1)))
	sc := sys.Scenarios[0]
	reqs := []*Requirement{
		e2e,
		Span("front", sc, -1, 1),
		Span("back", sc, 1, 2),
	}
	all := assertBatchMatchesSingles(t, sys, reqs, Options{HorizonMS: 100}, core.Options{})
	// Sanity anchor: the uncontended pipeline is 10+10+10 ms end to end.
	if all.Results[0].MS.Cmp(new(big.Rat).SetInt64(30)) != 0 {
		t.Errorf("pipeline end-to-end = %s ms, want 30", all.Results[0].MS.RatString())
	}
}

// TestAnalyzeAllTDMA covers the TDMA bus template.
func TestAnalyzeAllTDMA(t *testing.T) {
	sys, req := tdmaSystem(t)
	sc := sys.Scenarios[0]
	reqs := []*Requirement{req, Span("xfer", sc, -1, 0)}
	_ = reqs[1] // same span as req; exercises duplicate signals via distinct names
	assertBatchMatchesSingles(t, sys, reqs, Options{HorizonMS: 200}, core.Options{})
}

// TestAnalyzeAllPerRequirementHorizons pins HorizonMSFor: each observer in
// the shared network gets its own extrapolation horizon, and every verdict
// matches the single compilation run with the matching HorizonMS.
func TestAnalyzeAllPerRequirementHorizons(t *testing.T) {
	sys, hi, lo := contended(SchedFP)
	reqs := []*Requirement{EndToEnd("hi", hi), EndToEnd("lo", lo)}
	perReq := map[string]int64{"hi": 100, "lo": 25}
	copts := Options{
		HorizonMS:    100,
		HorizonMSFor: func(r *Requirement) int64 { return perReq[r.Name] },
	}
	all, err := AnalyzeAll(sys, reqs, copts, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		single, err := AnalyzeWCRT(sys, req, Options{HorizonMS: perReq[req.Name]}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := all.Results[i]
		if got.MS.Cmp(single.MS) != 0 || got.Attained != single.Attained ||
			got.Exact != single.Exact || got.BeyondHorizon != single.BeyondHorizon {
			t.Errorf("%s: batch %s (att=%v exact=%v beyond=%v) != single %s with horizon %d",
				req.Name, got.MS.RatString(), got.Attained, got.Exact, got.BeyondHorizon,
				single.MS.RatString(), perReq[req.Name])
		}
	}
	// The horizons must actually differ inside the compiled set.
	cs, err := CompileAll(sys, reqs, copts)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Horizons[0] == cs.Horizons[1] {
		t.Errorf("per-requirement horizons not applied: %v", cs.Horizons)
	}
}

// TestAnalyzeAllValidation covers the batch-specific error paths.
func TestAnalyzeAllValidation(t *testing.T) {
	sys, hi, _ := contended(SchedFP)
	if _, err := AnalyzeAll(sys, nil, Options{}, core.Options{}); err == nil {
		t.Error("empty requirement set must fail")
	}
	r1, r2 := EndToEnd("same", hi), EndToEnd("same", hi)
	if _, err := AnalyzeAll(sys, []*Requirement{r1, r2}, Options{}, core.Options{}); err == nil {
		t.Error("duplicate requirement names must fail")
	}
	if _, err := CompileAll(sys, []*Requirement{nil}, Options{}); err == nil {
		t.Error("nil requirement must fail")
	}
}

// TestDeadlineVerdictHelpers pins MeetsDeadline / ViolatesDeadline against
// VerifyDeadline, the model-checking formulation of the same property.
func TestDeadlineVerdictHelpers(t *testing.T) {
	sys, hi, _ := contended(SchedFP)
	req := EndToEnd("hi", hi)
	res, err := AnalyzeWCRT(sys, req, Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// WCRT(hi) = 15 ms, attained.
	for _, tc := range []struct {
		deadline int64
		meets    bool
	}{
		{10, false}, {15, false}, {16, true}, {100, true},
	} {
		d := new(big.Rat).SetInt64(tc.deadline)
		if got := res.MeetsDeadline(d); got != tc.meets {
			t.Errorf("MeetsDeadline(%d) = %v, want %v (WCRT %s attained=%v)",
				tc.deadline, got, tc.meets, res.MS.RatString(), res.Attained)
		}
		ok, _, err := VerifyDeadline(sys, req, d, Options{HorizonMS: 100}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok != tc.meets {
			t.Errorf("VerifyDeadline(%d) = %v disagrees with MeetsDeadline = %v", tc.deadline, ok, tc.meets)
		}
		if res.ViolatesDeadline(d) == tc.meets {
			t.Errorf("ViolatesDeadline(%d) must be the negation on an exact result", tc.deadline)
		}
	}
}
