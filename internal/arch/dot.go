package arch

import (
	"fmt"
	"strings"
)

// DOT renders the deployment as a Graphviz digraph — the textual analogue of
// the paper's Figure 1: hardware resources as boxes (with capacities and
// schedulers) and each scenario's step chain as a colored path across them.
func (s *System) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=9];\n", s.Name)
	procID := map[*Processor]string{}
	for i, p := range s.Processors {
		id := fmt.Sprintf("proc%d", i)
		procID[p] = id
		fmt.Fprintf(&sb, "  %s [shape=box, style=filled, fillcolor=lightblue, label=\"%s\\n%d MIPS, %s\"];\n",
			id, p.Name, p.MIPS, p.Sched)
	}
	busID := map[*Bus]string{}
	for i, b := range s.Buses {
		id := fmt.Sprintf("bus%d", i)
		busID[b] = id
		label := fmt.Sprintf("%s\\n%d kbit/s, %s", b.Name, b.KBitPerSec, b.Sched)
		if b.TDMA != nil {
			label += fmt.Sprintf("\\ncycle %s ms, %d slots", b.TDMA.CycleMS.RatString(), len(b.TDMA.Slots))
		}
		fmt.Fprintf(&sb, "  %s [shape=box3d, style=filled, fillcolor=lightyellow, label=\"%s\"];\n",
			id, label)
	}
	colors := []string{"red", "blue", "darkgreen", "purple", "orange", "brown"}
	for si, sc := range s.Scenarios {
		color := colors[si%len(colors)]
		fmt.Fprintf(&sb, "  env%d [shape=oval, label=\"%s\\n%v (prio %d)\"];\n",
			si, sc.Name, sc.Arrival, sc.Priority)
		prev := fmt.Sprintf("env%d", si)
		for i := range sc.Steps {
			st := &sc.Steps[i]
			var node string
			if st.IsCompute() {
				node = procID[st.Proc]
			} else {
				node = busID[st.Bus]
			}
			fmt.Fprintf(&sb, "  %s -> %s [color=%s, label=\"%d. %s\\n%s ms\"];\n",
				prev, node, color, i+1, st.Name, st.DurationMS().FloatString(3))
			prev = node
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
