package arch

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestWCRTWitnessTrace(t *testing.T) {
	// The non-preemptive blocking case: the witness must show lo being
	// dispatched before hi, the trace ending at the observer's seen state.
	sys, hi, _ := contended(SchedFP)
	trace, res, err := WCRTWitness(sys, EndToEnd("hi", hi), Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MS.RatString() != "15" {
		t.Fatalf("witness WCRT = %s, want 15", res.MS.RatString())
	}
	if !strings.Contains(trace, "run_lo.lop") {
		t.Errorf("critical-instant trace must show the blocking lo job:\n%s", trace)
	}
	if !strings.Contains(trace, "OBS.watch->seen") {
		t.Errorf("trace must end at the observer's seen transition:\n%s", trace)
	}
}

func TestWCRTWitnessUncontended(t *testing.T) {
	sys, req := pipeline(Sporadic(MS(100, 1)))
	trace, res, err := WCRTWitness(sys, req, Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MS.RatString() != "30" {
		t.Fatalf("witness WCRT = %s, want 30", res.MS.RatString())
	}
	for _, step := range []string{"opA", "msg", "opB"} {
		if !strings.Contains(trace, step) {
			t.Errorf("trace missing step %s:\n%s", step, trace)
		}
	}
}

func TestSystemDOT(t *testing.T) {
	sys, _ := pipeline(Sporadic(MS(100, 1)))
	dot := sys.DOT()
	for _, want := range []string{"digraph", "10 MIPS", "8 kbit/s", "opA", "msg", "opB", "sp(P=100)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("deployment DOT missing %q", want)
		}
	}
	tsys, _ := tdmaSystem(t)
	if !strings.Contains(tsys.DOT(), "cycle 20 ms") {
		t.Error("TDMA slot table must render")
	}
}
