package arch

import (
	"testing"

	"repro/internal/core"
)

// tdmaSystem: one 3ms message on an 8 kbit/s TDMA bus, cycle 20ms with the
// scenario's slot at [0, 5). Worst case: the message arrives just after its
// grant and waits a full cycle: WCRT = 20 + 3 = 23 ms.
func tdmaSystem(t *testing.T) (*System, *Requirement) {
	t.Helper()
	sys := NewSystem("tdma")
	bus := sys.AddBus("BUS", 8, SchedTDMA)
	sc := sys.AddScenario("s", 1, Sporadic(MS(50, 1)))
	sc.Transfer("msg", bus, 3)
	bus.TDMA = &TDMAConfig{
		CycleMS: MS(20, 1),
		Slots:   []TDMASlot{{Scenario: sc, StartMS: MS(0, 1), EndMS: MS(5, 1)}},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	return sys, EndToEnd("e2e", sc)
}

func TestTDMAWorstCaseWaitsFullCycle(t *testing.T) {
	sys, req := tdmaSystem(t)
	res, err := AnalyzeWCRT(sys, req, Options{HorizonMS: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MS.RatString() != "23" {
		t.Errorf("TDMA WCRT = %s ms, want 23 (full cycle + transfer)", res.MS.FloatString(3))
	}
	if !res.Exact {
		t.Error("TDMA analysis should be exact")
	}
}

func TestTDMATwoSlotsIsolateScenarios(t *testing.T) {
	// Two scenarios with dedicated slots never interfere: each sees only
	// its own cycle wait, regardless of the other's traffic.
	sys := NewSystem("tdma2")
	bus := sys.AddBus("BUS", 8, SchedTDMA)
	a := sys.AddScenario("a", 2, Sporadic(MS(60, 1)))
	a.Transfer("am", bus, 3)
	b := sys.AddScenario("b", 1, Sporadic(MS(60, 1)))
	b.Transfer("bm", bus, 4)
	bus.TDMA = &TDMAConfig{
		CycleMS: MS(20, 1),
		Slots: []TDMASlot{
			{Scenario: a, StartMS: MS(0, 1), EndMS: MS(5, 1)},
			{Scenario: b, StartMS: MS(10, 1), EndMS: MS(15, 1)},
		},
	}
	resA, err := AnalyzeWCRT(sys, EndToEnd("a", a), Options{HorizonMS: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := AnalyzeWCRT(sys, EndToEnd("b", b), Options{HorizonMS: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resA.MS.RatString() != "23" {
		t.Errorf("scenario a WCRT = %s, want 23", resA.MS.FloatString(3))
	}
	if resB.MS.RatString() != "24" {
		t.Errorf("scenario b WCRT = %s, want 24 (cycle + 4ms transfer)", resB.MS.FloatString(3))
	}
}

func TestTDMAValidation(t *testing.T) {
	sys := NewSystem("bad")
	bus := sys.AddBus("BUS", 8, SchedTDMA)
	sc := sys.AddScenario("s", 1, Sporadic(MS(50, 1)))
	sc.Transfer("msg", bus, 3)
	if err := sys.Validate(); err == nil {
		t.Error("TDMA bus without a slot table must be rejected")
	}
	bus.TDMA = &TDMAConfig{CycleMS: MS(20, 1), Slots: []TDMASlot{
		{Scenario: sc, StartMS: MS(10, 1), EndMS: MS(25, 1)},
	}}
	if err := sys.Validate(); err == nil {
		t.Error("slot beyond the cycle must be rejected")
	}
	bus.TDMA = &TDMAConfig{CycleMS: MS(20, 1), Slots: []TDMASlot{
		{Scenario: sc, StartMS: MS(0, 1), EndMS: MS(10, 1)},
		{Scenario: sc, StartMS: MS(5, 1), EndMS: MS(15, 1)},
	}}
	if err := sys.Validate(); err == nil {
		t.Error("overlapping slots must be rejected")
	}
	bus.TDMA = &TDMAConfig{CycleMS: MS(20, 1), Slots: []TDMASlot{
		{Scenario: sc, StartMS: MS(0, 1), EndMS: MS(2, 1)},
	}}
	if _, err := Compile(sys, EndToEnd("e", sc), Options{}); err == nil {
		t.Error("message longer than its slot must be rejected at compile time")
	}
	// A processor cannot be TDMA.
	sys2 := NewSystem("badproc")
	p := sys2.AddProcessor("P", 10, SchedTDMA)
	sc2 := sys2.AddScenario("s", 1, Sporadic(MS(50, 1)))
	sc2.Compute("op", p, 1000)
	if err := sys2.Validate(); err == nil {
		t.Error("TDMA processor must be rejected")
	}
	// A scenario with traffic but no slot.
	sys3 := NewSystem("noslot")
	bus3 := sys3.AddBus("BUS", 8, SchedTDMA)
	sc3 := sys3.AddScenario("s", 1, Sporadic(MS(50, 1)))
	sc3.Transfer("msg", bus3, 3)
	other := sys3.AddScenario("other", 1, Sporadic(MS(50, 1)))
	bus3.TDMA = &TDMAConfig{CycleMS: MS(20, 1), Slots: []TDMASlot{
		{Scenario: other, StartMS: MS(0, 1), EndMS: MS(5, 1)},
	}}
	_ = other
	if _, err := Compile(sys3, EndToEnd("e", sc3), Options{}); err == nil {
		t.Error("traffic without a slot must be rejected at compile time")
	}
}
