package arch

import (
	"testing"

	"repro/internal/core"
)

const pipelineJSON = `{
  "name": "pipe",
  "processors": [
    {"name": "A", "mips": 10, "sched": "fp"},
    {"name": "B", "mips": 20, "sched": "fp-preemptive"}
  ],
  "buses": [{"name": "BUS", "kbit_per_sec": 8, "sched": "fp"}],
  "scenarios": [{
    "name": "job", "priority": 1,
    "arrival": {"kind": "po", "period_ms": "100", "offset_ms": "0"},
    "steps": [
      {"name": "opA", "processor": "A", "instructions": 100000},
      {"name": "msg", "bus": "BUS", "bytes": 10},
      {"name": "opB", "processor": "B", "instructions": 200000}
    ]
  }],
  "requirements": [{"name": "e2e", "scenario": "job", "from": -1, "to": 2}]
}`

func TestParseSystemRoundTrip(t *testing.T) {
	sys, reqs, err := ParseSystem([]byte(pipelineJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Processors) != 2 || len(sys.Buses) != 1 || len(sys.Scenarios) != 1 {
		t.Fatalf("unexpected shape: %+v", sys)
	}
	if sys.Processors[1].Sched != SchedFPPreempt {
		t.Error("scheduler not parsed")
	}
	if len(reqs) != 1 || reqs[0].Name != "e2e" {
		t.Fatalf("requirements not parsed: %+v", reqs)
	}
	res, err := AnalyzeWCRT(sys, reqs[0], Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MS.RatString() != "30" {
		t.Errorf("parsed pipeline WCRT = %s, want 30", res.MS.RatString())
	}
}

func TestParseSystemRationalTimes(t *testing.T) {
	js := `{
	  "name": "x",
	  "processors": [{"name": "P", "mips": 22}],
	  "scenarios": [{
	    "name": "s", "priority": 1,
	    "arrival": {"kind": "po", "period_ms": "125/4"},
	    "steps": [{"name": "op", "processor": "P", "instructions": 100000}]
	  }]
	}`
	sys, _, err := ParseSystem([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scenarios[0].Arrival.PeriodMS.RatString() != "125/4" {
		t.Errorf("period = %s", sys.Scenarios[0].Arrival.PeriodMS.RatString())
	}
}

func TestParseSystemErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","scenarios":[{"name":"s","priority":1,
		  "arrival":{"kind":"warp","period_ms":"10"},
		  "steps":[{"name":"op","processor":"P","instructions":1}]}]}`,
		`{"name":"x","scenarios":[{"name":"s","priority":1,
		  "arrival":{"kind":"po","period_ms":"10"},
		  "steps":[{"name":"op","processor":"NOPE","instructions":1}]}]}`,
		`{"name":"x","processors":[{"name":"P","mips":1,"sched":"quantum"}]}`,
		`{"name":"x","processors":[{"name":"P","mips":1},{"name":"P","mips":2}]}`,
		`{"name":"x","processors":[{"name":"P","mips":1}],
		  "scenarios":[{"name":"s","priority":1,
		  "arrival":{"kind":"po","period_ms":"ten"},
		  "steps":[{"name":"op","processor":"P","instructions":1}]}]}`,
		`{"name":"x","processors":[{"name":"P","mips":1}],
		  "scenarios":[{"name":"s","priority":1,
		  "arrival":{"kind":"po","period_ms":"10"},
		  "steps":[{"name":"op","processor":"P","bus":"B","instructions":1}]}]}`,
		`{"name":"x","processors":[{"name":"P","mips":1}],
		  "scenarios":[{"name":"s","priority":1,
		  "arrival":{"kind":"po","period_ms":"10"},
		  "steps":[{"name":"op","processor":"P","instructions":1}]}],
		  "requirements":[{"name":"r","scenario":"ghost","from":-1,"to":0}]}`,
	}
	for i, js := range cases {
		if _, _, err := ParseSystem([]byte(js)); err == nil {
			t.Errorf("case %d: expected a parse/validation error", i)
		}
	}
}

// TestMarshalSystemRoundTrip pins MarshalSystem as the inverse of
// ParseSystem: marshalling a parsed system re-parses to an equivalent
// description (fixed point after one marshal), and the re-parsed copy
// analyzes to bit-identical verdicts.
func TestMarshalSystemRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"pipeline": pipelineJSON,
		"tdma": `{
		  "name": "t",
		  "buses": [{"name": "B", "kbit_per_sec": 8, "sched": "tdma",
		    "tdma": {"cycle_ms": "20", "slots": [
		      {"scenario": "s", "start_ms": "0", "end_ms": "5"}]}}],
		  "scenarios": [{"name": "s", "priority": 1,
		    "arrival": {"kind": "sp", "period_ms": "50"},
		    "steps": [{"name": "m", "bus": "B", "bytes": 3}]}],
		  "requirements": [{"name": "e", "scenario": "s", "from": -1, "to": 0}]
		}`,
		"rational-bursty": `{
		  "name": "x",
		  "processors": [{"name": "P", "mips": 22}],
		  "scenarios": [{
		    "name": "s", "priority": 1,
		    "arrival": {"kind": "bur", "period_ms": "125/4", "jitter_ms": "125/2", "min_sep_ms": "0"},
		    "steps": [{"name": "op", "processor": "P", "instructions": 100000}]
		  }],
		  "requirements": [{"name": "e", "scenario": "s", "from": -1, "to": 0}]
		}`,
	} {
		sys, reqs, err := ParseSystem([]byte(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		out, err := MarshalSystem(sys, reqs)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		sys2, reqs2, err := ParseSystem(out)
		if err != nil {
			t.Fatalf("%s: re-parse of marshalled output: %v\n%s", name, err, out)
		}
		out2, err := MarshalSystem(sys2, reqs2)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if string(out) != string(out2) {
			t.Errorf("%s: marshal not a fixed point after one round trip:\n%s\nvs\n%s", name, out, out2)
		}
		a1, err := AnalyzeAll(sys, reqs, Options{HorizonMS: 200}, core.Options{})
		if err != nil {
			t.Fatalf("%s: analyze original: %v", name, err)
		}
		a2, err := AnalyzeAll(sys2, reqs2, Options{HorizonMS: 200}, core.Options{})
		if err != nil {
			t.Fatalf("%s: analyze round-tripped: %v", name, err)
		}
		for i := range a1.Results {
			r1, r2 := a1.Results[i], a2.Results[i]
			if r1.MS.Cmp(r2.MS) != 0 || r1.Attained != r2.Attained || r1.Exact != r2.Exact ||
				r1.BeyondHorizon != r2.BeyondHorizon {
				t.Errorf("%s: %s: round-tripped verdict %s differs from original %s",
					name, r1.Req.Name, r2.MS.RatString(), r1.MS.RatString())
			}
		}
	}
}

// TestMarshalSystemProgrammatic covers a builder-constructed system (the
// path the service oracle uses for the case-study models): marshal, parse,
// and compare the analysis verdicts.
func TestMarshalSystemProgrammatic(t *testing.T) {
	sys, hi, lo := contended(SchedFPPreempt)
	reqs := []*Requirement{EndToEnd("hi", hi), EndToEnd("lo", lo)}
	data, err := MarshalSystem(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sys2, reqs2, err := ParseSystem(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	a1, err := AnalyzeAll(sys, reqs, Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AnalyzeAll(sys2, reqs2, Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Results {
		if a1.Results[i].MS.Cmp(a2.Results[i].MS) != 0 {
			t.Errorf("%s: %s != %s after round trip",
				reqs[i].Name, a1.Results[i].MS.RatString(), a2.Results[i].MS.RatString())
		}
	}
}

func TestParseSystemTDMA(t *testing.T) {
	js := `{
	  "name": "t",
	  "buses": [{"name": "B", "kbit_per_sec": 8, "sched": "tdma",
	    "tdma": {"cycle_ms": "20", "slots": [
	      {"scenario": "s", "start_ms": "0", "end_ms": "5"}]}}],
	  "scenarios": [{"name": "s", "priority": 1,
	    "arrival": {"kind": "sp", "period_ms": "50"},
	    "steps": [{"name": "m", "bus": "B", "bytes": 3}]}],
	  "requirements": [{"name": "e", "scenario": "s", "from": -1, "to": 0}]
	}`
	sys, reqs, err := ParseSystem([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Buses[0].TDMA == nil || len(sys.Buses[0].TDMA.Slots) != 1 {
		t.Fatal("TDMA table not parsed")
	}
	res, err := AnalyzeWCRT(sys, reqs[0], Options{HorizonMS: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MS.RatString() != "23" {
		t.Errorf("parsed TDMA WCRT = %s, want 23", res.MS.FloatString(3))
	}
	// Slot referencing an unknown scenario must fail.
	bad := `{"name":"t","buses":[{"name":"B","kbit_per_sec":8,"sched":"tdma",
	  "tdma":{"cycle_ms":"20","slots":[{"scenario":"ghost","start_ms":"0","end_ms":"5"}]}}],
	  "scenarios":[{"name":"s","priority":1,"arrival":{"kind":"sp","period_ms":"50"},
	  "steps":[{"name":"m","bus":"B","bytes":3}]}]}`
	if _, _, err := ParseSystem([]byte(bad)); err == nil {
		t.Error("unknown slot scenario must be rejected")
	}
}
