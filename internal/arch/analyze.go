package arch

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/dbm"
)

// WCRTResult is the worst-case response time of one requirement.
type WCRTResult struct {
	Req *Requirement
	// MS is the response-time bound in exact milliseconds.
	MS *big.Rat
	// Attained reports whether the bound is reached by some run (≤) or only
	// approached (<).
	Attained bool
	// Exact reports whether the bound is the true supremum: the exploration
	// completed and stayed within the observation horizon. When false, MS
	// is only a lower bound on the WCRT — the paper's "greater than" rows.
	Exact bool
	// BeyondHorizon reports that some response exceeded the observation
	// horizon (raise Options.HorizonMS to measure it).
	BeyondHorizon bool
	Stats         core.Stats
}

// String renders the result the way the paper's tables do: exact values as
// plain milliseconds, inexact ones as lower bounds.
func (r WCRTResult) String() string {
	v := r.MS.FloatString(3)
	if r.Exact {
		return v
	}
	return "> " + v
}

// AnalyzeWCRT compiles the system with a measuring observer for req and
// computes the worst-case response time as the supremum of the observer
// clock over all reachable "seen" states. It is the one-requirement special
// case of AnalyzeAll: one observer in the network, one supremum query on the
// sweep.
//
// With copts/opts zero values this is the paper's exhaustive analysis. For
// intractable cases set opts.MaxStates and opts.Order (DFS or RDFS) to
// reproduce the paper's "structured testing" mode: the result is then a
// lower bound (Exact=false).
func AnalyzeWCRT(sys *System, req *Requirement, copts Options, opts core.Options) (WCRTResult, error) {
	all, err := AnalyzeAll(sys, []*Requirement{req}, copts, opts)
	if err != nil {
		return WCRTResult{}, err
	}
	return all.Results[0], nil
}

// AtSeen returns the state predicate "the observer is in its seen location".
func (c *Compiled) AtSeen() func(*core.State) bool {
	proc, seen := c.Obs.Proc, c.Obs.Seen
	return func(s *core.State) bool { return s.Locs[proc] == seen }
}

// AllResult is the outcome of AnalyzeAll: every requirement's worst-case
// response time measured in ONE exploration of one compiled network.
type AllResult struct {
	// Results holds one WCRT per requirement, parallel to the reqs argument.
	// Each result's Stats equal the shared Stats below — there is only one
	// sweep; do not sum them across requirements.
	Results []WCRTResult
	// Stats is the effort of the single shared exploration.
	Stats core.Stats
}

// AnalyzeAll compiles the system ONCE with a measuring observer per
// requirement (CompileAll) and computes every worst-case response time from
// a single exploration: one SupClockQuery per observer clock attached to one
// core.RunQueries sweep. This replaces k requirements × 1 exploration with 1
// exploration — the dominant cost of the paper's Table 1/2 reproduction.
//
// Verdicts and bounds match per-requirement AnalyzeWCRT exactly: each
// observer in the shared network is a pure listener, so its measured
// supremum equals the one it measures compiled alone. Stats differ, of
// course — the shared network carries every observer. For deadline verdicts
// over the same sweep, test each result with WCRTResult.MeetsDeadline /
// ViolatesDeadline.
//
// opts.MaxStates budgets the single shared sweep; a truncated sweep
// degrades every requirement to a lower bound (Exact=false), as in
// AnalyzeWCRT.
func AnalyzeAll(sys *System, reqs []*Requirement, copts Options, opts core.Options) (*AllResult, error) {
	cs, err := CompileAll(sys, reqs, copts)
	if err != nil {
		return nil, err
	}
	return cs.Analyze(opts)
}

// Analyze computes every requirement's worst-case response time from the
// already-compiled set with ONE exploration: one SupClockQuery per observer
// clock on one core.RunQueries sweep. It is the analysis half of AnalyzeAll,
// split out so callers that cache compiled networks (internal/serve) can pay
// compilation once and run any number of independent explorations against the
// same CompiledSet — the set is immutable after CompileAll and safe for
// concurrent Analyze calls, each of which builds its own checker state.
func (cs *CompiledSet) Analyze(opts core.Options) (*AllResult, error) {
	checker, err := core.NewChecker(cs.Net)
	if err != nil {
		return nil, err
	}
	reqs := cs.Reqs
	sups := make([]*core.SupClockQuery, len(reqs))
	queries := make([]core.Query, len(reqs))
	for i := range reqs {
		sups[i] = core.NewSupClockQuery(cs.Obs[i].Y.ID, cs.AtSeen(i))
		queries[i] = sups[i]
	}
	stats, err := checker.RunQueries(opts, queries...)
	if err != nil {
		return nil, err
	}
	out := &AllResult{Results: make([]WCRTResult, len(reqs)), Stats: stats}
	for i, req := range reqs {
		sup := sups[i].Result
		if !sup.Seen && !sup.Truncated {
			return nil, fmt.Errorf("arch: requirement %s: no measured response is reachable", req.Name)
		}
		res := WCRTResult{Req: req, Stats: stats}
		switch {
		case sup.Unbounded:
			res.MS = cs.UnitsToMS(cs.Horizons[i])
			res.BeyondHorizon = true
		default:
			res.MS = cs.UnitsToMS(sup.Max.Value())
			res.Attained = sup.Max.Weak()
			res.Exact = !sup.Truncated
		}
		out.Results[i] = res
	}
	return out, nil
}

// ViolatesDeadline reports whether some measured response reaches or
// exceeds the deadline — the negation of the paper's Property 1,
// AG(seen → y < deadline), evaluated against the measured supremum. The
// observation horizon must cover the deadline for a BeyondHorizon result to
// soundly count as a violation (VerifyDeadline and icrns.Verify arrange
// that). On a truncated (non-Exact) result, false means only "no violation
// observed", exactly like a truncated CheckSafety pass.
func (r WCRTResult) ViolatesDeadline(deadlineMS *big.Rat) bool {
	if r.BeyondHorizon {
		return true
	}
	cmp := r.MS.Cmp(deadlineMS)
	if r.Attained {
		return cmp >= 0 // the bound is reached: y = MS ≥ deadline occurs
	}
	return cmp > 0 // the bound is only approached: y < MS always
}

// MeetsDeadline reports whether the requirement provably satisfies
// "response < deadlineMS": the bound is exact and strictly below the
// deadline. A truncated or beyond-horizon result never proves a deadline.
func (r WCRTResult) MeetsDeadline(deadlineMS *big.Rat) bool {
	return r.Exact && !r.ViolatesDeadline(deadlineMS)
}

// AnalyzeWCRTBinary reproduces the paper's methodology (Property 1): binary
// search for the smallest C with AG(seen → y < C). hiMS bounds the search
// from above in milliseconds. The result's MS is the supremum implied by the
// minimal C under integer time: the WCRT lies in [C-1, C) model units.
// The zone graph is identical across thresholds, so BinarySearchWCRT answers
// every threshold from one exploration's supremum reduction rather than
// re-exploring per iteration; the returned MinimalC is unchanged.
func AnalyzeWCRTBinary(sys *System, req *Requirement, copts Options,
	opts core.Options, hiMS int64) (WCRTResult, int64, error) {
	copts = copts.withDefaults()
	if hiMS <= 0 {
		hiMS = copts.HorizonMS
	}
	if copts.HorizonMS < hiMS {
		copts.HorizonMS = hiMS
	}
	c, err := Compile(sys, req, copts)
	if err != nil {
		return WCRTResult{}, 0, err
	}
	checker, err := core.NewChecker(c.Net)
	if err != nil {
		return WCRTResult{}, 0, err
	}
	hiUnits, err := toUnits(new(big.Rat).SetInt64(hiMS), c.Scale)
	if err != nil {
		return WCRTResult{}, 0, err
	}
	bs, err := checker.BinarySearchWCRT(c.Obs.Y.ID, c.AtSeen(), 0, hiUnits, opts)
	if err != nil {
		return WCRTResult{}, 0, err
	}
	res := WCRTResult{Req: req, Stats: bs.TotalStats}
	if !bs.Holds {
		res.MS = c.UnitsToMS(hiUnits)
		res.BeyondHorizon = true
		return res, bs.MinimalC, nil
	}
	// AG(y < C) holds minimally at C, so the supremum is at most C and
	// above C-1; report C-1 which equals the exact value whenever the
	// supremum is attained at an integer (always true in a scaled model).
	res.MS = c.UnitsToMS(bs.MinimalC - 1)
	res.Attained = true
	res.Exact = true
	return res, bs.MinimalC, nil
}

// WCRTWitness returns a human-readable symbolic trace to a configuration
// that realizes the requirement's worst-case response time: the "critical
// instant" schedule. It first computes the WCRT, then searches for a seen
// state whose observer clock reaches it. Both passes honor
// opts.Workers — the unified engine reconstructs witness traces from its
// per-worker parent logs, so critical-instant extraction scales with cores.
func WCRTWitness(sys *System, req *Requirement, copts Options, opts core.Options) (string, WCRTResult, error) {
	res, err := AnalyzeWCRT(sys, req, copts, opts)
	if err != nil {
		return "", res, err
	}
	trace, err := WitnessForResult(sys, req, res, copts, opts)
	return trace, res, err
}

// WitnessForResult materializes a critical-instant trace for an
// already-computed WCRT: one reachability sweep to a seen state whose
// observer clock reaches the known bound, with no re-measurement. Callers
// holding batch results (AnalyzeAll, or a cached service verdict) get the
// trace for the cost of a single extra exploration; WCRTWitness is the
// compute-then-witness convenience over it.
func WitnessForResult(sys *System, req *Requirement, res WCRTResult, copts Options, opts core.Options) (string, error) {
	c, err := Compile(sys, req, copts)
	if err != nil {
		return "", err
	}
	checker, err := core.NewChecker(c.Net)
	if err != nil {
		return "", err
	}
	// The witness state allows the observer clock to reach the bound:
	// its upper bound is at least (≤ value) — or (< value) when the
	// supremum is approached rather than attained.
	bound := new(big.Rat).Mul(res.MS, new(big.Rat).SetInt(c.Scale))
	if !bound.IsInt() {
		return "", fmt.Errorf("arch: internal: WCRT %s not integral in model units", res.MS.RatString())
	}
	v := bound.Num().Int64()
	atSeen := c.AtSeen()
	found, trace, _, err := checker.Reachable(func(s *core.State) bool {
		if !atSeen(s) {
			return false
		}
		sup := s.Zone.Sup(int(c.Obs.Y.ID))
		if res.Attained {
			return sup >= dbm.LE(v)
		}
		return sup >= dbm.LT(v)
	}, opts)
	if err != nil {
		return "", err
	}
	if !found {
		return "", fmt.Errorf("arch: no witness found at the computed bound (truncated search?)")
	}
	return core.FormatTrace(c.Net, trace), nil
}

// DeadlockResult is the outcome of CheckDeadlockFree at the architecture
// level.
type DeadlockResult struct {
	// Free reports whether no reachable configuration of the compiled
	// system (tasks, schedulers, buses, environment, observer) deadlocks.
	Free bool
	// Trace is a formatted symbolic run into the deadlocked configuration
	// when Free is false.
	Trace string
	Stats core.Stats
}

// CheckDeadlockFree verifies that the compiled system has no reachable
// deadlocked configuration — a modeling-sanity check for architecture
// descriptions (a deadlock here means the scheduler, bus, or environment
// automata wedge each other, e.g. an event model that outpaces a full
// queue). The requirement only selects which observer is compiled in; the
// verdict concerns the whole system. opts.Workers parallelizes the search,
// witness trace included.
func CheckDeadlockFree(sys *System, req *Requirement, copts Options, opts core.Options) (DeadlockResult, error) {
	c, err := Compile(sys, req, copts)
	if err != nil {
		return DeadlockResult{}, err
	}
	checker, err := core.NewChecker(c.Net)
	if err != nil {
		return DeadlockResult{}, err
	}
	res, err := checker.CheckDeadlockFree(opts)
	if err != nil {
		return DeadlockResult{}, err
	}
	out := DeadlockResult{Free: res.Free, Stats: res.Stats}
	if !res.Free {
		out.Trace = core.FormatTrace(c.Net, res.Witness)
	}
	return out, nil
}

// VerifyDeadline checks the timeliness requirement "response < deadlineMS"
// by model checking AG(seen → y < deadline) directly — the paper's
// Property 1 with the deadline as the constant. On violation it returns a
// counterexample trace leading to a response that reaches the deadline.
func VerifyDeadline(sys *System, req *Requirement, deadlineMS *big.Rat,
	copts Options, opts core.Options) (bool, string, error) {
	copts = copts.withDefaults()
	// The horizon must cover the deadline so extrapolation keeps the bound.
	d := new(big.Rat).Set(deadlineMS)
	dCeil := new(big.Int).Add(d.Num(), new(big.Int).Sub(d.Denom(), big.NewInt(1)))
	dCeil.Div(dCeil, d.Denom())
	if copts.HorizonMS < dCeil.Int64() {
		copts.HorizonMS = dCeil.Int64() * 2
	}
	c, err := Compile(sys, req, copts)
	if err != nil {
		return false, "", err
	}
	checker, err := core.NewChecker(c.Net)
	if err != nil {
		return false, "", err
	}
	bound := new(big.Rat).Mul(deadlineMS, new(big.Rat).SetInt(c.Scale))
	if !bound.IsInt() {
		return false, "", fmt.Errorf("arch: deadline %s ms is not integral in model units; refine the time base",
			deadlineMS.RatString())
	}
	v := bound.Num().Int64()
	atSeen := c.AtSeen()
	res, err := checker.CheckSafety(core.Property{
		Desc: fmt.Sprintf("%s < %s ms", req.Name, deadlineMS.RatString()),
		Holds: func(s *core.State) bool {
			if !atSeen(s) {
				return true
			}
			return s.Zone.Sup(int(c.Obs.Y.ID)) < dbm.LE(v)
		},
	}, opts)
	if err != nil {
		return false, "", err
	}
	if res.Holds {
		return true, "", nil
	}
	return false, core.FormatTrace(c.Net, res.Counterexample), nil
}
