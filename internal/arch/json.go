package arch

import (
	"encoding/json"
	"fmt"
	"math/big"
)

// jsonSystem is the on-disk description consumed by ParseSystem. All
// millisecond fields are strings parsed as exact rationals ("31.25",
// "125/4").
type jsonSystem struct {
	Name       string            `json:"name"`
	Processors []jsonProcessor   `json:"processors"`
	Buses      []jsonBus         `json:"buses"`
	Scenarios  []jsonScenario    `json:"scenarios"`
	Reqs       []jsonRequirement `json:"requirements"`
}

type jsonProcessor struct {
	Name  string `json:"name"`
	MIPS  int64  `json:"mips"`
	Sched string `json:"sched"`
}

type jsonBus struct {
	Name       string    `json:"name"`
	KBitPerSec int64     `json:"kbit_per_sec"`
	Sched      string    `json:"sched"`
	TDMA       *jsonTDMA `json:"tdma,omitempty"`
}

type jsonTDMA struct {
	CycleMS string     `json:"cycle_ms"`
	Slots   []jsonSlot `json:"slots"`
}

type jsonSlot struct {
	Scenario string `json:"scenario"`
	StartMS  string `json:"start_ms"`
	EndMS    string `json:"end_ms"`
}

type jsonScenario struct {
	Name     string      `json:"name"`
	Priority int         `json:"priority"`
	Arrival  jsonArrival `json:"arrival"`
	Steps    []jsonStep  `json:"steps"`
}

type jsonArrival struct {
	Kind     string `json:"kind"` // po, pno, sp, pj, bur
	PeriodMS string `json:"period_ms"`
	OffsetMS string `json:"offset_ms,omitempty"`
	JitterMS string `json:"jitter_ms,omitempty"`
	MinSepMS string `json:"min_sep_ms,omitempty"`
}

type jsonStep struct {
	Name         string `json:"name"`
	Processor    string `json:"processor,omitempty"`
	Instructions int64  `json:"instructions,omitempty"`
	Bus          string `json:"bus,omitempty"`
	Bytes        int64  `json:"bytes,omitempty"`
	Priority     int    `json:"priority,omitempty"`
}

type jsonRequirement struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	From     int    `json:"from"` // -1 = injection
	To       int    `json:"to"`
}

func parseSched(s string) (SchedKind, error) {
	switch s {
	case "", "fp":
		return SchedFP, nil
	case "nondet":
		return SchedNondet, nil
	case "fp-preemptive", "preemptive":
		return SchedFPPreempt, nil
	case "tdma":
		return SchedTDMA, nil
	}
	return 0, fmt.Errorf("arch: unknown scheduler %q", s)
}

func parseRat(s, what string) (*big.Rat, error) {
	if s == "" {
		return nil, nil
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("arch: cannot parse %s %q as a rational", what, s)
	}
	return r, nil
}

func parseArrival(a jsonArrival) (EventModel, error) {
	period, err := parseRat(a.PeriodMS, "period")
	if err != nil {
		return EventModel{}, err
	}
	offset, err := parseRat(a.OffsetMS, "offset")
	if err != nil {
		return EventModel{}, err
	}
	jitter, err := parseRat(a.JitterMS, "jitter")
	if err != nil {
		return EventModel{}, err
	}
	minSep, err := parseRat(a.MinSepMS, "min separation")
	if err != nil {
		return EventModel{}, err
	}
	switch a.Kind {
	case "po", "periodic":
		if offset == nil {
			offset = new(big.Rat)
		}
		return Periodic(period, offset), nil
	case "pno":
		return PeriodicUnknownOffset(period), nil
	case "sp", "sporadic":
		return Sporadic(period), nil
	case "pj":
		return PeriodicJitter(period, jitter), nil
	case "bur", "bursty":
		if minSep == nil {
			minSep = new(big.Rat)
		}
		return Bursty(period, jitter, minSep), nil
	}
	return EventModel{}, fmt.Errorf("arch: unknown arrival kind %q", a.Kind)
}

// MarshalSystem renders a system description plus its requirements into the
// JSON document format ParseSystem consumes — the inverse of ParseSystem, up
// to formatting. Round-tripping a system through MarshalSystem/ParseSystem
// yields an equivalent description (same resources, steps, arrival models as
// exact rationals, and requirements), which is what lets programmatically
// built models — the icrns case study in particular — be submitted to the
// analysis service, whose wire format carries model source, not Go values.
func MarshalSystem(sys *System, reqs []*Requirement) ([]byte, error) {
	js := jsonSystem{Name: sys.Name}
	for _, p := range sys.Processors {
		js.Processors = append(js.Processors, jsonProcessor{
			Name: p.Name, MIPS: p.MIPS, Sched: p.Sched.String()})
	}
	for _, b := range sys.Buses {
		jb := jsonBus{Name: b.Name, KBitPerSec: b.KBitPerSec, Sched: b.Sched.String()}
		if b.TDMA != nil {
			jt := &jsonTDMA{CycleMS: ratString(b.TDMA.CycleMS)}
			for _, sl := range b.TDMA.Slots {
				if sl.Scenario == nil {
					return nil, fmt.Errorf("arch: MarshalSystem: bus %s has a TDMA slot without a scenario", b.Name)
				}
				jt.Slots = append(jt.Slots, jsonSlot{
					Scenario: sl.Scenario.Name,
					StartMS:  ratString(sl.StartMS),
					EndMS:    ratString(sl.EndMS),
				})
			}
			jb.TDMA = jt
		}
		js.Buses = append(js.Buses, jb)
	}
	for _, sc := range sys.Scenarios {
		jsc := jsonScenario{Name: sc.Name, Priority: sc.Priority, Arrival: marshalArrival(sc.Arrival)}
		for i := range sc.Steps {
			st := &sc.Steps[i]
			jst := jsonStep{Name: st.Name, Priority: st.Priority}
			if st.IsCompute() {
				jst.Processor = st.Proc.Name
				jst.Instructions = st.Instructions
			} else {
				jst.Bus = st.Bus.Name
				jst.Bytes = st.Bytes
			}
			jsc.Steps = append(jsc.Steps, jst)
		}
		js.Scenarios = append(js.Scenarios, jsc)
	}
	for _, r := range reqs {
		if r == nil || r.Scenario == nil {
			return nil, fmt.Errorf("arch: MarshalSystem: requirement without a scenario")
		}
		js.Reqs = append(js.Reqs, jsonRequirement{
			Name: r.Name, Scenario: r.Scenario.Name, From: r.FromStep, To: r.ToStep})
	}
	return json.MarshalIndent(js, "", "  ")
}

func ratString(r *big.Rat) string {
	if r == nil {
		return ""
	}
	return r.RatString()
}

// marshalArrival is the inverse of parseArrival; EventKind.String renders
// exactly the kind keys parseArrival accepts.
func marshalArrival(m EventModel) jsonArrival {
	a := jsonArrival{Kind: m.Kind.String(), PeriodMS: ratString(m.PeriodMS)}
	switch m.Kind {
	case KindPeriodic:
		a.OffsetMS = ratString(m.OffsetMS)
	case KindPeriodicJitter:
		a.JitterMS = ratString(m.JitterMS)
	case KindBursty:
		a.JitterMS = ratString(m.JitterMS)
		a.MinSepMS = ratString(m.MinSepMS)
	}
	return a
}

// ParseSystem decodes a JSON system description plus its requirements and
// validates both.
func ParseSystem(data []byte) (*System, []*Requirement, error) {
	var js jsonSystem
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, nil, fmt.Errorf("arch: %w", err)
	}
	sys := NewSystem(js.Name)
	procs := map[string]*Processor{}
	for _, p := range js.Processors {
		sched, err := parseSched(p.Sched)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := procs[p.Name]; dup {
			return nil, nil, fmt.Errorf("arch: duplicate processor %q", p.Name)
		}
		procs[p.Name] = sys.AddProcessor(p.Name, p.MIPS, sched)
	}
	buses := map[string]*Bus{}
	for _, b := range js.Buses {
		sched, err := parseSched(b.Sched)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := buses[b.Name]; dup {
			return nil, nil, fmt.Errorf("arch: duplicate bus %q", b.Name)
		}
		buses[b.Name] = sys.AddBus(b.Name, b.KBitPerSec, sched)
	}
	// TDMA slot tables reference scenarios, so they are resolved after the
	// scenario pass below.
	var tdmaFixups []func() error
	for bi := range js.Buses {
		jb := js.Buses[bi]
		if jb.TDMA == nil {
			continue
		}
		bus := buses[jb.Name]
		tdmaFixups = append(tdmaFixups, func() error {
			cycle, err := parseRat(jb.TDMA.CycleMS, "TDMA cycle")
			if err != nil {
				return err
			}
			cfg := &TDMAConfig{CycleMS: cycle}
			for _, sl := range jb.TDMA.Slots {
				sc := sys.ScenarioByName(sl.Scenario)
				if sc == nil {
					return fmt.Errorf("arch: bus %s: TDMA slot references unknown scenario %q",
						jb.Name, sl.Scenario)
				}
				start, err := parseRat(sl.StartMS, "TDMA slot start")
				if err != nil {
					return err
				}
				end, err := parseRat(sl.EndMS, "TDMA slot end")
				if err != nil {
					return err
				}
				cfg.Slots = append(cfg.Slots, TDMASlot{Scenario: sc, StartMS: start, EndMS: end})
			}
			bus.TDMA = cfg
			return nil
		})
	}
	for _, s := range js.Scenarios {
		arrival, err := parseArrival(s.Arrival)
		if err != nil {
			return nil, nil, fmt.Errorf("arch: scenario %s: %w", s.Name, err)
		}
		sc := sys.AddScenario(s.Name, s.Priority, arrival)
		for _, st := range s.Steps {
			switch {
			case st.Processor != "" && st.Bus == "":
				p := procs[st.Processor]
				if p == nil {
					return nil, nil, fmt.Errorf("arch: scenario %s step %s: unknown processor %q",
						s.Name, st.Name, st.Processor)
				}
				sc.Compute(st.Name, p, st.Instructions)
			case st.Bus != "" && st.Processor == "":
				b := buses[st.Bus]
				if b == nil {
					return nil, nil, fmt.Errorf("arch: scenario %s step %s: unknown bus %q",
						s.Name, st.Name, st.Bus)
				}
				sc.Transfer(st.Name, b, st.Bytes)
			default:
				return nil, nil, fmt.Errorf("arch: scenario %s step %s: exactly one of processor/bus required",
					s.Name, st.Name)
			}
			if st.Priority != 0 {
				sc.WithPriority(st.Priority)
			}
		}
	}
	for _, fix := range tdmaFixups {
		if err := fix(); err != nil {
			return nil, nil, err
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	var reqs []*Requirement
	for _, r := range js.Reqs {
		sc := sys.ScenarioByName(r.Scenario)
		if sc == nil {
			return nil, nil, fmt.Errorf("arch: requirement %s: unknown scenario %q", r.Name, r.Scenario)
		}
		req := &Requirement{Name: r.Name, Scenario: sc, FromStep: r.From, ToStep: r.To}
		if err := req.Validate(); err != nil {
			return nil, nil, err
		}
		reqs = append(reqs, req)
	}
	return sys, reqs, nil
}
