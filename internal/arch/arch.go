// Package arch implements the paper's modeling strategy as an automated
// model constructor: a distributed embedded architecture is described as
// processors, buses, scenarios (annotated UML sequence diagrams: chains of
// computation and communication steps), event arrival models, and timeliness
// requirements — and compiled into the network of timed automata of
// Figures 4–9 for analysis with internal/core.
//
// All timing data is kept as exact rationals (milliseconds); the compiler
// derives a common integer time base so the model checker computes exact
// bounds.
package arch

import (
	"fmt"
	"math/big"
)

// SchedKind selects the scheduling policy of a resource.
type SchedKind int

const (
	// SchedNondet is the non-deterministic non-preemptive scheduler of
	// Fig. 4: any pending operation may be dispatched.
	SchedNondet SchedKind = iota
	// SchedFP is the non-preemptive fixed-priority scheduler: the pending
	// operation of highest priority is dispatched; a running operation
	// always completes.
	SchedFP
	// SchedFPPreempt is the preemptive fixed-priority scheduler of Fig. 5:
	// higher-priority work interrupts lower-priority work, whose remaining
	// deadline D is extended by the preemption time.
	SchedFPPreempt
	// SchedTDMA is a time-division bus: each scenario owns a slot in a
	// fixed cycle and one of its pending messages is granted the bus at
	// each of its slot starts (the template of Perathoner et al. that the
	// paper's Section 3.2 points to). Only valid for buses, and requires
	// the bus's TDMA configuration.
	SchedTDMA
)

func (k SchedKind) String() string {
	switch k {
	case SchedNondet:
		return "nondet"
	case SchedFP:
		return "fp"
	case SchedFPPreempt:
		return "fp-preemptive"
	case SchedTDMA:
		return "tdma"
	}
	return "?sched"
}

// Processor is a processing element with a capacity in million instructions
// per second.
type Processor struct {
	Name  string
	MIPS  int64
	Sched SchedKind
}

// Bus is a communication link with a capacity in kilobits per second.
//
// SchedFP models realistic serial buses (RS-485 style: a started transfer
// always completes, higher-priority messages wait). SchedFPPreempt models an
// idealized priority bus where urgent messages interrupt bulk transfers —
// the abstraction the paper's published numbers imply for the priority
// traffic (the AddressLookup and ChangeVolume rows are constant across
// event models, which rules out transfer blocking).
type Bus struct {
	Name       string
	KBitPerSec int64
	Sched      SchedKind
	// TDMA configures the slot table when Sched is SchedTDMA.
	TDMA *TDMAConfig
}

// TDMAConfig is the slot table of a time-division bus.
type TDMAConfig struct {
	CycleMS *big.Rat
	Slots   []TDMASlot
}

// TDMASlot grants one scenario the bus during [StartMS, EndMS) of every
// cycle; one pending message of the scenario starts at each slot start.
type TDMASlot struct {
	Scenario *Scenario
	StartMS  *big.Rat
	EndMS    *big.Rat
}

// SlotFor returns the slot of the given scenario, or nil.
func (c *TDMAConfig) SlotFor(sc *Scenario) *TDMASlot {
	for i := range c.Slots {
		if c.Slots[i].Scenario == sc {
			return &c.Slots[i]
		}
	}
	return nil
}

// Step is one stage of a scenario: either a computation on a processor or a
// message transfer over a bus.
type Step struct {
	Name string
	// Proc and Instructions describe a computation step.
	Proc         *Processor
	Instructions int64
	// Bus and Bytes describe a transfer step.
	Bus   *Bus
	Bytes int64
	// Priority overrides the scenario priority for this step when non-zero,
	// allowing intra-scenario priority assignment (e.g. a keypress handler
	// ranked above the screen update of the same application).
	Priority int
}

// EffectivePriority returns the step's priority within scenario sc.
func (s *Step) EffectivePriority(sc *Scenario) int {
	if s.Priority != 0 {
		return s.Priority
	}
	return sc.Priority
}

// WithPriority overrides the priority of the most recently added step and
// returns the scenario for chaining.
func (sc *Scenario) WithPriority(prio int) *Scenario {
	if len(sc.Steps) == 0 {
		panic("arch: WithPriority before any step")
	}
	sc.Steps[len(sc.Steps)-1].Priority = prio
	return sc
}

// IsCompute reports whether the step runs on a processor.
func (s *Step) IsCompute() bool { return s.Proc != nil }

// DurationMS returns the exact worst-case duration of the step in
// milliseconds: instructions/(MIPS·1000) or bytes·8/kbit·s⁻¹.
func (s *Step) DurationMS() *big.Rat {
	if s.IsCompute() {
		return new(big.Rat).SetFrac64(s.Instructions, s.Proc.MIPS*1000)
	}
	return new(big.Rat).SetFrac64(s.Bytes*8, s.Bus.KBitPerSec)
}

// Scenario is an end-to-end application: an external event triggers a chain
// of steps across the architecture. Priority orders scenarios on shared
// resources (higher value = higher priority).
type Scenario struct {
	Name     string
	Priority int
	Arrival  EventModel
	Steps    []Step
}

// Compute appends a computation step and returns the scenario for chaining.
func (sc *Scenario) Compute(name string, p *Processor, instructions int64) *Scenario {
	sc.Steps = append(sc.Steps, Step{Name: name, Proc: p, Instructions: instructions})
	return sc
}

// Transfer appends a message-transfer step and returns the scenario for
// chaining.
func (sc *Scenario) Transfer(name string, b *Bus, bytes int64) *Scenario {
	sc.Steps = append(sc.Steps, Step{Name: name, Bus: b, Bytes: bytes})
	return sc
}

// StepIndex returns the index of the step with the given name, or -1.
func (sc *Scenario) StepIndex(name string) int {
	for i := range sc.Steps {
		if sc.Steps[i].Name == name {
			return i
		}
	}
	return -1
}

// System is a deployment: hardware resources plus the concurrently running
// scenarios.
type System struct {
	Name       string
	Processors []*Processor
	Buses      []*Bus
	Scenarios  []*Scenario
}

// NewSystem returns an empty system description.
func NewSystem(name string) *System { return &System{Name: name} }

// AddProcessor declares a processor.
func (s *System) AddProcessor(name string, mips int64, sched SchedKind) *Processor {
	p := &Processor{Name: name, MIPS: mips, Sched: sched}
	s.Processors = append(s.Processors, p)
	return p
}

// AddBus declares a communication bus.
func (s *System) AddBus(name string, kbitPerSec int64, sched SchedKind) *Bus {
	b := &Bus{Name: name, KBitPerSec: kbitPerSec, Sched: sched}
	s.Buses = append(s.Buses, b)
	return b
}

// AddScenario declares a scenario; steps are added with Compute/Transfer.
func (s *System) AddScenario(name string, priority int, arrival EventModel) *Scenario {
	sc := &Scenario{Name: name, Priority: priority, Arrival: arrival}
	s.Scenarios = append(s.Scenarios, sc)
	return sc
}

// ScenarioByName returns the scenario with the given name, or nil.
func (s *System) ScenarioByName(name string) *Scenario {
	for _, sc := range s.Scenarios {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}

// Validate checks structural well-formedness of the system description.
func (s *System) Validate() error {
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("arch: system %s has no scenarios", s.Name)
	}
	for _, p := range s.Processors {
		if p.MIPS <= 0 {
			return fmt.Errorf("arch: processor %s has non-positive capacity", p.Name)
		}
	}
	for _, b := range s.Buses {
		if b.KBitPerSec <= 0 {
			return fmt.Errorf("arch: bus %s has non-positive capacity", b.Name)
		}
		if (b.Sched == SchedTDMA) != (b.TDMA != nil) {
			return fmt.Errorf("arch: bus %s: SchedTDMA and a TDMA slot table go together", b.Name)
		}
		if b.TDMA != nil {
			if err := b.TDMA.validate(b.Name); err != nil {
				return err
			}
		}
	}
	for _, p := range s.Processors {
		if p.Sched == SchedTDMA {
			return fmt.Errorf("arch: processor %s: TDMA applies to buses only", p.Name)
		}
	}
	names := map[string]bool{}
	for _, sc := range s.Scenarios {
		if names[sc.Name] {
			return fmt.Errorf("arch: duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if len(sc.Steps) == 0 {
			return fmt.Errorf("arch: scenario %s has no steps", sc.Name)
		}
		if err := sc.Arrival.Validate(); err != nil {
			return fmt.Errorf("arch: scenario %s: %w", sc.Name, err)
		}
		for i := range sc.Steps {
			st := &sc.Steps[i]
			if (st.Proc == nil) == (st.Bus == nil) {
				return fmt.Errorf("arch: scenario %s step %s must use exactly one resource",
					sc.Name, st.Name)
			}
			if st.IsCompute() && st.Instructions <= 0 {
				return fmt.Errorf("arch: scenario %s step %s has non-positive instruction count",
					sc.Name, st.Name)
			}
			if !st.IsCompute() && st.Bytes <= 0 {
				return fmt.Errorf("arch: scenario %s step %s has non-positive size",
					sc.Name, st.Name)
			}
		}
	}
	return nil
}

// validate checks the slot table: positive cycle, slots inside the cycle,
// in order and non-overlapping.
func (c *TDMAConfig) validate(bus string) error {
	if c.CycleMS == nil || c.CycleMS.Sign() <= 0 {
		return fmt.Errorf("arch: bus %s: TDMA cycle must be positive", bus)
	}
	prevEnd := new(big.Rat)
	for i := range c.Slots {
		sl := &c.Slots[i]
		if sl.Scenario == nil {
			return fmt.Errorf("arch: bus %s: TDMA slot %d has no scenario", bus, i)
		}
		if sl.StartMS == nil || sl.EndMS == nil || sl.StartMS.Sign() < 0 ||
			sl.EndMS.Cmp(sl.StartMS) <= 0 || sl.EndMS.Cmp(c.CycleMS) > 0 {
			return fmt.Errorf("arch: bus %s: TDMA slot %d is not a window within the cycle", bus, i)
		}
		if sl.StartMS.Cmp(prevEnd) < 0 {
			return fmt.Errorf("arch: bus %s: TDMA slot %d overlaps its predecessor", bus, i)
		}
		prevEnd = sl.EndMS
	}
	return nil
}

// Requirement is a timeliness requirement: the worst-case delay from a start
// point to the completion of a step of one scenario.
type Requirement struct {
	Name     string
	Scenario *Scenario
	// FromStep is the index of the step whose completion starts the
	// measurement, or -1 to measure from event injection.
	FromStep int
	// ToStep is the index of the step whose completion ends the measurement.
	ToStep int
}

// EndToEnd returns the requirement covering the scenario from injection to
// the completion of its last step.
func EndToEnd(name string, sc *Scenario) *Requirement {
	return &Requirement{Name: name, Scenario: sc, FromStep: -1, ToStep: len(sc.Steps) - 1}
}

// Span returns the requirement from the completion of step from (-1 for
// injection) to the completion of step to.
func Span(name string, sc *Scenario, from, to int) *Requirement {
	return &Requirement{Name: name, Scenario: sc, FromStep: from, ToStep: to}
}

// Validate checks the requirement against its scenario.
func (r *Requirement) Validate() error {
	if r.Scenario == nil {
		return fmt.Errorf("arch: requirement %s has no scenario", r.Name)
	}
	if r.FromStep < -1 || r.FromStep >= len(r.Scenario.Steps) {
		return fmt.Errorf("arch: requirement %s: FromStep %d out of range", r.Name, r.FromStep)
	}
	if r.ToStep < 0 || r.ToStep >= len(r.Scenario.Steps) {
		return fmt.Errorf("arch: requirement %s: ToStep %d out of range", r.Name, r.ToStep)
	}
	if r.FromStep >= r.ToStep {
		return fmt.Errorf("arch: requirement %s: FromStep must precede ToStep", r.Name)
	}
	return nil
}
