package arch_test

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
)

// Example describes a two-stage pipeline and computes its exact worst-case
// response time with the high-level API.
func Example() {
	sys := arch.NewSystem("pipeline")
	cpu := sys.AddProcessor("CPU", 10, arch.SchedFPPreempt) // 10 MIPS
	bus := sys.AddBus("BUS", 8, arch.SchedFP)               // 8 kbit/s

	job := sys.AddScenario("job", 1, arch.PeriodicUnknownOffset(arch.MS(100, 1)))
	job.Compute("work", cpu, 100_000). // 10 ms
						Transfer("result", bus, 10) // 10 ms

	res, err := arch.AnalyzeWCRT(sys, arch.EndToEnd("e2e", job),
		arch.Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WCRT = %s ms (exact: %v)\n", res.MS.FloatString(3), res.Exact)
	// Output: WCRT = 20.000 ms (exact: true)
}

// ExampleVerifyDeadline model checks a timeliness requirement directly
// (the paper's Property 1 with the deadline as the constant).
func ExampleVerifyDeadline() {
	sys := arch.NewSystem("deadline")
	cpu := sys.AddProcessor("CPU", 10, arch.SchedFP)
	job := sys.AddScenario("job", 1, arch.Sporadic(arch.MS(50, 1)))
	job.Compute("work", cpu, 150_000) // 15 ms

	req := arch.EndToEnd("job", job)
	ok, _, err := arch.VerifyDeadline(sys, req, arch.MS(20, 1),
		arch.Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("job < 20 ms:", ok)
	ok, _, err = arch.VerifyDeadline(sys, req, arch.MS(10, 1),
		arch.Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("job < 10 ms:", ok)
	// Output:
	// job < 20 ms: true
	// job < 10 ms: false
}
