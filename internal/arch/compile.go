package arch

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/ta"
)

// Options tunes model compilation.
type Options struct {
	// QueueCap bounds every step's pending-event counter; exceeding it
	// surfaces as an analysis error (system overload or cap too small).
	// Default 8.
	QueueCap int64
	// HorizonMS is the observation horizon of the measuring automaton in
	// milliseconds: response times up to this value are computed exactly,
	// anything beyond reports as unbounded. Default 2000.
	HorizonMS int64
	// HorizonMSFor optionally overrides HorizonMS per requirement in batch
	// compilation (CompileAll, AnalyzeAll), so requirements with very
	// different time scales each get a tight extrapolation horizon in the
	// shared network. nil, or a non-positive return, falls back to
	// HorizonMS.
	HorizonMSFor func(*Requirement) int64
}

func (o Options) withDefaults() Options {
	if o.QueueCap == 0 {
		o.QueueCap = 8
	}
	if o.HorizonMS == 0 {
		o.HorizonMS = 2000
	}
	return o
}

// Observer locates the measuring automaton inside the compiled network.
type Observer struct {
	Proc ta.ProcID
	Seen ta.LocID
	Y    ta.Clock
}

// Compiled is a system description translated to a network of timed automata
// with one measuring observer for the requirement.
type Compiled struct {
	Sys     *System
	Req     *Requirement
	Net     *ta.Network
	Scale   *big.Int // model time units per millisecond
	Horizon int64    // observation horizon in units
	Obs     Observer
}

// UnitsToMS converts a model-time value to exact milliseconds.
func (c *Compiled) UnitsToMS(u int64) *big.Rat { return unitsToMS(u, c.Scale) }

// CompiledSet is a system description translated once for a whole set of
// requirements: one network carrying N measuring observers (Fig. 9), each
// with its own clock and "seen" location, listening on shared broadcast
// completion channels. One exploration of this network answers every
// requirement (see AnalyzeAll); the observers are pure listeners — they
// never emit, guard only their own variables, and pass through committed
// zero-time states — so each one measures exactly what it would measure
// compiled alone.
type CompiledSet struct {
	Sys   *System
	Reqs  []*Requirement
	Net   *ta.Network
	Scale *big.Int // model time units per millisecond
	// Horizons holds each requirement's observation horizon in units,
	// parallel to Reqs.
	Horizons []int64
	// Obs locates each requirement's measuring automaton, parallel to Reqs.
	Obs []Observer
}

// UnitsToMS converts a model-time value to exact milliseconds.
func (cs *CompiledSet) UnitsToMS(u int64) *big.Rat { return unitsToMS(u, cs.Scale) }

// AtSeen returns the state predicate "observer i is in its seen location".
func (cs *CompiledSet) AtSeen(i int) func(*core.State) bool {
	proc, seen := cs.Obs[i].Proc, cs.Obs[i].Seen
	return func(s *core.State) bool { return s.Locs[proc] == seen }
}

// Compile translates the system plus one requirement into a network of timed
// automata following the paper's patterns: one automaton per processor
// (Fig. 4 or Fig. 5 depending on the scheduler), one per bus (Fig. 6), one
// environment automaton per scenario (Fig. 7a–d, Fig. 8), and one measuring
// observer (Fig. 9) for the requirement. It is the one-requirement special
// case of CompileAll, and produces the identical network it always has.
func Compile(sys *System, req *Requirement, opts Options) (*Compiled, error) {
	if req == nil {
		return nil, fmt.Errorf("arch: Compile needs a requirement to observe")
	}
	cs, err := CompileAll(sys, []*Requirement{req}, opts)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Sys: sys, Req: req, Net: cs.Net,
		Scale: cs.Scale, Horizon: cs.Horizons[0], Obs: cs.Obs[0],
	}, nil
}

// CompileAll translates the system plus every requirement into ONE network:
// the environment, processor, and bus automata are built exactly once, and
// one measuring observer per requirement is attached. Observation signals
// (injection of a scenario, completion of a step) become broadcast channels
// shared by every observer that listens to them, so a step completion that
// ends one requirement's span and starts another's is a single edge heard by
// both observers.
//
// The horizon of each observer comes from Options.HorizonMSFor when set,
// else Options.HorizonMS. Requirement names must be unique within one
// compilation (they name the observer automata).
func CompileAll(sys *System, reqs []*Requirement, opts Options) (*CompiledSet, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("arch: CompileAll needs at least one requirement to observe")
	}
	names := map[string]bool{}
	for _, req := range reqs {
		if req == nil {
			return nil, fmt.Errorf("arch: CompileAll: nil requirement")
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		if sys.ScenarioByName(req.Scenario.Name) != req.Scenario {
			return nil, fmt.Errorf("arch: requirement %s references a scenario outside the system", req.Name)
		}
		if names[req.Name] {
			return nil, fmt.Errorf("arch: duplicate requirement name %q in one compilation", req.Name)
		}
		names[req.Name] = true
	}
	scale, err := computeScale(sys)
	if err != nil {
		return nil, err
	}
	horizons := make([]int64, len(reqs))
	for i, req := range reqs {
		ms := opts.HorizonMS
		if opts.HorizonMSFor != nil {
			if h := opts.HorizonMSFor(req); h > 0 {
				ms = h
			}
		}
		if horizons[i], err = toUnits(new(big.Rat).SetInt64(ms), scale); err != nil {
			return nil, err
		}
	}

	b := &builder{
		sys:      sys,
		reqs:     reqs,
		opts:     opts,
		scale:    scale,
		net:      ta.NewNetwork(sys.Name),
		qv:       map[*Scenario][]ta.IntVar{},
		injectCh: map[*Scenario]ta.ChanID{},
		doneCh:   map[scStep]ta.ChanID{},
	}
	b.hurry = b.net.AddChan("hurry", ta.BroadcastUrgent)

	// Pending-event counters, one per scenario step (the shared-variable
	// interface between environment, processors, and buses described in
	// Sections 3.1–3.2).
	for _, sc := range sys.Scenarios {
		vars := make([]ta.IntVar, len(sc.Steps))
		for i := range sc.Steps {
			vars[i] = b.net.AddVar(sc.Name+"."+sc.Steps[i].Name+".q", 0, 0, opts.QueueCap)
		}
		b.qv[sc] = vars
	}

	// Observation channels: each requirement's start signal is either the
	// injection of the measured scenario's events or the completion of
	// FromStep; its end signal is the completion of ToStep. Requirements
	// listening to the same signal share one broadcast channel.
	b.starts = make([]ta.ChanID, len(reqs))
	b.ends = make([]ta.ChanID, len(reqs))
	for i, req := range reqs {
		if req.FromStep == -1 {
			b.starts[i] = b.injectChan(req.Scenario)
		} else {
			b.starts[i] = b.doneChan(req.Scenario, req.FromStep)
		}
		b.ends[i] = b.doneChan(req.Scenario, req.ToStep)
	}

	for _, sc := range sys.Scenarios {
		if err := b.buildEnv(sc); err != nil {
			return nil, err
		}
	}
	if err := b.buildResources(); err != nil {
		return nil, err
	}
	obs := make([]Observer, len(reqs))
	for i := range reqs {
		obs[i] = b.buildObserver(i, horizons[i])
	}

	if err := b.net.Finalize(); err != nil {
		return nil, fmt.Errorf("arch: compiled network invalid: %w", err)
	}
	return &CompiledSet{
		Sys: sys, Reqs: reqs, Net: b.net,
		Scale: scale, Horizons: horizons, Obs: obs,
	}, nil
}

func doneName(sc *Scenario, step int) string {
	return "done_" + sc.Name + "_" + sc.Steps[step].Name
}

// scStep keys a (scenario, step index) completion signal.
type scStep struct {
	sc   *Scenario
	step int
}

// builder carries shared compilation state.
type builder struct {
	sys   *System
	reqs  []*Requirement
	opts  Options
	scale *big.Int
	net   *ta.Network
	hurry ta.Channel
	qv    map[*Scenario][]ta.IntVar

	// injectCh / doneCh are the observation broadcast channels, created on
	// demand and shared by every requirement listening to the same signal.
	injectCh map[*Scenario]ta.ChanID
	doneCh   map[scStep]ta.ChanID
	// starts / ends are each requirement's observation channels, parallel
	// to reqs.
	starts, ends []ta.ChanID
}

func (b *builder) units(r *big.Rat) (int64, error) { return toUnits(r, b.scale) }

// injectChan returns (creating on first use) the broadcast channel that
// announces event injections of scenario sc.
func (b *builder) injectChan(sc *Scenario) ta.ChanID {
	if id, ok := b.injectCh[sc]; ok {
		return id
	}
	ch := b.net.AddChan("inject_"+sc.Name, ta.Broadcast)
	b.injectCh[sc] = ch.ID
	return ch.ID
}

// doneChan returns (creating on first use) the broadcast channel that
// announces completions of step i of scenario sc.
func (b *builder) doneChan(sc *Scenario, i int) ta.ChanID {
	key := scStep{sc, i}
	if id, ok := b.doneCh[key]; ok {
		return id
	}
	ch := b.net.AddChan(doneName(sc, i), ta.Broadcast)
	b.doneCh[key] = ch.ID
	return ch.ID
}

// injectSync returns the sync label for event injections of scenario sc:
// a broadcast when some requirement measures them, internal otherwise.
func (b *builder) injectSync(sc *Scenario) ta.Sync {
	if id, ok := b.injectCh[sc]; ok {
		return ta.Sync{Chan: id, Dir: ta.Emit}
	}
	return ta.NoSync
}

// doneSync returns the sync label for the completion of step i of scenario
// sc: a broadcast when some observer listens to it, internal otherwise.
func (b *builder) doneSync(sc *Scenario, i int) ta.Sync {
	if id, ok := b.doneCh[scStep{sc, i}]; ok {
		return ta.Sync{Chan: id, Dir: ta.Emit}
	}
	return ta.NoSync
}

// buildEnv emits the environment automaton of one scenario (Fig. 7a–d and
// Fig. 8): it feeds the first step's queue according to the arrival model
// and announces each injection on the scenario's inject channel when
// observed.
func (b *builder) buildEnv(sc *Scenario) error {
	m := sc.Arrival
	q0 := b.qv[sc][0]
	release := ta.Inc(q0, 1)
	sync := b.injectSync(sc)
	x := b.net.AddClock(sc.Name + ".env.x")
	p := b.net.AddProcess("ENV_" + sc.Name)

	period, err := b.units(m.PeriodMS)
	if err != nil {
		return err
	}
	switch m.Kind {
	case KindPeriodic:
		offset, err := b.units(m.OffsetMS)
		if err != nil {
			return err
		}
		l0 := p.AddLocation("offset", ta.Normal, ta.CLE(x, offset))
		l1 := p.AddLocation("run", ta.Normal, ta.CLE(x, period))
		p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: ta.CEq(x, offset),
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: release, Sync: sync})
		p.AddEdge(ta.Edge{Src: l1, Dst: l1, ClockGuard: ta.CEq(x, period),
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: release, Sync: sync})

	case KindPeriodicUnknownOffset:
		l0 := p.AddLocation("offset", ta.Normal, ta.CLE(x, period))
		l1 := p.AddLocation("run", ta.Normal, ta.CLE(x, period))
		// The first event is released anywhere within one period; the free
		// initial phase is exactly Fig. 7b.
		p.AddEdge(ta.Edge{Src: l0, Dst: l1,
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: release, Sync: sync})
		p.AddEdge(ta.Edge{Src: l1, Dst: l1, ClockGuard: ta.CEq(x, period),
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: release, Sync: sync})

	case KindSporadic:
		l0 := p.AddLocation("init", ta.Normal)
		l1 := p.AddLocation("run", ta.Normal)
		p.AddEdge(ta.Edge{Src: l0, Dst: l1,
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: release, Sync: sync})
		p.AddEdge(ta.Edge{Src: l1, Dst: l1,
			ClockGuard: []ta.Constraint{ta.CGE(x, period)},
			Resets:     []ta.Reset{{Clock: x.ID, Value: 0}}, Update: release, Sync: sync})

	case KindPeriodicJitter:
		jitter, err := b.units(m.JitterMS)
		if err != nil {
			return err
		}
		// rel: the k-th event is released at kP + δ, δ ∈ [0, J] (the x ≤ J
		// invariant forces the release); wait: let the period elapse.
		rel := p.AddLocation("rel", ta.Normal, ta.CLE(x, jitter))
		wait := p.AddLocation("wait", ta.Normal, ta.CLE(x, period))
		p.AddEdge(ta.Edge{Src: rel, Dst: wait, Update: release, Sync: sync})
		p.AddEdge(ta.Edge{Src: wait, Dst: rel, ClockGuard: ta.CEq(x, period),
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})

	case KindBursty:
		return b.buildBurstyEnv(sc, p, x, release, sync, period)
	}
	return nil
}

// buildBurstyEnv emits the Fig. 8 automaton for J > P: pending events
// accumulate every period, each must be sent at most J after its nominal
// release, and consecutive sends are separated by more than D.
func (b *builder) buildBurstyEnv(sc *Scenario, p *ta.Process, x ta.Clock,
	release ta.Update, sync ta.Sync, period int64) error {
	m := sc.Arrival
	jitter, err := b.units(m.JitterMS)
	if err != nil {
		return err
	}
	minSep, err := b.units(m.MinSepMS)
	if err != nil {
		return err
	}
	if minSep >= period {
		return fmt.Errorf("arch: scenario %s: bursty minimal separation must be below the period", sc.Name)
	}
	// Outstanding events never exceed ceil(J/P)+1.
	cap64 := (jitter+period-1)/period + 2
	pending := b.net.AddVar(sc.Name+".pending", 1, 0, cap64)
	snd := b.net.AddVar(sc.Name+".snd", 0, 0, cap64)
	y := b.net.AddClock(sc.Name + ".env.y")
	var z ta.Clock
	if minSep > 0 {
		z = b.net.AddClock(sc.Name + ".env.z")
	}

	// Phase A: the deadline of the oldest unsent event is J after its
	// nominal release; phase B: P for all subsequent deadlines.
	locA := p.AddLocation("burstA", ta.Normal, ta.CLE(x, period), ta.CLE(y, jitter))
	locB := p.AddLocation("burstB", ta.Normal, ta.CLE(x, period), ta.CLE(y, period))

	sendEdge := func(loc ta.LocID) ta.Edge {
		e := ta.Edge{
			Src: loc, Dst: loc,
			Guard:  ta.VarCmp(pending, ta.Gt, 0),
			Update: ta.Do(ta.Inc(pending, -1), release, ta.Inc(snd, 1)),
			Sync:   sync,
		}
		if minSep > 0 {
			e.ClockGuard = []ta.Constraint{ta.CGT(z, minSep)}
			e.Resets = []ta.Reset{{Clock: z.ID, Value: 0}}
		}
		return e
	}
	tickEdge := func(loc ta.LocID) ta.Edge {
		return ta.Edge{Src: loc, Dst: loc, ClockGuard: ta.CEq(x, period),
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: ta.Inc(pending, 1)}
	}
	p.AddEdge(tickEdge(locA))
	p.AddEdge(sendEdge(locA))
	p.AddEdge(ta.Edge{Src: locA, Dst: locB,
		ClockGuard: ta.CEq(y, jitter), Guard: ta.VarCmp(snd, ta.Gt, 0),
		Resets: []ta.Reset{{Clock: y.ID, Value: 0}}, Update: ta.Inc(snd, -1)})
	p.AddEdge(tickEdge(locB))
	p.AddEdge(sendEdge(locB))
	p.AddEdge(ta.Edge{Src: locB, Dst: locB,
		ClockGuard: ta.CEq(y, period), Guard: ta.VarCmp(snd, ta.Gt, 0),
		Resets: []ta.Reset{{Clock: y.ID, Value: 0}}, Update: ta.Inc(snd, -1)})
	return nil
}

// rop is one operation (computation or transfer) mapped onto a resource.
type rop struct {
	name    string
	sc      *Scenario
	step    int
	in      ta.IntVar
	next    ta.IntVar
	hasNext bool
	dur     int64
	prio    int
}

// completion returns the update and sync of the op's completion edge:
// feed the next step's queue and announce completion when observed.
func (b *builder) completion(op rop) (ta.Update, ta.Sync) {
	var upd ta.Update
	if op.hasNext {
		upd = ta.Inc(op.next, 1)
	}
	return upd, b.doneSync(op.sc, op.step)
}

// buildResources emits one automaton per processor and bus that has mapped
// operations.
func (b *builder) buildResources() error {
	for _, p := range b.sys.Processors {
		ops := b.opsOn(func(st *Step) bool { return st.Proc == p })
		if len(ops) == 0 {
			continue
		}
		if err := b.buildResource(p.Name, p.Sched, ops); err != nil {
			return err
		}
	}
	for _, bus := range b.sys.Buses {
		ops := b.opsOn(func(st *Step) bool { return st.Bus == bus })
		if len(ops) == 0 {
			continue
		}
		if bus.Sched == SchedTDMA {
			if err := b.buildTDMABus(bus, ops); err != nil {
				return err
			}
			continue
		}
		if err := b.buildResource(bus.Name, bus.Sched, ops); err != nil {
			return err
		}
	}
	return nil
}

// buildTDMABus emits the time-division bus: a cycle automaton broadcasts a
// grant at each slot start, and the bus automaton starts one pending message
// of the slot's owner on each grant (broadcast reception is maximal, so
// grants are never lazily skipped). Messages arriving mid-cycle wait for
// their scenario's next slot.
func (b *builder) buildTDMABus(bus *Bus, ops []rop) error {
	cfg := bus.TDMA
	cycle, err := b.units(cfg.CycleMS)
	if err != nil {
		return err
	}
	// Every scenario with traffic on this bus needs a slot wide enough for
	// its largest message.
	scenarios := map[*Scenario]bool{}
	for _, op := range ops {
		scenarios[op.sc] = true
	}
	slotLen := map[*Scenario]int64{}
	grants := map[*Scenario]ta.Channel{}
	for sc := range scenarios {
		sl := cfg.SlotFor(sc)
		if sl == nil {
			return fmt.Errorf("arch: bus %s: scenario %s has traffic but no TDMA slot", bus.Name, sc.Name)
		}
		start, err := b.units(sl.StartMS)
		if err != nil {
			return err
		}
		end, err := b.units(sl.EndMS)
		if err != nil {
			return err
		}
		slotLen[sc] = end - start
	}
	for _, op := range ops {
		if op.dur > slotLen[op.sc] {
			return fmt.Errorf("arch: bus %s: message %s (%d units) exceeds scenario %s's slot",
				bus.Name, op.name, op.dur, op.sc.Name)
		}
	}

	// Cycle automaton: one location per slot start, in table order.
	tc := b.net.AddClock(bus.Name + ".cycle")
	cyc := b.net.AddProcess(bus.Name + "_CYCLE")
	type slotEvt struct {
		start int64
		sc    *Scenario
	}
	var evts []slotEvt
	for i := range cfg.Slots {
		sl := &cfg.Slots[i]
		if !scenarios[sl.Scenario] {
			continue // slot for a scenario without traffic here: skip
		}
		start, err := b.units(sl.StartMS)
		if err != nil {
			return err
		}
		evts = append(evts, slotEvt{start, sl.Scenario})
		if _, ok := grants[sl.Scenario]; !ok {
			grants[sl.Scenario] = b.net.AddChan(
				"grant_"+bus.Name+"_"+sl.Scenario.Name, ta.Broadcast)
		}
	}
	if len(evts) == 0 {
		return fmt.Errorf("arch: bus %s: no usable TDMA slots", bus.Name)
	}
	locs := make([]ta.LocID, len(evts)+1)
	for i, e := range evts {
		locs[i] = cyc.AddLocation(fmt.Sprintf("before_%d", i), ta.Normal, ta.CLE(tc, e.start))
	}
	locs[len(evts)] = cyc.AddLocation("wrap", ta.Normal, ta.CLE(tc, cycle))
	for i, e := range evts {
		cyc.AddEdge(ta.Edge{Src: locs[i], Dst: locs[i+1],
			ClockGuard: ta.CEq(tc, e.start),
			Sync:       ta.Sync{Chan: grants[e.sc].ID, Dir: ta.Emit}})
	}
	cyc.AddEdge(ta.Edge{Src: locs[len(evts)], Dst: locs[0],
		ClockGuard: ta.CEq(tc, cycle),
		Resets:     []ta.Reset{{Clock: tc.ID, Value: 0}}})

	// Bus automaton: grants start transfers; transfers always fit their
	// slot, so the bus is idle at every grant.
	x := b.net.AddClock(bus.Name + ".x")
	proc := b.net.AddProcess(bus.Name)
	idle := proc.AddLocation("idle", ta.Normal)
	for _, op := range ops {
		run := proc.AddLocation("run_"+op.name, ta.Normal, ta.CLE(x, op.dur))
		proc.AddEdge(ta.Edge{
			Src: idle, Dst: run,
			Guard:  ta.VarCmp(op.in, ta.Gt, 0),
			Sync:   ta.Sync{Chan: grants[op.sc].ID, Dir: ta.Recv},
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}},
			Update: ta.Inc(op.in, -1),
		})
		upd, sync := b.completion(op)
		proc.AddEdge(ta.Edge{Src: run, Dst: idle,
			ClockGuard: ta.CEq(x, op.dur), Update: upd, Sync: sync})
	}
	return nil
}

func (b *builder) opsOn(sel func(*Step) bool) []rop {
	var ops []rop
	for _, sc := range b.sys.Scenarios {
		for i := range sc.Steps {
			st := &sc.Steps[i]
			if !sel(st) {
				continue
			}
			dur, err := toUnits(st.DurationMS(), b.scale)
			if err != nil {
				// computeScale covered every duration; treat as internal.
				panic("arch: duration not integral under computed scale: " + err.Error())
			}
			op := rop{
				name: sc.Name + "." + st.Name,
				sc:   sc, step: i,
				in:   b.qv[sc][i],
				dur:  dur,
				prio: st.EffectivePriority(sc),
			}
			if i+1 < len(sc.Steps) {
				op.next = b.qv[sc][i+1]
				op.hasNext = true
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// dispatchGuard returns the data guard for dispatching op under the given
// scheduler: pending work, and for fixed priority no strictly
// higher-priority work pending on the same resource.
func dispatchGuard(sched SchedKind, ops []rop, op rop) ta.Guard {
	gs := []ta.Guard{ta.VarCmp(op.in, ta.Gt, 0)}
	if sched == SchedFP || sched == SchedFPPreempt {
		for _, other := range ops {
			if other.prio > op.prio {
				gs = append(gs, ta.VarCmp(other.in, ta.Eq, 0))
			}
		}
	}
	return ta.And(gs...)
}

// buildResource emits the automaton of one processor or bus: Fig. 4 for
// non-preemptive scheduling (nondeterministic or fixed-priority dispatch),
// Fig. 5 for preemptive fixed priority.
func (b *builder) buildResource(name string, sched SchedKind, ops []rop) error {
	x := b.net.AddClock(name + ".x")
	proc := b.net.AddProcess(name)
	idle := proc.AddLocation("idle", ta.Normal)

	hurrySync := ta.Sync{Chan: b.hurry.ID, Dir: ta.Emit}

	if sched != SchedFPPreempt {
		for _, op := range ops {
			run := proc.AddLocation("run_"+op.name, ta.Normal, ta.CLE(x, op.dur))
			proc.AddEdge(ta.Edge{
				Src: idle, Dst: run,
				Guard:  dispatchGuard(sched, ops, op),
				Sync:   hurrySync,
				Resets: []ta.Reset{{Clock: x.ID, Value: 0}},
				Update: ta.Inc(op.in, -1),
			})
			upd, sync := b.completion(op)
			proc.AddEdge(ta.Edge{Src: run, Dst: idle,
				ClockGuard: ta.CEq(x, op.dur), Update: upd, Sync: sync})
		}
		return nil
	}

	// Preemptive fixed priority (Fig. 5). The template supports two
	// priority classes: the high class runs to completion and preempts the
	// low class, whose dynamic deadline D accumulates the preemption time.
	his, los, err := splitClasses(name, ops)
	if err != nil {
		return err
	}
	for _, op := range his {
		run := proc.AddLocation("run_"+op.name, ta.Normal, ta.CLE(x, op.dur))
		proc.AddEdge(ta.Edge{
			Src: idle, Dst: run,
			Guard:  dispatchGuard(sched, ops, op),
			Sync:   hurrySync,
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}},
			Update: ta.Inc(op.in, -1),
		})
		upd, sync := b.completion(op)
		proc.AddEdge(ta.Edge{Src: run, Dst: idle,
			ClockGuard: ta.CEq(x, op.dur), Update: upd, Sync: sync})
	}
	if len(los) == 0 {
		return nil
	}
	// Safe static range for the dynamic deadline: the busy-window fixpoint
	// w = C_lo + Σ_hi (queueCap + ceil(w/P_hi))·C_hi. Queued backlog is
	// bounded by the queue cap (enforced at run time) and new arrivals by
	// the period, so w bounds every reachable D. Divergence means the
	// paper's warning applies — D would grow forever — and is reported as
	// an error.
	dmax, err := b.preemptionBudget(name, his, los)
	if err != nil {
		return err
	}
	y := b.net.AddClock(name + ".y")
	d := b.net.AddVar(name+".D", 0, 0, dmax)
	for _, op := range los {
		run := proc.AddLocation("run_"+op.name, ta.Normal, ta.CLEVar(x, d))
		proc.AddEdge(ta.Edge{
			Src: idle, Dst: run,
			Guard:  dispatchGuard(sched, ops, op),
			Sync:   hurrySync,
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}},
			Update: ta.Do(ta.Inc(op.in, -1), ta.SetConst(d, op.dur)),
		})
		upd, sync := b.completion(op)
		proc.AddEdge(ta.Edge{Src: run, Dst: idle,
			ClockGuard: ta.CEqVar(x, d),
			Update:     ta.Do(ta.SetConst(d, 0), upd), Sync: sync})
		for _, h := range his {
			pre := proc.AddLocation("pre_"+op.name+"_"+h.name, ta.Normal, ta.CLE(y, h.dur))
			proc.AddEdge(ta.Edge{
				Src: run, Dst: pre,
				Guard:  ta.VarCmp(h.in, ta.Gt, 0),
				Sync:   hurrySync,
				Resets: []ta.Reset{{Clock: y.ID, Value: 0}},
				Update: ta.Inc(h.in, -1),
			})
			hupd, hsync := b.completion(h)
			proc.AddEdge(ta.Edge{Src: pre, Dst: run,
				ClockGuard: ta.CEq(y, h.dur),
				Update:     ta.Do(ta.Inc(d, h.dur), hupd), Sync: hsync})
		}
	}
	return nil
}

// preemptionBudget bounds the dynamic deadline D of the Fig. 5 template on
// one resource by iterating the busy-window equation over the low ops' worst
// base demand and the high ops' arrival rates.
func (b *builder) preemptionBudget(name string, his, los []rop) (int64, error) {
	base := int64(0)
	for _, op := range los {
		if op.dur > base {
			base = op.dur
		}
	}
	periods := make([]int64, len(his))
	for i, h := range his {
		p, err := b.units(h.sc.Arrival.PeriodMS)
		if err != nil {
			return 0, err
		}
		periods[i] = p
	}
	w := base
	for iter := 0; iter < 1000; iter++ {
		next := base
		for i, h := range his {
			arrivals := b.opts.QueueCap + (w+periods[i]-1)/periods[i]
			next += arrivals * h.dur
		}
		if next == w {
			return w, nil
		}
		if next > 1<<50 {
			break
		}
		w = next
	}
	return 0, fmt.Errorf("arch: resource %s: the preemption accumulator D is unbounded (the low-priority class can be preempted forever); model checking is impossible, as the paper notes", name)
}

// splitClasses partitions ops into the high-priority class and the
// (single-priority) low class required by the Fig. 5 template.
func splitClasses(name string, ops []rop) (his, los []rop, err error) {
	prios := map[int]bool{}
	maxPrio := ops[0].prio
	for _, op := range ops {
		prios[op.prio] = true
		if op.prio > maxPrio {
			maxPrio = op.prio
		}
	}
	if len(prios) > 2 {
		return nil, nil, fmt.Errorf("arch: resource %s: the preemptive template supports at most two priority classes, got %d", name, len(prios))
	}
	for _, op := range ops {
		if op.prio == maxPrio && len(prios) == 2 {
			his = append(his, op)
		} else if len(prios) == 1 {
			// A single class cannot preempt itself: all ops run to
			// completion, none are preemptible.
			his = append(his, op)
		} else {
			los = append(los, op)
		}
	}
	return his, los, nil
}

// buildObserver emits the generalized Fig. 9 measuring automaton for
// requirement i: it counts in-flight activations between the start and end
// signals (n), picks one nondeterministically (m := n, y := 0) and, assuming
// FIFO processing as the paper does, recognizes its completion when m reaches
// zero, visiting the committed "seen" location where y equals the response
// time exactly.
//
// A single-requirement compilation keeps the historical names (OBS, obs.m,
// obs.n, obs.y) so existing traces, DOT/UPPAAL exports, and tests are
// unchanged; batch compilations qualify each observer by its requirement.
func (b *builder) buildObserver(i int, horizon int64) Observer {
	req := b.reqs[i]
	procName, varPrefix := "OBS", "obs."
	if len(b.reqs) > 1 {
		procName = "OBS_" + req.Name
		varPrefix = "obs." + req.Name + "."
	}
	capN := b.opts.QueueCap*int64(len(req.Scenario.Steps)) + 2
	m := b.net.AddVar(varPrefix+"m", -1, -1, capN)
	n := b.net.AddVar(varPrefix+"n", 0, 0, capN)
	y := b.net.AddClock(varPrefix + "y")
	b.net.EnsureMaxConst(y.ID, horizon)

	p := b.net.AddProcess(procName)
	l := p.AddLocation("watch", ta.Normal)
	seen := p.AddLocation("seen", ta.Committed)

	startRecv := ta.Sync{Chan: b.starts[i], Dir: ta.Recv}
	endRecv := ta.Sync{Chan: b.ends[i], Dir: ta.Recv}

	// Pass an activation by. While no measurement is in progress (m == -1)
	// the response clock is meaningless; freeing it keeps the zone graph
	// small (active-clock reduction).
	p.AddEdge(ta.Edge{Src: l, Dst: l, Sync: startRecv, Update: ta.Inc(n, 1),
		Guard: ta.VarCmp(m, ta.Eq, -1), Frees: []ta.ClockID{y.ID}})
	p.AddEdge(ta.Edge{Src: l, Dst: l, Sync: startRecv, Update: ta.Inc(n, 1),
		Guard: ta.VarCmp(m, ta.Ge, 0)})
	// Select this activation for measurement (at most one at a time).
	p.AddEdge(ta.Edge{
		Src: l, Dst: l, Sync: startRecv,
		Guard:  ta.VarCmp(m, ta.Eq, -1),
		Update: ta.Do(ta.Set(m, ta.V(n)), ta.Inc(n, 1)),
		Resets: []ta.Reset{{Clock: y.ID, Value: 0}},
	})
	// Completions ahead of the measured activation.
	p.AddEdge(ta.Edge{Src: l, Dst: l, Sync: endRecv,
		Guard:  ta.VarCmp(m, ta.Gt, 0),
		Update: ta.Do(ta.Inc(m, -1), ta.Inc(n, -1))})
	// Completions while nothing is being measured.
	p.AddEdge(ta.Edge{Src: l, Dst: l, Sync: endRecv,
		Guard:  ta.VarCmp(m, ta.Eq, -1),
		Update: ta.Inc(n, -1), Frees: []ta.ClockID{y.ID}})
	// The measured activation completes: y is its response time.
	p.AddEdge(ta.Edge{Src: l, Dst: seen, Sync: endRecv,
		Guard:  ta.VarCmp(m, ta.Eq, 0),
		Update: ta.Do(ta.SetConst(m, -1), ta.Inc(n, -1))})
	p.AddEdge(ta.Edge{Src: seen, Dst: l, Frees: []ta.ClockID{y.ID}})

	return Observer{Proc: ta.ProcID(len(b.net.Procs) - 1), Seen: seen, Y: y}
}
