package arch

import (
	"math/big"
	"testing"

	"repro/internal/core"
)

// pipeline builds: GEN -> opA on procA (10ms) -> msg on bus (10ms) -> opB on
// procB (10ms), so the uncontended end-to-end response is exactly 30ms.
func pipeline(arrival EventModel) (*System, *Requirement) {
	sys := NewSystem("pipe")
	pa := sys.AddProcessor("A", 10, SchedFP) // 1e5 instr -> 10ms
	pb := sys.AddProcessor("B", 20, SchedFP) // 2e5 instr -> 10ms
	bus := sys.AddBus("BUS", 8, SchedFP)     // 10 bytes = 80 bits -> 10ms
	sc := sys.AddScenario("job", 1, arrival)
	sc.Compute("opA", pa, 100000).Transfer("msg", bus, 10).Compute("opB", pb, 200000)
	return sys, EndToEnd("e2e", sc)
}

func mustWCRT(t *testing.T, sys *System, req *Requirement, copts Options, opts core.Options) WCRTResult {
	t.Helper()
	res, err := AnalyzeWCRT(sys, req, copts, opts)
	if err != nil {
		t.Fatalf("AnalyzeWCRT(%s): %v", req.Name, err)
	}
	return res
}

func wantMS(t *testing.T, res WCRTResult, num, den int64) {
	t.Helper()
	want := new(big.Rat).SetFrac64(num, den)
	if res.MS.Cmp(want) != 0 {
		t.Errorf("%s: WCRT = %s ms, want %s ms", res.Req.Name, res.MS.RatString(), want.RatString())
	}
	if !res.Exact {
		t.Errorf("%s: result not exact: %+v", res.Req.Name, res)
	}
}

func TestPipelineUncontended(t *testing.T) {
	for _, arrival := range []EventModel{
		Periodic(MS(100, 1), MS(0, 1)),
		PeriodicUnknownOffset(MS(100, 1)),
		Sporadic(MS(100, 1)),
	} {
		sys, req := pipeline(arrival)
		res := mustWCRT(t, sys, req, Options{HorizonMS: 100}, core.Options{})
		wantMS(t, res, 30, 1)
		if !res.Attained {
			t.Errorf("%v: bound should be attained", arrival)
		}
	}
}

func TestPipelineSpanRequirement(t *testing.T) {
	// Measuring from completion of opA to completion of opB spans the bus
	// transfer and opB: exactly 20ms.
	sys, _ := pipeline(Sporadic(MS(100, 1)))
	sc := sys.ScenarioByName("job")
	res := mustWCRT(t, sys, Span("a2b", sc, 0, 2), Options{HorizonMS: 100}, core.Options{})
	wantMS(t, res, 20, 1)
}

func TestPipelineFractionalTimes(t *testing.T) {
	// 1e5 instructions at 22 MIPS = 50/11 ms; 4 bytes at 72 kbit/s = 4/9 ms:
	// the exact-rational time base must reproduce 50/11 + 4/9 = 494/99 ms.
	sys := NewSystem("frac")
	p := sys.AddProcessor("MMI", 22, SchedFP)
	bus := sys.AddBus("BUS", 72, SchedFP)
	sc := sys.AddScenario("s", 1, Sporadic(MS(100, 1)))
	sc.Compute("op", p, 100000).Transfer("msg", bus, 4)
	res := mustWCRT(t, sys, EndToEnd("e2e", sc), Options{HorizonMS: 50}, core.Options{})
	wantMS(t, res, 494, 99)
}

func TestOverloadSurfacesAsQueueError(t *testing.T) {
	// A 10ms job arriving every 8ms overloads the processor; the pending
	// counter must eventually exceed its bound and surface as an error.
	sys := NewSystem("overload")
	p := sys.AddProcessor("P", 10, SchedFP)
	sc := sys.AddScenario("s", 1, Periodic(MS(8, 1), MS(0, 1)))
	sc.Compute("op", p, 100000)
	_, err := AnalyzeWCRT(sys, EndToEnd("e2e", sc), Options{QueueCap: 4, HorizonMS: 200}, core.Options{})
	if err == nil {
		t.Fatal("overloaded system must be reported via queue-cap violation")
	}
}

// contended builds two scenarios sharing one processor: hi (5ms every 20ms)
// and lo (10ms every 40ms).
func contended(sched SchedKind) (*System, *Scenario, *Scenario) {
	sys := NewSystem("cont")
	p := sys.AddProcessor("P", 10, sched)
	hi := sys.AddScenario("hi", 2, PeriodicUnknownOffset(MS(20, 1)))
	hi.Compute("hop", p, 50000) // 5ms
	lo := sys.AddScenario("lo", 1, PeriodicUnknownOffset(MS(40, 1)))
	lo.Compute("lop", p, 100000) // 10ms
	return sys, hi, lo
}

func TestNonPreemptiveBlocking(t *testing.T) {
	// Non-preemptive FP: hi suffers up to the full lo execution as blocking:
	// WCRT(hi) = 10 + 5 = 15, attained when both arrive simultaneously and
	// lo is dispatched first.
	sys, hi, _ := contended(SchedFP)
	res := mustWCRT(t, sys, EndToEnd("hi", hi), Options{HorizonMS: 100}, core.Options{})
	wantMS(t, res, 15, 1)
}

func TestPreemptiveEliminatesBlocking(t *testing.T) {
	// Preemptive FP (Fig. 5): hi preempts lo immediately: WCRT(hi) = 5.
	sys, hi, _ := contended(SchedFPPreempt)
	res := mustWCRT(t, sys, EndToEnd("hi", hi), Options{HorizonMS: 100}, core.Options{})
	wantMS(t, res, 5, 1)
}

func TestPreemptedTaskAccumulatesDelay(t *testing.T) {
	// The lo task (10ms) is hit by at most one hi activation (5ms) within
	// its busy window: WCRT(lo) = 15 under both disciplines here.
	for _, sched := range []SchedKind{SchedFP, SchedFPPreempt} {
		sys, _, lo := contended(sched)
		res := mustWCRT(t, sys, EndToEnd("lo", lo), Options{HorizonMS: 100}, core.Options{})
		wantMS(t, res, 15, 1)
	}
}

func TestNondetSchedulerIsWorse(t *testing.T) {
	// The Fig. 4 nondeterministic scheduler may serve lo first even when hi
	// waits, so hi's bound cannot be better than under FP.
	sysN, hiN, _ := contended(SchedNondet)
	resN := mustWCRT(t, sysN, EndToEnd("hi", hiN), Options{HorizonMS: 100}, core.Options{})
	sysF, hiF, _ := contended(SchedFP)
	resF := mustWCRT(t, sysF, EndToEnd("hi", hiF), Options{HorizonMS: 100}, core.Options{})
	if resN.MS.Cmp(resF.MS) < 0 {
		t.Errorf("nondet WCRT %s < FP WCRT %s", resN.MS.RatString(), resF.MS.RatString())
	}
}

func TestJitterDoesNotQueueWithinSlack(t *testing.T) {
	// P=20, J=10, exec 5: consecutive releases are at least P-J = 10 > 5
	// apart, so no queueing: WCRT = 5.
	sys := NewSystem("jit")
	p := sys.AddProcessor("P", 10, SchedFP)
	sc := sys.AddScenario("s", 1, PeriodicJitter(MS(20, 1), MS(10, 1)))
	sc.Compute("op", p, 50000)
	res := mustWCRT(t, sys, EndToEnd("e2e", sc), Options{HorizonMS: 100}, core.Options{})
	wantMS(t, res, 5, 1)
}

func TestBurstyStacksEvents(t *testing.T) {
	// P=20, J=40, D=0: up to ceil(J/P)+1 = 3 events can be released
	// back-to-back, so the last of the burst waits for two predecessors:
	// WCRT = 15.
	sys := NewSystem("bur")
	p := sys.AddProcessor("P", 10, SchedFP)
	sc := sys.AddScenario("s", 1, Bursty(MS(20, 1), MS(40, 1), MS(0, 1)))
	sc.Compute("op", p, 50000)
	res := mustWCRT(t, sys, EndToEnd("e2e", sc), Options{HorizonMS: 100}, core.Options{})
	wantMS(t, res, 15, 1)
}

func TestEventModelOrdering(t *testing.T) {
	// On the shared-processor system, po(0) <= pno <= sp must hold for the
	// lo scenario (more freedom can only increase the worst case).
	var prev *big.Rat
	for _, arrival := range []EventModel{
		Periodic(MS(40, 1), MS(0, 1)),
		PeriodicUnknownOffset(MS(40, 1)),
		Sporadic(MS(40, 1)),
	} {
		sys := NewSystem("ord")
		p := sys.AddProcessor("P", 10, SchedFP)
		hi := sys.AddScenario("hi", 2, Sporadic(MS(20, 1)))
		hi.Compute("hop", p, 50000)
		lo := sys.AddScenario("lo", 1, arrival)
		lo.Compute("lop", p, 100000)
		res := mustWCRT(t, sys, EndToEnd("lo", lo), Options{HorizonMS: 200}, core.Options{})
		if prev != nil && res.MS.Cmp(prev) < 0 {
			t.Errorf("%v: WCRT %s smaller than a more constrained model's %s",
				arrival, res.MS.RatString(), prev.RatString())
		}
		prev = res.MS
	}
}

func TestBinarySearchAgreesWithSup(t *testing.T) {
	sys, hi, _ := contended(SchedFP)
	req := EndToEnd("hi", hi)
	sup := mustWCRT(t, sys, req, Options{HorizonMS: 100}, core.Options{})
	bin, _, err := AnalyzeWCRTBinary(sys, req, Options{HorizonMS: 100}, core.Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sup.MS.Cmp(bin.MS) != 0 {
		t.Errorf("sup %s != binary search %s", sup.MS.RatString(), bin.MS.RatString())
	}
}

func TestTruncatedSearchIsLowerBound(t *testing.T) {
	sys, hi, _ := contended(SchedFP)
	req := EndToEnd("hi", hi)
	exact := mustWCRT(t, sys, req, Options{HorizonMS: 100}, core.Options{})
	res, err := AnalyzeWCRT(sys, req, Options{HorizonMS: 100},
		core.Options{Order: core.RDFS, Seed: 1, MaxStates: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact && res.Stats.Truncated {
		t.Error("truncated search must not claim exactness")
	}
	if res.MS.Cmp(exact.MS) > 0 {
		t.Errorf("lower bound %s exceeds exact WCRT %s", res.MS.RatString(), exact.MS.RatString())
	}
}

func TestValidationErrors(t *testing.T) {
	sys := NewSystem("bad")
	if err := sys.Validate(); err == nil {
		t.Error("system without scenarios must fail validation")
	}
	p := sys.AddProcessor("P", 10, SchedFP)
	sc := sys.AddScenario("s", 1, Sporadic(MS(10, 1)))
	if err := sys.Validate(); err == nil {
		t.Error("scenario without steps must fail validation")
	}
	sc.Compute("op", p, 1000)
	if err := sys.Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	if err := (&Requirement{Name: "r", Scenario: sc, FromStep: 0, ToStep: 0}).Validate(); err == nil {
		t.Error("empty span must fail validation")
	}
	if err := (EventModel{Kind: KindBursty, PeriodMS: MS(10, 1), JitterMS: MS(5, 1)}).Validate(); err == nil {
		t.Error("bursty with J <= P must fail validation")
	}
	if err := (EventModel{Kind: KindPeriodicJitter, PeriodMS: MS(10, 1), JitterMS: MS(15, 1)}).Validate(); err == nil {
		t.Error("jitter beyond period must fail validation")
	}
}

func TestPreemptiveThreeClassesRejected(t *testing.T) {
	sys := NewSystem("three")
	p := sys.AddProcessor("P", 10, SchedFPPreempt)
	for i, prio := range []int{1, 2, 3} {
		sc := sys.AddScenario(string(rune('a'+i)), prio, Sporadic(MS(100, 1)))
		sc.Compute("op", p, 1000)
	}
	req := EndToEnd("r", sys.Scenarios[0])
	if _, err := Compile(sys, req, Options{}); err == nil {
		t.Error("three priority classes on a preemptive resource must be rejected")
	}
}

func TestCompiledStructure(t *testing.T) {
	sys, req := pipeline(Sporadic(MS(100, 1)))
	c, err := Compile(sys, req, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ENV + 2 processors + bus + observer.
	if got := len(c.Net.Procs); got != 5 {
		t.Errorf("process count = %d, want 5", got)
	}
	if c.Net.ProcByName("ENV_job") == nil || c.Net.ProcByName("BUS") == nil ||
		c.Net.ProcByName("OBS") == nil {
		t.Error("expected processes missing")
	}
	// Fig. 4 shape for processor A: idle + one run location, two edges.
	pa := c.Net.ProcByName("A")
	if len(pa.Locations) != 2 || len(pa.Edges) != 2 {
		t.Errorf("processor A has %d locations / %d edges, want 2/2",
			len(pa.Locations), len(pa.Edges))
	}
	if c.Scale.Int64() != 1 {
		t.Errorf("all-integer model should have scale 1, got %s", c.Scale)
	}
}

func TestTimeScaleLCM(t *testing.T) {
	sys := NewSystem("scale")
	p := sys.AddProcessor("MMI", 22, SchedFP)
	n := sys.AddProcessor("NAV", 113, SchedFP)
	bus := sys.AddBus("BUS", 72, SchedFP)
	sc := sys.AddScenario("s", 1, Periodic(MS(125, 4), MS(0, 1)))
	sc.Compute("a", p, 100000).Transfer("m", bus, 4).Compute("b", n, 5000000)
	scale, err := computeScale(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Denominators: 11 (22 MIPS), 113, 9 (72 kbit/s), 4 (31.25ms).
	if scale.Int64() != 44748 {
		t.Errorf("scale = %s, want 44748 = lcm(11,113,9,4)", scale)
	}
}
