package arch

import (
	"fmt"
	"math/big"
)

// computeScale returns the least common multiple L of the denominators of
// every duration and event-model parameter in the system, so that one model
// time unit of 1/L milliseconds makes all timing constants exact integers.
func computeScale(sys *System) (*big.Int, error) {
	l := big.NewInt(1)
	add := func(r *big.Rat) {
		if r == nil {
			return
		}
		l = lcm(l, r.Denom())
	}
	for _, sc := range sys.Scenarios {
		for i := range sc.Steps {
			add(sc.Steps[i].DurationMS())
		}
		add(sc.Arrival.PeriodMS)
		add(sc.Arrival.OffsetMS)
		add(sc.Arrival.JitterMS)
		add(sc.Arrival.MinSepMS)
	}
	// Guard against pathological inputs producing units too fine for the
	// int64 DBM arithmetic (sums of bounds must not overflow).
	if l.BitLen() > 40 {
		return nil, fmt.Errorf("arch: common time base denominator %s is too fine; simplify the timing constants", l)
	}
	return l, nil
}

func lcm(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, g)
	return out.Mul(out, b)
}

// toUnits converts the exact millisecond value r to integer model time units
// under the given scale. It errs if the value is not integral (which cannot
// happen for scales from computeScale) or too large.
func toUnits(r *big.Rat, scale *big.Int) (int64, error) {
	if r == nil {
		return 0, nil
	}
	v := new(big.Rat).Mul(r, new(big.Rat).SetInt(scale))
	if !v.IsInt() {
		return 0, fmt.Errorf("arch: %s ms is not integral at scale 1/%s ms", r.RatString(), scale)
	}
	n := v.Num()
	if !n.IsInt64() {
		return 0, fmt.Errorf("arch: %s ms overflows the model time base", r.RatString())
	}
	u := n.Int64()
	if u < 0 {
		return 0, fmt.Errorf("arch: negative duration %s ms", r.RatString())
	}
	return u, nil
}

// unitsToMS converts a model-time value back to exact milliseconds.
func unitsToMS(u int64, scale *big.Int) *big.Rat {
	return new(big.Rat).SetFrac(big.NewInt(u), scale)
}

// TimeScale exposes the system's exact integer time base: the number of
// model time units per millisecond. Alternative analyses (the discrete-event
// simulator, busy-window analysis, real-time calculus) share this base so
// their results are directly comparable to the model checker's.
func (s *System) TimeScale() (*big.Int, error) { return computeScale(s) }

// ToUnits converts exact milliseconds to integer time units under scale.
func ToUnits(r *big.Rat, scale *big.Int) (int64, error) { return toUnits(r, scale) }

// UnitsToMS converts integer time units back to exact milliseconds.
func UnitsToMS(u int64, scale *big.Int) *big.Rat { return unitsToMS(u, scale) }
