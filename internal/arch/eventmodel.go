package arch

import (
	"fmt"
	"math/big"
)

// EventKind classifies the arrival models of Section 3.3 of the paper.
type EventKind int

const (
	// KindPeriodic is a strictly periodic stream with a known offset
	// (Fig. 7a; offset 0 gives the paper's "po" column).
	KindPeriodic EventKind = iota
	// KindPeriodicUnknownOffset is strictly periodic with a free initial
	// phase (Fig. 7b; the "pno" column).
	KindPeriodicUnknownOffset
	// KindSporadic only bounds the minimal inter-arrival time from below
	// (Fig. 7c; the "sp" column).
	KindSporadic
	// KindPeriodicJitter releases the k-th event anywhere in
	// [kP, kP+J] with J ≤ P (Fig. 7d; the "pj" column).
	KindPeriodicJitter
	// KindBursty allows jitter beyond the period (J > P) with a minimal
	// separation D between events (Fig. 8; the "bur" column).
	KindBursty
)

func (k EventKind) String() string {
	switch k {
	case KindPeriodic:
		return "po"
	case KindPeriodicUnknownOffset:
		return "pno"
	case KindSporadic:
		return "sp"
	case KindPeriodicJitter:
		return "pj"
	case KindBursty:
		return "bur"
	}
	return "?event"
}

// EventModel describes the arrival of scenario-triggering events. All times
// are exact rationals in milliseconds.
type EventModel struct {
	Kind     EventKind
	PeriodMS *big.Rat
	OffsetMS *big.Rat // KindPeriodic only
	JitterMS *big.Rat // KindPeriodicJitter and KindBursty
	MinSepMS *big.Rat // KindBursty only; nil or zero means unconstrained
}

// MS builds the exact rational num/den milliseconds.
func MS(num, den int64) *big.Rat { return new(big.Rat).SetFrac64(num, den) }

// Periodic returns a strictly periodic model with the given offset
// (Fig. 7a).
func Periodic(period, offset *big.Rat) EventModel {
	return EventModel{Kind: KindPeriodic, PeriodMS: period, OffsetMS: offset}
}

// PeriodicUnknownOffset returns a strictly periodic model with an arbitrary
// initial phase (Fig. 7b).
func PeriodicUnknownOffset(period *big.Rat) EventModel {
	return EventModel{Kind: KindPeriodicUnknownOffset, PeriodMS: period}
}

// Sporadic returns a sporadic model with minimal inter-arrival time period
// (Fig. 7c).
func Sporadic(period *big.Rat) EventModel {
	return EventModel{Kind: KindSporadic, PeriodMS: period}
}

// PeriodicJitter returns a periodic model with jitter J ≤ P (Fig. 7d).
func PeriodicJitter(period, jitter *big.Rat) EventModel {
	return EventModel{Kind: KindPeriodicJitter, PeriodMS: period, JitterMS: jitter}
}

// Bursty returns a bursty model with jitter J > P and minimal separation D
// (Fig. 8).
func Bursty(period, jitter, minSep *big.Rat) EventModel {
	return EventModel{Kind: KindBursty, PeriodMS: period, JitterMS: jitter, MinSepMS: minSep}
}

// Validate checks parameter consistency for the kind.
func (m EventModel) Validate() error {
	pos := func(r *big.Rat) bool { return r != nil && r.Sign() > 0 }
	nonneg := func(r *big.Rat) bool { return r == nil || r.Sign() >= 0 }
	if !pos(m.PeriodMS) {
		return fmt.Errorf("event model %s needs a positive period", m.Kind)
	}
	switch m.Kind {
	case KindPeriodic:
		if !nonneg(m.OffsetMS) {
			return fmt.Errorf("periodic offset must be nonnegative")
		}
	case KindPeriodicUnknownOffset, KindSporadic:
		// period only
	case KindPeriodicJitter:
		if !pos(m.JitterMS) && !(m.JitterMS != nil && m.JitterMS.Sign() == 0) {
			return fmt.Errorf("periodic-with-jitter needs a nonnegative jitter")
		}
		if m.JitterMS.Cmp(m.PeriodMS) > 0 {
			return fmt.Errorf("periodic-with-jitter requires J <= P; use the bursty model for J > P")
		}
	case KindBursty:
		if !pos(m.JitterMS) {
			return fmt.Errorf("bursty model needs a positive jitter")
		}
		if m.JitterMS.Cmp(m.PeriodMS) <= 0 {
			return fmt.Errorf("bursty model requires J > P; use periodic-with-jitter otherwise")
		}
		if !nonneg(m.MinSepMS) {
			return fmt.Errorf("bursty minimal separation must be nonnegative")
		}
	default:
		return fmt.Errorf("unknown event kind %d", m.Kind)
	}
	return nil
}

// String renders the model with its parameters.
func (m EventModel) String() string {
	switch m.Kind {
	case KindPeriodic:
		off := "0"
		if m.OffsetMS != nil {
			off = m.OffsetMS.RatString()
		}
		return fmt.Sprintf("po(P=%s, F=%s)", m.PeriodMS.RatString(), off)
	case KindPeriodicUnknownOffset:
		return fmt.Sprintf("pno(P=%s)", m.PeriodMS.RatString())
	case KindSporadic:
		return fmt.Sprintf("sp(P=%s)", m.PeriodMS.RatString())
	case KindPeriodicJitter:
		return fmt.Sprintf("pj(P=%s, J=%s)", m.PeriodMS.RatString(), m.JitterMS.RatString())
	case KindBursty:
		d := "0"
		if m.MinSepMS != nil {
			d = m.MinSepMS.RatString()
		}
		return fmt.Sprintf("bur(P=%s, J=%s, D=%s)", m.PeriodMS.RatString(), m.JitterMS.RatString(), d)
	}
	return "?event"
}
