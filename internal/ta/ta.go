// Package ta provides an UPPAAL-style modeling language for networks of
// timed automata: processes with locations (normal, urgent, committed),
// edges with clock guards, data guards over bounded integer variables,
// clock resets and variable updates, and synchronization over binary,
// broadcast, urgent, and urgent-broadcast channels.
//
// A Network is built with the Add* methods, then Finalize validates it and
// precomputes the edge indices and maximal clock constants needed by the
// zone-graph explorer in internal/core.
package ta

import (
	"fmt"
)

// ClockID indexes a clock in the network; clock 0 is the implicit reference
// clock and is never returned by AddClock.
type ClockID int

// VarID indexes a bounded integer variable of the network.
type VarID int

// ChanID indexes a synchronization channel of the network.
type ChanID int

// LocID indexes a location within one process.
type LocID int

// ProcID indexes a process within the network.
type ProcID int

// Clock is a named handle to a network clock, as returned by AddClock.
type Clock struct {
	ID   ClockID
	Name string
}

// IntVar is a named handle to a bounded integer variable.
type IntVar struct {
	ID   VarID
	Name string
}

// ChanKind distinguishes the four UPPAAL synchronization disciplines.
type ChanKind int

const (
	// Binary channels pair exactly one emitter with one receiver.
	Binary ChanKind = iota
	// BinaryUrgent channels are binary and additionally forbid delay
	// whenever a matching emit/receive pair is enabled.
	BinaryUrgent
	// Broadcast channels pair one emitter with every process whose receive
	// edge is enabled (possibly none).
	Broadcast
	// BroadcastUrgent channels are broadcast and forbid delay whenever an
	// emit edge is enabled. This is the "hurry!" pattern of the paper.
	BroadcastUrgent
)

func (k ChanKind) String() string {
	switch k {
	case Binary:
		return "chan"
	case BinaryUrgent:
		return "urgent chan"
	case Broadcast:
		return "broadcast chan"
	case BroadcastUrgent:
		return "urgent broadcast chan"
	}
	return "?chan"
}

// Urgent reports whether the channel kind forbids delay when enabled.
func (k ChanKind) Urgent() bool { return k == BinaryUrgent || k == BroadcastUrgent }

// IsBroadcast reports whether the channel kind is a broadcast discipline.
func (k ChanKind) IsBroadcast() bool { return k == Broadcast || k == BroadcastUrgent }

// Channel is a named handle to a synchronization channel.
type Channel struct {
	ID   ChanID
	Kind ChanKind
	Name string
}

// SyncDir is the direction of an edge's synchronization action.
type SyncDir int

const (
	// Tau marks an internal edge without synchronization.
	Tau SyncDir = iota
	// Emit marks a sending edge (c!).
	Emit
	// Recv marks a receiving edge (c?).
	Recv
)

// Sync describes the synchronization label of an edge.
type Sync struct {
	Chan ChanID
	Dir  SyncDir
}

// NoSync is the synchronization label of an internal edge.
var NoSync = Sync{Dir: Tau}

// LocKind classifies locations by their delay discipline.
type LocKind int

const (
	// Normal locations allow time to pass subject to the invariant.
	Normal LocKind = iota
	// UrgentLoc locations forbid delay while any process resides in them.
	UrgentLoc
	// Committed locations forbid delay and force the next transition to
	// leave a committed location.
	Committed
)

func (k LocKind) String() string {
	switch k {
	case Normal:
		return "normal"
	case UrgentLoc:
		return "urgent"
	case Committed:
		return "committed"
	}
	return "?loc"
}

// Location is a node of one process graph.
type Location struct {
	Name      string
	Kind      LocKind
	Invariant []Constraint // conjunction of upper bounds on clocks
}

// Reset sets one clock to a nonnegative integer constant when an edge fires.
type Reset struct {
	Clock ClockID
	Value int64
}

// Edge is a transition of one process.
type Edge struct {
	Src, Dst   LocID
	Guard      Guard        // data guard over integer variables; nil means true
	ClockGuard []Constraint // conjunction of clock constraints; nil means true
	Sync       Sync
	Resets     []Reset
	// Frees lists clocks whose value becomes unconstrained when the edge
	// fires. This is an active-clock reduction: freeing a clock that no
	// guard or invariant reads before its next reset does not change any
	// observable behavior but lets the passed list merge zones that differ
	// only in that clock. The compiler uses it for the measuring observer's
	// response-time clock between measurements.
	Frees  []ClockID
	Update Update // variable update; nil means skip
}

// SyncEdge is one entry of the per-location synchronization index built by
// Finalize: a synchronizing out-edge of the location together with its
// channel and direction, in OutEdges order. The successor engine's one-pass
// enabled-edge collection iterates these instead of rescanning every
// out-edge once per channel.
type SyncEdge struct {
	Chan ChanID
	Dir  SyncDir
	Edge int32 // index into Process.Edges
}

// Process is one component automaton of the network.
type Process struct {
	Name      string
	Locations []Location
	Edges     []Edge
	Init      LocID

	// outEdges[l] lists indices into Edges with Src == l; built by Finalize.
	outEdges [][]int

	// The compiled transition index, built by Finalize and immutable
	// afterwards (consumed lock-free by every exploration worker). Both
	// per-location lists are CSR-style flat arrays: location l owns
	// tauIdx[tauOff[l]:tauOff[l+1]] and syncIdx[syncOff[l]:syncOff[l+1]],
	// each in OutEdges order.
	tauOff  []int32
	tauIdx  []int32 // indices into Edges of tau out-edges
	syncOff []int32
	syncIdx []SyncEdge
	// committed[l] / noDelay[l] precompute Locations[l].Kind == Committed
	// and Kind ∈ {UrgentLoc, Committed}, the two per-location tests on the
	// successor hot path.
	committed []bool
	noDelay   []bool
}

// AddLocation appends a location and returns its ID.
func (p *Process) AddLocation(name string, kind LocKind, invariant ...Constraint) LocID {
	p.Locations = append(p.Locations, Location{Name: name, Kind: kind, Invariant: invariant})
	return LocID(len(p.Locations) - 1)
}

// AddEdge appends an edge between previously added locations.
func (p *Process) AddEdge(e Edge) {
	p.Edges = append(p.Edges, e)
}

// OutEdges returns the indices of the edges leaving location l. Valid only
// after Network.Finalize.
func (p *Process) OutEdges(l LocID) []int { return p.outEdges[l] }

// TauEdges returns the indices of the internal (tau) edges leaving location
// l, in OutEdges order. Valid only after Network.Finalize.
func (p *Process) TauEdges(l LocID) []int32 { return p.tauIdx[p.tauOff[l]:p.tauOff[l+1]] }

// SyncEdges returns the synchronizing edges leaving location l with their
// channel and direction, in OutEdges order. Valid only after
// Network.Finalize.
func (p *Process) SyncEdges(l LocID) []SyncEdge { return p.syncIdx[p.syncOff[l]:p.syncOff[l+1]] }

// CommittedLoc reports whether location l is committed. Valid only after
// Network.Finalize.
func (p *Process) CommittedLoc(l LocID) bool { return p.committed[l] }

// NoDelayLoc reports whether location l forbids delay (urgent or committed).
// Valid only after Network.Finalize.
func (p *Process) NoDelayLoc(l LocID) bool { return p.noDelay[l] }

// VarDecl describes one bounded integer variable.
type VarDecl struct {
	Name     string
	Init     int64
	Min, Max int64
}

// Network is a closed system of processes sharing clocks, variables, and
// channels.
type Network struct {
	Name   string
	Clocks []Clock // Clocks[0] is the reference clock
	Vars   []VarDecl
	Chans  []Channel
	Procs  []*Process

	// MaxConsts[c] is the maximal constant clock c is compared against in
	// any guard or invariant (plus any extra registered via
	// EnsureMaxConst); computed by Finalize and consumed by extrapolation.
	MaxConsts []int64
	// LowerConsts[c] / UpperConsts[c] split MaxConsts by the side of the
	// comparison, enabling the coarser Extra_LU abstraction: LowerConsts
	// covers guards bounding c from below (c > k, c >= k), UpperConsts
	// covers upper bounds and invariants (c < k, c <= k).
	LowerConsts []int64
	UpperConsts []int64

	// The network-level half of the compiled transition index, built by
	// Finalize and immutable afterwards. chanEmitProcs[c]/chanRecvProcs[c]
	// list the processes owning at least one emit/receive edge on channel c
	// in ascending process order (the urgency test visits only them);
	// chanEmitEdges[c]/chanRecvEdges[c] count those edges network-wide,
	// bounding how many can be simultaneously enabled — the successor
	// engine sizes its per-channel scratch buckets from these, once, so
	// bucketing never allocates. urgentChans lists the urgent channels in
	// ascending order.
	chanEmitProcs [][]ProcID
	chanRecvProcs [][]ProcID
	chanEmitEdges []int32
	chanRecvEdges []int32
	urgentChans   []ChanID

	finalized bool
}

// NewNetwork returns an empty network with the implicit reference clock.
func NewNetwork(name string) *Network {
	return &Network{
		Name:   name,
		Clocks: []Clock{{ID: 0, Name: "t0"}},
	}
}

// AddClock declares a clock and returns its handle.
func (n *Network) AddClock(name string) Clock {
	c := Clock{ID: ClockID(len(n.Clocks)), Name: name}
	n.Clocks = append(n.Clocks, c)
	return c
}

// AddVar declares a bounded integer variable with the given initial value and
// inclusive range.
func (n *Network) AddVar(name string, init, min, max int64) IntVar {
	n.Vars = append(n.Vars, VarDecl{Name: name, Init: init, Min: min, Max: max})
	return IntVar{ID: VarID(len(n.Vars) - 1), Name: name}
}

// AddChan declares a synchronization channel.
func (n *Network) AddChan(name string, kind ChanKind) Channel {
	c := Channel{ID: ChanID(len(n.Chans)), Kind: kind, Name: name}
	n.Chans = append(n.Chans, c)
	return c
}

// AddProcess declares a new empty process and returns it for population.
func (n *Network) AddProcess(name string) *Process {
	p := &Process{Name: name}
	n.Procs = append(n.Procs, p)
	return p
}

// NumClocks returns the clock count including the reference clock, i.e. the
// DBM dimension of the network.
func (n *Network) NumClocks() int { return len(n.Clocks) }

// InitialVars returns a fresh valuation holding every variable's initial
// value.
func (n *Network) InitialVars() []int64 {
	v := make([]int64, len(n.Vars))
	for i, d := range n.Vars {
		v[i] = d.Init
	}
	return v
}

// EnsureMaxConst raises the recorded maximal constant of clock c to at least
// k on both comparison sides. Callers measuring sup values of a clock (e.g.
// WCRT observers) must register their observation horizon here before
// Finalize, otherwise extrapolation may abstract the bound away.
func (n *Network) EnsureMaxConst(c ClockID, k int64) {
	for int(c) >= len(n.MaxConsts) {
		n.MaxConsts = append(n.MaxConsts, 0)
		n.LowerConsts = append(n.LowerConsts, 0)
		n.UpperConsts = append(n.UpperConsts, 0)
	}
	if k > n.MaxConsts[c] {
		n.MaxConsts[c] = k
	}
	if k > n.LowerConsts[c] {
		n.LowerConsts[c] = k
	}
	if k > n.UpperConsts[c] {
		n.UpperConsts[c] = k
	}
}

// ChanEmitProcs returns the processes with at least one emit edge on
// channel c, in ascending process order. Valid only after Finalize.
func (n *Network) ChanEmitProcs(c ChanID) []ProcID { return n.chanEmitProcs[c] }

// ChanRecvProcs returns the processes with at least one receive edge on
// channel c, in ascending process order. Valid only after Finalize.
func (n *Network) ChanRecvProcs(c ChanID) []ProcID { return n.chanRecvProcs[c] }

// ChanEdgeCounts returns the network-wide number of emit and receive edges
// on channel c — an upper bound on how many can be enabled in any single
// state. Valid only after Finalize.
func (n *Network) ChanEdgeCounts(c ChanID) (emit, recv int) {
	return int(n.chanEmitEdges[c]), int(n.chanRecvEdges[c])
}

// UrgentChans returns the urgent channels of the network in ascending
// order. Valid only after Finalize.
func (n *Network) UrgentChans() []ChanID { return n.urgentChans }

// ProcByName returns the process with the given name, or nil.
func (n *Network) ProcByName(name string) *Process {
	for _, p := range n.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// LocByName returns the location ID with the given name in process p, or -1.
func (p *Process) LocByName(name string) LocID {
	for i, l := range p.Locations {
		if l.Name == name {
			return LocID(i)
		}
	}
	return -1
}

// String renders a summary of the network for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("network %s: %d clocks, %d vars, %d chans, %d procs",
		n.Name, len(n.Clocks)-1, len(n.Vars), len(n.Chans), len(n.Procs))
}
