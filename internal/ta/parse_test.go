package ta

import (
	"strings"
	"testing"
	"testing/quick"
)

const radioTA = `
# The paper's Fig. 4 RAD automaton with a periodic generator.
system:radio
clock:x
clock:gx
int:rec:0:0:4
chan:hurry:urgent-broadcast
chan:done:broadcast

process:GEN
location:GEN:tick{initial; invariant: gx<=10}
edge:GEN:tick:tick{guard: gx==10; do: rec=rec+1, gx=0}

process:RAD
location:RAD:idle{initial}
location:RAD:busy{invariant: x<=3}
edge:RAD:idle:busy{guard: rec>0; sync: hurry!; do: rec=rec-1, x=0}
edge:RAD:busy:idle{guard: x==3; sync: done!}
`

func TestParseRadio(t *testing.T) {
	n, err := Parse(radioTA)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "radio" || len(n.Procs) != 2 || n.NumClocks() != 3 {
		t.Fatalf("unexpected shape: %s", n)
	}
	rad := n.ProcByName("RAD")
	if rad == nil || len(rad.Locations) != 2 || len(rad.Edges) != 2 {
		t.Fatalf("RAD misparsed: %+v", rad)
	}
	if rad.Locations[rad.Init].Name != "idle" {
		t.Error("initial location wrong")
	}
	if n.Chans[0].Kind != BroadcastUrgent || n.Chans[1].Kind != Broadcast {
		t.Error("channel kinds wrong")
	}
	if !n.Finalized() {
		t.Error("parsed network must be finalized")
	}
}

func TestParseAttributes(t *testing.T) {
	n, err := Parse(`
system:attrs
clock:x
int:D:5:0:9
process:P
location:P:a{initial; urgent}
location:P:b{committed; invariant: x<=D}
edge:P:a:b{guard: x>=2 && x<5 && D==5}
edge:P:b:a{do: x=0, D=D*2-1}
`)
	if err != nil {
		t.Fatal(err)
	}
	p := n.ProcByName("P")
	if p.Locations[0].Kind != UrgentLoc || p.Locations[1].Kind != Committed {
		t.Error("location kinds wrong")
	}
	inv := p.Locations[1].Invariant
	if len(inv) != 1 || !inv[0].VarBound {
		t.Errorf("dynamic invariant misparsed: %+v", inv)
	}
	e := p.Edges[0]
	if len(e.ClockGuard) != 2 {
		t.Errorf("clock guard atoms = %d, want 2", len(e.ClockGuard))
	}
	if e.Guard == nil || !e.Guard.Eval([]int64{5}) || e.Guard.Eval([]int64{4}) {
		t.Error("data guard misparsed")
	}
	vars := []int64{5}
	ApplyUpdate(p.Edges[1].Update, vars)
	if vars[0] != 9 {
		t.Errorf("update D=D*2-1: got %d, want 9", vars[0])
	}
}

func TestParseClockDifferenceAndFree(t *testing.T) {
	n, err := Parse(`
system:diff
clock:x
clock:y
process:P
location:P:a{initial}
location:P:b{}
edge:P:a:b{guard: x-y<=3 && x-y>1; do: y=_, x=2}
`)
	if err != nil {
		t.Fatal(err)
	}
	e := n.ProcByName("P").Edges[0]
	if len(e.ClockGuard) != 2 {
		t.Fatalf("diff guard atoms = %d, want 2", len(e.ClockGuard))
	}
	if len(e.Frees) != 1 || len(e.Resets) != 1 || e.Resets[0].Value != 2 {
		t.Errorf("do-list misparsed: frees=%v resets=%v", e.Frees, e.Resets)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"no system", "clock:x", "system"},
		{"dup system", "system:a\nsystem:b", "duplicate"},
		{"bad decl", "system:a\nwarp:x", "unknown declaration"},
		{"dup name", "system:a\nclock:x\nint:x:0:0:1", "already used"},
		{"bad int", "system:a\nint:v:a:0:1", "bad number"},
		{"bad chan kind", "system:a\nchan:c:quantum", "unknown kind"},
		{"unknown proc", "system:a\nlocation:P:x{initial}", "unknown process"},
		{"two initials", "system:a\nprocess:P\nlocation:P:a{initial}\nlocation:P:b{initial}", "two initial"},
		{"no initial", "system:a\nprocess:P\nlocation:P:a{}", "no initial location"},
		{"bad edge loc", "system:a\nprocess:P\nlocation:P:a{initial}\nedge:P:a:zz{}", "unknown location"},
		{"bad sync", "system:a\nchan:c:binary\nprocess:P\nlocation:P:a{initial}\nedge:P:a:a{sync: c}", "must end in"},
		{"unknown chan", "system:a\nprocess:P\nlocation:P:a{initial}\nedge:P:a:a{sync: c!}", "unknown channel"},
		{"bad guard", "system:a\nprocess:P\nlocation:P:a{initial}\nedge:P:a:a{guard: x ~ 3}", "comparison"},
		{"bad do", "system:a\nprocess:P\nlocation:P:a{initial}\nedge:P:a:a{do: 3}", "assignment"},
		{"unknown target", "system:a\nprocess:P\nlocation:P:a{initial}\nedge:P:a:a{do: q=1}", "unknown assignment target"},
		{"unterminated", "system:a\nprocess:P\nlocation:P:a{initial", "unterminated"},
		{"bad expr", "system:a\nint:v:0:0:9\nprocess:P\nlocation:P:a{initial}\nedge:P:a:a{do: v=v+}", "expression"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestParsedModelRoundTripsThroughDOT(t *testing.T) {
	n, err := Parse(radioTA)
	if err != nil {
		t.Fatal(err)
	}
	dot := n.DOT()
	for _, want := range []string{"GEN", "RAD", "busy", "hurry!", "done!"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT of parsed model missing %q", want)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Robustness: arbitrary junk must produce errors, not panics.
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		_, _ = Parse("system:x\n" + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Targeted near-miss inputs around every declaration form.
	nearMisses := []string{
		"system:", "system:a\nclock:", "system:a\nint:v", "system:a\nint:v:1:2",
		"system:a\nchan:c", "system:a\nprocess:", "system:a\nlocation:",
		"system:a\nprocess:P\nlocation:P:l{",
		"system:a\nprocess:P\nlocation:P:l{initial}\nedge:P:l",
		"system:a\nprocess:P\nlocation:P:l{initial}\nedge:P:l:l{guard:}",
		"system:a\nprocess:P\nlocation:P:l{initial}\nedge:P:l:l{do: =}",
		"system:a\nprocess:P\nlocation:P:l{initial}\nedge:P:l:l{do: v=(1}",
		"system:a\nclock:x\nprocess:P\nlocation:P:l{initial; invariant: x<=}",
	}
	for _, in := range nearMisses {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", in, r)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}
