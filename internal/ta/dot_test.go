package ta

import (
	"strings"
	"testing"
)

// buildFig4Like reconstructs the paper's Fig. 4 RAD automaton shape.
func buildFig4Like(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork("RADnet")
	x := n.AddClock("x")
	setvolume := n.AddVar("setvolume", 0, 0, 4)
	rec := n.AddVar("rec", 0, 0, 4)
	hurry := n.AddChan("hurry", BroadcastUrgent)
	nac := n.AddChan("notice_audible_change1", Broadcast)

	p := n.AddProcess("RAD")
	idle := p.AddLocation("idle", Normal)
	av := p.AddLocation("adjust_volume", Normal, CLE(x, 9))
	htmc := p.AddLocation("handle_TMC", Normal, CLE(x, 91))
	p.AddEdge(Edge{Src: idle, Dst: av,
		Guard:  VarCmp(setvolume, Gt, 0),
		Sync:   Sync{Chan: hurry.ID, Dir: Emit},
		Resets: []Reset{{x.ID, 0}}, Update: Inc(setvolume, -1)})
	p.AddEdge(Edge{Src: av, Dst: idle,
		ClockGuard: CEq(x, 9), Sync: Sync{Chan: nac.ID, Dir: Emit}})
	p.AddEdge(Edge{Src: idle, Dst: htmc,
		Guard:  VarCmp(rec, Gt, 0),
		Sync:   Sync{Chan: hurry.ID, Dir: Emit},
		Resets: []Reset{{x.ID, 0}}, Update: Inc(rec, -1)})
	p.AddEdge(Edge{Src: htmc, Dst: idle, ClockGuard: CEq(x, 91)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDOTRendersFig4(t *testing.T) {
	n := buildFig4Like(t)
	dot := n.DOT()
	for _, want := range []string{
		"digraph", "cluster_0", "RAD",
		"idle", "adjust_volume", "handle_TMC",
		"x<=9", "x<=91",
		"setvolume > 0", "hurry!", "notice_audible_change1!",
		"x=0", "setvolume--",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestDOTRendersDynamicBoundsAndKinds(t *testing.T) {
	n := NewNetwork("dyn")
	x := n.AddClock("x")
	y := n.AddClock("y")
	d := n.AddVar("D", 0, 0, 10)
	p := n.AddProcess("P")
	run := p.AddLocation("run", Normal, CLEVar(x, d))
	u := p.AddLocation("u", UrgentLoc)
	c := p.AddLocation("c", Committed)
	p.AddEdge(Edge{Src: run, Dst: u, ClockGuard: CEqVar(x, d), Frees: []ClockID{y.ID}})
	p.AddEdge(Edge{Src: u, Dst: c, ClockGuard: []Constraint{DiffLE(x, y, 3)}})
	p.AddEdge(Edge{Src: c, Dst: run})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	dot := n.DOT()
	for _, want := range []string{
		"x<=D", "x-y<=3", "free(y)", "doublecircle", "doubleoctagon",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestFreesValidation(t *testing.T) {
	n := NewNetwork("bad")
	p := n.AddProcess("P")
	l := p.AddLocation("l", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, Frees: []ClockID{5}})
	if err := n.Finalize(); err == nil {
		t.Error("freeing an unknown clock must be rejected")
	}
	n2 := NewNetwork("bad2")
	p2 := n2.AddProcess("P")
	l2 := p2.AddLocation("l", Normal)
	p2.AddEdge(Edge{Src: l2, Dst: l2, Frees: []ClockID{0}})
	if err := n2.Finalize(); err == nil {
		t.Error("freeing the reference clock must be rejected")
	}
}
