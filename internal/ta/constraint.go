package ta

import (
	"fmt"

	"repro/internal/dbm"
)

// Constraint is a single clock constraint xI - xJ ≺ c in DBM form. Absolute
// constraints on one clock use the reference clock (ID 0) as the other side.
//
// The bound is either the static Bound, or — when VarBound is set — computed
// from the current variable valuation as Coef·vars[Var] + Offset with
// strictness Weak. Variable bounds are what the paper's preemptive scheduler
// template (Fig. 5) needs: the invariant x ≤ D and guard x == D where D
// accumulates preemption delay at run time.
type Constraint struct {
	I, J  ClockID
	Bound dbm.Bound

	VarBound bool
	Var      VarID
	Coef     int64
	Offset   int64
	Weak     bool
}

// Resolve returns the effective bound under the given variable valuation.
func (c Constraint) Resolve(vars []int64) dbm.Bound {
	if !c.VarBound {
		return c.Bound
	}
	return dbm.MakeBound(c.Coef*vars[c.Var]+c.Offset, c.Weak)
}

func (c Constraint) String() string {
	b := "?var"
	if !c.VarBound {
		b = c.Bound.String()
	} else {
		op := "<"
		if c.Weak {
			op = "<="
		}
		b = fmt.Sprintf("%s%d*v%d%+d", op, c.Coef, c.Var, c.Offset)
	}
	switch {
	case c.J == 0:
		return fmt.Sprintf("x%d%s", c.I, b)
	case c.I == 0:
		return fmt.Sprintf("-x%d%s", c.J, b)
	default:
		return fmt.Sprintf("x%d-x%d%s", c.I, c.J, b)
	}
}

// CLE returns the constraint x ≤ k.
func CLE(x Clock, k int64) Constraint { return Constraint{I: x.ID, J: 0, Bound: dbm.LE(k)} }

// CLT returns the constraint x < k.
func CLT(x Clock, k int64) Constraint { return Constraint{I: x.ID, J: 0, Bound: dbm.LT(k)} }

// CGE returns the constraint x ≥ k.
func CGE(x Clock, k int64) Constraint { return Constraint{I: 0, J: x.ID, Bound: dbm.LE(-k)} }

// CGT returns the constraint x > k.
func CGT(x Clock, k int64) Constraint { return Constraint{I: 0, J: x.ID, Bound: dbm.LT(-k)} }

// CEq returns the pair of constraints pinning x == k.
func CEq(x Clock, k int64) []Constraint {
	return []Constraint{CLE(x, k), CGE(x, k)}
}

// DiffLE returns the constraint x - y ≤ k.
func DiffLE(x, y Clock, k int64) Constraint { return Constraint{I: x.ID, J: y.ID, Bound: dbm.LE(k)} }

// DiffLT returns the constraint x - y < k.
func DiffLT(x, y Clock, k int64) Constraint { return Constraint{I: x.ID, J: y.ID, Bound: dbm.LT(k)} }

// CLEVar returns the dynamic constraint x ≤ v (bound read from variable v).
func CLEVar(x Clock, v IntVar) Constraint {
	return Constraint{I: x.ID, J: 0, VarBound: true, Var: v.ID, Coef: 1, Weak: true}
}

// CGEVar returns the dynamic constraint x ≥ v.
func CGEVar(x Clock, v IntVar) Constraint {
	return Constraint{I: 0, J: x.ID, VarBound: true, Var: v.ID, Coef: -1, Weak: true}
}

// CEqVar returns the pair of dynamic constraints pinning x == v.
func CEqVar(x Clock, v IntVar) []Constraint {
	return []Constraint{CLEVar(x, v), CGEVar(x, v)}
}

// ApplyConstraints intersects zone z with every constraint in cs under the
// variable valuation vars, reporting whether the zone stays nonempty. Each
// constraint pays one O(n²) single-edge closure (dbm.Constrain), which is
// optimal when the constraints mention distinct clocks — location invariants
// are the typical case. When several constraints share clocks (two-sided
// guards, equality guards), ApplyConstraintsTouched amortizes the closures.
func ApplyConstraints(z *dbm.DBM, cs []Constraint, vars []int64) bool {
	for _, c := range cs {
		if !z.Constrain(int(c.I), int(c.J), c.Resolve(vars)) {
			return false
		}
	}
	return true
}

// ApplyConstraintsTouched intersects z with every constraint in cs like
// ApplyConstraints but defers re-canonicalization: all bounds are written
// first (dbm.TightenDeferred, recording the touched clocks into t) and one
// CloseTouched over the touched set restores canonical form. Total cost is
// O(|t|·n²) against ApplyConstraints' O(len(cs)·n²), so it wins exactly when
// the constraints mention fewer distinct clocks than there are constraints;
// callers on the hot path gate on that (see the successor engine's guard
// application). Both paths produce the canonical form of the same
// intersection, so the resulting DBM is bit-identical either way.
func ApplyConstraintsTouched(z *dbm.DBM, cs []Constraint, vars []int64, t *dbm.Touched) bool {
	t.Reset()
	for _, c := range cs {
		if !z.TightenDeferred(int(c.I), int(c.J), c.Resolve(vars), t) {
			return false
		}
	}
	if t.Len() == 0 {
		return !z.IsEmpty()
	}
	return z.CloseTouched(t)
}

// ConstraintsFeasible reports whether no single constraint in cs alone
// contradicts the canonical zone z: constraint xI - xJ ≺ b empties z exactly
// when b plus the zone's reverse bound on xJ - xI drops below (≤ 0). This is
// a necessary condition for the conjunction to intersect z, checked in
// O(len(cs)) without copying or mutating the zone — the successor engine
// uses it to reject clock-disabled transitions before paying for a matrix
// copy. Joint satisfiability still requires ApplyConstraints on a copy.
func ConstraintsFeasible(z *dbm.DBM, cs []Constraint, vars []int64) bool {
	for _, c := range cs {
		b := c.Resolve(vars)
		if b == dbm.Infinity {
			continue
		}
		if dbm.Add(z.At(int(c.J), int(c.I)), b) < dbm.LEZero {
			return false
		}
	}
	return true
}

// SatisfiedBy reports whether the (canonical, nonempty) zone z intersects all
// constraints in cs without mutating z.
func SatisfiedBy(z *dbm.DBM, cs []Constraint, vars []int64) bool {
	if len(cs) == 0 {
		return true
	}
	w := z.Copy()
	return ApplyConstraints(w, cs, vars)
}
