package ta

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a network from the compact textual format below, a line-based
// dialect in the spirit of TChecker's input language:
//
//	# comment
//	system:radio
//	clock:x
//	int:rec:0:0:8
//	chan:hurry:urgent-broadcast
//	process:RAD
//	location:RAD:idle{initial}
//	location:RAD:busy{invariant: x<=5; committed}
//	edge:RAD:idle:busy{guard: rec>0; sync: hurry!; do: rec=rec-1, x=0}
//
// Channel kinds: binary, urgent, broadcast, urgent-broadcast. Location
// attributes: initial, urgent, committed, invariant. Edge attributes:
// guard (conjunction with &&; clock atoms are recognized by their left
// operand), sync (chan! or chan?), do (comma-separated assignments; an
// assignment to a clock is a reset).
func Parse(input string) (*Network, error) {
	return ParseWithHook(input, nil)
}

// ParseWithHook parses like Parse but invokes hook on the fully built,
// not-yet-finalized network — the place to register extrapolation horizons
// (EnsureMaxConst) or other pre-finalization tweaks.
func ParseWithHook(input string, hook func(*Network) error) (*Network, error) {
	p := &parser{
		clocks: map[string]Clock{},
		vars:   map[string]IntVar{},
		chans:  map[string]Channel{},
		procs:  map[string]*Process{},
		inits:  map[string]bool{},
	}
	for lineNo, raw := range strings.Split(input, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("ta: line %d: %w", lineNo+1, err)
		}
	}
	if p.net == nil {
		return nil, fmt.Errorf("ta: missing system declaration")
	}
	for name, proc := range p.procs {
		if !p.inits[name] {
			return nil, fmt.Errorf("ta: process %s has no initial location", proc.Name)
		}
	}
	if hook != nil {
		if err := hook(p.net); err != nil {
			return nil, err
		}
	}
	if err := p.net.Finalize(); err != nil {
		return nil, err
	}
	return p.net, nil
}

type parser struct {
	net    *Network
	clocks map[string]Clock
	vars   map[string]IntVar
	chans  map[string]Channel
	procs  map[string]*Process
	inits  map[string]bool
}

// line dispatches one declaration.
func (p *parser) line(line string) error {
	head, rest, _ := strings.Cut(line, ":")
	head = strings.TrimSpace(head)
	if p.net == nil && head != "system" {
		return fmt.Errorf("first declaration must be system:<name>")
	}
	switch head {
	case "system":
		if p.net != nil {
			return fmt.Errorf("duplicate system declaration")
		}
		p.net = NewNetwork(strings.TrimSpace(rest))
		return nil
	case "clock":
		name := strings.TrimSpace(rest)
		if err := p.freshName(name); err != nil {
			return err
		}
		p.clocks[name] = p.net.AddClock(name)
		return nil
	case "int":
		parts := strings.Split(rest, ":")
		if len(parts) != 4 {
			return fmt.Errorf("int needs name:init:min:max")
		}
		name := strings.TrimSpace(parts[0])
		if err := p.freshName(name); err != nil {
			return err
		}
		nums := make([]int64, 3)
		for i, s := range parts[1:] {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return fmt.Errorf("int %s: bad number %q", name, s)
			}
			nums[i] = v
		}
		p.vars[name] = p.net.AddVar(name, nums[0], nums[1], nums[2])
		return nil
	case "chan":
		parts := strings.Split(rest, ":")
		if len(parts) != 2 {
			return fmt.Errorf("chan needs name:kind")
		}
		name := strings.TrimSpace(parts[0])
		if err := p.freshName(name); err != nil {
			return err
		}
		var kind ChanKind
		switch strings.TrimSpace(parts[1]) {
		case "binary":
			kind = Binary
		case "urgent":
			kind = BinaryUrgent
		case "broadcast":
			kind = Broadcast
		case "urgent-broadcast":
			kind = BroadcastUrgent
		default:
			return fmt.Errorf("chan %s: unknown kind %q", name, parts[1])
		}
		p.chans[name] = p.net.AddChan(name, kind)
		return nil
	case "process":
		name := strings.TrimSpace(rest)
		if _, dup := p.procs[name]; dup {
			return fmt.Errorf("duplicate process %q", name)
		}
		p.procs[name] = p.net.AddProcess(name)
		return nil
	case "location":
		return p.location(rest)
	case "edge":
		return p.edge(rest)
	}
	return fmt.Errorf("unknown declaration %q", head)
}

func (p *parser) freshName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	if _, ok := p.clocks[name]; ok {
		return fmt.Errorf("name %q already used", name)
	}
	if _, ok := p.vars[name]; ok {
		return fmt.Errorf("name %q already used", name)
	}
	if _, ok := p.chans[name]; ok {
		return fmt.Errorf("name %q already used", name)
	}
	return nil
}

// splitBody separates "a:b:c{attrs}" into the colon fields and the
// attribute body.
func splitBody(rest string) (fields []string, body string, err error) {
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		if !strings.HasSuffix(strings.TrimSpace(rest), "}") {
			return nil, "", fmt.Errorf("unterminated attribute block")
		}
		body = strings.TrimSpace(rest[i+1 : strings.LastIndexByte(rest, '}')])
		rest = rest[:i]
	}
	for _, f := range strings.Split(rest, ":") {
		fields = append(fields, strings.TrimSpace(f))
	}
	return fields, body, nil
}

func (p *parser) location(rest string) error {
	fields, body, err := splitBody(rest)
	if err != nil {
		return err
	}
	if len(fields) != 2 {
		return fmt.Errorf("location needs process:name{...}")
	}
	proc := p.procs[fields[0]]
	if proc == nil {
		return fmt.Errorf("unknown process %q", fields[0])
	}
	kind := Normal
	initial := false
	var invariant []Constraint
	for _, attr := range splitAttrs(body) {
		key, val, _ := strings.Cut(attr, ":")
		switch strings.TrimSpace(key) {
		case "":
		case "initial":
			initial = true
		case "urgent":
			kind = UrgentLoc
		case "committed":
			kind = Committed
		case "invariant":
			cs, _, err := p.parseGuard(val)
			if err != nil {
				return fmt.Errorf("invariant: %w", err)
			}
			invariant = cs
		default:
			return fmt.Errorf("unknown location attribute %q", key)
		}
	}
	id := proc.AddLocation(fields[1], kind, invariant...)
	if initial {
		if p.inits[fields[0]] {
			return fmt.Errorf("process %s has two initial locations", fields[0])
		}
		proc.Init = id
		p.inits[fields[0]] = true
	}
	return nil
}

func (p *parser) edge(rest string) error {
	fields, body, err := splitBody(rest)
	if err != nil {
		return err
	}
	if len(fields) != 3 {
		return fmt.Errorf("edge needs process:src:dst{...}")
	}
	proc := p.procs[fields[0]]
	if proc == nil {
		return fmt.Errorf("unknown process %q", fields[0])
	}
	src := proc.LocByName(fields[1])
	dst := proc.LocByName(fields[2])
	if src < 0 || dst < 0 {
		return fmt.Errorf("unknown location in edge %s -> %s", fields[1], fields[2])
	}
	e := Edge{Src: src, Dst: dst}
	for _, attr := range splitAttrs(body) {
		key, val, _ := strings.Cut(attr, ":")
		switch strings.TrimSpace(key) {
		case "":
		case "guard":
			cs, g, err := p.parseGuard(val)
			if err != nil {
				return fmt.Errorf("guard: %w", err)
			}
			e.ClockGuard = cs
			e.Guard = g
		case "sync":
			val = strings.TrimSpace(val)
			if val == "" {
				return fmt.Errorf("empty sync")
			}
			dir := Emit
			switch val[len(val)-1] {
			case '!':
			case '?':
				dir = Recv
			default:
				return fmt.Errorf("sync %q must end in ! or ?", val)
			}
			ch, ok := p.chans[val[:len(val)-1]]
			if !ok {
				return fmt.Errorf("unknown channel %q", val[:len(val)-1])
			}
			e.Sync = Sync{Chan: ch.ID, Dir: dir}
		case "do":
			resets, frees, upd, err := p.parseDo(val)
			if err != nil {
				return fmt.Errorf("do: %w", err)
			}
			e.Resets = resets
			e.Frees = frees
			e.Update = upd
		default:
			return fmt.Errorf("unknown edge attribute %q", key)
		}
	}
	proc.AddEdge(e)
	return nil
}

// splitAttrs splits the attribute body on semicolons.
func splitAttrs(body string) []string {
	if body == "" {
		return nil
	}
	return strings.Split(body, ";")
}

// parseGuard parses a conjunction of comparisons, sorting each atom into a
// clock constraint (left operand names a clock) or a data guard.
func (p *parser) parseGuard(s string) ([]Constraint, Guard, error) {
	var cs []Constraint
	var gs []Guard
	for _, atom := range strings.Split(s, "&&") {
		atom = strings.TrimSpace(atom)
		if atom == "" {
			continue
		}
		lhs, op, rhs, err := splitCmp(atom)
		if err != nil {
			return nil, nil, err
		}
		if cls, isClock := p.clockOperand(lhs); isClock {
			c, err := p.clockConstraints(cls, op, rhs)
			if err != nil {
				return nil, nil, err
			}
			cs = append(cs, c...)
			continue
		}
		le, err := p.parseExpr(lhs)
		if err != nil {
			return nil, nil, err
		}
		re, err := p.parseExpr(rhs)
		if err != nil {
			return nil, nil, err
		}
		cop, err := cmpOp(op)
		if err != nil {
			return nil, nil, err
		}
		gs = append(gs, Cmp(le, cop, re))
	}
	var g Guard
	if len(gs) == 1 {
		g = gs[0]
	} else if len(gs) > 1 {
		g = And(gs...)
	}
	return cs, g, nil
}

// clockOperand recognizes "x" or "x-y" with x (and y) declared clocks.
func (p *parser) clockOperand(lhs string) ([2]Clock, bool) {
	if c, ok := p.clocks[lhs]; ok {
		return [2]Clock{c, {ID: 0}}, true
	}
	if a, b, found := strings.Cut(lhs, "-"); found {
		ca, okA := p.clocks[strings.TrimSpace(a)]
		cb, okB := p.clocks[strings.TrimSpace(b)]
		if okA && okB {
			return [2]Clock{ca, cb}, true
		}
	}
	return [2]Clock{}, false
}

// clockConstraints builds the DBM constraints for "x ⟨op⟩ rhs" or
// "x-y ⟨op⟩ rhs" where rhs is an integer literal or a variable name
// (dynamic bound, single-clock form only).
func (p *parser) clockConstraints(cls [2]Clock, op, rhs string) ([]Constraint, error) {
	x, y := cls[0], cls[1]
	if v, ok := p.vars[strings.TrimSpace(rhs)]; ok {
		if y.ID != 0 {
			return nil, fmt.Errorf("dynamic bounds on clock differences are not supported")
		}
		switch op {
		case "<=":
			return []Constraint{CLEVar(x, v)}, nil
		case ">=":
			return []Constraint{CGEVar(x, v)}, nil
		case "==":
			return CEqVar(x, v), nil
		}
		return nil, fmt.Errorf("dynamic clock bound needs <=, >= or ==")
	}
	k, err := strconv.ParseInt(strings.TrimSpace(rhs), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("clock comparison needs an integer or variable bound, got %q", rhs)
	}
	if y.ID != 0 {
		switch op {
		case "<=":
			return []Constraint{DiffLE(x, y, k)}, nil
		case "<":
			return []Constraint{DiffLT(x, y, k)}, nil
		case ">=":
			return []Constraint{DiffLE(y, x, -k)}, nil
		case ">":
			return []Constraint{DiffLT(y, x, -k)}, nil
		case "==":
			return []Constraint{DiffLE(x, y, k), DiffLE(y, x, -k)}, nil
		}
		return nil, fmt.Errorf("unknown operator %q", op)
	}
	switch op {
	case "<=":
		return []Constraint{CLE(x, k)}, nil
	case "<":
		return []Constraint{CLT(x, k)}, nil
	case ">=":
		return []Constraint{CGE(x, k)}, nil
	case ">":
		return []Constraint{CGT(x, k)}, nil
	case "==":
		return CEq(x, k), nil
	}
	return nil, fmt.Errorf("unknown operator %q", op)
}

// parseDo parses comma-separated assignments; clock targets become resets
// (constant right-hand side) or frees (right-hand side "_").
func (p *parser) parseDo(s string) ([]Reset, []ClockID, Update, error) {
	var resets []Reset
	var frees []ClockID
	var ups []Update
	for _, stmt := range strings.Split(s, ",") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		lhs, rhs, found := strings.Cut(stmt, "=")
		if !found {
			return nil, nil, nil, fmt.Errorf("assignment needs '=': %q", stmt)
		}
		lhs = strings.TrimSpace(lhs)
		rhs = strings.TrimSpace(rhs)
		if c, ok := p.clocks[lhs]; ok {
			if rhs == "_" {
				frees = append(frees, c.ID)
				continue
			}
			v, err := strconv.ParseInt(rhs, 10, 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("clock reset needs a constant: %q", stmt)
			}
			resets = append(resets, Reset{Clock: c.ID, Value: v})
			continue
		}
		v, ok := p.vars[lhs]
		if !ok {
			return nil, nil, nil, fmt.Errorf("unknown assignment target %q", lhs)
		}
		e, err := p.parseExpr(rhs)
		if err != nil {
			return nil, nil, nil, err
		}
		ups = append(ups, Set(v, e))
	}
	var upd Update
	if len(ups) == 1 {
		upd = ups[0]
	} else if len(ups) > 1 {
		upd = Do(ups...)
	}
	return resets, frees, upd, nil
}

// parseExpr parses integer expressions over +, -, * with standard
// precedence; operands are integer literals and variable names.
func (p *parser) parseExpr(s string) (Expr, error) {
	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	e, rest, err := p.parseSum(toks)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing tokens in expression %q", s)
	}
	return e, nil
}

func (p *parser) parseSum(toks []string) (Expr, []string, error) {
	e, toks, err := p.parseTerm(toks)
	if err != nil {
		return nil, nil, err
	}
	for len(toks) > 0 && (toks[0] == "+" || toks[0] == "-") {
		op := toks[0]
		var rhs Expr
		rhs, toks, err = p.parseTerm(toks[1:])
		if err != nil {
			return nil, nil, err
		}
		if op == "+" {
			e = Plus(e, rhs)
		} else {
			e = Minus(e, rhs)
		}
	}
	return e, toks, nil
}

func (p *parser) parseTerm(toks []string) (Expr, []string, error) {
	e, toks, err := p.parseFactor(toks)
	if err != nil {
		return nil, nil, err
	}
	for len(toks) > 0 && toks[0] == "*" {
		var rhs Expr
		rhs, toks, err = p.parseFactor(toks[1:])
		if err != nil {
			return nil, nil, err
		}
		e = Times(e, rhs)
	}
	return e, toks, nil
}

func (p *parser) parseFactor(toks []string) (Expr, []string, error) {
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("unexpected end of expression")
	}
	t := toks[0]
	if t == "(" {
		e, rest, err := p.parseSum(toks[1:])
		if err != nil {
			return nil, nil, err
		}
		if len(rest) == 0 || rest[0] != ")" {
			return nil, nil, fmt.Errorf("missing closing parenthesis")
		}
		return e, rest[1:], nil
	}
	if t == "-" {
		e, rest, err := p.parseFactor(toks[1:])
		if err != nil {
			return nil, nil, err
		}
		return Minus(C(0), e), rest, nil
	}
	if v, err := strconv.ParseInt(t, 10, 64); err == nil {
		return C(v), toks[1:], nil
	}
	if v, ok := p.vars[t]; ok {
		return V(v), toks[1:], nil
	}
	return nil, nil, fmt.Errorf("unknown operand %q", t)
}

// tokenize splits an expression into numbers, identifiers, and operators.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case strings.ContainsRune("+-*()", rune(c)):
			toks = append(toks, string(c))
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q in expression", c)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

// splitCmp splits a comparison atom into lhs, operator, rhs.
func splitCmp(atom string) (lhs, op, rhs string, err error) {
	for _, candidate := range []string{"<=", ">=", "==", "!=", "<", ">"} {
		if i := strings.Index(atom, candidate); i >= 0 {
			return strings.TrimSpace(atom[:i]), candidate,
				strings.TrimSpace(atom[i+len(candidate):]), nil
		}
	}
	return "", "", "", fmt.Errorf("no comparison operator in %q", atom)
}

func cmpOp(op string) (CmpOp, error) {
	switch op {
	case "==":
		return Eq, nil
	case "!=":
		return Ne, nil
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	}
	return 0, fmt.Errorf("unknown comparison %q", op)
}
