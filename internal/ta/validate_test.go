package ta

import "testing"

func TestFinalizeRejectsLowerBoundInvariant(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	p := n.AddProcess("P")
	p.AddLocation("bad", Normal, CGE(x, 2))
	if err := n.Finalize(); err == nil {
		t.Error("lower-bound invariant must be rejected")
	}
}

func TestFinalizeRejectsDiagonalInvariant(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	y := n.AddClock("y")
	p := n.AddProcess("P")
	p.AddLocation("bad", Normal, DiffLE(x, y, 3))
	if err := n.Finalize(); err == nil {
		t.Error("diagonal invariant must be rejected")
	}
}

func TestFinalizeRejectsUrgentRecvClockGuard(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	c := n.AddChan("u", BinaryUrgent)
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, ClockGuard: []Constraint{CGE(x, 1)},
		Sync: Sync{Chan: c.ID, Dir: Recv}})
	if err := n.Finalize(); err == nil {
		t.Error("clock guard on urgent receive must be rejected")
	}
}

func TestFinalizeRejectsBroadcastRecvClockGuard(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	c := n.AddChan("b", Broadcast)
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, ClockGuard: []Constraint{CGE(x, 1)},
		Sync: Sync{Chan: c.ID, Dir: Recv}})
	if err := n.Finalize(); err == nil {
		t.Error("clock guard on broadcast receive must be rejected")
	}
}

func TestFinalizeAcceptsBroadcastEmitClockGuard(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	c := n.AddChan("b", Broadcast)
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, ClockGuard: []Constraint{CGE(x, 1)},
		Sync: Sync{Chan: c.ID, Dir: Emit}})
	if err := n.Finalize(); err != nil {
		t.Errorf("non-urgent broadcast emit with clock guard must be allowed: %v", err)
	}
}

func TestFinalizeRejectsUnknownChannel(t *testing.T) {
	n := NewNetwork("x")
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, Sync: Sync{Chan: 9, Dir: Emit}})
	if err := n.Finalize(); err == nil {
		t.Error("unknown channel must be rejected")
	}
}

func TestFinalizeRejectsNegativeReset(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, Resets: []Reset{{x.ID, -1}}})
	if err := n.Finalize(); err == nil {
		t.Error("negative reset value must be rejected")
	}
}

func TestFinalizeRejectsResetOfReferenceClock(t *testing.T) {
	n := NewNetwork("x")
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: l, Resets: []Reset{{0, 0}}})
	if err := n.Finalize(); err == nil {
		t.Error("reset of the reference clock must be rejected")
	}
}
