package ta

import (
	"fmt"
	"strings"
)

// Expr is an integer expression over the network's variable valuation.
type Expr interface {
	Eval(v []int64) int64
	String() string
}

// Guard is a boolean predicate over the network's variable valuation. A nil
// Guard everywhere means "true".
type Guard interface {
	Eval(v []int64) bool
	String() string
}

// Update mutates the network's variable valuation when an edge fires. A nil
// Update means "skip".
type Update interface {
	Apply(v []int64)
	String() string
}

// --- Expressions ---

type constExpr int64

func (c constExpr) Eval([]int64) int64 { return int64(c) }
func (c constExpr) String() string     { return fmt.Sprintf("%d", int64(c)) }

// C returns the constant expression k.
func C(k int64) Expr { return constExpr(k) }

type varExpr IntVar

func (e varExpr) Eval(v []int64) int64 { return v[e.ID] }
func (e varExpr) String() string       { return e.Name }

// V returns the expression reading variable iv.
func V(iv IntVar) Expr { return varExpr(iv) }

type binExpr struct {
	op   byte
	l, r Expr
}

func (e binExpr) Eval(v []int64) int64 {
	a, b := e.l.Eval(v), e.r.Eval(v)
	switch e.op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	}
	panic("ta: unknown binary operator")
}

func (e binExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", e.l, e.op, e.r)
}

// Plus returns l + r.
func Plus(l, r Expr) Expr { return binExpr{'+', l, r} }

// Minus returns l - r.
func Minus(l, r Expr) Expr { return binExpr{'-', l, r} }

// Times returns l * r.
func Times(l, r Expr) Expr { return binExpr{'*', l, r} }

type iteExpr struct {
	cond        Guard
	then, else_ Expr
}

func (e iteExpr) Eval(v []int64) int64 {
	if e.cond.Eval(v) {
		return e.then.Eval(v)
	}
	return e.else_.Eval(v)
}

func (e iteExpr) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.cond, e.then, e.else_)
}

// Ite returns the conditional expression cond ? then : els, as used by the
// paper's measuring automaton (m = m<0 ? m : m-1).
func Ite(cond Guard, then, els Expr) Expr { return iteExpr{cond, then, els} }

// --- Guards ---

// CmpOp is a comparison operator for data guards.
type CmpOp int

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

func (o CmpOp) eval(a, b int64) bool {
	switch o {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	panic("ta: unknown comparison operator")
}

type cmpGuard struct {
	l  Expr
	op CmpOp
	r  Expr
}

func (g cmpGuard) Eval(v []int64) bool { return g.op.eval(g.l.Eval(v), g.r.Eval(v)) }
func (g cmpGuard) String() string      { return fmt.Sprintf("%s %s %s", g.l, g.op, g.r) }

// Cmp returns the guard l op r.
func Cmp(l Expr, op CmpOp, r Expr) Guard { return cmpGuard{l, op, r} }

// VarCmp returns the common guard iv op k.
func VarCmp(iv IntVar, op CmpOp, k int64) Guard { return cmpGuard{V(iv), op, C(k)} }

type andGuard []Guard

func (g andGuard) Eval(v []int64) bool {
	for _, c := range g {
		if c != nil && !c.Eval(v) {
			return false
		}
	}
	return true
}

func (g andGuard) String() string {
	parts := make([]string, 0, len(g))
	for _, c := range g {
		if c != nil {
			parts = append(parts, c.String())
		}
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " && ")
}

// And conjoins guards; nil members are treated as true.
func And(gs ...Guard) Guard { return andGuard(gs) }

type orGuard []Guard

func (g orGuard) Eval(v []int64) bool {
	for _, c := range g {
		if c == nil || c.Eval(v) {
			return true
		}
	}
	return false
}

func (g orGuard) String() string {
	parts := make([]string, 0, len(g))
	for _, c := range g {
		if c == nil {
			parts = append(parts, "true")
		} else {
			parts = append(parts, c.String())
		}
	}
	return "(" + strings.Join(parts, " || ") + ")"
}

// Or disjoins guards; nil members are treated as true.
func Or(gs ...Guard) Guard { return orGuard(gs) }

type notGuard struct{ g Guard }

func (g notGuard) Eval(v []int64) bool { return !g.g.Eval(v) }
func (g notGuard) String() string      { return "!(" + g.g.String() + ")" }

// Not negates a guard.
func Not(g Guard) Guard { return notGuard{g} }

type trueGuard struct{}

func (trueGuard) Eval([]int64) bool { return true }
func (trueGuard) String() string    { return "true" }

// True returns the guard that always holds.
func True() Guard { return trueGuard{} }

// EvalGuard evaluates g on v, treating nil as true.
func EvalGuard(g Guard, v []int64) bool {
	return g == nil || g.Eval(v)
}

// --- Updates ---

type setUpdate struct {
	dst IntVar
	e   Expr
}

func (u setUpdate) Apply(v []int64) { v[u.dst.ID] = u.e.Eval(v) }
func (u setUpdate) String() string  { return fmt.Sprintf("%s = %s", u.dst.Name, u.e) }

// Set returns the update iv = e.
func Set(iv IntVar, e Expr) Update { return setUpdate{iv, e} }

// SetConst returns the update iv = k.
func SetConst(iv IntVar, k int64) Update { return setUpdate{iv, C(k)} }

type incUpdate struct {
	dst   IntVar
	delta int64
}

func (u incUpdate) Apply(v []int64) { v[u.dst.ID] += u.delta }
func (u incUpdate) String() string {
	if u.delta == 1 {
		return u.dst.Name + "++"
	}
	if u.delta == -1 {
		return u.dst.Name + "--"
	}
	return fmt.Sprintf("%s += %d", u.dst.Name, u.delta)
}

// Inc returns the update iv += delta.
func Inc(iv IntVar, delta int64) Update { return incUpdate{iv, delta} }

type seqUpdate []Update

func (u seqUpdate) Apply(v []int64) {
	for _, s := range u {
		if s != nil {
			s.Apply(v)
		}
	}
}

func (u seqUpdate) String() string {
	parts := make([]string, 0, len(u))
	for _, s := range u {
		if s != nil {
			parts = append(parts, s.String())
		}
	}
	return strings.Join(parts, ", ")
}

// Do sequences several updates; nil members are skipped.
func Do(us ...Update) Update { return seqUpdate(us) }

// ApplyUpdate applies u to v, treating nil as skip.
func ApplyUpdate(u Update, v []int64) {
	if u != nil {
		u.Apply(v)
	}
}
