package ta_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ta"
)

// Example builds a minimal network — a periodic generator feeding a server
// through a counter and the urgent "hurry" channel, the paper's Fig. 4
// pattern — and checks that requests never queue.
func Example() {
	net := ta.NewNetwork("example")
	gx := net.AddClock("gx")
	sx := net.AddClock("sx")
	rec := net.AddVar("rec", 0, 0, 4)
	hurry := net.AddChan("hurry", ta.BroadcastUrgent)

	gen := net.AddProcess("GEN")
	tick := gen.AddLocation("tick", ta.Normal, ta.CLE(gx, 10))
	gen.AddEdge(ta.Edge{Src: tick, Dst: tick, ClockGuard: ta.CEq(gx, 10),
		Resets: []ta.Reset{{Clock: gx.ID, Value: 0}}, Update: ta.Inc(rec, 1)})

	srv := net.AddProcess("SRV")
	idle := srv.AddLocation("idle", ta.Normal)
	busy := srv.AddLocation("busy", ta.Normal, ta.CLE(sx, 3))
	srv.AddEdge(ta.Edge{Src: idle, Dst: busy,
		Guard:  ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Resets: []ta.Reset{{Clock: sx.ID, Value: 0}},
		Update: ta.Inc(rec, -1)})
	srv.AddEdge(ta.Edge{Src: busy, Dst: idle, ClockGuard: ta.CEq(sx, 3)})

	if err := net.Finalize(); err != nil {
		log.Fatal(err)
	}
	checker, err := core.NewChecker(net)
	if err != nil {
		log.Fatal(err)
	}
	res, err := checker.CheckSafety(core.Property{
		Desc:  "no queueing",
		Holds: func(s *core.State) bool { return s.Vars[rec.ID] <= 1 },
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AG(rec <= 1):", res.Holds)
	// Output: AG(rec <= 1): true
}

// ExampleParse loads the same system from the textual format and computes
// the server's busy-clock supremum.
func ExampleParse() {
	net, err := ta.Parse(`
system:example
clock:gx
clock:sx
int:rec:0:0:4
chan:hurry:urgent-broadcast
process:GEN
location:GEN:tick{initial; invariant: gx<=10}
edge:GEN:tick:tick{guard: gx==10; do: rec=rec+1, gx=0}
process:SRV
location:SRV:idle{initial}
location:SRV:busy{invariant: sx<=3}
edge:SRV:idle:busy{guard: rec>0; sync: hurry!; do: rec=rec-1, sx=0}
edge:SRV:busy:idle{guard: sx==3}
`)
	if err != nil {
		log.Fatal(err)
	}
	checker, err := core.NewChecker(net)
	if err != nil {
		log.Fatal(err)
	}
	busy := net.ProcByName("SRV").LocByName("busy")
	sup, err := checker.SupClock(2, func(s *core.State) bool { return s.Locs[1] == busy },
		core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sup(sx) while busy:", sup.Max)
	// Output: sup(sx) while busy: <=3
}
