package ta

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestUPPAALXMLWellFormed(t *testing.T) {
	n := buildFig4Like(t)
	out := n.UPPAALXML()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("exported XML is not well-formed: %v", err)
		}
	}
	for _, want := range []string{
		"<nta>", "urgent broadcast chan hurry;", "broadcast chan notice_audible_change1;",
		"int[0,4] setvolume = 0;", "clock x;",
		"<name>RAD</name>", "<name>idle</name>",
		`<label kind="invariant">x&lt;=9</label>`,
		`<label kind="guard">setvolume &gt; 0</label>`,
		`<label kind="synchronisation">hurry!</label>`,
		"system RAD;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("UPPAAL export missing %q", want)
		}
	}
}

func TestUPPAALXMLSanitizesNames(t *testing.T) {
	n := NewNetwork("dots")
	x := n.AddClock("TMC.env.x")
	v := n.AddVar("TMC.HandleTMC.q", 0, 0, 4)
	p := n.AddProcess("ENV_TMC")
	l := p.AddLocation("tick", Normal, CLE(x, 10))
	p.AddEdge(Edge{Src: l, Dst: l, ClockGuard: CEq(x, 10),
		Guard:  VarCmp(v, Lt, 4),
		Resets: []Reset{{x.ID, 0}}, Update: Inc(v, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	out := n.UPPAALXML()
	if strings.Contains(out, "TMC.env.x") || strings.Contains(out, "TMC.HandleTMC.q") {
		t.Error("dotted names must be sanitized")
	}
	for _, want := range []string{
		"clock TMC_env_x;", "int[0,4] TMC_HandleTMC_q = 0;",
		`<label kind="guard">TMC_HandleTMC_q &lt; 4 &amp;&amp; TMC_env_x&lt;=10 &amp;&amp; TMC_env_x&gt;=10</label>`,
		`<label kind="assignment">TMC_HandleTMC_q++, TMC_env_x = 0</label>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("UPPAAL export missing %q in:\n%s", want, out)
		}
	}
}

func TestUPPAALXMLKindsAndCollisions(t *testing.T) {
	n := NewNetwork("kinds")
	d := n.AddVar("D", 5, 0, 9)
	x := n.AddClock("a.b")
	n.AddClock("a_b") // collides with the sanitized form of a.b
	p := n.AddProcess("P")
	u := p.AddLocation("u", UrgentLoc)
	c := p.AddLocation("c", Committed, CLEVar(x, d))
	p.AddEdge(Edge{Src: u, Dst: c})
	p.AddEdge(Edge{Src: c, Dst: u})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	out := n.UPPAALXML()
	if !strings.Contains(out, "<urgent/>") || !strings.Contains(out, "<committed/>") {
		t.Error("location kinds must be exported")
	}
	if !strings.Contains(out, "a_b_2") {
		t.Error("name collision must get a numeric suffix")
	}
	if !strings.Contains(out, "a_b&lt;=D") {
		t.Errorf("dynamic invariant must export verbatim:\n%s", out)
	}
}
