package ta

import (
	"fmt"
	"strings"
)

// UPPAALXML renders the network in UPPAAL's 4.x XML input format, so models
// built or compiled with this package can be opened and cross-checked in
// the actual tool the paper used.
//
// Notes on fidelity:
//   - Names are sanitized to UPPAAL identifiers (dots become underscores,
//     collisions get numeric suffixes).
//   - Clock-free edges (the active-clock reduction) have no UPPAAL
//     counterpart; they are exported without the free, which preserves the
//     semantics exactly (freeing only merges zones, it never changes
//     behavior).
//   - Dynamic clock bounds (x <= D) export verbatim; UPPAAL accepts integer
//     variables in clock constraints.
func (n *Network) UPPAALXML() string {
	names := newSanitizer()
	clockName := make([]string, len(n.Clocks))
	for i, c := range n.Clocks {
		if i == 0 {
			continue
		}
		clockName[i] = names.pick(c.Name)
	}
	varName := make([]string, len(n.Vars))
	for i, v := range n.Vars {
		varName[i] = names.pick(v.Name)
	}
	chanName := make([]string, len(n.Chans))
	for i, c := range n.Chans {
		chanName[i] = names.pick(c.Name)
	}
	procName := make([]string, len(n.Procs))
	for i, p := range n.Procs {
		procName[i] = names.pick(p.Name)
	}

	var sb strings.Builder
	sb.WriteString("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n")
	sb.WriteString("<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' 'http://www.it.uu.se/research/group/darts/uppaal/flat-1_1.dtd'>\n")
	sb.WriteString("<nta>\n  <declaration>\n")
	if len(n.Clocks) > 1 {
		sb.WriteString("    clock " + strings.Join(clockName[1:], ", ") + ";\n")
	}
	for i, v := range n.Vars {
		fmt.Fprintf(&sb, "    int[%d,%d] %s = %d;\n", v.Min, v.Max, varName[i], v.Init)
	}
	for i, c := range n.Chans {
		prefix := ""
		switch c.Kind {
		case BinaryUrgent:
			prefix = "urgent "
		case Broadcast:
			prefix = "broadcast "
		case BroadcastUrgent:
			prefix = "urgent broadcast "
		}
		fmt.Fprintf(&sb, "    %schan %s;\n", prefix, chanName[i])
	}
	sb.WriteString("  </declaration>\n")

	rename := renamer{clockName: clockName, varName: varName}
	for pi, p := range n.Procs {
		fmt.Fprintf(&sb, "  <template>\n    <name>%s</name>\n", procName[pi])
		locName := make([]string, len(p.Locations))
		locNames := newSanitizer()
		for li, l := range p.Locations {
			locName[li] = locNames.pick(l.Name)
			fmt.Fprintf(&sb, "    <location id=\"id%d_%d\">\n      <name>%s</name>\n",
				pi, li, locName[li])
			if len(l.Invariant) > 0 {
				var parts []string
				for _, c := range l.Invariant {
					parts = append(parts, rename.constraint(n, c))
				}
				fmt.Fprintf(&sb, "      <label kind=\"invariant\">%s</label>\n",
					xmlEscape(strings.Join(parts, " && ")))
			}
			switch l.Kind {
			case UrgentLoc:
				sb.WriteString("      <urgent/>\n")
			case Committed:
				sb.WriteString("      <committed/>\n")
			}
			sb.WriteString("    </location>\n")
		}
		fmt.Fprintf(&sb, "    <init ref=\"id%d_%d\"/>\n", pi, p.Init)
		for _, e := range p.Edges {
			sb.WriteString("    <transition>\n")
			fmt.Fprintf(&sb, "      <source ref=\"id%d_%d\"/>\n      <target ref=\"id%d_%d\"/>\n",
				pi, e.Src, pi, e.Dst)
			var guards []string
			if e.Guard != nil {
				guards = append(guards, rename.rewrite(n, e.Guard.String()))
			}
			for _, c := range e.ClockGuard {
				guards = append(guards, rename.constraint(n, c))
			}
			if len(guards) > 0 {
				fmt.Fprintf(&sb, "      <label kind=\"guard\">%s</label>\n",
					xmlEscape(strings.Join(guards, " && ")))
			}
			if e.Sync.Dir != Tau {
				mark := "!"
				if e.Sync.Dir == Recv {
					mark = "?"
				}
				fmt.Fprintf(&sb, "      <label kind=\"synchronisation\">%s%s</label>\n",
					xmlEscape(chanName[e.Sync.Chan]), mark)
			}
			var assigns []string
			if e.Update != nil {
				assigns = append(assigns, rename.rewrite(n, e.Update.String()))
			}
			for _, r := range e.Resets {
				assigns = append(assigns, fmt.Sprintf("%s = %d", clockName[r.Clock], r.Value))
			}
			if len(assigns) > 0 {
				fmt.Fprintf(&sb, "      <label kind=\"assignment\">%s</label>\n",
					xmlEscape(strings.Join(assigns, ", ")))
			}
			sb.WriteString("    </transition>\n")
		}
		sb.WriteString("  </template>\n")
	}
	sb.WriteString("  <system>\n    system " + strings.Join(procName, ", ") + ";\n  </system>\n</nta>\n")
	return sb.String()
}

// sanitizer maps arbitrary names to unique UPPAAL identifiers.
type sanitizer struct {
	used map[string]bool
}

func newSanitizer() *sanitizer { return &sanitizer{used: map[string]bool{}} }

func (s *sanitizer) pick(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	id := b.String()
	if id == "" {
		id = "_"
	}
	if !s.used[id] {
		s.used[id] = true
		return id
	}
	for k := 2; ; k++ {
		cand := fmt.Sprintf("%s_%d", id, k)
		if !s.used[cand] {
			s.used[cand] = true
			return cand
		}
	}
}

// renamer rewrites clock/variable occurrences in rendered expressions to
// their sanitized spellings. Our String() forms reference original names,
// which may contain dots; a longest-first textual replacement is exact here
// because all names are identifier-shaped tokens.
type renamer struct {
	clockName []string
	varName   []string
}

func (r renamer) rewrite(n *Network, s string) string {
	dict := map[string]string{}
	for i, c := range n.Clocks {
		if i > 0 {
			dict[c.Name] = r.clockName[i]
		}
	}
	for i, v := range n.Vars {
		dict[v.Name] = r.varName[i]
	}
	// Single-pass token replacement: identifiers (including dotted names)
	// are looked up whole, so one rename can never feed another.
	var out strings.Builder
	i := 0
	isTok := func(b byte) bool {
		return b == '_' || b == '.' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
	}
	for i < len(s) {
		if !isTok(s[i]) {
			out.WriteByte(s[i])
			i++
			continue
		}
		j := i
		for j < len(s) && isTok(s[j]) {
			j++
		}
		tok := s[i:j]
		if to, ok := dict[tok]; ok {
			out.WriteString(to)
		} else {
			out.WriteString(tok)
		}
		i = j
	}
	return out.String()
}

func (r renamer) constraint(n *Network, c Constraint) string {
	return r.rewrite(n, n.constraintString(c))
}

func xmlEscape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
