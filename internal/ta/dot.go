package ta

import (
	"fmt"
	"strings"
)

// DOT renders the network as a Graphviz digraph, one cluster per process —
// the textual equivalent of the paper's automata figures (Figs. 4–9).
// Locations show their invariants; edges show guard / synchronization /
// update, in that order, mirroring the UPPAAL display conventions.
func (n *Network) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n  edge [fontsize=9];\n", n.Name)
	for pi, p := range n.Procs {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", pi, p.Name)
		for li, l := range p.Locations {
			var attrs []string
			label := l.Name
			if len(l.Invariant) > 0 {
				var inv []string
				for _, c := range l.Invariant {
					inv = append(inv, n.constraintString(c))
				}
				label += "\\n" + strings.Join(inv, " && ")
			}
			attrs = append(attrs, fmt.Sprintf("label=%q", label))
			switch l.Kind {
			case UrgentLoc:
				attrs = append(attrs, "shape=doublecircle")
			case Committed:
				attrs = append(attrs, "shape=doubleoctagon")
			}
			if l.Name == p.Locations[p.Init].Name && LocID(li) == p.Init {
				attrs = append(attrs, "penwidth=2")
			}
			fmt.Fprintf(&sb, "    p%dl%d [%s];\n", pi, li, strings.Join(attrs, ", "))
		}
		for _, e := range p.Edges {
			var parts []string
			if e.Guard != nil {
				parts = append(parts, e.Guard.String())
			}
			for _, c := range e.ClockGuard {
				parts = append(parts, n.constraintString(c))
			}
			if e.Sync.Dir != Tau {
				mark := "!"
				if e.Sync.Dir == Recv {
					mark = "?"
				}
				parts = append(parts, n.Chans[e.Sync.Chan].Name+mark)
			}
			for _, r := range e.Resets {
				parts = append(parts, fmt.Sprintf("%s=%d", n.Clocks[r.Clock].Name, r.Value))
			}
			for _, c := range e.Frees {
				parts = append(parts, fmt.Sprintf("free(%s)", n.Clocks[c].Name))
			}
			if e.Update != nil {
				parts = append(parts, e.Update.String())
			}
			fmt.Fprintf(&sb, "    p%dl%d -> p%dl%d [label=%q];\n",
				pi, e.Src, pi, e.Dst, strings.Join(parts, "\\n"))
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// constraintString renders a clock constraint with clock and variable names
// resolved. Lower bounds (reference clock on the left) are flipped to the
// conventional "x >= c" spelling, which both Graphviz readers and UPPAAL
// expect.
func (n *Network) constraintString(c Constraint) string {
	clock := func(id ClockID) string { return n.Clocks[id].Name }
	if c.I == 0 {
		// 0 - x ≺ b  ⇔  x ≻ -b.
		if !c.VarBound {
			op := ">"
			if c.Bound.Weak() {
				op = ">="
			}
			return fmt.Sprintf("%s%s%d", clock(c.J), op, -c.Bound.Value())
		}
		op := ">"
		if c.Weak {
			op = ">="
		}
		return fmt.Sprintf("%s%s%s", clock(c.J), op, n.dynRHS(c, true))
	}
	lhs := clock(c.I)
	if c.J != 0 {
		lhs += "-" + clock(c.J)
	}
	if !c.VarBound {
		op := "<"
		if c.Bound.Weak() {
			op = "<="
		}
		return fmt.Sprintf("%s%s%d", lhs, op, c.Bound.Value())
	}
	op := "<"
	if c.Weak {
		op = "<="
	}
	return fmt.Sprintf("%s%s%s", lhs, op, n.dynRHS(c, false))
}

// dynRHS renders the dynamic bound Coef·var + Offset, negated for flipped
// lower bounds.
func (n *Network) dynRHS(c Constraint, negate bool) string {
	coef := c.Coef
	off := c.Offset
	if negate {
		coef, off = -coef, -off
	}
	rhs := n.Vars[c.Var].Name
	if coef == -1 {
		rhs = "-" + rhs
	} else if coef != 1 {
		rhs = fmt.Sprintf("%d*%s", coef, rhs)
	}
	if off != 0 {
		rhs = fmt.Sprintf("%s%+d", rhs, off)
	}
	return rhs
}
