package ta

import (
	"fmt"
)

// Finalize validates the network and precomputes per-location edge indices
// and the maximal clock constants used by zone extrapolation. It must be
// called exactly once, after the model is fully built and before analysis.
func (n *Network) Finalize() error {
	if n.finalized {
		return fmt.Errorf("ta: network %s already finalized", n.Name)
	}
	if len(n.Procs) == 0 {
		return fmt.Errorf("ta: network %s has no processes", n.Name)
	}
	// Grow the constant tables to the clock count, preserving entries
	// registered via EnsureMaxConst.
	for len(n.MaxConsts) < len(n.Clocks) {
		n.MaxConsts = append(n.MaxConsts, 0)
	}
	for len(n.LowerConsts) < len(n.Clocks) {
		n.LowerConsts = append(n.LowerConsts, 0)
	}
	for len(n.UpperConsts) < len(n.Clocks) {
		n.UpperConsts = append(n.UpperConsts, 0)
	}

	for pi, p := range n.Procs {
		if len(p.Locations) == 0 {
			return fmt.Errorf("ta: process %s has no locations", p.Name)
		}
		if int(p.Init) >= len(p.Locations) || p.Init < 0 {
			return fmt.Errorf("ta: process %s has invalid initial location %d", p.Name, p.Init)
		}
		for li, l := range p.Locations {
			for _, c := range l.Invariant {
				if err := n.checkConstraint(c); err != nil {
					return fmt.Errorf("ta: invariant of %s.%s: %w", p.Name, l.Name, err)
				}
				// Only upper bounds on single clocks are admitted as
				// invariants (as in UPPAAL); this is what makes the
				// delay-then-intersect zone computation exact.
				if c.J != 0 || c.I == 0 {
					return fmt.Errorf("ta: invariant of %s.%s is not an upper bound: %s",
						p.Name, l.Name, c)
				}
				if !c.VarBound && c.Bound.Value() < 0 {
					return fmt.Errorf("ta: invariant of %s.%s has negative upper bound %s",
						p.Name, l.Name, c)
				}
				if err := n.recordConst(c); err != nil {
					return fmt.Errorf("ta: invariant of %s.%s: %w", p.Name, l.Name, err)
				}
			}
			_ = li
		}
		for ei := range p.Edges {
			e := &p.Edges[ei]
			if int(e.Src) >= len(p.Locations) || int(e.Dst) >= len(p.Locations) || e.Src < 0 || e.Dst < 0 {
				return fmt.Errorf("ta: process %s edge %d references unknown location", p.Name, ei)
			}
			for _, c := range e.ClockGuard {
				if err := n.checkConstraint(c); err != nil {
					return fmt.Errorf("ta: guard of %s edge %d: %w", p.Name, ei, err)
				}
				if err := n.recordConst(c); err != nil {
					return fmt.Errorf("ta: guard of %s edge %d: %w", p.Name, ei, err)
				}
			}
			for _, c := range e.Frees {
				if int(c) <= 0 || int(c) >= len(n.Clocks) {
					return fmt.Errorf("ta: process %s edge %d frees unknown clock %d", p.Name, ei, c)
				}
			}
			for _, r := range e.Resets {
				if int(r.Clock) <= 0 || int(r.Clock) >= len(n.Clocks) {
					return fmt.Errorf("ta: process %s edge %d resets unknown clock %d", p.Name, ei, r.Clock)
				}
				if r.Value < 0 {
					return fmt.Errorf("ta: process %s edge %d resets clock to negative value", p.Name, ei)
				}
				if r.Value > n.MaxConsts[r.Clock] {
					n.MaxConsts[r.Clock] = r.Value
				}
				if r.Value > n.UpperConsts[r.Clock] {
					n.UpperConsts[r.Clock] = r.Value
				}
				if r.Value > n.LowerConsts[r.Clock] {
					n.LowerConsts[r.Clock] = r.Value
				}
			}
			switch e.Sync.Dir {
			case Tau:
			case Emit, Recv:
				if int(e.Sync.Chan) < 0 || int(e.Sync.Chan) >= len(n.Chans) {
					return fmt.Errorf("ta: process %s edge %d uses unknown channel", p.Name, ei)
				}
				ch := n.Chans[e.Sync.Chan]
				// UPPAAL forbids clock guards on urgent channel edges
				// (urgency could not be decided per zone) and on broadcast
				// receivers (maximal participation would split zones).
				if ch.Kind.Urgent() && len(e.ClockGuard) > 0 {
					return fmt.Errorf("ta: process %s edge %d synchronizes on urgent channel %s with a clock guard",
						p.Name, ei, ch.Name)
				}
				if ch.Kind.IsBroadcast() && e.Sync.Dir == Recv && len(e.ClockGuard) > 0 {
					return fmt.Errorf("ta: process %s edge %d receives on broadcast channel %s with a clock guard",
						p.Name, ei, ch.Name)
				}
			default:
				return fmt.Errorf("ta: process %s edge %d has invalid sync direction", p.Name, ei)
			}
			_ = pi
		}
	}
	for _, v := range n.Vars {
		if v.Min > v.Max {
			return fmt.Errorf("ta: variable %s has empty range [%d,%d]", v.Name, v.Min, v.Max)
		}
		if v.Init < v.Min || v.Init > v.Max {
			return fmt.Errorf("ta: variable %s initial value %d outside [%d,%d]",
				v.Name, v.Init, v.Min, v.Max)
		}
	}
	n.buildIndex()
	n.finalized = true
	return nil
}

// buildIndex compiles the transition index the successor engine consumes:
// per-location tau and sync edge lists (CSR layout, OutEdges order),
// per-location committed/no-delay flags, the channel→participating-process
// tables, per-channel edge counts, and the urgent-channel list. Everything
// built here is immutable after Finalize — exploration workers read it
// concurrently without synchronization.
func (n *Network) buildIndex() {
	// The whole per-location index is carved out of three backing arrays.
	// Finalize runs once per network, but compiled pipelines (arch →
	// AnalyzeAll) rebuild their network per analysis, so the build itself
	// must not allocate per process — gated benchmarks count every alloc.
	totOff, totTau, totSync, totLoc, totEdge, maxLoc := 0, 0, 0, 0, 0, 0
	for _, p := range n.Procs {
		totOff += 2 * (len(p.Locations) + 1)
		totLoc += 2 * len(p.Locations)
		totEdge += len(p.Edges)
		if len(p.Locations) > maxLoc {
			maxLoc = len(p.Locations)
		}
		for _, e := range p.Edges {
			if e.Sync.Dir == Tau {
				totTau++
			} else {
				totSync++
			}
		}
	}

	// outEdges first (CSR as well — the per-location headers and the edge
	// indices all live in two arrays); the tau/sync split below reads it.
	oeHeaders := make([][]int, totLoc/2)
	flat := make([]int, totEdge)
	scratch := make([]int32, maxLoc)
	hpos, fpos := 0, 0
	for _, p := range n.Procs {
		nLocs := len(p.Locations)
		p.outEdges = oeHeaders[hpos : hpos+nLocs : hpos+nLocs]
		hpos += nLocs
		cnt := scratch[:nLocs]
		for i := range cnt {
			cnt[i] = 0
		}
		for _, e := range p.Edges {
			cnt[e.Src]++
		}
		for l := 0; l < nLocs; l++ {
			k := int(cnt[l])
			p.outEdges[l] = flat[fpos : fpos : fpos+k]
			fpos += k
		}
		for ei := range p.Edges {
			src := p.Edges[ei].Src
			p.outEdges[src] = append(p.outEdges[src], ei)
		}
	}
	i32 := make([]int32, totOff+totTau)
	edges := make([]SyncEdge, totSync)
	flags := make([]bool, totLoc)
	for _, p := range n.Procs {
		nLocs := len(p.Locations)
		nTau, nSync := 0, 0
		for _, e := range p.Edges {
			if e.Sync.Dir == Tau {
				nTau++
			} else {
				nSync++
			}
		}
		// Full-slice caps keep appends inside each process's segment.
		p.tauOff, i32 = i32[:nLocs+1:nLocs+1], i32[nLocs+1:]
		p.syncOff, i32 = i32[:nLocs+1:nLocs+1], i32[nLocs+1:]
		p.tauIdx, i32 = i32[:0:nTau], i32[nTau:]
		p.syncIdx, edges = edges[:0:nSync], edges[nSync:]
		p.committed, flags = flags[:nLocs:nLocs], flags[nLocs:]
		p.noDelay, flags = flags[:nLocs:nLocs], flags[nLocs:]
		for l, loc := range p.Locations {
			p.committed[l] = loc.Kind == Committed
			p.noDelay[l] = loc.Kind == UrgentLoc || loc.Kind == Committed
			p.tauOff[l] = int32(len(p.tauIdx))
			p.syncOff[l] = int32(len(p.syncIdx))
			for _, ei := range p.outEdges[l] {
				e := &p.Edges[ei]
				if e.Sync.Dir == Tau {
					p.tauIdx = append(p.tauIdx, int32(ei))
				} else {
					p.syncIdx = append(p.syncIdx, SyncEdge{Chan: e.Sync.Chan, Dir: e.Sync.Dir, Edge: int32(ei)})
				}
			}
		}
		p.tauOff[nLocs] = int32(len(p.tauIdx))
		p.syncOff[nLocs] = int32(len(p.syncIdx))
	}

	// Channel tables, same treatment: count first (the last-proc scratch
	// dedups repeated edges of one process), then carve every participant
	// list out of one flat array.
	nChans := len(n.Chans)
	cnt := make([]int32, 6*nChans)
	n.chanEmitEdges = cnt[0*nChans : 1*nChans : 1*nChans]
	n.chanRecvEdges = cnt[1*nChans : 2*nChans : 2*nChans]
	emitN := cnt[2*nChans : 3*nChans : 3*nChans]
	recvN := cnt[3*nChans : 4*nChans : 4*nChans]
	lastEmit := cnt[4*nChans : 5*nChans : 5*nChans]
	lastRecv := cnt[5*nChans : 6*nChans : 6*nChans]
	for i := 0; i < nChans; i++ {
		lastEmit[i], lastRecv[i] = -1, -1
	}
	for pi, p := range n.Procs {
		for _, e := range p.Edges {
			if e.Sync.Dir == Tau {
				continue
			}
			c := e.Sync.Chan
			if e.Sync.Dir == Recv {
				n.chanRecvEdges[c]++
				if lastRecv[c] != int32(pi) {
					lastRecv[c] = int32(pi)
					recvN[c]++
				}
			} else {
				n.chanEmitEdges[c]++
				if lastEmit[c] != int32(pi) {
					lastEmit[c] = int32(pi)
					emitN[c]++
				}
			}
		}
	}
	totParts := 0
	for c := 0; c < nChans; c++ {
		totParts += int(emitN[c] + recvN[c])
	}
	parts := make([]ProcID, totParts)
	headers := make([][]ProcID, 2*nChans)
	n.chanEmitProcs = headers[:nChans:nChans]
	n.chanRecvProcs = headers[nChans:]
	pos := 0
	for c := 0; c < nChans; c++ {
		n.chanEmitProcs[c] = parts[pos : pos : pos+int(emitN[c])]
		pos += int(emitN[c])
		n.chanRecvProcs[c] = parts[pos : pos : pos+int(recvN[c])]
		pos += int(recvN[c])
	}
	for i := 0; i < nChans; i++ {
		lastEmit[i], lastRecv[i] = -1, -1
	}
	for pi, p := range n.Procs {
		for _, e := range p.Edges {
			if e.Sync.Dir == Tau {
				continue
			}
			// Processes are visited in ascending order, so appending the
			// first occurrence keeps the participant lists sorted.
			c := e.Sync.Chan
			if e.Sync.Dir == Recv {
				if lastRecv[c] != int32(pi) {
					lastRecv[c] = int32(pi)
					n.chanRecvProcs[c] = append(n.chanRecvProcs[c], ProcID(pi))
				}
			} else {
				if lastEmit[c] != int32(pi) {
					lastEmit[c] = int32(pi)
					n.chanEmitProcs[c] = append(n.chanEmitProcs[c], ProcID(pi))
				}
			}
		}
	}
	n.urgentChans = n.urgentChans[:0]
	for ci, ch := range n.Chans {
		if ch.Kind.Urgent() {
			n.urgentChans = append(n.urgentChans, ChanID(ci))
		}
	}
}

// Finalized reports whether Finalize has completed successfully.
func (n *Network) Finalized() bool { return n.finalized }

func (n *Network) checkConstraint(c Constraint) error {
	if int(c.I) < 0 || int(c.I) >= len(n.Clocks) || int(c.J) < 0 || int(c.J) >= len(n.Clocks) {
		return fmt.Errorf("constraint %s references unknown clock", c)
	}
	if c.I == c.J {
		return fmt.Errorf("constraint %s compares a clock with itself", c)
	}
	return nil
}

// recordConst folds the constraint's constant into the per-clock constant
// tables used by extrapolation. A constraint xI - xJ ≺ c bounds xI from
// above (upper constant of I) and xJ from below (lower constant of J).
// Dynamic bounds contribute the largest magnitude their variable's declared
// range admits.
func (n *Network) recordConst(c Constraint) error {
	var v int64
	if c.VarBound {
		if int(c.Var) < 0 || int(c.Var) >= len(n.Vars) {
			return fmt.Errorf("dynamic bound references unknown variable %d", c.Var)
		}
		d := n.Vars[c.Var]
		lo := c.Coef*d.Min + c.Offset
		hi := c.Coef*d.Max + c.Offset
		v = max64(abs64(lo), abs64(hi))
	} else {
		v = abs64(c.Bound.Value())
	}
	if c.I != 0 {
		if v > n.MaxConsts[c.I] {
			n.MaxConsts[c.I] = v
		}
		if v > n.UpperConsts[c.I] {
			n.UpperConsts[c.I] = v
		}
	}
	if c.J != 0 {
		if v > n.MaxConsts[c.J] {
			n.MaxConsts[c.J] = v
		}
		if v > n.LowerConsts[c.J] {
			n.LowerConsts[c.J] = v
		}
	}
	return nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CheckVarBounds verifies that valuation v respects every variable's declared
// range, returning a descriptive error for the first violation. The explorer
// calls this after each update so modeling errors (e.g. the unbounded
// preemption accumulation the paper warns about) surface as analysis errors
// rather than silent wraparound.
func (n *Network) CheckVarBounds(v []int64) error {
	for i, d := range n.Vars {
		if v[i] < d.Min || v[i] > d.Max {
			return fmt.Errorf("ta: variable %s = %d outside declared range [%d,%d]",
				d.Name, v[i], d.Min, d.Max)
		}
	}
	return nil
}
