package ta

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dbm"
)

func TestBuilderBasics(t *testing.T) {
	n := NewNetwork("demo")
	x := n.AddClock("x")
	if x.ID != 1 {
		t.Fatalf("first user clock should have ID 1, got %d", x.ID)
	}
	if n.NumClocks() != 2 {
		t.Fatalf("NumClocks = %d, want 2 (reference + x)", n.NumClocks())
	}
	v := n.AddVar("rec", 0, 0, 10)
	c := n.AddChan("hurry", BroadcastUrgent)
	p := n.AddProcess("P")
	idle := p.AddLocation("idle", Normal)
	busy := p.AddLocation("busy", Normal, CLE(x, 5))
	p.AddEdge(Edge{
		Src: idle, Dst: busy,
		Guard:  VarCmp(v, Gt, 0),
		Sync:   Sync{Chan: c.ID, Dir: Emit},
		Resets: []Reset{{x.ID, 0}},
		Update: Inc(v, -1),
	})
	p.AddEdge(Edge{Src: busy, Dst: idle, ClockGuard: CEq(x, 5)})
	if err := n.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if got := p.OutEdges(idle); len(got) != 1 || got[0] != 0 {
		t.Errorf("OutEdges(idle) = %v", got)
	}
	if got := p.OutEdges(busy); len(got) != 1 || got[0] != 1 {
		t.Errorf("OutEdges(busy) = %v", got)
	}
	if n.MaxConsts[x.ID] != 5 {
		t.Errorf("MaxConsts[x] = %d, want 5", n.MaxConsts[x.ID])
	}
}

func TestFinalizeTwiceFails(t *testing.T) {
	n := NewNetwork("demo")
	p := n.AddProcess("P")
	p.AddLocation("idle", Normal)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err == nil {
		t.Error("second Finalize must fail")
	}
}

func TestFinalizeRejectsEmptyNetwork(t *testing.T) {
	n := NewNetwork("empty")
	if err := n.Finalize(); err == nil {
		t.Error("network without processes must be rejected")
	}
}

func TestFinalizeRejectsEmptyProcess(t *testing.T) {
	n := NewNetwork("x")
	n.AddProcess("P")
	if err := n.Finalize(); err == nil {
		t.Error("process without locations must be rejected")
	}
}

func TestFinalizeRejectsDanglingEdge(t *testing.T) {
	n := NewNetwork("x")
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{Src: l, Dst: 7})
	if err := n.Finalize(); err == nil {
		t.Error("edge to unknown location must be rejected")
	}
}

func TestFinalizeRejectsUrgentClockGuard(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	h := n.AddChan("hurry", BroadcastUrgent)
	p := n.AddProcess("P")
	l := p.AddLocation("idle", Normal)
	p.AddEdge(Edge{
		Src: l, Dst: l,
		ClockGuard: []Constraint{CGE(x, 3)},
		Sync:       Sync{Chan: h.ID, Dir: Emit},
	})
	if err := n.Finalize(); err == nil {
		t.Error("clock guard on urgent emit must be rejected")
	}
}

func TestFinalizeRejectsBadVarRange(t *testing.T) {
	n := NewNetwork("x")
	n.AddVar("v", 5, 0, 3)
	p := n.AddProcess("P")
	p.AddLocation("idle", Normal)
	if err := n.Finalize(); err == nil {
		t.Error("initial value outside range must be rejected")
	}
}

func TestFinalizeRejectsNegativeInvariant(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	p := n.AddProcess("P")
	p.AddLocation("bad", Normal, CLE(x, -1))
	if err := n.Finalize(); err == nil {
		t.Error("negative invariant bound must be rejected")
	}
}

func TestMaxConstsFromGuardsResetsAndEnsure(t *testing.T) {
	n := NewNetwork("x")
	x := n.AddClock("x")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 1000)
	p := n.AddProcess("P")
	a := p.AddLocation("a", Normal)
	p.AddEdge(Edge{Src: a, Dst: a, ClockGuard: []Constraint{CGE(x, 42)}})
	p.AddEdge(Edge{Src: a, Dst: a, Resets: []Reset{{x.ID, 7}}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if n.MaxConsts[x.ID] != 42 {
		t.Errorf("MaxConsts[x] = %d, want 42", n.MaxConsts[x.ID])
	}
	if n.MaxConsts[y.ID] != 1000 {
		t.Errorf("MaxConsts[y] = %d, want 1000 from EnsureMaxConst", n.MaxConsts[y.ID])
	}
}

func TestExprEval(t *testing.T) {
	a := IntVar{0, "a"}
	b := IntVar{1, "b"}
	v := []int64{3, 4}
	cases := []struct {
		e    Expr
		want int64
	}{
		{C(7), 7},
		{V(a), 3},
		{Plus(V(a), V(b)), 7},
		{Minus(V(b), C(1)), 3},
		{Times(V(a), V(b)), 12},
		{Ite(VarCmp(a, Lt, 0), V(a), Minus(V(a), C(1))), 2},
		{Ite(VarCmp(a, Gt, 0), V(a), Minus(V(a), C(1))), 3},
	}
	for _, c := range cases {
		if got := c.e.Eval(v); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestGuardEval(t *testing.T) {
	a := IntVar{0, "a"}
	v := []int64{5}
	cases := []struct {
		g    Guard
		want bool
	}{
		{VarCmp(a, Eq, 5), true},
		{VarCmp(a, Ne, 5), false},
		{VarCmp(a, Lt, 6), true},
		{VarCmp(a, Le, 5), true},
		{VarCmp(a, Gt, 5), false},
		{VarCmp(a, Ge, 5), true},
		{And(VarCmp(a, Gt, 0), VarCmp(a, Lt, 10)), true},
		{And(VarCmp(a, Gt, 0), VarCmp(a, Lt, 5)), false},
		{Or(VarCmp(a, Lt, 0), VarCmp(a, Eq, 5)), true},
		{Not(VarCmp(a, Eq, 5)), false},
		{True(), true},
	}
	for _, c := range cases {
		if got := c.g.Eval(v); got != c.want {
			t.Errorf("%s = %v, want %v", c.g, got, c.want)
		}
	}
	if !EvalGuard(nil, v) {
		t.Error("nil guard must be true")
	}
}

func TestUpdateApply(t *testing.T) {
	a := IntVar{0, "a"}
	b := IntVar{1, "b"}
	v := []int64{1, 2}
	Do(Inc(a, 1), Set(b, Plus(V(a), C(10))), nil).Apply(v)
	if v[0] != 2 || v[1] != 12 {
		t.Errorf("after update v = %v, want [2 12]", v)
	}
	ApplyUpdate(nil, v) // must not panic
	ApplyUpdate(SetConst(a, 0), v)
	if v[0] != 0 {
		t.Errorf("SetConst failed, v = %v", v)
	}
}

func TestMeasuringUpdatePattern(t *testing.T) {
	// The Fig. 9 update m = (m<0 ? m : m-1), n-- from the paper.
	m := IntVar{0, "m"}
	nvar := IntVar{1, "n"}
	upd := Do(Set(m, Ite(VarCmp(m, Lt, 0), V(m), Minus(V(m), C(1)))), Inc(nvar, -1))
	v := []int64{2, 3}
	upd.Apply(v)
	if v[0] != 1 || v[1] != 2 {
		t.Errorf("v = %v, want [1 2]", v)
	}
	v = []int64{-1, 3}
	upd.Apply(v)
	if v[0] != -1 || v[1] != 2 {
		t.Errorf("v = %v, want [-1 2]", v)
	}
}

func TestConstraintHelpers(t *testing.T) {
	x := Clock{1, "x"}
	y := Clock{2, "y"}
	if c := CLE(x, 5); c.I != 1 || c.J != 0 || c.Bound != dbm.LE(5) {
		t.Errorf("CLE wrong: %+v", c)
	}
	if c := CGT(x, 5); c.I != 0 || c.J != 1 || c.Bound != dbm.LT(-5) {
		t.Errorf("CGT wrong: %+v", c)
	}
	if cs := CEq(x, 3); len(cs) != 2 {
		t.Errorf("CEq must produce two constraints")
	}
	if c := DiffLE(x, y, 2); c.I != 1 || c.J != 2 || c.Bound != dbm.LE(2) {
		t.Errorf("DiffLE wrong: %+v", c)
	}
}

func TestApplyConstraints(t *testing.T) {
	x := Clock{1, "x"}
	z := dbm.New(2)
	z.Up()
	if !ApplyConstraints(z, []Constraint{CGE(x, 3), CLE(x, 5)}, nil) {
		t.Fatal("3<=x<=5 must be satisfiable after delay")
	}
	if z.Sup(1) != dbm.LE(5) || z.Inf(1) != dbm.LE(3) {
		t.Errorf("zone bounds [%v,%v], want [<=3,<=5]", z.Inf(1), z.Sup(1))
	}
	if ApplyConstraints(z, []Constraint{CGT(x, 5)}, nil) {
		t.Error("x>5 must empty the zone")
	}
}

func TestSatisfiedByDoesNotMutate(t *testing.T) {
	x := Clock{1, "x"}
	z := dbm.New(2)
	z.Up()
	before := z.Copy()
	if !SatisfiedBy(z, []Constraint{CGE(x, 3)}, nil) {
		t.Error("delayed zone intersects x>=3")
	}
	if !z.Eq(before) {
		t.Error("SatisfiedBy must not mutate the zone")
	}
}

func TestQuickCmpOpMatchesGo(t *testing.T) {
	f := func(a, b int64) bool {
		v := []int64{a, b}
		x := IntVar{0, "x"}
		y := IntVar{1, "y"}
		return Cmp(V(x), Eq, V(y)).Eval(v) == (a == b) &&
			Cmp(V(x), Ne, V(y)).Eval(v) == (a != b) &&
			Cmp(V(x), Lt, V(y)).Eval(v) == (a < b) &&
			Cmp(V(x), Le, V(y)).Eval(v) == (a <= b) &&
			Cmp(V(x), Gt, V(y)).Eval(v) == (a > b) &&
			Cmp(V(x), Ge, V(y)).Eval(v) == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	a := IntVar{0, "a"}
	g := And(VarCmp(a, Gt, 0), Not(VarCmp(a, Eq, 3)))
	if s := g.String(); !strings.Contains(s, "a > 0") {
		t.Errorf("guard string %q should mention a > 0", s)
	}
	u := Do(Inc(a, 1), Inc(a, -1), Inc(a, 5))
	if s := u.String(); !strings.Contains(s, "a++") || !strings.Contains(s, "a--") {
		t.Errorf("update string %q", s)
	}
	n := NewNetwork("net")
	n.AddProcess("P").AddLocation("l", Committed)
	if s := n.String(); !strings.Contains(s, "net") {
		t.Errorf("network string %q", s)
	}
	if Committed.String() != "committed" || UrgentLoc.String() != "urgent" {
		t.Error("LocKind strings wrong")
	}
	if BroadcastUrgent.String() != "urgent broadcast chan" {
		t.Error("ChanKind string wrong")
	}
}

func TestCheckVarBounds(t *testing.T) {
	n := NewNetwork("x")
	n.AddVar("v", 0, 0, 3)
	p := n.AddProcess("P")
	p.AddLocation("idle", Normal)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckVarBounds([]int64{2}); err != nil {
		t.Errorf("in-range valuation rejected: %v", err)
	}
	if err := n.CheckVarBounds([]int64{4}); err == nil {
		t.Error("out-of-range valuation must be rejected")
	}
}
