package serve

import "repro/internal/serve/api"

// This file defines the two pluggable backend seams of the job manager and
// their single-node (default) implementations. The manager itself is
// transport-agnostic: everything cluster-shaped — who owns a content hash,
// how a submission reaches its owner, how completions and results come back —
// goes through these interfaces. The local backends reduce every operation to
// a no-op, which is what makes the default configuration bit-identical to the
// historical single-node server; internal/serve/pubsub provides the
// multi-node implementations over a publish/subscribe broker.

// Dispatch routes submissions to the node owning their content hash and
// carries completion events between nodes. Implementations must be safe for
// concurrent use; handlers registered with Watch and Receive may be invoked
// from arbitrary goroutines and must be treated as at-least-once deliveries
// (the job manager tolerates duplicates).
type Dispatch interface {
	// Self reports this node's id.
	Self() string
	// Nodes lists every node id participating in routing, this node
	// included. A single-node backend returns just Self.
	Nodes() []string
	// Owner maps a content key to the node id that must run the job.
	Owner(key string) string
	// Send ships a dispatch envelope (a serialized api.SubmitRequest) to the
	// owner node. An error means the envelope was NOT delivered and the
	// caller should fall back to computing locally.
	Send(owner string, envelope []byte) error
	// Watch subscribes to completion events for one content key. The handler
	// runs at least once per announced completion (duplicates possible) and
	// additionally receives a synthetic failed event with code
	// wire.CodeDispatchFailed if the transport dies while watching — a
	// watcher must never hang on a broker that went away. The returned
	// cancel function releases the subscription.
	Watch(key string, fn func(api.CompletionEvent)) (cancel func(), err error)
	// Announce publishes a completion event cluster-wide: to the per-key
	// watchers and to the replication feed every node's result cache
	// consumes.
	Announce(ev api.CompletionEvent) error
	// Receive registers this node's handler for dispatch envelopes addressed
	// to it. Called once by the job manager at construction.
	Receive(fn func(envelope []byte)) error
	// Close releases the backend's subscriptions.
	Close() error
}

// ResultCache is the content-addressed replicated result store: completed
// results (and only results — never errors, never partial states) keyed by
// the submission content hash. Values are immutable once stored; Get must
// return the bytes exactly as Put received them, because those bytes are the
// wire response. Implementations are fed by the manager (adopted proxy
// completions) and, in cluster mode, by the dispatch backend's replication
// feed, and must tolerate duplicate Puts of the same key.
type ResultCache interface {
	// Get returns the cached completion for key, if any.
	Get(key string) (api.CompletionEvent, bool)
	// Put stores a completion. Implementations must ignore events whose
	// State is not done — failures are recomputed on resubmission, exactly
	// like the single-node job table does.
	Put(ev api.CompletionEvent)
	// Len reports the number of cached results, for metrics.
	Len() int
}

// localDispatch is the single-node Dispatch: this node owns every key, so no
// envelope, completion event, or subscription ever exists. It is the
// Config.Dispatch default and keeps the manager's behavior bit-identical to
// the pre-cluster server.
type localDispatch struct{}

func (localDispatch) Self() string                       { return "local" }
func (localDispatch) Nodes() []string                    { return []string{"local"} }
func (localDispatch) Owner(string) string                { return "local" }
func (localDispatch) Send(string, []byte) error          { return nil }
func (localDispatch) Announce(api.CompletionEvent) error { return nil }
func (localDispatch) Receive(func([]byte)) error         { return nil }
func (localDispatch) Close() error                       { return nil }
func (localDispatch) Watch(string, func(api.CompletionEvent)) (func(), error) {
	return func() {}, nil
}

// noCache is the single-node ResultCache: always a miss. The job table
// already doubles as the node-local result cache (job id == content key), so
// a separate store would only duplicate retention policy; replication is
// meaningful only with a cluster backend.
type noCache struct{}

func (noCache) Get(string) (api.CompletionEvent, bool) { return api.CompletionEvent{}, false }
func (noCache) Put(api.CompletionEvent)                {}
func (noCache) Len() int                               { return 0 }
