package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve/api"
	"repro/internal/wire"
)

// This file is the HTTP facade: decoding, status codes, and routing. All job
// semantics live in the Manager; every handler is a thin translation onto it.

// Handler returns the HTTP API. The contract is versioned under /v1/; the
// operational endpoints keep their historical unversioned paths as aliases.
//
//	POST /v1/jobs              submit an analysis; returns the job id
//	GET  /v1/jobs/{id}         status + live progress
//	GET  /v1/jobs/{id}/result  the wire result (done jobs only)
//	GET  /v1/jobs/{id}/trace   captured witness traces
//	GET  /v1/jobs/{id}/profile lifecycle spans + sweep profile (terminal jobs)
//	POST /v1/jobs/{id}/cancel  cooperative cancellation
//	GET  /v1/healthz           liveness + counts (alias: /healthz)
//	GET  /v1/metrics           Prometheus text metrics (alias: /metrics)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type httpError struct {
	status int
	code   string
	msg    string
	// retryAfter, when nonzero, marks the rejection as retryable: it becomes
	// the Retry-After header and the structured retry guidance on the wire.
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: wire.CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders any error as a structured wire.ErrorResponse. Retryable
// rejections additionally carry a Retry-After header plus jittered-backoff
// guidance in the body: the client should wait retry_after_ms plus up to
// retry_jitter_ms of uniform random slack, so a herd of shed clients spreads
// out instead of stampeding back together.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	body := wire.ErrorResponse{Error: err.Error(), Code: wire.CodeInternal}
	if he, ok := err.(*httpError); ok {
		status = he.status
		body.Code = he.code
		if he.retryAfter > 0 {
			body.RetryAfterMS = he.retryAfter.Milliseconds()
			body.RetryJitterMS = body.RetryAfterMS / 2
			w.Header().Set("Retry-After", fmt.Sprint(int64((he.retryAfter+time.Second-1)/time.Second)))
		}
	}
	writeJSON(w, status, body)
}

// maxBodyBytes bounds submissions; model sources are text, 8 MiB is generous.
const maxBodyBytes = 8 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		s.submissions.Add(1)
		writeError(w, badRequest("reading body: %v", err))
		return
	}
	if len(body) > maxBodyBytes {
		s.submissions.Add(1)
		writeError(w, &httpError{
			status: http.StatusRequestEntityTooLarge,
			code:   wire.CodeBodyTooLarge,
			msg:    fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes),
		})
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.submissions.Add(1)
		writeError(w, badRequest("decoding request: %v", err))
		return
	}
	resp, err := s.Submit(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if resp.State == StateDone {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *job {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, &httpError{status: http.StatusNotFound, code: wire.CodeNotFound, msg: "unknown job"})
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, errMsg, started, finished := j.snapshot()
	p := j.mon.Snapshot()
	resp := StatusResponse{
		JobID:       j.id,
		Kind:        j.kind,
		State:       state,
		Error:       errMsg,
		SubmittedAt: j.submitted,
		Progress: ProgressBody{
			Stored:       p.Stored,
			Popped:       p.Popped,
			Transitions:  p.Transitions,
			Deadlocks:    p.Deadlocks,
			Frontier:     p.Frontier,
			Workers:      p.Workers,
			Running:      p.Running,
			StoredBytes:  p.StoredBytes,
			InternHits:   p.InternHits,
			InternMisses: p.InternMisses,
		},
	}
	if !started.IsZero() {
		resp.StartedAt = &started
	}
	if !finished.IsZero() {
		resp.FinishedAt = &finished
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, errMsg, _, _ := j.snapshot()
	if state != StateDone {
		status := http.StatusConflict
		body := map[string]string{"state": state}
		if errMsg != "" {
			body["error"] = errMsg
		}
		writeJSON(w, status, body)
		return
	}
	j.mu.Lock()
	data := j.result
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, _, _, _ := j.snapshot()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, map[string]string{"state": state})
		return
	}
	j.mu.Lock()
	traces := j.traces
	j.mu.Unlock()
	if len(traces) == 0 {
		writeError(w, &httpError{status: http.StatusNotFound, code: wire.CodeNotFound,
			msg: "no traces captured (arch jobs record them when submitted with options.witness)"})
		return
	}
	if req := r.URL.Query().Get("req"); req != "" {
		t, ok := traces[req]
		if !ok {
			writeError(w, &httpError{status: http.StatusNotFound, code: wire.CodeNotFound, msg: "no trace for " + req})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{req: t})
		return
	}
	writeJSON(w, http.StatusOK, traces)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	j.cancel()
	state, errMsg, _, _ := j.snapshot()
	writeJSON(w, http.StatusOK, api.CancelResponse{JobID: j.id, State: state, Error: errMsg})
}

// handleHealthz reports graded health, not a flat 200: the body carries the
// admission pressure (queue depth, CPU-token and memory-budget saturation),
// the result-cache hit rate, and the node's cluster view (node id, peer
// count, remote hit rate), and when admission is saturated — new submissions
// would be shed — the endpoint flips to ok:false / 503 so load balancers
// steer traffic away while the node keeps draining its backlog and serving
// cached results. Degradation is judged per node: a saturated node sheds even
// when its peers are idle.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	active, retained := s.jobs.counts()
	c := s.Stats()
	inUse := s.tokens.inUse()
	degraded := active >= s.cfg.MaxActiveJobs
	hitRate := 0.0
	if c.Submissions > 0 {
		hitRate = float64(c.ResultHits) / float64(c.Submissions)
	}
	remoteRate := 0.0
	if c.Submissions > 0 {
		remoteRate = float64(c.RemoteHits) / float64(c.Submissions)
	}
	storedBytes, ihits, imisses := s.jobs.storedFootprint()
	internRate := 0.0
	if ihits+imisses > 0 {
		internRate = float64(ihits) / float64(ihits+imisses)
	}
	body := map[string]any{
		"ok":                    !degraded,
		"degraded":              degraded,
		"uptime_s":              int64(time.Since(s.start).Seconds()),
		"active_jobs":           active,
		"max_active_jobs":       s.cfg.MaxActiveJobs,
		"retained_jobs":         retained,
		"queue_depth":           s.tokens.waiting(),
		"cpu_tokens":            s.cfg.CPUTokens,
		"tokens_in_use":         inUse,
		"cpu_saturation":        float64(inUse) / float64(s.cfg.CPUTokens),
		"memory_budget_bytes":   s.cfg.MemoryBudget,
		"memory_in_use_bytes":   s.tokens.bytesInUse(),
		"stored_zone_bytes":     storedBytes,
		"intern_hit_rate":       internRate,
		"shed_total":            c.Shed,
		"result_cache_hit_rate": hitRate,
		"node_id":               s.dispatch.Self(),
		"peer_count":            len(s.dispatch.Nodes()),
		"remote_hit_rate":       remoteRate,
		"replicated_results":    s.results.Len(),
	}
	if s.cfg.MemoryBudget > 0 {
		// Saturation takes the worse of the two memory views: granted
		// admission bytes (what jobs reserved) and the live stores' actual
		// packed footprint (what is resident right now). Granted normally
		// dominates — compact zones keep actual use under the grant — so a
		// stored-bytes overtake means the budget accounting is drifting and
		// the node should shed before the kernel notices.
		used := s.tokens.bytesInUse()
		if storedBytes > used {
			used = storedBytes
		}
		body["memory_saturation"] = float64(used) / float64(s.cfg.MemoryBudget)
	}
	status := http.StatusOK
	if degraded {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// handleMetrics serves /v1/metrics (alias /metrics) from the obs registry.
// Both paths run this exact handler, so their bodies are byte-identical — the
// pinning test scrapes both and diffs.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}

// handleProfile serves a terminal job's profile: its lifecycle spans
// (queue-wait, admission-wait, compute, replicate) plus — when the job ran a
// sweep on this node — the engine's phase spans and sampled per-worker
// series. Non-terminal jobs answer 409, like /result.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, errMsg, _, finished := j.snapshot()
	if !j.terminal() {
		body := map[string]string{"state": state}
		if errMsg != "" {
			body["error"] = errMsg
		}
		writeJSON(w, http.StatusConflict, body)
		return
	}
	spans := j.spanSnapshot()
	resp := api.ProfileResponse{
		JobID:       j.id,
		Kind:        j.kind,
		State:       state,
		SubmittedAt: j.submitted,
		Spans:       spans,
	}
	// Wall clock spans submission through the last recorded instant: finish
	// time, or the replicate span's end when the announce outlived it.
	endNS := finished.UnixNano()
	for _, sp := range spans {
		if sp.End() > endNS {
			endNS = sp.End()
		}
	}
	resp.WallNS = endNS - j.submitted.UnixNano()
	if p := j.mon.Profile(); p != nil {
		data, err := json.Marshal(p)
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Sweep = data
	}
	writeJSON(w, http.StatusOK, resp)
}
