//go:build faultinject

package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// This file is the serve half of the chaos suite (CI job "chaos"): it runs
// only under -tags faultinject, arming faults at the job runner's named site
// and asserting the blast radius stays one job — the grant is returned, the
// table slot recycles, and the server keeps serving.

// TestChaosJobPanicContained injects a panic into the job closure and
// requires a failed job (not a dead process), with the CPU grant released and
// a clean retry succeeding afterwards.
func TestChaosJobPanicContained(t *testing.T) {
	defer faultinject.Reset()
	s, ts := testServer(t, Config{CPUTokens: 2})
	req := SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}}

	faultinject.Set("serve/job", faultinject.Fault{Kind: faultinject.KindPanic})
	sr := submit(t, ts.URL, req)
	final := await(t, ts.URL, sr.JobID, time.Minute)
	faultinject.Clear("serve/job")
	if final.State != StateFailed || !strings.Contains(final.Error, "job panicked") {
		t.Fatalf("job under injected panic: %s (%q), want failed (job panicked)", final.State, final.Error)
	}
	if held := s.tokens.inUse(); held != 0 {
		t.Fatalf("panicked job leaked %d CPU tokens", held)
	}

	// The failed entry is replaced by a fresh attempt, which now succeeds.
	again := submit(t, ts.URL, req)
	if again.JobID != sr.JobID || !again.Created {
		t.Fatalf("resubmission after contained panic = %+v, want a fresh attempt", again)
	}
	if final := await(t, ts.URL, again.JobID, time.Minute); final.State != StateDone {
		t.Fatalf("retry after contained panic: %s (%s)", final.State, final.Error)
	}
}

// TestChaosSlowJobStillSheds arms a delay at the job site and checks the
// operational endpoints stay responsive while the slow job holds its grant.
func TestChaosSlowJobStillSheds(t *testing.T) {
	defer faultinject.Reset()
	_, ts := testServer(t, Config{CPUTokens: 1, MaxActiveJobs: 1})
	faultinject.Set("serve/job", faultinject.Fault{Kind: faultinject.KindDelay, Delay: 200 * time.Millisecond})
	defer faultinject.Clear("serve/job")

	sr := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	// While the delayed job occupies the only table slot, health must answer
	// immediately (graded, but never blocked behind the slow job).
	start := time.Now()
	code, _ := getBody(t, ts.URL+"/healthz")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("healthz blocked %v behind a slow job", elapsed)
	}
	if code != 200 && code != 503 {
		t.Errorf("healthz under load: %d", code)
	}
	if final := await(t, ts.URL, sr.JobID, time.Minute); final.State != StateDone {
		t.Fatalf("delayed job: %s (%s)", final.State, final.Error)
	}
}
