// Package serve exposes the whole analysis stack — ta parse/validate,
// arch compilation, the core multi-query engine — as a concurrent HTTP JSON
// service (command taserved). The design centers on three ideas:
//
//   - Content addressing: a submission is normalized (defaults applied,
//     requirement sets resolved) and hashed; the hash is the job id AND the
//     result-cache key. Identical submissions — concurrent or repeated —
//     share one job, one compilation, one exploration, and receive
//     bit-identical response bytes.
//   - Layered singleflight caches: parsed models by source hash, compiled
//     networks by (model, requirement-set, horizon) hash, results by the full
//     submission hash. A thundering herd of identical requests costs exactly
//     one parse, one compile, one sweep.
//   - Bounded concurrency: a global CPU-token pool admits jobs FIFO; a job
//     holds as many tokens as it runs exploration workers, so simultaneous
//     analyses never oversubscribe the host. Cancellation and wall-clock
//     deadlines thread through core.Options into the worker loop, so a
//     canceled or expired job stops promptly and reports partial progress.
//
// Verdicts are computed by exactly the code paths the CLIs use
// (arch.CompileAll + CompiledSet.Analyze, wire.TARun) and encoded by the
// shared internal/wire package, so service results are bit-identical to
// archcheck/tacheck -json output for the same model and options.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ta"
	"repro/internal/wire"
)

// Config tunes one Server. Zero values select the documented defaults.
type Config struct {
	// CPUTokens is the global admission budget: the maximum number of
	// exploration workers running at once across all jobs. Default: NumCPU.
	CPUTokens int
	// MaxActiveJobs bounds jobs queued or running; submissions beyond it are
	// rejected with 429. Default 64.
	MaxActiveJobs int
	// MaxFinishedJobs bounds terminal jobs retained as the result cache
	// (LRU). Default 256.
	MaxFinishedJobs int
	// MaxModels / MaxCompiled bound the parsed-model and compiled-network
	// caches (LRU). Defaults 128 / 128.
	MaxModels   int
	MaxCompiled int
	// DefaultDeadline bounds each job's wall clock when the submission does
	// not set deadline_ms. Zero = unbounded.
	DefaultDeadline time.Duration
	// MemoryBudget is the global zone-memory budget in bytes. When set, every
	// job holds a memory grant alongside its CPU tokens while running: its
	// requested max_bytes (clamped to the budget), or a fair share of
	// MemoryBudget/CPUTokens per worker when the submission does not ask.
	// The grant is also the job's core memory budget, so one runaway
	// submission fails alone with MemoryBudgetExceeded instead of OOM-killing
	// the node. Zero = memory unmetered.
	MemoryBudget int64
}

func (c Config) withDefaults() Config {
	if c.CPUTokens <= 0 {
		c.CPUTokens = runtime.NumCPU()
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 64
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 256
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 128
	}
	if c.MaxCompiled <= 0 {
		c.MaxCompiled = 128
	}
	return c
}

// modelEntry is one parsed model; exactly one of the arch pair and net is
// set. Immutable after parse — shared by every job that hashes to it.
type modelEntry struct {
	sys  *arch.System
	reqs []*arch.Requirement
	net  *ta.Network
}

// Server is the analysis service. Create with New, mount Handler, stop with
// Shutdown.
type Server struct {
	cfg      Config
	start    time.Time
	tokens   *cpuTokens
	jobs     *jobManager
	models   *flightCache[*modelEntry]
	compiled *flightCache[*arch.CompiledSet]

	submissions  atomic.Int64
	dedupLive    atomic.Int64 // submissions that joined a queued/running job
	resultHits   atomic.Int64 // submissions answered by a finished job
	explorations atomic.Int64 // sweeps actually run
	canceled     atomic.Int64
	expired      atomic.Int64
	shed         atomic.Int64 // submissions rejected 429 at admission
}

// New returns a ready server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tokens := newCPUTokens(cfg.CPUTokens, cfg.MemoryBudget)
	return &Server{
		cfg:      cfg,
		start:    time.Now(),
		tokens:   tokens,
		jobs:     newJobManager(tokens, cfg.MaxActiveJobs, cfg.MaxFinishedJobs),
		models:   newFlightCache[*modelEntry](cfg.MaxModels),
		compiled: newFlightCache[*arch.CompiledSet](cfg.MaxCompiled),
	}
}

// Handler returns the HTTP API:
//
//	POST /v1/jobs             submit an analysis; returns the job id
//	GET  /v1/jobs/{id}        status + live progress
//	GET  /v1/jobs/{id}/result the wire result (done jobs only)
//	GET  /v1/jobs/{id}/trace  captured witness traces
//	POST /v1/jobs/{id}/cancel cooperative cancellation
//	GET  /healthz             liveness + counts
//	GET  /metrics             Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown stops intake, cancels every live job through the same cooperative
// mechanism the cancel endpoint uses, and waits (bounded) for job goroutines
// to drain. The HTTP listener is the caller's to close (http.Server.Shutdown
// first, then this).
func (s *Server) Shutdown(timeout time.Duration) error {
	s.jobs.close()
	return s.jobs.wait(timeout)
}

// Counters is a point-in-time view of the server's work, exposed for tests
// and /metrics.
type Counters struct {
	Submissions   int64
	DedupedLive   int64
	ResultHits    int64
	Explorations  int64
	Canceled      int64
	Expired       int64
	Shed          int64
	ModelHits     int64
	ModelMisses   int64
	CompileHits   int64
	CompileMisses int64
}

// Stats samples the server counters.
func (s *Server) Stats() Counters {
	mh, mm := s.models.stats()
	ch, cm := s.compiled.stats()
	return Counters{
		Submissions:   s.submissions.Load(),
		DedupedLive:   s.dedupLive.Load(),
		ResultHits:    s.resultHits.Load(),
		Explorations:  s.explorations.Load(),
		Canceled:      s.canceled.Load(),
		Expired:       s.expired.Load(),
		Shed:          s.shed.Load(),
		ModelHits:     mh,
		ModelMisses:   mm,
		CompileHits:   ch,
		CompileMisses: cm,
	}
}

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	// Kind selects the model format: "arch" (JSON architecture description,
	// the archcheck input) or "ta" (textual timed-automata network, the
	// tacheck input).
	Kind string `json:"kind"`
	// Model is the model source, verbatim.
	Model string `json:"model"`
	// Requirements optionally restricts an arch analysis to the named
	// requirements, in the given order; empty means all, file order.
	Requirements []string `json:"requirements,omitempty"`
	// Queries lists the questions of a ta analysis; all of them ride one
	// exploration.
	Queries []wire.TAQuery `json:"queries,omitempty"`
	Options SubmitOptions  `json:"options"`
}

// SubmitOptions tunes one submission. Every field participates in the
// content key: two submissions share a job (and its cached result) exactly
// when their normalized forms coincide.
type SubmitOptions struct {
	// HorizonMS is the arch observation horizon (default 2000).
	HorizonMS int64 `json:"horizon_ms,omitempty"`
	// HorizonMSByReq overrides the horizon per requirement.
	HorizonMSByReq map[string]int64 `json:"horizon_ms_by_req,omitempty"`
	// QueueCap bounds the arch pending-event counters (default 8).
	QueueCap int64 `json:"queue_cap,omitempty"`
	// Workers is the exploration parallelism of this job — also the number
	// of CPU tokens it holds while running. Clamped to [1, CPUTokens].
	// Default 1 (service throughput comes from concurrent jobs).
	Workers int `json:"workers,omitempty"`
	// MaxStates truncates the exploration (0 = exhaustive).
	MaxStates int `json:"max_states,omitempty"`
	// StateBudget hard-caps the exploration: exceeding it fails the job with
	// error "StateBudgetExceeded" (unlike max_states, which truncates).
	StateBudget int `json:"state_budget,omitempty"`
	// MaxBytes bounds the job's zone memory; exceeding it fails the job with
	// error "MemoryBudgetExceeded" and partial progress. When the server
	// runs with a global memory budget this is also the job's admission
	// grant (clamped to the budget); 0 requests the server's default share.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// Order is the search order: bfs (default), df, rdf.
	Order string `json:"order,omitempty"`
	// Seed feeds rdf shuffling.
	Seed int64 `json:"seed,omitempty"`
	// MaxConst is the extrapolation horizon for ta sup queries.
	MaxConst int64 `json:"max_const,omitempty"`
	// DeadlineMS bounds the job's wall clock from submission (admission wait
	// included); 0 selects the server default. An expired job fails with
	// error "DeadlineExceeded".
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Witness additionally captures a critical-instant trace per requirement
	// (arch only; extra explorations) for GET …/trace.
	Witness bool `json:"witness,omitempty"`
}

// SubmitResponse is the body answering POST /v1/jobs.
type SubmitResponse struct {
	JobID string `json:"job_id"`
	// State is the job state at response time; "done" means the result is
	// already available (result-cache hit).
	State string `json:"state"`
	// Created reports whether this submission started a new analysis; false
	// means it joined a live twin or hit a finished result.
	Created bool `json:"created"`
}

// StatusResponse is the body answering GET /v1/jobs/{id}.
type StatusResponse struct {
	JobID       string       `json:"job_id"`
	Kind        string       `json:"kind"`
	State       string       `json:"state"`
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	Progress    ProgressBody `json:"progress"`
}

// ProgressBody is the live view of a running exploration, sampled from the
// engine's per-worker counters.
type ProgressBody struct {
	Stored      int64 `json:"stored"`
	Popped      int64 `json:"popped"`
	Transitions int64 `json:"transitions"`
	Deadlocks   int64 `json:"deadlocks"`
	Frontier    int64 `json:"frontier"`
	Workers     int   `json:"workers"`
	Running     bool  `json:"running"`
	// StoredBytes is the passed store's actual resident footprint: packed
	// zone bytes plus interned discrete vectors.
	StoredBytes int64 `json:"stored_bytes"`
	// InternHits / InternMisses count discrete-vector intern lookups; the hit
	// rate is the store's discrete-part sharing factor.
	InternHits   int64 `json:"intern_hits"`
	InternMisses int64 `json:"intern_misses"`
}

// jobSpec is the normalized submission — the hashed content. Field order and
// deterministic map encoding (Go sorts map keys) make the canonical JSON
// stable.
type jobSpec struct {
	Kind           string           `json:"kind"`
	ModelHash      string           `json:"model_hash"`
	Requirements   []string         `json:"requirements,omitempty"`
	Queries        []wire.TAQuery   `json:"queries,omitempty"`
	HorizonMS      int64            `json:"horizon_ms"`
	HorizonMSByReq map[string]int64 `json:"horizon_ms_by_req,omitempty"`
	QueueCap       int64            `json:"queue_cap"`
	Workers        int              `json:"workers"`
	MaxStates      int              `json:"max_states"`
	StateBudget    int              `json:"state_budget"`
	MaxBytes       int64            `json:"max_bytes"`
	Order          string           `json:"order"`
	Seed           int64            `json:"seed"`
	MaxConst       int64            `json:"max_const,omitempty"`
	DeadlineMS     int64            `json:"deadline_ms"`
	Witness        bool             `json:"witness,omitempty"`
}

// encodeWire renders a wire value exactly as the CLIs' -json encoders do
// (two-space indent, trailing newline, json.Encoder escaping), keeping the
// byte-identity contract literal: diffing `archcheck -json`/`tacheck -json`
// output against a served result body succeeds.
func encodeWire(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func hashBytes(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

type httpError struct {
	status int
	code   string
	msg    string
	// retryAfter, when nonzero, marks the rejection as retryable: it becomes
	// the Retry-After header and the structured retry guidance on the wire.
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders any error as a structured wire.ErrorResponse. Retryable
// rejections additionally carry a Retry-After header plus jittered-backoff
// guidance in the body: the client should wait retry_after_ms plus up to
// retry_jitter_ms of uniform random slack, so a herd of shed clients spreads
// out instead of stampeding back together.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	body := wire.ErrorResponse{Error: err.Error(), Code: "internal"}
	if he, ok := err.(*httpError); ok {
		status = he.status
		body.Code = he.code
		if he.retryAfter > 0 {
			body.RetryAfterMS = he.retryAfter.Milliseconds()
			body.RetryJitterMS = body.RetryAfterMS / 2
			w.Header().Set("Retry-After", fmt.Sprint(int64((he.retryAfter+time.Second-1)/time.Second)))
		}
	}
	writeJSON(w, status, body)
}

// maxBodyBytes bounds submissions; model sources are text, 8 MiB is generous.
const maxBodyBytes = 8 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submissions.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, badRequest("reading body: %v", err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, &httpError{
			status: http.StatusRequestEntityTooLarge,
			code:   "body_too_large",
			msg:    fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes),
		})
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, badRequest("decoding request: %v", err))
		return
	}
	spec, model, herr := s.normalize(&req)
	if herr != nil {
		writeError(w, herr)
		return
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	id := hashBytes(string(canon))

	deadline := time.Time{}
	if spec.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	} else if s.cfg.DefaultDeadline > 0 {
		deadline = time.Now().Add(s.cfg.DefaultDeadline)
	}

	run := s.runFunc(spec, model)
	j, created, err := s.jobs.submit(id, spec.Kind, spec.Workers, spec.MaxBytes, deadline, run)
	switch err {
	case nil:
	case errBusy:
		// Overload shedding: reject with retry guidance scaled to the queue
		// depth, so clients back off harder the deeper the backlog. Cached
		// results keep being served throughout — only NEW work is shed (the
		// job-table lookup above this rejection hits finished twins first).
		s.shed.Add(1)
		writeError(w, &httpError{
			status:     http.StatusTooManyRequests,
			code:       "overloaded",
			msg:        err.Error(),
			retryAfter: s.retryAfter(),
		})
		return
	case errShuttingDown:
		writeError(w, &httpError{status: http.StatusServiceUnavailable, code: "shutting_down", msg: err.Error()})
		return
	default:
		writeError(w, err)
		return
	}
	state, _, _, _ := j.snapshot()
	if !created {
		if state == StateDone {
			s.resultHits.Add(1)
		} else {
			s.dedupLive.Add(1)
		}
	}
	status := http.StatusAccepted
	if state == StateDone {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{JobID: j.id, State: state, Created: created})
}

// retryAfter derives shed-retry guidance from the current queue pressure:
// one second of backoff per CPUTokens' worth of active jobs, clamped to
// [1s, 60s]. Deeper backlog → longer suggested wait.
func (s *Server) retryAfter() time.Duration {
	active, _ := s.jobs.counts()
	d := time.Duration(1+active/s.cfg.CPUTokens) * time.Second
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// normalize validates the submission, resolves the model through the parsed
// cache, applies defaults, and returns the canonical spec. The parsed entry
// is returned alongside so the job closure does not re-hash.
func (s *Server) normalize(req *SubmitRequest) (jobSpec, *modelEntry, *httpError) {
	var spec jobSpec
	if req.Model == "" {
		return spec, nil, badRequest("model is required")
	}
	switch req.Options.Order {
	case "":
		req.Options.Order = "bfs"
	case "bfs", "df", "rdf":
	default:
		return spec, nil, badRequest("unknown order %q (want bfs, df, or rdf)", req.Options.Order)
	}
	workers := req.Options.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.CPUTokens {
		workers = s.cfg.CPUTokens
	}
	if req.Options.HorizonMS == 0 {
		req.Options.HorizonMS = 2000
	}
	if req.Options.QueueCap == 0 {
		req.Options.QueueCap = 8
	}
	// Resolve the job's memory grant against the global budget: a declared
	// max_bytes is clamped to the budget; an undeclared one defaults to a
	// fair share of the budget proportional to the job's CPU grant. Without
	// a server budget the declared value passes through as a pure per-job
	// core budget (no admission hold).
	maxBytes := req.Options.MaxBytes
	if maxBytes < 0 {
		maxBytes = 0
	}
	if s.cfg.MemoryBudget > 0 {
		if maxBytes == 0 {
			maxBytes = s.cfg.MemoryBudget / int64(s.cfg.CPUTokens) * int64(workers)
		}
		if maxBytes > s.cfg.MemoryBudget {
			maxBytes = s.cfg.MemoryBudget
		}
		if maxBytes < 1 {
			maxBytes = 1
		}
	}
	stateBudget := req.Options.StateBudget
	if stateBudget < 0 {
		stateBudget = 0
	}
	spec = jobSpec{
		Kind:        req.Kind,
		HorizonMS:   req.Options.HorizonMS,
		QueueCap:    req.Options.QueueCap,
		Workers:     workers,
		MaxStates:   req.Options.MaxStates,
		StateBudget: stateBudget,
		MaxBytes:    maxBytes,
		Order:       req.Options.Order,
		Seed:        req.Options.Seed,
		DeadlineMS:  req.Options.DeadlineMS,
		Witness:     req.Options.Witness && req.Kind == "arch",
	}
	// Canonicalize away fields that cannot affect this submission's answer,
	// so semantically identical requests hash to one job: the seed only
	// feeds rdf shuffling, witness traces exist for arch jobs only, and the
	// compilation options (horizon, queue cap) are meaningless for ta
	// models.
	if spec.Order != "rdf" {
		spec.Seed = 0
	}
	if req.Kind == "ta" {
		spec.HorizonMS = 0
		spec.QueueCap = 0
	}

	switch req.Kind {
	case "arch":
		spec.ModelHash = hashBytes("arch", req.Model)
		entry, _, err := s.models.do(spec.ModelHash, func() (*modelEntry, error) {
			sys, reqs, err := arch.ParseSystem([]byte(req.Model))
			if err != nil {
				return nil, err
			}
			return &modelEntry{sys: sys, reqs: reqs}, nil
		})
		if err != nil {
			return spec, nil, badRequest("parsing arch model: %v", err)
		}
		names := req.Requirements
		if len(names) == 0 {
			for _, r := range entry.reqs {
				names = append(names, r.Name)
			}
		}
		if len(names) == 0 {
			return spec, nil, badRequest("arch model has no requirements")
		}
		byName := map[string]*arch.Requirement{}
		for _, r := range entry.reqs {
			byName[r.Name] = r
		}
		for _, n := range names {
			if byName[n] == nil {
				return spec, nil, badRequest("unknown requirement %q", n)
			}
		}
		for n := range req.Options.HorizonMSByReq {
			if byName[n] == nil {
				return spec, nil, badRequest("horizon_ms_by_req names unknown requirement %q", n)
			}
		}
		spec.Requirements = names
		spec.HorizonMSByReq = req.Options.HorizonMSByReq
		return spec, entry, nil
	case "ta":
		if len(req.Queries) == 0 {
			return spec, nil, badRequest("ta submissions need at least one query")
		}
		// Canonicalize each query to the fields its kind consumes — a stray
		// pred on a deadlock query (or clock on a reach) must not mint a
		// distinct job for the same question.
		spec.Queries = make([]wire.TAQuery, len(req.Queries))
		for i, q := range req.Queries {
			switch q.Kind {
			case "deadlock":
				q.Pred, q.Clock = "", ""
			case "reach", "safety":
				q.Clock = ""
			}
			spec.Queries[i] = q
		}
		spec.MaxConst = req.Options.MaxConst
		// The parse depends on the sup horizons, so the model-cache key
		// carries the query-relevant context: sup clocks + max_const. With
		// no sup query the horizon is inert — canonicalize it away too.
		supKey := ""
		for _, q := range spec.Queries {
			if q.Kind == "sup" {
				supKey += q.Clock + "\x00"
			}
		}
		if supKey == "" {
			spec.MaxConst = 0
		}
		spec.ModelHash = hashBytes("ta", req.Model, supKey, fmt.Sprint(spec.MaxConst))
		entry, _, err := s.models.do(spec.ModelHash, func() (*modelEntry, error) {
			net, err := wire.ParseTAModel(req.Model, spec.Queries, spec.MaxConst)
			if err != nil {
				return nil, err
			}
			return &modelEntry{net: net}, nil
		})
		if err != nil {
			return spec, nil, badRequest("parsing ta model: %v", err)
		}
		// Validate the query specs now so submit fails fast; the job builds
		// its own fresh TARun (queries are single-use).
		if _, err := wire.NewTARun(entry.net, spec.Queries); err != nil {
			return spec, nil, badRequest("building queries: %v", err)
		}
		return spec, entry, nil
	default:
		return spec, nil, badRequest("unknown kind %q (want arch or ta)", req.Kind)
	}
}

// coreOptions maps the normalized spec plus the job's runtime signals onto
// the engine options.
func coreOptions(spec jobSpec, j *job) core.Options {
	opts := core.Options{
		Seed:        spec.Seed,
		MaxStates:   spec.MaxStates,
		StateBudget: spec.StateBudget,
		MaxBytes:    spec.MaxBytes,
		Workers:     spec.Workers,
		Cancel:      j.cancelCh,
		Deadline:    j.deadline,
		Monitor:     j.mon,
	}
	switch spec.Order {
	case "df":
		opts.Order = core.DFS
	case "rdf":
		opts.Order = core.RDFS
	}
	return opts
}

// runFunc builds the job closure: compile (through the cache) and run the
// single exploration answering the whole submission.
func (s *Server) runFunc(spec jobSpec, model *modelEntry) runFunc {
	if spec.Kind == "arch" {
		return func(j *job) ([]byte, map[string]string, error) {
			return s.runArch(spec, model, j)
		}
	}
	return func(j *job) ([]byte, map[string]string, error) {
		return s.runTA(spec, model, j)
	}
}

func (s *Server) runArch(spec jobSpec, model *modelEntry, j *job) ([]byte, map[string]string, error) {
	byName := map[string]*arch.Requirement{}
	for _, r := range model.reqs {
		byName[r.Name] = r
	}
	reqs := make([]*arch.Requirement, len(spec.Requirements))
	for i, n := range spec.Requirements {
		reqs[i] = byName[n]
	}
	copts := arch.Options{HorizonMS: spec.HorizonMS, QueueCap: spec.QueueCap}
	if len(spec.HorizonMSByReq) > 0 {
		byReq := spec.HorizonMSByReq
		copts.HorizonMSFor = func(r *arch.Requirement) int64 { return byReq[r.Name] }
	}

	// Compile cache: (model, requirement set, compile options). Every key
	// ingredient is its own NUL-separated hash part (and the horizon map is
	// JSON-encoded, which sorts its keys), so requirement names containing
	// separator-looking characters cannot collide two different sets onto
	// one compiled network. The set is immutable and shared; every job
	// explores it with fresh state.
	horizonsJSON, err := json.Marshal(spec.HorizonMSByReq)
	if err != nil {
		return nil, nil, err
	}
	parts := append([]string{"compile", spec.ModelHash,
		fmt.Sprint(spec.HorizonMS), fmt.Sprint(spec.QueueCap), string(horizonsJSON)},
		spec.Requirements...)
	ckey := hashBytes(parts...)
	cs, _, err := s.compiled.do(ckey, func() (*arch.CompiledSet, error) {
		return arch.CompileAll(model.sys, reqs, copts)
	})
	if err != nil {
		return nil, nil, err
	}

	s.explorations.Add(1)
	all, err := cs.Analyze(coreOptions(spec, j))
	if err != nil {
		s.noteAbort(err)
		return nil, nil, err
	}
	resp := wire.FromAllResult(all)
	data, err := encodeWire(resp)
	if err != nil {
		return nil, nil, err
	}

	var traces map[string]string
	if spec.Witness {
		// Witness traces reuse the batch verdicts (no re-measurement): one
		// reachability sweep per requirement, counted like any other
		// exploration. The sweeps honor the job's cancel/deadline but not
		// its Monitor — final status progress keeps mirroring the main
		// sweep's stats, not the last witness run's.
		wopts := coreOptions(spec, j)
		wopts.Monitor = nil
		traces = make(map[string]string, len(reqs))
		for i, r := range reqs {
			s.explorations.Add(1)
			trace, werr := arch.WitnessForResult(model.sys, r, all.Results[i], copts, wopts)
			switch {
			case werr == nil:
				traces[r.Name] = trace
			case errors.Is(werr, core.ErrCanceled) || errors.Is(werr, core.ErrDeadlineExceeded):
				// The job itself was aborted: fail it as usual.
				s.noteAbort(werr)
				return nil, nil, werr
			default:
				// The verdicts are computed and valid; an unmaterializable
				// optional trace (e.g. a truncated witness search) must not
				// discard them. Surface the reason in the trace slot.
				traces[r.Name] = "witness unavailable: " + werr.Error()
			}
		}
	}
	return data, traces, nil
}

func (s *Server) runTA(spec jobSpec, model *modelEntry, j *job) ([]byte, map[string]string, error) {
	run, err := wire.NewTARun(model.net, spec.Queries)
	if err != nil {
		return nil, nil, err
	}
	checker, err := core.NewChecker(model.net)
	if err != nil {
		return nil, nil, err
	}
	s.explorations.Add(1)
	stats, err := checker.RunQueries(coreOptions(spec, j), run.Queries()...)
	if err != nil {
		s.noteAbort(err)
		return nil, nil, err
	}
	resp := run.Response(stats)
	data, err := encodeWire(resp)
	if err != nil {
		return nil, nil, err
	}
	traces := make(map[string]string)
	for i, q := range resp.Queries {
		if q.Trace != "" {
			traces[fmt.Sprintf("q%d:%s", i, q.Kind)] = q.Trace
		}
	}
	return data, traces, nil
}

func (s *Server) noteAbort(err error) {
	switch {
	case errors.Is(err, core.ErrCanceled):
		s.canceled.Add(1)
	case errors.Is(err, core.ErrDeadlineExceeded):
		s.expired.Add(1)
	}
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *job {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, &httpError{status: http.StatusNotFound, msg: "unknown job"})
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, errMsg, started, finished := j.snapshot()
	p := j.mon.Snapshot()
	resp := StatusResponse{
		JobID:       j.id,
		Kind:        j.kind,
		State:       state,
		Error:       errMsg,
		SubmittedAt: j.submitted,
		Progress: ProgressBody{
			Stored:       p.Stored,
			Popped:       p.Popped,
			Transitions:  p.Transitions,
			Deadlocks:    p.Deadlocks,
			Frontier:     p.Frontier,
			Workers:      p.Workers,
			Running:      p.Running,
			StoredBytes:  p.StoredBytes,
			InternHits:   p.InternHits,
			InternMisses: p.InternMisses,
		},
	}
	if !started.IsZero() {
		resp.StartedAt = &started
	}
	if !finished.IsZero() {
		resp.FinishedAt = &finished
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, errMsg, _, _ := j.snapshot()
	if state != StateDone {
		status := http.StatusConflict
		body := map[string]string{"state": state}
		if errMsg != "" {
			body["error"] = errMsg
		}
		writeJSON(w, status, body)
		return
	}
	j.mu.Lock()
	data := j.result
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	state, _, _, _ := j.snapshot()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, map[string]string{"state": state})
		return
	}
	j.mu.Lock()
	traces := j.traces
	j.mu.Unlock()
	if len(traces) == 0 {
		writeError(w, &httpError{status: http.StatusNotFound,
			msg: "no traces captured (arch jobs record them when submitted with options.witness)"})
		return
	}
	if req := r.URL.Query().Get("req"); req != "" {
		t, ok := traces[req]
		if !ok {
			writeError(w, &httpError{status: http.StatusNotFound, msg: "no trace for " + req})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{req: t})
		return
	}
	writeJSON(w, http.StatusOK, traces)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	j.cancel()
	state, errMsg, _, _ := j.snapshot()
	writeJSON(w, http.StatusOK, map[string]string{"job_id": j.id, "state": state, "error": errMsg})
}

// handleHealthz reports graded health, not a flat 200: the body carries the
// admission pressure (queue depth, CPU-token and memory-budget saturation)
// and the result-cache hit rate, and when admission is saturated — new
// submissions would be shed — the endpoint flips to ok:false / 503 so load
// balancers steer traffic away while the node keeps draining its backlog and
// serving cached results.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	active, retained := s.jobs.counts()
	c := s.Stats()
	inUse := s.tokens.inUse()
	degraded := active >= s.cfg.MaxActiveJobs
	hitRate := 0.0
	if c.Submissions > 0 {
		hitRate = float64(c.ResultHits) / float64(c.Submissions)
	}
	storedBytes, ihits, imisses := s.jobs.storedFootprint()
	internRate := 0.0
	if ihits+imisses > 0 {
		internRate = float64(ihits) / float64(ihits+imisses)
	}
	body := map[string]any{
		"ok":                    !degraded,
		"degraded":              degraded,
		"uptime_s":              int64(time.Since(s.start).Seconds()),
		"active_jobs":           active,
		"max_active_jobs":       s.cfg.MaxActiveJobs,
		"retained_jobs":         retained,
		"queue_depth":           s.tokens.waiting(),
		"cpu_tokens":            s.cfg.CPUTokens,
		"tokens_in_use":         inUse,
		"cpu_saturation":        float64(inUse) / float64(s.cfg.CPUTokens),
		"memory_budget_bytes":   s.cfg.MemoryBudget,
		"memory_in_use_bytes":   s.tokens.bytesInUse(),
		"stored_zone_bytes":     storedBytes,
		"intern_hit_rate":       internRate,
		"shed_total":            c.Shed,
		"result_cache_hit_rate": hitRate,
	}
	if s.cfg.MemoryBudget > 0 {
		// Saturation takes the worse of the two memory views: granted
		// admission bytes (what jobs reserved) and the live stores' actual
		// packed footprint (what is resident right now). Granted normally
		// dominates — compact zones keep actual use under the grant — so a
		// stored-bytes overtake means the budget accounting is drifting and
		// the node should shed before the kernel notices.
		used := s.tokens.bytesInUse()
		if storedBytes > used {
			used = storedBytes
		}
		body["memory_saturation"] = float64(used) / float64(s.cfg.MemoryBudget)
	}
	status := http.StatusOK
	if degraded {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c := s.Stats()
	active, retained := s.jobs.counts()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "taserved_submissions_total %d\n", c.Submissions)
	fmt.Fprintf(w, "taserved_jobs_deduped_total %d\n", c.DedupedLive)
	fmt.Fprintf(w, "taserved_result_cache_hits_total %d\n", c.ResultHits)
	fmt.Fprintf(w, "taserved_explorations_total %d\n", c.Explorations)
	fmt.Fprintf(w, "taserved_jobs_canceled_total %d\n", c.Canceled)
	fmt.Fprintf(w, "taserved_jobs_deadline_exceeded_total %d\n", c.Expired)
	fmt.Fprintf(w, "taserved_model_cache_hits_total %d\n", c.ModelHits)
	fmt.Fprintf(w, "taserved_model_cache_misses_total %d\n", c.ModelMisses)
	fmt.Fprintf(w, "taserved_model_cache_entries %d\n", s.models.len())
	fmt.Fprintf(w, "taserved_compile_cache_hits_total %d\n", c.CompileHits)
	fmt.Fprintf(w, "taserved_compile_cache_misses_total %d\n", c.CompileMisses)
	fmt.Fprintf(w, "taserved_compile_cache_entries %d\n", s.compiled.len())
	fmt.Fprintf(w, "taserved_jobs_active %d\n", active)
	fmt.Fprintf(w, "taserved_jobs_retained %d\n", retained)
	fmt.Fprintf(w, "taserved_cpu_tokens_total %d\n", s.cfg.CPUTokens)
	fmt.Fprintf(w, "taserved_cpu_tokens_in_use %d\n", s.tokens.inUse())
	fmt.Fprintf(w, "taserved_admission_queue_depth %d\n", s.tokens.waiting())
	fmt.Fprintf(w, "taserved_memory_budget_bytes %d\n", s.cfg.MemoryBudget)
	fmt.Fprintf(w, "taserved_memory_in_use_bytes %d\n", s.tokens.bytesInUse())
	storedBytes, ihits, imisses := s.jobs.storedFootprint()
	fmt.Fprintf(w, "taserved_stored_zone_bytes %d\n", storedBytes)
	fmt.Fprintf(w, "taserved_intern_hits_total %d\n", ihits)
	fmt.Fprintf(w, "taserved_intern_misses_total %d\n", imisses)
	fmt.Fprintf(w, "taserved_shed_total %d\n", c.Shed)
}
