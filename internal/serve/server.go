// Package serve exposes the whole analysis stack — ta parse/validate,
// arch compilation, the core multi-query engine — as a concurrent job
// service (command taserved). The package splits into three layers:
//
//   - A transport-agnostic job Manager: submissions are normalized and
//     content-hashed (the hash is the job id AND the result-cache key),
//     admitted under a global CPU-token/memory-grant pool, executed through
//     layered singleflight caches (parsed model / compiled network / result),
//     and answered with wire bytes identical to the CLIs' -json output. The
//     Manager knows nothing about HTTP: its API speaks internal/serve/api
//     request/response values.
//   - Two pluggable backend seams (backend.go): Dispatch routes a submission
//     to the node owning its content hash and relays completion events;
//     ResultCache replicates finished results so any frontend answers any
//     cached submission. The default local backends make a Manager exactly
//     the historical single-node server; internal/serve/pubsub implements
//     both over a publish/subscribe broker for fleet deployments, with
//     cluster-wide singleflight (the owner computes once, twins on every
//     frontend wait for the completion event).
//   - A thin HTTP facade (http.go): Server embeds the Manager and mounts the
//     JSON endpoints under /v1/ (with the historical unversioned operational
//     paths kept as aliases).
//
// Verdicts are computed by exactly the code paths the CLIs use
// (arch.CompileAll + CompiledSet.Analyze, wire.TARun) and encoded by the
// shared internal/wire package; completion events relay those bytes
// verbatim, so a result is bit-identical whether it was computed locally,
// computed on a peer, or served from a replicated cache.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/ta"
	"repro/internal/wire"
)

// The transport contract lives in internal/serve/api so the typed client and
// the dispatch backends can share it without import cycles; the aliases keep
// every existing reference through this package valid.
type (
	SubmitRequest  = api.SubmitRequest
	SubmitOptions  = api.SubmitOptions
	SubmitResponse = api.SubmitResponse
	StatusResponse = api.StatusResponse
	ProgressBody   = api.ProgressBody
)

// Config tunes one Manager. Zero values select the documented defaults.
type Config struct {
	// CPUTokens is the global admission budget: the maximum number of
	// exploration workers running at once across all jobs. Default: NumCPU.
	CPUTokens int
	// MaxActiveJobs bounds jobs queued or running; submissions beyond it are
	// rejected with 429. Default 64.
	MaxActiveJobs int
	// MaxFinishedJobs bounds terminal jobs retained as the result cache
	// (LRU). Default 256.
	MaxFinishedJobs int
	// MaxModels / MaxCompiled bound the parsed-model and compiled-network
	// caches (LRU). Defaults 128 / 128.
	MaxModels   int
	MaxCompiled int
	// DefaultDeadline bounds each job's wall clock when the submission does
	// not set deadline_ms. Zero = unbounded.
	DefaultDeadline time.Duration
	// MemoryBudget is the global zone-memory budget in bytes. When set, every
	// job holds a memory grant alongside its CPU tokens while running: its
	// requested max_bytes (clamped to the budget), or a fair share of
	// MemoryBudget/CPUTokens per worker when the submission does not ask.
	// The grant is also the job's core memory budget, so one runaway
	// submission fails alone with MemoryBudgetExceeded instead of OOM-killing
	// the node. Zero = memory unmetered.
	MemoryBudget int64
	// Dispatch selects the routing backend; nil = single-node (this node
	// owns every submission, behavior identical to the pre-cluster server).
	Dispatch Dispatch
	// Results selects the replicated result cache; nil = none (the job table
	// alone caches results, the single-node behavior).
	Results ResultCache
}

func (c Config) withDefaults() Config {
	if c.CPUTokens <= 0 {
		c.CPUTokens = runtime.NumCPU()
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 64
	}
	if c.MaxFinishedJobs <= 0 {
		c.MaxFinishedJobs = 256
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 128
	}
	if c.MaxCompiled <= 0 {
		c.MaxCompiled = 128
	}
	if c.Dispatch == nil {
		c.Dispatch = localDispatch{}
	}
	if c.Results == nil {
		c.Results = noCache{}
	}
	return c
}

// modelEntry is one parsed model; exactly one of the arch pair and net is
// set. Immutable after parse — shared by every job that hashes to it.
type modelEntry struct {
	sys  *arch.System
	reqs []*arch.Requirement
	net  *ta.Network
}

// Manager is the transport-agnostic job service: it owns admission, the job
// table, the caches, and the backend seams. Create with NewManager (or New
// for the HTTP facade), stop with Shutdown.
type Manager struct {
	cfg      Config
	start    time.Time
	tokens   *cpuTokens
	jobs     *jobManager
	models   *flightCache[*modelEntry]
	compiled *flightCache[*arch.CompiledSet]
	dispatch Dispatch
	results  ResultCache

	// reg is the metrics registry behind /v1/metrics; hists are the job
	// lifecycle-span histograms it owns (see metrics.go).
	reg   *obs.Registry
	hists jobSpanHists

	submissions  atomic.Int64
	dedupLive    atomic.Int64 // submissions that joined a queued/running job
	resultHits   atomic.Int64 // submissions answered by a finished job
	explorations atomic.Int64 // sweeps actually run on THIS node
	canceled     atomic.Int64
	expired      atomic.Int64
	shed         atomic.Int64 // submissions rejected 429 at admission
	dispatched   atomic.Int64 // submissions routed to a peer (proxy jobs)
	remoteHits   atomic.Int64 // submissions answered with peer-computed bytes
	fallbacks    atomic.Int64 // dispatches degraded to local compute
	// dispatchDown latches a backend that failed to register its envelope
	// handler at startup: routing is bypassed entirely (everything computes
	// locally) because this node could never serve jobs it owns.
	dispatchDown atomic.Bool
}

// Server is the HTTP facade over a Manager. Create with New, mount Handler,
// stop with Shutdown.
type Server struct {
	*Manager
}

// New returns a ready server (a Manager wearing its HTTP facade).
func New(cfg Config) *Server {
	return &Server{Manager: NewManager(cfg)}
}

// NewManager returns a ready transport-agnostic job manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	tokens := newCPUTokens(cfg.CPUTokens, cfg.MemoryBudget)
	m := &Manager{
		cfg:      cfg,
		start:    time.Now(),
		tokens:   tokens,
		jobs:     newJobManager(tokens, cfg.MaxActiveJobs, cfg.MaxFinishedJobs),
		models:   newFlightCache[*modelEntry](cfg.MaxModels),
		compiled: newFlightCache[*arch.CompiledSet](cfg.MaxCompiled),
		dispatch: cfg.Dispatch,
		results:  cfg.Results,
	}
	m.jobs.onFinish = m.announceJob
	m.buildRegistry()
	m.jobs.onSpan = m.hists.observe
	if err := m.dispatch.Receive(m.handleEnvelope); err != nil {
		// A node that cannot receive envelopes must not advertise ownership:
		// degrade to computing everything locally rather than black-holing
		// the keys the ring maps to us.
		m.dispatchDown.Store(true)
	}
	return m
}

// Shutdown stops intake, cancels every live job through the same cooperative
// mechanism the cancel endpoint uses, waits (bounded) for job goroutines to
// drain, and releases the dispatch backend's subscriptions. The HTTP
// listener is the caller's to close (http.Server.Shutdown first, then this).
func (m *Manager) Shutdown(timeout time.Duration) error {
	m.jobs.close()
	err := m.jobs.wait(timeout)
	if cerr := m.dispatch.Close(); err == nil {
		err = cerr
	}
	return err
}

// Counters is a point-in-time view of the manager's work, exposed for tests
// and /metrics. Explorations counts sweeps run on this node only — summing
// it across a cluster measures cluster-wide singleflight.
type Counters struct {
	Submissions       int64
	DedupedLive       int64
	ResultHits        int64
	Explorations      int64
	Canceled          int64
	Expired           int64
	Shed              int64
	Dispatched        int64
	RemoteHits        int64
	DispatchFallbacks int64
	ModelHits         int64
	ModelMisses       int64
	CompileHits       int64
	CompileMisses     int64
}

// Stats samples the manager counters.
func (m *Manager) Stats() Counters {
	mh, mm := m.models.stats()
	ch, cm := m.compiled.stats()
	return Counters{
		Submissions:       m.submissions.Load(),
		DedupedLive:       m.dedupLive.Load(),
		ResultHits:        m.resultHits.Load(),
		Explorations:      m.explorations.Load(),
		Canceled:          m.canceled.Load(),
		Expired:           m.expired.Load(),
		Shed:              m.shed.Load(),
		Dispatched:        m.dispatched.Load(),
		RemoteHits:        m.remoteHits.Load(),
		DispatchFallbacks: m.fallbacks.Load(),
		ModelHits:         mh,
		ModelMisses:       mm,
		CompileHits:       ch,
		CompileMisses:     cm,
	}
}

// jobSpec is the normalized submission — the hashed content. Field order and
// deterministic map encoding (Go sorts map keys) make the canonical JSON
// stable.
type jobSpec struct {
	Kind           string           `json:"kind"`
	ModelHash      string           `json:"model_hash"`
	Requirements   []string         `json:"requirements,omitempty"`
	Queries        []wire.TAQuery   `json:"queries,omitempty"`
	HorizonMS      int64            `json:"horizon_ms"`
	HorizonMSByReq map[string]int64 `json:"horizon_ms_by_req,omitempty"`
	QueueCap       int64            `json:"queue_cap"`
	Workers        int              `json:"workers"`
	MaxStates      int              `json:"max_states"`
	StateBudget    int              `json:"state_budget"`
	MaxBytes       int64            `json:"max_bytes"`
	Order          string           `json:"order"`
	Seed           int64            `json:"seed"`
	MaxConst       int64            `json:"max_const,omitempty"`
	DeadlineMS     int64            `json:"deadline_ms"`
	Witness        bool             `json:"witness,omitempty"`
}

// encodeWire renders a wire value exactly as the CLIs' -json encoders do
// (two-space indent, trailing newline, json.Encoder escaping), keeping the
// byte-identity contract literal: diffing `archcheck -json`/`tacheck -json`
// output against a served result body succeeds.
func encodeWire(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func hashBytes(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Submit is the transport-agnostic intake: normalize, content-hash, then
// answer from (in order) the node-local job table, the replicated result
// cache, or a fresh job — run locally when this node owns the content hash,
// or dispatched to the owner with a local proxy job standing in for status,
// cancel, and result serving. Errors are *httpError values carrying the
// wire code and suggested HTTP status.
func (m *Manager) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	m.submissions.Add(1)
	parseStart := time.Now()
	spec, model, herr := m.normalize(req)
	parseEnd := time.Now()
	if herr != nil {
		return nil, herr
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	id := hashBytes(string(canon))

	deadline := time.Time{}
	if spec.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	} else if m.cfg.DefaultDeadline > 0 {
		deadline = time.Now().Add(m.cfg.DefaultDeadline)
	}

	// Replicated cache first — but only past the job table's own say: adopt
	// joins a live or done twin when one exists, so a node never forks a
	// second answer for work it already holds.
	if ev, ok := m.results.Get(id); ok {
		if j, adopted := m.jobs.adopt(id, ev); j != nil {
			state, _, _, _ := j.snapshot()
			if adopted {
				m.resultHits.Add(1)
				m.remoteHits.Add(1)
			} else if state == api.StateDone {
				m.resultHits.Add(1)
			} else {
				m.dedupLive.Add(1)
			}
			return &SubmitResponse{JobID: j.id, State: state, Created: false}, nil
		}
		return nil, &httpError{status: http.StatusServiceUnavailable,
			code: wire.CodeShuttingDown, msg: errShuttingDown.Error()}
	}

	// Route: the ring's owner computes; everyone else proxies. A backend that
	// never came up routes everything locally.
	owner := m.dispatch.Owner(id)
	run := m.runFunc(spec, model)
	proxy := false
	if owner != m.dispatch.Self() && !m.dispatchDown.Load() {
		proxy = true
		run = m.proxyRun(spec, model, req, owner)
	}
	workers := spec.Workers
	memBytes := spec.MaxBytes
	if proxy {
		// A proxy holds no grant: the compute (and its admission) happens on
		// the owner node.
		workers, memBytes = 0, 0
	}
	j, created, err := m.jobs.submit(id, spec.Kind, workers, memBytes, deadline, run)
	switch err {
	case nil:
	case errBusy:
		// Overload shedding: reject with retry guidance scaled to the queue
		// depth, so clients back off harder the deeper the backlog. Cached
		// results keep being served throughout — only NEW work is shed (the
		// job-table lookup above this rejection hits finished twins first).
		m.shed.Add(1)
		return nil, &httpError{
			status:     http.StatusTooManyRequests,
			code:       wire.CodeOverloaded,
			msg:        err.Error(),
			retryAfter: m.retryAfter(),
		}
	case errShuttingDown:
		return nil, &httpError{status: http.StatusServiceUnavailable,
			code: wire.CodeShuttingDown, msg: err.Error()}
	default:
		return nil, err
	}
	state, _, _, _ := j.snapshot()
	if created {
		// The parse ran during normalization, before the job existed; graft
		// it onto the fresh job's profile. (Model-cache hits record the — now
		// trivial — resolution interval, still the job's real parse cost.)
		j.mon.RecordPhase("parse", parseStart, parseEnd)
		if proxy {
			m.dispatched.Add(1)
		}
	} else {
		if state == api.StateDone {
			m.resultHits.Add(1)
		} else {
			m.dedupLive.Add(1)
		}
	}
	return &SubmitResponse{JobID: j.id, State: state, Created: created}, nil
}

// retryAfter derives shed-retry guidance from the current queue pressure:
// one second of backoff per CPUTokens' worth of active jobs, clamped to
// [1s, 60s]. Deeper backlog → longer suggested wait.
func (m *Manager) retryAfter() time.Duration {
	active, _ := m.jobs.counts()
	d := time.Duration(1+active/m.cfg.CPUTokens) * time.Second
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// normalize validates the submission, resolves the model through the parsed
// cache, applies defaults, and returns the canonical spec. The parsed entry
// is returned alongside so the job closure does not re-hash.
func (m *Manager) normalize(req *SubmitRequest) (jobSpec, *modelEntry, *httpError) {
	var spec jobSpec
	if req.Model == "" {
		return spec, nil, badRequest("model is required")
	}
	switch req.Options.Order {
	case "":
		req.Options.Order = "bfs"
	case "bfs", "df", "rdf":
	default:
		return spec, nil, badRequest("unknown order %q (want bfs, df, or rdf)", req.Options.Order)
	}
	workers := req.Options.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > m.cfg.CPUTokens {
		workers = m.cfg.CPUTokens
	}
	if req.Options.HorizonMS == 0 {
		req.Options.HorizonMS = 2000
	}
	if req.Options.QueueCap == 0 {
		req.Options.QueueCap = 8
	}
	// Resolve the job's memory grant against the global budget: a declared
	// max_bytes is clamped to the budget; an undeclared one defaults to a
	// fair share of the budget proportional to the job's CPU grant. Without
	// a server budget the declared value passes through as a pure per-job
	// core budget (no admission hold).
	maxBytes := req.Options.MaxBytes
	if maxBytes < 0 {
		maxBytes = 0
	}
	if m.cfg.MemoryBudget > 0 {
		if maxBytes == 0 {
			maxBytes = m.cfg.MemoryBudget / int64(m.cfg.CPUTokens) * int64(workers)
		}
		if maxBytes > m.cfg.MemoryBudget {
			maxBytes = m.cfg.MemoryBudget
		}
		if maxBytes < 1 {
			maxBytes = 1
		}
	}
	stateBudget := req.Options.StateBudget
	if stateBudget < 0 {
		stateBudget = 0
	}
	spec = jobSpec{
		Kind:        req.Kind,
		HorizonMS:   req.Options.HorizonMS,
		QueueCap:    req.Options.QueueCap,
		Workers:     workers,
		MaxStates:   req.Options.MaxStates,
		StateBudget: stateBudget,
		MaxBytes:    maxBytes,
		Order:       req.Options.Order,
		Seed:        req.Options.Seed,
		DeadlineMS:  req.Options.DeadlineMS,
		Witness:     req.Options.Witness && req.Kind == "arch",
	}
	// Canonicalize away fields that cannot affect this submission's answer,
	// so semantically identical requests hash to one job: the seed only
	// feeds rdf shuffling, witness traces exist for arch jobs only, and the
	// compilation options (horizon, queue cap) are meaningless for ta
	// models.
	if spec.Order != "rdf" {
		spec.Seed = 0
	}
	if req.Kind == "ta" {
		spec.HorizonMS = 0
		spec.QueueCap = 0
	}

	switch req.Kind {
	case "arch":
		spec.ModelHash = hashBytes("arch", req.Model)
		entry, _, err := m.models.do(spec.ModelHash, func() (*modelEntry, error) {
			sys, reqs, err := arch.ParseSystem([]byte(req.Model))
			if err != nil {
				return nil, err
			}
			return &modelEntry{sys: sys, reqs: reqs}, nil
		})
		if err != nil {
			return spec, nil, badRequest("parsing arch model: %v", err)
		}
		names := req.Requirements
		if len(names) == 0 {
			for _, r := range entry.reqs {
				names = append(names, r.Name)
			}
		}
		if len(names) == 0 {
			return spec, nil, badRequest("arch model has no requirements")
		}
		byName := map[string]*arch.Requirement{}
		for _, r := range entry.reqs {
			byName[r.Name] = r
		}
		for _, n := range names {
			if byName[n] == nil {
				return spec, nil, badRequest("unknown requirement %q", n)
			}
		}
		for n := range req.Options.HorizonMSByReq {
			if byName[n] == nil {
				return spec, nil, badRequest("horizon_ms_by_req names unknown requirement %q", n)
			}
		}
		spec.Requirements = names
		spec.HorizonMSByReq = req.Options.HorizonMSByReq
		return spec, entry, nil
	case "ta":
		if len(req.Queries) == 0 {
			return spec, nil, badRequest("ta submissions need at least one query")
		}
		// Canonicalize each query to the fields its kind consumes — a stray
		// pred on a deadlock query (or clock on a reach) must not mint a
		// distinct job for the same question.
		spec.Queries = make([]wire.TAQuery, len(req.Queries))
		for i, q := range req.Queries {
			switch q.Kind {
			case "deadlock":
				q.Pred, q.Clock = "", ""
			case "reach", "safety":
				q.Clock = ""
			}
			spec.Queries[i] = q
		}
		spec.MaxConst = req.Options.MaxConst
		// The parse depends on the sup horizons, so the model-cache key
		// carries the query-relevant context: sup clocks + max_const. With
		// no sup query the horizon is inert — canonicalize it away too.
		supKey := ""
		for _, q := range spec.Queries {
			if q.Kind == "sup" {
				supKey += q.Clock + "\x00"
			}
		}
		if supKey == "" {
			spec.MaxConst = 0
		}
		spec.ModelHash = hashBytes("ta", req.Model, supKey, fmt.Sprint(spec.MaxConst))
		entry, _, err := m.models.do(spec.ModelHash, func() (*modelEntry, error) {
			net, err := wire.ParseTAModel(req.Model, spec.Queries, spec.MaxConst)
			if err != nil {
				return nil, err
			}
			return &modelEntry{net: net}, nil
		})
		if err != nil {
			return spec, nil, badRequest("parsing ta model: %v", err)
		}
		// Validate the query specs now so submit fails fast; the job builds
		// its own fresh TARun (queries are single-use).
		if _, err := wire.NewTARun(entry.net, spec.Queries); err != nil {
			return spec, nil, badRequest("building queries: %v", err)
		}
		return spec, entry, nil
	default:
		return spec, nil, badRequest("unknown kind %q (want arch or ta)", req.Kind)
	}
}

// coreOptions maps the normalized spec plus the job's runtime signals onto
// the engine options.
func coreOptions(spec jobSpec, j *job) core.Options {
	opts := core.Options{
		Seed:        spec.Seed,
		MaxStates:   spec.MaxStates,
		StateBudget: spec.StateBudget,
		MaxBytes:    spec.MaxBytes,
		Workers:     spec.Workers,
		Cancel:      j.cancelCh,
		Deadline:    j.deadline,
		Monitor:     j.mon,
	}
	switch spec.Order {
	case "df":
		opts.Order = core.DFS
	case "rdf":
		opts.Order = core.RDFS
	}
	return opts
}

// runFunc builds the job closure: compile (through the cache) and run the
// single exploration answering the whole submission. The closure runs under
// pprof labels (job_id, kind, owner), so CPU and goroutine profiles of a busy
// node attribute samples to the jobs that burned them.
func (m *Manager) runFunc(spec jobSpec, model *modelEntry) runFunc {
	var inner runFunc
	if spec.Kind == "arch" {
		inner = func(j *job) ([]byte, map[string]string, error) {
			return m.runArch(spec, model, j)
		}
	} else {
		inner = func(j *job) ([]byte, map[string]string, error) {
			return m.runTA(spec, model, j)
		}
	}
	return func(j *job) (result []byte, traces map[string]string, err error) {
		labels := pprof.Labels("job_id", j.id, "kind", j.kind, "owner", m.dispatch.Self())
		pprof.Do(context.Background(), labels, func(context.Context) {
			result, traces, err = inner(j)
		})
		return result, traces, err
	}
}

func (m *Manager) runArch(spec jobSpec, model *modelEntry, j *job) ([]byte, map[string]string, error) {
	byName := map[string]*arch.Requirement{}
	for _, r := range model.reqs {
		byName[r.Name] = r
	}
	reqs := make([]*arch.Requirement, len(spec.Requirements))
	for i, n := range spec.Requirements {
		reqs[i] = byName[n]
	}
	copts := arch.Options{HorizonMS: spec.HorizonMS, QueueCap: spec.QueueCap}
	if len(spec.HorizonMSByReq) > 0 {
		byReq := spec.HorizonMSByReq
		copts.HorizonMSFor = func(r *arch.Requirement) int64 { return byReq[r.Name] }
	}

	// Compile cache: (model, requirement set, compile options). Every key
	// ingredient is its own NUL-separated hash part (and the horizon map is
	// JSON-encoded, which sorts its keys), so requirement names containing
	// separator-looking characters cannot collide two different sets onto
	// one compiled network. The set is immutable and shared; every job
	// explores it with fresh state.
	horizonsJSON, err := json.Marshal(spec.HorizonMSByReq)
	if err != nil {
		return nil, nil, err
	}
	parts := append([]string{"compile", spec.ModelHash,
		fmt.Sprint(spec.HorizonMS), fmt.Sprint(spec.QueueCap), string(horizonsJSON)},
		spec.Requirements...)
	ckey := hashBytes(parts...)
	endCompile := j.mon.BeginPhase("compile")
	cs, _, err := m.compiled.do(ckey, func() (*arch.CompiledSet, error) {
		return arch.CompileAll(model.sys, reqs, copts)
	})
	endCompile()
	if err != nil {
		return nil, nil, err
	}

	m.explorations.Add(1)
	all, err := cs.Analyze(coreOptions(spec, j))
	if err != nil {
		m.noteAbort(err)
		return nil, nil, err
	}
	resp := wire.FromAllResult(all)
	data, err := encodeWire(resp)
	if err != nil {
		return nil, nil, err
	}

	var traces map[string]string
	if spec.Witness {
		// Witness traces reuse the batch verdicts (no re-measurement): one
		// reachability sweep per requirement, counted like any other
		// exploration. The sweeps honor the job's cancel/deadline but not
		// its Monitor — final status progress keeps mirroring the main
		// sweep's stats, not the last witness run's.
		wopts := coreOptions(spec, j)
		wopts.Monitor = nil
		traces = make(map[string]string, len(reqs))
		for i, r := range reqs {
			m.explorations.Add(1)
			trace, werr := arch.WitnessForResult(model.sys, r, all.Results[i], copts, wopts)
			switch {
			case werr == nil:
				traces[r.Name] = trace
			case errors.Is(werr, core.ErrCanceled) || errors.Is(werr, core.ErrDeadlineExceeded):
				// The job itself was aborted: fail it as usual.
				m.noteAbort(werr)
				return nil, nil, werr
			default:
				// The verdicts are computed and valid; an unmaterializable
				// optional trace (e.g. a truncated witness search) must not
				// discard them. Surface the reason in the trace slot.
				traces[r.Name] = "witness unavailable: " + werr.Error()
			}
		}
	}
	return data, traces, nil
}

func (m *Manager) runTA(spec jobSpec, model *modelEntry, j *job) ([]byte, map[string]string, error) {
	endCompile := j.mon.BeginPhase("compile")
	run, err := wire.NewTARun(model.net, spec.Queries)
	if err != nil {
		endCompile()
		return nil, nil, err
	}
	checker, err := core.NewChecker(model.net)
	endCompile()
	if err != nil {
		return nil, nil, err
	}
	m.explorations.Add(1)
	stats, err := checker.RunQueries(coreOptions(spec, j), run.Queries()...)
	if err != nil {
		m.noteAbort(err)
		return nil, nil, err
	}
	resp := run.Response(stats)
	data, err := encodeWire(resp)
	if err != nil {
		return nil, nil, err
	}
	traces := make(map[string]string)
	for i, q := range resp.Queries {
		if q.Trace != "" {
			traces[fmt.Sprintf("q%d:%s", i, q.Kind)] = q.Trace
		}
	}
	return data, traces, nil
}

func (m *Manager) noteAbort(err error) {
	switch {
	case errors.Is(err, core.ErrCanceled):
		m.canceled.Add(1)
	case errors.Is(err, core.ErrDeadlineExceeded):
		m.expired.Add(1)
	}
}
