package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// hugeTASource renders a model whose zone graph is far too large to sweep
// within the tests' patience (six free generators with co-prime periods and
// a deep shared counter): jobs against it only ever end by cancellation,
// deadline, or shutdown. An extra generator period distinguishes variants so
// tests can mint non-identical submissions on demand.
func hugeTASource(lastPeriod int64) string {
	var b strings.Builder
	b.WriteString("system:huge\nclock:sx\nint:rec:0:0:40\nchan:hurry:urgent-broadcast\n")
	periods := []int64{7, 11, 13, 17, 19, lastPeriod}
	for i := range periods {
		fmt.Fprintf(&b, "clock:gx%d\n", i)
	}
	for i, p := range periods {
		fmt.Fprintf(&b, "process:GEN%d\n", i)
		fmt.Fprintf(&b, "location:GEN%d:tick{initial; invariant: gx%d<=%d}\n", i, i, p)
		fmt.Fprintf(&b, "edge:GEN%d:tick:tick{guard: gx%d==%d && rec<40; do: rec=rec+1, gx%d=0}\n", i, i, p, i)
	}
	b.WriteString("process:SRV\nlocation:SRV:idle{initial}\nlocation:SRV:busy{invariant: sx<=2}\n")
	b.WriteString("edge:SRV:idle:busy{guard: rec>0; sync: hurry!; do: rec=rec-1, sx=0}\n")
	b.WriteString("edge:SRV:busy:idle{guard: sx==2}\n")
	return b.String()
}

func hugeSubmit(lastPeriod int64, deadlineMS int64) SubmitRequest {
	return SubmitRequest{
		Kind:    "ta",
		Model:   hugeTASource(lastPeriod),
		Queries: []wire.TAQuery{{Kind: "deadlock"}},
		Options: SubmitOptions{DeadlineMS: deadlineMS},
	}
}

// awaitProgress polls until the job reports at least minStored states.
func awaitProgress(t *testing.T, base, id string, minStored int64, timeout time.Duration) StatusResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status: %d: %s", code, body)
		}
		var st StatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Progress.Stored >= minStored || st.State == StateDone ||
			st.State == StateFailed || st.State == StateCanceled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %d stored states: %+v", id, minStored, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelEndpointMidSweep cancels a hopeless job mid-sweep and requires a
// prompt canceled state with partial progress still readable.
func TestCancelEndpointMidSweep(t *testing.T) {
	s, ts := testServer(t, Config{})
	sr := submit(t, ts.URL, hugeSubmit(23, 0))
	st := awaitProgress(t, ts.URL, sr.JobID, 2000, time.Minute)
	if st.State != StateRunning {
		t.Fatalf("job %s: %s (%s), want running mid-sweep", sr.JobID, st.State, st.Error)
	}
	begin := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/jobs/"+sr.JobID+"/cancel", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", code, body)
	}
	final := await(t, ts.URL, sr.JobID, 30*time.Second)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s (%s)", final.State, final.Error)
	}
	if elapsed := time.Since(begin); elapsed > 20*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// Partial progress survives the abort; the sweep had stored thousands.
	if final.Progress.Stored < 2000 {
		t.Errorf("final progress %+v lost the partial sweep", final.Progress)
	}
	if c := s.Stats(); c.Canceled == 0 {
		t.Errorf("canceled counter not bumped: %+v", c)
	}
	// The result endpoint reports the state instead of a result.
	if code, body := getBody(t, ts.URL+"/v1/jobs/"+sr.JobID+"/result"); code != http.StatusConflict {
		t.Errorf("result of canceled job: %d (%s), want 409", code, body)
	}
	// A canceled job does not poison the cache: resubmitting the identical
	// work starts a fresh attempt.
	again := submit(t, ts.URL, hugeSubmit(23, 0))
	if again.JobID != sr.JobID || !again.Created {
		t.Errorf("resubmission after cancel: %+v, want a fresh attempt under the same key", again)
	}
	postJSON(t, ts.URL+"/v1/jobs/"+again.JobID+"/cancel", nil)
	await(t, ts.URL, again.JobID, 30*time.Second)
}

// TestDeadlineExceededJob bounds a hopeless job by wall clock; it must fail
// with exactly the DeadlineExceeded error name.
func TestDeadlineExceededJob(t *testing.T) {
	s, ts := testServer(t, Config{})
	sr := submit(t, ts.URL, hugeSubmit(29, 150))
	final := await(t, ts.URL, sr.JobID, 30*time.Second)
	if final.State != StateFailed || final.Error != errDeadlineExceeded {
		t.Fatalf("deadline job: %s (%q), want failed (DeadlineExceeded)", final.State, final.Error)
	}
	if c := s.Stats(); c.Expired == 0 {
		t.Errorf("expired counter not bumped: %+v", c)
	}
}

// TestServerDefaultDeadline applies the configured budget when the
// submission does not set one.
func TestServerDefaultDeadline(t *testing.T) {
	_, ts := testServer(t, Config{DefaultDeadline: 150 * time.Millisecond})
	sr := submit(t, ts.URL, hugeSubmit(31, 0))
	final := await(t, ts.URL, sr.JobID, 30*time.Second)
	if final.State != StateFailed || final.Error != errDeadlineExceeded {
		t.Fatalf("default-deadline job: %s (%q)", final.State, final.Error)
	}
}

// TestGracefulShutdownCancelsJobs drives the shutdown path: a running sweep
// is cooperatively canceled, the drain completes, and intake closes.
func TestGracefulShutdownCancelsJobs(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sr := submit(t, ts.URL, hugeSubmit(37, 0))
	awaitProgress(t, ts.URL, sr.JobID, 2000, time.Minute)

	begin := time.Now()
	if err := s.Shutdown(30 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 20*time.Second {
		t.Errorf("shutdown drain took %v", elapsed)
	}
	final := await(t, ts.URL, sr.JobID, 5*time.Second)
	if final.State != StateCanceled {
		t.Errorf("job after shutdown: %s (%s), want canceled", final.State, final.Error)
	}
	code, body := postJSON(t, ts.URL+"/v1/jobs", hugeSubmit(23, 0))
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d (%s), want 503", code, body)
	}
}

// TestAdmissionSerializesOnTokens pins the CPU-token contract: with a single
// token, a second job waits in queued state (never started) while the first
// runs, and a queued job canceled before admission reports canceled without
// ever starting.
func TestAdmissionSerializesOnTokens(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 1})
	a := submit(t, ts.URL, hugeSubmit(41, 0))
	awaitProgress(t, ts.URL, a.JobID, 1000, time.Minute)

	b := submit(t, ts.URL, hugeSubmit(43, 0))
	// Give b ample opportunity to (wrongly) start while a holds the token.
	time.Sleep(50 * time.Millisecond)
	code, body := getBody(t, ts.URL+"/v1/jobs/"+b.JobID)
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("job b = %s while a holds the only token, want queued", st.State)
	}
	// Cancel the queued job: it aborts at admission, never having run.
	postJSON(t, ts.URL+"/v1/jobs/"+b.JobID+"/cancel", nil)
	final := await(t, ts.URL, b.JobID, 10*time.Second)
	if final.State != StateCanceled || final.StartedAt != nil {
		t.Errorf("queued-cancel: state=%s started=%v, want canceled and never started", final.State, final.StartedAt)
	}
	postJSON(t, ts.URL+"/v1/jobs/"+a.JobID+"/cancel", nil)
	await(t, ts.URL, a.JobID, 30*time.Second)
}
