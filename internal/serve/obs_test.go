package serve

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve/client"
)

// TestMetricsAliasAndLint pins the two exposition contracts: /metrics is a
// byte-identical alias of /v1/metrics (both render the same registry in
// registration order), and the body passes the shared obs.Lint validator —
// the same check the serve-smoke CI job runs against a live node.
func TestMetricsAliasAndLint(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 1})
	sr := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	if st := await(t, ts.URL, sr.JobID, time.Minute); st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	code, v1 := getBody(t, ts.URL+"/v1/metrics")
	if code != 200 {
		t.Fatalf("/v1/metrics: HTTP %d", code)
	}
	code, alias := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	if string(v1) != string(alias) {
		t.Fatalf("/metrics is not byte-identical to /v1/metrics:\n--- /v1/metrics\n%s--- /metrics\n%s", v1, alias)
	}
	if errs := obs.Lint(strings.NewReader(string(v1))); len(errs) > 0 {
		t.Fatalf("/v1/metrics fails exposition lint: %v\n%s", errs, v1)
	}
	for _, fam := range []string{
		"taserved_submissions_total", "taserved_jobs_active",
		"taserved_job_queue_wait_seconds", "taserved_job_admission_wait_seconds",
		"taserved_job_compute_seconds", "taserved_job_replicate_seconds",
	} {
		if !strings.Contains(string(v1), "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	if !strings.Contains(string(v1), `taserved_job_compute_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("compute histogram did not record the job:\n%s", v1)
	}
}

// TestJobProfileEndpoint checks the per-job profile: lifecycle spans with
// monotone timings whose total stays within the job's wall time, and the
// engine's sweep profile (phase spans + per-worker series) for a locally
// computed job.
func TestJobProfileEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 1})
	sr := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	if st := await(t, ts.URL, sr.JobID, time.Minute); st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	pr, err := client.New(ts.URL, nil).Profile(context.Background(), sr.JobID)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if pr.JobID != sr.JobID || pr.State != StateDone || pr.WallNS <= 0 {
		t.Fatalf("profile header = %+v, want done job with positive wall time", pr)
	}

	spans := map[string]obs.Span{}
	var sum int64
	for _, sp := range pr.Spans {
		if sp.DurNS < 0 || sp.StartNS <= 0 {
			t.Errorf("span %s has start=%d dur=%d", sp.Name, sp.StartNS, sp.DurNS)
		}
		spans[sp.Name] = sp
		sum += sp.DurNS
	}
	for _, name := range []string{"queue_wait", "admission_wait", "compute", "replicate"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("span %s missing (got %+v)", name, pr.Spans)
		}
	}
	// The lifecycle spans are sequential: each begins no earlier than its
	// predecessor ends, and their total cannot exceed the wall time.
	for _, pair := range [][2]string{
		{"queue_wait", "admission_wait"}, {"admission_wait", "compute"}, {"compute", "replicate"},
	} {
		prev, next := spans[pair[0]], spans[pair[1]]
		if next.StartNS < prev.StartNS+prev.DurNS {
			t.Errorf("span %s starts at %d, before %s ends at %d",
				pair[1], next.StartNS, pair[0], prev.StartNS+prev.DurNS)
		}
	}
	if sum > pr.WallNS {
		t.Errorf("span durations sum to %dns, more than the %dns wall time", sum, pr.WallNS)
	}

	if len(pr.Sweep) == 0 {
		t.Fatal("locally computed job has no sweep profile")
	}
	var sweep core.SweepProfile
	if err := json.Unmarshal(pr.Sweep, &sweep); err != nil {
		t.Fatalf("sweep profile undecodable: %v", err)
	}
	phases := map[string]bool{}
	for _, sp := range sweep.Phases {
		phases[sp.Name] = true
	}
	for _, name := range []string{"parse", "compile", "explore"} {
		if !phases[name] {
			t.Errorf("sweep phase %s missing (got %+v)", name, sweep.Phases)
		}
	}
	if sweep.Workers < 1 || len(sweep.Series) != sweep.Workers {
		t.Errorf("sweep has %d series for %d workers", len(sweep.Series), sweep.Workers)
	}
	if sweep.Totals.Stored == 0 {
		t.Error("sweep totals empty, want the run's exact counters")
	}

	// Unknown jobs 404 through the same route.
	code, _ := getBody(t, ts.URL+"/v1/jobs/nope/profile")
	if code != 404 {
		t.Errorf("profile of unknown job: HTTP %d, want 404", code)
	}
}
