// Package api is the transport contract of the taserved analysis service:
// the request/response bodies and job states that travel between clients and
// the job manager, and — in cluster mode — between nodes as dispatch
// envelopes. It holds types only, so the typed client
// (internal/serve/client), the job manager (internal/serve), and the
// dispatch backends (internal/serve/pubsub) can all share one contract
// without import cycles. internal/serve aliases every name, so existing code
// written against serve.SubmitRequest keeps compiling unchanged.
package api

import (
	"encoding/json"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Job states on the wire.
const (
	StateQueued   = "queued"   // admitted, waiting for CPU tokens
	StateRunning  = "running"  // holding tokens, sweep in progress
	StateDone     = "done"     // result available
	StateFailed   = "failed"   // analysis error (DeadlineExceeded included)
	StateCanceled = "canceled" // canceled by a client or by shutdown
)

// SubmitRequest is the body of POST /v1/jobs — and, verbatim, the dispatch
// envelope a frontend ships to the node owning the submission's content hash
// (normalization is deterministic, so the owner re-derives the same job id).
type SubmitRequest struct {
	// Kind selects the model format: "arch" (JSON architecture description,
	// the archcheck input) or "ta" (textual timed-automata network, the
	// tacheck input).
	Kind string `json:"kind"`
	// Model is the model source, verbatim.
	Model string `json:"model"`
	// Requirements optionally restricts an arch analysis to the named
	// requirements, in the given order; empty means all, file order.
	Requirements []string `json:"requirements,omitempty"`
	// Queries lists the questions of a ta analysis; all of them ride one
	// exploration.
	Queries []wire.TAQuery `json:"queries,omitempty"`
	Options SubmitOptions  `json:"options"`
}

// SubmitOptions tunes one submission. Every field participates in the
// content key: two submissions share a job (and its cached result) exactly
// when their normalized forms coincide.
type SubmitOptions struct {
	// HorizonMS is the arch observation horizon (default 2000).
	HorizonMS int64 `json:"horizon_ms,omitempty"`
	// HorizonMSByReq overrides the horizon per requirement.
	HorizonMSByReq map[string]int64 `json:"horizon_ms_by_req,omitempty"`
	// QueueCap bounds the arch pending-event counters (default 8).
	QueueCap int64 `json:"queue_cap,omitempty"`
	// Workers is the exploration parallelism of this job — also the number
	// of CPU tokens it holds while running. Clamped to [1, CPUTokens].
	// Default 1 (service throughput comes from concurrent jobs).
	Workers int `json:"workers,omitempty"`
	// MaxStates truncates the exploration (0 = exhaustive).
	MaxStates int `json:"max_states,omitempty"`
	// StateBudget hard-caps the exploration: exceeding it fails the job with
	// error "StateBudgetExceeded" (unlike max_states, which truncates).
	StateBudget int `json:"state_budget,omitempty"`
	// MaxBytes bounds the job's zone memory; exceeding it fails the job with
	// error "MemoryBudgetExceeded" and partial progress. When the server
	// runs with a global memory budget this is also the job's admission
	// grant (clamped to the budget); 0 requests the server's default share.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// Order is the search order: bfs (default), df, rdf.
	Order string `json:"order,omitempty"`
	// Seed feeds rdf shuffling.
	Seed int64 `json:"seed,omitempty"`
	// MaxConst is the extrapolation horizon for ta sup queries.
	MaxConst int64 `json:"max_const,omitempty"`
	// DeadlineMS bounds the job's wall clock from submission (admission wait
	// included); 0 selects the server default. An expired job fails with
	// error "DeadlineExceeded".
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Witness additionally captures a critical-instant trace per requirement
	// (arch only; extra explorations) for GET …/trace.
	Witness bool `json:"witness,omitempty"`
}

// SubmitResponse is the body answering POST /v1/jobs.
type SubmitResponse struct {
	JobID string `json:"job_id"`
	// State is the job state at response time; "done" means the result is
	// already available (result-cache hit).
	State string `json:"state"`
	// Created reports whether this submission started a new analysis; false
	// means it joined a live twin or hit a finished result.
	Created bool `json:"created"`
}

// StatusResponse is the body answering GET /v1/jobs/{id}.
type StatusResponse struct {
	JobID       string       `json:"job_id"`
	Kind        string       `json:"kind"`
	State       string       `json:"state"`
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	Progress    ProgressBody `json:"progress"`
}

// CancelResponse is the body answering POST /v1/jobs/{id}/cancel: the job's
// state immediately after the cancellation request (cancellation is
// cooperative, so a running job may still report running here and reach
// canceled shortly after).
type CancelResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// ProgressBody is the live view of a running exploration, sampled from the
// engine's per-worker counters.
type ProgressBody struct {
	Stored      int64 `json:"stored"`
	Popped      int64 `json:"popped"`
	Transitions int64 `json:"transitions"`
	Deadlocks   int64 `json:"deadlocks"`
	Frontier    int64 `json:"frontier"`
	Workers     int   `json:"workers"`
	Running     bool  `json:"running"`
	// StoredBytes is the passed store's actual resident footprint: packed
	// zone bytes plus interned discrete vectors.
	StoredBytes int64 `json:"stored_bytes"`
	// InternHits / InternMisses count discrete-vector intern lookups; the hit
	// rate is the store's discrete-part sharing factor.
	InternHits   int64 `json:"intern_hits"`
	InternMisses int64 `json:"intern_misses"`
}

// ProfileResponse is the body answering GET /v1/jobs/{id}/profile, available
// once the job is terminal (409 with the current state before that).
type ProfileResponse struct {
	JobID       string    `json:"job_id"`
	Kind        string    `json:"kind"`
	State       string    `json:"state"`
	SubmittedAt time.Time `json:"submitted_at"`
	// WallNS is the job's wall clock in nanoseconds: submission through its
	// last recorded instant (finish, or the result announce when that ends
	// later).
	WallNS int64 `json:"wall_ns"`
	// Spans are the job's lifecycle stages (queue_wait, admission_wait,
	// compute, replicate), absolute Unix-ns intervals in recording order.
	Spans []obs.Span `json:"spans"`
	// Sweep is the engine's core.SweepProfile JSON — phase spans (parse,
	// compile, explore, trace-replay) plus the sampled per-worker series —
	// present only when this node ran the sweep (absent for proxied and
	// adopted results). Kept raw so the api package does not depend on core.
	Sweep json.RawMessage `json:"sweep,omitempty"`
}

// CompletionEvent is the cluster-wide announcement of a job reaching a
// terminal state, published by the node that ran (or adopted) the
// computation and consumed by every frontend holding a proxy for the same
// content key. Result bytes travel verbatim — the event is a relay, never a
// re-encoding — which is what keeps wire bytes identical no matter which
// node serves them. Errors are relayed so waiting proxies fail promptly,
// but only State == done events may enter a replicated result cache.
type CompletionEvent struct {
	// Key is the content hash — job id and cache key.
	Key string `json:"key"`
	// Node is the id of the announcing node.
	Node string `json:"node"`
	// Kind echoes the submission kind ("arch" | "ta").
	Kind string `json:"kind"`
	// State is the terminal job state: done, failed, or canceled.
	State string `json:"state"`
	// Error carries the failure code/message for non-done states (one of the
	// wire.Code* job-failure constants when the failure has a named class).
	Error string `json:"error,omitempty"`
	// Result is the raw wire JSON of a done job, byte-identical to the
	// owner's local result body.
	Result []byte `json:"result,omitempty"`
	// Traces are the captured witness traces of a done job.
	Traces map[string]string `json:"traces,omitempty"`
}
