package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/icrns"
	"repro/internal/serve/client"
	"repro/internal/wire"
)

// testServer boots a Server on an httptest listener.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Shutdown(10 * time.Second)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// submit posts the request through the typed client and returns the
// response.
func submit(t *testing.T, base string, req SubmitRequest) SubmitResponse {
	t.Helper()
	sr, err := client.New(base, nil).Submit(context.Background(), &req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return *sr
}

// await polls through the typed client until the job reaches a terminal
// state.
func await(t *testing.T, base, id string, timeout time.Duration) StatusResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := client.New(base, nil).Await(ctx, id, 0)
	if err != nil {
		if st != nil {
			t.Fatalf("job %s still %s after %v (progress %+v)", id, st.State, timeout, st.Progress)
		}
		t.Fatalf("await %s: %v", id, err)
	}
	return *st
}

func result(t *testing.T, base, id string) wire.ArchResponse {
	t.Helper()
	body, err := client.New(base, nil).Result(context.Background(), id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var ar wire.ArchResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

func tinyArchModel(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/tiny.json")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func tinyTAModel(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/tiny.ta")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestHTTPOracleCaseStudyModels is the service-vs-library oracle on the
// paper's case-study models (the Table 1 AL-combination cells, whose po/pno
// columns are also Table 2's Uppaal columns): the verdicts served over HTTP
// must be bit-identical — same exact rational strings, same flags, same
// sweep counters — to a direct arch.AnalyzeAll call with the same horizons.
func TestHTTPOracleCaseStudyModels(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 2})
	names := []string{icrns.ReqHandleTMC, icrns.ReqAddressLookup}
	horizons := map[string]int64{}
	for _, n := range names {
		horizons[n] = icrns.HorizonMS(n)
	}
	for _, col := range []icrns.Column{icrns.ColPO, icrns.ColPNO} {
		sys, reqmap := icrns.Build(icrns.ComboAL, col, icrns.DefaultConfig())
		reqs := make([]*arch.Requirement, len(names))
		for i, n := range names {
			reqs[i] = reqmap[n]
		}
		src, err := arch.MarshalSystem(sys, reqs)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := arch.AnalyzeAll(sys, reqs,
			arch.Options{HorizonMSFor: func(r *arch.Requirement) int64 { return horizons[r.Name] }},
			core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := wire.FromAllResult(direct)

		sr := submit(t, ts.URL, SubmitRequest{
			Kind:         "arch",
			Model:        string(src),
			Requirements: names,
			Options:      SubmitOptions{HorizonMSByReq: horizons, Workers: 1},
		})
		st := await(t, ts.URL, sr.JobID, 2*time.Minute)
		if st.State != StateDone {
			t.Fatalf("col %v: job %s: %s (%s)", col, sr.JobID, st.State, st.Error)
		}
		got := result(t, ts.URL, sr.JobID)
		if len(got.Results) != len(want.Results) {
			t.Fatalf("col %v: %d results, want %d", col, len(got.Results), len(want.Results))
		}
		for i := range want.Results {
			g, w := got.Results[i], want.Results[i]
			if g != w {
				t.Errorf("col %v: %s: served %+v != direct %+v", col, w.Req, g, w)
			}
		}
		// Same single sweep: the exploration counters agree exactly
		// (durations differ, of course).
		if got.Stats.Stored != want.Stats.Stored || got.Stats.Popped != want.Stats.Popped ||
			got.Stats.Transitions != want.Stats.Transitions {
			t.Errorf("col %v: served sweep %+v != direct %+v", col, got.Stats, want.Stats)
		}
	}
}

// TestTAJobEndToEnd submits a ta model with a combined query set and checks
// the response against the shared wire path run directly.
func TestTAJobEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{})
	specs := []wire.TAQuery{
		{Kind: "reach", Pred: "RAD.busy"},
		{Kind: "sup", Clock: "x", Pred: "RAD.busy"},
		{Kind: "deadlock"},
	}
	sr := submit(t, ts.URL, SubmitRequest{
		Kind:    "ta",
		Model:   tinyTAModel(t),
		Queries: specs,
		Options: SubmitOptions{MaxConst: 20},
	})
	st := await(t, ts.URL, sr.JobID, time.Minute)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	code, body := getBody(t, ts.URL+"/v1/jobs/"+sr.JobID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, body)
	}
	var resp wire.TAResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Queries) != 3 || !resp.Queries[0].Verdict || resp.Queries[1].Sup != "<=3" || !resp.Queries[2].Verdict {
		t.Errorf("unexpected ta response: %s", body)
	}
	// The reach witness is served through the trace endpoint too.
	code, body = getBody(t, ts.URL+"/v1/jobs/"+sr.JobID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: %d: %s", code, body)
	}
	var traces map[string]string
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if traces["q0:reach"] == "" {
		t.Errorf("missing reach trace: %v", traces)
	}
	// Final status reports the finished sweep's exact counters.
	if st.Progress.Running || st.Progress.Stored != int64(resp.Stats.Stored) {
		t.Errorf("final progress %+v does not mirror stats %+v", st.Progress, resp.Stats)
	}
}

// TestSubmitValidation covers the 4xx paths.
func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for name, req := range map[string]SubmitRequest{
		"no model":        {Kind: "arch"},
		"bad kind":        {Kind: "vhdl", Model: "x"},
		"bad order":       {Kind: "arch", Model: tinyArchModel(t), Options: SubmitOptions{Order: "dfs"}},
		"bad arch model":  {Kind: "arch", Model: "{not json"},
		"unknown req":     {Kind: "arch", Model: tinyArchModel(t), Requirements: []string{"ghost"}},
		"bad horizon req": {Kind: "arch", Model: tinyArchModel(t), Options: SubmitOptions{HorizonMSByReq: map[string]int64{"ghost": 5}}},
		"ta no queries":   {Kind: "ta", Model: tinyTAModel(t)},
		"ta bad query":    {Kind: "ta", Model: tinyTAModel(t), Queries: []wire.TAQuery{{Kind: "warp"}}},
		"ta bad model":    {Kind: "ta", Model: "system:", Queries: []wire.TAQuery{{Kind: "deadlock"}}},
	} {
		code, body := postJSON(t, ts.URL+"/v1/jobs", req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, body)
		}
	}
	if code, _ := getBody(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	// Result before completion conflicts rather than blocks: a queued job id
	// is hard to hold still here, so just check an unknown id 404s on result.
	if code, _ := getBody(t, ts.URL+"/v1/jobs/nope/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", code)
	}
}

// TestHealthzAndMetrics smoke-checks the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 3})
	sr := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	await(t, ts.URL, sr.JobID, time.Minute)

	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != true || h["cpu_tokens"] != float64(3) {
		t.Errorf("healthz: %s", body)
	}
	// The memory-footprint fields are always present; with the only job
	// finished, the live-store footprint is zero.
	if h["stored_zone_bytes"] != float64(0) {
		t.Errorf("healthz stored_zone_bytes = %v, want 0 after the job finished", h["stored_zone_bytes"])
	}
	if _, ok := h["intern_hit_rate"]; !ok {
		t.Errorf("healthz missing intern_hit_rate: %s", body)
	}
	code, body = getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, metric := range []string{
		"taserved_submissions_total 1",
		"taserved_explorations_total 1",
		"taserved_cpu_tokens_total 3",
		"taserved_cpu_tokens_in_use 0",
		"taserved_stored_zone_bytes 0",
		"taserved_intern_hits_total 0",
		"taserved_intern_misses_total 0",
	} {
		if !bytes.Contains(body, []byte(metric)) {
			t.Errorf("metrics missing %q:\n%s", metric, body)
		}
	}
}

// TestWitnessTraces covers the arch trace path: submitted with witness, the
// job captures one critical-instant trace per requirement.
func TestWitnessTraces(t *testing.T) {
	_, ts := testServer(t, Config{})
	sr := submit(t, ts.URL, SubmitRequest{
		Kind: "arch", Model: tinyArchModel(t),
		Requirements: []string{"e2e"},
		Options:      SubmitOptions{HorizonMS: 100, Witness: true},
	})
	st := await(t, ts.URL, sr.JobID, time.Minute)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	code, body := getBody(t, ts.URL+"/v1/jobs/"+sr.JobID+"/trace?req=e2e")
	if code != http.StatusOK {
		t.Fatalf("trace: %d: %s", code, body)
	}
	var traces map[string]string
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if traces["e2e"] == "" {
		t.Error("missing witness trace for e2e")
	}
	// Without witness, the trace endpoint explains itself.
	sr2 := submit(t, ts.URL, SubmitRequest{
		Kind: "arch", Model: tinyArchModel(t),
		Requirements: []string{"e2e"},
		Options:      SubmitOptions{HorizonMS: 100},
	})
	await(t, ts.URL, sr2.JobID, time.Minute)
	if code, _ := getBody(t, ts.URL+"/v1/jobs/"+sr2.JobID+"/trace"); code != http.StatusNotFound {
		t.Errorf("trace without witness: %d, want 404", code)
	}
}

// TestWorkersClamped pins the admission contract: a job cannot ask for more
// parallelism than the global CPU budget.
func TestWorkersClamped(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 2})
	sr := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100, Workers: 64}})
	st := await(t, ts.URL, sr.JobID, time.Minute)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if st.Progress.Workers != 2 {
		t.Errorf("workers = %d, want clamped to 2", st.Progress.Workers)
	}
}
