package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/wire"
)

// Span names of the job lifecycle stages recorded on every executed job and
// fed into the taserved_job_*_seconds histograms.
const (
	spanQueueWait     = "queue_wait"     // submission → execute goroutine start
	spanAdmissionWait = "admission_wait" // blocked acquiring the CPU/memory grant
	spanCompute       = "compute"        // the job closure (sweep or proxy wait)
	spanReplicate     = "replicate"      // result-cache put + cluster announce
)

// This file is the execution half of the service: a global resource
// admission controller and a bounded job manager. Every analysis job declares
// how many exploration workers it will run and how many bytes of zone memory
// it may grow to, and must hold that grant — CPU tokens plus a memory slice
// of the server's global budget — for the duration of its sweep. k
// simultaneous analyses (each itself parallel) therefore never oversubscribe
// the host's cores or its RAM: worker goroutines are capped by the token
// pool, resident zone memory by the byte pool, and excess jobs queue FIFO at
// admission instead of thrashing the scheduler. The memory grant doubles as
// the job's core.Options.MaxBytes, so a job that outgrows what it was
// admitted with fails alone (ErrMemoryBudget, partial stats) instead of
// OOM-killing the node and every queued job with it.

// Job states on the wire — aliases of the api contract.
const (
	StateQueued   = api.StateQueued
	StateRunning  = api.StateRunning
	StateDone     = api.StateDone
	StateFailed   = api.StateFailed
	StateCanceled = api.StateCanceled
)

// Named failures the wire exposes for resource-bounded jobs — aliases of the
// shared wire taxonomy so node-local and relayed failures use one spelling.
const (
	errDeadlineExceeded = wire.CodeDeadlineExceeded
	errMemoryBudget     = wire.CodeMemoryBudget
	errStateBudget      = wire.CodeStateBudget
)

// cpuTokens is the admission controller: a FIFO counting semaphore over the
// host's CPU budget and, when the server configures one, its memory budget.
// A waiter is granted atomically — all its tokens and all its bytes, or
// nothing — and waiters never overtake (head-of-line order), so a wide job
// cannot starve behind a stream of narrow ones.
type cpuTokens struct {
	mu         sync.Mutex
	total      int
	avail      int
	totalBytes int64 // 0 = memory unmetered
	availBytes int64
	waiters    *list.List // of *tokenWait
}

type tokenWait struct {
	n       int
	bytes   int64
	ready   chan struct{}
	granted bool
}

func newCPUTokens(total int, budgetBytes int64) *cpuTokens {
	if total < 1 {
		total = 1
	}
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &cpuTokens{total: total, avail: total,
		totalBytes: budgetBytes, availBytes: budgetBytes, waiters: list.New()}
}

// fitsLocked reports whether a grant of (n, bytes) fits the free resources.
func (t *cpuTokens) fitsLocked(n int, bytes int64) bool {
	return t.avail >= n && (t.totalBytes == 0 || t.availBytes >= bytes)
}

// acquire blocks until the (n tokens, bytes) grant lands, the cancel channel
// fires, or the deadline (when nonzero) passes; the abort errors are the core
// sentinels so queue-time aborts report exactly like sweep-time ones.
// n must already be clamped to [1, total] and bytes to [0, totalBytes].
func (t *cpuTokens) acquire(cancel <-chan struct{}, deadline time.Time, n int, bytes int64) error {
	t.mu.Lock()
	if t.waiters.Len() == 0 && t.fitsLocked(n, bytes) {
		t.avail -= n
		t.availBytes -= bytes
		t.mu.Unlock()
		return nil
	}
	w := &tokenWait{n: n, bytes: bytes, ready: make(chan struct{})}
	el := t.waiters.PushBack(w)
	t.mu.Unlock()

	var expired <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		expired = timer.C
	}
	var aborted error
	select {
	case <-w.ready:
		return nil
	case <-expired:
		aborted = core.ErrDeadlineExceeded
	case <-cancel:
		aborted = core.ErrCanceled
		// Mirror core.abortErr's precedence: when the deadline passed too
		// (both channels ready, select picked randomly), the more specific
		// expiry wins so the wire state stays deterministic.
		if !deadline.IsZero() && time.Now().After(deadline) {
			aborted = core.ErrDeadlineExceeded
		}
	}
	t.mu.Lock()
	if w.granted {
		// The grant raced the abort: keep it consistent by returning the
		// resources; the caller sees the abort.
		t.avail += n
		t.availBytes += bytes
		t.grantLocked()
	} else {
		t.waiters.Remove(el)
		t.grantLocked() // the removed waiter may have been blocking smaller ones
	}
	t.mu.Unlock()
	return aborted
}

// release returns a grant and wakes eligible waiters.
func (t *cpuTokens) release(n int, bytes int64) {
	t.mu.Lock()
	t.avail += n
	t.availBytes += bytes
	t.grantLocked()
	t.mu.Unlock()
}

// grantLocked grants waiters FIFO while resources last.
func (t *cpuTokens) grantLocked() {
	for t.waiters.Len() > 0 {
		w := t.waiters.Front().Value.(*tokenWait)
		if !t.fitsLocked(w.n, w.bytes) {
			return
		}
		t.avail -= w.n
		t.availBytes -= w.bytes
		w.granted = true
		close(w.ready)
		t.waiters.Remove(t.waiters.Front())
	}
}

// inUse reports tokens currently held.
func (t *cpuTokens) inUse() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - t.avail
}

// bytesInUse reports memory-budget bytes currently granted.
func (t *cpuTokens) bytesInUse() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalBytes - t.availBytes
}

// waiting reports the admission queue depth: jobs blocked for a grant.
func (t *cpuTokens) waiting() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waiters.Len()
}

// job is one submitted analysis. Its id IS the content key of the normalized
// submission (sha256 hex), which is what makes the job table double as the
// result cache: resubmitting identical work lands on the same entry, running
// or finished.
type job struct {
	id        string
	kind      string // "arch" | "ta"
	workers   int    // CPU tokens held while running
	memBytes  int64  // memory-budget bytes held while running (0 = unmetered)
	submitted time.Time
	deadline  time.Time // zero = unbounded
	mon       *core.Monitor

	cancelOnce sync.Once
	cancelCh   chan struct{}

	mu       sync.Mutex
	state    string
	errMsg   string
	started  time.Time
	finished time.Time
	result   []byte            // raw wire JSON, valid when state == done
	traces   map[string]string // captured witness traces, by requirement / query
	spans    []obs.Span        // lifecycle spans, appended as each stage ends
	done     chan struct{}     // closed on any terminal state
}

func newJob(id, kind string, workers int, memBytes int64, deadline time.Time) *job {
	j := &job{
		id: id, kind: kind, workers: workers, memBytes: memBytes,
		submitted: time.Now(), deadline: deadline,
		mon:      &core.Monitor{},
		cancelCh: make(chan struct{}),
		state:    StateQueued,
		done:     make(chan struct{}),
	}
	// Every served job records its sweep profile (phase spans + sampled
	// per-worker series) for GET /v1/jobs/{id}/profile. The recorder costs a
	// few KB of rings per run — noise next to a sweep — and nothing at all on
	// jobs that never run one (proxies, adopted results).
	j.mon.EnableProfile(core.ProfileConfig{})
	return j
}

// addSpan records one completed lifecycle stage.
func (j *job) addSpan(name string, start, end time.Time) {
	s := obs.NewSpan(name, start, end)
	j.mu.Lock()
	j.spans = append(j.spans, s)
	j.mu.Unlock()
}

// spanSnapshot copies the recorded lifecycle spans in recording order.
func (j *job) spanSnapshot() []obs.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]obs.Span(nil), j.spans...)
}

// cancel requests cooperative cancellation; safe to call repeatedly and
// after completion (a terminal job just ignores the closed channel).
func (j *job) cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish moves the job to its terminal state, mapping the core abort
// sentinels onto the wire states: ErrCanceled → canceled, ErrDeadlineExceeded
// → failed with the DeadlineExceeded error name.
func (j *job) finish(result []byte, traces map[string]string, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		j.traces = traces
	case errors.Is(err, core.ErrCanceled):
		j.state = StateCanceled
		j.errMsg = "canceled"
	case errors.Is(err, core.ErrDeadlineExceeded):
		j.state = StateFailed
		j.errMsg = errDeadlineExceeded
	case errors.Is(err, core.ErrMemoryBudget):
		j.state = StateFailed
		j.errMsg = errMemoryBudget
	case errors.Is(err, core.ErrStateBudget):
		j.state = StateFailed
		j.errMsg = errStateBudget
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.mu.Unlock()
	close(j.done)
}

// snapshot reads the job's current state fields consistently.
func (j *job) snapshot() (state, errMsg string, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.started, j.finished
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// jobManager bounds and executes jobs: at most maxActive jobs queued or
// running (excess submissions are rejected with errBusy), at most
// maxFinished terminal jobs retained as the result cache (evicted LRU).
type jobManager struct {
	tokens *cpuTokens

	// onFinish, when set, observes every executed job reaching a terminal
	// state (adopted cache hits excluded — they were announced by the node
	// that computed them). The manager uses it to announce completions to the
	// dispatch backend. Called outside m.mu.
	onFinish func(*job)

	// onSpan, when set, observes every recorded lifecycle span — the
	// Manager's histogram feed. Called outside m.mu.
	onSpan func(name string, d time.Duration)

	mu          sync.Mutex
	jobs        map[string]*job
	finished    *list.List // of job ids, front = most recently finished/hit
	finIndex    map[string]*list.Element
	active      int
	maxActive   int
	maxFinished int
	closed      bool
	wg          sync.WaitGroup
}

var (
	errBusy         = errors.New("serve: job table full, try again later")
	errShuttingDown = errors.New("serve: server is shutting down")
)

func newJobManager(tokens *cpuTokens, maxActive, maxFinished int) *jobManager {
	return &jobManager{
		tokens:      tokens,
		jobs:        make(map[string]*job),
		finished:    list.New(),
		finIndex:    make(map[string]*list.Element),
		maxActive:   maxActive,
		maxFinished: maxFinished,
	}
}

// runFunc computes one job's result: the raw wire JSON plus any captured
// traces. It must honor the job's cancel channel, deadline, and monitor.
type runFunc func(j *job) ([]byte, map[string]string, error)

// submit returns the job for the given content key, creating and starting it
// when absent. An existing live or successfully-finished job is shared
// (created=false — the singleflight/result-cache path); a failed or canceled
// one is replaced by a fresh attempt.
func (m *jobManager) submit(id, kind string, workers int, memBytes int64, deadline time.Time, run runFunc) (*job, bool, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, errShuttingDown
	}
	if j := m.jobs[id]; j != nil {
		state, _, _, _ := j.snapshot()
		if state == StateFailed || state == StateCanceled {
			// A fresh attempt replaces the failed one below.
			m.dropLocked(id)
		} else {
			if el := m.finIndex[id]; el != nil {
				m.finished.MoveToFront(el)
			}
			m.mu.Unlock()
			return j, false, nil
		}
	}
	if m.active >= m.maxActive {
		m.mu.Unlock()
		return nil, false, errBusy
	}
	j := newJob(id, kind, workers, memBytes, deadline)
	m.jobs[id] = j
	m.active++
	m.wg.Add(1)
	m.mu.Unlock()

	go m.execute(j, run)
	return j, true, nil
}

func (m *jobManager) execute(j *job, run runFunc) {
	defer m.wg.Done()
	entered := time.Now()
	m.span(j, spanQueueWait, j.submitted, entered)
	// A proxy job (workers == 0) holds no grant: the compute — and its
	// admission — happens on the node that owns the content key; this
	// goroutine only waits for the relayed completion.
	if j.workers > 0 {
		err := m.tokens.acquire(j.cancelCh, j.deadline, j.workers, j.memBytes)
		m.span(j, spanAdmissionWait, entered, time.Now())
		if err != nil {
			j.finish(nil, nil, err)
			m.noteFinish(j)
			m.onTerminal(j)
			return
		}
	}
	j.setRunning()
	computeStart := time.Now()
	result, traces, err := runContained(j, run)
	m.span(j, spanCompute, computeStart, time.Now())
	if j.workers > 0 {
		m.tokens.release(j.workers, j.memBytes)
	}
	j.finish(result, traces, err)
	m.noteFinish(j)
	m.onTerminal(j)
}

// span records one lifecycle stage on the job and feeds the manager's
// histogram hook.
func (m *jobManager) span(j *job, name string, start, end time.Time) {
	j.addSpan(name, start, end)
	if m.onSpan != nil {
		m.onSpan(name, end.Sub(start))
	}
}

func (m *jobManager) noteFinish(j *job) {
	if m.onFinish != nil {
		m.onFinish(j)
	}
}

// runContained executes the job closure with panic containment: a crash in
// one analysis — engine bug, malformed compiled model, injected fault —
// fails that job alone instead of killing the process and every queued job
// with it. The grant release, finish, and LRU insertion in execute all run
// normally afterwards, so a panicked job leaks neither tokens nor bytes nor
// a table slot. (The exploration's own workers are additionally contained
// inside core; this recover catches everything outside them.)
func runContained(j *job, run runFunc) (result []byte, traces map[string]string, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, traces = nil, nil
			err = fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	if faultinject.Enabled {
		if ferr := faultinject.Fire("serve/job"); ferr != nil {
			return nil, nil, ferr
		}
	}
	return run(j)
}

// onTerminal moves the job into the retained-results LRU and evicts beyond
// the bound. The insert is guarded: between j.finish() and this call a
// resubmission may have observed the failed/canceled state and replaced the
// table entry under the same id — inserting the stale job then would orphan
// a list element (no finIndex entry) and wedge the eviction loop. A replaced
// job is simply dropped.
func (m *jobManager) onTerminal(j *job) {
	m.mu.Lock()
	m.active--
	if m.jobs[j.id] == j {
		m.finIndex[j.id] = m.finished.PushFront(j.id)
		for m.finished.Len() > m.maxFinished {
			oldest := m.finished.Back()
			m.dropLocked(oldest.Value.(string))
		}
	}
	m.mu.Unlock()
}

func (m *jobManager) dropLocked(id string) {
	if el := m.finIndex[id]; el != nil {
		m.finished.Remove(el)
		delete(m.finIndex, id)
	}
	delete(m.jobs, id)
}

// adopt installs an already-completed result — a replicated-cache hit — as a
// done job, so status/result/trace serve it exactly like a locally computed
// one (no goroutine, no grant, Created=false). A live or successfully
// finished twin is joined instead, same as submit; a failed or canceled twin
// is replaced by the adopted result, same as submit's fresh attempt. Returns
// the job plus whether the cached event was installed (false = joined an
// existing entry), or nil when the manager is shutting down.
func (m *jobManager) adopt(id string, ev api.CompletionEvent) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false
	}
	if j := m.jobs[id]; j != nil {
		state, _, _, _ := j.snapshot()
		if state != StateFailed && state != StateCanceled {
			if el := m.finIndex[id]; el != nil {
				m.finished.MoveToFront(el)
			}
			return j, false
		}
		m.dropLocked(id)
	}
	j := newJob(id, ev.Kind, 0, 0, time.Time{})
	j.mu.Lock()
	j.state = StateDone
	j.started = j.submitted
	j.finished = time.Now()
	j.result = ev.Result
	j.traces = ev.Traces
	j.mu.Unlock()
	close(j.done)
	m.jobs[id] = j
	m.finIndex[id] = m.finished.PushFront(id)
	for m.finished.Len() > m.maxFinished {
		m.dropLocked(m.finished.Back().Value.(string))
	}
	return j, true
}

// get looks a job up by id.
func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// storedFootprint sums the live explorations' actual passed-store footprint:
// packed zone bytes plus interned discrete vectors, and the intern hit/miss
// totals, across every non-terminal job. Terminal jobs are skipped — their
// stores are already unreachable and collected; counting them would report
// memory the process no longer holds. Snapshots are taken outside m.mu (a
// Monitor sums per-worker counters) so a slow sample never blocks submission.
func (m *jobManager) storedFootprint() (bytes, hits, misses int64) {
	m.mu.Lock()
	live := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.mu.Unlock()
	for _, j := range live {
		if j.terminal() {
			continue
		}
		p := j.mon.Snapshot()
		bytes += p.StoredBytes
		hits += p.InternHits
		misses += p.InternMisses
	}
	return bytes, hits, misses
}

// counts reports active (queued+running) and retained terminal jobs.
func (m *jobManager) counts() (active, retained int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active, m.finished.Len()
}

// close stops intake and cancels every live job.
func (m *jobManager) close() {
	m.mu.Lock()
	m.closed = true
	live := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.mu.Unlock()
	for _, j := range live {
		j.cancel()
	}
}

// wait blocks until every job goroutine has drained or the timeout passes.
func (m *jobManager) wait(timeout time.Duration) error {
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return errors.New("serve: jobs did not drain before the shutdown timeout")
	}
}
