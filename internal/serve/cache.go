package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// flightCache is a bounded content-addressed cache with singleflight
// semantics: the first caller of an absent key computes the value while every
// concurrent caller of the same key waits for that one computation, so a
// thundering herd of identical requests costs exactly one parse, compile, or
// exploration. Values are retained LRU up to max entries; errors are never
// cached (the next caller retries).
//
// Ownership rule: cached values are shared by every caller and must be
// immutable after construction. The three caches of the server hold parsed
// systems, finalized networks, and compiled sets — all read-only after their
// constructors return, which is what makes concurrent analyses against one
// cached value sound.
type flightCache[V any] struct {
	mu      sync.Mutex
	max     int
	items   map[string]*list.Element // of *cacheEntry[V]
	order   *list.List               // front = most recently used
	flights map[string]*flight[V]

	hits   atomic.Int64 // served from cache or joined an in-flight call
	misses atomic.Int64 // computed fresh
}

type cacheEntry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newFlightCache[V any](max int) *flightCache[V] {
	return &flightCache[V]{
		max:     max,
		items:   make(map[string]*list.Element),
		order:   list.New(),
		flights: make(map[string]*flight[V]),
	}
}

// do returns the value for key, computing it with fn at most once across all
// concurrent callers. shared reports whether this caller got a cached or
// joined value rather than paying for the computation itself.
func (c *flightCache[V]) do(key string, fn func() (V, error)) (val V, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		val = el.Value.(*cacheEntry[V]).val
		c.mu.Unlock()
		c.hits.Add(1)
		return val, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		c.hits.Add(1)
		return f.val, true, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	c.misses.Add(1)
	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.items[key] = c.order.PushFront(&cacheEntry[V]{key: key, val: f.val})
		for len(c.items) > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry[V]).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// stats reports cache effectiveness for /metrics.
func (c *flightCache[V]) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// len reports the currently retained entries.
func (c *flightCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
