package serve

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/wire"
)

// TestThunderingHerdSingleflight is the satellite race/stress test: N
// goroutines submit the identical model + query set concurrently and the
// server must collapse them onto ONE job — exactly one parse, one compile,
// one exploration — with every response byte-identical, and the verdicts
// bit-identical to a direct arch.AnalyzeAll call. Run under -race in CI.
func TestThunderingHerdSingleflight(t *testing.T) {
	s, ts := testServer(t, Config{CPUTokens: 4})
	model := tinyArchModel(t)
	req := SubmitRequest{
		Kind:    "arch",
		Model:   model,
		Options: SubmitOptions{HorizonMS: 100, Workers: 2},
	}

	const n = 16
	ids := make([]string, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			ids[i] = submit(t, ts.URL, req).JobID
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, submission 0 got %s — content addressing broken", i, ids[i], ids[0])
		}
	}
	st := await(t, ts.URL, ids[0], time.Minute)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	// Every result fetch returns the same bytes.
	var first []byte
	var mu sync.Mutex
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			code, body := getBody(t, ts.URL+"/v1/jobs/"+ids[0]+"/result")
			if code != http.StatusOK {
				t.Errorf("result: %d", code)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if first == nil {
				first = body
			} else if !bytes.Equal(first, body) {
				t.Errorf("result bytes differ between fetches")
			}
		}()
	}
	done.Wait()

	c := s.Stats()
	if c.Explorations != 1 {
		t.Errorf("explorations = %d, want exactly 1 for %d identical submissions", c.Explorations, n)
	}
	if c.ModelMisses != 1 || c.CompileMisses != 1 {
		t.Errorf("parse/compile not singleflighted: modelMisses=%d compileMisses=%d", c.ModelMisses, c.CompileMisses)
	}
	if c.Submissions != n {
		t.Errorf("submissions = %d, want %d", c.Submissions, n)
	}
	if c.DedupedLive+c.ResultHits != n-1 {
		t.Errorf("dedup accounting: live=%d resultHits=%d, want %d total", c.DedupedLive, c.ResultHits, n-1)
	}

	// Bit-identical to the library path: same wire encoding of a direct
	// AnalyzeAll with the same options (Workers matches the submission so
	// even the sweep counters agree).
	sys, reqs, err := arch.ParseSystem([]byte(model))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := arch.AnalyzeAll(sys, reqs, arch.Options{HorizonMS: 100}, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := wire.FromAllResult(direct)
	got := result(t, ts.URL, ids[0])
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Errorf("result %d: served %+v != direct %+v", i, got.Results[i], want.Results[i])
		}
	}

	// The satellite's second half: a repeated identical submission after
	// completion hits the result cache — zero additional explorations.
	again := submit(t, ts.URL, req)
	if again.JobID != ids[0] || again.Created || again.State != StateDone {
		t.Errorf("resubmission did not hit the result cache: %+v", again)
	}
	if c := s.Stats(); c.Explorations != 1 {
		t.Errorf("resubmission re-explored: explorations = %d", c.Explorations)
	}
}

// TestDistinctSubmissionsDistinctJobs guards the inverse property: changing
// any key ingredient (options, requirement subset) yields a different job.
func TestDistinctSubmissionsDistinctJobs(t *testing.T) {
	_, ts := testServer(t, Config{})
	model := tinyArchModel(t)
	a := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: model,
		Options: SubmitOptions{HorizonMS: 100}})
	b := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: model,
		Options: SubmitOptions{HorizonMS: 200}})
	c := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: model,
		Requirements: []string{"e2e"}, Options: SubmitOptions{HorizonMS: 100}})
	if a.JobID == b.JobID || a.JobID == c.JobID || b.JobID == c.JobID {
		t.Errorf("distinct submissions collapsed: %s %s %s", a.JobID, b.JobID, c.JobID)
	}
	await(t, ts.URL, a.JobID, time.Minute)
	await(t, ts.URL, b.JobID, time.Minute)
	await(t, ts.URL, c.JobID, time.Minute)
	// Inert option fields are canonicalized away: the seed only feeds rdf
	// shuffling, so a bfs submission differing only in seed is the SAME
	// work and must land on the same job.
	d := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: model,
		Options: SubmitOptions{HorizonMS: 100, Seed: 42}})
	if d.JobID != a.JobID {
		t.Errorf("bfs submissions differing only in seed got distinct jobs %s vs %s", d.JobID, a.JobID)
	}
}
