package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/wire"
)

// This file is the robustness suite of the service layer: overload shedding,
// degraded health, memory-grant admission, budget failures on the wire, and
// the blast-radius contract — one misbehaving submission fails alone while
// everything else keeps completing bit-identically.

// TestOversizedBody413 pins the request-size guard: a body over maxBodyBytes
// is rejected with 413 and a structured, machine-readable error — not a
// truncated-JSON parse error masquerading as a 400.
func TestOversizedBody413(t *testing.T) {
	_, ts := testServer(t, Config{})
	huge := `{"kind":"ta","model":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var body wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Code != "body_too_large" || body.Error == "" {
		t.Errorf("413 body = %+v, want code body_too_large with a message", body)
	}
	// An in-limit submission still works: the guard reads limit+1 bytes, it
	// does not truncate valid bodies near the boundary.
	sr := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	if st := await(t, ts.URL, sr.JobID, time.Minute); st.State != StateDone {
		t.Fatalf("follow-up job: %s (%s)", st.State, st.Error)
	}
}

// TestShedRetryAfterAndDegradedHealth drives the overload path end to end:
// with the job table saturated, /healthz flips to 503/degraded with the
// admission pressure readable, NEW work is shed with 429 plus jittered retry
// guidance, cached results keep being served, and everything recovers once
// the backlog drains.
func TestShedRetryAfterAndDegradedHealth(t *testing.T) {
	s, ts := testServer(t, Config{CPUTokens: 1, MaxActiveJobs: 1})

	// Finish one small job first so the result cache has an entry.
	cached := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	if st := await(t, ts.URL, cached.JobID, time.Minute); st.State != StateDone {
		t.Fatalf("cache-priming job: %s (%s)", st.State, st.Error)
	}

	// Saturate admission with a hopeless sweep.
	hog := submit(t, ts.URL, hugeSubmit(47, 0))
	awaitProgress(t, ts.URL, hog.JobID, 1000, time.Minute)

	// Health is now graded, not a flat 200.
	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while saturated: %d (%s), want 503", code, body)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != false || h["degraded"] != true {
		t.Errorf("healthz = %s, want ok:false degraded:true", body)
	}
	if h["active_jobs"] != float64(1) || h["cpu_saturation"] != float64(1) {
		t.Errorf("healthz pressure fields = %s", body)
	}
	if _, ok := h["result_cache_hit_rate"]; !ok {
		t.Errorf("healthz missing result_cache_hit_rate: %s", body)
	}

	// New work is shed: 429, Retry-After header, structured jittered backoff.
	reqBytes, _ := json.Marshal(hugeSubmit(53, 0))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(reqBytes))
	if err != nil {
		t.Fatal(err)
	}
	var shedBody wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&shedBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if shedBody.Code != "overloaded" || shedBody.RetryAfterMS <= 0 || shedBody.RetryJitterMS <= 0 {
		t.Errorf("shed body = %+v, want overloaded with retry guidance", shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	if c := s.Stats(); c.Shed == 0 {
		t.Errorf("shed counter not bumped: %+v", c)
	}

	// Degraded mode: the identical finished submission is still answered from
	// the result cache — only NEW work is rejected.
	again := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	if again.JobID != cached.JobID || again.Created || again.State != StateDone {
		t.Errorf("cached resubmission while saturated = %+v, want done/not-created", again)
	}

	// /metrics exposes the same pressure for scraping.
	_, mbody := getBody(t, ts.URL+"/metrics")
	for _, metric := range []string{"taserved_shed_total 1", "taserved_admission_queue_depth 0"} {
		if !bytes.Contains(mbody, []byte(metric)) {
			t.Errorf("metrics missing %q:\n%s", metric, mbody)
		}
	}

	// Drain and recover.
	postJSON(t, ts.URL+"/v1/jobs/"+hog.JobID+"/cancel", nil)
	await(t, ts.URL, hog.JobID, 30*time.Second)
	code, body = getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz after drain: %d (%s), want 200", code, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != true || h["degraded"] != false {
		t.Errorf("healthz after drain = %s, want ok:true", body)
	}
}

// TestBudgetFailuresOnWire pins the budget error names clients key on: a job
// that outgrows its memory budget fails with exactly MemoryBudgetExceeded,
// one that exceeds its state budget with exactly StateBudgetExceeded — both
// with partial progress readable, both leaving the server fully serviceable.
func TestBudgetFailuresOnWire(t *testing.T) {
	_, ts := testServer(t, Config{})

	mem := submit(t, ts.URL, SubmitRequest{
		Kind: "ta", Model: hugeTASource(59),
		Queries: []wire.TAQuery{{Kind: "deadlock"}},
		Options: SubmitOptions{MaxBytes: 16 << 10},
	})
	final := await(t, ts.URL, mem.JobID, 30*time.Second)
	if final.State != StateFailed || final.Error != errMemoryBudget {
		t.Fatalf("memory-budget job: %s (%q), want failed (MemoryBudgetExceeded)", final.State, final.Error)
	}
	if final.Progress.Stored == 0 {
		t.Errorf("memory-budget job lost partial progress: %+v", final.Progress)
	}

	st := submit(t, ts.URL, SubmitRequest{
		Kind: "ta", Model: hugeTASource(61),
		Queries: []wire.TAQuery{{Kind: "deadlock"}},
		Options: SubmitOptions{StateBudget: 500},
	})
	final = await(t, ts.URL, st.JobID, 30*time.Second)
	if final.State != StateFailed || final.Error != errStateBudget {
		t.Fatalf("state-budget job: %s (%q), want failed (StateBudgetExceeded)", final.State, final.Error)
	}
	if final.Progress.Stored == 0 {
		t.Errorf("state-budget job lost partial progress: %+v", final.Progress)
	}

	// The node survived both: a normal job still completes.
	ok := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: tinyArchModel(t),
		Options: SubmitOptions{HorizonMS: 100}})
	if got := await(t, ts.URL, ok.JobID, time.Minute); got.State != StateDone {
		t.Fatalf("follow-up job: %s (%s)", got.State, got.Error)
	}
}

// TestOverBudgetJobFailsAloneBitIdentical is the blast-radius acceptance
// check: an over-budget submission fails alone while a concurrent in-budget
// job completes with wire bytes bit-identical to the direct library run.
func TestOverBudgetJobFailsAloneBitIdentical(t *testing.T) {
	_, ts := testServer(t, Config{CPUTokens: 4, MemoryBudget: 1 << 30})

	// Direct library run of the in-budget workload, encoded exactly as the
	// service encodes results.
	src := tinyArchModel(t)
	sys, reqs, err := arch.ParseSystem([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := arch.AnalyzeAll(sys, reqs, arch.Options{HorizonMS: 100, QueueCap: 8},
		core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalArchBytes(t, encodeMust(t, wire.FromAllResult(direct)))

	// Launch the runaway job, then the in-budget one while it burns.
	bad := submit(t, ts.URL, SubmitRequest{
		Kind: "ta", Model: hugeTASource(67),
		Queries: []wire.TAQuery{{Kind: "deadlock"}},
		Options: SubmitOptions{MaxBytes: 16 << 10},
	})
	good := submit(t, ts.URL, SubmitRequest{Kind: "arch", Model: src,
		Options: SubmitOptions{HorizonMS: 100}})

	gf := await(t, ts.URL, good.JobID, time.Minute)
	if gf.State != StateDone {
		t.Fatalf("in-budget job: %s (%s)", gf.State, gf.Error)
	}
	bf := await(t, ts.URL, bad.JobID, 30*time.Second)
	if bf.State != StateFailed || bf.Error != errMemoryBudget {
		t.Fatalf("over-budget job: %s (%q), want failed (MemoryBudgetExceeded)", bf.State, bf.Error)
	}

	code, got := getBody(t, ts.URL+"/v1/jobs/"+good.JobID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, got)
	}
	if !bytes.Equal(canonicalArchBytes(t, got), want) {
		t.Errorf("served result bytes differ from direct run:\nserved: %s\ndirect: %s", got, want)
	}
}

func encodeMust(t *testing.T, v any) []byte {
	t.Helper()
	data, err := encodeWire(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// canonicalArchBytes re-encodes an arch result with the one inherently
// nondeterministic field (wall-clock duration) zeroed, so the byte comparison
// pins every verdict, counter, and encoding detail.
func canonicalArchBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var resp wire.ArchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("%v: %s", err, data)
	}
	resp.Stats.DurationNS = 0
	return encodeMust(t, resp)
}

// TestMemoryGrantAdmission pins the byte half of the admission controller: a
// grant that does not fit the remaining budget queues FIFO behind the holder
// even when CPU tokens are free, and is granted atomically on release.
func TestMemoryGrantAdmission(t *testing.T) {
	tok := newCPUTokens(4, 1000)
	if err := tok.acquire(nil, time.Time{}, 1, 700); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- tok.acquire(nil, time.Time{}, 1, 700) }()
	waitQueued(t, tok, 1)
	select {
	case err := <-errc:
		t.Fatalf("second grant landed with only 300 budget bytes free: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if got := tok.bytesInUse(); got != 700 {
		t.Fatalf("bytesInUse = %d, want 700", got)
	}
	tok.release(1, 700)
	if err := <-errc; err != nil {
		t.Fatalf("queued grant after release: %v", err)
	}
	if got := tok.bytesInUse(); got != 700 {
		t.Fatalf("bytesInUse after handoff = %d, want 700", got)
	}
	tok.release(1, 700)
	if tok.inUse() != 0 || tok.bytesInUse() != 0 {
		t.Fatalf("resources leaked: tokens=%d bytes=%d", tok.inUse(), tok.bytesInUse())
	}
}

// waitQueued polls until the admission queue reaches depth n.
func waitQueued(t *testing.T, tok *cpuTokens, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tok.waiting() < n {
		if time.Now().After(deadline) {
			t.Fatalf("admission queue never reached depth %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueuedCancelVersusGrant covers a queued job's cancellation racing its
// admission grant, in both deterministic orders and then as a true race under
// the race detector. The invariant in every interleaving: the caller sees
// either a clean grant (and releases it) or a clean abort (and the controller
// already took the grant back) — never a leaked token or byte.
func TestQueuedCancelVersusGrant(t *testing.T) {
	// Order 1: cancel strictly before any grant is possible.
	tok := newCPUTokens(1, 0)
	if err := tok.acquire(nil, time.Time{}, 1, 0); err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- tok.acquire(cancel, time.Time{}, 1, 0) }()
	waitQueued(t, tok, 1)
	close(cancel)
	if err := <-errc; !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("cancel-first: err = %v, want ErrCanceled", err)
	}
	tok.release(1, 0)
	if tok.inUse() != 0 {
		t.Fatalf("cancel-first leaked %d tokens", tok.inUse())
	}

	// Order 2: grant strictly before the cancel fires.
	if err := tok.acquire(nil, time.Time{}, 1, 0); err != nil {
		t.Fatal(err)
	}
	cancel = make(chan struct{})
	errc = make(chan error, 1)
	go func() { errc <- tok.acquire(cancel, time.Time{}, 1, 0) }()
	waitQueued(t, tok, 1)
	tok.release(1, 0)
	if err := <-errc; err != nil {
		t.Fatalf("grant-first: err = %v, want nil", err)
	}
	close(cancel) // late cancel of an already-granted waiter is a no-op
	tok.release(1, 0)
	if tok.inUse() != 0 {
		t.Fatalf("grant-first leaked %d tokens", tok.inUse())
	}

	// True race: release and cancel fire concurrently, repeatedly. Whichever
	// wins inside acquire, the accounting must return to zero.
	for i := 0; i < 200; i++ {
		tok := newCPUTokens(1, 64)
		if err := tok.acquire(nil, time.Time{}, 1, 64); err != nil {
			t.Fatal(err)
		}
		cancel := make(chan struct{})
		errc := make(chan error, 1)
		go func() { errc <- tok.acquire(cancel, time.Time{}, 1, 64) }()
		waitQueued(t, tok, 1)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); tok.release(1, 64) }()
		go func() { defer wg.Done(); close(cancel) }()
		wg.Wait()
		if err := <-errc; err == nil {
			tok.release(1, 64)
		} else if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
		if tok.inUse() != 0 || tok.bytesInUse() != 0 {
			t.Fatalf("iteration %d leaked: tokens=%d bytes=%d", i, tok.inUse(), tok.bytesInUse())
		}
	}
}

// TestMemoryGrantDefaultsAndClamps pins normalize's grant resolution: a
// declared max_bytes is clamped to the global budget, and an undeclared one
// defaults to the worker-proportional fair share.
func TestMemoryGrantDefaultsAndClamps(t *testing.T) {
	s := New(Config{CPUTokens: 4, MemoryBudget: 4000})
	model := tinyArchModel(t)
	for _, tc := range []struct {
		name    string
		opts    SubmitOptions
		want    int64
		workers int
	}{
		{"default fair share", SubmitOptions{HorizonMS: 100}, 1000, 1},
		{"fair share scales with workers", SubmitOptions{HorizonMS: 100, Workers: 2}, 2000, 2},
		{"declared passes through", SubmitOptions{HorizonMS: 100, MaxBytes: 1500}, 1500, 1},
		{"declared clamped to budget", SubmitOptions{HorizonMS: 100, MaxBytes: 1 << 40}, 4000, 1},
		{"negative treated as unset", SubmitOptions{HorizonMS: 100, MaxBytes: -5}, 1000, 1},
	} {
		spec, _, herr := s.normalize(&SubmitRequest{Kind: "arch", Model: model, Options: tc.opts})
		if herr != nil {
			t.Fatalf("%s: %v", tc.name, herr)
		}
		if spec.MaxBytes != tc.want || spec.Workers != tc.workers {
			t.Errorf("%s: grant=%d workers=%d, want %d/%d",
				tc.name, spec.MaxBytes, spec.Workers, tc.want, tc.workers)
		}
	}
	// Without a server budget, declared bytes pass through unclamped (pure
	// per-job core budget, no admission hold).
	s2 := New(Config{CPUTokens: 4})
	spec, _, herr := s2.normalize(&SubmitRequest{Kind: "arch", Model: model,
		Options: SubmitOptions{HorizonMS: 100, MaxBytes: 1 << 40}})
	if herr != nil {
		t.Fatal(herr)
	}
	if spec.MaxBytes != 1<<40 {
		t.Errorf("unmetered server clamped max_bytes to %d", spec.MaxBytes)
	}
}
