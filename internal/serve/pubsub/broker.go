// Package pubsub implements the serve backend seams (Dispatch, ResultCache)
// over a publish/subscribe broker, in the thin-adapter style: the broker
// knows nothing about jobs, the adapters translate the manager's routing and
// replication operations onto three topic families —
//
//	dispatch.<node>   envelopes addressed to the node owning a content hash
//	complete.<key>    the terminal event of one content key
//	completions       the cluster-wide replication feed every cache consumes
//
// Ownership is consistent hashing over the member list (ring.go): every node
// derives the same owner for a key without coordination. The in-process
// memory broker below is the test and single-process implementation; any
// transport with publish, subscribe, last-message retention, and a close
// signal can replace it.
package pubsub

import (
	"errors"
	"sync"
)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("pubsub: broker is closed")

// Broker is the minimal transport contract the adapters need. Delivery is
// at-least-once from the subscriber's point of view: a topic retains its last
// message and replays it to new subscribers (join-after-publish), so a
// handler may see a message twice and must be idempotent.
type Broker interface {
	// Publish delivers msg to every current subscriber of topic and retains
	// it as the topic's last message for future subscribers.
	Publish(topic string, msg []byte) error
	// Subscribe registers fn for topic messages, replaying the retained
	// message first if one exists. The returned cancel releases the
	// subscription.
	Subscribe(topic string, fn func(msg []byte)) (cancel func(), err error)
	// Closed returns a channel closed when the broker shuts down — the
	// transport-death signal Watch turns into a synthetic failed completion.
	Closed() <-chan struct{}
	// Close shuts the broker down; subsequent publishes and subscribes fail
	// with ErrClosed.
	Close() error
}

// memBroker is the in-process Broker: a topic map under one mutex, handlers
// invoked synchronously but outside the lock (so a handler may publish —
// e.g. an overloaded owner announcing a rejection from inside its envelope
// handler — without deadlocking).
type memBroker struct {
	mu     sync.Mutex
	topics map[string]*memTopic
	nextID int
	closed chan struct{}
}

type memTopic struct {
	subs     map[int]func([]byte)
	retained []byte
	hasMsg   bool
}

// NewMemBroker returns an empty in-process broker.
func NewMemBroker() Broker {
	return &memBroker{topics: make(map[string]*memTopic), closed: make(chan struct{})}
}

func (b *memBroker) isClosed() bool {
	select {
	case <-b.closed:
		return true
	default:
		return false
	}
}

func (b *memBroker) topicLocked(name string) *memTopic {
	t := b.topics[name]
	if t == nil {
		t = &memTopic{subs: make(map[int]func([]byte))}
		b.topics[name] = t
	}
	return t
}

func (b *memBroker) Publish(topic string, msg []byte) error {
	b.mu.Lock()
	if b.isClosed() {
		b.mu.Unlock()
		return ErrClosed
	}
	t := b.topicLocked(topic)
	t.retained = msg
	t.hasMsg = true
	fns := make([]func([]byte), 0, len(t.subs))
	for _, fn := range t.subs {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(msg)
	}
	return nil
}

func (b *memBroker) Subscribe(topic string, fn func([]byte)) (func(), error) {
	b.mu.Lock()
	if b.isClosed() {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	t := b.topicLocked(topic)
	id := b.nextID
	b.nextID++
	t.subs[id] = fn
	replay := t.retained
	hasMsg := t.hasMsg
	b.mu.Unlock()
	// Join-after-publish: a watcher that subscribes after the completion was
	// announced still hears it. Replayed outside the lock; a concurrent
	// publish may then deliver twice, which the at-least-once contract
	// already requires handlers to tolerate.
	if hasMsg {
		fn(replay)
	}
	cancel := func() {
		b.mu.Lock()
		if t := b.topics[topic]; t != nil {
			delete(t.subs, id)
		}
		b.mu.Unlock()
	}
	return cancel, nil
}

func (b *memBroker) Closed() <-chan struct{} { return b.closed }

func (b *memBroker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.isClosed() {
		close(b.closed)
		b.topics = make(map[string]*memTopic)
	}
	return nil
}

// Named brokers: a process-global registry so taserved nodes in one process
// (tests, the cluster smoke binary) can share a broker by URL. "mem://x" and
// "mem://y" name independent brokers; a name is created on first use.
var (
	namedMu sync.Mutex
	named   = make(map[string]Broker)
)

// NamedBroker returns the shared in-process broker for name, creating it if
// needed. A closed named broker stays closed; Reset-style tests should pick
// fresh names instead.
func NamedBroker(name string) Broker {
	namedMu.Lock()
	defer namedMu.Unlock()
	b := named[name]
	if b == nil {
		b = NewMemBroker()
		named[name] = b
	}
	return b
}
