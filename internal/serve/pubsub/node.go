package pubsub

import (
	"container/list"
	"encoding/json"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/wire"
)

// Dispatcher implements serve.Dispatch over a Broker: consistent-hash
// ownership, envelopes on dispatch.<node>, completions on complete.<key>
// plus the global completions feed.
type Dispatcher struct {
	broker Broker
	self   string
	nodes  []string
	ring   *ring

	// Latency histograms, nil until InstrumentMetrics wires them in. The
	// manager calls it during construction — before this dispatcher carries
	// any of its traffic — so the operation paths read them unguarded.
	sendHist     *obs.Histogram
	announceHist *obs.Histogram
	adoptHist    *obs.Histogram

	mu      sync.Mutex
	cancels []func()
}

// InstrumentMetrics registers the dispatcher's latency families on the
// manager's registry (the serve metricsInstrumenter seam). Call before the
// dispatcher serves traffic.
func (d *Dispatcher) InstrumentMetrics(r *obs.Registry) {
	bounds := []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 5}
	d.sendHist = r.Histogram("taserved_pubsub_dispatch_seconds",
		"Envelope publish latency to the owning node's dispatch topic.", bounds)
	d.announceHist = r.Histogram("taserved_pubsub_announce_seconds",
		"Completion announce latency (key topic plus the global feed).", bounds)
	d.adoptHist = r.Histogram("taserved_pubsub_adopt_seconds",
		"Watched-completion adoption latency: decode plus handler.", bounds)
}

var _ serve.Dispatch = (*Dispatcher)(nil)

// Cache implements serve.ResultCache: a bounded LRU of done completion
// events keyed by content hash, fed by the cluster's completions topic (and
// directly by the manager adopting remote results). Only State == done
// events are stored — failures are recomputed on resubmission, exactly like
// the single-node job table.
type Cache struct {
	mu    sync.Mutex
	max   int
	items map[string]*list.Element
	order *list.List // of *cacheItem, front = most recently used
}

type cacheItem struct {
	key string
	ev  api.CompletionEvent
}

var _ serve.ResultCache = (*Cache)(nil)

// NewNode wires one cluster node's backends: a Dispatcher routing over the
// members {nodeID} ∪ peers, and a Cache replicating every done result
// announced anywhere in the cluster (bounded LRU of cacheSize entries,
// default 256). All nodes sharing the broker and the same member list agree
// on ownership.
func NewNode(b Broker, nodeID string, peers []string, cacheSize int) (*Dispatcher, *Cache, error) {
	members := append([]string{nodeID}, peers...)
	seen := map[string]bool{}
	uniq := members[:0]
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	d := &Dispatcher{broker: b, self: nodeID, nodes: uniq, ring: newRing(uniq)}
	c := NewCache(cacheSize)
	cancel, err := b.Subscribe("completions", func(msg []byte) {
		var ev api.CompletionEvent
		if json.Unmarshal(msg, &ev) == nil {
			c.Put(ev)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	d.cancels = append(d.cancels, cancel)
	return d, c, nil
}

func (d *Dispatcher) Self() string { return d.self }

func (d *Dispatcher) Nodes() []string {
	out := make([]string, len(d.nodes))
	copy(out, d.nodes)
	return out
}

func (d *Dispatcher) Owner(key string) string { return d.ring.owner(key) }

func (d *Dispatcher) Send(owner string, envelope []byte) error {
	start := time.Now()
	err := d.broker.Publish("dispatch."+owner, envelope)
	if d.sendHist != nil {
		d.sendHist.ObserveSince(start)
	}
	return err
}

func (d *Dispatcher) Watch(key string, fn func(api.CompletionEvent)) (func(), error) {
	cancelSub, err := d.broker.Subscribe("complete."+key, func(msg []byte) {
		start := time.Now()
		var ev api.CompletionEvent
		if json.Unmarshal(msg, &ev) == nil {
			fn(ev)
			if d.adoptHist != nil {
				d.adoptHist.ObserveSince(start)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	// Transport-death watchdog: a watcher must never hang on a broker that
	// went away, so broker close synthesizes a failed completion with the
	// named dispatch-failure code (the manager falls back to computing
	// locally on it).
	stop := make(chan struct{})
	go func() {
		select {
		case <-d.broker.Closed():
			fn(api.CompletionEvent{Key: key, Node: d.self,
				State: api.StateFailed, Error: wire.CodeDispatchFailed})
		case <-stop:
		}
	}()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			close(stop)
			cancelSub()
		})
	}
	d.track(cancel)
	return cancel, nil
}

func (d *Dispatcher) Announce(ev api.CompletionEvent) error {
	msg, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	start := time.Now()
	defer func() {
		if d.announceHist != nil {
			d.announceHist.ObserveSince(start)
		}
	}()
	if err := d.broker.Publish("complete."+ev.Key, msg); err != nil {
		return err
	}
	return d.broker.Publish("completions", msg)
}

func (d *Dispatcher) Receive(fn func(envelope []byte)) error {
	cancel, err := d.broker.Subscribe("dispatch."+d.self, fn)
	if err != nil {
		return err
	}
	d.track(cancel)
	return nil
}

// Close releases this node's subscriptions. The broker itself is shared and
// stays up for the other nodes.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	cancels := d.cancels
	d.cancels = nil
	d.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return nil
}

func (d *Dispatcher) track(cancel func()) {
	d.mu.Lock()
	d.cancels = append(d.cancels, cancel)
	d.mu.Unlock()
}

// NewCache returns an empty replicated-result cache holding at most max
// entries (default 256).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{max: max, items: make(map[string]*list.Element), order: list.New()}
}

func (c *Cache) Get(key string) (api.CompletionEvent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.items[key]
	if el == nil {
		return api.CompletionEvent{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).ev, true
}

func (c *Cache) Put(ev api.CompletionEvent) {
	if ev.State != api.StateDone || ev.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.items[ev.Key]; el != nil {
		// Duplicate announcement of an immutable result: refresh recency,
		// keep the first bytes (they are identical by the wire invariant).
		c.order.MoveToFront(el)
		return
	}
	c.items[ev.Key] = c.order.PushFront(&cacheItem{key: ev.Key, ev: ev})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		delete(c.items, oldest.Value.(*cacheItem).key)
		c.order.Remove(oldest)
	}
}

func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
