package pubsub_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/serve/pubsub"
	"repro/internal/wire"
)

// Delivery-semantics tests for the in-process broker and the adapters on top
// of it: at-least-once delivery with duplicates, retention for late joiners,
// and the transport-death paths (broker down at dispatch time, broker dying
// mid-wait) degrading to local compute instead of hanging.

// TestWatchJoinAfterPublish announces a completion before anyone watches the
// key: a later Watch must still hear it (last-message retention), which is
// what lets a proxy created after the owner finished resolve immediately.
func TestWatchJoinAfterPublish(t *testing.T) {
	broker := pubsub.NewMemBroker()
	d, _, err := pubsub.NewNode(broker, "n0", []string{"n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev := api.CompletionEvent{Key: "k1", Node: "n1", State: api.StateDone, Result: []byte("r")}
	if err := d.Announce(ev); err != nil {
		t.Fatal(err)
	}
	got := make(chan api.CompletionEvent, 1)
	cancel, err := d.Watch("k1", func(ev api.CompletionEvent) {
		select {
		case got <- ev:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	select {
	case g := <-got:
		if g.Key != "k1" || g.State != api.StateDone || string(g.Result) != "r" {
			t.Fatalf("late watcher got %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late watcher never received the retained completion")
	}
}

// TestWatchAtLeastOnceDuplicates announces the same completion repeatedly:
// the watcher hears every delivery (the broker does not dedupe), which is
// exactly why the manager's event handling must be idempotent.
func TestWatchAtLeastOnceDuplicates(t *testing.T) {
	broker := pubsub.NewMemBroker()
	d, _, err := pubsub.NewNode(broker, "n0", []string{"n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	cancel, err := d.Watch("k1", func(api.CompletionEvent) { calls.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	ev := api.CompletionEvent{Key: "k1", Node: "n1", State: api.StateDone, Result: []byte("r")}
	for i := 0; i < 3; i++ {
		if err := d.Announce(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got < 3 {
		t.Fatalf("watcher saw %d deliveries of 3 announcements", got)
	}
}

// TestWatchBrokerDeathSynthesizesFailure closes the broker under a live
// watcher: the watcher must receive a synthetic failed completion carrying
// the named dispatch-failure code rather than waiting forever.
func TestWatchBrokerDeathSynthesizesFailure(t *testing.T) {
	broker := pubsub.NewMemBroker()
	d, _, err := pubsub.NewNode(broker, "n0", []string{"n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan api.CompletionEvent, 1)
	cancel, err := d.Watch("k1", func(ev api.CompletionEvent) {
		select {
		case got <- ev:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	_ = broker.Close()
	select {
	case ev := <-got:
		if ev.State != api.StateFailed || ev.Error != wire.CodeDispatchFailed {
			t.Fatalf("broker death delivered %+v, want failed/%s", ev, wire.CodeDispatchFailed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher hung on a dead broker")
	}
}

// manyKeysRequest returns the i-th of a family of distinct tiny submissions
// (distinct horizons → distinct content keys), so at least one key lands on
// any given ring member.
func manyKeysRequest(t *testing.T, model string, i int) *api.SubmitRequest {
	t.Helper()
	return &api.SubmitRequest{Kind: "arch", Model: model,
		Options: api.SubmitOptions{HorizonMS: int64(100 + i)}}
}

// TestBrokerDownFallsBackToLocalCompute kills the broker after the node came
// up: envelopes for peer-owned keys cannot be sent, so the manager must
// compute them locally (under a freshly acquired grant) instead of failing
// or hanging. Every job completes; the fallback counter records the degraded
// dispatches.
func TestBrokerDownFallsBackToLocalCompute(t *testing.T) {
	broker := pubsub.NewMemBroker()
	d, c, err := pubsub.NewNode(broker, "n0", []string{"n0", "ghost"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{CPUTokens: 2, Dispatch: d, Results: c})
	t.Cleanup(func() { _ = s.Shutdown(10 * time.Second) })
	_ = broker.Close()

	model := readFile(t, "../../../testdata/tiny.json")
	const keys = 32
	peerOwned := 0
	for i := 0; i < keys; i++ {
		req := manyKeysRequest(t, model, i)
		resp, err := s.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if d.Owner(resp.JobID) != "n0" {
			peerOwned++
		}
	}
	if peerOwned == 0 {
		t.Fatal("ring assigned no key to the peer; test exercises nothing")
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st := s.Stats()
		if st.DispatchFallbacks >= int64(peerOwned) && st.Explorations >= keys {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not drain under a dead broker: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBrokerDiesMidWait dispatches to a peer that will never answer (it has
// no manager), then kills the broker while proxies wait: the synthetic
// dispatch-failure event must flip every waiting proxy to local compute — no
// hang, no lost job.
func TestBrokerDiesMidWait(t *testing.T) {
	broker := pubsub.NewMemBroker()
	d, c, err := pubsub.NewNode(broker, "n0", []string{"n0", "ghost"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{CPUTokens: 2, Dispatch: d, Results: c})
	t.Cleanup(func() { _ = s.Shutdown(10 * time.Second) })

	model := readFile(t, "../../../testdata/tiny.json")
	const keys = 32
	dispatched := 0
	for i := 0; i < keys; i++ {
		req := manyKeysRequest(t, model, i)
		resp, err := s.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if d.Owner(resp.JobID) == "ghost" {
			dispatched++
		}
	}
	if dispatched == 0 {
		t.Fatal("ring assigned no key to the ghost peer; test exercises nothing")
	}
	// The ghost-owned proxies are now parked waiting for completions that
	// will never come. Kill the transport under them.
	_ = broker.Close()
	deadline := time.Now().Add(time.Minute)
	for {
		st := s.Stats()
		if st.Explorations >= keys {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxies hung after broker death: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.DispatchFallbacks < int64(dispatched) {
		t.Errorf("only %d fallbacks for %d ghost-owned keys", st.DispatchFallbacks, dispatched)
	}
}

// TestReceiveDownRoutesLocally constructs the manager against an
// already-dead broker: Receive fails at startup, so the node must disable
// routing entirely and compute everything locally — a frontend that cannot
// hear envelopes must not advertise ownership.
func TestReceiveDownRoutesLocally(t *testing.T) {
	broker := pubsub.NewMemBroker()
	d, c, err := pubsub.NewNode(broker, "n0", []string{"n0", "ghost"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = broker.Close()
	s := serve.New(serve.Config{CPUTokens: 2, Dispatch: d, Results: c})
	t.Cleanup(func() { _ = s.Shutdown(10 * time.Second) })

	model := readFile(t, "../../../testdata/tiny.json")
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(manyKeysRequest(t, model, i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st := s.Stats()
		if st.Explorations >= 8 {
			if st.Dispatched != 0 || st.DispatchFallbacks != 0 {
				t.Fatalf("dead-receive node still routed: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not run on dead-receive node: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
