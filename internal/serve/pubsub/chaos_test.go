//go:build faultinject

package pubsub_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/serve/api"
)

// Chaos coverage for the dispatch path (CI job "chaos", -tags faultinject):
// faults armed at the serve/dispatch site — fired as a proxy job starts
// routing — must keep the blast radius at one job and one node, with the
// cluster still answering correctly.

// learnJobID derives a submission's content-addressed job id on a throwaway
// single-node server (content addressing is deterministic and backend-free),
// so cluster chaos tests can pick the NON-owner frontend deterministically —
// submitting to the owner first would replicate the result and short-circuit
// the proxy path the fault targets.
func learnJobID(t *testing.T, req *api.SubmitRequest) string {
	t.Helper()
	s := serve.New(serve.Config{CPUTokens: 2})
	t.Cleanup(func() { _ = s.Shutdown(10 * time.Second) })
	resp, err := s.Submit(req)
	if err != nil {
		t.Fatalf("learning job id: %v", err)
	}
	return resp.JobID
}

// nonOwnerOf picks a cluster frontend that does not own the key.
func nonOwnerOf(t *testing.T, nodes []*clusterNode, key string) *clusterNode {
	t.Helper()
	owner := nodes[0].dispatch.Owner(key)
	for _, n := range nodes {
		if n.dispatch.Self() != owner {
			return n
		}
	}
	t.Fatal("every node owns the key")
	return nil
}

// TestChaosDispatchErrorFallsBack injects an error into the routing step:
// the affected frontend must degrade to computing locally (correct verdicts,
// fallback counted) instead of failing the job.
func TestChaosDispatchErrorFallsBack(t *testing.T) {
	defer faultinject.Reset()
	req := &api.SubmitRequest{Kind: "arch", Model: readFile(t, "../../../testdata/tiny.json"),
		Options: api.SubmitOptions{HorizonMS: 100}}
	id := learnJobID(t, req)
	_, nodes := newCluster(t, 2, serve.Config{CPUTokens: 2})
	proxy := nonOwnerOf(t, nodes, id)

	faultinject.Set("serve/dispatch", faultinject.Fault{Kind: faultinject.KindError})
	defer faultinject.Clear("serve/dispatch")

	sr, st := submitAwait(t, proxy, req, time.Minute)
	if sr.JobID != id {
		t.Fatalf("cluster derived job id %s, learned %s", sr.JobID, id)
	}
	if st.State != api.StateDone {
		t.Fatalf("non-owner under dispatch fault: %s (%s)", st.State, st.Error)
	}
	if fb := proxy.server.Stats().DispatchFallbacks; fb != 1 {
		t.Errorf("dispatch fault produced %d fallbacks, want 1", fb)
	}
	if got := totalExplorations(nodes); got != 1 {
		t.Errorf("degraded frontend ran %d explorations, want 1 (local fallback)", got)
	}
}

// TestChaosDispatchPanicContained injects a panic into the routing step: the
// proxy job fails alone — contained, grant-free, table slot recycled — and a
// resubmission succeeds through the recovered path (served from the owner's
// retained completion or the replicated cache).
func TestChaosDispatchPanicContained(t *testing.T) {
	defer faultinject.Reset()
	req := &api.SubmitRequest{Kind: "arch", Model: readFile(t, "../../../testdata/tiny.json"),
		Options: api.SubmitOptions{HorizonMS: 100}}
	id := learnJobID(t, req)
	_, nodes := newCluster(t, 2, serve.Config{CPUTokens: 2})
	proxy := nonOwnerOf(t, nodes, id)

	faultinject.Set("serve/dispatch", faultinject.Fault{Kind: faultinject.KindPanic})
	_, st := submitAwait(t, proxy, req, time.Minute)
	faultinject.Clear("serve/dispatch")
	if st.State != api.StateFailed || !strings.Contains(st.Error, "job panicked") {
		t.Fatalf("proxy under injected panic: %s (%q), want failed (job panicked)", st.State, st.Error)
	}
	// The panic fired before routing: no envelope reached the owner, no
	// sweep ran anywhere.
	if got := totalExplorations(nodes); got != 0 {
		t.Errorf("panicked proxy cost %d explorations, want 0", got)
	}

	// The failed table entry is replaced; the retry routes normally and the
	// owner computes.
	_, st = submitAwait(t, proxy, req, time.Minute)
	if st.State != api.StateDone {
		t.Fatalf("retry after contained dispatch panic: %s (%s)", st.State, st.Error)
	}
	if got := totalExplorations(nodes); got != 1 {
		t.Errorf("cluster ran %d explorations for the retry, want 1", got)
	}
	// Both frontends now serve the same bytes.
	a, err := nodes[0].client.Result(context.Background(), st.JobID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nodes[1].client.Result(context.Background(), st.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("frontends serve different bytes after recovery")
	}
}
