package pubsub_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/icrns"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/serve/client"
	"repro/internal/serve/pubsub"
	"repro/internal/wire"
)

// These tests are the cluster extension of the serve package's HTTP oracle:
// an N-node in-process fleet sharing one memory broker, where every frontend
// must hand back byte-identical wire results no matter which node computed
// them, and a cross-node thundering herd must cost exactly one exploration
// cluster-wide.

type clusterNode struct {
	server   *serve.Server
	base     string
	dispatch *pubsub.Dispatcher
	cache    *pubsub.Cache
	client   *client.Client
}

// newCluster boots n managers over one shared broker, each wearing its HTTP
// facade on an httptest listener.
func newCluster(t *testing.T, n int, cfg serve.Config) (pubsub.Broker, []*clusterNode) {
	t.Helper()
	broker := pubsub.NewMemBroker()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
	}
	nodes := make([]*clusterNode, n)
	for i, id := range ids {
		d, c, err := pubsub.NewNode(broker, id, ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		nodeCfg := cfg
		nodeCfg.Dispatch = d
		nodeCfg.Results = c
		s := serve.New(nodeCfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			_ = s.Shutdown(10 * time.Second)
		})
		nodes[i] = &clusterNode{server: s, base: ts.URL, dispatch: d, cache: c,
			client: client.New(ts.URL, nil)}
	}
	return broker, nodes
}

func totalExplorations(nodes []*clusterNode) int64 {
	var sum int64
	for _, n := range nodes {
		sum += n.server.Stats().Explorations
	}
	return sum
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// submitAwait pushes one submission through a node's typed client and waits
// for the terminal state.
func submitAwait(t *testing.T, n *clusterNode, req *api.SubmitRequest, timeout time.Duration) (*api.SubmitResponse, *api.StatusResponse) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	sr, err := n.client.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := n.client.Await(ctx, sr.JobID, 0)
	if err != nil {
		t.Fatalf("await %s: %v", sr.JobID, err)
	}
	return sr, st
}

// TestClusterOracleCaseStudyModels is the fleet version of the PR 5 HTTP
// oracle: the paper's AL-combination case-study cells submitted to every node
// of a three-node cluster must come back byte-for-byte identical from all
// frontends — the bytes of the one node that computed, relayed or replicated
// verbatim — and semantically identical to a direct arch.AnalyzeAll call.
// One submission fan-out costs one exploration cluster-wide.
func TestClusterOracleCaseStudyModels(t *testing.T) {
	_, nodes := newCluster(t, 3, serve.Config{CPUTokens: 2})
	names := []string{icrns.ReqHandleTMC, icrns.ReqAddressLookup}
	horizons := map[string]int64{}
	for _, n := range names {
		horizons[n] = icrns.HorizonMS(n)
	}
	var wantExplorations int64
	for _, col := range []icrns.Column{icrns.ColPO, icrns.ColPNO} {
		sys, reqmap := icrns.Build(icrns.ComboAL, col, icrns.DefaultConfig())
		reqs := make([]*arch.Requirement, len(names))
		for i, n := range names {
			reqs[i] = reqmap[n]
		}
		src, err := arch.MarshalSystem(sys, reqs)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := arch.AnalyzeAll(sys, reqs,
			arch.Options{HorizonMSFor: func(r *arch.Requirement) int64 { return horizons[r.Name] }},
			core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := wire.FromAllResult(direct)
		wantExplorations++

		req := &api.SubmitRequest{
			Kind:         "arch",
			Model:        string(src),
			Requirements: names,
			Options:      api.SubmitOptions{HorizonMSByReq: horizons, Workers: 1},
		}
		var bodies [][]byte
		for i, n := range nodes {
			_, st := submitAwait(t, n, req, 2*time.Minute)
			if st.State != api.StateDone {
				t.Fatalf("col %v node %d: %s (%s)", col, i, st.State, st.Error)
			}
			body, err := n.client.Result(context.Background(), st.JobID)
			if err != nil {
				t.Fatalf("col %v node %d result: %v", col, i, err)
			}
			bodies = append(bodies, body)
		}
		// The replication invariant, literally: every frontend serves the
		// owner's bytes, duration fields included.
		for i := 1; i < len(bodies); i++ {
			if !bytes.Equal(bodies[0], bodies[i]) {
				t.Errorf("col %v: node %d result bytes differ from node 0", col, i)
			}
		}
		// And those bytes agree with the direct library call on everything
		// but wall-clock duration.
		var got wire.ArchResponse
		if err := json.Unmarshal(bodies[0], &got); err != nil {
			t.Fatal(err)
		}
		got.Stats.DurationNS = 0
		ref := want
		ref.Stats.DurationNS = 0
		gotJSON, _ := json.Marshal(got)
		refJSON, _ := json.Marshal(ref)
		if !bytes.Equal(gotJSON, refJSON) {
			t.Errorf("col %v: served %s != direct %s", col, gotJSON, refJSON)
		}
	}
	if got := totalExplorations(nodes); got != wantExplorations {
		t.Errorf("cluster ran %d explorations for %d distinct submissions", got, wantExplorations)
	}
}

// TestClusterThunderingHerd hammers all three frontends with the same ta
// submission concurrently: cluster-wide singleflight must collapse the herd
// onto ONE exploration on the key's owner, with every waiter receiving the
// same bytes. Run under -race in CI.
func TestClusterThunderingHerd(t *testing.T) {
	_, nodes := newCluster(t, 3, serve.Config{CPUTokens: 2})
	model := readFile(t, "../../../testdata/tiny.ta")
	req := &api.SubmitRequest{
		Kind:    "ta",
		Model:   model,
		Queries: []wire.TAQuery{{Kind: "reach", Pred: "RAD.busy"}, {Kind: "deadlock"}},
	}

	const perNode = 4
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		errs   []error
	)
	for _, n := range nodes {
		for g := 0; g < perNode; g++ {
			wg.Add(1)
			go func(n *clusterNode) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				sr, err := n.client.Submit(ctx, req)
				if err == nil {
					_, err = n.client.Await(ctx, sr.JobID, 0)
				}
				var body []byte
				if err == nil {
					body, err = n.client.Result(ctx, sr.JobID)
				}
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					bodies = append(bodies, body)
				}
				mu.Unlock()
			}(n)
		}
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatalf("herd submission: %v", err)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("herd waiter %d got different bytes", i)
		}
	}
	if got := totalExplorations(nodes); got != 1 {
		t.Errorf("cluster-wide herd ran %d explorations, want 1", got)
	}
	// The non-owner frontends answered with peer-computed bytes; their
	// /metrics must say so.
	var remote int64
	for _, n := range nodes {
		m, err := n.client.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		v, ok := client.Metric(m, "taserved_remote_hits_total")
		if !ok {
			t.Fatalf("node %s metrics missing taserved_remote_hits_total", n.dispatch.Self())
		}
		remote += v
	}
	if remote == 0 {
		t.Error("no node reported remote hits after a cross-node herd")
	}
}

// TestReplicatedCacheServesAnyFrontend completes a job via one frontend and
// then asks the others: with the result replicated on the completions feed,
// every node must answer done immediately — no second exploration, no
// dispatch round-trip — with the owner's exact bytes.
func TestReplicatedCacheServesAnyFrontend(t *testing.T) {
	_, nodes := newCluster(t, 3, serve.Config{CPUTokens: 2})
	req := &api.SubmitRequest{Kind: "arch", Model: readFile(t, "../../../testdata/tiny.json"),
		Options: api.SubmitOptions{HorizonMS: 100}}

	sr, st := submitAwait(t, nodes[0], req, time.Minute)
	if st.State != api.StateDone {
		t.Fatalf("seed job: %s (%s)", st.State, st.Error)
	}
	want, err := nodes[0].client.Result(context.Background(), sr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if got := totalExplorations(nodes); got != 1 {
		t.Fatalf("seed cost %d explorations, want 1", got)
	}
	// Every replica heard the announcement.
	for i, n := range nodes {
		if n.cache.Len() != 1 {
			t.Errorf("node %d replicated %d results, want 1", i, n.cache.Len())
		}
	}
	for i, n := range nodes[1:] {
		sr2, err := n.client.Submit(context.Background(), req)
		if err != nil {
			t.Fatalf("node %d resubmit: %v", i+1, err)
		}
		if sr2.JobID != sr.JobID || sr2.State != api.StateDone || sr2.Created {
			t.Fatalf("node %d resubmit = %+v, want done cache hit on %s", i+1, sr2, sr.JobID)
		}
		got, err := n.client.Result(context.Background(), sr2.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("node %d served different bytes than the computing node", i+1)
		}
	}
	if got := totalExplorations(nodes); got != 1 {
		t.Errorf("cache-served resubmissions cost explorations: total %d, want 1", got)
	}
}

// TestErrorsNeverReplicated fails a job on its owner and checks the failure
// relays with its exact wire code but never enters any replica: resubmission
// recomputes from scratch.
func TestErrorsNeverReplicated(t *testing.T) {
	_, nodes := newCluster(t, 3, serve.Config{CPUTokens: 2})
	req := &api.SubmitRequest{Kind: "arch", Model: readFile(t, "../../../testdata/tiny.json"),
		Options: api.SubmitOptions{HorizonMS: 100, StateBudget: 1}}

	sr, st := submitAwait(t, nodes[0], req, time.Minute)
	if st.State != api.StateFailed || st.Error != wire.CodeStateBudget {
		t.Fatalf("budget job: %s (%q), want failed %q", st.State, st.Error, wire.CodeStateBudget)
	}
	owner := nodes[0].dispatch.Owner(sr.JobID)
	// The relayed failure reports the same code on a frontend that did not
	// run the sweep (pick one that is not the owner, if the submitter was).
	var other *clusterNode
	for _, n := range nodes[1:] {
		if n.dispatch.Self() != owner {
			other = n
			break
		}
	}
	_, st2 := submitAwait(t, other, req, time.Minute)
	if st2.State != api.StateFailed || st2.Error != wire.CodeStateBudget {
		t.Fatalf("relayed budget failure: %s (%q), want failed %q", st2.State, st2.Error, wire.CodeStateBudget)
	}
	for i, n := range nodes {
		if n.cache.Len() != 0 {
			t.Errorf("node %d replicated a failure (%d cached results)", i, n.cache.Len())
		}
	}
	// Each attempt recomputed: failures are never served from anywhere.
	if got := totalExplorations(nodes); got != 2 {
		t.Errorf("two failed submissions cost %d explorations, want 2 (recompute, never cache)", got)
	}
}

// TestDuplicateCompletionIdempotent re-announces a finished job's completion
// event: at-least-once delivery means every layer — watchers, replicas, the
// job table — must absorb duplicates without state damage.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	_, nodes := newCluster(t, 2, serve.Config{CPUTokens: 2})
	req := &api.SubmitRequest{Kind: "arch", Model: readFile(t, "../../../testdata/tiny.json"),
		Options: api.SubmitOptions{HorizonMS: 100}}
	sr, st := submitAwait(t, nodes[0], req, time.Minute)
	if st.State != api.StateDone {
		t.Fatalf("seed job: %s (%s)", st.State, st.Error)
	}
	want, err := nodes[0].client.Result(context.Background(), sr.JobID)
	if err != nil {
		t.Fatal(err)
	}

	ev := api.CompletionEvent{Key: sr.JobID, Node: "replayer", Kind: "arch",
		State: api.StateDone, Result: want}
	for i := 0; i < 3; i++ {
		if err := nodes[0].dispatch.Announce(ev); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		if n.cache.Len() != 1 {
			t.Errorf("node %d holds %d results after duplicate announcements, want 1", i, n.cache.Len())
		}
		st, err := n.client.Status(context.Background(), sr.JobID)
		if err == nil && st.State != api.StateDone {
			t.Errorf("node %d job state %s after duplicates, want done", i, st.State)
		}
		got, ok := n.cache.Get(sr.JobID)
		if !ok || !bytes.Equal(got.Result, want) {
			t.Errorf("node %d cached bytes changed under duplicate announcements", i)
		}
	}
}
