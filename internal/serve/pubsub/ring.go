package pubsub

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the cluster member list: every node
// builds it from the same (sorted, deduplicated) membership and therefore
// derives the same owner for every content key with no coordination. Virtual
// nodes smooth the key distribution; with the replica count below, a
// three-node ring splits keys within a few percent of evenly.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// ringReplicas is the virtual-node count per member.
const ringReplicas = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func newRing(nodes []string) *ring {
	uniq := make(map[string]bool, len(nodes))
	r := &ring{}
	for _, n := range nodes {
		if n == "" || uniq[n] {
			continue
		}
		uniq[n] = true
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on the node id so equal hashes still order identically on
		// every member.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owner maps a content key to its owning node: the first virtual node at or
// after the key's hash, wrapping around.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}
