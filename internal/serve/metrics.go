package serve

import (
	"time"

	"repro/internal/obs"
)

// This file re-bases /v1/metrics on the internal/obs registry. Every family
// the historical hand-written handler printed keeps its exact name; the
// counters stay owned by the Manager's atomics (and the caches' own counters)
// and are bridged in with CounterFunc/GaugeFunc, so no write path changed —
// only the exposition. On top of the bridges the registry adds real
// histograms for the per-job spans (queue wait, admission wait, compute,
// replicate) and, when the dispatch backend supports it
// (metricsInstrumenter), the pub/sub dispatch/announce/adopt latencies.

// secondsBuckets are the shared latency bounds (seconds) for every serve
// histogram: sub-millisecond queue hits through minute-long sweeps.
var secondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60}

// jobSpanHists are the per-stage job latency histograms.
type jobSpanHists struct {
	queueWait     *obs.Histogram
	admissionWait *obs.Histogram
	compute       *obs.Histogram
	replicate     *obs.Histogram
}

// observe routes one finished job span into its histogram.
func (h *jobSpanHists) observe(name string, d time.Duration) {
	switch name {
	case spanQueueWait:
		h.queueWait.Observe(d.Seconds())
	case spanAdmissionWait:
		h.admissionWait.Observe(d.Seconds())
	case spanCompute:
		h.compute.Observe(d.Seconds())
	case spanReplicate:
		h.replicate.Observe(d.Seconds())
	}
}

// metricsInstrumenter is the optional seam a dispatch backend implements to
// register its own families (pubsub.Node does).
type metricsInstrumenter interface {
	InstrumentMetrics(*obs.Registry)
}

// buildRegistry assembles the manager's metric registry. Registration order is
// the exposition order, kept stable so repeated scrapes are byte-comparable.
func (m *Manager) buildRegistry() {
	r := obs.NewRegistry()
	m.reg = r
	c := r.CounterFunc
	g := r.GaugeFunc

	c("taserved_submissions_total", "Submissions received (bad requests included).", m.submissions.Load)
	c("taserved_jobs_deduped_total", "Submissions that joined a queued or running twin.", m.dedupLive.Load)
	c("taserved_result_cache_hits_total", "Submissions answered by a finished job.", m.resultHits.Load)
	c("taserved_explorations_total", "Sweeps actually run on this node.", m.explorations.Load)
	c("taserved_jobs_canceled_total", "Jobs aborted by cooperative cancellation.", m.canceled.Load)
	c("taserved_jobs_deadline_exceeded_total", "Jobs aborted by their wall-clock deadline.", m.expired.Load)
	c("taserved_model_cache_hits_total", "Parsed-model cache hits.", func() int64 { h, _ := m.models.stats(); return h })
	c("taserved_model_cache_misses_total", "Parsed-model cache misses.", func() int64 { _, miss := m.models.stats(); return miss })
	g("taserved_model_cache_entries", "Parsed models currently cached.", func() int64 { return int64(m.models.len()) })
	c("taserved_compile_cache_hits_total", "Compiled-network cache hits.", func() int64 { h, _ := m.compiled.stats(); return h })
	c("taserved_compile_cache_misses_total", "Compiled-network cache misses.", func() int64 { _, miss := m.compiled.stats(); return miss })
	g("taserved_compile_cache_entries", "Compiled networks currently cached.", func() int64 { return int64(m.compiled.len()) })
	g("taserved_jobs_active", "Jobs queued or running.", func() int64 { a, _ := m.jobs.counts(); return int64(a) })
	g("taserved_jobs_retained", "Terminal jobs retained as the result cache.", func() int64 { _, ret := m.jobs.counts(); return int64(ret) })
	g("taserved_cpu_tokens_total", "Global CPU-token admission budget.", func() int64 { return int64(m.cfg.CPUTokens) })
	g("taserved_cpu_tokens_in_use", "CPU tokens currently granted.", func() int64 { return int64(m.tokens.inUse()) })
	g("taserved_admission_queue_depth", "Jobs blocked waiting for an admission grant.", func() int64 { return int64(m.tokens.waiting()) })
	g("taserved_memory_budget_bytes", "Global zone-memory budget (0 = unmetered).", func() int64 { return m.cfg.MemoryBudget })
	g("taserved_memory_in_use_bytes", "Memory-budget bytes currently granted.", m.tokens.bytesInUse)
	g("taserved_stored_zone_bytes", "Live explorations' resident passed-store bytes.", func() int64 { b, _, _ := m.jobs.storedFootprint(); return b })
	g("taserved_intern_hits_total", "Live explorations' discrete-vector intern hits.", func() int64 { _, h, _ := m.jobs.storedFootprint(); return h })
	g("taserved_intern_misses_total", "Live explorations' discrete-vector intern misses.", func() int64 { _, _, miss := m.jobs.storedFootprint(); return miss })
	c("taserved_shed_total", "Submissions rejected 429 at admission.", m.shed.Load)
	g("taserved_node_info", "Static node identity; the node label carries the id.",
		func() int64 { return 1 }, obs.Label{Name: "node", Value: m.dispatch.Self()})
	g("taserved_peer_count", "Known dispatch peers.", func() int64 { return int64(len(m.dispatch.Nodes())) })
	c("taserved_dispatched_total", "Submissions routed to the owning peer.", m.dispatched.Load)
	c("taserved_remote_hits_total", "Submissions answered with peer-computed bytes.", m.remoteHits.Load)
	c("taserved_dispatch_fallbacks_total", "Dispatches degraded to local compute.", m.fallbacks.Load)
	g("taserved_replicated_results", "Completion events held by the replicated cache.", func() int64 { return int64(m.results.Len()) })

	m.hists = jobSpanHists{
		queueWait: r.Histogram("taserved_job_queue_wait_seconds",
			"Submission to execution-goroutine start.", secondsBuckets),
		admissionWait: r.Histogram("taserved_job_admission_wait_seconds",
			"Time blocked acquiring the CPU-token/memory grant.", secondsBuckets),
		compute: r.Histogram("taserved_job_compute_seconds",
			"Job closure runtime (sweep, or proxy wait for dispatched jobs).", secondsBuckets),
		replicate: r.Histogram("taserved_job_replicate_seconds",
			"Result replication: cache put plus cluster announce.", secondsBuckets),
	}

	if mi, ok := m.dispatch.(metricsInstrumenter); ok {
		mi.InstrumentMetrics(r)
	}
}
