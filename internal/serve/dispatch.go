package serve

import (
	"encoding/json"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/serve/api"
	"repro/internal/wire"
)

// This file is the cluster half of the job manager: how a submission owned by
// a peer becomes a local proxy job, how completion events turn back into job
// results, and how this node's own completions are announced. Everything here
// reduces to a no-op under the default local backend.
//
// Ownership invariant: exactly one node — dispatch.Owner(key) — computes a
// content key; every other frontend holds a proxy job (workers == 0, no
// grant) that waits on the key's completion topic. The owner's job table
// dedupes concurrent envelopes exactly like concurrent local submissions, so
// the cluster-wide exploration count for one key is 1. Degraded paths
// (backend down, envelope undeliverable, broker death mid-wait) fall back to
// computing locally under a freshly acquired grant — correctness never
// depends on the transport, only singleflight breadth does.

// proxyRun builds the run closure of a proxy job: subscribe to the key's
// completion topic, ship the envelope to the owner, wait for the relayed
// terminal event. Watch starts before Send so the completion of a fast owner
// cannot slip between the two.
func (m *Manager) proxyRun(spec jobSpec, model *modelEntry, req *SubmitRequest, owner string) runFunc {
	return func(j *job) ([]byte, map[string]string, error) {
		if faultinject.Enabled {
			if ferr := faultinject.Fire("serve/dispatch"); ferr != nil {
				return m.localFallback(spec, model, j)
			}
		}
		envelope, err := json.Marshal(req)
		if err != nil {
			return m.localFallback(spec, model, j)
		}
		// Buffered by one and drop-on-full: events are terminal, the first
		// decides the job; at-least-once duplicates are discarded here.
		evCh := make(chan api.CompletionEvent, 1)
		cancelWatch, err := m.dispatch.Watch(j.id, func(ev api.CompletionEvent) {
			select {
			case evCh <- ev:
			default:
			}
		})
		if err != nil {
			return m.localFallback(spec, model, j)
		}
		defer cancelWatch()
		if err := m.dispatch.Send(owner, envelope); err != nil {
			return m.localFallback(spec, model, j)
		}

		var expired <-chan time.Time
		if !j.deadline.IsZero() {
			timer := time.NewTimer(time.Until(j.deadline))
			defer timer.Stop()
			expired = timer.C
		}
		select {
		case ev := <-evCh:
			if ev.State == api.StateFailed && ev.Error == wire.CodeDispatchFailed {
				// The transport died while we waited (synthetic event): the
				// owner may never have seen the envelope. Compute locally
				// rather than surface a transport failure for computable work.
				return m.localFallback(spec, model, j)
			}
			return m.adoptEvent(ev)
		case <-expired:
			return nil, nil, core.ErrDeadlineExceeded
		case <-j.cancelCh:
			// Cancel releases only this frontend's interest; the owner keeps
			// computing for its other watchers. Deadline precedence mirrors
			// cpuTokens.acquire.
			if !j.deadline.IsZero() && time.Now().After(j.deadline) {
				return nil, nil, core.ErrDeadlineExceeded
			}
			return nil, nil, core.ErrCanceled
		}
	}
}

// localFallback degrades a proxy job to a node-local computation. The proxy
// was admitted without a grant, so the fallback acquires the submission's
// real grant first — degraded routing never bypasses admission control.
func (m *Manager) localFallback(spec jobSpec, model *modelEntry, j *job) ([]byte, map[string]string, error) {
	m.fallbacks.Add(1)
	if err := m.tokens.acquire(j.cancelCh, j.deadline, spec.Workers, spec.MaxBytes); err != nil {
		return nil, nil, err
	}
	defer m.tokens.release(spec.Workers, spec.MaxBytes)
	return m.runFunc(spec, model)(j)
}

// adoptEvent turns a relayed completion into this job's outcome. Done events
// carry the owner's wire bytes verbatim — they are returned untouched and
// fed to the replicated cache. Failure codes are mapped back to the core
// sentinels (wire.ErrorForCode) so job.finish renames them identically to a
// local failure; unnamed failures travel as their message.
func (m *Manager) adoptEvent(ev api.CompletionEvent) ([]byte, map[string]string, error) {
	switch ev.State {
	case api.StateDone:
		m.remoteHits.Add(1)
		m.results.Put(ev)
		return ev.Result, ev.Traces, nil
	case api.StateCanceled:
		return nil, nil, core.ErrCanceled
	default:
		if serr := wire.ErrorForCode(ev.Error); serr != nil {
			return nil, nil, serr
		}
		return nil, nil, errors.New(ev.Error)
	}
}

// handleEnvelope runs a dispatch envelope addressed to this node. The
// envelope is the sender's SubmitRequest verbatim and normalization is
// deterministic, so the re-derived content hash matches the sender's job id
// and the job table dedupes N frontends' envelopes into one computation.
// Admission rejections are announced as failed completions (overloaded /
// shutting_down) so waiting proxies fail fast instead of timing out.
func (m *Manager) handleEnvelope(envelope []byte) {
	var req SubmitRequest
	if err := json.Unmarshal(envelope, &req); err != nil {
		return
	}
	spec, model, herr := m.normalize(&req)
	if herr != nil {
		// The sender normalized these same bytes successfully; a failure here
		// means version skew. Nothing useful to announce without a key.
		return
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		return
	}
	id := hashBytes(string(canon))
	deadline := time.Time{}
	if spec.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	} else if m.cfg.DefaultDeadline > 0 {
		deadline = time.Now().Add(m.cfg.DefaultDeadline)
	}
	_, _, err = m.jobs.submit(id, spec.Kind, spec.Workers, spec.MaxBytes, deadline, m.runFunc(spec, model))
	switch err {
	case nil:
		// Completion (including a joined live twin's) is announced by the
		// onFinish hook; an already-done twin was announced when it finished
		// and its event is retained by the broker for late subscribers.
	case errBusy:
		m.shed.Add(1)
		_ = m.dispatch.Announce(api.CompletionEvent{
			Key: id, Node: m.dispatch.Self(), Kind: spec.Kind,
			State: api.StateFailed, Error: wire.CodeOverloaded,
		})
	case errShuttingDown:
		_ = m.dispatch.Announce(api.CompletionEvent{
			Key: id, Node: m.dispatch.Self(), Kind: spec.Kind,
			State: api.StateFailed, Error: wire.CodeShuttingDown,
		})
	}
}

// announceJob is the jobManager's onFinish hook: relay an executed job's
// terminal state cluster-wide. Proxy and fallback jobs (workers == 0) stay
// silent — announcing is the owner's job, and a proxy's local abort (cancel,
// deadline) must never overwrite the retained real completion of its key.
// The local backend reduces this to a snapshot and two no-ops.
func (m *Manager) announceJob(j *job) {
	if j.workers == 0 {
		return
	}
	state, errMsg, _, _ := j.snapshot()
	ev := api.CompletionEvent{Key: j.id, Node: m.dispatch.Self(), Kind: j.kind, State: state}
	if state == api.StateDone {
		// Terminal: result/traces are immutable now, and this hook runs on
		// the goroutine that wrote them.
		ev.Result, ev.Traces = j.result, j.traces
	} else {
		ev.Error = errMsg
	}
	// Feed our own replica directly too — the broker loops announcements
	// back, but the cache must not depend on that; Put is idempotent and
	// ignores non-done states.
	start := time.Now()
	m.results.Put(ev)
	_ = m.dispatch.Announce(ev)
	m.jobs.span(j, spanReplicate, start, time.Now())
}
