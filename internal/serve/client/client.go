// Package client is the typed Go client of the taserved HTTP API: the
// /v1/ job lifecycle (submit, status, result, trace, cancel) plus the
// operational endpoints, speaking the internal/serve/api contract. Every
// call takes a context; non-2xx responses surface as *APIError carrying the
// HTTP status and the structured wire.ErrorResponse body (including the
// server's retry guidance on overload rejections). The package depends only
// on the contract types, so server-side tests can use it without import
// cycles.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve/api"
	"repro/internal/wire"
)

// Client talks to one taserved node.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the node at base (e.g. "http://127.0.0.1:8080").
// A nil httpClient selects http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// APIError is a non-2xx response: the HTTP status plus the decoded
// structured body.
type APIError struct {
	Status int
	Body   wire.ErrorResponse
}

func (e *APIError) Error() string {
	msg := e.Body.Error
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	if e.Body.Code != "" {
		return fmt.Sprintf("taserved: %s (%s, HTTP %d)", msg, e.Body.Code, e.Status)
	}
	return fmt.Sprintf("taserved: %s (HTTP %d)", msg, e.Status)
}

// Retryable reports whether the server marked this rejection as worth
// retrying (overload shedding), and after how long including the requested
// jitter budget.
func (e *APIError) Retryable() (time.Duration, bool) {
	if e.Body.RetryAfterMS <= 0 {
		return 0, false
	}
	return time.Duration(e.Body.RetryAfterMS+e.Body.RetryJitterMS) * time.Millisecond, true
}

func (c *Client) do(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// apiError decodes a non-2xx body into an *APIError; bodies that are not a
// wire.ErrorResponse (e.g. the 409 job-state bodies) keep their raw text as
// the message.
func apiError(status int, body []byte) *APIError {
	e := &APIError{Status: status}
	if json.Unmarshal(body, &e.Body) != nil || e.Body.Error == "" {
		if e.Body.Error == "" {
			e.Body.Error = strings.TrimSpace(string(body))
		}
	}
	return e
}

// Submit posts one analysis. The response reports the content-addressed job
// id and whether the submission started a new job, joined a live twin, or
// hit a cached result (state done).
func (c *Client) Submit(ctx context.Context, req *api.SubmitRequest) (*api.SubmitResponse, error) {
	status, body, err := c.do(ctx, http.MethodPost, "/v1/jobs", req)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK && status != http.StatusAccepted {
		return nil, apiError(status, body)
	}
	var sr api.SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// Status fetches one job's state and live progress.
func (c *Client) Status(ctx context.Context, id string) (*api.StatusResponse, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	var st api.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Await polls Status until the job reaches a terminal state or the context
// ends. interval <= 0 selects a 2ms poll (tests want tight loops; production
// callers should pass something kinder).
func (c *Client) Await(ctx context.Context, id string, interval time.Duration) (*api.StatusResponse, error) {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case api.StateDone, api.StateFailed, api.StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Result returns a done job's raw wire bytes, exactly as the server stored
// them — callers comparing against CLI output must not re-encode.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	return body, nil
}

// Trace returns a done job's captured witness traces, optionally restricted
// to one requirement name (req == "" fetches all).
func (c *Client) Trace(ctx context.Context, id, req string) (map[string]string, error) {
	path := "/v1/jobs/" + id + "/trace"
	if req != "" {
		path += "?req=" + req
	}
	status, body, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	var traces map[string]string
	if err := json.Unmarshal(body, &traces); err != nil {
		return nil, err
	}
	return traces, nil
}

// Profile returns a terminal job's profile: lifecycle spans plus — when the
// serving node ran the sweep — the engine's phase spans and per-worker
// series. Non-terminal jobs answer 409 (surfaced as an *APIError).
func (c *Client) Profile(ctx context.Context, id string) (*api.ProfileResponse, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/profile", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	var pr api.ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// Cancel requests cooperative cancellation and reports the job's state
// immediately after.
func (c *Client) Cancel(ctx context.Context, id string) (*api.CancelResponse, error) {
	status, body, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, apiError(status, body)
	}
	var cr api.CancelResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

// Healthz fetches the node's graded health. ok mirrors the HTTP status: true
// for 200, false for a degraded 503 (the body is valid either way).
func (c *Client) Healthz(ctx context.Context) (body map[string]any, ok bool, err error) {
	status, raw, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return nil, false, err
	}
	if status != http.StatusOK && status != http.StatusServiceUnavailable {
		return nil, false, apiError(status, raw)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return nil, false, err
	}
	return body, status == http.StatusOK, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", apiError(status, body)
	}
	return string(body), nil
}

// Metric extracts one gauge/counter value from a Prometheus text exposition
// (exact name match, labels included). Shared by tests and the smoke tool.
func Metric(metrics, name string) (int64, bool) {
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v int64
			if _, err := fmt.Sscanf(fields[1], "%d", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
