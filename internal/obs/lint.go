package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition (format version 0.0.4):
// well-formed comment and sample lines, valid metric/label names, parseable
// values, TYPE declared at most once and before the family's first sample,
// no duplicate series, and — for histogram families — ascending cumulative
// le buckets ending in +Inf with consistent _sum/_count lines. It returns
// every violation found (empty slice = valid), so callers can report all
// problems of a scrape at once. scripts/metricslint wraps it as a CLI; the
// serve tests run it directly against /v1/metrics bodies.
func Lint(r io.Reader) []error {
	l := &linter{
		types: map[string]metricKind{},
		seen:  map[string]bool{},
		hists: map[string]*histState{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("reading exposition: %w", err))
	}
	for name, h := range l.hists {
		h.finish(l, name)
	}
	return l.errs
}

type linter struct {
	errs  []error
	types map[string]metricKind // family -> declared TYPE
	// sampled marks families that already emitted a sample, so a late TYPE
	// line is flagged.
	sampledFams map[string]bool
	seen        map[string]bool // full series key -> duplicate detection
	hists       map[string]*histState
}

// histState accumulates one histogram series' bucket lines for the
// cumulative / +Inf / sum / count consistency checks.
type histState struct {
	line     int
	prevLE   float64
	prevCum  int64
	buckets  int
	sawInf   bool
	infCount int64
	count    int64
	sawCount bool
	sawSum   bool
}

func (h *histState) finish(l *linter, name string) {
	if !h.sawInf {
		l.errf(h.line, "histogram %s has no le=\"+Inf\" bucket", name)
	}
	if !h.sawSum {
		l.errf(h.line, "histogram %s has no _sum sample", name)
	}
	if !h.sawCount {
		l.errf(h.line, "histogram %s has no _count sample", name)
	} else if h.sawInf && h.count != h.infCount {
		l.errf(h.line, "histogram %s: _count %d != +Inf bucket %d", name, h.count, h.infCount)
	}
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: "+format, append([]any{line}, args...)...))
}

func (l *linter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	l.sample(n, s)
}

func (l *linter) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			l.errf(n, "malformed TYPE line %q", s)
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			l.errf(n, "TYPE for invalid metric name %q", name)
		}
		switch metricKind(typ) {
		case kindCounter, kindGauge, kindHistogram, "summary", "untyped":
		default:
			l.errf(n, "unknown metric type %q for %s", typ, name)
			return
		}
		if _, dup := l.types[name]; dup {
			l.errf(n, "duplicate TYPE for %s", name)
		}
		if l.sampledFams[name] {
			l.errf(n, "TYPE for %s after its first sample", name)
		}
		l.types[name] = metricKind(typ)
	case "HELP":
		if len(fields) < 3 {
			l.errf(n, "malformed HELP line %q", s)
			return
		}
		if !validMetricName(fields[2]) {
			l.errf(n, "HELP for invalid metric name %q", fields[2])
		}
	}
}

// sample parses one sample line: name[{labels}] value [timestamp].
func (l *linter) sample(n int, s string) {
	name, rest := splitName(s)
	if !validMetricName(name) {
		l.errf(n, "invalid metric name in %q", s)
		return
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		l.errf(n, "%s: %v", name, err)
		return
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "%s: want 'value [timestamp]', got %q", name, strings.TrimSpace(rest))
		return
	}
	value, err := parseValue(fields[0])
	if err != nil {
		l.errf(n, "%s: bad value %q", name, fields[0])
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			l.errf(n, "%s: bad timestamp %q", name, fields[1])
		}
	}

	key := name + "|" + labelKey(labels)
	if l.seen[key] {
		l.errf(n, "duplicate sample %s%s", name, renderLintLabels(labels))
	}
	l.seen[key] = true

	// Resolve the family: _bucket/_sum/_count samples of a declared
	// histogram belong to the base name.
	fam := name
	suffix := ""
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && l.types[base] == kindHistogram {
			fam, suffix = base, suf
			break
		}
	}
	if l.sampledFams == nil {
		l.sampledFams = map[string]bool{}
	}
	l.sampledFams[fam] = true

	if l.types[fam] == kindHistogram {
		l.histSample(n, fam, suffix, labels, value)
	} else if hasLabel(labels, "le") {
		l.errf(n, "%s: le label outside a histogram family", name)
	}
}

func (l *linter) histSample(n int, fam, suffix string, labels []lintLabel, value float64) {
	// One histState per (family, labels-minus-le) series.
	var rest []lintLabel
	le := ""
	for _, lb := range labels {
		if lb.name == "le" {
			le = lb.value
		} else {
			rest = append(rest, lb)
		}
	}
	key := fam + "|" + labelKey(rest)
	h := l.hists[key]
	if h == nil {
		h = &histState{line: n, prevLE: math.Inf(-1)}
		l.hists[key] = h
	}
	switch suffix {
	case "_bucket":
		if value != float64(int64(value)) || value < 0 {
			l.errf(n, "%s_bucket: non-integer or negative count %v", fam, value)
			return
		}
		cum := int64(value)
		if le == "+Inf" {
			h.sawInf = true
			h.infCount = cum
			if cum < h.prevCum {
				l.errf(n, "%s_bucket: +Inf count %d below previous bucket %d", fam, cum, h.prevCum)
			}
			return
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			l.errf(n, "%s_bucket: bad le %q", fam, le)
			return
		}
		if h.sawInf {
			l.errf(n, "%s_bucket: le=%q after +Inf", fam, le)
		}
		if bound <= h.prevLE && h.buckets > 0 {
			l.errf(n, "%s_bucket: le bounds not ascending (%v after %v)", fam, bound, h.prevLE)
		}
		if cum < h.prevCum {
			l.errf(n, "%s_bucket: cumulative count decreases (%d after %d)", fam, cum, h.prevCum)
		}
		h.prevLE, h.prevCum = bound, cum
		h.buckets++
	case "_sum":
		h.sawSum = true
	case "_count":
		if value != float64(int64(value)) || value < 0 {
			l.errf(n, "%s_count: non-integer or negative count %v", fam, value)
			return
		}
		h.sawCount = true
		h.count = int64(value)
	default:
		l.errf(n, "%s: bare sample of a histogram family", fam)
	}
}

type lintLabel struct{ name, value string }

func hasLabel(labels []lintLabel, name string) bool {
	for _, l := range labels {
		if l.name == name {
			return true
		}
	}
	return false
}

func labelKey(labels []lintLabel) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.name + "=" + l.value
	}
	return strings.Join(parts, ",")
}

func renderLintLabels(labels []lintLabel) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelKey(labels) + "}"
}

// splitName cuts a sample line at the end of the metric name.
func splitName(s string) (name, rest string) {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return s[:i], s[i:]
		}
	}
	return s, ""
}

// parseLabels parses an optional {a="x",...} block, honoring the exposition
// escapes (\\, \", \n) inside values.
func parseLabels(s string) ([]lintLabel, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	var labels []lintLabel
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := s[i:j]
		// le carries numeric bounds; every other label must be a valid name.
		if name != "le" && !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return nil, "", fmt.Errorf("label %s: missing quoted value", name)
		}
		var val strings.Builder
		k := j + 2
		for {
			if k >= len(s) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			switch s[k] {
			case '"':
				labels = append(labels, lintLabel{name, val.String()})
				i = k + 1
				goto next
			case '\\':
				if k+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[k+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: invalid escape \\%c", name, s[k+1])
				}
				k += 2
			default:
				val.WriteByte(s[k])
				k++
			}
		}
	next:
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
