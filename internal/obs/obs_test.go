package obs

import (
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation exactly
// at a bucket bound lands IN that bucket (inclusive upper limit), one just
// above it lands in the next, and values past the last bound overflow into
// +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("boundary_seconds", "boundary test", []float64{1, 5, 10})

	cases := []struct {
		v    float64
		want int // index into counts: 0..len(bounds)-1 buckets, len(bounds) = +Inf
	}{
		{0.5, 0},
		{1, 0}, // exactly at a bound: inclusive
		{1.0000001, 1},
		{5, 1},
		{10, 2},
		{10.5, 3}, // past the last bound: +Inf overflow
	}
	for _, c := range cases {
		before := make([]int64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.want {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%v): bucket %d count = %d, want %d", c.v, i, got, want)
			}
		}
	}
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatalf("Count() = %d, want %d", got, len(cases))
	}

	// The rendered cumulative buckets must reflect the same placement.
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`boundary_seconds_bucket{le="1"} 2`,
		`boundary_seconds_bucket{le="5"} 4`,
		`boundary_seconds_bucket{le="10"} 5`,
		`boundary_seconds_bucket{le="+Inf"} 6`,
		`boundary_seconds_count 6`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

// TestWriteTextLintsCleanAndByteStable renders a registry with every metric
// kind, checks the output against the package's own validator, and pins that
// repeated scrapes of unchanged values are byte-identical — the property the
// /metrics alias test in serve relies on.
func TestWriteTextLintsCleanAndByteStable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events seen")
	g := r.Gauge("depth", "current depth")
	r.CounterFunc("derived_total", "derived", func() int64 { return 7 })
	r.GaugeFunc("temp", "sampled", func() int64 { return -3 })
	h := r.Histogram("lat_seconds", `latency with "quotes" and \ slash`, []float64{0.1, 2.5},
		Label{Name: "op", Value: `a"b\c`})
	c.Add(41)
	c.Inc()
	g.Set(-12)
	h.Observe(0.05)
	h.Observe(3)

	var first strings.Builder
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(strings.NewReader(first.String())); len(errs) > 0 {
		t.Fatalf("WriteText output fails Lint: %v\n%s", errs, first.String())
	}
	var second strings.Builder
	if err := r.WriteText(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("repeated scrape not byte-identical:\n--- first\n%s--- second\n%s",
			first.String(), second.String())
	}
	if !strings.Contains(first.String(), "events_total 42\n") {
		t.Errorf("counter value missing:\n%s", first.String())
	}
	if !strings.Contains(first.String(), "temp -3\n") {
		t.Errorf("gauge func value missing:\n%s", first.String())
	}
}

// TestRegistryPanics pins the setup-time programmer-error contract.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid name", func() { NewRegistry().Counter("0bad", "") })
	mustPanic("reserved le label", func() {
		NewRegistry().Counter("x_total", "", Label{Name: "le", Value: "1"})
	})
	mustPanic("kind mismatch", func() {
		r := NewRegistry()
		r.Counter("x_total", "")
		r.Gauge("x_total", "")
	})
	mustPanic("duplicate series", func() {
		r := NewRegistry()
		r.Counter("x_total", "")
		r.Counter("x_total", "")
	})
	mustPanic("non-ascending bounds", func() {
		NewRegistry().Histogram("h_seconds", "", []float64{1, 1})
	})
}

// TestCells exercises the padded single-writer cells: per-writer
// accumulation, lock-free sum, and concurrent readers racing one writer per
// cell (the -race build is the real assertion here).
func TestCells(t *testing.T) {
	c := NewCells(4)
	if c.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", c.Len())
	}
	for w := 0; w < 4; w++ {
		c.Set(w, int64(10*w))
		c.Add(w, 1)
	}
	for w := 0; w < 4; w++ {
		if got := c.Get(w); got != int64(10*w+1) {
			t.Errorf("Get(%d) = %d, want %d", w, got, 10*w+1)
		}
	}
	if got := c.Sum(); got != 0+1+10+1+20+1+30+1 {
		t.Fatalf("Sum() = %d, want 64", got)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			c.Add(0, 1)
		}
	}()
	for i := 0; i < 1_000; i++ {
		_ = c.Sum()
		_ = c.Get(0)
	}
	<-done
	if got := c.Get(0); got != 1+10_000 {
		t.Fatalf("after concurrent adds Get(0) = %d, want %d", got, 1+10_000)
	}
}
