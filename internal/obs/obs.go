// Package obs is the repository's dependency-free observability kit: a
// Prometheus-text metrics registry (counters, gauges, fixed-bucket
// histograms), the padded single-writer publication cells the hot paths use
// (Cells — the core.Monitor pattern, generalized), wall-clock spans
// (Span/SpanList) for phase profiles, and an exposition-format validator
// (Lint) shared by tests and scripts/metricslint.
//
// # Ownership rules
//
// The registry deliberately offers two kinds of write paths with different
// contracts:
//
//   - Counter.Add / Histogram.Observe are atomic read-modify-writes. They are
//     for event-scoped paths — a job submitted, a dispatch sent — where the
//     event itself costs orders of magnitude more than one contended atomic.
//     They must NEVER be called per explored state.
//   - Per-state (hot-path) telemetry goes through Cells or through the
//     engine's own padded per-worker cells: exactly one goroutine writes a
//     cell, with plain atomic stores (never an RMW, never a lock), and the
//     scrape side merges lock-free by summing. CounterFunc/GaugeFunc bridge
//     such externally-owned values into the exposition.
//
// Scrapes (WriteText) read everything through atomic loads or caller
// callbacks; they never lock a hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one exposition label pair.
type Label struct {
	Name  string
	Value string
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Families render in registration order,
// so repeated scrapes of unchanged values are byte-identical — the property
// the /metrics-alias pinning test relies on.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// family is one metric name: TYPE, HELP, and its label-distinguished series.
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []*metric
}

// metric is one series of a family. Exactly one of the value sources is set.
type metric struct {
	labels []Label
	val    *atomic.Int64 // Counter / Gauge
	fn     func() int64  // CounterFunc / GaugeFunc
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter is a monotonically increasing event counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Event-scoped paths only — see the package
// ownership rules.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// register adds one series under name, creating or reusing the family.
// Registration is setup-time work: it panics on programmer errors (invalid
// name, kind mismatch, duplicate label set) instead of returning them.
func (r *Registry) register(name, help string, kind metricKind, m *metric) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range m.labels {
		if !validLabelName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
	}
	sort.SliceStable(m.labels, func(i, j int) bool { return m.labels[i].Name < m.labels[j].Name })
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different type")
	}
	for _, prev := range f.metrics {
		if labelsEqual(prev.labels, m.labels) {
			panic("obs: duplicate series " + name + renderLabels(m.labels))
		}
	}
	f.metrics = append(f.metrics, m)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &metric{labels: labels, val: &c.v})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &metric{labels: labels, val: &g.v})
	return g
}

// CounterFunc registers a counter series whose value is sampled from fn at
// scrape time — the bridge for counters owned elsewhere (padded per-worker
// cells, existing atomics). fn must be safe to call from any goroutine and
// should be monotone.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, &metric{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindGauge, &metric{labels: labels, fn: fn})
}

// Histogram registers and returns a fixed-bucket histogram. bounds are the
// inclusive bucket upper limits, strictly ascending; the implicit +Inf bucket
// is always appended. An observation lands in the first bucket whose bound is
// >= the value (Prometheus le semantics).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram " + name + " bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.register(name, help, kindHistogram, &metric{labels: labels, hist: h})
	return h
}

// Histogram counts observations into fixed buckets. Observe is an atomic
// RMW per call: event-scoped paths only, never per explored state.
type Histogram struct {
	bounds []float64      // ascending upper limits
	counts []atomic.Int64 // per-bucket (non-cumulative); last = +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the smallest i with bounds[i] >= v — the first
	// le bucket the value fits (inclusive upper bound); i == len(bounds)
	// overflows into +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count reads the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// WriteText renders the registry in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.metrics {
			switch {
			case m.hist != nil:
				writeHistogram(&b, f.name, m)
			case m.fn != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(m.labels), m.fn())
			default:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(m.labels), m.val.Load())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative le buckets, +Inf,
// _sum, _count. Buckets are read low-to-high with the total read first, so a
// concurrent Observe can only make the rendered +Inf bucket conservative —
// cumulative counts stay nondecreasing, which is what Lint checks.
func writeHistogram(b *strings.Builder, name string, m *metric) {
	h := m.hist
	total := h.count.Load()
	sum := math.Float64frombits(h.sum.Load())
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if cum > total {
			cum = total
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			renderLabels(append(append([]Label(nil), m.labels...), Label{"le", formatFloat(bound)})), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name,
		renderLabels(append(append([]Label(nil), m.labels...), Label{"le", "+Inf"})), total)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(m.labels), formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(m.labels), total)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderLabels renders a label set as {a="x",b="y"}, empty string when none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
