package obs

import (
	"sync"
	"time"
)

// Span is one named wall-clock interval of a profile: a sweep phase (parse,
// compile, explore, trace-replay) or a job stage (queue-wait, admission-wait,
// compute, replicate). Times are absolute Unix nanoseconds so spans recorded
// by different layers of one job order correctly without a shared epoch.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// End returns the span's end in Unix nanoseconds.
func (s Span) End() int64 { return s.StartNS + s.DurNS }

// NewSpan builds a span from a wall-clock interval.
func NewSpan(name string, start, end time.Time) Span {
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	return Span{Name: name, StartNS: start.UnixNano(), DurNS: d.Nanoseconds()}
}

// SpanList is a concurrency-safe ordered span recorder. Recording locks a
// mutex — phase boundaries are rare events, never per-state work.
type SpanList struct {
	mu    sync.Mutex
	spans []Span
}

// Begin opens a span now and returns the closer that records it.
func (l *SpanList) Begin(name string) func() {
	start := time.Now()
	return func() { l.Record(name, start, time.Now()) }
}

// Record appends a completed span.
func (l *SpanList) Record(name string, start, end time.Time) {
	l.Append(NewSpan(name, start, end))
}

// Append appends an already-built span.
func (l *SpanList) Append(s Span) {
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Snapshot copies the recorded spans in recording order.
func (l *SpanList) Snapshot() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}
