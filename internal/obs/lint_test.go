package obs

import (
	"strings"
	"testing"
)

func lintString(s string) []error { return Lint(strings.NewReader(s)) }

// TestLintAcceptsValid covers the shapes WriteText emits: plain samples,
// labeled series, and a full histogram family.
func TestLintAcceptsValid(t *testing.T) {
	good := `# HELP jobs_total jobs seen
# TYPE jobs_total counter
jobs_total 3
# TYPE depth gauge
depth{node="a"} -2
depth{node="b"} 5
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="2.5"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 5.2
lat_seconds_count 4
`
	if errs := lintString(good); len(errs) > 0 {
		t.Fatalf("valid exposition rejected: %v", errs)
	}
}

// TestLintRejects pins one violation per rule the validator enforces.
func TestLintRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"non-ascending le", `# TYPE h histogram
h_bucket{le="2"} 1
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`},
		{"missing +Inf", `# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`},
		{"decreasing cumulative", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`},
		{"count != +Inf bucket", `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 1
h_count 9
`},
		{"missing _sum", `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`},
		{"duplicate series", `# TYPE jobs_total counter
jobs_total 1
jobs_total 2
`},
		{"duplicate labeled series", `# TYPE d gauge
d{node="a"} 1
d{node="a"} 2
`},
		{"TYPE after first sample", `jobs_total 1
# TYPE jobs_total counter
`},
		{"TYPE declared twice", `# TYPE jobs_total counter
# TYPE jobs_total counter
jobs_total 1
`},
		{"le outside histogram", `# TYPE depth gauge
depth{le="1"} 3
`},
		{"invalid metric name", `0bad 1
`},
		{"unparseable value", `jobs_total banana
`},
		{"unterminated labels", `depth{node="a" 1
`},
	}
	for _, c := range cases {
		if errs := lintString(c.in); len(errs) == 0 {
			t.Errorf("%s: accepted, want violation:\n%s", c.name, c.in)
		}
	}
}
