package obs

import "sync/atomic"

// Cells is the padded single-writer publication primitive behind the
// engine's hot-path telemetry, generalized from core.Monitor's monCell: one
// cache-line-padded slot per writer, written with plain atomic stores by
// exactly that writer (never a read-modify-write, never a lock, never a
// shared line), merged lock-free on the scrape side by summing. Use it when
// a per-state or per-steal counter must be readable from another goroutine;
// use Counter for event-rate paths instead.
type Cells struct {
	cells []cell
}

// cell pads one writer's slot to a full cache line so neighboring writers'
// stores never share one.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// NewCells returns n zeroed writer cells.
func NewCells(n int) *Cells {
	return &Cells{cells: make([]cell, n)}
}

// Len reports the writer count.
func (c *Cells) Len() int { return len(c.cells) }

// Set publishes v into writer w's cell. Single writer per cell.
func (c *Cells) Set(w int, v int64) { c.cells[w].v.Store(v) }

// Add bumps writer w's cell by delta. Because the cell has a single writer
// this is a plain load + store pair, not an RMW — no other goroutine ever
// writes between the two.
func (c *Cells) Add(w int, delta int64) {
	s := &c.cells[w].v
	s.Store(s.Load() + delta)
}

// Get reads writer w's cell; safe from any goroutine.
func (c *Cells) Get(w int) int64 { return c.cells[w].v.Load() }

// Sum merges all cells lock-free: a relaxed (slightly stale, never torn)
// total while writers run, the exact total once they have stopped.
func (c *Cells) Sum() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}
