// Package symta implements compositional fixed-priority response-time
// analysis in the style of SymTA/S (Symbolic Timing Analysis for Systems),
// the third technique of the paper's Table 2: classical busy-window analysis
// per resource (Lehoczky/Tindell/Richter), standard (P, J, D) event models,
// and jitter propagation along scenario chains iterated to a global fixed
// point.
//
// Like the real tool, the analysis is safe but not exact: every reported
// end-to-end latency is an upper bound on the true WCRT. Also like the real
// tool (as the paper notes), periodic streams with known offsets are
// analyzed as if their offsets were unknown, so the "po" column equals the
// "pno" column.
package symta

import (
	"fmt"
	"math/big"

	"repro/internal/arch"
)

// Stream is the standard (P, J, D) event model in integer time units:
// period, jitter, minimal separation.
type Stream struct {
	P, J, D int64
}

// EtaPlus bounds the number of activations in any half-open time window of
// positive length delta.
func (s Stream) EtaPlus(delta int64) int64 {
	if delta <= 0 {
		return 0
	}
	n := ceilDiv(delta+s.J, s.P)
	if s.D > 0 {
		if m := ceilDiv(delta, s.D); m < n {
			n = m
		}
	}
	return n
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Task is one step of a scenario bound to a resource.
type Task struct {
	Name string
	C    int64 // worst-case execution/transfer time in units
	Prio int
	// seq breaks priority ties deterministically (declaration order):
	// classical busy-window analysis requires unique priorities per
	// resource, and mutual interference between equal-priority tasks can
	// diverge under jitter propagation.
	seq int
	// chainC is C plus the execution times of same-scenario equal-priority
	// tasks on the same resource: those partners share the event stream and
	// are served FIFO, so each activation brings their work along. Charging
	// it inside the q-term keeps the bound above the exact WCRT without the
	// divergent mutual-interference cycle.
	chainC int64
	sc     *arch.Scenario
	In     Stream
	// TDMACycle is the cycle length when the task runs on a time-division
	// bus (0 otherwise).
	TDMACycle int64
	// R is the computed worst-case response time (from actual activation).
	R int64
}

// resource groups the tasks sharing one processor or bus.
type resource struct {
	name  string
	sched arch.SchedKind
	tasks []*Task
}

// Result is the end-to-end latency bound of one requirement.
type Result struct {
	Req *arch.Requirement
	// MS is the latency bound in milliseconds.
	MS *big.Rat
	// PerStepMS decomposes the bound into per-step response times.
	PerStepMS []*big.Rat
	// Iterations is the number of global fixed-point rounds used.
	Iterations int
}

// Analyze computes end-to-end latency bounds for the requirements by global
// fixed-point iteration of per-resource busy-window analysis with jitter
// propagation.
func Analyze(sys *arch.System, reqs []*arch.Requirement) (map[string]*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	scale, err := sys.TimeScale()
	if err != nil {
		return nil, err
	}

	// One task per scenario step, resources keyed by hardware element.
	taskOf := map[*arch.Scenario][]*Task{}
	resOf := map[any]*resource{}
	getRes := func(key any, name string, sched arch.SchedKind) *resource {
		if r, ok := resOf[key]; ok {
			return r
		}
		r := &resource{name: name, sched: sched}
		resOf[key] = r
		return r
	}
	var resources []*resource
	inputStream := func(sc *arch.Scenario) (Stream, error) {
		m := sc.Arrival
		p, err := arch.ToUnits(m.PeriodMS, scale)
		if err != nil {
			return Stream{}, err
		}
		j, err := arch.ToUnits(m.JitterMS, scale)
		if err != nil {
			return Stream{}, err
		}
		d, err := arch.ToUnits(m.MinSepMS, scale)
		if err != nil {
			return Stream{}, err
		}
		switch m.Kind {
		case arch.KindPeriodic, arch.KindPeriodicUnknownOffset, arch.KindSporadic:
			return Stream{P: p}, nil
		case arch.KindPeriodicJitter:
			return Stream{P: p, J: j}, nil
		case arch.KindBursty:
			return Stream{P: p, J: j, D: d}, nil
		}
		return Stream{}, fmt.Errorf("symta: unknown event kind")
	}

	seq := 0
	for _, sc := range sys.Scenarios {
		tasks := make([]*Task, len(sc.Steps))
		for i := range sc.Steps {
			st := &sc.Steps[i]
			c, err := arch.ToUnits(st.DurationMS(), scale)
			if err != nil {
				return nil, err
			}
			t := &Task{Name: sc.Name + "." + st.Name, C: c,
				Prio: st.EffectivePriority(sc), seq: seq, sc: sc}
			seq++
			tasks[i] = t
			var r *resource
			if st.IsCompute() {
				r = getRes(st.Proc, st.Proc.Name, st.Proc.Sched)
			} else {
				r = getRes(st.Bus, st.Bus.Name, st.Bus.Sched)
				if st.Bus.Sched == arch.SchedTDMA {
					cyc, err := arch.ToUnits(st.Bus.TDMA.CycleMS, scale)
					if err != nil {
						return nil, err
					}
					t.TDMACycle = cyc
				}
			}
			if len(r.tasks) == 0 {
				resources = append(resources, r)
			}
			r.tasks = append(r.tasks, t)
		}
		taskOf[sc] = tasks
	}

	// Same-scenario equal-priority co-residents share the event stream:
	// fold their execution time into chainC.
	for _, r := range resources {
		for _, t := range r.tasks {
			t.chainC = t.C
			for _, o := range r.tasks {
				if o != t && o.sc == t.sc && o.Prio == t.Prio {
					t.chainC += o.C
				}
			}
		}
	}

	// Global fixed point: analyze resources, propagate output jitter along
	// each chain, repeat until the streams stop changing.
	iters := 0
	for ; iters < 200; iters++ {
		changed := false
		for _, sc := range sys.Scenarios {
			in, err := inputStream(sc)
			if err != nil {
				return nil, err
			}
			for i, t := range taskOf[sc] {
				if t.In != in {
					t.In = in
					changed = true
				}
				// The output stream keeps the period; response-time
				// variation adds jitter (best case: execute immediately).
				_ = i
				in = Stream{P: in.P, J: in.J + maxI64(0, t.R-t.C), D: 0}
			}
		}
		for _, r := range resources {
			if err := analyzeResource(r); err != nil {
				return nil, err
			}
		}
		if !changed && iters > 0 {
			break
		}
	}

	out := map[string]*Result{}
	for _, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, err
		}
		tasks := taskOf[req.Scenario]
		if tasks == nil {
			return nil, fmt.Errorf("symta: requirement %s references unknown scenario", req.Name)
		}
		res := &Result{Req: req, MS: new(big.Rat), Iterations: iters}
		total := int64(0)
		for i := req.FromStep + 1; i <= req.ToStep; i++ {
			total += tasks[i].R
			res.PerStepMS = append(res.PerStepMS, arch.UnitsToMS(tasks[i].R, scale))
		}
		res.MS = arch.UnitsToMS(total, scale)
		out[req.Name] = res
	}
	return out, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// analyzeResource runs the busy-window analysis for every task on one
// resource.
func analyzeResource(r *resource) error {
	if r.sched == arch.SchedTDMA {
		// Dedicated slots: no cross-scenario interference; one message per
		// slot grant, grants every cycle under the worst alignment.
		for _, t := range r.tasks {
			R, err := tdmaResponse(t)
			if err != nil {
				return fmt.Errorf("symta: resource %s task %s: %w", r.name, t.Name, err)
			}
			t.R = R
		}
		return nil
	}
	for _, t := range r.tasks {
		var (
			interferers []*Task
			blocking    int64
		)
		for _, o := range r.tasks {
			if o == t {
				continue
			}
			switch r.sched {
			case arch.SchedNondet:
				// Any pending work may be chosen first: everyone interferes.
				interferers = append(interferers, o)
			default:
				switch {
				case o.sc == t.sc && o.Prio == t.Prio:
					// Folded into chainC above.
				case o.Prio > t.Prio || (o.Prio == t.Prio && o.seq < t.seq):
					// Higher priority interferes; cross-scenario equal
					// priorities are broken by declaration order (the
					// unique-priority requirement of classical busy-window
					// analysis).
					interferers = append(interferers, o)
				case r.sched != arch.SchedFPPreempt && o.C > blocking:
					// Non-preemptive: one lower-priority job may block.
					blocking = o.C
				}
			}
		}
		if r.sched == arch.SchedNondet {
			for _, o := range r.tasks {
				if o != t && o.C > blocking {
					blocking = o.C
				}
			}
		}
		R, err := busyWindow(t, interferers, blocking, r.sched != arch.SchedFPPreempt)
		if err != nil {
			return fmt.Errorf("symta: resource %s task %s: %w", r.name, t.Name, err)
		}
		t.R = R
	}
	return nil
}

// tdmaResponse bounds the response of a one-message-per-slot TDMA bus under
// the worst slot alignment (grants at k·cycle after the critical instant).
func tdmaResponse(t *Task) (int64, error) {
	const maxQ = 4096
	cycle := t.TDMACycle
	arrival := func(q int64) int64 {
		// Earliest arrival of the q-th activation in the busy window.
		a := (q-1)*t.In.P - t.In.J
		if a < 0 {
			a = 0
		}
		if t.In.D > 0 && a < (q-1)*t.In.D {
			a = (q - 1) * t.In.D
		}
		return a
	}
	worst := int64(0)
	for q := int64(1); q <= maxQ; q++ {
		aq := arrival(q)
		k := aq/cycle + 1
		if q > k {
			k = q
		}
		if resp := k*cycle + t.C - aq; resp > worst {
			worst = resp
		}
		// The backlog clears once the next arrival lands after the grant
		// that served the q-th message; a fresh message then waits at most
		// one cycle, which the q = 1 case already covers.
		if arrival(q+1) >= k*cycle {
			return worst, nil
		}
	}
	return 0, fmt.Errorf("TDMA backlog does not clear (slot rate below arrival rate)")
}

// busyWindow computes the worst-case response time of task t under the given
// interferers, blocking term, and preemption discipline.
func busyWindow(t *Task, hp []*Task, blocking int64, nonPreemptive bool) (int64, error) {
	const maxQ = 4096
	worst := int64(0)
	for q := int64(1); ; q++ {
		if q > maxQ {
			return 0, fmt.Errorf("busy window does not close (overload)")
		}
		var w int64
		if nonPreemptive {
			// Fixed point on the start time of the q-th activation; higher
			// priority work arriving before the start delays it. Earlier
			// activations carry their chain partners' work (chainC); the
			// partner work of the q-th event may also precede its own step.
			base := blocking + (q-1)*t.chainC + (t.chainC - t.C)
			s := base
			for iter := 0; ; iter++ {
				if iter > 10000 {
					return 0, fmt.Errorf("start-time iteration diverges (overload)")
				}
				next := base
				for _, o := range hp {
					next += o.In.EtaPlus(s+1) * o.C
				}
				if next == s {
					break
				}
				s = next
			}
			w = s + t.C
		} else {
			w = blocking + q*t.chainC
			for iter := 0; ; iter++ {
				if iter > 10000 {
					return 0, fmt.Errorf("busy-window iteration diverges (overload)")
				}
				next := blocking + q*t.chainC
				for _, o := range hp {
					next += o.In.EtaPlus(w) * o.C
				}
				if next == w {
					break
				}
				w = next
			}
		}
		// Response measured from the activation's own arrival: in the
		// critical instant the q-th activation arrives at
		// max(0, (q-1)·P − J) after the busy period starts.
		arrival := (q-1)*t.In.P - t.In.J
		if arrival < 0 {
			arrival = 0
		}
		resp := w - arrival
		if resp > worst {
			worst = resp
		}
		// The level busy period closes once the q-th window ends before the
		// (q+1)-th activation can arrive.
		if w <= q*t.In.P-t.In.J {
			break
		}
	}
	return worst, nil
}
