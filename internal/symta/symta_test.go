package symta

import (
	"math/big"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

func ratMS(num, den int64) *big.Rat { return new(big.Rat).SetFrac64(num, den) }

func TestEtaPlus(t *testing.T) {
	s := Stream{P: 10, J: 0}
	cases := []struct {
		delta, want int64
	}{
		{0, 0}, {1, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3},
	}
	for _, c := range cases {
		if got := s.EtaPlus(c.delta); got != c.want {
			t.Errorf("eta+(%d) = %d, want %d", c.delta, got, c.want)
		}
	}
	j := Stream{P: 10, J: 15}
	if got := j.EtaPlus(1); got != 2 {
		t.Errorf("jittered eta+(1) = %d, want 2", got)
	}
	d := Stream{P: 10, J: 100, D: 3}
	if got := d.EtaPlus(6); got != 2 {
		t.Errorf("min-separated eta+(6) = %d, want 2", got)
	}
}

func TestSingleTaskResponseIsWCET(t *testing.T) {
	sys := arch.NewSystem("one")
	p := sys.AddProcessor("P", 10, arch.SchedFPPreempt)
	sc := sys.AddScenario("s", 1, arch.PeriodicUnknownOffset(arch.MS(20, 1)))
	sc.Compute("op", p, 50000) // 5ms
	req := arch.EndToEnd("e2e", sc)
	res, err := Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	if res["e2e"].MS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("single task bound = %s, want 5", res["e2e"].MS.FloatString(3))
	}
}

// contended: hi (5ms / 20ms) and lo (10ms / 40ms) on one processor.
func contended(sched arch.SchedKind) (*arch.System, *arch.Requirement, *arch.Requirement) {
	sys := arch.NewSystem("cont")
	p := sys.AddProcessor("P", 10, sched)
	hi := sys.AddScenario("hi", 2, arch.PeriodicUnknownOffset(arch.MS(20, 1)))
	hi.Compute("hop", p, 50000)
	lo := sys.AddScenario("lo", 1, arch.PeriodicUnknownOffset(arch.MS(40, 1)))
	lo.Compute("lop", p, 100000)
	return sys, arch.EndToEnd("hi", hi), arch.EndToEnd("lo", lo)
}

func TestClassicBlockingNumbers(t *testing.T) {
	sys, hiReq, loReq := contended(arch.SchedFP)
	res, err := Analyze(sys, []*arch.Requirement{hiReq, loReq})
	if err != nil {
		t.Fatal(err)
	}
	// Non-preemptive FP textbook values: R(hi) = 10 + 5, R(lo) = 5 + 10.
	if res["hi"].MS.Cmp(ratMS(15, 1)) != 0 {
		t.Errorf("hi bound = %s, want 15", res["hi"].MS.FloatString(3))
	}
	if res["lo"].MS.Cmp(ratMS(15, 1)) != 0 {
		t.Errorf("lo bound = %s, want 15", res["lo"].MS.FloatString(3))
	}
}

func TestPreemptiveNumbers(t *testing.T) {
	sys, hiReq, loReq := contended(arch.SchedFPPreempt)
	res, err := Analyze(sys, []*arch.Requirement{hiReq, loReq})
	if err != nil {
		t.Fatal(err)
	}
	if res["hi"].MS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("preemptive hi bound = %s, want 5", res["hi"].MS.FloatString(3))
	}
	if res["lo"].MS.Cmp(ratMS(15, 1)) != 0 {
		t.Errorf("preemptive lo bound = %s, want 15", res["lo"].MS.FloatString(3))
	}
}

func TestBurstyResponse(t *testing.T) {
	// P=20, J=40, D=0, C=5: three stacked activations, the last responds in
	// 15ms — busy-window analysis is exact here.
	sys := arch.NewSystem("bur")
	p := sys.AddProcessor("P", 10, arch.SchedFP)
	sc := sys.AddScenario("s", 1, arch.Bursty(arch.MS(20, 1), arch.MS(40, 1), arch.MS(0, 1)))
	sc.Compute("op", p, 50000)
	req := arch.EndToEnd("e2e", sc)
	res, err := Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	if res["e2e"].MS.Cmp(ratMS(15, 1)) != 0 {
		t.Errorf("bursty bound = %s, want 15", res["e2e"].MS.FloatString(3))
	}
}

func TestBoundsDominateModelChecker(t *testing.T) {
	// The analytic bound must never be below the exact WCRT (Table 2's
	// SymTA/S ≥ UPPAAL relation), on both disciplines and both tasks.
	for _, sched := range []arch.SchedKind{arch.SchedFP, arch.SchedFPPreempt} {
		sys, hiReq, loReq := contended(sched)
		ana, err := Analyze(sys, []*arch.Requirement{hiReq, loReq})
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range []*arch.Requirement{hiReq, loReq} {
			exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 200}, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ana[req.Name].MS.Cmp(exact.MS) < 0 {
				t.Errorf("sched %v %s: analytic bound %s below exact %s",
					sched, req.Name, ana[req.Name].MS.FloatString(3), exact.MS.FloatString(3))
			}
		}
	}
}

func TestChainJitterPropagation(t *testing.T) {
	// Two-step chain on distinct processors with a competing task on the
	// second: the second step's bound must account for upstream response
	// jitter. The end-to-end bound dominates the exact WCRT.
	sys := arch.NewSystem("chain")
	p1 := sys.AddProcessor("P1", 10, arch.SchedFPPreempt)
	p2 := sys.AddProcessor("P2", 10, arch.SchedFPPreempt)
	main := sys.AddScenario("main", 1, arch.PeriodicUnknownOffset(arch.MS(50, 1)))
	main.Compute("a", p1, 100000).Compute("b", p2, 100000)
	rival := sys.AddScenario("rival", 2, arch.PeriodicUnknownOffset(arch.MS(25, 1)))
	rival.Compute("r", p2, 50000)
	req := arch.EndToEnd("e2e", main)
	ana, err := Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ana["e2e"].MS.Cmp(exact.MS) < 0 {
		t.Errorf("chain bound %s below exact %s",
			ana["e2e"].MS.FloatString(3), exact.MS.FloatString(3))
	}
	if len(ana["e2e"].PerStepMS) != 2 {
		t.Errorf("expected 2 per-step bounds, got %d", len(ana["e2e"].PerStepMS))
	}
}

func TestSpanRequirement(t *testing.T) {
	sys := arch.NewSystem("span")
	p := sys.AddProcessor("P", 10, arch.SchedFPPreempt)
	p2 := sys.AddProcessor("P2", 10, arch.SchedFPPreempt)
	sc := sys.AddScenario("s", 1, arch.PeriodicUnknownOffset(arch.MS(100, 1)))
	sc.Compute("a", p, 100000).Compute("b", p2, 50000)
	res, err := Analyze(sys, []*arch.Requirement{arch.Span("ab", sc, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// Only step b is inside the span: 5ms.
	if res["ab"].MS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("span bound = %s, want 5", res["ab"].MS.FloatString(3))
	}
}

func TestOverloadDetected(t *testing.T) {
	sys := arch.NewSystem("over")
	p := sys.AddProcessor("P", 10, arch.SchedFPPreempt)
	sc := sys.AddScenario("s", 1, arch.PeriodicUnknownOffset(arch.MS(8, 1)))
	sc.Compute("op", p, 100000) // 10ms every 8ms
	if _, err := Analyze(sys, []*arch.Requirement{arch.EndToEnd("e", sc)}); err == nil {
		t.Error("overloaded resource must be reported")
	}
}
