package wire

import (
	"testing"

	"repro/internal/core"
)

// TestErrorCodeRoundTrip pins the failure taxonomy both ways: every core
// abort sentinel maps to exactly one wire code, and relaying that code
// (owner node → completion event → frontend) re-derives the same sentinel,
// so node-local and relayed failures cannot drift apart.
func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := map[string]error{
		CodeCanceled:         core.ErrCanceled,
		CodeDeadlineExceeded: core.ErrDeadlineExceeded,
		CodeMemoryBudget:     core.ErrMemoryBudget,
		CodeStateBudget:      core.ErrStateBudget,
	}
	for code, err := range sentinels {
		if got := CodeForError(err); got != code {
			t.Errorf("CodeForError(%v) = %q, want %q", err, got, code)
		}
		back := ErrorForCode(code)
		if back == nil {
			t.Fatalf("ErrorForCode(%q) = nil, want %v", code, err)
		}
		if CodeForError(back) != code {
			t.Errorf("relay round trip broke: %q -> %v -> %q", code, back, CodeForError(back))
		}
	}
	// Codes without a core counterpart (transport rejections, dispatch
	// failures) must not alias onto a sentinel.
	for _, code := range []string{CodeDispatchFailed, CodeBadRequest, CodeBodyTooLarge,
		CodeOverloaded, CodeShuttingDown, CodeNotFound, CodeInternal} {
		if err := ErrorForCode(code); err != nil {
			t.Errorf("ErrorForCode(%q) = %v, want nil", code, err)
		}
	}
	// Unnamed errors stay unnamed.
	if got := CodeForError(errTest); got != "" {
		t.Errorf("CodeForError(plain error) = %q, want empty", got)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "plain" }
