// Package wire defines the JSON wire format shared by the taserved analysis
// service (internal/serve) and the -json modes of the archcheck and tacheck
// CLIs. Both sides build their results through the encoders here — one
// package owns the shapes, so the CLI output and the service responses
// cannot drift apart. The format carries exact values: worst-case response
// times are rationals rendered with RatString (bit-comparable across runs),
// clock suprema carry their strictness, and exploration Stats mirror
// core.Stats field for field.
package wire

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/ta"
)

// Stats mirrors core.Stats on the wire.
type Stats struct {
	Stored      int   `json:"stored"`
	Popped      int   `json:"popped"`
	Transitions int   `json:"transitions"`
	Deadlocks   int   `json:"deadlocks"`
	Truncated   bool  `json:"truncated"`
	DurationNS  int64 `json:"duration_ns"`
}

// FromStats converts exploration statistics to their wire form.
func FromStats(s core.Stats) Stats {
	return Stats{
		Stored:      s.Stored,
		Popped:      s.Popped,
		Transitions: s.Transitions,
		Deadlocks:   s.Deadlocks,
		Truncated:   s.Truncated,
		DurationNS:  s.Duration.Nanoseconds(),
	}
}

// WCRT is one requirement's worst-case response time verdict.
type WCRT struct {
	Req string `json:"req"`
	// MS is the exact response-time bound in milliseconds as a rational
	// string ("15", "125/4") — bit-comparable, no float rounding.
	MS string `json:"ms"`
	// Display renders the bound the way the paper's tables do: plain
	// milliseconds for exact values, "> v" for lower bounds.
	Display       string `json:"display"`
	Attained      bool   `json:"attained"`
	Exact         bool   `json:"exact"`
	BeyondHorizon bool   `json:"beyond_horizon"`
}

// FromWCRT converts one arch verdict to its wire form.
func FromWCRT(r arch.WCRTResult) WCRT {
	return WCRT{
		Req:           r.Req.Name,
		MS:            r.MS.RatString(),
		Display:       r.String(),
		Attained:      r.Attained,
		Exact:         r.Exact,
		BeyondHorizon: r.BeyondHorizon,
	}
}

// ArchResponse is the result of one architecture analysis: every
// requirement's WCRT from one shared exploration.
type ArchResponse struct {
	Results []WCRT `json:"results"`
	// Stats is the effort of the single shared sweep (not a per-requirement
	// sum; all requirements ride one exploration).
	Stats Stats `json:"stats"`
}

// FromAllResult converts a batch analysis outcome to its wire form.
func FromAllResult(all *arch.AllResult) ArchResponse {
	out := ArchResponse{Results: make([]WCRT, len(all.Results)), Stats: FromStats(all.Stats)}
	for i, r := range all.Results {
		out.Results[i] = FromWCRT(r)
	}
	return out
}

// TAQuery is one query of a timed-automata model submission. Kind selects
// the query; the other fields parameterize it:
//
//	reach    — Pred (a core.ParsePredicate expression): is a matching state
//	           reachable? Verdict true = reachable, Trace is the witness.
//	safety   — Pred: does AG(Pred) hold? Verdict true = holds, Trace is the
//	           counterexample when it does not.
//	sup      — Clock and Pred: the supremum of the clock over states
//	           matching Pred (the WCRT measurement).
//	deadlock — no parameters: is the model deadlock-free? Verdict true =
//	           free, Trace is the witness when it is not.
type TAQuery struct {
	Kind  string `json:"kind"`
	Pred  string `json:"pred,omitempty"`
	Clock string `json:"clock,omitempty"`
}

// TAQueryResult is the answer to one TAQuery, echoing its spec.
type TAQueryResult struct {
	Kind  string `json:"kind"`
	Pred  string `json:"pred,omitempty"`
	Clock string `json:"clock,omitempty"`
	// Verdict is the boolean answer (see TAQuery); for sup queries it
	// reports whether any state matched Pred.
	Verdict bool `json:"verdict"`
	// Sup renders the supremum bound with exact strictness ("<=42", "<10",
	// "inf"); empty for other kinds or when no state matched.
	Sup string `json:"sup,omitempty"`
	// SupValue/SupAttained decompose Sup for machine use: the bound value
	// and whether it is attained (≤) rather than approached (<). Never
	// elided, so a legitimate supremum of 0 (or a strict bound) stays
	// distinguishable from an absent answer; Sup empty + Verdict false mark
	// the no-value cases.
	SupValue    int64 `json:"sup_value"`
	SupAttained bool  `json:"sup_attained"`
	// SupUnbounded reports the supremum escaped the extrapolation horizon
	// (raise max_const to measure it).
	SupUnbounded bool `json:"sup_unbounded,omitempty"`
	// Trace is the formatted symbolic run witnessing the verdict, when one
	// exists (reach witness, safety counterexample, deadlock witness,
	// unbounded-sup witness).
	Trace string `json:"trace,omitempty"`
}

// TAResponse is the result of one timed-automata submission: every query
// answered from one exploration.
type TAResponse struct {
	Queries []TAQueryResult `json:"queries"`
	Stats   Stats           `json:"stats"`
}

// ParseTAModel parses .ta source for the given query set, registering
// maxConst (when positive) as the extrapolation horizon of every sup query's
// clock before finalization — the horizon must be known to the network before
// it freezes, so model parsing and query specs travel together.
func ParseTAModel(src string, specs []TAQuery, maxConst int64) (*ta.Network, error) {
	var supClocks []string
	for _, q := range specs {
		if q.Kind == "sup" && q.Clock != "" {
			supClocks = append(supClocks, q.Clock)
		}
	}
	if maxConst <= 0 || len(supClocks) == 0 {
		return ta.Parse(src)
	}
	return ta.ParseWithHook(src, func(n *ta.Network) error {
		for _, name := range supClocks {
			found := false
			for _, c := range n.Clocks {
				if c.Name == name {
					n.EnsureMaxConst(c.ID, maxConst)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown clock %q", name)
			}
		}
		return nil
	})
}

// taSlot pairs one spec with the concrete query answering it.
type taSlot struct {
	spec  TAQuery
	reach *core.ReachQuery // reach, and safety (negated predicate)
	sup   *core.SupClockQuery
	dead  *core.DeadlockQuery
}

// TARun binds a TAQuery list to the core queries that answer it in ONE
// exploration. Build it with NewTARun, run Queries() through
// core.Checker.RunQueries, then encode with Response — the CLI and the
// service both follow exactly this path.
type TARun struct {
	net   *ta.Network
	slots []taSlot
}

// NewTARun compiles the query specs against the network. Every spec becomes
// one core query; safety queries reach their negation so the witness is the
// counterexample.
func NewTARun(net *ta.Network, specs []TAQuery) (*TARun, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("wire: no queries")
	}
	r := &TARun{net: net, slots: make([]taSlot, len(specs))}
	for i, spec := range specs {
		slot := taSlot{spec: spec}
		switch spec.Kind {
		case "reach":
			pred, err := core.ParsePredicate(net, spec.Pred)
			if err != nil {
				return nil, err
			}
			slot.reach = core.NewReachQuery(pred)
		case "safety":
			pred, err := core.ParsePredicate(net, spec.Pred)
			if err != nil {
				return nil, err
			}
			slot.reach = core.NewReachQuery(func(s *core.State) bool { return !pred(s) })
		case "sup":
			clock, err := core.FindClock(net, spec.Clock)
			if err != nil {
				return nil, err
			}
			pred, err := core.ParsePredicate(net, spec.Pred)
			if err != nil {
				return nil, err
			}
			slot.sup = core.NewSupClockQuery(clock.ID, pred)
		case "deadlock":
			slot.dead = core.NewDeadlockQuery()
		default:
			return nil, fmt.Errorf("wire: query %d: unknown kind %q (want reach, safety, sup, or deadlock)", i, spec.Kind)
		}
		r.slots[i] = slot
	}
	return r, nil
}

// Queries returns the core query set, in spec order, for one RunQueries call.
func (r *TARun) Queries() []core.Query {
	qs := make([]core.Query, len(r.slots))
	for i, slot := range r.slots {
		switch {
		case slot.reach != nil:
			qs[i] = slot.reach
		case slot.sup != nil:
			qs[i] = slot.sup
		default:
			qs[i] = slot.dead
		}
	}
	return qs
}

// Response encodes the answered queries. Call strictly after RunQueries
// returned.
func (r *TARun) Response(stats core.Stats) TAResponse {
	out := TAResponse{Queries: make([]TAQueryResult, len(r.slots)), Stats: FromStats(stats)}
	for i, slot := range r.slots {
		res := TAQueryResult{Kind: slot.spec.Kind, Pred: slot.spec.Pred, Clock: slot.spec.Clock}
		switch slot.spec.Kind {
		case "reach":
			res.Verdict = slot.reach.Found
			if slot.reach.Found {
				res.Trace = core.FormatTrace(r.net, slot.reach.Trace)
			}
		case "safety":
			res.Verdict = !slot.reach.Found
			if slot.reach.Found {
				res.Trace = core.FormatTrace(r.net, slot.reach.Trace)
			}
		case "sup":
			sup := slot.sup.Result
			res.Verdict = sup.Seen
			switch {
			case !sup.Seen:
			case sup.Unbounded:
				res.SupUnbounded = true
				res.Sup = "inf"
				res.Trace = core.FormatTrace(r.net, sup.Witness)
			default:
				res.Sup = sup.Max.String()
				res.SupValue = sup.Max.Value()
				res.SupAttained = sup.Max.Weak()
			}
		case "deadlock":
			res.Verdict = slot.dead.Result.Free
			if !slot.dead.Result.Free {
				res.Trace = core.FormatTrace(r.net, slot.dead.Result.Witness)
			}
		}
		out.Queries[i] = res
	}
	return out
}
