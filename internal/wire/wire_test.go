package wire

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

func tinyTA(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/tiny.ta")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTARunMatchesDirectQueries runs the four query kinds through the shared
// TARun path and checks each verdict against the dedicated checker methods.
func TestTARunMatchesDirectQueries(t *testing.T) {
	specs := []TAQuery{
		{Kind: "reach", Pred: "RAD.busy"},
		{Kind: "safety", Pred: "rec<=4"},
		{Kind: "sup", Clock: "x", Pred: "RAD.busy"},
		{Kind: "deadlock"},
	}
	net, err := ParseTAModel(tinyTA(t), specs, 20)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewTARun(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(net)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := checker.RunQueries(core.Options{}, run.Queries()...)
	if err != nil {
		t.Fatal(err)
	}
	resp := run.Response(stats)
	if len(resp.Queries) != 4 {
		t.Fatalf("got %d query results", len(resp.Queries))
	}
	if !resp.Queries[0].Verdict || resp.Queries[0].Trace == "" {
		t.Errorf("reach RAD.busy: %+v, want reachable with a trace", resp.Queries[0])
	}
	if !resp.Queries[1].Verdict || resp.Queries[1].Trace != "" {
		t.Errorf("safety rec<=4: %+v, want holds without a trace", resp.Queries[1])
	}
	sup := resp.Queries[2]
	if !sup.Verdict || sup.Sup != "<=3" || sup.SupValue != 3 || !sup.SupAttained || sup.SupUnbounded {
		t.Errorf("sup x @ RAD.busy: %+v, want <=3 attained", sup)
	}
	if !resp.Queries[3].Verdict || resp.Queries[3].Trace != "" {
		t.Errorf("tiny model is deadlock-free (the generate/drain cycle never wedges): %+v", resp.Queries[3])
	}
	if resp.Stats.Stored == 0 || resp.Stats.DurationNS <= 0 {
		t.Errorf("stats not populated: %+v", resp.Stats)
	}
}

// TestTARunValidation covers the spec error paths.
func TestTARunValidation(t *testing.T) {
	net, err := ParseTAModel(tinyTA(t), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, specs := range [][]TAQuery{
		nil,
		{{Kind: "warp"}},
		{{Kind: "reach", Pred: "NO.loc"}},
		{{Kind: "sup", Clock: "ghost", Pred: "RAD.busy"}},
	} {
		if _, err := NewTARun(net, specs); err == nil {
			t.Errorf("specs %+v: expected an error", specs)
		}
	}
	if _, err := ParseTAModel(tinyTA(t), []TAQuery{{Kind: "sup", Clock: "ghost", Pred: "x"}}, 10); err == nil {
		t.Error("unknown sup clock with a horizon must fail at parse")
	}
}

// TestFromAllResultExact pins the arch encoding: exact rational strings, the
// paper-table display, and stats mirroring.
func TestFromAllResultExact(t *testing.T) {
	data, err := os.ReadFile("../../testdata/tiny.json")
	if err != nil {
		t.Fatal(err)
	}
	sys, reqs, err := arch.ParseSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	all, err := arch.AnalyzeAll(sys, reqs, arch.Options{HorizonMS: 100}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp := FromAllResult(all)
	if len(resp.Results) != len(reqs) {
		t.Fatalf("got %d results for %d requirements", len(resp.Results), len(reqs))
	}
	for i, r := range resp.Results {
		want := all.Results[i]
		if r.Req != want.Req.Name || r.MS != want.MS.RatString() || r.Display != want.String() ||
			r.Exact != want.Exact || r.Attained != want.Attained {
			t.Errorf("result %d: wire %+v does not mirror %+v", i, r, want)
		}
	}
	if resp.Stats.Stored != all.Stats.Stored {
		t.Errorf("stats stored %d != %d", resp.Stats.Stored, all.Stats.Stored)
	}
	// The wire form must be valid JSON with stable field names.
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back ArchResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].MS != resp.Results[0].MS {
		t.Error("JSON round trip lost the exact MS string")
	}
}

// TestLabelKindWireBytesStable pins the wire spelling of transition kinds
// after core.Label.Kind became an integer enum: formatted traces — the only
// place labels reach the wire — must still say "init", "tau", "sync", and
// "broadcast", and the JSON response must round-trip byte-identically.
func TestLabelKindWireBytesStable(t *testing.T) {
	specs := []TAQuery{{Kind: "reach", Pred: "RAD.busy"}}
	net, err := ParseTAModel(tinyTA(t), specs, 20)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewTARun(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(net)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := checker.RunQueries(core.Options{}, run.Queries()...)
	if err != nil {
		t.Fatal(err)
	}
	resp := run.Response(stats)
	trace := resp.Queries[0].Trace
	if trace == "" {
		t.Fatal("reach RAD.busy produced no trace")
	}
	// The witness passes through the urgent broadcast "hurry", so the trace
	// must carry the historical spellings of both the initial pseudo-label
	// and the broadcast kind.
	for _, want := range []string{"init", "broadcast(hurry):"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace lost the %q spelling:\n%s", want, trace)
		}
	}
	for _, enum := range []core.LabelKind{core.LabelNone, core.LabelTau, core.LabelSync, core.LabelBroadcast} {
		if s := enum.String(); s != map[core.LabelKind]string{
			core.LabelNone: "init", core.LabelTau: "tau",
			core.LabelSync: "sync", core.LabelBroadcast: "broadcast",
		}[enum] {
			t.Errorf("LabelKind(%d).String() = %q", enum, s)
		}
	}
	// Byte-identical JSON round trip: unmarshal and re-marshal.
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back TAResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("wire bytes not stable under round trip:\n%s\n%s", b, b2)
	}
	if back.Queries[0].Trace != trace {
		t.Error("round trip altered the trace string")
	}
}
