package wire

// ErrorResponse is the structured error body of every non-2xx taserved
// response. Error is the human-readable message (the historical `{"error":
// "..."}` shape, so old clients keep decoding); the remaining fields are
// machine guidance added for overload shedding.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code names the failure class machine-readably: "bad_request",
	// "body_too_large", "overloaded", "shutting_down", "not_found",
	// "internal".
	Code string `json:"code,omitempty"`
	// RetryAfterMS, when nonzero, tells the client the request is worth
	// retrying after this many milliseconds (mirrors the Retry-After header,
	// derived from the server's queue depth at rejection time).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// RetryJitterMS asks the client to add up to this much uniform random
	// extra delay before retrying, so a herd of shed clients does not
	// reconverge on the same instant.
	RetryJitterMS int64 `json:"retry_jitter_ms,omitempty"`
}
