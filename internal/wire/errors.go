package wire

import (
	"errors"

	"repro/internal/core"
)

// Error codes shared by every layer that names a failure on the wire: the
// serve job manager (node-local failures), both dispatch backends (failures
// relayed between nodes in completion events), and the CLIs (budget aborts).
// One set of constants means a job that failed with MemoryBudgetExceeded on
// the node that computed it reports exactly MemoryBudgetExceeded on every
// frontend that relayed it — the round-trip test in errors_test.go pins the
// mapping so the strings cannot drift.
//
// Two naming families, both historical and now frozen:
//
//   - Job failure codes (CamelCase) name why an analysis ended: they appear
//     as the job's `error` field and inside relayed completion events.
//   - Transport rejection codes (snake_case) name why a request never became
//     a job: they appear as ErrorResponse.Code on non-2xx responses.
const (
	// Job failure codes.
	CodeDeadlineExceeded = "DeadlineExceeded"
	CodeMemoryBudget     = "MemoryBudgetExceeded"
	CodeStateBudget      = "StateBudgetExceeded"
	CodeCanceled         = "canceled"
	// CodeDispatchFailed marks a job whose owning node became unreachable
	// mid-flight (broker closed after dispatch): the submission was never
	// computed, resubmitting starts a fresh attempt.
	CodeDispatchFailed = "DispatchFailed"

	// Transport rejection codes.
	CodeBadRequest   = "bad_request"
	CodeBodyTooLarge = "body_too_large"
	CodeOverloaded   = "overloaded"
	CodeShuttingDown = "shutting_down"
	CodeNotFound     = "not_found"
	CodeInternal     = "internal"
)

// CodeForError names the job-failure class of a core abort sentinel; empty
// for errors without a named class (they travel as their message).
func CodeForError(err error) string {
	switch {
	case errors.Is(err, core.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, core.ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, core.ErrMemoryBudget):
		return CodeMemoryBudget
	case errors.Is(err, core.ErrStateBudget):
		return CodeStateBudget
	default:
		return ""
	}
}

// ErrorForCode is the inverse of CodeForError: the core sentinel a relayed
// failure code stands for, or nil for codes with no core counterpart. A node
// that receives a completion event re-derives the sentinel so its local
// accounting (canceled/expired counters, retry-on-resubmit policy) treats a
// remote failure exactly like a local one.
func ErrorForCode(code string) error {
	switch code {
	case CodeCanceled:
		return core.ErrCanceled
	case CodeDeadlineExceeded:
		return core.ErrDeadlineExceeded
	case CodeMemoryBudget:
		return core.ErrMemoryBudget
	case CodeStateBudget:
		return core.ErrStateBudget
	default:
		return nil
	}
}

// ErrorResponse is the structured error body of every non-2xx taserved
// response. Error is the human-readable message (the historical `{"error":
// "..."}` shape, so old clients keep decoding); the remaining fields are
// machine guidance added for overload shedding.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code names the failure class machine-readably; one of the Code*
	// transport constants above.
	Code string `json:"code,omitempty"`
	// RetryAfterMS, when nonzero, tells the client the request is worth
	// retrying after this many milliseconds (mirrors the Retry-After header,
	// derived from the server's queue depth at rejection time).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// RetryJitterMS asks the client to add up to this much uniform random
	// extra delay before retrying, so a herd of shed clients does not
	// reconverge on the same instant.
	RetryJitterMS int64 `json:"retry_jitter_ms,omitempty"`
}
