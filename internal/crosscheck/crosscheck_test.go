// Package crosscheck holds end-to-end integration tests that pit the four
// analysis engines against each other on randomized architectures: the
// discrete-event simulator must never observe more than the exact WCRT from
// the zone-based model checker, and the two analytic techniques must never
// report less. This is the tool ordering of the paper's Table 2, asserted
// mechanically across many random systems.
package crosscheck

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/symta"
)

// randomSystem generates a small well-formed two-application system with
// light load (no overload), random durations, schedulers, and event models.
func randomSystem(r *rand.Rand) (*arch.System, []*arch.Requirement) {
	sys := arch.NewSystem("random")
	scheds := []arch.SchedKind{arch.SchedNondet, arch.SchedFP, arch.SchedFPPreempt}
	p1 := sys.AddProcessor("P1", 10, scheds[r.Intn(3)])
	p2 := sys.AddProcessor("P2", 10, scheds[r.Intn(3)])
	bus := sys.AddBus("BUS", 8, scheds[r.Intn(2)]) // nondet or fp

	mkScenario := func(name string, prio int, period int64) *arch.Scenario {
		var model arch.EventModel
		switch r.Intn(4) {
		case 0:
			model = arch.Periodic(arch.MS(period, 1), arch.MS(r.Int63n(period), 1))
		case 1:
			model = arch.PeriodicUnknownOffset(arch.MS(period, 1))
		case 2:
			model = arch.Sporadic(arch.MS(period, 1))
		default:
			model = arch.PeriodicJitter(arch.MS(period, 1), arch.MS(r.Int63n(period)+1, 1))
		}
		sc := sys.AddScenario(name, prio, model)
		steps := 1 + r.Intn(3)
		for i := 0; i < steps; i++ {
			ms := 1 + r.Int63n(4)
			// Durations in whole milliseconds: instructions = ms·10⁴ at
			// 10 MIPS, bytes = ms at 8 kbit/s.
			switch r.Intn(3) {
			case 0:
				sc.Compute("c1_"+name+string(rune('a'+i)), p1, ms*10000)
			case 1:
				sc.Compute("c2_"+name+string(rune('a'+i)), p2, ms*10000)
			default:
				sc.Transfer("m_"+name+string(rune('a'+i)), bus, ms)
			}
		}
		return sc
	}
	// Periods far above total work keep every resource well under
	// saturation for any alignment.
	a := mkScenario("a", 2, 60)
	b := mkScenario("b", 1, 90)
	return sys, []*arch.Requirement{arch.EndToEnd("a", a), arch.EndToEnd("b", b)}
}

func TestCrossEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep is slow")
	}
	r := rand.New(rand.NewSource(2006))
	for trial := 0; trial < 12; trial++ {
		sys, reqs := randomSystem(r)
		for _, req := range reqs {
			exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 400},
				core.Options{MaxStates: 400_000})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, req.Name, err)
			}
			if !exact.Exact {
				continue // beyond budget: cannot compare against a bound
			}
			simRes, err := sim.Simulate(sys, []*arch.Requirement{req},
				sim.Options{Seed: int64(trial) + 1, HorizonMS: 4000, Replications: 6})
			if err != nil {
				t.Fatalf("trial %d %s sim: %v", trial, req.Name, err)
			}
			if simRes[req.Name].MaxMS.Cmp(exact.MS) > 0 {
				t.Errorf("trial %d %s: simulated %s exceeds exact %s",
					trial, req.Name, simRes[req.Name].MaxMS.FloatString(3), exact.MS.FloatString(3))
			}
			symtaRes, err := symta.Analyze(sys, []*arch.Requirement{req})
			if err != nil {
				t.Fatalf("trial %d %s symta: %v", trial, req.Name, err)
			}
			if symtaRes[req.Name].MS.Cmp(exact.MS) < 0 {
				t.Errorf("trial %d %s: busy-window bound %s below exact %s",
					trial, req.Name, symtaRes[req.Name].MS.FloatString(3), exact.MS.FloatString(3))
			}
			rtcRes, err := rtc.Analyze(sys, []*arch.Requirement{req})
			if err != nil {
				t.Fatalf("trial %d %s rtc: %v", trial, req.Name, err)
			}
			if rtcRes[req.Name].MS.Cmp(exact.MS) < 0 {
				t.Errorf("trial %d %s: rtc bound %s below exact %s",
					trial, req.Name, rtcRes[req.Name].MS.FloatString(3), exact.MS.FloatString(3))
			}
		}
	}
}

// TestBinaryVsSupOnRandomSystems cross-validates the two WCRT procedures of
// internal/core on random systems: the paper's binary search (Property 1)
// must land exactly one time unit above the attained supremum.
func TestBinaryVsSupOnRandomSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep is slow")
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		sys, reqs := randomSystem(r)
		req := reqs[trial%2]
		supRes, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 400},
			core.Options{MaxStates: 300_000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !supRes.Exact {
			continue
		}
		binRes, _, err := arch.AnalyzeWCRTBinary(sys, req, arch.Options{HorizonMS: 400},
			core.Options{}, 400)
		if err != nil {
			t.Fatalf("trial %d binary: %v", trial, err)
		}
		if supRes.MS.Cmp(binRes.MS) != 0 {
			t.Errorf("trial %d %s: sup %s != binary %s", trial, req.Name,
				supRes.MS.FloatString(4), binRes.MS.FloatString(4))
		}
	}
}

// TestTDMACrossEngines validates the TDMA extension across all four engines:
// the analytic formulas match the exact zone-graph value, and the simulator
// stays below it.
func TestTDMACrossEngines(t *testing.T) {
	sys := arch.NewSystem("tdma")
	bus := sys.AddBus("BUS", 8, arch.SchedTDMA)
	a := sys.AddScenario("a", 2, arch.Sporadic(arch.MS(60, 1)))
	a.Transfer("am", bus, 3)
	b := sys.AddScenario("b", 1, arch.Sporadic(arch.MS(60, 1)))
	b.Transfer("bm", bus, 4)
	bus.TDMA = &arch.TDMAConfig{
		CycleMS: arch.MS(20, 1),
		Slots: []arch.TDMASlot{
			{Scenario: a, StartMS: arch.MS(0, 1), EndMS: arch.MS(5, 1)},
			{Scenario: b, StartMS: arch.MS(10, 1), EndMS: arch.MS(15, 1)},
		},
	}
	reqs := []*arch.Requirement{arch.EndToEnd("a", a), arch.EndToEnd("b", b)}
	symtaRes, err := symta.Analyze(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rtcRes, err := rtc.Analyze(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Simulate(sys, reqs, sim.Options{Seed: 5, HorizonMS: 5000, Replications: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 300}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if symtaRes[req.Name].MS.Cmp(exact.MS) != 0 {
			t.Errorf("%s: symta %s != exact %s (the TDMA formula is exact here)",
				req.Name, symtaRes[req.Name].MS.FloatString(3), exact.MS.FloatString(3))
		}
		if rtcRes[req.Name].MS.Cmp(exact.MS) != 0 {
			t.Errorf("%s: rtc %s != exact %s", req.Name,
				rtcRes[req.Name].MS.FloatString(3), exact.MS.FloatString(3))
		}
		if simRes[req.Name].MaxMS.Cmp(exact.MS) > 0 {
			t.Errorf("%s: sim %s exceeds exact %s", req.Name,
				simRes[req.Name].MaxMS.FloatString(3), exact.MS.FloatString(3))
		}
	}
}

// TestExtraLUInflatesSuprema documents why the engine defaults to Extra_M:
// under Extra_LU, a sporadic generator's clock (which only appears in
// lower-bound guards, so U = 0) loses all its upper-bound matrix rows, and
// with them the orderings between arrivals and the rest of the system. On a
// TDMA bus this admits a spurious second arrival inside the minimum
// separation window, queueing behind the first and inflating the measured
// worst-case response time beyond the true supremum.
func TestExtraLUInflatesSuprema(t *testing.T) {
	sys := arch.NewSystem("tdma")
	bus := sys.AddBus("BUS", 8, arch.SchedTDMA)
	a := sys.AddScenario("a", 2, arch.Sporadic(arch.MS(60, 1)))
	a.Transfer("am", bus, 3)
	b := sys.AddScenario("b", 1, arch.Sporadic(arch.MS(60, 1)))
	b.Transfer("bm", bus, 4)
	bus.TDMA = &arch.TDMAConfig{
		CycleMS: arch.MS(20, 1),
		Slots: []arch.TDMASlot{
			{Scenario: a, StartMS: arch.MS(0, 1), EndMS: arch.MS(5, 1)},
			{Scenario: b, StartMS: arch.MS(10, 1), EndMS: arch.MS(15, 1)},
		},
	}
	req := arch.EndToEnd("b", b)

	compiled, err := arch.Compile(sys, req, arch.Options{HorizonMS: 300})
	if err != nil {
		t.Fatal(err)
	}
	supWith := func(coarse bool) dbm.Bound {
		checker, err := core.NewChecker(compiled.Net)
		if err != nil {
			t.Fatal(err)
		}
		checker.SetCoarseExtrapolation(coarse)
		res, err := checker.SupClock(compiled.Obs.Y.ID, func(s *core.State) bool {
			return s.Locs[compiled.Obs.Proc] == compiled.Obs.Seen
		}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Max
	}
	exact := supWith(false)
	coarse := supWith(true)
	if exact >= coarse {
		t.Errorf("expected LU to strictly inflate the supremum: exact %v vs LU %v", exact, coarse)
	}
	// Cross-check the exact value: worst case is one full cycle plus the
	// transfer, 24ms in model units.
	scale := compiled.Scale.Int64()
	if exact != dbm.LE(24*scale) {
		t.Errorf("exact sup = %v, want <=%d", exact, 24*scale)
	}
}

// TestEtaPlusMatchesEventList cross-validates the two independent
// implementations of the PJD upper event-count curve: symta's closed-form
// EtaPlus and rtc's explicit critical-alignment event list.
func TestEtaPlusMatchesEventList(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		p := int64(r.Intn(20) + 1)
		j := int64(r.Intn(60))
		s := symta.Stream{P: p, J: j}
		a := rtc.Arrival{P: p, J: j, C: 1}
		for _, delta := range []int64{0, 1, p - 1, p, p + 1, j, j + p, 50} {
			if delta < 0 {
				continue
			}
			// EtaPlus counts events in a window of length delta; the event
			// list realizes the same bound as arrivals strictly before
			// delta under the critical alignment.
			want := a.CountBefore(delta)
			got := s.EtaPlus(delta)
			if got != want {
				t.Fatalf("P=%d J=%d delta=%d: symta eta+ = %d, rtc count = %d",
					p, j, delta, got, want)
			}
		}
	}
}

// TestTDMABurstyBacklog pins the TDMA busy-period regression: a bursty
// stream stacks three messages, and the third waits three full cycles. The
// analytic formulas must track the exact zone-engine value (66 ms here),
// not stop at the first activation's bound.
func TestTDMABurstyBacklog(t *testing.T) {
	sys := arch.NewSystem("tdma-bursty")
	bus := sys.AddBus("BUS", 8, arch.SchedTDMA)
	bulk := sys.AddScenario("bulk", 1, arch.Bursty(arch.MS(30, 1), arch.MS(60, 1), arch.MS(0, 1)))
	bulk.Transfer("chunk", bus, 6)
	bus.TDMA = &arch.TDMAConfig{
		CycleMS: arch.MS(20, 1),
		Slots:   []arch.TDMASlot{{Scenario: bulk, StartMS: arch.MS(3, 1), EndMS: arch.MS(10, 1)}},
	}
	req := arch.EndToEnd("bulk", bulk)

	exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 300}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The release deadlines of the bursty stream couple with the grant
	// phase: the burst of three can only form right at an event deadline,
	// which the exact analysis exploits (59 ms) and the phase-oblivious
	// analytic formula cannot (66 ms, still a safe bound).
	if exact.MS.RatString() != "59" {
		t.Fatalf("exact bursty TDMA WCRT = %s, want 59", exact.MS.FloatString(3))
	}
	symtaRes, err := symta.Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	rtcRes, err := rtc.Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	if symtaRes["bulk"].MS.Cmp(exact.MS) < 0 {
		t.Errorf("symta TDMA bound %s below exact %s",
			symtaRes["bulk"].MS.FloatString(3), exact.MS.FloatString(3))
	}
	if symtaRes["bulk"].MS.RatString() != "66" {
		t.Errorf("symta TDMA bound = %s, want the 3-cycle backlog bound 66",
			symtaRes["bulk"].MS.FloatString(3))
	}
	if rtcRes["bulk"].MS.Cmp(exact.MS) < 0 {
		t.Errorf("rtc TDMA bound %s below exact %s",
			rtcRes["bulk"].MS.FloatString(3), exact.MS.FloatString(3))
	}
	simRes, err := sim.Simulate(sys, []*arch.Requirement{req},
		sim.Options{Seed: 2, HorizonMS: 5000, Replications: 8})
	if err != nil {
		t.Fatal(err)
	}
	if simRes["bulk"].MaxMS.Cmp(exact.MS) > 0 {
		t.Errorf("sim %s exceeds exact %s",
			simRes["bulk"].MaxMS.FloatString(3), exact.MS.FloatString(3))
	}
}
