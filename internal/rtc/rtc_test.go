package rtc

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
)

func ratMS(num, den int64) *big.Rat { return new(big.Rat).SetFrac64(num, den) }

func TestEventsAndCountBefore(t *testing.T) {
	a := Arrival{P: 10, J: 0, C: 1}
	ev := a.Events(3)
	want := []int64{0, 10, 20}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, ev[i], want[i])
		}
	}
	cases := []struct{ t, want int64 }{{0, 0}, {1, 1}, {10, 1}, {11, 2}, {21, 3}}
	for _, c := range cases {
		if got := a.CountBefore(c.t); got != c.want {
			t.Errorf("CountBefore(%d) = %d, want %d", c.t, got, c.want)
		}
	}

	j := Arrival{P: 10, J: 25, C: 1}
	// a_q = max(0, (q-1)*10 - 25): 0,0,0,5,15,...
	ev = j.Events(5)
	wantJ := []int64{0, 0, 0, 5, 15}
	for i := range wantJ {
		if ev[i] != wantJ[i] {
			t.Errorf("jittered event %d at %d, want %d", i, ev[i], wantJ[i])
		}
	}
	if got := j.CountBefore(1); got != 3 {
		t.Errorf("jittered CountBefore(1) = %d, want 3", got)
	}

	d := Arrival{P: 10, J: 25, D: 2, C: 1}
	ev = d.Events(4)
	// Separation pushes the stacked events apart: 0, 2, 4, 6.
	wantD := []int64{0, 2, 4, 6}
	for i := range wantD {
		if ev[i] != wantD[i] {
			t.Errorf("separated event %d at %d, want %d", i, ev[i], wantD[i])
		}
	}
}

func TestQuickCountMatchesEvents(t *testing.T) {
	// CountBefore must agree with the explicit event list.
	f := func(p8, j8, t8 uint8) bool {
		a := Arrival{P: int64(p8%20) + 1, J: int64(j8 % 50), C: 1}
		tt := int64(t8)
		n := a.CountBefore(tt)
		ev := a.Events(int(n) + 5)
		cnt := int64(0)
		for _, e := range ev {
			if e < tt {
				cnt++
			}
		}
		return cnt == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSingleTaskDelay(t *testing.T) {
	sys := arch.NewSystem("one")
	p := sys.AddProcessor("P", 10, arch.SchedFPPreempt)
	sc := sys.AddScenario("s", 1, arch.PeriodicUnknownOffset(arch.MS(20, 1)))
	sc.Compute("op", p, 50000) // 5ms
	res, err := Analyze(sys, []*arch.Requirement{arch.EndToEnd("e2e", sc)})
	if err != nil {
		t.Fatal(err)
	}
	if res["e2e"].MS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("single-task delay = %s, want 5", res["e2e"].MS.FloatString(3))
	}
}

func contended(sched arch.SchedKind) (*arch.System, *arch.Requirement, *arch.Requirement) {
	sys := arch.NewSystem("cont")
	p := sys.AddProcessor("P", 10, sched)
	hi := sys.AddScenario("hi", 2, arch.PeriodicUnknownOffset(arch.MS(20, 1)))
	hi.Compute("hop", p, 50000)
	lo := sys.AddScenario("lo", 1, arch.PeriodicUnknownOffset(arch.MS(40, 1)))
	lo.Compute("lop", p, 100000)
	return sys, arch.EndToEnd("hi", hi), arch.EndToEnd("lo", lo)
}

func TestContendedBounds(t *testing.T) {
	sys, hiReq, loReq := contended(arch.SchedFPPreempt)
	res, err := Analyze(sys, []*arch.Requirement{hiReq, loReq})
	if err != nil {
		t.Fatal(err)
	}
	if res["hi"].MS.Cmp(ratMS(5, 1)) != 0 {
		t.Errorf("preemptive hi delay = %s, want 5", res["hi"].MS.FloatString(3))
	}
	if res["lo"].MS.Cmp(ratMS(15, 1)) != 0 {
		t.Errorf("preemptive lo delay = %s, want 15", res["lo"].MS.FloatString(3))
	}
}

func TestBoundsDominateModelChecker(t *testing.T) {
	for _, sched := range []arch.SchedKind{arch.SchedFP, arch.SchedFPPreempt} {
		sys, hiReq, loReq := contended(sched)
		ana, err := Analyze(sys, []*arch.Requirement{hiReq, loReq})
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range []*arch.Requirement{hiReq, loReq} {
			exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 200}, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ana[req.Name].MS.Cmp(exact.MS) < 0 {
				t.Errorf("sched %v %s: MPA bound %s below exact %s",
					sched, req.Name, ana[req.Name].MS.FloatString(3), exact.MS.FloatString(3))
			}
		}
	}
}

func TestBurstyDelay(t *testing.T) {
	sys := arch.NewSystem("bur")
	p := sys.AddProcessor("P", 10, arch.SchedFP)
	sc := sys.AddScenario("s", 1, arch.Bursty(arch.MS(20, 1), arch.MS(40, 1), arch.MS(0, 1)))
	sc.Compute("op", p, 50000)
	res, err := Analyze(sys, []*arch.Requirement{arch.EndToEnd("e2e", sc)})
	if err != nil {
		t.Fatal(err)
	}
	// Exact WCRT is 15 (three stacked 5ms jobs); MPA is exact here.
	if res["e2e"].MS.Cmp(ratMS(15, 1)) != 0 {
		t.Errorf("bursty delay = %s, want 15", res["e2e"].MS.FloatString(3))
	}
}

func TestChainPropagationConservative(t *testing.T) {
	sys := arch.NewSystem("chain")
	p1 := sys.AddProcessor("P1", 10, arch.SchedFPPreempt)
	p2 := sys.AddProcessor("P2", 10, arch.SchedFPPreempt)
	main := sys.AddScenario("main", 1, arch.PeriodicUnknownOffset(arch.MS(50, 1)))
	main.Compute("a", p1, 100000).Compute("b", p2, 100000)
	rival := sys.AddScenario("rival", 2, arch.PeriodicUnknownOffset(arch.MS(25, 1)))
	rival.Compute("r", p2, 50000)
	req := arch.EndToEnd("e2e", main)
	ana, err := Analyze(sys, []*arch.Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := arch.AnalyzeWCRT(sys, req, arch.Options{HorizonMS: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ana["e2e"].MS.Cmp(exact.MS) < 0 {
		t.Errorf("chain bound %s below exact %s",
			ana["e2e"].MS.FloatString(3), exact.MS.FloatString(3))
	}
}

func TestOverloadDetected(t *testing.T) {
	sys := arch.NewSystem("over")
	p := sys.AddProcessor("P", 10, arch.SchedFPPreempt)
	sc := sys.AddScenario("s", 1, arch.PeriodicUnknownOffset(arch.MS(8, 1)))
	sc.Compute("op", p, 100000)
	if _, err := Analyze(sys, []*arch.Requirement{arch.EndToEnd("e", sc)}); err == nil {
		t.Error("overload must be reported")
	}
}

func TestRemainingServiceMonotone(t *testing.T) {
	h := &task{name: "h", c: 5, in: Arrival{P: 20, J: 0, C: 5}}
	r := remaining{hp: []*task{h}, blocking: 3}
	prev := int64(-1)
	for d := int64(0); d <= 100; d += 7 {
		v := r.at(d)
		if v < prev {
			t.Fatalf("remaining service decreased at %d: %d < %d", d, v, prev)
		}
		prev = v
	}
	// Inverse is a true inverse on the curve.
	for _, w := range []int64{1, 5, 12, 30} {
		d, err := r.inverse(w)
		if err != nil {
			t.Fatal(err)
		}
		if r.at(d) < w {
			t.Errorf("inverse(%d) = %d but at(%d) = %d", w, d, d, r.at(d))
		}
		if d > 0 && r.at(d-1) >= w {
			t.Errorf("inverse(%d) = %d not minimal", w, d)
		}
	}
}
