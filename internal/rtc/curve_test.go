package rtc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCurve(t *testing.T, xs, ys []int64) *Curve {
	t.Helper()
	c, err := NewCurve(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve(nil, nil); err == nil {
		t.Error("empty curve must be rejected")
	}
	if _, err := NewCurve([]int64{1, 2}, []int64{0, 1}); err == nil {
		t.Error("curve not starting at 0 must be rejected")
	}
	if _, err := NewCurve([]int64{0, 0}, []int64{0, 1}); err == nil {
		t.Error("non-increasing x must be rejected")
	}
	if _, err := NewCurve([]int64{0, 5}, []int64{3, 1}); err == nil {
		t.Error("decreasing y must be rejected")
	}
}

func TestCurveAtInterpolates(t *testing.T) {
	c := mustCurve(t, []int64{0, 10, 20}, []int64{0, 10, 10})
	cases := []struct{ x, want int64 }{{0, 0}, {5, 5}, {10, 10}, {15, 10}, {20, 10}}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Errorf("At(%d) = %d, want %d", cse.x, got, cse.want)
		}
	}
}

func TestUnitRate(t *testing.T) {
	b := UnitRate(1, 100)
	if b.At(37) != 37 || b.At(100) != 100 {
		t.Error("unit-rate curve must be the identity")
	}
	b2 := UnitRate(3, 10)
	if b2.At(10) != 30 {
		t.Error("rate scaling broken")
	}
}

func TestStaircaseMatchesCountBefore(t *testing.T) {
	a := Arrival{P: 10, J: 0, C: 5}
	w := Staircase(a, 50)
	// At each event instant the workload already includes that event (the
	// conservative upper-curve convention).
	for _, c := range []struct{ x, want int64 }{
		{0, 5}, {1, 5}, {9, 5}, {10, 10}, {45, 25},
	} {
		if got := w.At(c.x); got != c.want {
			t.Errorf("W(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestQuickStaircaseOracle(t *testing.T) {
	// At every integer point, the staircase equals CountBefore·C.
	f := func(p8, j8 uint8) bool {
		a := Arrival{P: int64(p8%15) + 2, J: int64(j8 % 30), C: 3}
		h := int64(120)
		w := Staircase(a, h)
		for x := int64(0); x <= h; x += 7 {
			if w.At(x) != a.CountBefore(x+1)*a.C {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinAddSubPos(t *testing.T) {
	a := mustCurve(t, []int64{0, 10}, []int64{0, 20}) // slope 2
	b := mustCurve(t, []int64{0, 10}, []int64{5, 15}) // offset 5, slope 1
	m := Min(a, b)
	// Crossing at x=5: min follows a before, b after.
	for _, c := range []struct{ x, want int64 }{{0, 0}, {2, 4}, {5, 10}, {8, 13}, {10, 15}} {
		if got := m.At(c.x); got != c.want {
			t.Errorf("Min(%d) = %d, want %d", c.x, got, c.want)
		}
	}
	s := Add(a, b)
	if s.At(10) != 35 || s.At(0) != 5 {
		t.Error("Add broken")
	}
	d := SubPos(a, b)
	// a-b: -5 at 0, +5 at 10, zero at 5; running positive max.
	if d.At(0) != 0 || d.At(5) != 0 || d.At(10) != 5 {
		t.Errorf("SubPos values: %d %d %d", d.At(0), d.At(5), d.At(10))
	}
}

func TestSubPosIsRunningMax(t *testing.T) {
	// Service 1 unit/step minus a burst of 6 at t=0: remaining service is
	// flat zero until t=6 then rises with slope 1.
	beta := UnitRate(1, 40)
	w := Staircase(Arrival{P: 100, J: 100, C: 6}, 40) // two events at 0... J=100,P=100: a1=0,a2=0
	rem := SubPos(beta, w)
	if rem.At(5) != 0 {
		t.Errorf("remaining at 5 = %d, want 0", rem.At(5))
	}
	if rem.At(20) != 20-12 {
		t.Errorf("remaining at 20 = %d, want 8", rem.At(20))
	}
}

func TestConvWithZeroIsIdentityish(t *testing.T) {
	a := mustCurve(t, []int64{0, 10, 20}, []int64{0, 10, 15})
	zero := mustCurve(t, []int64{0, 20}, []int64{0, 0})
	c := Conv(a, zero)
	// (a ⊗ 0)(Δ) = inf over prefix of a + 0 = 0 everywhere (a(0)=0 taken at
	// λ=0 plus zero curve at Δ).
	if c.At(20) != 0 {
		t.Errorf("conv with zero floor = %d, want 0", c.At(20))
	}
	// Convolution with the identity-delay curve: b(x)=x shifts nothing for
	// concave a starting at 0: (a ⊗ b)(Δ) ≤ min(a(Δ), b(Δ)).
	b := UnitRate(1, 20)
	cb := Conv(a, b)
	for x := int64(0); x <= 20; x += 5 {
		am, bm := a.At(x), b.At(x)
		min := am
		if bm < min {
			min = bm
		}
		if cb.At(x) > min {
			t.Errorf("conv(%d) = %d exceeds min(a,b) = %d", x, cb.At(x), min)
		}
	}
}

func TestQuickConvProperties(t *testing.T) {
	// Commutativity and domination: a ⊗ b = b ⊗ a ≤ min(a, b) when both
	// start at 0.
	gen := func(r *rand.Rand) *Curve {
		xs := []int64{0}
		ys := []int64{0}
		x, y := int64(0), int64(0)
		for i := 0; i < 4; i++ {
			x += 1 + r.Int63n(8)
			y += r.Int63n(10)
			xs = append(xs, x)
			ys = append(ys, y)
		}
		c, _ := NewCurve(xs, ys)
		return c
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		ab, ba := Conv(a, b), Conv(b, a)
		h := ab.Horizon()
		if ba.Horizon() < h {
			h = ba.Horizon()
		}
		for x := int64(0); x <= h; x++ {
			if ab.At(x) != ba.At(x) {
				return false
			}
			am, bm := int64(0), int64(0)
			if x <= a.Horizon() {
				am = a.At(x)
			}
			if x <= b.Horizon() {
				bm = b.At(x)
			}
			min := am
			if bm < min {
				min = bm
			}
			if ab.At(x) > min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHorizontalDevMatchesDelayBound(t *testing.T) {
	// Single stream on unit service: the curve-level deviation must equal
	// the delayBound computation used by Analyze.
	for _, a := range []Arrival{
		{P: 20, J: 0, C: 5},
		{P: 20, J: 20, C: 5},
		{P: 20, J: 40, C: 5},
		{P: 15, J: 7, C: 4},
	} {
		w := Staircase(a, 400)
		beta := UnitRate(1, 400)
		hd, err := HorizontalDev(w, beta)
		if err != nil {
			t.Fatal(err)
		}
		tk := &task{name: "t", c: a.C, in: a}
		db, err := delayBound(tk, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if hd != db {
			t.Errorf("%+v: horizontal deviation %d != delay bound %d", a, hd, db)
		}
	}
}

func TestHorizontalDevExhaustedService(t *testing.T) {
	w := Staircase(Arrival{P: 5, J: 0, C: 10}, 50) // demand 2/unit
	beta := UnitRate(1, 50)
	if _, err := HorizontalDev(w, beta); err == nil {
		t.Error("overloaded service must be reported")
	}
}

func TestCurveString(t *testing.T) {
	c := mustCurve(t, []int64{0, 5}, []int64{0, 5})
	if c.String() == "" {
		t.Error("String must render")
	}
}
