// Package rtc implements Modular Performance Analysis with real-time
// calculus, the fourth technique of the paper's Table 2: arrival curves of
// the standard PJD event model, greedy processing components under fixed
// priority, delay bounds as horizontal deviations between workload and
// service curves, and jitter propagation along chains.
//
// As the paper notes for MPA, phase (offset) information is lost in the
// transformation to the time-interval domain, so periodic-with-offset
// streams are analyzed like unknown-offset streams, and the results are
// slightly more conservative than both the exact model-checking values and
// the busy-window bounds: end-to-end delays are sums of per-component
// horizontal deviations with full jitter re-injection at every hop.
//
// All curves here are piecewise linear with breakpoints at the event
// instants of the critical alignment, so evaluating them exactly at those
// breakpoints (rather than manipulating closed-form curve objects) computes
// the same bounds the curve algebra would.
package rtc

import (
	"fmt"
	"math/big"

	"repro/internal/arch"
)

// Arrival is an upper arrival curve in PJD form together with the per-event
// resource demand C (all in integer time units).
type Arrival struct {
	P, J, D int64
	C       int64
}

// Events returns the instants a_1 ≤ a_2 ≤ … of the first n events under the
// critical alignment of the upper curve: a_q = max(0, (q-1)·P − J), spaced
// at least D apart.
func (a Arrival) Events(n int) []int64 {
	out := make([]int64, n)
	prev := int64(-1 << 62)
	for q := 1; q <= n; q++ {
		t := int64(q-1)*a.P - a.J
		if t < 0 {
			t = 0
		}
		if a.D > 0 && t < prev+a.D {
			t = prev + a.D
		}
		out[q-1] = t
		prev = t
	}
	return out
}

// CountBefore returns the number of events with a_q < t (the upper workload
// staircase is W(t) = CountBefore(t)·C).
func (a Arrival) CountBefore(t int64) int64 {
	if t <= 0 {
		return 0
	}
	// a_q < t  ⇔  (q-1)·P − J < t (the D spacing only delays events).
	n := (t + a.J - 1 + a.P) / a.P // smallest count covering all q with (q-1)P-J < t
	if n < 0 {
		n = 0
	}
	if a.D > 0 {
		// With minimal separation the q-th event happens no earlier than
		// (q-1)·D, so at most t/D + 1 events strictly before t.
		if m := (t-1)/a.D + 1; m < n {
			n = m
		}
	}
	return n
}

// task is one scenario step bound to a resource.
type task struct {
	name string
	c    int64
	prio int
	// seq breaks priority ties deterministically (declaration order), the
	// unique-priority requirement shared with busy-window analysis.
	seq int
	// chainC folds in same-scenario equal-priority co-residents on the same
	// resource (FIFO partners sharing the event stream); see the symta
	// package for the rationale.
	chainC int64
	sc     *arch.Scenario
	in     Arrival
	// tdmaCycle is the TDMA cycle length when the task runs on a
	// time-division bus (0 otherwise).
	tdmaCycle int64
	// d is the computed per-component delay bound.
	d int64
}

type resource struct {
	name  string
	sched arch.SchedKind
	tasks []*task
}

// Result is the end-to-end delay bound of one requirement.
type Result struct {
	Req *arch.Requirement
	// MS is the bound in milliseconds (a safe upper bound on the WCRT).
	MS *big.Rat
	// PerStepMS decomposes the bound into per-component delays.
	PerStepMS []*big.Rat
}

// Analyze computes MPA end-to-end delay bounds for the requirements.
func Analyze(sys *arch.System, reqs []*arch.Requirement) (map[string]*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	scale, err := sys.TimeScale()
	if err != nil {
		return nil, err
	}

	taskOf := map[*arch.Scenario][]*task{}
	resOf := map[any]*resource{}
	var resources []*resource
	seq := 0
	for _, sc := range sys.Scenarios {
		tasks := make([]*task, len(sc.Steps))
		for i := range sc.Steps {
			st := &sc.Steps[i]
			c, err := arch.ToUnits(st.DurationMS(), scale)
			if err != nil {
				return nil, err
			}
			t := &task{name: sc.Name + "." + st.Name, c: c,
				prio: st.EffectivePriority(sc), seq: seq, sc: sc}
			seq++
			tasks[i] = t
			var key any = st.Proc
			name, sched := "", arch.SchedFP
			if st.IsCompute() {
				name, sched = st.Proc.Name, st.Proc.Sched
			} else {
				key, name, sched = st.Bus, st.Bus.Name, st.Bus.Sched
				if st.Bus.Sched == arch.SchedTDMA {
					cyc, err := arch.ToUnits(st.Bus.TDMA.CycleMS, scale)
					if err != nil {
						return nil, err
					}
					t.tdmaCycle = cyc
				}
			}
			r := resOf[key]
			if r == nil {
				r = &resource{name: name, sched: sched}
				resOf[key] = r
				resources = append(resources, r)
			}
			r.tasks = append(r.tasks, t)
		}
		taskOf[sc] = tasks
	}

	for _, r := range resources {
		for _, t := range r.tasks {
			t.chainC = t.c
			for _, o := range r.tasks {
				if o != t && o.sc == t.sc && o.prio == t.prio {
					t.chainC += o.c
				}
			}
		}
	}

	baseStream := func(sc *arch.Scenario) (Arrival, error) {
		m := sc.Arrival
		p, err := arch.ToUnits(m.PeriodMS, scale)
		if err != nil {
			return Arrival{}, err
		}
		j, _ := arch.ToUnits(m.JitterMS, scale)
		d, _ := arch.ToUnits(m.MinSepMS, scale)
		switch m.Kind {
		case arch.KindPeriodic, arch.KindPeriodicUnknownOffset, arch.KindSporadic:
			return Arrival{P: p}, nil
		case arch.KindPeriodicJitter:
			return Arrival{P: p, J: j}, nil
		case arch.KindBursty:
			return Arrival{P: p, J: j, D: d}, nil
		}
		return Arrival{}, fmt.Errorf("rtc: unknown event kind")
	}

	// Global fixed point: propagate streams (jitter grows by the component
	// delay), recompute per-component delays, iterate until stable.
	for iter := 0; iter < 200; iter++ {
		changed := false
		for _, sc := range sys.Scenarios {
			in, err := baseStream(sc)
			if err != nil {
				return nil, err
			}
			for _, t := range taskOf[sc] {
				in.C = t.c
				if t.in != in {
					t.in = in
					changed = true
				}
				// Output arrival: same period, jitter increased by this
				// component's delay bound (the PJD fitting of the exact
				// output curve α' = α ⊘ β).
				in = Arrival{P: in.P, J: in.J + t.d}
			}
		}
		if !changed && iter > 0 {
			break
		}
		for _, r := range resources {
			if err := analyzeResource(r); err != nil {
				return nil, err
			}
		}
	}

	out := map[string]*Result{}
	for _, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, err
		}
		tasks := taskOf[req.Scenario]
		if tasks == nil {
			return nil, fmt.Errorf("rtc: requirement %s references unknown scenario", req.Name)
		}
		res := &Result{Req: req}
		total := int64(0)
		for i := req.FromStep + 1; i <= req.ToStep; i++ {
			total += tasks[i].d
			res.PerStepMS = append(res.PerStepMS, arch.UnitsToMS(tasks[i].d, scale))
		}
		res.MS = arch.UnitsToMS(total, scale)
		out[req.Name] = res
	}
	return out, nil
}

// analyzeResource computes the per-task delay bound: the horizontal
// deviation between the task's workload curve and the service remaining
// after all interfering workload, evaluated exactly at the breakpoints of
// the critical alignment.
func analyzeResource(r *resource) error {
	if r.sched == arch.SchedTDMA {
		// Dedicated slots: no cross-scenario interference; each task is
		// served one message per cycle at its slot grant.
		for _, t := range r.tasks {
			d, err := tdmaDelayBound(t.in, t.c, t.tdmaCycle)
			if err != nil {
				return fmt.Errorf("rtc: resource %s task %s: %w", r.name, t.name, err)
			}
			t.d = d
		}
		return nil
	}
	for _, t := range r.tasks {
		var hp []*task
		blocking := int64(0)
		for _, o := range r.tasks {
			if o == t {
				continue
			}
			switch {
			case r.sched == arch.SchedNondet:
				hp = append(hp, o)
				if o.c > blocking {
					blocking = o.c
				}
			case o.sc == t.sc && o.prio == t.prio:
				// Folded into chainC.
			case o.prio > t.prio || (o.prio == t.prio && o.seq < t.seq):
				hp = append(hp, o)
			case r.sched != arch.SchedFPPreempt && o.c > blocking:
				blocking = o.c
			}
		}
		d, err := delayBound(t, hp, blocking)
		if err != nil {
			return fmt.Errorf("rtc: resource %s task %s: %w", r.name, t.name, err)
		}
		t.d = d
	}
	return nil
}

// remaining is the lower remaining-service curve after blocking and the
// interfering workload: β'(Δ) = sup_{0≤λ≤Δ} (λ − B − Σ W_hp(λ))⁺.
// The sup over the prefix is evaluated at interval right-endpoints, which is
// exact because the integrand rises with slope one between workload jumps.
type remaining struct {
	hp       []*task
	blocking int64
}

func (r remaining) at(delta int64) int64 {
	if delta <= 0 {
		return 0
	}
	best := int64(0)
	eval := func(lambda int64) {
		if lambda <= 0 || lambda > delta {
			return
		}
		v := lambda - r.blocking
		for _, h := range r.hp {
			v -= h.in.CountBefore(lambda) * h.in.C
		}
		if v > best {
			best = v
		}
	}
	eval(delta)
	for _, h := range r.hp {
		// Jump points of h's staircase below delta: evaluate just at them
		// (the left limit of each jump is the local maximum).
		n := h.in.CountBefore(delta)
		const maxJumps = 1 << 16
		if n > maxJumps {
			return best // utilization pathologies are caught by the caller
		}
		for _, a := range h.in.Events(int(n)) {
			eval(a)
		}
	}
	return best
}

// inverse returns the smallest Δ with at(Δ) ≥ w, by doubling plus binary
// search on the monotone remaining-service curve.
func (r remaining) inverse(w int64) (int64, error) {
	if w <= 0 {
		return 0, nil
	}
	lo, hi := int64(0), int64(1)
	for r.at(hi) < w {
		hi *= 2
		if hi > 1<<40 {
			return 0, fmt.Errorf("service never provides %d units (overload)", w)
		}
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if r.at(mid) >= w {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// tdmaDelayBound bounds the response of a one-message-per-slot TDMA bus:
// under the worst alignment grants occur at k·C after the critical instant,
// and the q-th queued message is served at grant max(q, floor(a_q/C)+1).
func tdmaDelayBound(in Arrival, c, cycle int64) (int64, error) {
	const maxQ = 4096
	arrivals := in.Events(maxQ + 1)
	worst := int64(0)
	for q := int64(1); q <= maxQ; q++ {
		aq := arrivals[q-1]
		k := aq/cycle + 1
		if q > k {
			k = q
		}
		if resp := k*cycle + c - aq; resp > worst {
			worst = resp
		}
		// The backlog clears once the next arrival lands after the grant
		// that served the q-th message; a fresh message then waits at most
		// one cycle, which the q = 1 case already covers.
		if arrivals[q] >= k*cycle {
			return worst, nil
		}
	}
	return 0, fmt.Errorf("TDMA backlog does not clear (slot rate below arrival rate)")
}

// delayBound is the horizontal deviation between t's upper workload curve
// and its lower remaining-service curve.
func delayBound(t *task, hp []*task, blocking int64) (int64, error) {
	rem := remaining{hp: hp, blocking: blocking}
	worst := int64(0)
	const maxQ = 4096
	arrivals := t.in.Events(maxQ)
	perEvent := t.chainC
	if perEvent < t.in.C {
		perEvent = t.in.C
	}
	for q := 1; q <= maxQ; q++ {
		aq := arrivals[q-1]
		finish, err := rem.inverse(int64(q) * perEvent)
		if err != nil {
			return 0, err
		}
		if resp := finish - aq; resp > worst {
			worst = resp
		}
		// Busy period closes once the backlog clears before the next
		// arrival.
		if q < maxQ && finish <= arrivals[q] {
			return worst, nil
		}
	}
	return 0, fmt.Errorf("busy period does not close (overload)")
}
