package rtc

import (
	"fmt"
	"sort"
	"strings"
)

// Curve is a non-decreasing piecewise-linear function on [0, H] (a finite
// horizon), represented by its breakpoints. Between breakpoints the curve is
// linear; beyond the last breakpoint it is undefined (callers must stay
// within the horizon). Values and coordinates are integer time/resource
// units; segment slopes are rational but all breakpoints are integral,
// which suffices for the staircase workloads and unit-rate services of this
// package.
//
// Curve provides the min-plus algebra used by real-time calculus:
// pointwise minimum and addition, min-plus convolution, and the horizontal
// deviation that yields delay bounds.
type Curve struct {
	// xs is strictly increasing with xs[0] == 0; ys[i] is the value at
	// xs[i]. Linear interpolation applies in between, so a jump is encoded
	// by two breakpoints one unit apart (integer grid).
	xs, ys []int64
}

// NewCurve builds a curve from breakpoints, validating monotonicity.
func NewCurve(xs, ys []int64) (*Curve, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("rtc: curve needs matching nonempty breakpoints")
	}
	if xs[0] != 0 {
		return nil, fmt.Errorf("rtc: curve must start at x=0")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("rtc: breakpoints must increase (x[%d]=%d after %d)", i, xs[i], xs[i-1])
		}
		if ys[i] < ys[i-1] {
			return nil, fmt.Errorf("rtc: curve must be non-decreasing (y[%d]=%d after %d)", i, ys[i], ys[i-1])
		}
	}
	return &Curve{xs: append([]int64(nil), xs...), ys: append([]int64(nil), ys...)}, nil
}

// Horizon returns the largest x the curve is defined for.
func (c *Curve) Horizon() int64 { return c.xs[len(c.xs)-1] }

// At evaluates the curve by linear interpolation. x must lie within
// [0, Horizon].
func (c *Curve) At(x int64) int64 {
	if x < 0 || x > c.Horizon() {
		panic(fmt.Sprintf("rtc: evaluation at %d outside [0,%d]", x, c.Horizon()))
	}
	i := sort.Search(len(c.xs), func(i int) bool { return c.xs[i] >= x })
	if c.xs[i] == x {
		return c.ys[i]
	}
	// Interpolate on the segment (i-1, i); the product fits int64 for the
	// magnitudes used here (checked by construction in this package).
	x0, y0 := c.xs[i-1], c.ys[i-1]
	x1, y1 := c.xs[i], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// UnitRate returns the service curve β(Δ) = rate·Δ on [0, h].
func UnitRate(rate, h int64) *Curve {
	c, _ := NewCurve([]int64{0, h}, []int64{0, rate * h})
	return c
}

// Staircase materializes the upper arrival workload of a (P, J, D) stream
// with per-event demand C on [0, h]. The true upper curve jumps at the event
// instant (W(Δ) includes every event with a_q < Δ, and W(0⁺) already counts
// the events at 0); on the integer grid each jump is encoded as a unit-wide
// riser ending at the event instant, which over-approximates the curve near
// the jump — the conservative direction for an upper workload bound.
func Staircase(a Arrival, h int64) *Curve {
	xs := []int64{0}
	ys := []int64{0}
	n := a.CountBefore(h + 1)
	events := a.Events(int(n))
	level := int64(0)
	// Coalesce simultaneous events into one jump per distinct instant.
	for i := 0; i < len(events); {
		e := events[i]
		j := i
		for j < len(events) && events[j] == e {
			j++
		}
		if e > h {
			break
		}
		// Riser over (e-1, e], clipped at 0.
		if e > 0 {
			xs, ys = appendPoint(xs, ys, e-1, level)
		}
		level += int64(j-i) * a.C
		xs, ys = appendPoint(xs, ys, e, level)
		i = j
	}
	xs, ys = appendPoint(xs, ys, h, level)
	c, err := NewCurve(xs, ys)
	if err != nil {
		panic("rtc: staircase construction: " + err.Error())
	}
	return c
}

func appendPoint(xs, ys []int64, x, y int64) ([]int64, []int64) {
	if n := len(xs); n > 0 && xs[n-1] == x {
		if ys[n-1] < y {
			ys[n-1] = y
		}
		return xs, ys
	}
	return append(xs, x), append(ys, y)
}

// mergedBreakpoints returns the sorted union of breakpoints of both curves
// limited to the shared horizon.
func mergedBreakpoints(a, b *Curve) []int64 {
	h := a.Horizon()
	if bh := b.Horizon(); bh < h {
		h = bh
	}
	seen := map[int64]bool{}
	var out []int64
	for _, x := range a.xs {
		if x <= h && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b.xs {
		if x <= h && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Min returns the pointwise minimum of two curves on their shared horizon.
func Min(a, b *Curve) *Curve {
	xs := mergedBreakpoints(a, b)
	ys := make([]int64, len(xs))
	for i, x := range xs {
		av, bv := a.At(x), b.At(x)
		if av < bv {
			ys[i] = av
		} else {
			ys[i] = bv
		}
	}
	// The pointwise minimum of piecewise-linear curves can have extra
	// breakpoints at crossings; on the integer grid sampling every merged
	// breakpoint plus crossing-adjacent integers is exact because all
	// crossings happen within one unit of a breakpoint pair. We refine by
	// also sampling midpoints between consecutive breakpoints.
	return refineMin(a, b, xs, ys)
}

func refineMin(a, b *Curve, xs, ys []int64) *Curve {
	var rx, ry []int64
	for i := 0; i < len(xs); i++ {
		rx, ry = appendPoint(rx, ry, xs[i], ys[i])
		if i+1 < len(xs) && xs[i+1]-xs[i] > 1 {
			mid := xs[i] + (xs[i+1]-xs[i])/2
			av, bv := a.At(mid), b.At(mid)
			v := av
			if bv < v {
				v = bv
			}
			rx, ry = appendPoint(rx, ry, mid, v)
		}
	}
	c, err := NewCurve(rx, ry)
	if err != nil {
		panic("rtc: min construction: " + err.Error())
	}
	return c
}

// Add returns the pointwise sum of two curves on their shared horizon.
func Add(a, b *Curve) *Curve {
	xs := mergedBreakpoints(a, b)
	ys := make([]int64, len(xs))
	for i, x := range xs {
		ys[i] = a.At(x) + b.At(x)
	}
	c, err := NewCurve(xs, ys)
	if err != nil {
		panic("rtc: add construction: " + err.Error())
	}
	return c
}

// SubPos returns max(0, a − b) clamped to be non-decreasing by running
// maximum — the "remaining service" operation β ⊖ α of real-time calculus:
// (a ⊖ b)(Δ) = sup_{0≤λ≤Δ} (a(λ) − b(λ))⁺.
//
// On each merged segment the integrand f = a − b is linear, so the running
// maximum is flat while f is below the best-so-far and follows f once it
// crosses; the crossing breakpoint is inserted (rounded up, keeping the
// result a lower bound — the safe direction for a remaining-service curve).
func SubPos(a, b *Curve) *Curve {
	xs := mergedBreakpoints(a, b)
	var rx, ry []int64
	best := int64(0)
	f := func(x int64) int64 { return a.At(x) - b.At(x) }
	rx, ry = appendPoint(rx, ry, 0, maxi(0, f(0)))
	best = ry[0]
	for i := 1; i < len(xs); i++ {
		x0, x1 := xs[i-1], xs[i]
		f1 := f(x1)
		switch {
		case f1 <= best:
			rx, ry = appendPoint(rx, ry, x1, best)
		case f(x0) >= best:
			rx, ry = appendPoint(rx, ry, x1, f1)
			best = f1
		default:
			// f crosses best inside (x0, x1): flat until the crossing,
			// rounded up to the grid, then rise to (x1, f1).
			f0 := f(x0)
			xc := x0 + ((best-f0)*(x1-x0)+f1-f0-1)/(f1-f0) // ceil
			if xc > x1 {
				xc = x1
			}
			rx, ry = appendPoint(rx, ry, xc, best)
			if xc < x1 {
				rx, ry = appendPoint(rx, ry, x1, f1)
			}
			best = maxi(best, f1)
		}
	}
	c, err := NewCurve(rx, ry)
	if err != nil {
		panic("rtc: subpos construction: " + err.Error())
	}
	return c
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Conv returns the min-plus convolution (a ⊗ b)(Δ) = inf_{0≤λ≤Δ}
// (a(λ) + b(Δ−λ)), evaluated exactly at the union of breakpoint offsets.
// For the concave/convex curves of this package the infimum is attained at
// a breakpoint of one operand, which the sampling covers.
func Conv(a, b *Curve) *Curve {
	h := a.Horizon()
	if bh := b.Horizon(); bh < h {
		h = bh
	}
	// Candidate λ values: breakpoints of a plus (Δ − breakpoints of b).
	var xs []int64
	seen := map[int64]bool{}
	addX := func(x int64) {
		if x >= 0 && x <= h && !seen[x] {
			seen[x] = true
			xs = append(xs, x)
		}
	}
	for _, x := range a.xs {
		addX(x)
	}
	for _, x := range b.xs {
		addX(x)
	}
	for _, xa := range a.xs {
		for _, xb := range b.xs {
			addX(xa + xb)
		}
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	ys := make([]int64, len(xs))
	for i, delta := range xs {
		best := int64(1) << 62
		consider := func(lambda int64) {
			if lambda < 0 || lambda > delta {
				return
			}
			if v := a.At(lambda) + b.At(delta-lambda); v < best {
				best = v
			}
		}
		consider(0)
		consider(delta)
		for _, xa := range a.xs {
			consider(xa)
		}
		for _, xb := range b.xs {
			consider(delta - xb)
		}
		ys[i] = best
	}
	// Enforce monotonicity (numerical artifacts cannot occur here, but the
	// running minimum-of-infima construction keeps the invariant explicit).
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			ys[i] = ys[i-1]
		}
	}
	c, err := NewCurve(xs, ys)
	if err != nil {
		panic("rtc: conv construction: " + err.Error())
	}
	return c
}

// HorizontalDev returns the horizontal deviation h(a, b) = sup_{Δ}
// inf{τ ≥ 0 : a(Δ) ≤ b(Δ+τ)} — the RTC delay bound of workload a under
// service b — or an error when b never catches up within the horizon.
func HorizontalDev(a, b *Curve) (int64, error) {
	worst := int64(0)
	for i, x := range a.xs {
		w := a.ys[i]
		// Smallest t with b(t) ≥ w, by binary search over b's domain.
		if b.At(b.Horizon()) < w {
			return 0, fmt.Errorf("rtc: service exhausted before providing %d units", w)
		}
		lo, hi := int64(0), b.Horizon()
		for hi-lo > 0 {
			mid := lo + (hi-lo)/2
			if b.At(mid) >= w {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if d := hi - x; d > worst {
			worst = d
		}
	}
	return worst, nil
}

// String renders the breakpoints for debugging.
func (c *Curve) String() string {
	var sb strings.Builder
	sb.WriteString("curve[")
	for i := range c.xs {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "(%d,%d)", c.xs[i], c.ys[i])
	}
	sb.WriteString("]")
	return sb.String()
}
