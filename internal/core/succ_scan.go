package core

import (
	"repro/internal/ta"
)

// This file preserves the pre-index successor enumerator — the per-channel
// rescan of every process's out-edges — verbatim. It is NOT on the hot path:
// engine.legacyScan routes an exploration through it so the differential
// oracle (succ_index_test.go, FuzzSuccessorsIndexed) can assert that the
// indexed one-pass enumerator in succ.go produces a bit-identical succ
// stream, state by state and sweep by sweep. The enumeration-order contract
// both implementations satisfy:
//
//   1. tau fires first, in (process, OutEdges) order;
//   2. channels fire in ascending channel order;
//   3. within a channel, enabled emitters and receivers are grouped by
//      process in increasing process order (broadcastCombos' single-scan
//      run-grouping silently depends on this);
//   4. binary rendezvous enumerate emitter-major, broadcast combos
//      emitter by emitter.

// successorsScan is the legacy enumerator: for every channel, rescan every
// process's out-edges (enabledSyncEdges), O(|Chans| × Σ out-edges) per
// state.
func (e *engine) successorsScan(ctx *succCtx, s *State, out []succ) ([]succ, error) {
	anyCommitted := false
	for pi, l := range s.Locs {
		if e.net.Procs[pi].Locations[l].Kind == ta.Committed {
			anyCommitted = true
			break
		}
	}
	// committedOK implements the committed-location rule: when any process
	// is committed, only transitions involving a committed process may fire.
	committedOK := func(parts []LabelPart) bool {
		if !anyCommitted {
			return true
		}
		for _, pt := range parts {
			if e.net.Procs[pt.Proc].Locations[s.Locs[pt.Proc]].Kind == ta.Committed {
				return true
			}
		}
		return false
	}

	base := len(out)
	var err error
	try := func(label Label) {
		if err != nil || !committedOK(label.Parts) {
			return
		}
		var ns *State
		ns, err = e.fire(ctx, s, label)
		if err == nil && ns != nil {
			if ctx.keepLabels {
				label.Parts = ctx.allocParts(label.Parts)
			} else {
				label.Parts = nil // scratch-backed; caller discards labels
			}
			out = append(out, succ{label, ns, int32(len(out) - base)})
		}
	}

	// Internal (tau) transitions.
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(s.Locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir != ta.Tau || !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			ctx.parts = append(ctx.parts[:0], LabelPart{ta.ProcID(pi), ei})
			try(Label{Kind: LabelTau, Parts: ctx.parts})
		}
	}

	// Synchronizations, channel by channel.
	for ci := range e.net.Chans {
		ch := &e.net.Chans[ci]
		emitters, receivers := e.enabledSyncEdges(ctx, s, ta.ChanID(ci))
		if len(emitters) == 0 {
			continue
		}
		if ch.Kind.IsBroadcast() {
			for _, em := range emitters {
				e.broadcastCombos(ctx, ch, em, receivers, try)
			}
		} else {
			for _, em := range emitters {
				for _, rc := range receivers {
					if rc.Proc == em.Proc {
						continue
					}
					ctx.parts = append(ctx.parts[:0], em, rc)
					try(Label{Kind: LabelSync, Chan: ch.Name, Parts: ctx.parts})
				}
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, err
}

// enabledSyncEdges collects the data-guard-enabled emit and receive edges on
// channel c in the current discrete state, into ctx scratch. The returned
// slices are valid until the next call and are grouped by process in
// increasing process order.
func (e *engine) enabledSyncEdges(ctx *succCtx, s *State, c ta.ChanID) (emitters, receivers []LabelPart) {
	emitters, receivers = ctx.emitters[:0], ctx.receivers[:0]
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(s.Locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Tau || ed.Sync.Chan != c {
				continue
			}
			if !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			part := LabelPart{ta.ProcID(pi), ei}
			if ed.Sync.Dir == ta.Emit {
				emitters = append(emitters, part)
			} else {
				receivers = append(receivers, part)
			}
		}
	}
	ctx.emitters, ctx.receivers = emitters, receivers
	return emitters, receivers
}

// delayAllowedScan is the legacy urgency test: every channel, every process,
// every out-edge.
func (e *engine) delayAllowedScan(locs []ta.LocID, vars []int64) bool {
	for pi, l := range locs {
		if k := e.net.Procs[pi].Locations[l].Kind; k == ta.UrgentLoc || k == ta.Committed {
			return false
		}
	}
	for ci := range e.net.Chans {
		ch := &e.net.Chans[ci]
		if !ch.Kind.Urgent() {
			continue
		}
		if ch.Kind == ta.BroadcastUrgent {
			// A broadcast sender never blocks: any enabled emitter forbids
			// delay.
			if e.broadcastEmitEnabledScan(locs, vars, ta.ChanID(ci)) {
				return false
			}
		} else if e.binaryPairEnabledScan(locs, vars, ta.ChanID(ci)) {
			return false
		}
	}
	return true
}

// broadcastEmitEnabledScan reports whether any emit edge on channel c is
// data-guard-enabled in the given discrete state.
func (e *engine) broadcastEmitEnabledScan(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Emit && ed.Sync.Chan == c && ta.EvalGuard(ed.Guard, vars) {
				return true
			}
		}
	}
	return false
}

// binaryPairEnabledScan reports whether some emit and receive edge on
// channel c are simultaneously enabled in distinct processes.
func (e *engine) binaryPairEnabledScan(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	emitSeen, recvSeen := false, false
	var emitProc, recvProc ta.ProcID
	emitMany, recvMany := false, false
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Tau || ed.Sync.Chan != c || !ta.EvalGuard(ed.Guard, vars) {
				continue
			}
			if ed.Sync.Dir == ta.Emit {
				if emitSeen && emitProc != ta.ProcID(pi) {
					emitMany = true
				}
				emitSeen, emitProc = true, ta.ProcID(pi)
			} else {
				if recvSeen && recvProc != ta.ProcID(pi) {
					recvMany = true
				}
				recvSeen, recvProc = true, ta.ProcID(pi)
			}
		}
	}
	if !emitSeen || !recvSeen {
		return false
	}
	// A pair exists unless every enabled emitter and receiver live in the
	// same single process.
	return emitMany || recvMany || emitProc != recvProc
}
