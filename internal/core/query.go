package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ta"
)

// ParsePredicate compiles a textual state predicate against a network. The
// language is a conjunction (&&) of atoms:
//
//	PROC.location        — process PROC is in the named location
//	var <op> k           — integer variable comparison, op ∈ ==,!=,<,<=,>,>=
//
// Example: "RAD.busy && rec >= 2".
func ParsePredicate(net *ta.Network, input string) (func(*State) bool, error) {
	var preds []func(*State) bool
	for _, atom := range strings.Split(input, "&&") {
		atom = strings.TrimSpace(atom)
		if atom == "" {
			continue
		}
		p, err := parseAtom(net, atom)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("core: empty predicate")
	}
	return func(s *State) bool {
		for _, p := range preds {
			if !p(s) {
				return false
			}
		}
		return true
	}, nil
}

func parseAtom(net *ta.Network, atom string) (func(*State) bool, error) {
	for _, op := range []string{"<=", ">=", "==", "!=", "<", ">"} {
		if i := strings.Index(atom, op); i >= 0 {
			name := strings.TrimSpace(atom[:i])
			rhs := strings.TrimSpace(atom[i+len(op):])
			k, err := strconv.ParseInt(rhs, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: predicate %q: right side must be an integer", atom)
			}
			idx := -1
			for vi, v := range net.Vars {
				if v.Name == name {
					idx = vi
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("core: predicate %q: unknown variable %q", atom, name)
			}
			cmp := op
			return func(s *State) bool {
				v := s.Vars[idx]
				switch cmp {
				case "==":
					return v == k
				case "!=":
					return v != k
				case "<":
					return v < k
				case "<=":
					return v <= k
				case ">":
					return v > k
				default:
					return v >= k
				}
			}, nil
		}
	}
	procName, locName, found := strings.Cut(atom, ".")
	if !found {
		return nil, fmt.Errorf("core: predicate atom %q is neither PROC.loc nor var<op>k", atom)
	}
	for pi, p := range net.Procs {
		if p.Name != procName {
			continue
		}
		l := p.LocByName(locName)
		if l < 0 {
			return nil, fmt.Errorf("core: predicate %q: process %s has no location %q",
				atom, procName, locName)
		}
		idx := pi
		return func(s *State) bool { return s.Locs[idx] == l }, nil
	}
	return nil, fmt.Errorf("core: predicate %q: unknown process %q", atom, procName)
}

// FindClock resolves a clock name in the network, for query interfaces.
func FindClock(net *ta.Network, name string) (ta.Clock, error) {
	for _, c := range net.Clocks {
		if c.Name == name {
			return c, nil
		}
	}
	return ta.Clock{}, fmt.Errorf("core: unknown clock %q", name)
}
