// Package core implements the paper's analysis engine: a zone-based symbolic
// model checker for the networks of timed automata defined in internal/ta,
// in the style of UPPAAL.
//
// It provides symbolic reachability with configurable search order
// (breadth-first, depth-first, randomized depth-first), a passed-state store
// with zone-inclusion subsumption, maximal-constant extrapolation, safety
// checking of properties of the form AG p with counterexample traces, and
// worst-case response time computation both as a single-pass clock supremum
// and via the paper's binary-search strategy over AG(seen → y < C)
// (Property 1).
package core

import (
	"fmt"
	"strings"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// State is a symbolic state of the network: one location per process, a
// valuation of the integer variables, and a canonical zone over the clocks.
// Stored states are closed under delay (whenever delay is permitted) and
// extrapolated.
type State struct {
	Locs []ta.LocID
	Vars []int64
	Zone *dbm.DBM
}

// LocOf returns the current location of process p.
func (s *State) LocOf(p ta.ProcID) ta.LocID { return s.Locs[p] }

// discreteHash hashes the discrete part (locations and variables) of a state.
func discreteHash(locs []ta.LocID, vars []int64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	for _, l := range locs {
		mix(uint64(l))
	}
	mix(0xabcdef)
	for _, v := range vars {
		mix(uint64(v))
	}
	return h
}

func discreteEqual(aLocs, bLocs []ta.LocID, aVars, bVars []int64) bool {
	for i := range aLocs {
		if aLocs[i] != bLocs[i] {
			return false
		}
	}
	for i := range aVars {
		if aVars[i] != bVars[i] {
			return false
		}
	}
	return true
}

// Format renders the state compactly: locations, the non-zero variables,
// and each clock's value interval (instead of the full DBM).
func (s *State) Format(net *ta.Network) string {
	var sb strings.Builder
	sb.WriteString("(")
	for i, p := range net.Procs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s.%s", p.Name, p.Locations[s.Locs[i]].Name)
	}
	sb.WriteString(")")
	first := true
	for i, d := range net.Vars {
		if s.Vars[i] == d.Init {
			continue
		}
		if first {
			sb.WriteString(" [")
			first = false
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", d.Name, s.Vars[i])
	}
	if !first {
		sb.WriteString("]")
	}
	sb.WriteString(" {")
	for c := 1; c < s.Zone.Dim(); c++ {
		if c > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s∈[%s,%s]", net.Clocks[c].Name,
			boundStr(s.Zone.Inf(c)), boundStr(s.Zone.Sup(c)))
	}
	sb.WriteString("}")
	return sb.String()
}

func boundStr(b dbm.Bound) string {
	if b == dbm.Infinity {
		return "inf"
	}
	return fmt.Sprintf("%d", b.Value())
}

// FormatVerbose renders the state with the full zone constraint system.
func (s *State) FormatVerbose(net *ta.Network) string {
	return s.Format(net) + " " + s.Zone.String()
}

// Label identifies the transition that produced a state, for trace printing.
type Label struct {
	// Kind describes the synchronization: "tau", "sync", or "broadcast".
	Kind string
	// Chan is the channel name for sync/broadcast labels.
	Chan string
	// Parts lists the participating processes and the edges they took, in
	// firing order (emitter first).
	Parts []LabelPart
}

// LabelPart is one process's participation in a transition.
type LabelPart struct {
	Proc ta.ProcID
	Edge int // index into the process's Edges
}

// Format renders the label with names resolved against the network.
func (l Label) Format(net *ta.Network) string {
	if l.Kind == "" {
		return "init"
	}
	var sb strings.Builder
	if l.Chan != "" {
		fmt.Fprintf(&sb, "%s(%s):", l.Kind, l.Chan)
	} else {
		sb.WriteString(l.Kind + ":")
	}
	for i, part := range l.Parts {
		if i > 0 {
			sb.WriteString(" +")
		}
		p := net.Procs[part.Proc]
		e := p.Edges[part.Edge]
		fmt.Fprintf(&sb, " %s.%s->%s", p.Name,
			p.Locations[e.Src].Name, p.Locations[e.Dst].Name)
	}
	return sb.String()
}

// TraceStep is one step of a counterexample or witness trace.
type TraceStep struct {
	Label Label
	State *State
}

// FormatTrace renders a trace with one step per line.
func FormatTrace(net *ta.Network, trace []TraceStep) string {
	var sb strings.Builder
	for i, step := range trace {
		fmt.Fprintf(&sb, "%3d %-40s %s\n", i, step.Label.Format(net), step.State.Format(net))
	}
	return sb.String()
}
