// Package core implements the paper's analysis engine: a zone-based symbolic
// model checker for the networks of timed automata defined in internal/ta,
// in the style of UPPAAL.
//
// It provides symbolic reachability with configurable search order
// (breadth-first, depth-first, randomized depth-first), a passed-state store
// with zone-inclusion subsumption, maximal-constant extrapolation, safety
// checking of properties of the form AG p with counterexample traces, and
// worst-case response time computation both as a single-pass clock supremum
// and via the paper's binary-search strategy over AG(seen → y < C)
// (Property 1).
package core

import (
	"fmt"
	"strings"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// State is a symbolic state of the network: one location per process, a
// valuation of the integer variables, and a canonical zone over the clocks.
// Stored states are closed under delay (whenever delay is permitted) and
// extrapolated.
type State struct {
	Locs []ta.LocID
	Vars []int64
	Zone *dbm.DBM

	// key caches discreteHash(Locs, Vars); 0 means not yet computed
	// (discreteHash never returns 0). The discrete part of a state is
	// immutable after construction, so the cache never invalidates. A state
	// is hashed by exactly one goroutine (its creator) before it is shared,
	// so the lazy fill is race-free.
	key uint64

	// ref is the state's admission record in the exploration's parent logs
	// (explore.go), noRef when parent logging is off. It is written once by
	// the admitting worker before the state reaches a frontier and read by
	// the worker that later expands it; the frontier's atomics order the
	// two accesses.
	ref int64
}

// LocOf returns the current location of process p.
func (s *State) LocOf(p ta.ProcID) ta.LocID { return s.Locs[p] }

// discreteKey returns the cached hash of the state's discrete part,
// computing it on first use.
func (s *State) discreteKey() uint64 {
	if s.key == 0 {
		s.key = discreteHash(s.Locs, s.Vars)
	}
	return s.key
}

// discreteHash hashes the discrete part (locations and variables) of a
// state, mixing each component as one 64-bit word (FNV-1a over words with a
// splitmix-style finalizer). The result is never 0, so 0 can serve as the
// "not yet hashed" sentinel in State.key.
func discreteHash(locs []ta.LocID, vars []int64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 0x9E3779B97F4A7C15
	)
	h := uint64(offset)
	for _, l := range locs {
		h = (h ^ uint64(l)) * prime
	}
	h = (h ^ 0xabcdef) * prime // separator between the two variable-length parts
	for _, v := range vars {
		h = (h ^ uint64(v)) * prime
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	if h == 0 {
		return 1
	}
	return h
}

// Format renders the state compactly: locations, the non-zero variables,
// and each clock's value interval (instead of the full DBM).
func (s *State) Format(net *ta.Network) string {
	var sb strings.Builder
	sb.WriteString("(")
	for i, p := range net.Procs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s.%s", p.Name, p.Locations[s.Locs[i]].Name)
	}
	sb.WriteString(")")
	first := true
	for i, d := range net.Vars {
		if s.Vars[i] == d.Init {
			continue
		}
		if first {
			sb.WriteString(" [")
			first = false
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", d.Name, s.Vars[i])
	}
	if !first {
		sb.WriteString("]")
	}
	sb.WriteString(" {")
	for c := 1; c < s.Zone.Dim(); c++ {
		if c > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s∈[%s,%s]", net.Clocks[c].Name,
			boundStr(s.Zone.Inf(c)), boundStr(s.Zone.Sup(c)))
	}
	sb.WriteString("}")
	return sb.String()
}

func boundStr(b dbm.Bound) string {
	if b == dbm.Infinity {
		return "inf"
	}
	return fmt.Sprintf("%d", b.Value())
}

// FormatVerbose renders the state with the full zone constraint system.
func (s *State) FormatVerbose(net *ta.Network) string {
	return s.Format(net) + " " + s.Zone.String()
}

// LabelKind classifies the synchronization of a transition label. The zero
// value LabelNone marks the pseudo-label of the initial state in traces.
type LabelKind uint8

const (
	// LabelNone is the zero value: no transition (the initial trace step).
	LabelNone LabelKind = iota
	// LabelTau marks an internal transition of a single process.
	LabelTau
	// LabelSync marks a binary channel rendezvous (one emitter, one receiver).
	LabelSync
	// LabelBroadcast marks a broadcast synchronization (one emitter, every
	// enabled receiver).
	LabelBroadcast
)

// String renders the kind exactly as the historical string-typed field did
// ("tau", "sync", "broadcast"), so formatted traces — and with them the
// wire/-json bytes — are unchanged.
func (k LabelKind) String() string {
	switch k {
	case LabelNone:
		return "init"
	case LabelTau:
		return "tau"
	case LabelSync:
		return "sync"
	case LabelBroadcast:
		return "broadcast"
	}
	return "?label"
}

// Label identifies the transition that produced a state, for trace printing.
type Label struct {
	// Kind describes the synchronization.
	Kind LabelKind
	// Chan is the channel name for sync/broadcast labels.
	Chan string
	// Parts lists the participating processes and the edges they took, in
	// firing order (emitter first).
	Parts []LabelPart
}

// LabelPart is one process's participation in a transition.
type LabelPart struct {
	Proc ta.ProcID
	Edge int // index into the process's Edges
}

// Format renders the label with names resolved against the network.
func (l Label) Format(net *ta.Network) string {
	if l.Kind == LabelNone {
		return "init"
	}
	var sb strings.Builder
	if l.Chan != "" {
		fmt.Fprintf(&sb, "%s(%s):", l.Kind, l.Chan)
	} else {
		sb.WriteString(l.Kind.String() + ":")
	}
	for i, part := range l.Parts {
		if i > 0 {
			sb.WriteString(" +")
		}
		p := net.Procs[part.Proc]
		e := p.Edges[part.Edge]
		fmt.Fprintf(&sb, " %s.%s->%s", p.Name,
			p.Locations[e.Src].Name, p.Locations[e.Dst].Name)
	}
	return sb.String()
}

// TraceStep is one step of a counterexample or witness trace.
type TraceStep struct {
	Label Label
	State *State
}

// FormatTrace renders a trace with one step per line.
func FormatTrace(net *ta.Network, trace []TraceStep) string {
	var sb strings.Builder
	for i, step := range trace {
		fmt.Fprintf(&sb, "%3d %-40s %s\n", i, step.Label.Format(net), step.State.Format(net))
	}
	return sb.String()
}
