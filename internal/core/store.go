package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/dbm"
	"repro/internal/faultinject"
	"repro/internal/ta"
)

// passedSet is the passed-state interface of the unified explorer: the
// sequential store and the sharded pstore implement the same admission
// protocol, and the worker loop only ever talks to this. bytes and
// internStats are live views for the memory budget and progress monitor;
// both are safe to call from other goroutines while workers add.
type passedSet interface {
	add(s *State) bool
	size() int
	// bytes reports the actual stored footprint: packed zone buffers plus
	// interned discrete vectors.
	bytes() int64
	// internStats reports discrete-vector intern-table hits and misses.
	internStats() (hits, misses int64)
	// contention counts admissions that found their shard lock held and had
	// to wait (always 0 for the sequential store).
	contention() int64
}

// store is the passed-state list: per discrete state (location vector plus
// variable valuation) it keeps a list of maximal zones. A new state is
// admitted only when its zone is not included in any stored zone; on
// admission, stored zones included in the new one are pruned. This is the
// standard inclusion-checking subsumption that makes zone-graph exploration
// terminate.
//
// # Zone ownership
//
// The store NEVER aliases the zone of an admitted state: on admission it
// packs its own compact copy (dbm.EncodeCompact into a buffer from the
// store-owned dbm.CompactPool). This is what makes recycling sound — a
// pruned (subsumed) stored zone is referenced by nothing but the store and
// its buffer can be released back into the compact pool immediately, even
// while the pruned state is still sitting in a waiting list or arena with
// its own zone. The full protocol:
//
//   - engine.fire produces states whose zones come from the worker's pool;
//     the state owns its zone.
//   - store.add(s) packs s.Zone on admission into a compact-pool buffer;
//     s keeps ownership of its own (full) zone.
//   - If add reports false (subsumed), the caller releases s.Zone — the
//     state is about to be discarded and nothing else references it.
//   - Pruned compact copies are released into the compact pool inside add.
//
// Inclusion tests run directly against the packed form (dbm.Compact
// ContainsDBM/SubsetEqDBM) behind a constant-time inclusion-score
// pre-filter, so admission never decodes a stored zone. The worker-side
// succCtx scratch and dbm.Pool recycling are untouched: compression lives
// entirely behind the admission boundary.
//
// Store entries intern their discrete vectors (see internTable): location
// vectors and variable valuations repeat heavily across entries, so each
// unique vector is stored once per store — never an alias of a state's
// slices, since states recycle and entries do not.
type store struct {
	buckets map[uint64][]*storeEntry
	zones   int
	cpool   *dbm.CompactPool
	intern  internTable
	// zoneBytes tracks the packed bytes currently stored; atomic because a
	// Monitor samples bytes() while the (single) worker adds.
	zoneBytes atomic.Int64
}

type storeEntry struct {
	// key caches the discrete hash so rehashing or resizing the bucket
	// structure never recomputes it.
	key uint64
	// locs and vrs are the interned location vector and variable valuation:
	// shared with every other entry (and log, in principle) holding the same
	// vector, owned by the store's intern table, immutable once published.
	locs []uint64
	vrs  []uint64
	// zones holds the maximal zones in packed form; the buffers are owned by
	// the store and recycle through its compact pool on prune.
	zones []dbm.Compact
}

// matches reports whether the entry represents the discrete state (locs,
// vars) whose cached hash is key: one integer compare, then one
// slices.Equal-style scan.
func (e *storeEntry) matches(key uint64, locs []ta.LocID, vars []int64) bool {
	if e.key != key || len(e.locs) != len(locs) || len(e.vrs) != len(vars) {
		return false
	}
	for i, l := range locs {
		if e.locs[i] != uint64(l) {
			return false
		}
	}
	for i, v := range vars {
		if e.vrs[i] != uint64(v) {
			return false
		}
	}
	return true
}

func newStore() *store {
	st := &store{buckets: make(map[uint64][]*storeEntry), cpool: dbm.NewCompactPool()}
	st.intern.init()
	return st
}

// lookupEntry finds or creates the bucket entry for s's discrete state.
// Entry creation interns the discrete vectors through it: repeats across
// entries collapse to one shared slice each, and states stay recyclable
// (succCtx.putState) because the interned copies never alias s.
func lookupEntry(buckets map[uint64][]*storeEntry, s *State, it *internTable) *storeEntry {
	h := s.discreteKey()
	for _, e := range buckets[h] {
		if e.matches(h, s.Locs, s.Vars) {
			return e
		}
	}
	e := &storeEntry{key: h, locs: it.internLocs(s.Locs), vrs: it.internVars(s.Vars)}
	buckets[h] = append(buckets[h], e)
	return e
}

// admit implements the subsumption protocol on one entry: reject s if a
// stored zone includes it, otherwise prune stored zones covered by it
// (recycling their buffers into pool) and store a packed copy of s.Zone.
// It returns the change in the number of stored zones (0 when s was
// subsumed; any admission nets at least +1 minus prunes) and the change in
// stored bytes. The caller must hold whatever lock guards the entry.
//
// Both inclusion directions are pre-filtered by the monotone inclusion
// score: d ⊆ z forces score(d) ≤ score(z), so most non-inclusions cost one
// integer compare against the packed header instead of a dim² scan.
func (e *storeEntry) admit(s *State, pool *dbm.CompactPool) (delta int, bytesDelta int64, admitted bool) {
	if faultinject.Enabled {
		// Chaos site inside compact admission: an injected error escalates to
		// a panic so containment takes the exact path a real encoder or
		// inclusion-scan crash would — explorer.runContained for the worker,
		// the deferred unlock for a pstore shard.
		if err := faultinject.Fire("core/store"); err != nil {
			panic(err)
		}
	}
	score := dbm.InclusionScore(s.Zone)
	// First pass: pure subsumption check, no mutation.
	for _, z := range e.zones {
		if score <= z.Score() && z.ContainsDBM(s.Zone) {
			return 0, 0, false
		}
	}
	// Second pass: prune stored zones covered by the new one, recycling them.
	keep := e.zones[:0]
	for _, z := range e.zones {
		if z.Score() <= score && z.SubsetEqDBM(s.Zone) {
			delta--
			bytesDelta -= int64(len(z))
			pool.Put(z)
		} else {
			keep = append(keep, z)
		}
	}
	c := dbm.EncodeCompact(s.Zone, pool)
	e.zones = append(keep, c)
	return delta + 1, bytesDelta + int64(len(c)), true
}

// add inserts the state unless it is subsumed, reporting whether it is new.
// See the type comment for the zone-ownership protocol.
func (st *store) add(s *State) bool {
	delta, bytesDelta, admitted := lookupEntry(st.buckets, s, &st.intern).admit(s, st.cpool)
	st.zones += delta
	if bytesDelta != 0 {
		st.zoneBytes.Add(bytesDelta)
	}
	return admitted
}

// Add is an alias of add kept for test readability.
func (st *store) Add(s *State) bool { return st.add(s) }

// size returns the number of stored maximal zones.
func (st *store) size() int { return st.zones }

// Len returns the number of stored maximal zones.
func (st *store) Len() int { return st.zones }

// bytes returns the stored footprint: packed zones plus interned vectors.
func (st *store) bytes() int64 { return st.zoneBytes.Load() + st.intern.bytes.Load() }

func (st *store) internStats() (hits, misses int64) {
	return st.intern.hits.Load(), st.intern.misses.Load()
}

// contention is always 0: the sequential store has no locks to wait on.
func (st *store) contention() int64 { return 0 }

// internTable deduplicates the discrete vectors held by store entries:
// location vectors and variable valuations are interned separately (each
// repeats across many entries even though their combination is unique per
// entry), content-addressed by a word-wise hash with full collision
// comparison. Lookups and inserts happen under the owning store's/shard's
// lock; the counters are atomics because the Monitor and the memory budget
// read them while workers add.
type internTable struct {
	m      map[uint64][][]uint64
	hits   atomic.Int64
	misses atomic.Int64
	bytes  atomic.Int64
}

func (t *internTable) init() { t.m = make(map[uint64][][]uint64) }

const (
	internOffset = 14695981039346656037
	internPrime  = 0x9E3779B97F4A7C15
)

// internLocs returns the canonical interned copy of a location vector,
// allocating only on first sight of the content.
func (t *internTable) internLocs(locs []ta.LocID) []uint64 {
	h := uint64(internOffset) ^ uint64(len(locs))
	for _, l := range locs {
		h = (h ^ uint64(l)) * internPrime
	}
	for _, cand := range t.m[h] {
		if len(cand) != len(locs) {
			continue
		}
		eq := true
		for i, l := range locs {
			if cand[i] != uint64(l) {
				eq = false
				break
			}
		}
		if eq {
			t.hits.Add(1)
			return cand
		}
	}
	v := make([]uint64, len(locs))
	for i, l := range locs {
		v[i] = uint64(l)
	}
	t.m[h] = append(t.m[h], v)
	t.misses.Add(1)
	t.bytes.Add(int64(len(v)) * 8)
	return v
}

// internVars is internLocs for variable valuations.
func (t *internTable) internVars(vars []int64) []uint64 {
	h := uint64(internOffset) ^ uint64(len(vars))
	for _, x := range vars {
		h = (h ^ uint64(x)) * internPrime
	}
	for _, cand := range t.m[h] {
		if len(cand) != len(vars) {
			continue
		}
		eq := true
		for i, x := range vars {
			if cand[i] != uint64(x) {
				eq = false
				break
			}
		}
		if eq {
			t.hits.Add(1)
			return cand
		}
	}
	v := make([]uint64, len(vars))
	for i, x := range vars {
		v[i] = uint64(x)
	}
	t.m[h] = append(t.m[h], v)
	t.misses.Add(1)
	t.bytes.Add(int64(len(v)) * 8)
	return v
}

// pstore is the concurrent passed-state store of the parallel frontier: the
// bucket space is sharded and each shard carries its own lock, so workers
// exploring disjoint regions of the zone graph rarely contend. Zone
// ownership follows the same protocol as the sequential store (see the store
// type comment): stored zones are packed copies owned exclusively by the
// pstore. Each shard owns its own compact pool and intern table, used only
// under the shard lock — a discrete state always hashes to the same shard,
// so repeats of its vectors intern within that shard.
type pstore struct {
	shards    []pshard
	mask      uint64 // len(shards)-1; the count is a power of two
	zones     atomic.Int64
	zoneBytes atomic.Int64
	// contended counts adds that found their shard lock held (TryLock
	// failed) and had to block — the sweep profile's store-contention total.
	contended atomic.Int64
}

// pshard is one lock shard, padded to its own cache line against false
// sharing between neighboring shards.
type pshard struct {
	mu      sync.Mutex
	buckets map[uint64][]*storeEntry
	cpool   *dbm.CompactPool
	intern  internTable
	_       [48]byte
}

// newPStore returns a sharded store with the given shard count, which must
// be a power of two (Options.storeShardCount guarantees it).
func newPStore(shards int) *pstore {
	st := &pstore{shards: make([]pshard, shards), mask: uint64(shards - 1)}
	for i := range st.shards {
		st.shards[i].buckets = make(map[uint64][]*storeEntry)
		st.shards[i].cpool = dbm.NewCompactPool()
		st.shards[i].intern.init()
	}
	return st
}

// add inserts the state unless it is subsumed, reporting whether it is new.
// The subsumption logic mirrors store.add under the shard lock; the packed
// copy is drawn from the shard's compact pool and pruned zones are released
// into it.
func (st *pstore) add(s *State) bool {
	sh := &st.shards[s.discreteKey()&st.mask]
	// The unlock is deferred so a panic inside the admission (contained per
	// worker by explorer.runContained) releases the shard instead of hanging
	// every other worker that hashes to it; the open-coded defer costs no
	// allocation. The run is failing at that point, so the possibly
	// half-admitted entry is only ever read by workers about to observe the
	// stop flag — and the store, like the pools, dies with the run.
	if !sh.mu.TryLock() {
		st.contended.Add(1)
		sh.mu.Lock()
	}
	defer sh.mu.Unlock()
	delta, bytesDelta, admitted := lookupEntry(sh.buckets, s, &sh.intern).admit(s, sh.cpool)
	if delta != 0 {
		st.zones.Add(int64(delta))
	}
	if bytesDelta != 0 {
		st.zoneBytes.Add(bytesDelta)
	}
	return admitted
}

// size returns the number of stored maximal zones.
func (st *pstore) size() int { return int(st.zones.Load()) }

// bytes returns the stored footprint: packed zones plus interned vectors.
func (st *pstore) bytes() int64 {
	total := st.zoneBytes.Load()
	for i := range st.shards {
		total += st.shards[i].intern.bytes.Load()
	}
	return total
}

func (st *pstore) internStats() (hits, misses int64) {
	for i := range st.shards {
		hits += st.shards[i].intern.hits.Load()
		misses += st.shards[i].intern.misses.Load()
	}
	return hits, misses
}

// contention counts adds that had to wait for a shard lock.
func (st *pstore) contention() int64 { return st.contended.Load() }
