package core

import (
	"repro/internal/dbm"
	"repro/internal/ta"
)

// store is the passed-state list: per discrete state (location vector plus
// variable valuation) it keeps a list of maximal zones. A new state is
// admitted only when its zone is not included in any stored zone; on
// admission, stored zones included in the new one are pruned. This is the
// standard inclusion-checking subsumption that makes zone-graph exploration
// terminate.
type store struct {
	buckets map[uint64][]*storeEntry
	zones   int
}

type storeEntry struct {
	locs  []ta.LocID
	vars  []int64
	zones []*dbm.DBM
}

func newStore() *store {
	return &store{buckets: make(map[uint64][]*storeEntry)}
}

// Add inserts the state unless it is subsumed, reporting whether it is new.
func (st *store) Add(s *State) bool {
	h := discreteHash(s.Locs, s.Vars)
	bucket := st.buckets[h]
	var entry *storeEntry
	for _, e := range bucket {
		if len(e.locs) == len(s.Locs) && len(e.vars) == len(s.Vars) &&
			discreteEqual(e.locs, s.Locs, e.vars, s.Vars) {
			entry = e
			break
		}
	}
	if entry == nil {
		entry = &storeEntry{locs: s.Locs, vars: s.Vars}
		st.buckets[h] = append(st.buckets[h], entry)
	}
	// First pass: pure subsumption check, no mutation.
	for _, z := range entry.zones {
		if s.Zone.SubsetEq(z) {
			return false
		}
	}
	// Second pass: prune stored zones covered by the new one.
	keep := entry.zones[:0]
	for _, z := range entry.zones {
		if !z.SubsetEq(s.Zone) {
			keep = append(keep, z)
		} else {
			st.zones--
		}
	}
	entry.zones = append(keep, s.Zone)
	st.zones++
	return true
}

// Len returns the number of stored maximal zones.
func (st *store) Len() int { return st.zones }
