package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// passedSet is the passed-state interface of the unified explorer: the
// sequential store and the sharded pstore implement the same admission
// protocol, and the worker loop only ever talks to this. pool is the calling
// worker's pool — the stored copy is drawn from it and pruned zones are
// released into it.
type passedSet interface {
	add(s *State, pool *dbm.Pool) bool
	size() int
}

// store is the passed-state list: per discrete state (location vector plus
// variable valuation) it keeps a list of maximal zones. A new state is
// admitted only when its zone is not included in any stored zone; on
// admission, stored zones included in the new one are pruned. This is the
// standard inclusion-checking subsumption that makes zone-graph exploration
// terminate.
//
// # Zone ownership
//
// The store NEVER aliases the zone of an admitted state: on admission it
// keeps its own pool-backed copy. This is what makes recycling sound — a
// pruned (subsumed) stored zone is referenced by nothing but the store and
// can be released back into the pool immediately, even while the pruned
// state is still sitting in a waiting list or arena with its own zone. The
// full protocol:
//
//   - engine.fire produces states whose zones come from the worker's pool;
//     the state owns its zone.
//   - store.Add(s) copies s.Zone on admission (pool-backed); s keeps
//     ownership of its own zone.
//   - If Add reports false (subsumed), the caller releases s.Zone — the
//     state is about to be discarded and nothing else references it.
//   - Pruned stored copies are released into the pool inside Add.
//
// Store entries own packed copies of the discrete vectors (see packDisc),
// never aliases of a state's slices — states recycle, entries do not.
type store struct {
	buckets map[uint64][]*storeEntry
	zones   int
	pool    *dbm.Pool // nil disables copying and recycling (zones are aliased)
}

type storeEntry struct {
	// key caches the discrete hash so rehashing or resizing the bucket
	// structure never recomputes it.
	key uint64
	// disc packs the location vector followed by the variable valuation
	// into one owned slice: one allocation per discrete state and one
	// slices.Equal-style scan per lookup.
	disc  []uint64
	zones []*dbm.DBM
}

// packDisc flattens (locs, vars) into a fresh entry-owned key slice.
func packDisc(locs []ta.LocID, vars []int64) []uint64 {
	disc := make([]uint64, 0, len(locs)+len(vars))
	for _, l := range locs {
		disc = append(disc, uint64(l))
	}
	for _, v := range vars {
		disc = append(disc, uint64(v))
	}
	return disc
}

// matches reports whether the entry represents the discrete state (locs,
// vars) whose cached hash is key: one integer compare, then one
// slices.Equal-style scan.
func (e *storeEntry) matches(key uint64, locs []ta.LocID, vars []int64) bool {
	if e.key != key || len(e.disc) != len(locs)+len(vars) {
		return false
	}
	for i, l := range locs {
		if e.disc[i] != uint64(l) {
			return false
		}
	}
	d := e.disc[len(locs):]
	for i, v := range vars {
		if d[i] != uint64(v) {
			return false
		}
	}
	return true
}

func newStore(pool *dbm.Pool) *store {
	return &store{buckets: make(map[uint64][]*storeEntry), pool: pool}
}

// lookupEntry finds or creates the bucket entry for s's discrete state.
func lookupEntry(buckets map[uint64][]*storeEntry, s *State) *storeEntry {
	h := s.discreteKey()
	for _, e := range buckets[h] {
		if e.matches(h, s.Locs, s.Vars) {
			return e
		}
	}
	// The entry owns its packed key material: states are recyclable
	// (succCtx.putState), so aliasing s here would let a reused state
	// rewrite the entry's key in place. Entry creation happens once per
	// discrete state, so the copy cost is negligible.
	e := &storeEntry{key: h, disc: packDisc(s.Locs, s.Vars)}
	buckets[h] = append(buckets[h], e)
	return e
}

// admit implements the subsumption protocol on one entry: reject s if a
// stored zone includes it, otherwise prune stored zones covered by it
// (releasing them into pool) and store a pool-backed copy of s.Zone. It
// returns the change in the number of stored zones, or 0 when s was
// subsumed (any admission nets at least +1 minus prunes). The caller must
// hold whatever lock guards the entry; pool may be nil to disable copying
// and recycling (zones are then aliased).
func (e *storeEntry) admit(s *State, pool *dbm.Pool) (delta int, admitted bool) {
	// First pass: pure subsumption check, no mutation.
	for _, z := range e.zones {
		if s.Zone.SubsetEq(z) {
			return 0, false
		}
	}
	// Second pass: prune stored zones covered by the new one, recycling them.
	keep := e.zones[:0]
	for _, z := range e.zones {
		if !z.SubsetEq(s.Zone) {
			keep = append(keep, z)
		} else {
			delta--
			if pool != nil {
				pool.Put(z)
			}
		}
	}
	stored := s.Zone
	if pool != nil {
		stored = pool.GetCopy(s.Zone)
	}
	e.zones = append(keep, stored)
	return delta + 1, true
}

// add inserts the state unless it is subsumed, reporting whether it is new;
// the stored copy is drawn from pool and pruned zones are released into it.
// See the type comment for the zone-ownership protocol.
func (st *store) add(s *State, pool *dbm.Pool) bool {
	delta, admitted := lookupEntry(st.buckets, s).admit(s, pool)
	st.zones += delta
	return admitted
}

// Add is the single-pool convenience form of add, using the pool the store
// was constructed with.
func (st *store) Add(s *State) bool { return st.add(s, st.pool) }

// size returns the number of stored maximal zones.
func (st *store) size() int { return st.zones }

// Len returns the number of stored maximal zones.
func (st *store) Len() int { return st.zones }

// pstore is the concurrent passed-state store of the parallel frontier: the
// bucket space is sharded and each shard carries its own lock, so workers
// exploring disjoint regions of the zone graph rarely contend. Zone
// ownership follows the same protocol as the sequential store (see the store
// type comment): stored zones are pool-backed copies owned exclusively by
// the pstore, so pruned zones can be recycled into the calling worker's pool
// even while the pruned state is still queued in some deque.
type pstore struct {
	shards []pshard
	mask   uint64 // len(shards)-1; the count is a power of two
	zones  atomic.Int64
}

// pshard is one lock shard, padded to its own cache line against false
// sharing between neighboring shards.
type pshard struct {
	mu      sync.Mutex
	buckets map[uint64][]*storeEntry
	_       [48]byte
}

// newPStore returns a sharded store with the given shard count, which must
// be a power of two (Options.storeShardCount guarantees it).
func newPStore(shards int) *pstore {
	st := &pstore{shards: make([]pshard, shards), mask: uint64(shards - 1)}
	for i := range st.shards {
		st.shards[i].buckets = make(map[uint64][]*storeEntry)
	}
	return st
}

// add inserts the state unless it is subsumed, reporting whether it is new.
// The subsumption logic mirrors store.add under the shard lock. pool is the
// calling worker's pool: the stored copy is drawn from it and pruned zones
// are released into it (pools are single-owner, so this is safe even though
// the shard lock is shared).
func (st *pstore) add(s *State, pool *dbm.Pool) bool {
	sh := &st.shards[s.discreteKey()&st.mask]
	// The unlock is deferred so a panic inside the admission (contained per
	// worker by explorer.runContained) releases the shard instead of hanging
	// every other worker that hashes to it; the open-coded defer costs no
	// allocation. The run is failing at that point, so the possibly
	// half-admitted entry is only ever read by workers about to observe the
	// stop flag — and the store, like the pools, dies with the run.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delta, admitted := lookupEntry(sh.buckets, s).admit(s, pool)
	if delta != 0 {
		st.zones.Add(int64(delta))
	}
	return admitted
}

// size returns the number of stored maximal zones.
func (st *pstore) size() int { return int(st.zones.Load()) }
