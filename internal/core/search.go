package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ta"
)

// Order selects the exploration strategy of the waiting list.
type Order int

const (
	// BFS explores breadth-first (shortest counterexamples).
	BFS Order = iota
	// DFS explores depth-first (the paper's "df" option).
	DFS
	// RDFS explores depth-first with randomly shuffled successors
	// (the paper's "rdf" option, used as a structured-testing mode).
	RDFS
)

func (o Order) String() string {
	switch o {
	case BFS:
		return "bfs"
	case DFS:
		return "df"
	case RDFS:
		return "rdf"
	}
	return "?"
}

// Options configures an exploration.
type Options struct {
	// Order is the search order (default BFS).
	Order Order
	// Seed seeds the RDFS shuffling.
	Seed int64
	// MaxStates truncates the exploration after storing this many states;
	// 0 means unlimited. A truncated run turns exact answers into bounds,
	// exactly as the paper's depth-first "structured testing" mode does.
	MaxStates int
	// StopAtDeadlock ends the exploration at the first deadlocked state
	// (no action successor from the state or any of its delay successors),
	// recording a trace to it.
	StopAtDeadlock bool
	// Workers > 1 runs trace-free queries (SupClock, MaxVar) on the
	// work-stealing parallel explorer with that many goroutines; the
	// routing decision is Options.parallelism (checker.go), shared by
	// every entry point including the cmd/ -workers flags. Queries that
	// reconstruct traces (CheckSafety, Reachable, CheckDeadlockFree)
	// ignore the field and always run sequentially. Note that a parallel
	// SupClock run therefore never fills SupResult.Witness — set Workers
	// to 1 (or 0) when the witness trace matters.
	Workers int
}

// Stats reports exploration effort.
type Stats struct {
	// Stored counts unique (non-subsumed) symbolic states.
	Stored int
	// Popped counts states taken from the waiting list and expanded.
	Popped int
	// Transitions counts generated successor states, including subsumed ones.
	Transitions int
	// Deadlocks counts explored states without any action successor.
	Deadlocks int
	// Truncated reports whether MaxStates stopped the exploration early.
	Truncated bool
	// Duration is the wall-clock exploration time.
	Duration time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("stored=%d popped=%d transitions=%d truncated=%v in %v",
		s.Stored, s.Popped, s.Transitions, s.Truncated, s.Duration.Round(time.Millisecond))
}

// Checker runs symbolic analyses over one finalized network.
type Checker struct {
	net *ta.Network
	eng *engine
}

// NewChecker returns a checker for a finalized network.
func NewChecker(net *ta.Network) (*Checker, error) {
	eng, err := newEngine(net)
	if err != nil {
		return nil, err
	}
	return &Checker{net: net, eng: eng}, nil
}

// Network returns the analyzed network.
func (c *Checker) Network() *ta.Network { return c.net }

// SetCoarseExtrapolation switches the explorer to the Extra_LU abstraction.
// LU preserves location reachability (safety/deadlock checking) with fewer
// symbolic states, but clock suprema computed under it are upper bounds
// rather than exact values — do not combine with SupClock when exactness
// matters. See the engine documentation for the mechanism.
func (c *Checker) SetCoarseExtrapolation(coarse bool) { c.eng.extraLU = coarse }

// node is an arena entry carrying parent links for trace reconstruction.
type node struct {
	state  *State
	parent int
	label  Label
}

// ExploreResult is the outcome of a reachability exploration.
type ExploreResult struct {
	Stats
	// Found reports whether the visitor stopped the search.
	Found bool
	// FoundState is the state the visitor stopped at.
	FoundState *State
	// Trace is the path from the initial state to FoundState.
	Trace []TraceStep
	// DeadlockTrace leads to the first deadlocked state when
	// Options.StopAtDeadlock is set and one was found.
	DeadlockTrace []TraceStep
}

// Explore performs symbolic reachability from the initial state. The visitor
// is invoked once for every newly stored (non-subsumed) state, including the
// initial one; returning true stops the search with Found set and a trace to
// the state. A nil visitor explores the full reachable zone graph.
func (c *Checker) Explore(opts Options, visit func(*State) bool) (ExploreResult, error) {
	start := time.Now()
	var res ExploreResult
	var rng *rand.Rand
	if opts.Order == RDFS {
		rng = rand.New(rand.NewSource(opts.Seed))
	}

	init, err := c.eng.initial()
	if err != nil {
		return res, err
	}
	ctx := c.eng.newCtx()
	passed := newStore(ctx.pool)
	passed.Add(init)
	res.Stored = 1

	arena := make([]node, 1, 1024)
	arena[0] = node{state: init, parent: -1}
	waiting := make([]int, 1, 256)
	waiting[0] = 0

	finish := func() ExploreResult {
		res.Duration = time.Since(start)
		return res
	}
	if visit != nil && visit(init) {
		res.Found = true
		res.FoundState = init
		res.Trace = buildTrace(arena, 0)
		return finish(), nil
	}

	var succs []succ
	for len(waiting) > 0 {
		var idx int
		if opts.Order == BFS {
			idx = waiting[0]
			waiting = waiting[1:]
		} else {
			idx = waiting[len(waiting)-1]
			waiting = waiting[:len(waiting)-1]
		}
		res.Popped++
		cur := arena[idx]

		succs, err = c.eng.successors(ctx, cur.state, succs[:0])
		if err != nil {
			return finish(), err
		}
		if len(succs) == 0 {
			res.Deadlocks++
			if opts.StopAtDeadlock {
				res.DeadlockTrace = buildTrace(arena, idx)
				return finish(), nil
			}
		}
		if rng != nil {
			rng.Shuffle(len(succs), func(i, j int) { succs[i], succs[j] = succs[j], succs[i] })
		}
		for _, sc := range succs {
			res.Transitions++
			if !passed.Add(sc.state) {
				// Subsumed: the state is discarded and nothing else
				// references it, so it is recycled wholesale.
				ctx.putState(sc.state)
				continue
			}
			res.Stored++
			arena = append(arena, node{state: sc.state, parent: idx, label: sc.label})
			ni := len(arena) - 1
			if visit != nil && visit(sc.state) {
				res.Found = true
				res.FoundState = sc.state
				res.Trace = buildTrace(arena, ni)
				return finish(), nil
			}
			waiting = append(waiting, ni)
			if opts.MaxStates > 0 && res.Stored >= opts.MaxStates {
				res.Truncated = true
				return finish(), nil
			}
		}
	}
	return finish(), nil
}

// buildTrace walks parent links from arena index i back to the root,
// filling the result back-to-front in a single pass.
func buildTrace(arena []node, i int) []TraceStep {
	depth := 0
	for k := i; k >= 0; k = arena[k].parent {
		depth++
	}
	out := make([]TraceStep, depth)
	for k := i; k >= 0; k = arena[k].parent {
		depth--
		out[depth] = TraceStep{Label: arena[k].label, State: arena[k].state}
	}
	return out
}
