package core

import (
	"fmt"
	"time"

	"repro/internal/ta"
)

// Order selects the exploration strategy of the waiting list.
type Order int

const (
	// BFS explores breadth-first (shortest counterexamples).
	BFS Order = iota
	// DFS explores depth-first (the paper's "df" option).
	DFS
	// RDFS explores depth-first with randomly shuffled successors
	// (the paper's "rdf" option, used as a structured-testing mode).
	RDFS
)

func (o Order) String() string {
	switch o {
	case BFS:
		return "bfs"
	case DFS:
		return "df"
	case RDFS:
		return "rdf"
	}
	return "?"
}

// Options configures an exploration.
type Options struct {
	// Order is the search order (default BFS). The parallel frontier always
	// expands its local deque depth-first and steals breadth-first, so with
	// Workers > 1 the field only shapes per-worker successor handling (RDFS
	// still shuffles) and the global order is nondeterministic.
	Order Order
	// Seed seeds the RDFS shuffling and the parallel frontier's victim
	// selection.
	Seed int64
	// MaxStates truncates the exploration after storing this many states;
	// 0 means unlimited. A truncated run turns exact answers into bounds,
	// exactly as the paper's depth-first "structured testing" mode does.
	// With Workers > 1 the admitted subset — and hence the truncated bound —
	// depends on scheduling; keep Workers at 1 when seeded reproducibility
	// of truncated bounds matters.
	MaxStates int
	// StateBudget is the hard counterpart of MaxStates: admitting more than
	// this many unique states fails the run with ErrStateBudget and partial
	// Stats (the Checker stays reusable). 0 means unlimited. Use MaxStates
	// when a truncated answer is still useful as a bound; use StateBudget
	// when exceeding the cap must be an error the caller cannot miss.
	StateBudget int
	// MaxBytes bounds the run's zone memory: once the matrices allocated by
	// the exploration's pools exceed this many bytes, the run fails with
	// ErrMemoryBudget and partial Stats via the same between-expansions
	// abort point as Cancel. 0 means unlimited. Accounting is per-worker
	// (budget.go) and adds nothing to the visitor path; the count covers
	// zone storage only — the dominant consumer — not discrete vectors or
	// store bookkeeping.
	MaxBytes int64
	// StopAtDeadlock ends the exploration at the first deadlocked state
	// (no action successor from the state or any of its delay successors),
	// recording a trace to it.
	StopAtDeadlock bool
	// Workers > 1 runs the exploration — every query kind, traces included —
	// on the work-stealing parallel frontier with that many goroutines; 0 or
	// 1 selects the sequential frontier. The routing decision is
	// Options.parallelism (checker.go), the single place the field is
	// interpreted, shared by every entry point including the cmd/ -workers
	// flags. Parallel runs reconstruct counterexamples and witnesses from
	// per-worker parent logs (see explore.go), so trace queries scale with
	// cores too. Visitors and property predicates are invoked concurrently
	// when Workers > 1 and must be safe for concurrent use.
	Workers int
	// StoreShards sets the lock-shard count of the parallel passed store,
	// rounded up to a power of two; 0 selects the default of 64. More shards
	// cut contention on huge graphs with many workers; fewer save memory on
	// small ones. Only meaningful with Workers > 1.
	StoreShards int
	// DequeCapacity sets the initial ring capacity of each worker's
	// Chase–Lev deque, rounded up to a power of two; 0 selects the default
	// of 64. Deques grow on demand, so this only tunes early-run growth
	// churn. Only meaningful with Workers > 1.
	DequeCapacity int

	// Cancel, when non-nil, cancels the exploration cooperatively: once the
	// channel is closed (or receives), every worker stops within a bounded
	// number of expansions and the run returns ErrCanceled with the partial
	// Stats accumulated so far. Cancellation honors the pool and parent-log
	// ownership invariants — workers abort only between expansions, so every
	// state is either recycled through its owning succCtx or abandoned to the
	// garbage collector with the per-run pools; nothing dangles into a later
	// run. Typically wired to a context's Done channel by callers that manage
	// jobs (internal/serve).
	Cancel <-chan struct{}
	// Deadline, when nonzero, bounds the exploration by wall clock: a run
	// still going when the deadline passes stops cooperatively like Cancel
	// and returns ErrDeadlineExceeded with partial Stats. The two aborts are
	// distinguishable via errors.Is even when both trigger (deadline wins the
	// check order).
	Deadline time.Time
	// Monitor, when non-nil, publishes live progress of the run: states
	// stored/popped/transitions and the frontier backlog, sampled lock-free
	// from per-worker relaxed counters (see Monitor.Snapshot). A Monitor
	// observes one exploration at a time.
	Monitor *Monitor

	// noTrace disables parent logging for in-package queries that can prove
	// they never request a trace (MaxVar). Zero value keeps logging on
	// whenever a query or StopAtDeadlock could stop the run with a trace.
	noTrace bool
	// passed, when non-nil, replaces the run's passed-state store. Test-only:
	// the compact-store oracle injects a full-DBM reference implementation to
	// differentially check admission (store_oracle_test.go). Must be safe for
	// concurrent use when Workers > 1.
	passed passedSet
}

const (
	defaultStoreShards   = 64
	defaultDequeCapacity = 64
)

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// storeShardCount resolves StoreShards to the power-of-two shard count the
// sharded passed store indexes with.
func (o Options) storeShardCount() int {
	if o.StoreShards <= 0 {
		return defaultStoreShards
	}
	return nextPow2(o.StoreShards)
}

// dequeCapacity resolves DequeCapacity to the power-of-two ring size the
// Chase–Lev deques start from.
func (o Options) dequeCapacity() int64 {
	if o.DequeCapacity <= 0 {
		return defaultDequeCapacity
	}
	return int64(nextPow2(o.DequeCapacity))
}

// Stats reports exploration effort.
type Stats struct {
	// Stored counts unique (non-subsumed) symbolic states.
	Stored int
	// Popped counts states taken from the waiting list and expanded.
	Popped int
	// Transitions counts generated successor states, including subsumed ones.
	Transitions int
	// Deadlocks counts explored states without any action successor.
	Deadlocks int
	// Truncated reports whether MaxStates stopped the exploration early.
	Truncated bool
	// Duration is the wall-clock exploration time.
	Duration time.Duration
}

// Add accumulates o into s: counters and Duration sum, Truncated ORs.
// Multi-run analyses (binary search, table sweeps) aggregate through this
// single place so a field added to Stats is never silently dropped.
func (s *Stats) Add(o Stats) {
	s.Stored += o.Stored
	s.Popped += o.Popped
	s.Transitions += o.Transitions
	s.Deadlocks += o.Deadlocks
	s.Truncated = s.Truncated || o.Truncated
	s.Duration += o.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("stored=%d popped=%d transitions=%d truncated=%v in %v",
		s.Stored, s.Popped, s.Transitions, s.Truncated, s.Duration.Round(time.Millisecond))
}

// Checker runs symbolic analyses over one finalized network.
type Checker struct {
	net *ta.Network
	eng *engine
}

// NewChecker returns a checker for a finalized network.
func NewChecker(net *ta.Network) (*Checker, error) {
	eng, err := newEngine(net)
	if err != nil {
		return nil, err
	}
	return &Checker{net: net, eng: eng}, nil
}

// Network returns the analyzed network.
func (c *Checker) Network() *ta.Network { return c.net }

// SetCoarseExtrapolation switches the explorer to the Extra_LU abstraction.
// LU preserves location reachability (safety/deadlock checking) with fewer
// symbolic states, but clock suprema computed under it are upper bounds
// rather than exact values — do not combine with SupClock when exactness
// matters. See the engine documentation for the mechanism.
func (c *Checker) SetCoarseExtrapolation(coarse bool) { c.eng.extraLU = coarse }

// ExploreResult is the outcome of a reachability exploration.
type ExploreResult struct {
	Stats
	// Found reports whether the visitor stopped the search.
	Found bool
	// FoundState is the state the visitor stopped at: a caller-owned copy,
	// valid after the call regardless of state recycling.
	FoundState *State
	// Trace is the path from the initial state to FoundState. Its states are
	// freshly materialized by trace replay and are owned by the caller.
	Trace []TraceStep
	// DeadlockTrace leads to the first deadlocked state when
	// Options.StopAtDeadlock is set and one was found.
	DeadlockTrace []TraceStep
}

// Explore performs symbolic reachability from the initial state, sequentially
// or work-stealing-parallel according to Options.Workers. The visitor is
// invoked once for every newly stored (non-subsumed) state, including the
// initial one; returning true stops the search with Found set and a trace to
// the state. A nil visitor explores the full reachable zone graph.
//
// The visitor must not retain a state (or its zone) beyond the call on
// either path: the unified engine recycles every fully-expanded state, so a
// retained pointer is silently overwritten with later states' data.
// FoundState and the replayed trace states are exempt. With Workers > 1 the
// visitor is additionally called concurrently from several workers and must
// be safe for concurrent use. Subsumption remains sound under concurrency: a
// state admitted by two workers simultaneously is expanded at most twice
// (harmless), never lost.
func (c *Checker) Explore(opts Options, visit func(*State) bool) (ExploreResult, error) {
	var rq *ReachQuery
	var queries []Query
	if visit != nil {
		rq = NewReachQuery(visit)
		queries = []Query{rq}
	}
	res, err := c.explore(opts, queries)
	if err != nil {
		return res, err
	}
	if rq != nil && rq.Found {
		res.Found = true
		res.FoundState = rq.FoundState
		res.Trace = rq.Trace
	}
	return res, nil
}
