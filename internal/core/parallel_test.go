package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// buildGrid constructs a system with a decently sized zone graph: three
// periodic generators with co-prime periods feeding one server.
func buildGrid(t *testing.T) (*ta.Network, ta.Clock, *ta.Process, ta.LocID) {
	t.Helper()
	n := ta.NewNetwork("grid")
	sx := n.AddClock("sx")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 500)
	rec := n.AddVar("rec", 0, 0, 12)
	hurry := n.AddChan("hurry", ta.BroadcastUrgent)
	for i, period := range []int64{7, 11, 13} {
		gx := n.AddClock("gx" + string(rune('0'+i)))
		gen := n.AddProcess("GEN" + string(rune('0'+i)))
		g0 := gen.AddLocation("tick", ta.Normal, ta.CLE(gx, period))
		gen.AddEdge(ta.Edge{Src: g0, Dst: g0, ClockGuard: ta.CEq(gx, period),
			Resets: []ta.Reset{{Clock: gx.ID, Value: 0}}, Update: ta.Inc(rec, 1)})
	}
	srv := n.AddProcess("SRV")
	idle := srv.AddLocation("idle", ta.Normal)
	busy := srv.AddLocation("busy", ta.Normal, ta.CLE(sx, 2))
	srv.AddEdge(ta.Edge{Src: idle, Dst: busy,
		Guard:  ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Resets: []ta.Reset{{Clock: sx.ID, Value: 0}},
		Update: ta.Inc(rec, -1)})
	srv.AddEdge(ta.Edge{Src: busy, Dst: idle, ClockGuard: ta.CEq(sx, 2)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n, sx, srv, busy
}

func TestParallelMatchesSequentialStateCount(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.Explore(Options{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Racy double-admission can store a state twice, so the parallel count
	// may exceed the sequential one slightly, never undercut it.
	if par.Stored < seq.Stored {
		t.Errorf("parallel stored %d < sequential %d", par.Stored, seq.Stored)
	}
	if par.Stored > seq.Stored+seq.Stored/10+8 {
		t.Errorf("parallel stored %d unreasonably above sequential %d", par.Stored, seq.Stored)
	}
}

func TestParallelSupMatchesSequential(t *testing.T) {
	n, sx, srv, busy := buildGrid(t)
	_ = srv
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	cond := func(s *State) bool { return s.Locs[3] == busy }
	seq, err := c.SupClock(sx.ID, cond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.SupClock(sx.ID, cond, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Max != par.Max || seq.Unbounded != par.Unbounded || seq.Seen != par.Seen {
		t.Errorf("parallel sup %v (unbounded=%v) != sequential %v (unbounded=%v)",
			par.Max, par.Unbounded, seq.Max, seq.Unbounded)
	}
	if seq.Max != dbm.LE(2) {
		t.Errorf("server busy clock sup = %v, want <=2", seq.Max)
	}
}

func TestParallelErrorPropagates(t *testing.T) {
	n := ta.NewNetwork("overflow")
	v := n.AddVar("v", 0, 0, 2)
	x := n.AddClock("x")
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal, ta.CLE(x, 1))
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 1),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: ta.Inc(v, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	if _, err := c.Explore(Options{Workers: 4}, nil); err == nil {
		t.Error("variable overflow must propagate from workers")
	}
}

func TestParallelVisitorStops(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, _ := NewChecker(n)
	res, err := c.Explore(Options{Workers: 4}, func(s *State) bool {
		return s.Locs[3] == busy
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FoundState == nil {
		t.Fatal("parallel visitor stop must record the found state")
	}
	if len(res.Trace) == 0 {
		t.Fatal("parallel visitor stop must reconstruct a trace")
	}
	last := res.Trace[len(res.Trace)-1].State
	if last.Locs[3] != busy {
		t.Error("parallel trace must end in the found state")
	}
	assertTraceValid(t, c, res.Trace)
}

func TestParallelMaxStatesTruncates(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, _ := NewChecker(n)
	res, err := c.Explore(Options{MaxStates: 50, Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("parallel exploration must truncate at MaxStates")
	}
}
