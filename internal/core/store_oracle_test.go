package core

import (
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// This file is the compact-store differential oracle: a full-DBM reference
// implementation of passedSet (the pre-compression store semantics — plain
// copied matrices, entrywise SubsetEq, no fingerprints, no interning) is run
// against the compact store through the Options.passed injection hook. Two
// modes:
//
//   - Shadow mode: one sweep drives BOTH stores behind a serializing mutex
//     and every single admission decision must agree. This works under
//     Workers > 1 too, where comparing two separate runs would be unsound
//     (racy double-admission makes counts scheduling-dependent).
//   - Replacement mode: two sequential sweeps — default compact store vs
//     injected reference — must be bit-identical in verdicts, Stats, and
//     replayed traces, proving the store swap is invisible end to end.

// refStore is the reference passedSet: full-DBM zones, linear subsumption.
type refStore struct {
	mu      sync.Mutex
	buckets map[uint64][]*refEntry
	zones   int
	zbytes  int64
}

type refEntry struct {
	key  uint64
	locs []ta.LocID
	vars []int64
	zs   []*dbm.DBM
}

func newRefStore() *refStore {
	return &refStore{buckets: make(map[uint64][]*refEntry)}
}

func (st *refStore) add(s *State) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	h := s.discreteKey()
	var e *refEntry
	for _, cand := range st.buckets[h] {
		if cand.key == h && slices.Equal(cand.locs, s.Locs) && slices.Equal(cand.vars, s.Vars) {
			e = cand
			break
		}
	}
	if e == nil {
		e = &refEntry{key: h, locs: slices.Clone(s.Locs), vars: slices.Clone(s.Vars)}
		st.buckets[h] = append(st.buckets[h], e)
	}
	for _, z := range e.zs {
		if s.Zone.SubsetEq(z) {
			return false
		}
	}
	keep := e.zs[:0]
	for _, z := range e.zs {
		if z.SubsetEq(s.Zone) {
			st.zones--
			st.zbytes -= dbm.ZoneBytes(z.Dim())
		} else {
			keep = append(keep, z)
		}
	}
	e.zs = append(keep, s.Zone.Copy())
	st.zones++
	st.zbytes += dbm.ZoneBytes(s.Zone.Dim())
	return true
}

func (st *refStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.zones
}

func (st *refStore) bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.zbytes
}

func (st *refStore) internStats() (hits, misses int64) { return 0, 0 }
func (st *refStore) contention() int64                 { return 0 }

// shadowStore drives the compact store under test and the reference in
// lockstep: the mutex serializes concurrent admissions so both stores see
// the identical sequence, making per-decision equality a sound assertion
// even with Workers > 1.
type shadowStore struct {
	mu            sync.Mutex
	fast          passedSet
	ref           *refStore
	disagreements atomic.Int64
}

func (sh *shadowStore) add(s *State) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a := sh.fast.add(s)
	if b := sh.ref.add(s); a != b {
		sh.disagreements.Add(1)
	}
	return a
}

func (sh *shadowStore) size() int                         { return sh.fast.size() }
func (sh *shadowStore) bytes() int64                      { return sh.fast.bytes() }
func (sh *shadowStore) internStats() (hits, misses int64) { return sh.fast.internStats() }
func (sh *shadowStore) contention() int64                 { return sh.fast.contention() }

// TestCompactStoreShadowMatchesReference asserts every admission decision of
// the compact store (sequential and sharded) equals the full-DBM reference's
// on a real exploration, sequentially and with racing workers (-race covers
// the concurrent paths).
func TestCompactStoreShadowMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, _, _, _ := buildGrid(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		var fast passedSet
		if workers > 1 {
			fast = newPStore(64)
		} else {
			fast = newStore()
		}
		sh := &shadowStore{fast: fast, ref: newRefStore()}
		res, err := c.Explore(Options{Workers: workers, passed: sh}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := sh.disagreements.Load(); d != 0 {
			t.Errorf("workers=%d: %d admission decisions diverged from the reference store", workers, d)
		}
		if fast.size() != sh.ref.size() {
			t.Errorf("workers=%d: compact store holds %d zones, reference %d",
				workers, fast.size(), sh.ref.size())
		}
		if res.Stored != sh.ref.size() {
			t.Errorf("workers=%d: Stats.Stored=%d, stored zones=%d", workers, res.Stored, sh.ref.size())
		}
	}
}

func sameTrace(t *testing.T, kind string, got, want []TraceStep) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: trace length %d != reference %d", kind, len(got), len(want))
		return
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Label.Kind != w.Label.Kind || g.Label.Chan != w.Label.Chan ||
			!slices.Equal(g.Label.Parts, w.Label.Parts) {
			t.Errorf("%s: step %d label %v != reference %v", kind, i, g.Label, w.Label)
		}
		if !slices.Equal(g.State.Locs, w.State.Locs) || !slices.Equal(g.State.Vars, w.State.Vars) ||
			!g.State.Zone.Eq(w.State.Zone) {
			t.Errorf("%s: step %d state diverges from reference", kind, i)
		}
	}
}

// TestCompactStoreSweepBitIdenticalToReference runs whole sequential
// analyses twice — compact store vs injected full-DBM reference — and
// requires bit-identical Stats, verdicts, suprema, and replayed traces.
func TestCompactStoreSweepBitIdenticalToReference(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	atBusy := func(s *State) bool { return s.Locs[3] == busy }
	ref := func() Options { return Options{passed: newRefStore()} }

	// Plain sweep: full Stats equality.
	cres, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := c.Explore(ref(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Stored != rres.Stored || cres.Popped != rres.Popped ||
		cres.Transitions != rres.Transitions || cres.Deadlocks != rres.Deadlocks {
		t.Errorf("sweep stats diverge: compact %+v, reference %+v", cres.Stats, rres.Stats)
	}

	// Reachability with witness trace.
	cfound, err := c.Explore(Options{}, atBusy)
	if err != nil {
		t.Fatal(err)
	}
	rfound, err := c.Explore(ref(), atBusy)
	if err != nil {
		t.Fatal(err)
	}
	if cfound.Found != rfound.Found {
		t.Fatalf("reachability verdict diverges: compact %v, reference %v", cfound.Found, rfound.Found)
	}
	if !cfound.Found {
		t.Fatal("busy location must be reachable in the grid model")
	}
	sameTrace(t, "witness", cfound.Trace, rfound.Trace)

	// Exact clock supremum.
	csup, err := c.SupClock(sx.ID, atBusy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsup, err := c.SupClock(sx.ID, atBusy, ref())
	if err != nil {
		t.Fatal(err)
	}
	if csup.Max != rsup.Max || csup.Seen != rsup.Seen || csup.Unbounded != rsup.Unbounded {
		t.Errorf("sup diverges: compact (%v,%v,%v), reference (%v,%v,%v)",
			csup.Max, csup.Seen, csup.Unbounded, rsup.Max, rsup.Seen, rsup.Unbounded)
	}
}
