package core

import "sync/atomic"

// wsDeque is a Chase–Lev work-stealing deque of symbolic states. The owning
// worker pushes and pops at the bottom (LIFO, cache-friendly depth-first
// expansion); idle workers steal from the top (FIFO, coarse-grained units
// near the root of the search tree). The implementation follows Chase &
// Lev, "Dynamic Circular Work-Stealing Deque" (SPAA 2005); Go's atomic
// operations are sequentially consistent, so the weak-memory fences of the
// original are implicit.
//
// push and pop must only be called by the owner goroutine; steal may be
// called by any goroutine.
type wsDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[wsRing]
}

// wsRing is a fixed-size power-of-two circular buffer. Slots are atomic
// pointers so a concurrent steal never races with the owner growing the
// ring.
type wsRing struct {
	mask int64
	slot []atomic.Pointer[State]
}

func newWSRing(capacity int64) *wsRing {
	return &wsRing{mask: capacity - 1, slot: make([]atomic.Pointer[State], capacity)}
}

func (r *wsRing) get(i int64) *State    { return r.slot[i&r.mask].Load() }
func (r *wsRing) put(i int64, s *State) { r.slot[i&r.mask].Store(s) }
func (r *wsRing) grow(top, bottom int64) *wsRing {
	n := newWSRing((r.mask + 1) * 2)
	for i := top; i < bottom; i++ {
		n.put(i, r.get(i))
	}
	return n
}

// newWSDeque returns a deque whose ring starts at the given capacity, which
// must be a power of two (Options.dequeCapacity guarantees it); the ring
// doubles on overflow.
func newWSDeque(capacity int64) *wsDeque {
	d := &wsDeque{}
	d.ring.Store(newWSRing(capacity))
	return d
}

// push appends s at the bottom. Owner only.
func (d *wsDeque) push(s *State) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.put(b, s)
	d.bottom.Store(b + 1)
}

// pop removes and returns the most recently pushed state, or nil when the
// deque is empty. Owner only.
func (d *wsDeque) pop() *State {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty shape.
		d.bottom.Store(t)
		return nil
	}
	s := r.get(b)
	if t == b {
		// Last element: race with thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			s = nil // a thief got it
		}
		d.bottom.Store(t + 1)
	}
	return s
}

// steal removes and returns the oldest state, or nil when the deque is
// empty or the steal lost a race (callers just move on to another victim).
func (d *wsDeque) steal() *State {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.ring.Load()
	s := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return s
}
