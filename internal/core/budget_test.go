package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dbm"
)

// TestStateBudgetMidSweep arms a hard state budget against the hopeless
// graph and requires ErrStateBudget with partial stats, on both frontiers.
func TestStateBudgetMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := buildHuge(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Explore(Options{Workers: workers, StateBudget: 5000}, nil)
		if !errors.Is(err, ErrStateBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrStateBudget", workers, err)
		}
		// Partial stats: the budget trips at admission, so the count sits at
		// the cap give or take the per-worker batches in flight.
		if res.Stored < 5000 {
			t.Errorf("workers=%d: stored %d, want >= 5000", workers, res.Stored)
		}
		if res.Popped == 0 {
			t.Errorf("workers=%d: partial stats missing popped count", workers)
		}
		if res.Truncated {
			t.Errorf("workers=%d: hard budget must not report soft truncation", workers)
		}
	}
}

// TestMemoryBudgetMidSweep bounds the hopeless sweep by zone bytes and
// requires a prompt ErrMemoryBudget with partial stats, on both frontiers.
func TestMemoryBudgetMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := buildHuge(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := c.Explore(Options{Workers: workers, MaxBytes: 1 << 20}, nil)
		if !errors.Is(err, ErrMemoryBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrMemoryBudget", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("workers=%d: budget abort took %v, not prompt", workers, elapsed)
		}
		if res.Stored == 0 || res.Popped == 0 {
			t.Errorf("workers=%d: expected partial stats, got %+v", workers, res.Stats)
		}
	}
}

// TestMaxStatesStaysSoft pins the budget/truncation split: MaxStates alone
// keeps its historical soft semantics — Truncated set, no error — which the
// icrns structured-testing fallback and BinarySearchWCRT rely on.
func TestMaxStatesStaysSoft(t *testing.T) {
	n := buildHuge(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Explore(Options{MaxStates: 2000}, nil)
	if err != nil {
		t.Fatalf("MaxStates must truncate, not fail: %v", err)
	}
	if !res.Truncated {
		t.Error("MaxStates run did not report truncation")
	}
}

// TestBudgetLeavesEngineReusable is the budget twin of
// TestCancelLeavesEngineReusable: after a budget-failed sweep the same
// checker must produce a full sweep bit-identical to a fresh checker's, for
// both budget kinds.
func TestBudgetLeavesEngineReusable(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	budgets := []Options{
		{StateBudget: 20},
		{MaxBytes: 20 * dbm.ZoneBytes(n.NumClocks())},
	}
	for _, bopts := range budgets {
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Explore(bopts, nil)
		if !errors.Is(err, ErrStateBudget) && !errors.Is(err, ErrMemoryBudget) {
			t.Fatalf("budget %+v: err = %v, want a budget error", bopts, err)
		}

		after, err := c.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if after.Stored != want.Stored || after.Transitions != want.Transitions ||
			after.Popped != want.Popped || after.Deadlocks != want.Deadlocks {
			t.Errorf("budget %+v: post-budget sweep %+v differs from fresh checker %+v",
				bopts, after.Stats, want.Stats)
		}
	}
}

// TestBudgetedQueriesStayReusable mirrors TestAbortBeforeStart's concern for
// budgets: a query attached to a budget-failed run is consumed (it ran), but
// the checker itself keeps answering fresh queries exactly.
func TestBudgetedQueriesStayReusable(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSupClockQuery(sx.ID, func(s *State) bool { return s.Locs[3] == busy })
	if _, err := c.RunQueries(Options{StateBudget: 10}, q); !errors.Is(err, ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
	q2 := NewSupClockQuery(sx.ID, func(s *State) bool { return s.Locs[3] == busy })
	if _, err := c.RunQueries(Options{}, q2); err != nil {
		t.Fatalf("checker unusable after budget failure: %v", err)
	}
	if !q2.Result.Seen {
		t.Error("post-budget query did not run")
	}
}

// TestWorkerPanicContained crashes the sweep from a visitor predicate — the
// same goroutine a corrupt engine state would crash — and requires the run to
// fail with a *PanicError instead of killing the process, on both frontiers.
// The same checker must then produce a full sweep bit-identical to a fresh
// checker's: the panicked worker abandoned its pools, nothing corrupt was
// recycled.
func TestWorkerPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, _, _, _ := buildGrid(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Explore(Options{Workers: workers}, func(s *State) bool {
			panic("visitor crash for containment test")
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "visitor crash for containment test" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error lost its payload: %+v", workers, pe)
		}

		after, err := c.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if after.Stored != want.Stored || after.Transitions != want.Transitions {
			t.Errorf("workers=%d: post-panic sweep %+v differs from fresh checker %+v",
				workers, after.Stats, want.Stats)
		}
	}
}

// TestPanicMidSweepReportsPartialStats panics deep into the hopeless graph's
// sweep and requires the partial effort to survive into the returned Stats.
func TestPanicMidSweepReportsPartialStats(t *testing.T) {
	n := buildHuge(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	res, err := c.Explore(Options{}, func(*State) bool {
		admitted++
		if admitted == 500 {
			panic("late crash")
		}
		return false
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if res.Stored < 500 || res.Popped == 0 {
		t.Errorf("partial stats lost: %+v", res.Stats)
	}
}
