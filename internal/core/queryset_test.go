package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// This file is the batch-vs-sequential oracle of the query-set engine: a
// query set attached to ONE sweep must produce exactly the answers the
// dedicated one-query-per-exploration methods produce, sequentially and on
// the work-stealing frontier (run under -race by CI).

// TestQuerySetMatchesDedicatedMethods attaches one query of every kind to a
// single RunQueries sweep and compares each answer against its dedicated
// method run in isolation.
func TestQuerySetMatchesDedicatedMethods(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	y, err := FindClock(n, "y")
	if err != nil {
		t.Fatal(err)
	}
	atBusy := func(s *State) bool { return s.Locs[3] == busy }
	var rec ta.VarID // the grid's single variable

	// Oracles: one exploration each, the historical shape.
	oReach, oTrace, _, err := c.Reachable(atBusy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oSup, err := c.SupClock(sx.ID, atBusy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oSupY, err := c.SupClock(y.ID, atBusy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oMax, err := c.MaxVar(rec, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oDead, err := c.CheckDeadlockFree(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !oSupY.Unbounded {
		t.Fatal("grid's y clock must be beyond the horizon (the early-completion case)")
	}

	for _, workers := range []int{1, 4} {
		reach := NewReachQuery(atBusy)
		sup := NewSupClockQuery(sx.ID, atBusy)
		supY := NewSupClockQuery(y.ID, atBusy) // completes early (unbounded)
		maxv := NewMaxVarQuery(rec, nil)
		dead := NewDeadlockQuery()
		stats, err := c.RunQueries(Options{Workers: workers}, reach, sup, supY, maxv, dead)
		if err != nil {
			t.Fatal(err)
		}

		if reach.Found != oReach {
			t.Errorf("workers %d: batch reach = %v, oracle %v", workers, reach.Found, oReach)
		}
		if len(reach.Trace) == 0 || len(oTrace) == 0 {
			t.Fatalf("workers %d: reach query must carry a trace", workers)
		}
		assertTraceValid(t, c, reach.Trace)
		if !atBusy(reach.Trace[len(reach.Trace)-1].State) {
			t.Errorf("workers %d: batch reach trace does not end in the target", workers)
		}
		if reach.FoundState == nil || !atBusy(reach.FoundState) {
			t.Errorf("workers %d: batch reach FoundState must satisfy the predicate", workers)
		}

		if sup.Result.Max != oSup.Max || sup.Result.Seen != oSup.Seen || sup.Result.Unbounded != oSup.Unbounded {
			t.Errorf("workers %d: batch sup %v/%v/%v != oracle %v/%v/%v", workers,
				sup.Result.Max, sup.Result.Seen, sup.Result.Unbounded,
				oSup.Max, oSup.Seen, oSup.Unbounded)
		}
		if !supY.Result.Unbounded || !supY.Result.Seen {
			t.Errorf("workers %d: batch sup(y) must be unbounded like the oracle", workers)
		}
		if len(supY.Result.Witness) == 0 {
			t.Fatalf("workers %d: unbounded sup must carry a witness even when the sweep continues", workers)
		}
		assertTraceValid(t, c, supY.Result.Witness)
		last := supY.Result.Witness[len(supY.Result.Witness)-1].State
		if !atBusy(last) || last.Zone.Sup(int(y.ID)) != dbm.Infinity {
			t.Errorf("workers %d: sup witness does not end in an unbounded target state", workers)
		}

		if maxv.Result.Max != oMax.Max || maxv.Result.Min != oMax.Min || maxv.Result.Seen != oMax.Seen {
			t.Errorf("workers %d: batch maxvar (%d,%d,%v) != oracle (%d,%d,%v)", workers,
				maxv.Result.Max, maxv.Result.Min, maxv.Result.Seen, oMax.Max, oMax.Min, oMax.Seen)
		}

		if dead.Result.Free != oDead.Free {
			t.Errorf("workers %d: batch deadlock-free = %v, oracle %v", workers, dead.Result.Free, oDead.Free)
		}

		// One sweep: every query's embedded Stats are the shared run's.
		for i, got := range []Stats{reach.Stats, sup.Result.Stats, supY.Result.Stats,
			maxv.Result.Stats, dead.Result.Stats} {
			if got != stats {
				t.Errorf("workers %d: query %d carries stats %+v, want the shared %+v", workers, i, got, stats)
			}
		}
		// The MaxVar query pins the sweep to the full reachable graph, so
		// the one shared sweep must have explored at least as much as the
		// full-sweep oracle (racy double-admission may add a few).
		if stats.Stored < oMax.Stored {
			t.Errorf("workers %d: shared sweep stored %d < full graph %d", workers, stats.Stored, oMax.Stored)
		}
	}
}

// TestQuerySetShortCircuits asserts the live-count short-circuit: a set
// whose queries all complete early must stop the sweep well before the full
// zone graph is explored.
func TestQuerySetShortCircuits(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	atBusy := func(s *State) bool { return s.Locs[3] == busy }
	anyRec := func(s *State) bool { return s.Vars[0] > 0 }
	q1, q2 := NewReachQuery(atBusy), NewReachQuery(anyRec)
	stats, err := c.RunQueries(Options{}, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Found || !q2.Found {
		t.Fatal("both targets are reachable")
	}
	if stats.Stored >= full.Stored {
		t.Errorf("fully-completed query set explored %d states, full graph is %d — no short-circuit",
			stats.Stored, full.Stored)
	}
}

// TestQuerySetPartialCompletionKeepsSweepAlive pins the other half of the
// contract: one completed query must NOT stop a sweep that other queries
// still need — the reach query completes almost immediately, the max-var
// query still sees the whole graph.
func TestQuerySetPartialCompletionKeepsSweepAlive(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	oMax, err := c.MaxVar(0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach := NewReachQuery(func(s *State) bool { return s.Locs[3] == busy })
	maxv := NewMaxVarQuery(0, nil)
	stats, err := c.RunQueries(Options{}, reach, maxv)
	if err != nil {
		t.Fatal(err)
	}
	if !reach.Found {
		t.Fatal("busy must be reachable")
	}
	if maxv.Result.Max != oMax.Max || maxv.Result.Min != oMax.Min {
		t.Errorf("max-var over the shared sweep (%d,%d) != full-graph oracle (%d,%d)",
			maxv.Result.Max, maxv.Result.Min, oMax.Max, oMax.Min)
	}
	if stats.Stored < oMax.Stored {
		t.Errorf("sweep stopped early at %d states although a query needed all %d", stats.Stored, oMax.Stored)
	}
}

// TestQueriesAreSingleUse asserts the reuse guard.
func TestQueriesAreSingleUse(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	q := NewReachQuery(func(s *State) bool { return s.Locs[3] == busy })
	if _, err := c.RunQueries(Options{}, q); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunQueries(Options{}, q); err == nil {
		t.Error("reusing a query must fail")
	}
	if _, err := c.RunQueries(Options{}, nil); err == nil {
		t.Error("a nil query must fail")
	}
}

// TestBinarySearchWCRTSingleSweep asserts the rebuilt Property 1 procedure:
// one exploration total (no re-exploration per bisection threshold), with
// the minimal C implied by the supremum it would previously re-verify.
func TestBinarySearchWCRTSingleSweep(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	cond := func(s *State) bool { return s.Locs[3] == busy }
	sup, err := c.SupClock(sx.ID, cond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := c.BinarySearchWCRT(sx.ID, cond, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Iterations != 1 {
		t.Errorf("binary search ran %d explorations, want exactly 1", bs.Iterations)
	}
	if bs.TotalStats.Stored != sup.Stored || bs.TotalStats.Popped != sup.Popped {
		t.Errorf("binary search effort %+v != one supremum sweep %+v", bs.TotalStats, sup.Stats)
	}
	// sup is (≤ 2): AG(cond → sx < C) first holds at C = 3.
	if !bs.Holds || bs.MinimalC != sup.Max.Value()+1 {
		t.Errorf("MinimalC = %d (holds=%v), want %d", bs.MinimalC, bs.Holds, sup.Max.Value()+1)
	}
	// The interval refutation case: hi at the supremum itself must fail.
	bs2, err := c.BinarySearchWCRT(sx.ID, cond, 0, sup.Max.Value(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bs2.Holds {
		t.Errorf("AG(cond → sx < %d) cannot hold when the supremum attains %d", sup.Max.Value(), sup.Max.Value())
	}
}

// TestBinarySearchWCRTTruncatedRefutes pins the budgeted behavior of the
// single-sweep rebuild: a truncated sweep whose partial supremum already
// reaches hi refutes definitively (the per-threshold procedure would have
// stopped at that same counterexample), while an inconclusive truncation
// stays an error.
func TestBinarySearchWCRTTruncatedRefutes(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	cond := func(s *State) bool { return s.Locs[3] == busy }
	// The first busy state appears within a handful of admissions and
	// attains sx = 2, so AG(cond → sx < 1) is refuted within the budget.
	bs, err := c.BinarySearchWCRT(sx.ID, cond, 0, 1, Options{MaxStates: 200})
	if err != nil {
		t.Fatalf("refutation within budget must not error: %v", err)
	}
	if bs.Holds {
		t.Error("AG(cond → sx < 1) must be refuted")
	}
	// A hi the partial supremum cannot reach stays inconclusive.
	if _, err := c.BinarySearchWCRT(sx.ID, cond, 0, 100, Options{MaxStates: 200}); err == nil {
		t.Error("inconclusive truncated search must error")
	}
}

// TestStoreShardsAndDequeCapacityOptions pins the new tuning knobs: odd
// values round up to powers of two and any setting leaves every verdict
// unchanged.
func TestStoreShardsAndDequeCapacityOptions(t *testing.T) {
	if got := (Options{StoreShards: 5}).storeShardCount(); got != 8 {
		t.Errorf("StoreShards 5 resolves to %d, want 8", got)
	}
	if got := (Options{}).storeShardCount(); got != 64 {
		t.Errorf("default shard count = %d, want 64", got)
	}
	if got := (Options{DequeCapacity: 3}).dequeCapacity(); got != 4 {
		t.Errorf("DequeCapacity 3 resolves to %d, want 4", got)
	}
	if got := (Options{}).dequeCapacity(); got != 64 {
		t.Errorf("default deque capacity = %d, want 64", got)
	}

	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	cond := func(s *State) bool { return s.Locs[3] == busy }
	want, err := c.SupClock(sx.ID, cond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Workers: 4, StoreShards: 1, DequeCapacity: 1},
		{Workers: 4, StoreShards: 256, DequeCapacity: 1024},
		{Workers: 4, StoreShards: 7, DequeCapacity: 9},
	} {
		got, err := c.SupClock(sx.ID, cond, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Max != want.Max || got.Seen != want.Seen || got.Unbounded != want.Unbounded {
			t.Errorf("opts %+v: sup %v != default %v", opts, got.Max, want.Max)
		}
	}
}
