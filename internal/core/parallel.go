package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// pstore is a concurrent passed-state store: the bucket space is sharded and
// each shard carries its own lock, so workers exploring disjoint regions of
// the zone graph rarely contend. Zone ownership follows the same protocol as
// the sequential store (see store.go): stored zones are pool-backed copies
// owned exclusively by the pstore, so pruned zones can be recycled into the
// calling worker's pool even while the pruned state is still queued in some
// deque.
type pstore struct {
	shards [64]struct {
		mu      sync.Mutex
		buckets map[uint64][]*storeEntry
		_       [48]byte // pad to its own cache line against false sharing
	}
	zones atomic.Int64
}

func newPStore() *pstore {
	st := &pstore{}
	for i := range st.shards {
		st.shards[i].buckets = make(map[uint64][]*storeEntry)
	}
	return st
}

// Add inserts the state unless it is subsumed, reporting whether it is new.
// The subsumption logic mirrors store.Add under the shard lock. pool is the
// calling worker's pool: the stored copy is drawn from it and pruned zones
// are released into it (pools are single-owner, so this is safe even though
// the shard lock is shared).
func (st *pstore) Add(s *State, pool *dbm.Pool) bool {
	sh := &st.shards[s.discreteKey()%64]
	sh.mu.Lock()
	delta, admitted := lookupEntry(sh.buckets, s).admit(s, pool)
	sh.mu.Unlock()
	if delta != 0 {
		st.zones.Add(int64(delta))
	}
	return admitted
}

// Len returns the number of stored maximal zones.
func (st *pstore) Len() int { return int(st.zones.Load()) }

// ExploreParallel performs the same symbolic reachability as Explore using
// work-stealing worker goroutines and a sharded passed store. Each worker
// owns a Chase–Lev deque (LIFO expansion, FIFO steals) plus its own
// successor scratch state and DBM pool, so the only shared mutable
// structures are the sharded pstore, the deques, and a handful of atomic
// counters. It trades the sequential explorer's trace reconstruction for
// throughput: the result carries statistics and the stop state, but no
// trace.
//
// The visitor must be safe for concurrent use and must not retain the
// state (or its zone) beyond the call: zones of expanded states are
// recycled. The state the search stops at (FoundState) is exempt and
// remains valid.
//
// Subsumption remains sound under concurrency: a state admitted by two
// workers simultaneously is expanded at most twice (harmless), never lost.
func (c *Checker) ExploreParallel(opts Options, workers int, visit func(*State) bool) (ExploreResult, error) {
	start := time.Now()
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	var res ExploreResult
	init, err := c.eng.initial()
	if err != nil {
		return res, err
	}
	passed := newPStore()
	initPool := dbm.NewPool(c.eng.dim)
	passed.Add(init, initPool)

	if visit != nil && visit(init) {
		res.Found = true
		res.FoundState = init
		res.Stored = 1
		res.Duration = time.Since(start)
		return res, nil
	}

	var (
		// pending counts states that are admitted but not yet fully
		// expanded (queued in some deque or currently being expanded).
		// It is incremented before a state becomes stealable and
		// decremented only after all of its successors have been pushed,
		// so pending == 0 is a sound termination barrier: no work exists
		// and none can appear.
		pending atomic.Int64
		done    atomic.Bool

		stored      atomic.Int64
		popped      atomic.Int64
		transitions atomic.Int64
		deadlocks   atomic.Int64
		truncated   atomic.Bool
		foundState  atomic.Pointer[State]
		firstErr    atomic.Pointer[error]
	)
	stored.Store(1)

	deques := make([]*wsDeque, workers)
	for i := range deques {
		deques[i] = newWSDeque()
	}
	pending.Store(1)
	deques[0].push(init)

	worker := func(id int) {
		ctx := c.eng.newCtx()
		ctx.keepLabels = false // labels are dropped; skip their retention
		me := deques[id]
		rng := rand.New(rand.NewSource(opts.Seed ^ (int64(id+1) * 0x9E3779B9)))
		var succs []succ
		var nPopped, nTransitions, nDeadlocks int64
		defer func() {
			popped.Add(nPopped)
			transitions.Add(nTransitions)
			deadlocks.Add(nDeadlocks)
		}()
		idleSpins := 0
		for {
			if done.Load() {
				return
			}
			s := me.pop()
			for attempt := 0; s == nil && attempt < 2*workers; attempt++ {
				if v := deques[rng.Intn(workers)]; v != me {
					s = v.steal()
				}
			}
			if s == nil {
				if pending.Load() == 0 {
					return
				}
				// Someone still holds work: back off without a lock so the
				// next push is picked up by stealing.
				idleSpins++
				if idleSpins < 8 {
					runtime.Gosched()
				} else {
					time.Sleep(time.Duration(min(idleSpins, 100)) * time.Microsecond)
				}
				continue
			}
			idleSpins = 0
			nPopped++
			var err error
			succs, err = c.eng.successors(ctx, s, succs[:0])
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				done.Store(true)
				return
			}
			if len(succs) == 0 {
				nDeadlocks++
			}
			for _, sc := range succs {
				nTransitions++
				if !passed.Add(sc.state, ctx.pool) {
					ctx.putState(sc.state)
					continue
				}
				n := stored.Add(1)
				if visit != nil && visit(sc.state) {
					foundState.CompareAndSwap(nil, sc.state)
					done.Store(true)
					return
				}
				if opts.MaxStates > 0 && n >= int64(opts.MaxStates) {
					truncated.Store(true)
					done.Store(true)
					return
				}
				pending.Add(1)
				me.push(sc.state)
			}
			pending.Add(-1)
			// s is fully expanded; nothing references it anymore (the
			// pstore holds its own copies), so recycle it wholesale.
			ctx.putState(s)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer wg.Done()
			worker(id)
		}(i)
	}
	wg.Wait()

	res.Duration = time.Since(start)
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	res.Stored = int(stored.Load())
	res.Popped = int(popped.Load())
	res.Transitions = int(transitions.Load())
	res.Deadlocks = int(deadlocks.Load())
	res.Truncated = truncated.Load()
	if fs := foundState.Load(); fs != nil {
		res.Found = true
		res.FoundState = fs
	}
	return res, nil
}

// SupClockParallel computes the same supremum as SupClock with a parallel
// exploration; the witness trace is not reconstructed.
func (c *Checker) SupClockParallel(clock ta.ClockID, cond func(*State) bool,
	opts Options, workers int) (SupResult, error) {
	var mu sync.Mutex
	out := SupResult{Max: dbm.LT(0)}
	res, err := c.ExploreParallel(opts, workers, func(s *State) bool {
		if !cond(s) {
			return false
		}
		b := s.Zone.Sup(int(clock))
		mu.Lock()
		defer mu.Unlock()
		out.Seen = true
		if b == dbm.Infinity {
			out.Unbounded = true
			return true
		}
		if b > out.Max {
			out.Max = b
		}
		return false
	})
	if err != nil {
		return out, err
	}
	out.Stats = res.Stats
	return out, nil
}
