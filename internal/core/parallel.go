package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// pstore is a concurrent passed-state store: the bucket space is sharded and
// each shard carries its own lock, so workers exploring disjoint regions of
// the zone graph rarely contend.
type pstore struct {
	shards [64]struct {
		mu      sync.Mutex
		buckets map[uint64][]*storeEntry
	}
	zones atomic.Int64
}

func newPStore() *pstore {
	st := &pstore{}
	for i := range st.shards {
		st.shards[i].buckets = make(map[uint64][]*storeEntry)
	}
	return st
}

// Add inserts the state unless it is subsumed, reporting whether it is new.
// The subsumption logic mirrors store.Add under the shard lock.
func (st *pstore) Add(s *State) bool {
	h := discreteHash(s.Locs, s.Vars)
	sh := &st.shards[h%64]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bucket := sh.buckets[h]
	var entry *storeEntry
	for _, e := range bucket {
		if len(e.locs) == len(s.Locs) && len(e.vars) == len(s.Vars) &&
			discreteEqual(e.locs, s.Locs, e.vars, s.Vars) {
			entry = e
			break
		}
	}
	if entry == nil {
		entry = &storeEntry{locs: s.Locs, vars: s.Vars}
		sh.buckets[h] = append(sh.buckets[h], entry)
	}
	for _, z := range entry.zones {
		if s.Zone.SubsetEq(z) {
			return false
		}
	}
	keep := entry.zones[:0]
	for _, z := range entry.zones {
		if !z.SubsetEq(s.Zone) {
			keep = append(keep, z)
		} else {
			st.zones.Add(-1)
		}
	}
	entry.zones = append(keep, s.Zone)
	st.zones.Add(1)
	return true
}

// ExploreParallel performs the same symbolic reachability as Explore using
// several worker goroutines over a shared work list and a sharded passed
// store. It trades the sequential explorer's trace reconstruction for
// throughput: the result carries statistics and the stop state, but no
// trace. The visitor must be safe for concurrent use.
//
// Subsumption remains sound under concurrency: a state admitted by two
// workers simultaneously is expanded at most twice (harmless), never lost.
func (c *Checker) ExploreParallel(opts Options, workers int, visit func(*State) bool) (ExploreResult, error) {
	start := time.Now()
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	var res ExploreResult
	init, err := c.eng.initial()
	if err != nil {
		return res, err
	}
	passed := newPStore()
	passed.Add(init)

	var (
		mu       sync.Mutex
		cond     = sync.Cond{L: &mu}
		waiting  = []*State{init}
		inFlight = 0
		done     bool

		stored      atomic.Int64
		popped      atomic.Int64
		transitions atomic.Int64
		deadlocks   atomic.Int64
		truncated   atomic.Bool
		foundState  atomic.Pointer[State]
		firstErr    atomic.Pointer[error]
	)
	stored.Store(1)

	stop := func() {
		mu.Lock()
		done = true
		cond.Broadcast()
		mu.Unlock()
	}
	if visit != nil && visit(init) {
		foundState.Store(init)
		res.Found = true
		res.FoundState = init
		res.Stored = 1
		res.Duration = time.Since(start)
		return res, nil
	}

	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		var succs []succ
		for {
			mu.Lock()
			for len(waiting) == 0 && inFlight > 0 && !done {
				cond.Wait()
			}
			if done || (len(waiting) == 0 && inFlight == 0) {
				done = true
				cond.Broadcast()
				mu.Unlock()
				return
			}
			s := waiting[len(waiting)-1]
			waiting = waiting[:len(waiting)-1]
			inFlight++
			mu.Unlock()

			popped.Add(1)
			var err error
			succs, err = c.eng.successors(s, succs[:0])
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				stop()
				return
			}
			if len(succs) == 0 {
				deadlocks.Add(1)
			}
			var fresh []*State
			for _, sc := range succs {
				transitions.Add(1)
				if passed.Add(sc.state) {
					stored.Add(1)
					if visit != nil && visit(sc.state) {
						foundState.CompareAndSwap(nil, sc.state)
						stop()
						return
					}
					fresh = append(fresh, sc.state)
				}
			}
			if opts.MaxStates > 0 && stored.Load() >= int64(opts.MaxStates) {
				truncated.Store(true)
				stop()
				return
			}
			mu.Lock()
			waiting = append(waiting, fresh...)
			inFlight--
			if len(fresh) > 0 || (len(waiting) == 0 && inFlight == 0) {
				cond.Broadcast()
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()

	res.Duration = time.Since(start)
	if ep := firstErr.Load(); ep != nil {
		return res, *ep
	}
	res.Stored = int(stored.Load())
	res.Popped = int(popped.Load())
	res.Transitions = int(transitions.Load())
	res.Deadlocks = int(deadlocks.Load())
	res.Truncated = truncated.Load()
	if fs := foundState.Load(); fs != nil {
		res.Found = true
		res.FoundState = fs
	}
	return res, nil
}

// SupClockParallel computes the same supremum as SupClock with a parallel
// exploration; the witness trace is not reconstructed.
func (c *Checker) SupClockParallel(clock ta.ClockID, cond func(*State) bool,
	opts Options, workers int) (SupResult, error) {
	var mu sync.Mutex
	out := SupResult{Max: dbm.LT(0)}
	res, err := c.ExploreParallel(opts, workers, func(s *State) bool {
		if !cond(s) {
			return false
		}
		b := s.Zone.Sup(int(clock))
		mu.Lock()
		defer mu.Unlock()
		out.Seen = true
		if b == dbm.Infinity {
			out.Unbounded = true
			return true
		}
		if b > out.Max {
			out.Max = b
		}
		return false
	})
	if err != nil {
		return out, err
	}
	out.Stats = res.Stats
	return out, nil
}
