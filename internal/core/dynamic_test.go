package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// TestDynamicDeadlineExtension exercises the paper's Fig. 5 mechanism: a
// running task with invariant x ≤ D and completion guard x == D, where D is
// extended by another process mid-execution (modeling preemption delay).
func TestDynamicDeadlineExtension(t *testing.T) {
	n := ta.NewNetwork("dyn")
	x := n.AddClock("x")
	z := n.AddClock("z")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 100)
	d := n.AddVar("D", 5, 0, 20)

	p := n.AddProcess("P")
	run := p.AddLocation("run", ta.Normal, ta.CLEVar(x, d))
	done := p.AddLocation("done", ta.Committed)
	p.AddEdge(ta.Edge{Src: run, Dst: done, ClockGuard: ta.CEqVar(x, d)})

	q := n.AddProcess("Q")
	m0 := q.AddLocation("m0", ta.Normal, ta.CLE(z, 2))
	m1 := q.AddLocation("m1", ta.Normal)
	q.AddEdge(ta.Edge{Src: m0, Dst: m1, ClockGuard: ta.CEq(z, 2),
		Update: ta.Inc(d, 3)})

	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	// The dynamic invariant must have registered D's maximal range.
	if n.MaxConsts[x.ID] < 20 {
		t.Errorf("MaxConsts[x] = %d, want >= 20 from D's range", n.MaxConsts[x.ID])
	}

	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SupClock(y.ID, func(s *State) bool { return s.Locs[0] == done }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Q fires at time 2 (forced by its invariant), extending D from 5 to 8,
	// so P completes exactly at time 8 — never at the original 5.
	if res.Max != dbm.LE(8) {
		t.Errorf("sup y at done = %v, want <=8 (deadline extended)", res.Max)
	}
	lo, _, _, err := c.Reachable(func(s *State) bool {
		return s.Locs[0] == done && s.Zone.Sup(int(y.ID)) < dbm.LE(8)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lo {
		t.Error("completion before the extended deadline must be impossible")
	}
}

// TestDynamicGuardLowerBound checks the x ≥ D direction of dynamic bounds.
func TestDynamicGuardLowerBound(t *testing.T) {
	n := ta.NewNetwork("dynlo")
	x := n.AddClock("x")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 100)
	d := n.AddVar("D", 7, 0, 10)
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal)
	l1 := p.AddLocation("l1", ta.Committed)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: []ta.Constraint{ta.CGEVar(x, d)}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	early, _, _, err := c.Reachable(func(s *State) bool {
		return s.Locs[0] == l1 && s.Zone.Sup(int(y.ID)) < dbm.LE(7)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if early {
		t.Error("transition must not fire before x >= D = 7")
	}
}
