package core

import (
	"testing"

	"repro/internal/ta"
)

// TestExtraLUPreservesReachability shows the flip side: for pure location
// reachability LU agrees with M while (typically) storing fewer states.
func TestExtraLUPreservesReachability(t *testing.T) {
	n := ta.NewNetwork("reach")
	x := n.AddClock("x")
	g := n.AddClock("g")
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 10))
	l1 := p.AddLocation("l1", ta.Normal)
	// g only appears in a lower-bound guard: LU drops its upper rows.
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 10),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})
	p.AddEdge(ta.Edge{Src: l0, Dst: l1,
		ClockGuard: []ta.Constraint{ta.CGE(g, 25)}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, coarse := range []bool{false, true} {
		c, _ := NewChecker(n)
		c.SetCoarseExtrapolation(coarse)
		found, _, _, err := c.Reachable(func(s *State) bool { return s.Locs[0] == l1 }, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Errorf("coarse=%v: l1 must be reachable", coarse)
		}
	}
}
