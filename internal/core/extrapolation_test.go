package core

import (
	"testing"

	"repro/internal/ta"
)

// TestStoredZonesStayCanonical sweeps full zone graphs and asserts every
// stored zone is bit-identical to its own full Floyd–Warshall re-closure.
// This is a complete oracle for the incremental canonicalization the
// successor engine now uses (dbm.CloseRows after extrapolation,
// dbm.CloseTouched under batched guards): the incremental updates only ever
// lower entries toward path sums, so they can never undershoot the true
// shortest-path values — an inexact result is therefore always
// non-canonical, and canonical means bit-identical to the full closure. The
// hash-keyed passed stores rely on exactly this property.
func TestStoredZonesStayCanonical(t *testing.T) {
	nets := map[string]*ta.Network{
		"radio": testRadioNet(t),
		"diag":  testDiagNet(t),
	}
	for name, n := range nets {
		for _, coarse := range []bool{false, true} {
			c, err := NewChecker(n)
			if err != nil {
				t.Fatal(err)
			}
			c.SetCoarseExtrapolation(coarse)
			visited := 0
			_, _, _, err = c.Reachable(func(s *State) bool {
				visited++
				re := s.Zone.Copy()
				re.Close()
				if !s.Zone.Eq(re) {
					t.Errorf("%s coarse=%v: stored zone not canonical:\n got %s\nwant %s",
						name, coarse, s.Zone, re)
				}
				return false
			}, Options{MaxStates: 20_000})
			if err != nil {
				t.Fatal(err)
			}
			if visited == 0 {
				t.Fatalf("%s: sweep visited no states", name)
			}
		}
	}
}

// testRadioNet exercises urgency, broadcast sync, resets, and extrapolation
// drops (the generator clock runs far past the worker clock's max constant).
func testRadioNet(t *testing.T) *ta.Network {
	t.Helper()
	n := ta.NewNetwork("radio")
	x := n.AddClock("x")
	gx := n.AddClock("gx")
	rec := n.AddVar("rec", 0, 0, 4)
	hurry := n.AddChan("hurry", ta.BroadcastUrgent)
	gen := n.AddProcess("GEN")
	tick := gen.AddLocation("tick", ta.Normal, ta.CLE(gx, 7))
	gen.AddEdge(ta.Edge{Src: tick, Dst: tick, ClockGuard: ta.CEq(gx, 7),
		Guard:  ta.VarCmp(rec, ta.Lt, 4),
		Update: ta.Inc(rec, 1),
		Resets: []ta.Reset{{Clock: gx.ID, Value: 0}}})
	rad := n.AddProcess("RAD")
	idle := rad.AddLocation("idle", ta.Normal)
	busy := rad.AddLocation("busy", ta.Normal, ta.CLE(x, 3))
	rad.AddEdge(ta.Edge{Src: idle, Dst: busy, Guard: ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Update: ta.Inc(rec, -1),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})
	rad.AddEdge(ta.Edge{Src: busy, Dst: idle, ClockGuard: ta.CEq(x, 3)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n
}

// testDiagNet keeps three clocks correlated through diagonal constraints so
// extrapolation drops bounds that closure re-derives through untouched
// clocks — the case CloseRows' all-pivot structure exists for.
func testDiagNet(t *testing.T) *ta.Network {
	t.Helper()
	n := ta.NewNetwork("diag")
	x := n.AddClock("x")
	y := n.AddClock("y")
	z := n.AddClock("z")
	p := n.AddProcess("P")
	a := p.AddLocation("a", ta.Normal, ta.CLE(x, 12))
	b := p.AddLocation("b", ta.Normal, ta.CLE(y, 9))
	p.AddEdge(ta.Edge{Src: a, Dst: b, ClockGuard: []ta.Constraint{ta.CGE(x, 2), ta.DiffLE(x, y, 4)},
		Resets: []ta.Reset{{Clock: z.ID, Value: 0}}})
	p.AddEdge(ta.Edge{Src: b, Dst: a, ClockGuard: ta.CEq(y, 9),
		Resets: []ta.Reset{{Clock: y.ID, Value: 0}}})
	q := n.AddProcess("Q")
	w := n.AddClock("w")
	c := q.AddLocation("c", ta.Normal, ta.CLE(w, 30))
	q.AddEdge(ta.Edge{Src: c, Dst: c, ClockGuard: ta.CEq(w, 30),
		Resets: []ta.Reset{{Clock: w.ID, Value: 0}}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestExtraLUPreservesReachability shows the flip side: for pure location
// reachability LU agrees with M while (typically) storing fewer states.
func TestExtraLUPreservesReachability(t *testing.T) {
	n := ta.NewNetwork("reach")
	x := n.AddClock("x")
	g := n.AddClock("g")
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 10))
	l1 := p.AddLocation("l1", ta.Normal)
	// g only appears in a lower-bound guard: LU drops its upper rows.
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 10),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})
	p.AddEdge(ta.Edge{Src: l0, Dst: l1,
		ClockGuard: []ta.Constraint{ta.CGE(g, 25)}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, coarse := range []bool{false, true} {
		c, _ := NewChecker(n)
		c.SetCoarseExtrapolation(coarse)
		found, _, _, err := c.Reachable(func(s *State) bool { return s.Locs[0] == l1 }, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Errorf("coarse=%v: l1 must be reachable", coarse)
		}
	}
}
