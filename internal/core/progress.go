package core

import "sync/atomic"

// This file is the live-progress view of the unified explorer: a Monitor
// attached through Options.Monitor lets another goroutine sample a running
// exploration (states stored, expansion counters, frontier backlog) without
// perturbing it. The mechanism follows the per-worker ownership style of the
// rest of the engine: every worker publishes its loop-local counters into its
// own cache-line-padded cell with plain atomic stores (single writer, never a
// read-modify-write, never contended), and Snapshot sums the cells. Once the
// run finishes, Snapshot switches to the explorer's exact flushed totals, so
// a final sample equals the run's Stats.

// Progress is a point-in-time view of one exploration.
type Progress struct {
	// Stored counts unique (non-subsumed) symbolic states admitted so far.
	Stored int64
	// Popped counts states taken from the frontier and expanded so far.
	Popped int64
	// Transitions counts generated successors so far, subsumed ones included.
	Transitions int64
	// Deadlocks counts expanded states with no action successor so far.
	Deadlocks int64
	// Frontier is the current backlog: states admitted but not yet fully
	// expanded. Zero once the run is over.
	Frontier int64
	// StoredBytes is the passed store's actual footprint: packed zone
	// buffers plus interned discrete vectors (see store.go).
	StoredBytes int64
	// InternHits and InternMisses count discrete-vector intern-table
	// lookups that found (resp. created) a shared vector; the hit rate
	// hits/(hits+misses) measures how much discrete-state memory the
	// interning collapsed.
	InternHits   int64
	InternMisses int64
	// Workers is the worker count of the observed run.
	Workers int
	// Running reports whether the observed exploration is still going. While
	// true, the counters are a relaxed (slightly stale, never torn) view;
	// once false they are the run's exact totals.
	Running bool
}

// monCell is one worker's published counters, padded so neighboring workers'
// stores never share a cache line.
type monCell struct {
	popped      atomic.Int64
	transitions atomic.Int64
	deadlocks   atomic.Int64
	_           [40]byte
}

// publish stores the worker's loop locals; single writer per cell.
func (c *monCell) publish(popped, transitions, deadlocks int64) {
	c.popped.Store(popped)
	c.transitions.Store(transitions)
	c.deadlocks.Store(deadlocks)
}

// monView binds a Monitor to one exploration run. The explorer pointer is
// dropped at completion so a long-retained Monitor (a finished service job
// in a result cache) pins only the final totals — never the run's passed
// store, parent logs, or zones.
type monView struct {
	e     atomic.Pointer[explorer]
	cells []monCell
	// prof is the run's profile sampling state; nil unless the Monitor has
	// profiling enabled (EnableProfile), so a plain monitored run allocates
	// nothing for it.
	prof *profRun
	// final holds the exact flushed totals once the run is over; stored
	// strictly before e is cleared, so a Snapshot that finds e nil re-reads
	// final and always gets it.
	final atomic.Pointer[Progress]
}

// setDone freezes the run's exact totals and releases the explorer.
func (v *monView) setDone() {
	e := v.e.Load()
	if e == nil {
		return
	}
	p := Progress{
		Workers:     len(v.cells),
		Stored:      e.stored.Load(),
		Popped:      e.popped.Load(),
		Transitions: e.transitions.Load(),
		Deadlocks:   e.deadlocks.Load(),
	}
	if e.passed != nil {
		p.StoredBytes = e.passed.bytes()
		p.InternHits, p.InternMisses = e.passed.internStats()
	}
	if v.prof != nil {
		// The worker barrier has passed: the sample rings are quiescent, so
		// the run's series freezes into the recorder before the explorer is
		// released.
		v.prof.finalize(e, p)
	}
	v.final.Store(&p)
	v.e.Store(nil)
}

// Monitor publishes live progress of an exploration run. The zero value is
// ready to use: pass it via Options.Monitor and call Snapshot from any
// goroutine while (or after) the run executes. A Monitor observes one
// exploration at a time — attaching it to a second run replaces the view of
// the first; Snapshot then reports the latest run.
type Monitor struct {
	v atomic.Pointer[monView]
	// prof, when set (EnableProfile), upgrades every attached run to
	// profiled mode: phase spans plus sampled per-worker series (profile.go).
	prof atomic.Pointer[profRecorder]
}

// attach binds the monitor to a starting run. Called by explore strictly
// after the explorer's frontier is in place, so the atomic store here orders
// every explorer field Snapshot reads.
func (m *Monitor) attach(e *explorer, workers int) *monView {
	v := &monView{cells: make([]monCell, workers)}
	if r := m.prof.Load(); r != nil {
		v.prof = r.newRun(workers)
	}
	v.e.Store(e)
	m.v.Store(v)
	return v
}

// Snapshot samples the observed run. Before any run is attached it returns
// the zero Progress; during a run, a relaxed lock-free view; after it, the
// exact totals (equal to the run's Stats counters).
func (m *Monitor) Snapshot() Progress {
	v := m.v.Load()
	if v == nil {
		return Progress{}
	}
	if f := v.final.Load(); f != nil {
		return *f
	}
	e := v.e.Load()
	if e == nil {
		// Completion raced the loads above: final was stored before e was
		// cleared, so it is visible now.
		if f := v.final.Load(); f != nil {
			return *f
		}
		return Progress{}
	}
	p := Progress{Workers: len(v.cells), Stored: e.stored.Load(), Running: true}
	if e.passed != nil {
		p.StoredBytes = e.passed.bytes()
		p.InternHits, p.InternMisses = e.passed.internStats()
	}
	for i := range v.cells {
		c := &v.cells[i]
		p.Popped += c.popped.Load()
		p.Transitions += c.transitions.Load()
		p.Deadlocks += c.deadlocks.Load()
	}
	if f := e.front; f != nil {
		p.Frontier = f.depth()
	}
	return p
}
