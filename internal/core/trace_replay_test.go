package core

import (
	"reflect"
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// This file is the trace-replay oracle: every counterexample or witness a
// query returns — from the sequential and the parallel engine alike — is
// re-fired through the successor engine, asserting that each step is an
// enabled transition of its predecessor and that the path ends in the state
// the query stopped on. Run together with the rest of the core package
// under -race (CI does), these tests exercise the parent-log stitching
// across concurrently written worker logs.

func sameLabel(a, b Label) bool {
	if a.Kind != b.Kind || a.Chan != b.Chan || len(a.Parts) != len(b.Parts) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	return true
}

func sameState(a, b *State) bool {
	if len(a.Locs) != len(b.Locs) || len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Locs {
		if a.Locs[i] != b.Locs[i] {
			return false
		}
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	return a.Zone.Eq(b.Zone)
}

// assertTraceValid re-fires the trace through the successor engine: step 0
// must equal the initial symbolic state, and every later step must be one of
// the enabled successors of its predecessor with the recorded label and the
// exact same symbolic state (discrete part and zone).
func assertTraceValid(t *testing.T, c *Checker, trace []TraceStep) {
	t.Helper()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	init, err := c.eng.initial()
	if err != nil {
		t.Fatal(err)
	}
	if !sameState(trace[0].State, init) {
		t.Fatalf("trace step 0 is not the initial state: %s", trace[0].State.Format(c.net))
	}
	ctx := c.eng.newCtx()
	cur := init
	for i, step := range trace[1:] {
		succs, err := c.eng.successors(ctx, cur, nil)
		if err != nil {
			t.Fatal(err)
		}
		var match *State
		for _, sc := range succs {
			if sameLabel(sc.label, step.Label) && sameState(sc.state, step.State) {
				match = sc.state
				break
			}
		}
		if match == nil {
			t.Fatalf("trace step %d (%s -> %s) is not an enabled successor",
				i+1, step.Label.Format(c.net), step.State.Format(c.net))
		}
		cur = match
	}
}

// assertDeadlocked verifies the trace's final state has no action successor.
func assertDeadlocked(t *testing.T, c *Checker, trace []TraceStep) {
	t.Helper()
	last := trace[len(trace)-1].State
	succs, err := c.eng.successors(c.eng.newCtx(), last, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(succs) != 0 {
		t.Errorf("deadlock witness ends in a state with %d successors", len(succs))
	}
}

// TestSafetyCounterexampleReplaysBothEngines runs the same violated safety
// property sequentially and with 4 workers: both verdicts must agree and
// both counterexamples must replay (trace validity, not trace equality —
// the parallel path may find a different violating run).
func TestSafetyCounterexampleReplaysBothEngines(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	prop := Property{
		Desc:  "rec stays below 2",
		Holds: func(s *State) bool { return s.Vars[0] < 2 },
	}
	verdicts := map[string]bool{}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{}},
		{"parallel", Options{Workers: 4}},
	} {
		sr, err := c.CheckSafety(prop, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		verdicts[tc.name] = sr.Holds
		if sr.Holds {
			continue
		}
		if len(sr.Counterexample) == 0 {
			t.Fatalf("%s: violated property must carry a counterexample", tc.name)
		}
		assertTraceValid(t, c, sr.Counterexample)
		last := sr.Counterexample[len(sr.Counterexample)-1].State
		if prop.Holds(last) {
			t.Errorf("%s: counterexample does not end in a violating state", tc.name)
		}
	}
	if verdicts["sequential"] != verdicts["parallel"] {
		t.Errorf("verdicts disagree: sequential=%v parallel=%v",
			verdicts["sequential"], verdicts["parallel"])
	}
	if verdicts["sequential"] {
		t.Error("rec reaches 2 in the grid; property must be violated")
	}
}

// TestReachableWitnessReplaysBothEngines compares Reachable across both
// engines and replays both witnesses.
func TestReachableWitnessReplaysBothEngines(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	atBusy := func(s *State) bool { return s.Locs[3] == busy }
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{}},
		{"parallel", Options{Workers: 4}},
	} {
		found, trace, _, err := c.Reachable(atBusy, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("%s: busy must be reachable", tc.name)
		}
		if len(trace) == 0 {
			t.Fatalf("%s: witness must be non-nil", tc.name)
		}
		assertTraceValid(t, c, trace)
		if !atBusy(trace[len(trace)-1].State) {
			t.Errorf("%s: witness does not end in a busy state", tc.name)
		}
	}
}

// TestSupClockUnboundedWitnessReplaysBothEngines drives the one SupClock
// case that stops with a witness — an extrapolated-to-infinity clock — on
// both engines. The grid's y clock is never reset, so its supremum at any
// busy state lies beyond the horizon.
func TestSupClockUnboundedWitnessReplaysBothEngines(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	y, err := FindClock(n, "y")
	if err != nil {
		t.Fatal(err)
	}
	atBusy := func(s *State) bool { return s.Locs[3] == busy }
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{}},
		{"parallel", Options{Workers: 4}},
	} {
		sup, err := c.SupClock(y.ID, atBusy, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if !sup.Unbounded || !sup.Seen {
			t.Fatalf("%s: y at busy must be beyond the horizon (unbounded=%v seen=%v)",
				tc.name, sup.Unbounded, sup.Seen)
		}
		if len(sup.Witness) == 0 {
			t.Fatalf("%s: unbounded supremum must carry a witness trace", tc.name)
		}
		assertTraceValid(t, c, sup.Witness)
		last := sup.Witness[len(sup.Witness)-1]
		if !atBusy(last.State) || last.State.Zone.Sup(int(y.ID)) != dbm.Infinity {
			t.Errorf("%s: witness does not end in an unbounded busy state", tc.name)
		}
	}
}

// TestDeadlockWitnessReplaysBothEngines compares CheckDeadlockFree across
// both engines on a deadlocking model and replays both witnesses.
func TestDeadlockWitnessReplaysBothEngines(t *testing.T) {
	n := ta.NewNetwork("dead")
	x := n.AddClock("x")
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 3))
	l1 := p.AddLocation("stuck", ta.Normal)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: ta.CEq(x, 3)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{}},
		{"parallel", Options{Workers: 4}},
	} {
		res, err := c.CheckDeadlockFree(tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Free {
			t.Fatalf("%s: absorbing location must be reported as a deadlock", tc.name)
		}
		if len(res.Witness) == 0 {
			t.Fatalf("%s: deadlock verdict must carry a witness", tc.name)
		}
		assertTraceValid(t, c, res.Witness)
		assertDeadlocked(t, c, res.Witness)
	}
}

// TestParallelTraceStressReplays hammers the parallel trace machinery: many
// rounds at several worker counts, every returned trace replayed. Together
// with -race this exercises concurrent parent-log appends and cross-log
// stitching.
func TestParallelTraceStressReplays(t *testing.T) {
	n, _, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	// A deep target: the server has been busy and all generators have
	// re-armed at least once.
	deep := func(s *State) bool { return s.Locs[3] == busy && s.Vars[0] >= 2 }
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		for _, workers := range []int{2, 4, 8} {
			found, trace, _, err := c.Reachable(deep, Options{Seed: int64(r), Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !found || len(trace) == 0 {
				t.Fatalf("round %d workers %d: deep state must be reachable with a trace", r, workers)
			}
			assertTraceValid(t, c, trace)
			if !deep(trace[len(trace)-1].State) {
				t.Errorf("round %d workers %d: trace does not end in the target", r, workers)
			}
		}
	}
}

// TestMaxVarStopAtDeadlockNoTrace pins the interaction between the noTrace
// fast path and StopAtDeadlock: MaxVar disables parent logging, so a
// deadlock stop must complete without attempting (and crashing on) a trace
// replay against nil logs.
func TestMaxVarStopAtDeadlockNoTrace(t *testing.T) {
	n := ta.NewNetwork("deadvar")
	x := n.AddClock("x")
	v := n.AddVar("v", 0, 0, 3)
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 3))
	l1 := p.AddLocation("stuck", ta.Normal)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: ta.CEq(x, 3), Update: ta.Inc(v, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := c.MaxVar(v.ID, nil, Options{StopAtDeadlock: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Seen || res.Max != 1 {
			t.Errorf("workers %d: v range = [%d,%d] seen=%v, want max 1",
				workers, res.Min, res.Max, res.Seen)
		}
	}
}

// TestStatsAddCoversEveryField walks Stats by reflection so a counter added
// later cannot be silently dropped from Add — the failure BinarySearchWCRT's
// hand-summing used to risk.
func TestStatsAddCoversEveryField(t *testing.T) {
	var a, b Stats
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		switch av.Field(i).Kind() {
		case reflect.Int, reflect.Int64:
			av.Field(i).SetInt(int64(3 + 7*i))
			bv.Field(i).SetInt(int64(11 + 13*i))
		case reflect.Bool:
			bv.Field(i).SetBool(true)
		default:
			t.Fatalf("unhandled Stats field kind %v; extend this test and Stats.Add", av.Field(i).Kind())
		}
	}
	sum := a
	sum.Add(b)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		switch sv.Field(i).Kind() {
		case reflect.Int, reflect.Int64:
			want := av.Field(i).Int() + bv.Field(i).Int()
			if sv.Field(i).Int() != want {
				t.Errorf("Stats.Add drops field %s: got %d, want %d", name, sv.Field(i).Int(), want)
			}
		case reflect.Bool:
			if !sv.Field(i).Bool() {
				t.Errorf("Stats.Add drops bool field %s", name)
			}
		}
	}
	if a.Duration+b.Duration != sum.Duration {
		t.Errorf("durations must sum: %v + %v != %v", a.Duration, b.Duration, sum.Duration)
	}
}
