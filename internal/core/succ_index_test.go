package core

import (
	"math/rand"
	"testing"

	"repro/internal/ta"
)

// This file is the differential oracle pinning the tentpole invariant of the
// compiled successor index: the one-pass indexed enumerator (succ.go) must
// produce a succ stream BIT-IDENTICAL to the legacy per-channel rescan
// (succ_scan.go) — same labels, same enumeration order, same successor
// states, same zones, same errors. Enumeration order is load-bearing:
// parent-log records keep only the successor index, so replay selects by
// position; verdict bytes and traces inherit the order.

// randNet builds a small random network from a deterministic seed, exercising
// every synchronization discipline: tau edges, binary/broadcast channels,
// urgent variants, urgent and committed locations, clock guards, invariants,
// resets, data guards and updates. Construction respects the validation
// rules (no clock guards on urgent-channel edges or broadcast receivers;
// invariants are non-negative upper bounds), and variable updates only set
// in-range constants so the reachable state space is finite and CheckVarBounds
// can never fire.
func randNet(seed int64) *ta.Network {
	r := rand.New(rand.NewSource(seed))
	n := ta.NewNetwork("rand")

	nClocks := 1 + r.Intn(2)
	clocks := make([]ta.Clock, nClocks)
	for i := range clocks {
		clocks[i] = n.AddClock("x" + string(rune('0'+i)))
	}
	nVars := r.Intn(3)
	vars := make([]ta.IntVar, nVars)
	for i := range vars {
		vars[i] = n.AddVar("v"+string(rune('0'+i)), 0, 0, 3)
	}
	kinds := []ta.ChanKind{ta.Binary, ta.BinaryUrgent, ta.Broadcast, ta.BroadcastUrgent}
	nChans := 1 + r.Intn(3)
	chans := make([]ta.Channel, nChans)
	for i := range chans {
		chans[i] = n.AddChan("c"+string(rune('0'+i)), kinds[r.Intn(len(kinds))])
	}

	nProcs := 2 + r.Intn(3)
	for pi := 0; pi < nProcs; pi++ {
		p := n.AddProcess("P" + string(rune('0'+pi)))
		nLocs := 2 + r.Intn(3)
		for li := 0; li < nLocs; li++ {
			kind := ta.Normal
			switch r.Intn(8) {
			case 0:
				kind = ta.UrgentLoc
			case 1:
				kind = ta.Committed
			}
			var inv []ta.Constraint
			// Urgent/committed locations forbid delay anyway; give the
			// normal ones an occasional invariant so delay closure is
			// actually constrained.
			if kind == ta.Normal && r.Intn(3) == 0 {
				inv = append(inv, ta.CLE(clocks[r.Intn(nClocks)], int64(1+r.Intn(5))))
			}
			p.AddLocation("l"+string(rune('0'+li)), kind, inv...)
		}
		nEdges := 2 + r.Intn(5)
		for ei := 0; ei < nEdges; ei++ {
			e := ta.Edge{
				Src: ta.LocID(r.Intn(nLocs)),
				Dst: ta.LocID(r.Intn(nLocs)),
			}
			sync := ta.NoSync
			if r.Intn(2) == 0 {
				ch := chans[r.Intn(nChans)]
				dir := ta.Emit
				if r.Intn(2) == 0 {
					dir = ta.Recv
				}
				sync = ta.Sync{Chan: ch.ID, Dir: dir}
				e.Sync = sync
				// Clock guards are forbidden on urgent channels and on
				// broadcast receivers.
				if !ch.Kind.Urgent() && !(ch.Kind.IsBroadcast() && dir == ta.Recv) && r.Intn(2) == 0 {
					e.ClockGuard = append(e.ClockGuard, randClockGuard(r, clocks))
				}
			} else if r.Intn(2) == 0 {
				e.ClockGuard = append(e.ClockGuard, randClockGuard(r, clocks))
			}
			if nVars > 0 && r.Intn(3) == 0 {
				v := vars[r.Intn(nVars)]
				ops := []ta.CmpOp{ta.Lt, ta.Le, ta.Gt, ta.Ge, ta.Eq, ta.Ne}
				e.Guard = ta.VarCmp(v, ops[r.Intn(len(ops))], int64(r.Intn(4)))
			}
			if nVars > 0 && r.Intn(3) == 0 {
				e.Update = ta.SetConst(vars[r.Intn(nVars)], int64(r.Intn(4)))
			}
			if r.Intn(3) == 0 {
				e.Resets = append(e.Resets, ta.Reset{Clock: clocks[r.Intn(nClocks)].ID, Value: 0})
			}
			p.AddEdge(e)
		}
	}
	if err := n.Finalize(); err != nil {
		// The generator respects every validation rule by construction.
		panic("randNet: " + err.Error())
	}
	return n
}

func randClockGuard(r *rand.Rand, clocks []ta.Clock) ta.Constraint {
	c := clocks[r.Intn(len(clocks))]
	k := int64(r.Intn(6))
	if r.Intn(2) == 0 {
		return ta.CLE(c, k)
	}
	return ta.CGE(c, k)
}

// enginePair returns indexed and legacy engines over the same network, each
// with its own scratch context.
func enginePair(t testing.TB, net *ta.Network) (eI, eL *engine, ctxI, ctxL *succCtx) {
	t.Helper()
	cI, err := NewChecker(net)
	if err != nil {
		t.Fatal(err)
	}
	cL, err := NewChecker(net)
	if err != nil {
		t.Fatal(err)
	}
	cL.eng.legacyScan = true
	return cI.eng, cL.eng, cI.eng.newCtx(), cL.eng.newCtx()
}

// compareSuccessors runs both enumerators on one state and fails unless the
// two succ streams are bit-identical. It also cross-checks the urgency test.
// Returns the indexed stream (legacy states are recycled).
func compareSuccessors(t testing.TB, net *ta.Network, eI, eL *engine, ctxI, ctxL *succCtx, s *State) []succ {
	t.Helper()
	si, errI := eI.successors(ctxI, s, nil)
	sl, errL := eL.successors(ctxL, s, nil)
	if (errI == nil) != (errL == nil) {
		t.Fatalf("state %s: indexed err=%v, legacy err=%v", s.Format(net), errI, errL)
	}
	if errI != nil {
		if errI.Error() != errL.Error() {
			t.Fatalf("state %s: error mismatch: %q vs %q", s.Format(net), errI, errL)
		}
		return nil
	}
	if len(si) != len(sl) {
		t.Fatalf("state %s: %d indexed successors, %d legacy", s.Format(net), len(si), len(sl))
	}
	for k := range si {
		a, b := si[k], sl[k]
		if a.idx != b.idx {
			t.Fatalf("state %s succ %d: idx %d vs %d", s.Format(net), k, a.idx, b.idx)
		}
		if a.label.Kind != b.label.Kind || a.label.Chan != b.label.Chan {
			t.Fatalf("state %s succ %d: label %s(%s) vs %s(%s)", s.Format(net), k,
				a.label.Kind, a.label.Chan, b.label.Kind, b.label.Chan)
		}
		if len(a.label.Parts) != len(b.label.Parts) {
			t.Fatalf("state %s succ %d: %d parts vs %d", s.Format(net), k,
				len(a.label.Parts), len(b.label.Parts))
		}
		for i := range a.label.Parts {
			if a.label.Parts[i] != b.label.Parts[i] {
				t.Fatalf("state %s succ %d part %d: %+v vs %+v", s.Format(net), k, i,
					a.label.Parts[i], b.label.Parts[i])
			}
		}
		sameDiscrete := true
		for i := range a.state.Locs {
			if a.state.Locs[i] != b.state.Locs[i] {
				sameDiscrete = false
			}
		}
		for i := range a.state.Vars {
			if a.state.Vars[i] != b.state.Vars[i] {
				sameDiscrete = false
			}
		}
		if !sameDiscrete {
			t.Fatalf("state %s succ %d: discrete mismatch: %s vs %s", s.Format(net), k,
				a.state.Format(net), b.state.Format(net))
		}
		// Zones must be bit-identical matrices, not merely equivalent sets.
		za, zb := a.state.Zone, b.state.Zone
		for i := 0; i < za.Dim(); i++ {
			for j := 0; j < za.Dim(); j++ {
				if za.At(i, j) != zb.At(i, j) {
					t.Fatalf("state %s succ %d: zone differs at (%d,%d): %s vs %s",
						s.Format(net), k, i, j, a.state.FormatVerbose(net), b.state.FormatVerbose(net))
				}
			}
		}
	}
	if dI, dL := eI.delayAllowed(s.Locs, s.Vars), eL.delayAllowed(s.Locs, s.Vars); dI != dL {
		t.Fatalf("state %s: delayAllowed %v indexed, %v legacy", s.Format(net), dI, dL)
	}
	for _, sc := range sl {
		ctxL.putState(sc.state)
	}
	return si
}

// diffExplore walks the reachable zone graph (bounded by maxStates) with the
// indexed enumerator and compares both enumerators on every stored state.
func diffExplore(t testing.TB, net *ta.Network, maxStates int) {
	t.Helper()
	eI, eL, ctxI, ctxL := enginePair(t, net)
	driver, err := NewChecker(net)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	_, err = driver.Explore(Options{MaxStates: maxStates}, func(s *State) bool {
		succs := compareSuccessors(t, net, eI, eL, ctxI, ctxL, s)
		for _, sc := range succs {
			ctxI.putState(sc.state)
		}
		checked++
		return false
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if checked == 0 {
		t.Fatal("no states compared")
	}
}

func TestSuccessorsIndexedMatchesScanRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		diffExplore(t, randNet(seed), 400)
	}
}

// TestSuccessorsIndexedMatchesScanFullRun compares whole explorations:
// stats sequentially (the stream order makes them deterministic), deadlock
// verdicts both sequentially and with Workers=4 (run under -race in CI).
func TestSuccessorsIndexedMatchesScanFullRun(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		net := randNet(seed)
		cI, err := NewChecker(net)
		if err != nil {
			t.Fatal(err)
		}
		cL, err := NewChecker(net)
		if err != nil {
			t.Fatal(err)
		}
		cL.eng.legacyScan = true

		rI, errI := cI.Explore(Options{MaxStates: 3000}, nil)
		rL, errL := cL.Explore(Options{MaxStates: 3000}, nil)
		if (errI == nil) != (errL == nil) {
			t.Fatalf("seed %d: err %v vs %v", seed, errI, errL)
		}
		if errI != nil {
			continue
		}
		if rI.Stored != rL.Stored || rI.Popped != rL.Popped ||
			rI.Transitions != rL.Transitions || rI.Deadlocks != rL.Deadlocks {
			t.Fatalf("seed %d: stats differ: indexed %+v, legacy %+v", seed, rI.Stats, rL.Stats)
		}

		dI, errI := cI.CheckDeadlockFree(Options{MaxStates: 3000, Workers: 4})
		dL, errL := cL.CheckDeadlockFree(Options{MaxStates: 3000, Workers: 4})
		if (errI == nil) != (errL == nil) {
			t.Fatalf("seed %d: parallel err %v vs %v", seed, errI, errL)
		}
		if errI == nil && dI.Free != dL.Free {
			t.Fatalf("seed %d: parallel deadlock verdict %v vs %v", seed, dI.Free, dL.Free)
		}
	}
}

// FuzzSuccessorsIndexed fuzzes the differential oracle over generator seeds:
// any seed whose random network enumerates differently under the two
// implementations is a counterexample to the tentpole invariant. Committed
// seeds live in testdata/fuzz/FuzzSuccessorsIndexed.
func FuzzSuccessorsIndexed(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffExplore(t, randNet(seed), 150)
	})
}

// contractNet is a hand-built network stressing the grouped-by-process
// enumeration contract: three processes each owning several enabled edges on
// two shared channels, interleaved so bucket fills interleave too.
func contractNet(t *testing.T, kind ta.ChanKind) *ta.Network {
	t.Helper()
	n := ta.NewNetwork("contract")
	a := n.AddChan("a", kind)
	b := n.AddChan("b", kind)
	for pi := 0; pi < 3; pi++ {
		p := n.AddProcess("P" + string(rune('0'+pi)))
		l0 := p.AddLocation("l0", ta.Normal)
		l1 := p.AddLocation("l1", ta.Normal)
		// Every process: two receive edges on each channel plus, for P0 and
		// P2, an emit edge per channel — multiple enabled parts per (proc,
		// chan, dir) in the initial state.
		p.AddEdge(ta.Edge{Src: l0, Dst: l1, Sync: ta.Sync{Chan: b.ID, Dir: ta.Recv}})
		p.AddEdge(ta.Edge{Src: l0, Dst: l0, Sync: ta.Sync{Chan: a.ID, Dir: ta.Recv}})
		p.AddEdge(ta.Edge{Src: l0, Dst: l1, Sync: ta.Sync{Chan: a.ID, Dir: ta.Recv}})
		p.AddEdge(ta.Edge{Src: l0, Dst: l0, Sync: ta.Sync{Chan: b.ID, Dir: ta.Recv}})
		if pi%2 == 0 {
			p.AddEdge(ta.Edge{Src: l0, Dst: l1, Sync: ta.Sync{Chan: a.ID, Dir: ta.Emit}})
			p.AddEdge(ta.Edge{Src: l0, Dst: l1, Sync: ta.Sync{Chan: b.ID, Dir: ta.Emit}})
		}
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n
}

// assertGrouped fails unless parts are grouped by process with the groups in
// increasing process order — the precondition of broadcastCombos' single-scan
// run-grouping.
func assertGrouped(t *testing.T, what string, parts []LabelPart) {
	t.Helper()
	seen := map[ta.ProcID]bool{}
	for i, pt := range parts {
		if i > 0 && parts[i-1].Proc == pt.Proc {
			continue // same run
		}
		if seen[pt.Proc] {
			t.Fatalf("%s: process %d appears in two separate runs: %+v", what, pt.Proc, parts)
		}
		seen[pt.Proc] = true
		if i > 0 && parts[i-1].Proc > pt.Proc {
			t.Fatalf("%s: process runs not in increasing order: %+v", what, parts)
		}
	}
}

// TestEnumerationOrderContract pins the grouped-by-process bucket order on
// both enumerators, and that the indexed buckets hold exactly what the legacy
// rescan collects, channel by channel.
func TestEnumerationOrderContract(t *testing.T) {
	for _, kind := range []ta.ChanKind{ta.Binary, ta.Broadcast} {
		net := contractNet(t, kind)
		eI, eL, ctxI, ctxL := enginePair(t, net)
		s, err := eI.initial()
		if err != nil {
			t.Fatal(err)
		}
		// Run the indexed enumerator once; its per-channel buckets stay
		// inspectable in ctxI until the next call.
		succs := compareSuccessors(t, net, eI, eL, ctxI, ctxL, s)
		if len(succs) == 0 {
			t.Fatal("contract network has no successors")
		}
		for _, sc := range succs {
			ctxI.putState(sc.state)
		}
		for ci := range net.Chans {
			em := ctxI.chanBuf[eI.emOff[ci] : eI.emOff[ci]+ctxI.chanLen[2*ci]]
			rc := ctxI.chanBuf[eI.rcOff[ci] : eI.rcOff[ci]+ctxI.chanLen[2*ci+1]]
			assertGrouped(t, "indexed emitters", em)
			assertGrouped(t, "indexed receivers", rc)
			lem, lrc := eL.enabledSyncEdges(ctxL, s, ta.ChanID(ci))
			assertGrouped(t, "legacy emitters", lem)
			assertGrouped(t, "legacy receivers", lrc)
			if len(em) != len(lem) || len(rc) != len(lrc) {
				t.Fatalf("chan %d: bucket sizes differ: (%d,%d) indexed vs (%d,%d) legacy",
					ci, len(em), len(rc), len(lem), len(lrc))
			}
			for i := range em {
				if em[i] != lem[i] {
					t.Fatalf("chan %d emitter %d: %+v vs %+v", ci, i, em[i], lem[i])
				}
			}
			for i := range rc {
				if rc[i] != lrc[i] {
					t.Fatalf("chan %d receiver %d: %+v vs %+v", ci, i, rc[i], lrc[i])
				}
			}
		}
	}
}
