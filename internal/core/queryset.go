package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// This file is the query-set layer of the unified engine: instead of one
// exploration per question, any number of queries attach to a *single* sweep
// of the zone graph and reduce over it concurrently. The paper answers each
// requirement with its own observer and its own model-checking run; compiling
// all observers into one network (arch.CompileAll) and attaching one
// SupClockQuery per observer to one RunQueries call turns k requirements ×
// 1 exploration into 1 exploration.
//
// # Completion and short-circuit
//
// Every query can complete independently: a reach query completes at its
// first matching state, a supremum query when its clock escapes the
// observation horizon, a deadlock query at the first deadlocked state, and a
// var-maximum query never (it needs the whole sweep). The explorer keeps an
// atomic count of still-live queries; the completion that drops it to zero
// stops the sweep, so a one-element query set early-stops exactly like the
// dedicated methods always have.
//
// # Ownership rules (extends the protocol in store.go / explore.go)
//
//   - Per-worker reduction state: a query allocates one cache-line-padded
//     accumulator per worker in prepare(); visit(w, s) touches only
//     accumulator w, and finish() merges them strictly after the exploration
//     barrier. The visitor path never takes a lock.
//   - States are NOT retained: when a query completes on a state that the
//     sweep still needs (other queries live), the state will be recycled, so
//     completion captures a caller-owned clone (cloneState) plus the state's
//     parent-log ref. Traces are replayed from the logs after the barrier.
//   - A Query is single-use: it carries its results after the run. Reusing
//     one in a second RunQueries call is an error.

// queryState is the completion bookkeeping shared by every query kind.
type queryState struct {
	// done flips exactly once, when the query has learned everything it
	// needs from the sweep. Workers check it to stop feeding the query.
	done atomic.Bool
	// ref is the parent-log ref of the completing state (noRef when parent
	// logging is off), read only after the worker barrier.
	ref atomic.Int64
	// found is a caller-owned clone of the completing state.
	found atomic.Pointer[State]
	// used guards against attaching the same query to two runs.
	used bool
}

func (qs *queryState) init() {
	qs.ref.Store(noRef)
}

// Query is one measurement riding a query-set exploration (RunQueries). The
// concrete kinds — ReachQuery, SupClockQuery, MaxVarQuery, DeadlockQuery —
// are the composable building blocks the dedicated Checker methods are thin
// wrappers over. The interface is sealed: its methods are unexported because
// they are the engine-facing half of the ownership protocol above.
type Query interface {
	// prepare allocates per-worker reduction state before the run.
	prepare(workers int)
	// visit observes one newly admitted state on worker w; returning true
	// completes the query. It must not retain s or its zone.
	visit(w int, s *State) bool
	// observesDeadlocks reports whether onDeadlock should be fed.
	observesDeadlocks() bool
	// onDeadlock observes a deadlocked (successor-less) state; same
	// contract as visit.
	onDeadlock(w int, s *State) bool
	// wantsTrace reports whether the query may request a trace replay, i.e.
	// whether the run needs parent logs.
	wantsTrace() bool
	// state returns the shared completion bookkeeping.
	state() *queryState
	// finish merges per-worker state and materializes results; it runs
	// strictly after the worker barrier.
	finish(c *Checker, logs *parentLogs, stats Stats) error
}

// cloneState returns a fresh caller-owned copy of s (discrete vectors and
// zone), safe to retain after the exploration's pools are recycled.
func cloneState(s *State) *State {
	ns := &State{
		Locs: append([]ta.LocID(nil), s.Locs...),
		Vars: append([]int64(nil), s.Vars...),
		ref:  noRef,
	}
	if s.Zone != nil {
		ns.Zone = s.Zone.Copy()
	}
	return ns
}

// completionTrace replays the trace to the query's completing state, when
// parent logging was on.
func (qs *queryState) completionTrace(c *Checker, logs *parentLogs) ([]TraceStep, error) {
	ref := qs.ref.Load()
	if logs == nil || ref == noRef {
		return nil, nil
	}
	return c.replayTrace(logs, ref)
}

// ReachQuery asks whether a state satisfying Pred is reachable; it completes
// at the first match with a witness trace.
type ReachQuery struct {
	Pred func(*State) bool

	// Found reports whether any state satisfied Pred.
	Found bool
	// FoundState is a caller-owned copy of the first matching state.
	FoundState *State
	// Trace is the replayed path to FoundState.
	Trace []TraceStep
	// Stats is the shared exploration effort of the whole query set.
	Stats Stats

	qs queryState
}

// NewReachQuery returns a reach-predicate query for one RunQueries call.
func NewReachQuery(pred func(*State) bool) *ReachQuery {
	return &ReachQuery{Pred: pred}
}

func (q *ReachQuery) prepare(int)                 {}
func (q *ReachQuery) visit(_ int, s *State) bool  { return q.Pred(s) }
func (q *ReachQuery) observesDeadlocks() bool     { return false }
func (q *ReachQuery) onDeadlock(int, *State) bool { return false }
func (q *ReachQuery) wantsTrace() bool            { return true }
func (q *ReachQuery) state() *queryState          { return &q.qs }

func (q *ReachQuery) finish(c *Checker, logs *parentLogs, stats Stats) error {
	q.Stats = stats
	q.Found = q.qs.done.Load()
	q.FoundState = q.qs.found.Load()
	var err error
	q.Trace, err = q.qs.completionTrace(c, logs)
	return err
}

// SupClockQuery computes the supremum of Clock over every reachable state
// satisfying Cond (the single-pass WCRT measurement). It completes early
// only when the clock is extrapolated to infinity — nothing larger can be
// learned — recording a witness to the first unbounded state.
type SupClockQuery struct {
	Clock ta.ClockID
	Cond  func(*State) bool

	// Result carries the supremum exactly as Checker.SupClock reports it;
	// its Stats are the shared exploration effort of the whole query set.
	Result SupResult

	accs []supAcc
	qs   queryState
}

// NewSupClockQuery returns a clock-supremum query for one RunQueries call.
func NewSupClockQuery(clock ta.ClockID, cond func(*State) bool) *SupClockQuery {
	return &SupClockQuery{Clock: clock, Cond: cond}
}

func (q *SupClockQuery) prepare(workers int) {
	q.accs = make([]supAcc, workers)
	for w := range q.accs {
		q.accs[w].max = dbm.LT(0)
	}
}

func (q *SupClockQuery) visit(w int, s *State) bool {
	if !q.Cond(s) {
		return false
	}
	acc := &q.accs[w]
	acc.seen = true
	b := s.Zone.Sup(int(q.Clock))
	if b == dbm.Infinity {
		return true // nothing larger can be learned; complete with a witness
	}
	if b > acc.max {
		acc.max = b
	}
	return false
}

func (q *SupClockQuery) observesDeadlocks() bool     { return false }
func (q *SupClockQuery) onDeadlock(int, *State) bool { return false }
func (q *SupClockQuery) wantsTrace() bool            { return true }
func (q *SupClockQuery) state() *queryState          { return &q.qs }

func (q *SupClockQuery) finish(c *Checker, logs *parentLogs, stats Stats) error {
	out := SupResult{Max: dbm.LT(0), Stats: stats}
	for i := range q.accs {
		out.Seen = out.Seen || q.accs[i].seen
		if q.accs[i].max > out.Max {
			out.Max = q.accs[i].max
		}
	}
	if q.qs.done.Load() {
		out.Seen = true
		out.Unbounded = true
		var err error
		if out.Witness, err = q.qs.completionTrace(c, logs); err != nil {
			return err
		}
	}
	q.Result = out
	return nil
}

// MaxVarQuery computes the range of an integer variable over every reachable
// state satisfying Cond (nil means all states). It never completes early and
// never requests a trace, so a set of only MaxVarQueries runs without parent
// logs.
type MaxVarQuery struct {
	Var  ta.VarID
	Cond func(*State) bool

	// Result carries the range exactly as Checker.MaxVar reports it; its
	// Stats are the shared exploration effort of the whole query set.
	Result MaxVarResult

	accs []maxVarAcc
	qs   queryState
}

// NewMaxVarQuery returns a var-maximum query for one RunQueries call.
func NewMaxVarQuery(v ta.VarID, cond func(*State) bool) *MaxVarQuery {
	return &MaxVarQuery{Var: v, Cond: cond}
}

func (q *MaxVarQuery) prepare(workers int) {
	q.accs = make([]maxVarAcc, workers)
	for w := range q.accs {
		q.accs[w].max, q.accs[w].min = -1<<62, 1<<62-1
	}
}

func (q *MaxVarQuery) visit(w int, s *State) bool {
	if q.Cond != nil && !q.Cond(s) {
		return false
	}
	acc := &q.accs[w]
	acc.seen = true
	if v := s.Vars[q.Var]; v > acc.max {
		acc.max = v
	}
	if v := s.Vars[q.Var]; v < acc.min {
		acc.min = v
	}
	return false
}

func (q *MaxVarQuery) observesDeadlocks() bool     { return false }
func (q *MaxVarQuery) onDeadlock(int, *State) bool { return false }
func (q *MaxVarQuery) wantsTrace() bool            { return false }
func (q *MaxVarQuery) state() *queryState          { return &q.qs }

func (q *MaxVarQuery) finish(_ *Checker, _ *parentLogs, stats Stats) error {
	out := MaxVarResult{Max: -1 << 62, Min: 1<<62 - 1, Stats: stats}
	for i := range q.accs {
		out.Seen = out.Seen || q.accs[i].seen
		if q.accs[i].max > out.Max {
			out.Max = q.accs[i].max
		}
		if q.accs[i].min < out.Min {
			out.Min = q.accs[i].min
		}
	}
	q.Result = out
	return nil
}

// DeadlockQuery asks whether any reachable state deadlocks; it completes at
// the first deadlocked state with a witness trace. Alone in a query set it
// stops the sweep there (Checker.CheckDeadlockFree's behavior); in a larger
// set the sweep keeps serving the remaining queries.
type DeadlockQuery struct {
	// Result carries the verdict exactly as Checker.CheckDeadlockFree
	// reports it; its Stats are the shared effort of the whole query set.
	Result DeadlockResult

	qs queryState
}

// NewDeadlockQuery returns a deadlock-freedom query for one RunQueries call.
func NewDeadlockQuery() *DeadlockQuery { return &DeadlockQuery{} }

func (q *DeadlockQuery) prepare(int)                 {}
func (q *DeadlockQuery) visit(int, *State) bool      { return false }
func (q *DeadlockQuery) observesDeadlocks() bool     { return true }
func (q *DeadlockQuery) onDeadlock(int, *State) bool { return true }
func (q *DeadlockQuery) wantsTrace() bool            { return true }
func (q *DeadlockQuery) state() *queryState          { return &q.qs }

func (q *DeadlockQuery) finish(c *Checker, logs *parentLogs, stats Stats) error {
	q.Result = DeadlockResult{Stats: stats, Free: stats.Deadlocks == 0}
	var err error
	q.Result.Witness, err = q.qs.completionTrace(c, logs)
	return err
}

// RunQueries evaluates every query in ONE exploration of the zone graph.
// Each query reduces into per-worker state on the shared sweep and completes
// independently; when all queries have completed, the sweep short-circuits.
// Results land on the query values themselves; the returned Stats are the
// shared effort of the single exploration (each query's embedded Stats equal
// it). Queries are single-use.
//
// Workers > 1 runs the sweep on the work-stealing parallel frontier;
// predicates and conditions are then evaluated concurrently and must be safe
// for concurrent use, exactly like Explore visitors.
func (c *Checker) RunQueries(opts Options, queries ...Query) (Stats, error) {
	qs := make([]Query, 0, len(queries))
	for i, q := range queries {
		if q == nil {
			return Stats{}, fmt.Errorf("core: RunQueries: query %d is nil", i)
		}
		if q.state().used {
			return Stats{}, fmt.Errorf("core: RunQueries: query %d was already run; queries are single-use", i)
		}
		qs = append(qs, q)
	}
	res, err := c.explore(opts, qs)
	return res.Stats, err
}
