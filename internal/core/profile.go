package core

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the sweep-profile recorder: an opt-in extension of Monitor
// that captures per-phase spans (parse → compile → explore → trace-replay)
// and a sampled per-worker time series of the exploration's behavior —
// throughput, frontier depth, steal counts, pool traffic, store footprint.
//
// The cost contract mirrors budget.go: everything the recorder needs per
// run (the rings, the sampling mask) is allocated only when EnableProfile
// was called, and the worker loop's disabled path is one nil check — the
// bench gate (Table1_HandleTMC_AL_po vs ..._Profiled) pins the disabled
// sweep to exactly its historical allocs/op. Sampling itself is single-
// writer work: each worker appends to its own ring at a fixed expansion
// stride, reads only counters it owns (loop locals, its steal cell, the
// shared store's atomics), and never takes a lock.

// ProfileConfig tunes the sweep-profile recorder. Zero values select the
// documented defaults.
type ProfileConfig struct {
	// SampleEvery is the per-worker sampling stride in expansions, rounded
	// up to a power of two so the loop test is one mask. Default 256.
	SampleEvery int
	// MaxSamples bounds each worker's ring; once full, the oldest samples
	// are overwritten and counted as Dropped. Default 512.
	MaxSamples int
}

func (c ProfileConfig) withDefaults() ProfileConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 256
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 512
	}
	return c
}

// WorkerSample is one point of a worker's time series. Counters are the
// worker's own cumulative totals at sample time, so rates (states/sec) are
// first differences over AtNS.
type WorkerSample struct {
	// AtNS is the sample time in Unix nanoseconds.
	AtNS int64 `json:"at_ns"`
	// Popped and Transitions are the worker's cumulative expansion counters.
	Popped      int64 `json:"popped"`
	Transitions int64 `json:"transitions"`
	// Steals counts states this worker has taken from other workers' deques.
	Steals int64 `json:"steals"`
	// PoolGets / PoolReuses are the worker's zone-pool traffic; the gap is
	// its live allocation.
	PoolGets   int64 `json:"pool_gets"`
	PoolReuses int64 `json:"pool_reuses"`
	// Frontier is the global backlog at sample time.
	Frontier int64 `json:"frontier"`
	// StoredBytes is the passed store's global packed footprint at sample
	// time.
	StoredBytes int64 `json:"stored_bytes"`
}

// WorkerSeries is one worker's sampled time series.
type WorkerSeries struct {
	Worker int `json:"worker"`
	// Dropped counts samples overwritten by the bounded ring; the retained
	// Samples are the newest ones, oldest first.
	Dropped int            `json:"dropped"`
	Samples []WorkerSample `json:"samples"`
}

// SweepProfile is the structured profile of a monitored run: phase spans
// plus the per-worker series and run-wide contention totals of the most
// recently completed exploration. Phases accumulate across runs on the same
// Monitor (a CLI records parse/compile before the sweep; icrns fallback
// reruns append a second explore span); Series/Steals/StoreContention/Totals
// describe the latest completed run only.
type SweepProfile struct {
	Workers     int            `json:"workers"`
	SampleEvery int            `json:"sample_every"`
	Phases      []obs.Span     `json:"phases"`
	Series      []WorkerSeries `json:"series,omitempty"`
	// Steals totals successful deque steals across workers (0 for
	// sequential runs).
	Steals int64 `json:"steals"`
	// StoreContention counts shard-lock acquisitions that had to wait,
	// summed over the sharded passed store (0 for sequential runs).
	StoreContention int64 `json:"store_contention"`
	// Totals are the run's exact final counters (equal to Stats).
	Totals Progress `json:"totals"`
}

// profRecorder is the Monitor-lifetime half of the profiler: configuration,
// the accumulated phase spans, and the finalized data of the last run.
type profRecorder struct {
	cfg    ProfileConfig
	phases obs.SpanList

	// last is the finalized profile of the most recent completed run,
	// written under setDone and read by Profile.
	mu   sync.Mutex
	last *SweepProfile
}

func newProfRecorder(cfg ProfileConfig) *profRecorder {
	return &profRecorder{cfg: cfg.withDefaults()}
}

func (r *profRecorder) setLast(p *SweepProfile) {
	r.mu.Lock()
	r.last = p
	r.mu.Unlock()
}

func (r *profRecorder) getLast() *SweepProfile {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// profRun is the per-run sampling state, allocated at attach time only for
// profile-enabled monitors — a disabled run allocates nothing.
type profRun struct {
	rec   *profRecorder
	mask  int64
	max   int
	rings []profRing
}

// profRing is one worker's bounded sample ring, padded so neighboring
// workers' appends never share a cache line.
type profRing struct {
	samples []WorkerSample
	n       int // total samples taken; ring index is n % cap
	_       [40]byte
}

func (r *profRecorder) newRun(workers int) *profRun {
	every := r.cfg.SampleEvery
	mask := int64(1)
	for mask < int64(every) {
		mask <<= 1
	}
	pr := &profRun{rec: r, mask: mask - 1, max: r.cfg.MaxSamples,
		rings: make([]profRing, workers)}
	for i := range pr.rings {
		pr.rings[i].samples = make([]WorkerSample, 0, r.cfg.MaxSamples)
	}
	return pr
}

// sample appends one point to worker w's ring. Owner only: the worker loop
// calls this at its sampling stride; nothing else writes the ring until the
// barrier.
func (e *explorer) sampleProfile(w int, nPopped, nTransitions int64, gets, reuses int) {
	pr := e.prof
	ring := &pr.rings[w]
	s := WorkerSample{
		AtNS:        time.Now().UnixNano(),
		Popped:      nPopped,
		Transitions: nTransitions,
		Steals:      e.front.steals(w),
		PoolGets:    int64(gets),
		PoolReuses:  int64(reuses),
		Frontier:    e.front.depth(),
		StoredBytes: e.passed.bytes(),
	}
	if len(ring.samples) < pr.max {
		ring.samples = append(ring.samples, s)
	} else {
		ring.samples[ring.n%pr.max] = s
	}
	ring.n++
}

// finalize freezes the run's series into the recorder. Called from
// monView.setDone, strictly after the worker barrier, so the rings are
// quiescent.
func (pr *profRun) finalize(e *explorer, totals Progress) {
	p := &SweepProfile{
		Workers:     len(pr.rings),
		SampleEvery: int(pr.mask + 1),
		Totals:      totals,
	}
	p.Series = make([]WorkerSeries, len(pr.rings))
	for w := range pr.rings {
		r := &pr.rings[w]
		ws := WorkerSeries{Worker: w}
		if r.n > len(r.samples) {
			ws.Dropped = r.n - len(r.samples)
			// The ring wrapped: rotate so the retained samples read oldest
			// first.
			at := r.n % pr.max
			ws.Samples = append(append([]WorkerSample(nil), r.samples[at:]...), r.samples[:at]...)
		} else {
			ws.Samples = append([]WorkerSample(nil), r.samples...)
		}
		p.Series[w] = ws
	}
	if e.front != nil {
		for w := range pr.rings {
			p.Steals += e.front.steals(w)
		}
	}
	if e.passed != nil {
		p.StoreContention = e.passed.contention()
	}
	pr.rec.setLast(p)
}

// EnableProfile switches the monitor's next runs to profiled mode: phase
// spans accumulate and every attached exploration allocates sampling rings.
// Call before the run starts; calling it again replaces the configuration
// and clears previously recorded data.
func (m *Monitor) EnableProfile(cfg ProfileConfig) {
	m.prof.Store(newProfRecorder(cfg))
}

// ProfileEnabled reports whether EnableProfile has been called.
func (m *Monitor) ProfileEnabled() bool { return m.prof.Load() != nil }

// noopEnd is the shared closer BeginPhase hands out when profiling is off,
// so the disabled path allocates no closure.
func noopEnd() {}

// BeginPhase opens a named phase span (parse, compile, ...) and returns its
// closer. A no-op when profiling is disabled — callers can thread phases
// unconditionally.
func (m *Monitor) BeginPhase(name string) func() {
	r := m.prof.Load()
	if r == nil {
		return noopEnd
	}
	return r.phases.Begin(name)
}

// RecordPhase records an already-measured phase interval — for work that
// happened before the monitor existed (a service job's parse happens during
// submission, the job is created after). No-op when profiling is disabled.
func (m *Monitor) RecordPhase(name string, start, end time.Time) {
	if r := m.prof.Load(); r != nil {
		r.phases.Record(name, start, end)
	}
}

// Profile snapshots the recorded profile: the accumulated phase spans plus
// the per-worker series of the most recently completed run. It returns nil
// until profiling is enabled and something has been recorded. Safe from any
// goroutine; while a run is live it reports the previous completed run's
// series (the live run's rings are single-writer and unreadable until the
// barrier).
func (m *Monitor) Profile() *SweepProfile {
	r := m.prof.Load()
	if r == nil {
		return nil
	}
	phases := r.phases.Snapshot()
	last := r.getLast()
	if last == nil {
		if len(phases) == 0 {
			return nil
		}
		return &SweepProfile{Phases: phases}
	}
	p := *last
	p.Phases = phases
	return &p
}
