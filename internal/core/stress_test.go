package core

import (
	"sync"
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// TestPStoreConcurrentSubsumingAdds hammers one discrete state with chains
// of mutually-subsuming zones from many goroutines. Whatever the
// interleaving, the maximal zone of every chain must survive and the stored
// zones must end up pairwise incomparable — concurrent pruning must never
// lose a maximal zone. Run with -race.
func TestPStoreConcurrentSubsumingAdds(t *testing.T) {
	const (
		workers = 8
		chains  = 4  // incomparable families (distinct lower bounds)
		depth   = 32 // subsuming zones per family (growing upper bounds)
	)
	st := newPStore(64)
	locs := []ta.LocID{0}
	vars := []int64{0}

	mkZone := func(chain, step int) *dbm.DBM {
		// Family `chain` pins x1 >= 100*chain (incomparable across
		// families); within a family the upper bound grows with step, so
		// later zones strictly include earlier ones.
		z := dbm.Universe(2)
		z.Constrain(0, 1, dbm.LE(int64(-100*chain)))
		z.Constrain(1, 0, dbm.LE(int64(100*chain+step)))
		return z
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for c := 0; c < chains; c++ {
				for s := 0; s <= depth; s++ {
					// Interleave chain walk directions per worker so
					// subsuming pairs actually race.
					step := s
					if w%2 == 1 {
						step = depth - s
					}
					st.add(&State{Locs: locs, Vars: vars, Zone: mkZone(c, step)})
				}
			}
		}(w)
	}
	wg.Wait()

	// Collect the surviving zones for the single discrete entry, decoding
	// the packed form back into full DBMs for the inclusion checks.
	var zones []*dbm.DBM
	for i := range st.shards {
		st.shards[i].mu.Lock()
		for _, bucket := range st.shards[i].buckets {
			for _, e := range bucket {
				for _, z := range e.zones {
					zones = append(zones, z.Decode())
				}
			}
		}
		st.shards[i].mu.Unlock()
	}
	if len(zones) != chains {
		t.Errorf("stored %d zones, want %d (one maximal zone per chain)", len(zones), chains)
	}
	if st.size() != len(zones) {
		t.Errorf("size() = %d, but %d zones stored", st.size(), len(zones))
	}
	// Every chain's maximal zone must be covered by some stored zone.
	for c := 0; c < chains; c++ {
		max := mkZone(c, depth)
		covered := false
		for _, z := range zones {
			if max.SubsetEq(z) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("maximal zone of chain %d lost", c)
		}
	}
	// Stored zones must be pairwise incomparable (no zombie subsumed zones).
	for i := range zones {
		for j := range zones {
			if i != j && zones[i].SubsetEq(zones[j]) {
				t.Errorf("stored zone %d is subsumed by stored zone %d", i, j)
			}
		}
	}
}

// TestExploreParallelStressMatchesSequential runs the unified engine's
// work-stealing frontier repeatedly with many workers against the
// sequential oracle. Run with -race to exercise the deque and termination
// barrier.
func TestExploreParallelStressMatchesSequential(t *testing.T) {
	n, sx, srv, busy := buildGrid(t)
	_ = srv
	atBusy := func(s *State) bool { return s.Locs[3] == busy }
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqSup, err := c.SupClock(sx.ID, atBusy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 8
	if testing.Short() {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		for _, workers := range []int{2, 4, 8} {
			par, err := c.Explore(Options{Seed: int64(r), Workers: workers}, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Racy double-admission may store a state twice, never fewer.
			if par.Stored < seq.Stored {
				t.Errorf("round %d workers %d: parallel stored %d < sequential %d",
					r, workers, par.Stored, seq.Stored)
			}
			sup, err := c.SupClock(sx.ID, atBusy, Options{Seed: int64(r), Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if sup.Max != seqSup.Max || sup.Seen != seqSup.Seen || sup.Unbounded != seqSup.Unbounded {
				t.Errorf("round %d workers %d: parallel sup %v/%v/%v != sequential %v/%v/%v",
					r, workers, sup.Max, sup.Seen, sup.Unbounded,
					seqSup.Max, seqSup.Seen, seqSup.Unbounded)
			}
		}
	}
}

// TestWSDequeSequential checks the owner-side LIFO and thief-side FIFO
// disciplines, including ring growth past the initial capacity.
func TestWSDequeSequential(t *testing.T) {
	d := newWSDeque(64)
	states := make([]*State, 200) // > initial ring capacity, forces grow
	for i := range states {
		states[i] = &State{Vars: []int64{int64(i)}}
		d.push(states[i])
	}
	if got := d.steal(); got != states[0] {
		t.Errorf("steal returned %v, want oldest state 0", got.Vars)
	}
	if got := d.pop(); got != states[len(states)-1] {
		t.Errorf("pop returned %v, want newest state", got.Vars)
	}
	seen := 0
	for d.pop() != nil {
		seen++
	}
	if seen != len(states)-2 {
		t.Errorf("drained %d states, want %d", seen, len(states)-2)
	}
	if d.pop() != nil || d.steal() != nil {
		t.Error("empty deque must return nil")
	}
}

// TestWSDequeConcurrentStealers pushes from the owner while thieves drain
// concurrently; every pushed state must be consumed exactly once.
func TestWSDequeConcurrentStealers(t *testing.T) {
	const total = 20000
	const thieves = 4
	d := newWSDeque(64)
	var mu sync.Mutex
	seen := make(map[int64]int, total)
	record := func(s *State) {
		mu.Lock()
		seen[s.Vars[0]]++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s := d.steal(); s != nil {
					record(s)
					continue
				}
				select {
				case <-done:
					// Final drain after the owner stopped.
					for {
						s := d.steal()
						if s == nil {
							return
						}
						record(s)
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		d.push(&State{Vars: []int64{int64(i)}})
		if i%3 == 0 {
			if s := d.pop(); s != nil {
				record(s)
			}
		}
	}
	for {
		s := d.pop()
		if s == nil {
			break
		}
		record(s)
	}
	close(done)
	wg.Wait()
	for i := int64(0); i < total; i++ {
		switch seen[i] {
		case 1:
		case 0:
			t.Fatalf("state %d lost", i)
		default:
			t.Fatalf("state %d consumed %d times", i, seen[i])
		}
	}
	if len(seen) != total {
		t.Fatalf("consumed %d distinct states, want %d", len(seen), total)
	}
}

// TestMaxVarParallelMatchesSequential pins the Options.Workers routing for
// MaxVar, the second trace-free query kind.
func TestMaxVarParallelMatchesSequential(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	var rec ta.VarID // the single variable of the grid network
	seq, err := c.MaxVar(rec, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.MaxVar(rec, nil, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Max != par.Max || seq.Min != par.Min || seq.Seen != par.Seen {
		t.Errorf("MaxVar parallel (%d,%d,%v) != sequential (%d,%d,%v)",
			par.Max, par.Min, par.Seen, seq.Max, seq.Min, seq.Seen)
	}
}
