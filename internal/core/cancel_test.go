package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ta"
)

// buildHuge constructs a network whose zone graph is far too large to sweep
// within the test's patience: six free-phase generators with co-prime periods
// feeding a shared counter. Cancellation and deadline tests abort mid-sweep
// against it, so a run that fails to abort hangs visibly instead of passing
// by finishing early.
func buildHuge(t *testing.T) *ta.Network {
	t.Helper()
	n := ta.NewNetwork("huge")
	sx := n.AddClock("sx")
	rec := n.AddVar("rec", 0, 0, 40)
	hurry := n.AddChan("hurry", ta.BroadcastUrgent)
	for i, period := range []int64{7, 11, 13, 17, 19, 23} {
		gx := n.AddClock("gx" + string(rune('0'+i)))
		gen := n.AddProcess("GEN" + string(rune('0'+i)))
		g0 := gen.AddLocation("tick", ta.Normal, ta.CLE(gx, period))
		gen.AddEdge(ta.Edge{Src: g0, Dst: g0, ClockGuard: ta.CEq(gx, period),
			Resets: []ta.Reset{{Clock: gx.ID, Value: 0}}, Update: ta.Inc(rec, 1)})
	}
	srv := n.AddProcess("SRV")
	idle := srv.AddLocation("idle", ta.Normal)
	busy := srv.AddLocation("busy", ta.Normal, ta.CLE(sx, 2))
	srv.AddEdge(ta.Edge{Src: idle, Dst: busy,
		Guard:  ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Resets: []ta.Reset{{Clock: sx.ID, Value: 0}},
		Update: ta.Inc(rec, -1)})
	srv.AddEdge(ta.Edge{Src: busy, Dst: idle, ClockGuard: ta.CEq(sx, 2)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCancelMidSweep closes the cancel channel from inside the sweep (after
// a fixed number of admissions) and requires a prompt ErrCanceled with
// partial stats, sequentially and on the work-stealing frontier.
func TestCancelMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := buildHuge(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		cancel := make(chan struct{})
		var admitted atomic.Int64
		var closed atomic.Bool
		visit := func(s *State) bool {
			if admitted.Add(1) == 500 && closed.CompareAndSwap(false, true) {
				close(cancel)
			}
			return false
		}
		start := time.Now()
		res, err := c.Explore(Options{Workers: workers, Cancel: cancel}, visit)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("workers=%d: cancellation took %v, not prompt", workers, elapsed)
		}
		// Partial stats: the sweep got past the trigger point but nowhere
		// near the full graph (which holds far more than 10x the trigger).
		if res.Stored < 500 {
			t.Errorf("workers=%d: stored %d, want >= 500 (cancel fired at 500 admissions)", workers, res.Stored)
		}
		if res.Popped == 0 {
			t.Errorf("workers=%d: partial stats missing popped count", workers)
		}
	}
}

// TestCancelLeavesEngineReusable is the pool-cleanliness oracle for
// cancellation: a canceled sweep must not corrupt anything a later sweep
// touches. A full exploration on the same checker after a cancel must be
// bit-identical to one on a fresh checker (same stored/transition counts,
// the determinism the recycling protocol guarantees — see pool_test.go).
func TestCancelLeavesEngineReusable(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	var admitted atomic.Int64
	_, err = c.Explore(Options{Cancel: cancel}, func(*State) bool {
		if admitted.Add(1) == 20 {
			close(cancel)
		}
		return false
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	after, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stored != want.Stored || after.Transitions != want.Transitions ||
		after.Popped != want.Popped || after.Deadlocks != want.Deadlocks {
		t.Errorf("post-cancel sweep %+v differs from fresh checker %+v", after.Stats, want.Stats)
	}
}

// TestDeadlineMidSweep bounds a hopeless sweep by wall clock and requires
// ErrDeadlineExceeded with partial stats.
func TestDeadlineMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := buildHuge(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := c.Explore(Options{Workers: workers, Deadline: start.Add(50 * time.Millisecond)}, nil)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrDeadlineExceeded", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("workers=%d: deadline abort took %v, not prompt", workers, elapsed)
		}
		if res.Stored == 0 || res.Popped == 0 {
			t.Errorf("workers=%d: expected partial stats, got %+v", workers, res.Stats)
		}
	}
}

// TestAbortBeforeStart covers the pre-flight check: an expired deadline or a
// closed cancel channel refuses the run with zero stats and leaves the
// queries unused, so the same query value can still run afterwards.
func TestAbortBeforeStart(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSupClockQuery(sx.ID, func(s *State) bool { return s.Locs[3] == busy })
	if _, err := c.RunQueries(Options{Deadline: time.Now().Add(-time.Second)}, q); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrDeadlineExceeded", err)
	}
	closed := make(chan struct{})
	close(closed)
	if _, err := c.RunQueries(Options{Cancel: closed}, q); !errors.Is(err, ErrCanceled) {
		t.Fatalf("closed cancel: err = %v, want ErrCanceled", err)
	}
	// The refused runs never consumed the query; it still answers exactly.
	if _, err := c.RunQueries(Options{}, q); err != nil {
		t.Fatalf("query unusable after refused runs: %v", err)
	}
	if !q.Result.Seen {
		t.Error("query did not run after refused attempts")
	}
}

// TestDeadlineWinsOverCancel pins the check order: when both abort signals
// have fired, the more specific ErrDeadlineExceeded is reported — that is
// what lets callers driving a context distinguish expiry from cancellation.
func TestDeadlineWinsOverCancel(t *testing.T) {
	n := buildHuge(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	close(closed)
	_, err = c.Explore(Options{Cancel: closed, Deadline: time.Now().Add(-time.Second)}, nil)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded to win", err)
	}
}

// TestMonitorFinalSnapshotMatchesStats requires a post-run Snapshot to equal
// the run's exact Stats, for both frontiers.
func TestMonitorFinalSnapshotMatchesStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, _, _, _ := buildGrid(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		var mon Monitor
		res, err := c.Explore(Options{Workers: workers, Monitor: &mon}, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := mon.Snapshot()
		if p.Running {
			t.Errorf("workers=%d: monitor still Running after the run returned", workers)
		}
		if p.Stored != int64(res.Stored) || p.Popped != int64(res.Popped) ||
			p.Transitions != int64(res.Transitions) || p.Deadlocks != int64(res.Deadlocks) {
			t.Errorf("workers=%d: final snapshot %+v != stats %+v", workers, p, res.Stats)
		}
		if p.Frontier != 0 {
			t.Errorf("workers=%d: final snapshot frontier = %d, want 0", workers, p.Frontier)
		}
		if p.Workers != workers {
			t.Errorf("workers=%d: snapshot workers = %d", workers, p.Workers)
		}
	}
}

// TestMonitorLiveSnapshot samples the monitor mid-sweep (from the visitor,
// which runs on a worker goroutine) and requires a plausible in-flight view:
// running, stored at least as large as the admissions seen, backlog visible.
func TestMonitorLiveSnapshot(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	var mon Monitor
	var sampled atomic.Bool
	var snap Progress
	var maxFrontier int64
	_, err = c.Explore(Options{Monitor: &mon}, func(*State) bool {
		p := mon.Snapshot()
		if p.Frontier > maxFrontier {
			maxFrontier = p.Frontier
		}
		if p.Stored >= 100 && sampled.CompareAndSwap(false, true) {
			snap = p
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sampled.Load() {
		t.Fatal("sweep too small to sample at 100 stored states")
	}
	if !snap.Running {
		t.Error("mid-sweep snapshot not Running")
	}
	if snap.Stored < 100 {
		t.Errorf("mid-sweep snapshot stored = %d, want >= 100", snap.Stored)
	}
	// The grid's BFS backlog is narrow but not empty: the depth counter must
	// have registered waiting states at some point of the sweep.
	if maxFrontier <= 0 {
		t.Errorf("frontier depth never rose above 0 across the sweep")
	}
}

// TestMonitorZeroValue pins the unattached behavior.
func TestMonitorZeroValue(t *testing.T) {
	var mon Monitor
	if p := mon.Snapshot(); p != (Progress{}) {
		t.Errorf("unattached snapshot = %+v, want zero", p)
	}
}
