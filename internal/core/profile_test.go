package core

import (
	"sync"
	"testing"
	"time"
)

// TestSweepProfilePhasesAndSeries runs a monitored exploration with a
// one-expansion sampling stride and checks the full recorder contract:
// phase spans (recorded parse + measured explore), a per-worker series with
// cumulative counters, ring overflow accounting, and exact totals.
func TestSweepProfilePhasesAndSeries(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{}
	mon.EnableProfile(ProfileConfig{SampleEvery: 1, MaxSamples: 8})
	parseStart := time.Now().Add(-time.Millisecond)
	mon.RecordPhase("parse", parseStart, time.Now())

	stats, err := c.Explore(Options{Monitor: mon}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := mon.Profile()
	if p == nil {
		t.Fatal("Profile() = nil after a monitored run")
	}
	if p.Workers != 1 || len(p.Series) != 1 {
		t.Fatalf("Workers=%d Series=%d, want 1/1", p.Workers, len(p.Series))
	}
	if p.Totals.Stored != int64(stats.Stored) {
		t.Errorf("Totals.Stored = %d, want the run's %d", p.Totals.Stored, stats.Stored)
	}

	phases := map[string]int{}
	var prevStart int64
	for _, sp := range p.Phases {
		phases[sp.Name]++
		if sp.DurNS < 0 || sp.StartNS <= 0 {
			t.Errorf("phase %s has start=%d dur=%d, want positive start and nonnegative dur",
				sp.Name, sp.StartNS, sp.DurNS)
		}
		if sp.StartNS < prevStart {
			t.Errorf("phase %s starts at %d, before predecessor %d — spans must be monotone",
				sp.Name, sp.StartNS, prevStart)
		}
		prevStart = sp.StartNS
	}
	for _, want := range []string{"parse", "explore"} {
		if phases[want] == 0 {
			t.Errorf("phase %s missing (got %+v)", want, p.Phases)
		}
	}

	ws := p.Series[0]
	if len(ws.Samples) == 0 {
		t.Fatal("stride-1 sampling recorded no samples")
	}
	// The grid stores far more than 8 states, so the bounded ring must have
	// wrapped, and the retained samples must read oldest-first with the
	// worker's cumulative counters nondecreasing.
	if ws.Dropped == 0 {
		t.Errorf("expected ring overflow with MaxSamples=8 on %d expansions", stats.Stored)
	}
	// At stride 1 the worker samples once per pop, plus the stride-boundary
	// sample before the first counted pop.
	if int64(ws.Dropped+len(ws.Samples)) > p.Totals.Popped+1 {
		t.Errorf("sample accounting %d+%d exceeds %d expansions",
			ws.Dropped, len(ws.Samples), p.Totals.Popped)
	}
	var prev WorkerSample
	for i, s := range ws.Samples {
		if i > 0 && (s.AtNS < prev.AtNS || s.Popped < prev.Popped || s.Transitions < prev.Transitions) {
			t.Fatalf("sample %d not monotone after rotation: %+v then %+v", i, prev, s)
		}
		prev = s
	}
	if prev.Popped == 0 {
		t.Error("final sample has Popped = 0, want the worker's cumulative count")
	}
}

// TestSweepProfileParallel checks the parallel recorder: one ring per
// worker and run-wide steal/contention totals wired to the work-stealing
// frontier and sharded store.
func TestSweepProfileParallel(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{}
	mon.EnableProfile(ProfileConfig{SampleEvery: 1})
	if _, err := c.Explore(Options{Workers: 4, Monitor: mon}, nil); err != nil {
		t.Fatal(err)
	}
	p := mon.Profile()
	if p == nil {
		t.Fatal("Profile() = nil after a monitored parallel run")
	}
	if p.Workers != 4 || len(p.Series) != 4 {
		t.Fatalf("Workers=%d Series=%d, want 4/4", p.Workers, len(p.Series))
	}
	if p.Steals < 0 || p.StoreContention < 0 {
		t.Fatalf("negative totals: steals=%d contention=%d", p.Steals, p.StoreContention)
	}
	total := 0
	for _, ws := range p.Series {
		total += len(ws.Samples)
	}
	if total == 0 {
		t.Error("no worker recorded a sample at stride 1")
	}
}

// TestProfileDisabledRecordsNothing pins the opt-in contract: without
// EnableProfile the monitor hands out the shared no-op closer and Profile
// stays nil even after monitored runs.
func TestProfileDisabledRecordsNothing(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{}
	if mon.ProfileEnabled() {
		t.Fatal("zero-value monitor reports profiling enabled")
	}
	end := mon.BeginPhase("explore")
	end()
	mon.RecordPhase("parse", time.Now(), time.Now())
	if _, err := c.Explore(Options{Monitor: mon}, nil); err != nil {
		t.Fatal(err)
	}
	if p := mon.Profile(); p != nil {
		t.Fatalf("disabled monitor recorded a profile: %+v", p)
	}
}

// TestProfileScrapeDuringSweep hammers the monitor's read side — Snapshot
// and Profile, the paths a live /v1/metrics scrape and profile poll take —
// while a parallel profiled sweep runs. The -race build is the assertion:
// scrapes must never race the single-writer cells or the sampling rings.
func TestProfileScrapeDuringSweep(t *testing.T) {
	n, _, _, _ := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{}
	mon.EnableProfile(ProfileConfig{SampleEvery: 1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = mon.Snapshot()
				if p := mon.Profile(); p != nil {
					for _, ws := range p.Series {
						_ = len(ws.Samples)
					}
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Explore(Options{Workers: 4, Monitor: mon}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if p := mon.Profile(); p == nil || len(p.Series) != 4 {
		t.Fatal("profile missing after concurrent scrapes")
	}
}
