package core

import (
	"fmt"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// engine computes symbolic initial states and successors following UPPAAL
// semantics: delay closure subject to invariants, urgency (urgent locations,
// urgent channels), committed locations, binary and broadcast
// synchronization, and maximal-constant extrapolation.
//
// The engine itself is immutable after construction (safe to share between
// goroutines); all mutable scratch state lives in a succCtx, of which every
// exploration worker owns exactly one.
type engine struct {
	net *ta.Network
	dim int
	// extraLU switches to the coarser Extra_LU abstraction. It is sound
	// for location reachability but NOT for exact clock suprema: dropping
	// the matrix rows of clocks that only appear in lower-bound guards
	// (U = 0) forgets inter-clock orderings and can inflate a measured
	// clock's upper bound (see TestExtraLUInflatesSuprema). The engine
	// therefore defaults to Extra_M; LU is exposed for pure reachability
	// workloads via Checker.SetCoarseExtrapolation.
	extraLU bool
}

func newEngine(net *ta.Network) (*engine, error) {
	if !net.Finalized() {
		return nil, fmt.Errorf("core: network %s must be finalized before analysis", net.Name)
	}
	return &engine{net: net, dim: net.NumClocks()}, nil
}

// succCtx is the per-worker scratch state of the successor engine. The hot
// path writes candidate successors into these buffers and only materializes
// heap objects once a transition is known to fire, so clock-disabled
// transitions (the common case) allocate nothing.
//
// Zone ownership: zone is the current scratch matrix, owned by the ctx. On
// a successful fire it is detached into the new State (which then owns it)
// and replaced from pool. Zones of states that the passed store rejects as
// subsumed must be released back into pool by the explorer.
type succCtx struct {
	pool *dbm.Pool
	zone *dbm.DBM

	// tRows/tCols collect the rows and columns extrapolation loosens, and
	// tGuard the clocks guard tightenings touch, so canonicalization after
	// either re-runs Floyd–Warshall only over the touched set
	// (dbm.CloseRows / dbm.CloseTouched) instead of the full O(n³) pass.
	// Like the scratch zone they are owned by the ctx, reused across fires,
	// and never escape into states or stores — the same recycling rules as
	// pooled zones keep the hot path allocation-free.
	tRows, tCols, tGuard *dbm.Touched

	locs   []ta.LocID      // scratch location vector, len = #processes
	vars   []int64         // scratch variable valuation, len = #variables
	parts  []LabelPart     // scratch label under construction
	guards []ta.Constraint // scratch multi-part guard conjunction

	emitters  []LabelPart // per-channel enabled emit edges
	receivers []LabelPart // per-channel enabled receive edges
	runs      []partRun   // broadcast receiver grouping

	// states is a free list of State objects (with their discrete vectors)
	// released by the explorer via putState. Store entries clone the
	// discrete vectors of admitted states (store.go), so recycling a state
	// can never corrupt the passed store.
	states []*State

	// chunk is a bump allocator for the Label.Parts of fired transitions:
	// stable copies are carved out of large blocks instead of one
	// allocation per transition. Blocks live until the ctx is dropped.
	chunk []LabelPart

	// keepLabels controls whether fired labels get stable Parts copies.
	// Explorations with parent logging on need them (log records keep
	// labels for trace replay, explore.go); trace-free sweeps turn this
	// off and successors nil the Parts instead.
	keepLabels bool
}

// partRun is a contiguous range of ctx.receivers belonging to one process.
type partRun struct{ start, end int }

// newCtx returns a fresh scratch context for one exploration worker.
func (e *engine) newCtx() *succCtx {
	return &succCtx{
		pool:       dbm.NewPool(e.dim),
		zone:       dbm.New(e.dim),
		tRows:      dbm.NewTouched(e.dim),
		tCols:      dbm.NewTouched(e.dim),
		tGuard:     dbm.NewTouched(e.dim),
		locs:       make([]ta.LocID, len(e.net.Procs)),
		vars:       make([]int64, len(e.net.Vars)),
		keepLabels: true,
	}
}

// allocParts returns a stable copy of parts carved from the ctx's chunk
// arena, full-slice-capped so later appends can never bleed into it.
func (ctx *succCtx) allocParts(parts []LabelPart) []LabelPart {
	n := len(parts)
	if cap(ctx.chunk)-len(ctx.chunk) < n {
		ctx.chunk = make([]LabelPart, 0, max(256, n))
	}
	start := len(ctx.chunk)
	ctx.chunk = append(ctx.chunk, parts...)
	return ctx.chunk[start : start+n : start+n]
}

// getState returns a recycled or fresh State with discrete vectors sized
// for the network. The caller must fill Locs, Vars, and Zone.
func (ctx *succCtx) getState() *State {
	if n := len(ctx.states); n > 0 {
		s := ctx.states[n-1]
		ctx.states[n-1] = nil
		ctx.states = ctx.states[:n-1]
		s.key = 0
		s.ref = noRef
		return s
	}
	return &State{
		Locs: make([]ta.LocID, len(ctx.locs)),
		Vars: make([]int64, len(ctx.vars)),
		ref:  noRef,
	}
}

// putState releases a state the explorer no longer references: its zone
// goes back to the DBM pool and the struct (with its discrete vectors) onto
// the free list. The caller must guarantee nothing else aliases the state —
// see the ownership protocol in store.go.
func (ctx *succCtx) putState(s *State) {
	ctx.pool.Put(s.Zone)
	s.Zone = nil
	if len(s.Locs) == len(ctx.locs) && len(s.Vars) == len(ctx.vars) {
		ctx.states = append(ctx.states, s)
	}
}

// initial computes the initial symbolic state: all processes in their initial
// locations, variables at initial values, all clocks zero, then delay-closed
// and extrapolated. The returned state owns its zone (it is not pooled).
func (e *engine) initial() (*State, error) {
	locs := make([]ta.LocID, len(e.net.Procs))
	for i, p := range e.net.Procs {
		locs[i] = p.Init
	}
	vars := e.net.InitialVars()
	z := dbm.New(e.dim)
	if !e.applyInvariants(z, locs, vars) {
		return nil, fmt.Errorf("core: initial state violates an invariant")
	}
	e.closeInPlace(z, locs, vars, dbm.NewTouched(e.dim), dbm.NewTouched(e.dim))
	return &State{Locs: locs, Vars: vars, Zone: z}, nil
}

// succ is one symbolic successor together with the transition that
// produced it and its index in the deterministic enumeration order of
// successors (before any RDFS shuffle). Parent-log records keep only this
// index — replay re-enumerates the parent's successors and selects by it,
// so logs never need label copies.
type succ struct {
	label Label
	state *State
	idx   int32
}

// successors appends every symbolic action successor of s to out. Delay is
// folded into stored states, so no explicit delay successors are produced.
// Labels passed through the candidate pipeline point at ctx scratch and are
// cloned only when a transition actually fires.
func (e *engine) successors(ctx *succCtx, s *State, out []succ) ([]succ, error) {
	anyCommitted := false
	for pi, l := range s.Locs {
		if e.net.Procs[pi].Locations[l].Kind == ta.Committed {
			anyCommitted = true
			break
		}
	}
	// committedOK implements the committed-location rule: when any process
	// is committed, only transitions involving a committed process may fire.
	committedOK := func(parts []LabelPart) bool {
		if !anyCommitted {
			return true
		}
		for _, pt := range parts {
			if e.net.Procs[pt.Proc].Locations[s.Locs[pt.Proc]].Kind == ta.Committed {
				return true
			}
		}
		return false
	}

	base := len(out)
	var err error
	try := func(label Label) {
		if err != nil || !committedOK(label.Parts) {
			return
		}
		var ns *State
		ns, err = e.fire(ctx, s, label)
		if err == nil && ns != nil {
			if ctx.keepLabels {
				label.Parts = ctx.allocParts(label.Parts)
			} else {
				label.Parts = nil // scratch-backed; caller discards labels
			}
			out = append(out, succ{label, ns, int32(len(out) - base)})
		}
	}

	// Internal (tau) transitions.
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(s.Locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir != ta.Tau || !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			ctx.parts = append(ctx.parts[:0], LabelPart{ta.ProcID(pi), ei})
			try(Label{Kind: "tau", Parts: ctx.parts})
		}
	}

	// Synchronizations, channel by channel.
	for ci := range e.net.Chans {
		ch := &e.net.Chans[ci]
		emitters, receivers := e.enabledSyncEdges(ctx, s, ta.ChanID(ci))
		if len(emitters) == 0 {
			continue
		}
		if ch.Kind.IsBroadcast() {
			for _, em := range emitters {
				e.broadcastCombos(ctx, ch, em, receivers, try)
			}
		} else {
			for _, em := range emitters {
				for _, rc := range receivers {
					if rc.Proc == em.Proc {
						continue
					}
					ctx.parts = append(ctx.parts[:0], em, rc)
					try(Label{Kind: "sync", Chan: ch.Name, Parts: ctx.parts})
				}
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, err
}

// enabledSyncEdges collects the data-guard-enabled emit and receive edges on
// channel c in the current discrete state, into ctx scratch. The returned
// slices are valid until the next call and are grouped by process in
// increasing process order.
func (e *engine) enabledSyncEdges(ctx *succCtx, s *State, c ta.ChanID) (emitters, receivers []LabelPart) {
	emitters, receivers = ctx.emitters[:0], ctx.receivers[:0]
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(s.Locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Tau || ed.Sync.Chan != c {
				continue
			}
			if !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			part := LabelPart{ta.ProcID(pi), ei}
			if ed.Sync.Dir == ta.Emit {
				emitters = append(emitters, part)
			} else {
				receivers = append(receivers, part)
			}
		}
	}
	ctx.emitters, ctx.receivers = emitters, receivers
	return emitters, receivers
}

// broadcastCombos enumerates the maximal-participation broadcast
// transitions for one emitter: every process with at least one enabled
// receive edge participates with exactly one of them; processes without
// enabled receive edges are skipped. receivers must be grouped by process
// (as produced by enabledSyncEdges), so the grouping is a single scan over
// contiguous runs instead of a map.
func (e *engine) broadcastCombos(ctx *succCtx, ch *ta.Channel, em LabelPart,
	receivers []LabelPart, try func(Label)) {
	runs := ctx.runs[:0]
	for i := 0; i < len(receivers); {
		j := i
		for j < len(receivers) && receivers[j].Proc == receivers[i].Proc {
			j++
		}
		if receivers[i].Proc != em.Proc {
			runs = append(runs, partRun{i, j})
		}
		i = j
	}
	ctx.runs = runs
	parts := append(ctx.parts[:0], em)
	var rec func(k int)
	rec = func(k int) {
		if k == len(runs) {
			try(Label{Kind: "broadcast", Chan: ch.Name, Parts: parts})
			return
		}
		for x := runs[k].start; x < runs[k].end; x++ {
			parts = append(parts, receivers[x])
			rec(k + 1)
			parts = parts[:len(parts)-1]
		}
	}
	rec(0)
	ctx.parts = parts
}

// fire executes one transition symbolically. It returns (nil, nil) when the
// transition is clock-disabled or leads to an invariant-violating state —
// paths that touch only ctx scratch and allocate nothing. On success the
// scratch zone is detached into the returned state and replaced from the
// pool, so the per-transition allocation cost is one pooled Get (amortized
// zero) plus the discrete-vector clones.
func (e *engine) fire(ctx *succCtx, s *State, label Label) (*State, error) {
	// Quick reject: a guard constraint that alone contradicts the parent
	// zone disables the transition without copying the matrix. This is the
	// common case on dense interleavings, so it runs before any work.
	for _, pt := range label.Parts {
		ed := &e.net.Procs[pt.Proc].Edges[pt.Edge]
		if !ta.ConstraintsFeasible(s.Zone, ed.ClockGuard, s.Vars) {
			return nil, nil
		}
	}
	z := ctx.zone
	z.CopyFrom(s.Zone)
	// Clock guards are evaluated against the pre-transition valuation.
	if !e.applyGuards(ctx, z, label.Parts, s.Vars) {
		return nil, nil
	}
	vars := ctx.vars
	copy(vars, s.Vars)
	for _, pt := range label.Parts {
		ta.ApplyUpdate(e.net.Procs[pt.Proc].Edges[pt.Edge].Update, vars)
	}
	if err := e.net.CheckVarBounds(vars); err != nil {
		return nil, fmt.Errorf("core: on transition %s: %w", label.Format(e.net), err)
	}
	locs := ctx.locs
	copy(locs, s.Locs)
	for _, pt := range label.Parts {
		ed := &e.net.Procs[pt.Proc].Edges[pt.Edge]
		locs[pt.Proc] = ed.Dst
		for _, c := range ed.Frees {
			z.Free(int(c))
		}
		for _, r := range ed.Resets {
			z.Reset(int(r.Clock), r.Value)
		}
	}
	if !e.applyInvariants(z, locs, vars) {
		return nil, nil
	}
	e.closeInPlace(z, locs, vars, ctx.tRows, ctx.tCols)
	ns := ctx.getState()
	copy(ns.Locs, locs)
	copy(ns.Vars, vars)
	ns.Zone = z
	ctx.zone = ctx.pool.Get()
	return ns, nil
}

// applyGuards intersects z with the clock guards of every edge of a label.
// Multi-part labels gather their guards into ctx scratch so the whole
// conjunction is canonicalized as one set.
func (e *engine) applyGuards(ctx *succCtx, z *dbm.DBM, parts []LabelPart, vars []int64) bool {
	if len(parts) == 1 {
		return e.applyGuardSet(ctx, z, e.net.Procs[parts[0].Proc].Edges[parts[0].Edge].ClockGuard, vars)
	}
	gs := ctx.guards[:0]
	for _, pt := range parts {
		gs = append(gs, e.net.Procs[pt.Proc].Edges[pt.Edge].ClockGuard...)
	}
	ctx.guards = gs
	return e.applyGuardSet(ctx, z, gs, vars)
}

// applyGuardSet picks the cheaper of the two exact tightening strategies for
// a guard conjunction: per-constraint single-edge closures (one O(n²) pass
// per constraint), or the batched deferred path (one O(n²) pass per DISTINCT
// touched clock, ta.ApplyConstraintsTouched). The batch only wins when the
// constraints outnumber the distinct clocks they mention — several bounds on
// the same clock pair, or sync parts re-guarding a shared clock; note a
// two-sided guard on one clock is a tie (2 constraints, 2 clocks counting
// the reference), and ties keep the historical per-constraint path. Both
// paths canonicalize the same intersection, so the resulting zone is
// bit-identical either way.
func (e *engine) applyGuardSet(ctx *succCtx, z *dbm.DBM, cs []ta.Constraint, vars []int64) bool {
	if len(cs) <= 1 {
		return ta.ApplyConstraints(z, cs, vars)
	}
	t := ctx.tGuard
	t.Reset()
	for _, c := range cs {
		t.Add(int(c.I))
		t.Add(int(c.J))
	}
	if t.Len() >= len(cs) {
		return ta.ApplyConstraints(z, cs, vars)
	}
	return ta.ApplyConstraintsTouched(z, cs, vars, t)
}

// closeInPlace applies the delay closure (when permitted by urgency),
// re-applies invariants, and extrapolates — producing the canonical stored
// form of a symbolic state in place. rows/cols are the caller's touched-set
// scratch (per-worker in succCtx): extrapolation records the rows and
// columns it loosens there and re-canonicalizes only those (dbm.CloseRows),
// which removes the full Floyd–Warshall from the hot path while staying
// bit-identical to it.
func (e *engine) closeInPlace(z *dbm.DBM, locs []ta.LocID, vars []int64, rows, cols *dbm.Touched) {
	if e.delayAllowed(locs, vars) {
		z.Up()
		// Invariants held before the delay and only constrain from above, so
		// this intersection cannot empty the zone. They are applied one
		// single-edge closure each (dbm.Constrain): invariants are almost
		// always one bound per process on that process's own clock, the
		// distinct-clock shape where batched deferred tightening loses.
		e.applyInvariants(z, locs, vars)
	}
	if e.extraLU {
		z.ExtraLUTouched(e.net.LowerConsts, e.net.UpperConsts, rows, cols)
	} else {
		z.ExtraMTouched(e.net.MaxConsts, rows, cols)
	}
}

// delayAllowed implements the urgency rule: no delay while any process is in
// an urgent or committed location, or any urgent-channel synchronization is
// enabled (data-guard-wise; urgent edges carry no clock guards by
// validation).
func (e *engine) delayAllowed(locs []ta.LocID, vars []int64) bool {
	for pi, l := range locs {
		if k := e.net.Procs[pi].Locations[l].Kind; k == ta.UrgentLoc || k == ta.Committed {
			return false
		}
	}
	for ci := range e.net.Chans {
		ch := &e.net.Chans[ci]
		if !ch.Kind.Urgent() {
			continue
		}
		if ch.Kind == ta.BroadcastUrgent {
			// A broadcast sender never blocks: any enabled emitter forbids
			// delay.
			if e.broadcastEmitEnabled(locs, vars, ta.ChanID(ci)) {
				return false
			}
		} else if e.binaryPairEnabled(locs, vars, ta.ChanID(ci)) {
			return false
		}
	}
	return true
}

// broadcastEmitEnabled reports whether any emit edge on channel c is
// data-guard-enabled in the given discrete state.
func (e *engine) broadcastEmitEnabled(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Emit && ed.Sync.Chan == c && ta.EvalGuard(ed.Guard, vars) {
				return true
			}
		}
	}
	return false
}

// binaryPairEnabled reports whether some emit and receive edge on channel c
// are simultaneously enabled in distinct processes.
func (e *engine) binaryPairEnabled(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	emitSeen, recvSeen := false, false
	var emitProc, recvProc ta.ProcID
	emitMany, recvMany := false, false
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Tau || ed.Sync.Chan != c || !ta.EvalGuard(ed.Guard, vars) {
				continue
			}
			if ed.Sync.Dir == ta.Emit {
				if emitSeen && emitProc != ta.ProcID(pi) {
					emitMany = true
				}
				emitSeen, emitProc = true, ta.ProcID(pi)
			} else {
				if recvSeen && recvProc != ta.ProcID(pi) {
					recvMany = true
				}
				recvSeen, recvProc = true, ta.ProcID(pi)
			}
		}
	}
	if !emitSeen || !recvSeen {
		return false
	}
	// A pair exists unless every enabled emitter and receiver live in the
	// same single process.
	return emitMany || recvMany || emitProc != recvProc
}

// applyInvariants intersects z with the invariant of every current location
// under the given variable valuation, reporting nonemptiness.
func (e *engine) applyInvariants(z *dbm.DBM, locs []ta.LocID, vars []int64) bool {
	for pi, l := range locs {
		if !ta.ApplyConstraints(z, e.net.Procs[pi].Locations[l].Invariant, vars) {
			return false
		}
	}
	return true
}
