package core

import (
	"fmt"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// engine computes symbolic initial states and successors following UPPAAL
// semantics: delay closure subject to invariants, urgency (urgent locations,
// urgent channels), committed locations, binary and broadcast
// synchronization, and maximal-constant extrapolation.
//
// The engine itself is immutable after construction (safe to share between
// goroutines); all mutable scratch state lives in a succCtx, of which every
// exploration worker owns exactly one.
type engine struct {
	net *ta.Network
	dim int
	// extraLU switches to the coarser Extra_LU abstraction. It is sound
	// for location reachability but NOT for exact clock suprema: dropping
	// the matrix rows of clocks that only appear in lower-bound guards
	// (U = 0) forgets inter-clock orderings and can inflate a measured
	// clock's upper bound (see TestExtraLUInflatesSuprema). The engine
	// therefore defaults to Extra_M; LU is exposed for pure reachability
	// workloads via Checker.SetCoarseExtrapolation.
	extraLU bool
	// legacyScan routes successor enumeration and the urgency test through
	// the pre-index per-channel rescan (succ_scan.go). Test-only: the
	// differential oracle drives both enumerators over one model and
	// asserts bit-identical results (succ_index_test.go).
	legacyScan bool

	// emOff/rcOff are the per-channel segment starts of the enabled-edge
	// buckets inside succCtx.chanBuf: channel c's enabled emitters occupy
	// chanBuf[emOff[c]:], its receivers chanBuf[rcOff[c]:]. Segment sizes
	// come from the network's per-channel edge counts — an upper bound on
	// simultaneously enabled edges — so one flat buffer of bucketLen parts,
	// allocated once per succCtx, holds every bucket with no per-fire
	// growth.
	emOff, rcOff []int32
	bucketLen    int
}

func newEngine(net *ta.Network) (*engine, error) {
	if !net.Finalized() {
		return nil, fmt.Errorf("core: network %s must be finalized before analysis", net.Name)
	}
	e := &engine{net: net, dim: net.NumClocks()}
	nChans := len(net.Chans)
	offs := make([]int32, 2*nChans)
	e.emOff = offs[:nChans:nChans]
	e.rcOff = offs[nChans:]
	off := int32(0)
	for c := 0; c < nChans; c++ {
		emit, recv := net.ChanEdgeCounts(ta.ChanID(c))
		e.emOff[c] = off
		off += int32(emit)
		e.rcOff[c] = off
		off += int32(recv)
	}
	e.bucketLen = int(off)
	return e, nil
}

// succCtx is the per-worker scratch state of the successor engine. The hot
// path writes candidate successors into these buffers and only materializes
// heap objects once a transition is known to fire, so clock-disabled
// transitions (the common case) allocate nothing.
//
// Zone ownership: zone is the current scratch matrix, owned by the ctx. On
// a successful fire it is detached into the new State (which then owns it)
// and replaced from pool. Zones of states that the passed store rejects as
// subsumed must be released back into pool by the explorer.
type succCtx struct {
	pool *dbm.Pool
	zone *dbm.DBM

	// tRows/tCols collect the rows and columns extrapolation loosens, and
	// tGuard the clocks guard tightenings touch, so canonicalization after
	// either re-runs Floyd–Warshall only over the touched set
	// (dbm.CloseRows / dbm.CloseTouched) instead of the full O(n³) pass.
	// Like the scratch zone they are owned by the ctx, reused across fires,
	// and never escape into states or stores — the same recycling rules as
	// pooled zones keep the hot path allocation-free.
	tRows, tCols, tGuard *dbm.Touched

	locs   []ta.LocID      // scratch location vector, len = #processes
	vars   []int64         // scratch variable valuation, len = #variables
	parts  []LabelPart     // scratch label under construction
	guards []ta.Constraint // scratch multi-part guard conjunction

	// chanBuf/chanLen/active are the per-channel enabled-edge buckets of the
	// one-pass collection (engine.successors): chanBuf is one flat buffer
	// holding channel c's enabled emitters at engine.emOff[c] and receivers
	// at engine.rcOff[c], chanLen[2c]/chanLen[2c+1] are the bucket fills,
	// and active lists the channels touched by the current state. All three
	// are sized once from the compiled index (newCtx) and reused across
	// fires — bucketing allocates nothing, ever.
	chanBuf []LabelPart
	chanLen []int32
	active  []int32

	emitters  []LabelPart // legacy scan enumerator: per-channel enabled emit edges
	receivers []LabelPart // legacy scan enumerator: per-channel enabled receive edges
	runs      []partRun   // broadcast receiver grouping

	// states is a free list of State objects (with their discrete vectors)
	// released by the explorer via putState. Store entries clone the
	// discrete vectors of admitted states (store.go), so recycling a state
	// can never corrupt the passed store.
	states []*State

	// chunk is a bump allocator for the Label.Parts of fired transitions:
	// stable copies are carved out of large blocks instead of one
	// allocation per transition. Blocks live until the ctx is dropped.
	chunk []LabelPart

	// keepLabels controls whether fired labels get stable Parts copies.
	// Explorations with parent logging on need them (log records keep
	// labels for trace replay, explore.go); trace-free sweeps turn this
	// off and successors nil the Parts instead.
	keepLabels bool
}

// partRun is a contiguous range of ctx.receivers belonging to one process.
type partRun struct{ start, end int }

// newCtx returns a fresh scratch context for one exploration worker.
func (e *engine) newCtx() *succCtx {
	nChans := len(e.net.Chans)
	ints := make([]int32, 3*nChans)
	return &succCtx{
		pool:       dbm.NewPool(e.dim),
		zone:       dbm.New(e.dim),
		tRows:      dbm.NewTouched(e.dim),
		tCols:      dbm.NewTouched(e.dim),
		tGuard:     dbm.NewTouched(e.dim),
		locs:       make([]ta.LocID, len(e.net.Procs)),
		vars:       make([]int64, len(e.net.Vars)),
		chanBuf:    make([]LabelPart, e.bucketLen),
		chanLen:    ints[: 2*nChans : 2*nChans],
		active:     ints[2*nChans : 2*nChans : 3*nChans],
		keepLabels: true,
	}
}

// allocParts returns a stable copy of parts carved from the ctx's chunk
// arena, full-slice-capped so later appends can never bleed into it.
func (ctx *succCtx) allocParts(parts []LabelPart) []LabelPart {
	n := len(parts)
	if cap(ctx.chunk)-len(ctx.chunk) < n {
		ctx.chunk = make([]LabelPart, 0, max(256, n))
	}
	start := len(ctx.chunk)
	ctx.chunk = append(ctx.chunk, parts...)
	return ctx.chunk[start : start+n : start+n]
}

// getState returns a recycled or fresh State with discrete vectors sized
// for the network. The caller must fill Locs, Vars, and Zone.
func (ctx *succCtx) getState() *State {
	if n := len(ctx.states); n > 0 {
		s := ctx.states[n-1]
		ctx.states[n-1] = nil
		ctx.states = ctx.states[:n-1]
		s.key = 0
		s.ref = noRef
		return s
	}
	return &State{
		Locs: make([]ta.LocID, len(ctx.locs)),
		Vars: make([]int64, len(ctx.vars)),
		ref:  noRef,
	}
}

// putState releases a state the explorer no longer references: its zone
// goes back to the DBM pool and the struct (with its discrete vectors) onto
// the free list. The caller must guarantee nothing else aliases the state —
// see the ownership protocol in store.go.
func (ctx *succCtx) putState(s *State) {
	ctx.pool.Put(s.Zone)
	s.Zone = nil
	if len(s.Locs) == len(ctx.locs) && len(s.Vars) == len(ctx.vars) {
		ctx.states = append(ctx.states, s)
	}
}

// initial computes the initial symbolic state: all processes in their initial
// locations, variables at initial values, all clocks zero, then delay-closed
// and extrapolated. The returned state owns its zone (it is not pooled).
func (e *engine) initial() (*State, error) {
	locs := make([]ta.LocID, len(e.net.Procs))
	for i, p := range e.net.Procs {
		locs[i] = p.Init
	}
	vars := e.net.InitialVars()
	z := dbm.New(e.dim)
	if !e.applyInvariants(z, locs, vars) {
		return nil, fmt.Errorf("core: initial state violates an invariant")
	}
	e.closeInPlace(z, locs, vars, dbm.NewTouched(e.dim), dbm.NewTouched(e.dim))
	return &State{Locs: locs, Vars: vars, Zone: z}, nil
}

// succ is one symbolic successor together with the transition that
// produced it and its index in the deterministic enumeration order of
// successors (before any RDFS shuffle). Parent-log records keep only this
// index — replay re-enumerates the parent's successors and selects by it,
// so logs never need label copies.
type succ struct {
	label Label
	state *State
	idx   int32
}

// successors appends every symbolic action successor of s to out. Delay is
// folded into stored states, so no explicit delay successors are produced.
// Labels passed through the candidate pipeline point at ctx scratch and are
// cloned only when a transition actually fires.
//
// Enumeration is ONE pass over the location vector driven by the compiled
// transition index (ta.Finalize): each location contributes its tau edges
// (fired immediately — they precede every synchronization in the
// deterministic order) and its sync edges, whose data guard is evaluated
// exactly once before the enabled ones are bucketed into the per-channel
// scratch segments of ctx.chanBuf. Rendezvous pairs and broadcast combos are
// then enumerated over only the populated channels, in ascending channel
// order. The resulting succ stream is bit-identical to the legacy
// per-channel rescan (successorsScan), which the differential oracle pins.
func (e *engine) successors(ctx *succCtx, s *State, out []succ) ([]succ, error) {
	if e.legacyScan {
		return e.successorsScan(ctx, s, out)
	}
	// Reset the buckets the previous enumeration touched. Doing it on entry
	// (rather than exit) keeps the scratch self-healing across error paths.
	for _, ci := range ctx.active {
		ctx.chanLen[2*ci] = 0
		ctx.chanLen[2*ci+1] = 0
	}
	ctx.active = ctx.active[:0]

	anyCommitted := false
	for pi, l := range s.Locs {
		if e.net.Procs[pi].CommittedLoc(l) {
			anyCommitted = true
			break
		}
	}
	// committedOK implements the committed-location rule: when any process
	// is committed, only transitions involving a committed process may fire.
	committedOK := func(parts []LabelPart) bool {
		if !anyCommitted {
			return true
		}
		for _, pt := range parts {
			if e.net.Procs[pt.Proc].CommittedLoc(s.Locs[pt.Proc]) {
				return true
			}
		}
		return false
	}

	base := len(out)
	var err error
	try := func(label Label) {
		if err != nil || !committedOK(label.Parts) {
			return
		}
		var ns *State
		ns, err = e.fire(ctx, s, label)
		if err == nil && ns != nil {
			if ctx.keepLabels {
				label.Parts = ctx.allocParts(label.Parts)
			} else {
				label.Parts = nil // scratch-backed; caller discards labels
			}
			out = append(out, succ{label, ns, int32(len(out) - base)})
		}
	}

	// The single pass: tau fires and sync bucketing per process. Buckets
	// fill in pass order, so within every channel the parts stay grouped by
	// process in increasing process order — broadcastCombos' run-grouping
	// depends on that.
	for pi, p := range e.net.Procs {
		l := s.Locs[pi]
		for _, ei := range p.TauEdges(l) {
			ed := &p.Edges[ei]
			if !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			ctx.parts = append(ctx.parts[:0], LabelPart{ta.ProcID(pi), int(ei)})
			try(Label{Kind: LabelTau, Parts: ctx.parts})
		}
		for _, se := range p.SyncEdges(l) {
			if !ta.EvalGuard(p.Edges[se.Edge].Guard, s.Vars) {
				continue
			}
			ci := int32(se.Chan)
			if ctx.chanLen[2*ci] == 0 && ctx.chanLen[2*ci+1] == 0 {
				ctx.active = append(ctx.active, ci)
			}
			part := LabelPart{ta.ProcID(pi), int(se.Edge)}
			if se.Dir == ta.Emit {
				ctx.chanBuf[e.emOff[ci]+ctx.chanLen[2*ci]] = part
				ctx.chanLen[2*ci]++
			} else {
				ctx.chanBuf[e.rcOff[ci]+ctx.chanLen[2*ci+1]] = part
				ctx.chanLen[2*ci+1]++
			}
		}
	}
	if err != nil {
		return out, err
	}

	// Channels were appended in first-touch (location-vector) order; the
	// enumeration contract wants ascending channel order. The populated set
	// is small, so an insertion sort beats anything with allocation.
	act := ctx.active
	for i := 1; i < len(act); i++ {
		for j := i; j > 0 && act[j] < act[j-1]; j-- {
			act[j], act[j-1] = act[j-1], act[j]
		}
	}

	// Synchronizations over only the populated channels.
	for _, ci := range act {
		em := ctx.chanBuf[e.emOff[ci] : e.emOff[ci]+ctx.chanLen[2*ci]]
		if len(em) == 0 {
			continue
		}
		rc := ctx.chanBuf[e.rcOff[ci] : e.rcOff[ci]+ctx.chanLen[2*ci+1]]
		ch := &e.net.Chans[ci]
		if ch.Kind.IsBroadcast() {
			for _, emp := range em {
				e.broadcastCombos(ctx, ch, emp, rc, try)
			}
		} else {
			for _, emp := range em {
				for _, rcp := range rc {
					if rcp.Proc == emp.Proc {
						continue
					}
					ctx.parts = append(ctx.parts[:0], emp, rcp)
					try(Label{Kind: LabelSync, Chan: ch.Name, Parts: ctx.parts})
				}
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, err
}

// broadcastCombos enumerates the maximal-participation broadcast
// transitions for one emitter: every process with at least one enabled
// receive edge participates with exactly one of them; processes without
// enabled receive edges are skipped. receivers must be grouped by process
// (as produced by enabledSyncEdges), so the grouping is a single scan over
// contiguous runs instead of a map.
func (e *engine) broadcastCombos(ctx *succCtx, ch *ta.Channel, em LabelPart,
	receivers []LabelPart, try func(Label)) {
	runs := ctx.runs[:0]
	for i := 0; i < len(receivers); {
		j := i
		for j < len(receivers) && receivers[j].Proc == receivers[i].Proc {
			j++
		}
		if receivers[i].Proc != em.Proc {
			runs = append(runs, partRun{i, j})
		}
		i = j
	}
	ctx.runs = runs
	parts := append(ctx.parts[:0], em)
	var rec func(k int)
	rec = func(k int) {
		if k == len(runs) {
			try(Label{Kind: LabelBroadcast, Chan: ch.Name, Parts: parts})
			return
		}
		for x := runs[k].start; x < runs[k].end; x++ {
			parts = append(parts, receivers[x])
			rec(k + 1)
			parts = parts[:len(parts)-1]
		}
	}
	rec(0)
	ctx.parts = parts
}

// fire executes one transition symbolically. It returns (nil, nil) when the
// transition is clock-disabled or leads to an invariant-violating state —
// paths that touch only ctx scratch and allocate nothing. On success the
// scratch zone is detached into the returned state and replaced from the
// pool, so the per-transition allocation cost is one pooled Get (amortized
// zero) plus the discrete-vector clones.
func (e *engine) fire(ctx *succCtx, s *State, label Label) (*State, error) {
	// Quick reject: a guard constraint that alone contradicts the parent
	// zone disables the transition without copying the matrix. This is the
	// common case on dense interleavings, so it runs before any work.
	for _, pt := range label.Parts {
		ed := &e.net.Procs[pt.Proc].Edges[pt.Edge]
		if !ta.ConstraintsFeasible(s.Zone, ed.ClockGuard, s.Vars) {
			return nil, nil
		}
	}
	z := ctx.zone
	z.CopyFrom(s.Zone)
	// Clock guards are evaluated against the pre-transition valuation.
	if !e.applyGuards(ctx, z, label.Parts, s.Vars) {
		return nil, nil
	}
	vars := ctx.vars
	copy(vars, s.Vars)
	for _, pt := range label.Parts {
		ta.ApplyUpdate(e.net.Procs[pt.Proc].Edges[pt.Edge].Update, vars)
	}
	if err := e.net.CheckVarBounds(vars); err != nil {
		return nil, fmt.Errorf("core: on transition %s: %w", label.Format(e.net), err)
	}
	locs := ctx.locs
	copy(locs, s.Locs)
	for _, pt := range label.Parts {
		ed := &e.net.Procs[pt.Proc].Edges[pt.Edge]
		locs[pt.Proc] = ed.Dst
		for _, c := range ed.Frees {
			z.Free(int(c))
		}
		for _, r := range ed.Resets {
			z.Reset(int(r.Clock), r.Value)
		}
	}
	if !e.applyInvariants(z, locs, vars) {
		return nil, nil
	}
	e.closeInPlace(z, locs, vars, ctx.tRows, ctx.tCols)
	ns := ctx.getState()
	copy(ns.Locs, locs)
	copy(ns.Vars, vars)
	ns.Zone = z
	ctx.zone = ctx.pool.Get()
	return ns, nil
}

// applyGuards intersects z with the clock guards of every edge of a label.
// Multi-part labels gather their guards into ctx scratch so the whole
// conjunction is canonicalized as one set.
func (e *engine) applyGuards(ctx *succCtx, z *dbm.DBM, parts []LabelPart, vars []int64) bool {
	if len(parts) == 1 {
		return e.applyGuardSet(ctx, z, e.net.Procs[parts[0].Proc].Edges[parts[0].Edge].ClockGuard, vars)
	}
	gs := ctx.guards[:0]
	for _, pt := range parts {
		gs = append(gs, e.net.Procs[pt.Proc].Edges[pt.Edge].ClockGuard...)
	}
	ctx.guards = gs
	return e.applyGuardSet(ctx, z, gs, vars)
}

// applyGuardSet picks the cheaper of the two exact tightening strategies for
// a guard conjunction: per-constraint single-edge closures (one O(n²) pass
// per constraint), or the batched deferred path (one O(n²) pass per DISTINCT
// touched clock, ta.ApplyConstraintsTouched). The batch only wins when the
// constraints outnumber the distinct clocks they mention — several bounds on
// the same clock pair, or sync parts re-guarding a shared clock; note a
// two-sided guard on one clock is a tie (2 constraints, 2 clocks counting
// the reference), and ties keep the historical per-constraint path. Both
// paths canonicalize the same intersection, so the resulting zone is
// bit-identical either way.
func (e *engine) applyGuardSet(ctx *succCtx, z *dbm.DBM, cs []ta.Constraint, vars []int64) bool {
	if len(cs) <= 1 {
		return ta.ApplyConstraints(z, cs, vars)
	}
	t := ctx.tGuard
	t.Reset()
	for _, c := range cs {
		t.Add(int(c.I))
		t.Add(int(c.J))
	}
	if t.Len() >= len(cs) {
		return ta.ApplyConstraints(z, cs, vars)
	}
	return ta.ApplyConstraintsTouched(z, cs, vars, t)
}

// closeInPlace applies the delay closure (when permitted by urgency),
// re-applies invariants, and extrapolates — producing the canonical stored
// form of a symbolic state in place. rows/cols are the caller's touched-set
// scratch (per-worker in succCtx): extrapolation records the rows and
// columns it loosens there and re-canonicalizes only those (dbm.CloseRows),
// which removes the full Floyd–Warshall from the hot path while staying
// bit-identical to it.
func (e *engine) closeInPlace(z *dbm.DBM, locs []ta.LocID, vars []int64, rows, cols *dbm.Touched) {
	if e.delayAllowed(locs, vars) {
		z.Up()
		// Invariants held before the delay and only constrain from above, so
		// this intersection cannot empty the zone. They are applied one
		// single-edge closure each (dbm.Constrain): invariants are almost
		// always one bound per process on that process's own clock, the
		// distinct-clock shape where batched deferred tightening loses.
		e.applyInvariants(z, locs, vars)
	}
	if e.extraLU {
		z.ExtraLUTouched(e.net.LowerConsts, e.net.UpperConsts, rows, cols)
	} else {
		z.ExtraMTouched(e.net.MaxConsts, rows, cols)
	}
}

// delayAllowed implements the urgency rule: no delay while any process is in
// an urgent or committed location, or any urgent-channel synchronization is
// enabled (data-guard-wise; urgent edges carry no clock guards by
// validation). The compiled index narrows the channel test to the urgent
// channels and, per channel, to the processes that actually own edges on it.
func (e *engine) delayAllowed(locs []ta.LocID, vars []int64) bool {
	if e.legacyScan {
		return e.delayAllowedScan(locs, vars)
	}
	for pi, l := range locs {
		if e.net.Procs[pi].NoDelayLoc(l) {
			return false
		}
	}
	for _, ci := range e.net.UrgentChans() {
		if e.net.Chans[ci].Kind == ta.BroadcastUrgent {
			// A broadcast sender never blocks: any enabled emitter forbids
			// delay.
			if e.urgentEmitEnabled(locs, vars, ci) {
				return false
			}
		} else if e.urgentPairEnabled(locs, vars, ci) {
			return false
		}
	}
	return true
}

// syncEnabled reports whether process pi, at location l, has a data-guard-
// enabled edge on channel c in direction d.
func (e *engine) syncEnabled(pi ta.ProcID, l ta.LocID, c ta.ChanID, d ta.SyncDir, vars []int64) bool {
	p := e.net.Procs[pi]
	for _, se := range p.SyncEdges(l) {
		if se.Chan == c && se.Dir == d && ta.EvalGuard(p.Edges[se.Edge].Guard, vars) {
			return true
		}
	}
	return false
}

// urgentEmitEnabled reports whether any emit edge on channel c is
// data-guard-enabled, visiting only the processes that own emit edges on c.
func (e *engine) urgentEmitEnabled(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	for _, pi := range e.net.ChanEmitProcs(c) {
		if e.syncEnabled(pi, locs[pi], c, ta.Emit, vars) {
			return true
		}
	}
	return false
}

// urgentPairEnabled reports whether some emit and receive edge on channel c
// are simultaneously enabled in distinct processes, visiting only the
// channel's participants.
func (e *engine) urgentPairEnabled(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	emitSeen, emitMany := false, false
	var emitProc ta.ProcID
	for _, pi := range e.net.ChanEmitProcs(c) {
		if !e.syncEnabled(pi, locs[pi], c, ta.Emit, vars) {
			continue
		}
		if emitSeen {
			emitMany = true
			break
		}
		emitSeen, emitProc = true, pi
	}
	if !emitSeen {
		return false
	}
	recvSeen, recvMany := false, false
	var recvProc ta.ProcID
	for _, pi := range e.net.ChanRecvProcs(c) {
		if !e.syncEnabled(pi, locs[pi], c, ta.Recv, vars) {
			continue
		}
		if recvSeen {
			recvMany = true
			break
		}
		recvSeen, recvProc = true, pi
	}
	if !recvSeen {
		return false
	}
	// A pair exists unless every enabled emitter and receiver live in the
	// same single process.
	return emitMany || recvMany || emitProc != recvProc
}

// applyInvariants intersects z with the invariant of every current location
// under the given variable valuation, reporting nonemptiness.
func (e *engine) applyInvariants(z *dbm.DBM, locs []ta.LocID, vars []int64) bool {
	for pi, l := range locs {
		if !ta.ApplyConstraints(z, e.net.Procs[pi].Locations[l].Invariant, vars) {
			return false
		}
	}
	return true
}
