package core

import (
	"fmt"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// engine computes symbolic initial states and successors following UPPAAL
// semantics: delay closure subject to invariants, urgency (urgent locations,
// urgent channels), committed locations, binary and broadcast
// synchronization, and maximal-constant extrapolation.
type engine struct {
	net *ta.Network
	dim int
	// extraLU switches to the coarser Extra_LU abstraction. It is sound
	// for location reachability but NOT for exact clock suprema: dropping
	// the matrix rows of clocks that only appear in lower-bound guards
	// (U = 0) forgets inter-clock orderings and can inflate a measured
	// clock's upper bound (see TestExtraLUInflatesSuprema). The engine
	// therefore defaults to Extra_M; LU is exposed for pure reachability
	// workloads via Checker.SetCoarseExtrapolation.
	extraLU bool
}

func newEngine(net *ta.Network) (*engine, error) {
	if !net.Finalized() {
		return nil, fmt.Errorf("core: network %s must be finalized before analysis", net.Name)
	}
	return &engine{net: net, dim: net.NumClocks()}, nil
}

// initial computes the initial symbolic state: all processes in their initial
// locations, variables at initial values, all clocks zero, then delay-closed
// and extrapolated.
func (e *engine) initial() (*State, error) {
	locs := make([]ta.LocID, len(e.net.Procs))
	for i, p := range e.net.Procs {
		locs[i] = p.Init
	}
	vars := e.net.InitialVars()
	z := dbm.New(e.dim)
	if !e.applyInvariants(z, locs, vars) {
		return nil, fmt.Errorf("core: initial state violates an invariant")
	}
	return e.close(z, locs, vars), nil
}

// succ is one symbolic successor together with the transition that
// produced it.
type succ struct {
	label Label
	state *State
}

// successors appends every symbolic action successor of s to out. Delay is
// folded into stored states, so no explicit delay successors are produced.
func (e *engine) successors(s *State, out []succ) ([]succ, error) {
	anyCommitted := false
	for pi, l := range s.Locs {
		if e.net.Procs[pi].Locations[l].Kind == ta.Committed {
			anyCommitted = true
			break
		}
	}
	// committedOK implements the committed-location rule: when any process
	// is committed, only transitions involving a committed process may fire.
	committedOK := func(parts []LabelPart) bool {
		if !anyCommitted {
			return true
		}
		for _, pt := range parts {
			if e.net.Procs[pt.Proc].Locations[s.Locs[pt.Proc]].Kind == ta.Committed {
				return true
			}
		}
		return false
	}

	var err error
	try := func(label Label) {
		if err != nil || !committedOK(label.Parts) {
			return
		}
		var ns *State
		ns, err = e.fire(s, label)
		if err == nil && ns != nil {
			out = append(out, succ{label, ns})
		}
	}

	// Internal (tau) transitions.
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(s.Locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir != ta.Tau || !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			try(Label{Kind: "tau", Parts: []LabelPart{{ta.ProcID(pi), ei}}})
		}
	}

	// Synchronizations, channel by channel.
	for ci := range e.net.Chans {
		ch := &e.net.Chans[ci]
		emitters, receivers := e.enabledSyncEdges(s, ta.ChanID(ci))
		if len(emitters) == 0 {
			continue
		}
		if ch.Kind.IsBroadcast() {
			for _, em := range emitters {
				e.broadcastCombos(s, ch, em, receivers, try)
			}
		} else {
			for _, em := range emitters {
				for _, rc := range receivers {
					if rc.Proc == em.Proc {
						continue
					}
					try(Label{Kind: "sync", Chan: ch.Name,
						Parts: []LabelPart{em, rc}})
				}
			}
		}
		if err != nil {
			return out, err
		}
	}
	return out, err
}

// enabledSyncEdges collects the data-guard-enabled emit and receive edges on
// channel c in the current discrete state.
func (e *engine) enabledSyncEdges(s *State, c ta.ChanID) (emitters, receivers []LabelPart) {
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(s.Locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Tau || ed.Sync.Chan != c {
				continue
			}
			if !ta.EvalGuard(ed.Guard, s.Vars) {
				continue
			}
			part := LabelPart{ta.ProcID(pi), ei}
			if ed.Sync.Dir == ta.Emit {
				emitters = append(emitters, part)
			} else {
				receivers = append(receivers, part)
			}
		}
	}
	return emitters, receivers
}

// broadcastCombos enumerates the maximal-participation broadcast
// transitions for one emitter: every process with at least one enabled
// receive edge participates with exactly one of them; processes without
// enabled receive edges are skipped.
func (e *engine) broadcastCombos(s *State, ch *ta.Channel, em LabelPart,
	receivers []LabelPart, try func(Label)) {
	// Group enabled receive edges by process, excluding the emitter.
	perProc := make(map[ta.ProcID][]LabelPart)
	var order []ta.ProcID
	for _, rc := range receivers {
		if rc.Proc == em.Proc {
			continue
		}
		if _, seen := perProc[rc.Proc]; !seen {
			order = append(order, rc.Proc)
		}
		perProc[rc.Proc] = append(perProc[rc.Proc], rc)
	}
	parts := make([]LabelPart, 0, len(order)+1)
	parts = append(parts, em)
	var rec func(i int)
	rec = func(i int) {
		if i == len(order) {
			label := Label{Kind: "broadcast", Chan: ch.Name,
				Parts: append([]LabelPart(nil), parts...)}
			try(label)
			return
		}
		for _, rc := range perProc[order[i]] {
			parts = append(parts, rc)
			rec(i + 1)
			parts = parts[:len(parts)-1]
		}
	}
	rec(0)
}

// fire executes one transition symbolically. It returns (nil, nil) when the
// transition is clock-disabled or leads to an invariant-violating state.
func (e *engine) fire(s *State, label Label) (*State, error) {
	z := s.Zone.Copy()
	for _, pt := range label.Parts {
		ed := &e.net.Procs[pt.Proc].Edges[pt.Edge]
		// Clock guards are evaluated against the pre-transition valuation.
		if !ta.ApplyConstraints(z, ed.ClockGuard, s.Vars) {
			return nil, nil
		}
	}
	vars := append([]int64(nil), s.Vars...)
	for _, pt := range label.Parts {
		ta.ApplyUpdate(e.net.Procs[pt.Proc].Edges[pt.Edge].Update, vars)
	}
	if err := e.net.CheckVarBounds(vars); err != nil {
		return nil, fmt.Errorf("core: on transition %s: %w", label.Format(e.net), err)
	}
	locs := append([]ta.LocID(nil), s.Locs...)
	for _, pt := range label.Parts {
		ed := &e.net.Procs[pt.Proc].Edges[pt.Edge]
		locs[pt.Proc] = ed.Dst
		for _, c := range ed.Frees {
			z.Free(int(c))
		}
		for _, r := range ed.Resets {
			z.Reset(int(r.Clock), r.Value)
		}
	}
	if !e.applyInvariants(z, locs, vars) {
		return nil, nil
	}
	return e.close(z, locs, vars), nil
}

// close applies the delay closure (when permitted by urgency), re-applies
// invariants, and extrapolates — producing the canonical stored form of a
// symbolic state.
func (e *engine) close(z *dbm.DBM, locs []ta.LocID, vars []int64) *State {
	if e.delayAllowed(locs, vars) {
		z.Up()
		// Invariants held before the delay and only constrain from above, so
		// this intersection cannot empty the zone.
		e.applyInvariants(z, locs, vars)
	}
	if e.extraLU {
		z.ExtraLU(e.net.LowerConsts, e.net.UpperConsts)
	} else {
		z.ExtraM(e.net.MaxConsts)
	}
	return &State{Locs: locs, Vars: vars, Zone: z}
}

// delayAllowed implements the urgency rule: no delay while any process is in
// an urgent or committed location, or any urgent-channel synchronization is
// enabled (data-guard-wise; urgent edges carry no clock guards by
// validation).
func (e *engine) delayAllowed(locs []ta.LocID, vars []int64) bool {
	for pi, l := range locs {
		if k := e.net.Procs[pi].Locations[l].Kind; k == ta.UrgentLoc || k == ta.Committed {
			return false
		}
	}
	for ci := range e.net.Chans {
		ch := &e.net.Chans[ci]
		if !ch.Kind.Urgent() {
			continue
		}
		if ch.Kind == ta.BroadcastUrgent {
			// A broadcast sender never blocks: any enabled emitter forbids
			// delay.
			if e.broadcastEmitEnabled(locs, vars, ta.ChanID(ci)) {
				return false
			}
		} else if e.binaryPairEnabled(locs, vars, ta.ChanID(ci)) {
			return false
		}
	}
	return true
}

// broadcastEmitEnabled reports whether any emit edge on channel c is
// data-guard-enabled in the given discrete state.
func (e *engine) broadcastEmitEnabled(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Emit && ed.Sync.Chan == c && ta.EvalGuard(ed.Guard, vars) {
				return true
			}
		}
	}
	return false
}

// binaryPairEnabled reports whether some emit and receive edge on channel c
// are simultaneously enabled in distinct processes.
func (e *engine) binaryPairEnabled(locs []ta.LocID, vars []int64, c ta.ChanID) bool {
	var emitProcs, recvProcs []ta.ProcID
	for pi, p := range e.net.Procs {
		for _, ei := range p.OutEdges(locs[pi]) {
			ed := &p.Edges[ei]
			if ed.Sync.Dir == ta.Tau || ed.Sync.Chan != c || !ta.EvalGuard(ed.Guard, vars) {
				continue
			}
			if ed.Sync.Dir == ta.Emit {
				emitProcs = append(emitProcs, ta.ProcID(pi))
			} else {
				recvProcs = append(recvProcs, ta.ProcID(pi))
			}
		}
	}
	for _, ep := range emitProcs {
		for _, rp := range recvProcs {
			if ep != rp {
				return true
			}
		}
	}
	return false
}

// applyInvariants intersects z with the invariant of every current location
// under the given variable valuation, reporting nonemptiness.
func (e *engine) applyInvariants(z *dbm.DBM, locs []ta.LocID, vars []int64) bool {
	for pi, l := range locs {
		if !ta.ApplyConstraints(z, e.net.Procs[pi].Locations[l].Invariant, vars) {
			return false
		}
	}
	return true
}
