package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// ErrCanceled reports an exploration stopped early through Options.Cancel.
// The accompanying Stats are the partial effort up to the abort.
var ErrCanceled = errors.New("core: exploration canceled")

// ErrDeadlineExceeded reports an exploration stopped early because
// Options.Deadline passed. The accompanying Stats are the partial effort up
// to the abort.
var ErrDeadlineExceeded = errors.New("core: exploration deadline exceeded")

// abortCheckMask throttles the cancellation/deadline check in the worker
// loop: every (mask+1)-th expansion polls the cancel channel and the clock,
// so an abort lands within a bounded number of expansions while the hot path
// stays branch-cheap when neither is configured.
const abortCheckMask = 31

// This file is the unified exploration engine. Sequential and parallel runs
// share one worker loop (explorer.run), one statistics path, and one trace
// mechanism; they differ only in the frontier that schedules waiting states
// and the passed-state store behind it:
//
//   - Workers <= 1: a listFrontier (BFS/DFS/RDFS discipline) over the
//     unsharded store, executed inline on the calling goroutine.
//   - Workers > 1: a dequeFrontier of Chase–Lev work-stealing deques
//     (wsqueue.go) over the sharded pstore, executed by that many worker
//     goroutines.
//
// # Parallel trace reconstruction
//
// Trace queries used to be pinned to the sequential explorer because only it
// kept an arena of live parent states. The unified engine instead keeps a
// shared trace arena of per-worker append-only parent logs: when worker w
// admits a state, it appends one record (parent ref, discrete key,
// successor index) to its own log and stamps the state with the record's
// ref (worker index in the high bits, log index in the low bits). Records
// hold three packed integers only — NEVER zone pointers, State pointers, or
// label copies — so state recycling (succCtx.putState) stays sound and the
// zone-ownership protocol of store.go is untouched. The records live in
// fixed-size segment arrays (logSeg): 20 bytes per admitted state instead
// of one 80-byte record struct with a retained label, which is what makes
// always-on trace logging cheap enough for the big sweeps.
//
// When a run stops at a state (visitor match or deadlock), the trace is
// stitched back across the logs: parent refs are followed from the stop
// record to the root, and the path is re-fired from the initial state by
// re-enumerating each parent's successors through the deterministic engine
// and selecting the recorded index, materializing a fresh, caller-owned
// symbolic state (and label) for every step. Replay is exact: enumeration
// order is a pure function of the parent state, each recorded index was
// captured before any RDFS shuffle, and each parent replayed is bit-identical
// to the original — so the stitched trace is the very path the exploration
// took.
//
// Log ownership rule: worker w appends only to logs[w] while the run is
// live; stitch-up happens strictly after the worker barrier (or, for the
// initial state, before workers start). No locks are needed.

const (
	// refWorkerShift packs a parent-log reference as worker<<shift | index.
	refWorkerShift = 40
	refIndexMask   = 1<<refWorkerShift - 1
	// noRef marks "no record": the parent of the initial state, or any
	// state's ref when parent logging is off.
	noRef int64 = -1
)

// logSegShift sizes one parent-log segment: 1024 records per segment keeps
// the append path at two shifts and a mask while bounding the waste of a
// short log to one segment.
const (
	logSegShift = 10
	logSegSize  = 1 << logSegShift
	logSegMask  = logSegSize - 1
)

// logSeg is one fixed-size block of admission records, stored as parallel
// arrays: parent refs, discrete keys, and successor indices pack to 20
// bytes per record with no per-record struct or label retention.
type logSeg struct {
	// parents holds the ref of the record each state was fired from; noRef
	// for the initial state.
	parents [logSegSize]int64
	// keys holds the discrete key of each admitted state, used as a
	// consistency check during replay.
	keys [logSegSize]uint64
	// steps holds the index of the fired transition in the parent's
	// deterministic successor enumeration (succ.idx).
	steps [logSegSize]int32
}

// workerLog is one worker's append-only record log, grown segment by
// segment. Each worker owns its own header, padded against false sharing
// with its neighbors.
type workerLog struct {
	segs []*logSeg
	n    int
	_    [4]uint64
}

// parentLogs is the shared trace arena: one append-only log per worker.
type parentLogs struct {
	logs []workerLog
}

func newParentLogs(workers int) *parentLogs {
	return &parentLogs{logs: make([]workerLog, workers)}
}

// record appends an admission record to worker w's log and returns its ref.
// Owner only.
func (t *parentLogs) record(w int, parent int64, key uint64, step int32) int64 {
	l := &t.logs[w]
	i := l.n
	if i&logSegMask == 0 {
		l.segs = append(l.segs, &logSeg{})
	}
	sg := l.segs[i>>logSegShift]
	sg.parents[i&logSegMask] = parent
	sg.keys[i&logSegMask] = key
	sg.steps[i&logSegMask] = step
	l.n = i + 1
	return int64(w)<<refWorkerShift | int64(i)
}

// at resolves a ref. Only sound after the worker barrier.
func (t *parentLogs) at(ref int64) (parent int64, key uint64, step int32) {
	i := int(ref & refIndexMask)
	sg := t.logs[ref>>refWorkerShift].segs[i>>logSegShift]
	return sg.parents[i&logSegMask], sg.keys[i&logSegMask], sg.steps[i&logSegMask]
}

// frontier schedules admitted states between push and expansion. push and
// expanded are called by the worker that admitted/expanded the state; pop
// returns nil when the exploration is over for that worker (no work
// anywhere, or the stop flag is up).
type frontier interface {
	push(w int, s *State)
	pop(w int) *State
	// expanded signals that a state obtained from pop has been fully
	// expanded (every successor pushed); the parallel frontier counts these
	// against its termination barrier.
	expanded(w int)
	// depth reports the current backlog — states admitted but not yet fully
	// expanded — for progress monitoring. Safe to call from any goroutine
	// while workers run; the value is a relaxed snapshot.
	depth() int64
	// steals reports how many states worker w has taken from other workers'
	// deques so far — the work-stealing balance signal the sweep profiler
	// samples. Always 0 for the sequential frontier. Safe from any goroutine
	// (padded single-writer cells).
	steals(w int) int64
}

// listFrontier is the sequential waiting list: FIFO for BFS, LIFO for
// DFS/RDFS (successor shuffling happens in the worker loop). waiting, when
// non-nil, mirrors len(list) atomically so Monitor.Snapshot can read the
// backlog from another goroutine without racing the worker's appends; it is
// allocated only for monitored runs, so the ordinary sequential hot path
// pays no atomics.
type listFrontier struct {
	order   Order
	list    []*State
	waiting *atomic.Int64 // non-nil only when a Monitor samples the run
	stop    *atomic.Bool
}

func (f *listFrontier) push(_ int, s *State) {
	f.list = append(f.list, s)
	if f.waiting != nil {
		f.waiting.Add(1)
	}
}

func (f *listFrontier) pop(_ int) *State {
	if f.stop.Load() || len(f.list) == 0 {
		return nil
	}
	var s *State
	if f.order == BFS {
		s = f.list[0]
		f.list = f.list[1:]
	} else {
		s = f.list[len(f.list)-1]
		f.list = f.list[:len(f.list)-1]
	}
	if f.waiting != nil {
		f.waiting.Add(-1)
	}
	return s
}

func (f *listFrontier) expanded(int) {}

func (f *listFrontier) steals(int) int64 { return 0 }

func (f *listFrontier) depth() int64 {
	if f.waiting == nil {
		return 0
	}
	return f.waiting.Load()
}

// dequeFrontier is the work-stealing frontier: one Chase–Lev deque per
// worker (LIFO expansion, FIFO steals) and a pending counter as termination
// barrier. pending counts states that are admitted but not yet fully
// expanded; it is incremented before a state becomes stealable and
// decremented only after all of its successors have been pushed, so
// pending == 0 is sound: no work exists and none can appear.
type dequeFrontier struct {
	deques []*wsDeque
	rngs   []*rand.Rand // per-worker victim selection
	// stealCells counts successful steals per thief: worker w bumps its own
	// padded cell (single-writer load+store, never an RMW) on each steal, so
	// the sweep profiler and steal totals read live without perturbing the
	// scheduling path.
	stealCells *obs.Cells
	pending    atomic.Int64
	stop       *atomic.Bool
}

func newDequeFrontier(workers int, seed int64, dequeCap int64, stop *atomic.Bool) *dequeFrontier {
	f := &dequeFrontier{
		deques:     make([]*wsDeque, workers),
		rngs:       make([]*rand.Rand, workers),
		stealCells: obs.NewCells(workers),
		stop:       stop,
	}
	for i := range f.deques {
		f.deques[i] = newWSDeque(dequeCap)
		f.rngs[i] = rand.New(rand.NewSource(seed ^ (int64(i+1) * 0x9E3779B9)))
	}
	return f
}

func (f *dequeFrontier) push(w int, s *State) {
	f.pending.Add(1)
	f.deques[w].push(s)
}

func (f *dequeFrontier) pop(w int) *State {
	me := f.deques[w]
	rng := f.rngs[w]
	idleSpins := 0
	for {
		if f.stop.Load() {
			return nil
		}
		s := me.pop()
		for attempt := 0; s == nil && attempt < 2*len(f.deques); attempt++ {
			if v := f.deques[rng.Intn(len(f.deques))]; v != me {
				if s = v.steal(); s != nil {
					f.stealCells.Add(w, 1)
				}
			}
		}
		if s != nil {
			return s
		}
		if f.pending.Load() == 0 {
			return nil
		}
		// Someone still holds work: back off without a lock so the next
		// push is picked up by stealing.
		idleSpins++
		if idleSpins < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Duration(min(idleSpins, 100)) * time.Microsecond)
		}
	}
}

func (f *dequeFrontier) expanded(int) { f.pending.Add(-1) }

func (f *dequeFrontier) depth() int64 { return f.pending.Load() }

func (f *dequeFrontier) steals(w int) int64 { return f.stealCells.Get(w) }

// explorer carries the shared mutable state of one exploration run. The only
// shared structures are the passed store, the frontier, the parent logs
// (per-worker ownership), the queries' per-worker accumulators and completion
// atomics, and the atomics below.
type explorer struct {
	c       *Checker
	opts    Options
	queries []Query // the attached query set (may be empty: plain sweep)
	deadQs  []Query // subset of queries observing deadlocked states
	passed  passedSet
	front   frontier
	logs    *parentLogs // nil when no trace can be requested
	mon     *monView    // nil when no Monitor is attached
	prof    *profRun    // nil unless the Monitor has profiling enabled
	budget  *memBudget  // nil when no memory budget is configured

	// hasCheck caches "Cancel, Deadline, or MaxBytes configured" so the
	// worker loop pays a single predictable branch when none is.
	hasCheck bool

	stop atomic.Bool
	// live counts queries that have not yet completed; the completion that
	// drops it to zero (completeQuery) short-circuits the sweep. A
	// query-less sweep keeps it at zero and never stops early: the visit
	// path guards on len(queries), and only completeQuery reads the
	// decremented count.
	live        atomic.Int64
	deadFlag    atomic.Bool
	stored      atomic.Int64
	popped      atomic.Int64
	transitions atomic.Int64
	deadlocks   atomic.Int64
	truncated   atomic.Bool
	deadRef     atomic.Int64
	firstErr    atomic.Pointer[error]
}

func (e *explorer) fail(err error) {
	e.firstErr.CompareAndSwap(nil, &err)
	e.stop.Store(true)
}

// abortErr polls the cooperative abort signals: the wall-clock deadline
// first (so a canceled-because-expired context still reports the more
// specific ErrDeadlineExceeded), then the cancel channel. nil means keep
// going.
func (e *explorer) abortErr() error {
	if !e.opts.Deadline.IsZero() && time.Now().After(e.opts.Deadline) {
		return ErrDeadlineExceeded
	}
	if e.opts.Cancel != nil {
		select {
		case <-e.opts.Cancel:
			return ErrCanceled
		default:
		}
	}
	return nil
}

// completeQuery marks q done on state s: the first completer captures a
// caller-owned clone of s plus its parent-log ref, and decrements the live
// count. It reports whether the whole sweep should stop — either this
// completion drained the query set, or another worker already raised the
// stop flag.
func (e *explorer) completeQuery(q Query, s *State) (stopSweep bool) {
	qs := q.state()
	if !qs.done.CompareAndSwap(false, true) {
		return e.stop.Load()
	}
	qs.found.Store(cloneState(s))
	if e.logs != nil {
		qs.ref.Store(s.ref)
	}
	if e.live.Add(-1) == 0 {
		e.stop.Store(true)
		return true
	}
	return e.stop.Load()
}

// visitAdmitted feeds one newly admitted state to every live query; it
// reports whether the sweep is over (all queries completed).
func (e *explorer) visitAdmitted(w int, s *State) (stopSweep bool) {
	for _, q := range e.queries {
		if q.state().done.Load() {
			continue
		}
		if q.visit(w, s) && e.completeQuery(q, s) {
			return true
		}
	}
	return false
}

// runContained executes one worker with panic containment: a crash anywhere
// in the worker loop — engine bug, panicking visitor predicate, injected
// fault — becomes a per-run *PanicError through the same failure path as
// cancellation instead of killing the process. Containment honors the
// zone/pool ownership protocol by doing nothing: the panicked worker simply
// abandons its succCtx (scratch zone, pool, state free list) to the garbage
// collector along with the rest of the run's pools, so a possibly-corrupt
// state is never recycled, and the other workers drain promptly through the
// stop flag that fail raises. The deferred stats flush inside run still lands
// during unwinding, so partial Stats stay accurate.
func (e *explorer) runContained(w int) {
	defer func() {
		if r := recover(); r != nil {
			e.fail(&PanicError{Worker: w, Value: r, Stack: debug.Stack()})
		}
	}()
	e.run(w)
}

// run is the worker loop, identical for both frontiers: pop, expand, admit
// successors, feed the query set, recycle the expanded state. Statistics
// accumulate in locals and flush once on exit.
func (e *explorer) run(w int) {
	ctx := e.c.eng.newCtx()
	// Parent-log records hold successor indices, not labels, so the worker
	// loop never needs stable label copies — replay rebuilds them on demand.
	ctx.keepLabels = false
	var shuffle *rand.Rand
	if e.opts.Order == RDFS {
		// Worker 0 reproduces the sequential RDFS stream for a given seed.
		shuffle = rand.New(rand.NewSource(e.opts.Seed ^ (int64(w) * 0x9E3779B97F4A7C)))
	}
	var succs []succ
	var nPopped, nTransitions, nDeadlocks int64
	var cell *monCell
	if e.mon != nil {
		cell = &e.mon.cells[w]
	}
	defer func() {
		e.popped.Add(nPopped)
		e.transitions.Add(nTransitions)
		e.deadlocks.Add(nDeadlocks)
	}()
	for {
		if e.hasCheck && nPopped&abortCheckMask == 0 {
			if err := e.abortErr(); err != nil {
				e.fail(err)
				return
			}
			if e.budget != nil {
				// Publish this worker's pool allocation and test the global
				// sum — single-writer stores plus a few loads, only between
				// expansions, only when a budget is configured. The passed
				// store contributes its actual packed footprint.
				e.budget.publish(w, ctx.pool)
				if e.budget.exceeded(e.passed.bytes()) {
					e.fail(ErrMemoryBudget)
					return
				}
			}
		}
		if faultinject.Enabled {
			if err := faultinject.Fire("core/worker"); err != nil {
				e.fail(err)
				return
			}
		}
		if cell != nil {
			// Live-progress publication: single-writer relaxed stores of the
			// loop locals into this worker's padded cell, summed on read by
			// Monitor.Snapshot. Never an RMW, never contended — the hot path
			// cost is two or three uncontended stores per expansion.
			cell.publish(nPopped, nTransitions, nDeadlocks)
		}
		if e.prof != nil && nPopped&e.prof.mask == 0 {
			// Sweep-profile sampling: every (mask+1)-th expansion the worker
			// appends one point to its own ring — loop locals, its steal
			// cell, and a few shared atomics. The disabled path is the nil
			// check alone, and the rings were allocated at attach, so an
			// unprofiled sweep provably gains zero allocations.
			gets, reuses := ctx.pool.Stats()
			e.sampleProfile(w, nPopped, nTransitions, gets, reuses)
		}
		s := e.front.pop(w)
		if s == nil {
			return
		}
		nPopped++
		var err error
		succs, err = e.c.eng.successors(ctx, s, succs[:0])
		if err != nil {
			e.fail(err)
			return
		}
		if len(succs) == 0 {
			nDeadlocks++
			for _, q := range e.deadQs {
				if q.state().done.Load() {
					continue
				}
				if q.onDeadlock(w, s) && e.completeQuery(q, s) {
					return
				}
			}
			if e.opts.StopAtDeadlock {
				if e.logs != nil && e.deadFlag.CompareAndSwap(false, true) {
					e.deadRef.Store(s.ref)
				}
				e.stop.Store(true)
				return
			}
		}
		if shuffle != nil {
			shuffle.Shuffle(len(succs), func(i, j int) { succs[i], succs[j] = succs[j], succs[i] })
		}
		for _, sc := range succs {
			nTransitions++
			if !e.passed.add(sc.state) {
				// Subsumed: the state is discarded and nothing else
				// references it, so it is recycled wholesale.
				ctx.putState(sc.state)
				continue
			}
			n := e.stored.Add(1)
			if e.logs != nil {
				sc.state.ref = e.logs.record(w, s.ref, sc.state.discreteKey(), sc.idx)
			}
			if len(e.queries) > 0 && e.visitAdmitted(w, sc.state) {
				return
			}
			// The hard state budget is checked at admission — the point the
			// count is already in hand — and fails the run; the soft MaxStates
			// below merely truncates it.
			if e.opts.StateBudget > 0 && n > int64(e.opts.StateBudget) {
				e.fail(ErrStateBudget)
				return
			}
			if e.opts.MaxStates > 0 && n >= int64(e.opts.MaxStates) {
				e.truncated.Store(true)
				e.stop.Store(true)
				return
			}
			e.front.push(w, sc.state)
		}
		e.front.expanded(w)
		// s is fully expanded and the passed store holds its own copies of
		// everything admitted, so recycle it wholesale.
		ctx.putState(s)
	}
}

// explore runs the unified engine over one query set (possibly empty: a
// plain sweep). Every query attaches per-worker reduction state to the
// single run; queries complete independently and the sweep short-circuits
// when the last one does. Workers and the frontier kind come from
// opts.parallelism().
func (c *Checker) explore(opts Options, queries []Query) (ExploreResult, error) {
	start := time.Now()
	workers, parallel := opts.parallelism()
	var res ExploreResult
	init, err := c.eng.initial()
	if err != nil {
		return res, err
	}
	e := &explorer{c: c, opts: opts, queries: queries}
	hasAbort := opts.Cancel != nil || !opts.Deadline.IsZero()
	e.hasCheck = hasAbort || opts.MaxBytes > 0
	if hasAbort {
		// Refuse to start an already-aborted run: a closed Cancel channel or
		// an expired Deadline returns immediately with zero Stats, before any
		// query is marked used.
		if aerr := e.abortErr(); aerr != nil {
			res.Duration = time.Since(start)
			return res, aerr
		}
	}
	if opts.MaxBytes > 0 {
		e.budget = newMemBudget(opts.MaxBytes, c.eng.dim, workers)
	}
	e.deadRef.Store(noRef)
	e.live.Store(int64(len(queries)))
	// Parent logs exist exactly when a trace can be requested: a query may
	// complete with a witness, or StopAtDeadlock may stop the run.
	// Trace-free query sets (MaxVar alone) need none; opts.noTrace
	// additionally forces them off for in-package callers that can prove
	// they never replay.
	needTrace := opts.StopAtDeadlock
	for _, q := range queries {
		qs := q.state()
		qs.used = true
		qs.init()
		q.prepare(workers)
		if q.observesDeadlocks() {
			e.deadQs = append(e.deadQs, q)
		}
		if q.wantsTrace() {
			needTrace = true
		}
	}
	if needTrace && !opts.noTrace {
		e.logs = newParentLogs(workers)
	}

	if parallel {
		e.passed = newPStore(opts.storeShardCount())
	} else {
		e.passed = newStore()
	}
	if opts.passed != nil {
		// Test hook: a caller-supplied passed set replaces the store, so the
		// compact-store implementations can be differentially checked against
		// a reference (store_oracle_test.go).
		e.passed = opts.passed
	}
	e.passed.add(init)
	e.stored.Store(1)
	init.ref = noRef
	if e.logs != nil {
		init.ref = e.logs.record(0, noRef, init.discreteKey(), 0)
	}

	// The initial state is admitted like any other; if it already completes
	// the whole query set, the sweep is skipped. The visit runs contained
	// like the workers' — it executes the same caller-supplied predicates,
	// and a crash here must fail the run, not the process.
	drained := false
	if len(queries) > 0 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					e.fail(&PanicError{Worker: 0, Value: r, Stack: debug.Stack()})
				}
			}()
			drained = e.visitAdmitted(0, init)
		}()
	}
	if !drained {
		if parallel {
			e.front = newDequeFrontier(workers, opts.Seed, opts.dequeCapacity(), &e.stop)
		} else {
			lf := &listFrontier{order: opts.Order, stop: &e.stop}
			if opts.Monitor != nil {
				lf.waiting = new(atomic.Int64)
			}
			e.front = lf
		}
		e.front.push(0, init)
	}
	// Attach the monitor strictly after e.front is in place: the atomic
	// publication inside attach orders the frontier write before any
	// Snapshot reads it.
	endExplore := noopEnd
	if opts.Monitor != nil {
		e.mon = opts.Monitor.attach(e, workers)
		e.prof = e.mon.prof
		endExplore = opts.Monitor.BeginPhase("explore")
	}
	if !drained {
		if parallel {
			var wg sync.WaitGroup
			wg.Add(workers)
			for i := 0; i < workers; i++ {
				go func(id int) {
					defer wg.Done()
					e.runContained(id)
				}(i)
			}
			wg.Wait()
		} else {
			e.runContained(0)
		}
	}
	endExplore()
	if e.mon != nil {
		// Workers are done and their deferred flushes have landed in the
		// explorer atomics; later Snapshots read those exact totals.
		e.mon.setDone()
	}

	res.Duration = time.Since(start)
	res.Stored = int(e.stored.Load())
	res.Popped = int(e.popped.Load())
	res.Transitions = int(e.transitions.Load())
	res.Deadlocks = int(e.deadlocks.Load())
	res.Truncated = e.truncated.Load()
	if ep := e.firstErr.Load(); ep != nil {
		// Finish the queries anyway so partial reductions remain readable,
		// but the run error wins.
		for _, q := range queries {
			_ = q.finish(c, e.logs, res.Stats)
		}
		return res, *ep
	}
	if opts.Monitor != nil && e.logs != nil {
		// The trace-replay phase covers everything after the sweep that may
		// re-fire transitions: the deadlock replay plus each query's finish
		// (reduction merge + completion-trace replay).
		defer opts.Monitor.BeginPhase("trace-replay")()
	}
	if ref := e.deadRef.Load(); e.logs != nil && ref != noRef {
		if res.DeadlockTrace, err = c.replayTrace(e.logs, ref); err != nil {
			return res, err
		}
	}
	// Merge per-worker reductions and replay completion traces strictly
	// after the worker barrier.
	for _, q := range queries {
		if err := q.finish(c, e.logs, res.Stats); err != nil {
			return res, err
		}
	}
	return res, nil
}

// replayTrace stitches the path to ref back across the per-worker parent
// logs and re-fires it from the initial state: each step re-enumerates the
// parent's successors through the deterministic engine and selects the
// recorded index. Every returned TraceStep owns a freshly materialized
// state, zone, and label (chunk-backed Parts stay alive through the Label
// references after the replay ctx is dropped), so the trace stays valid
// after the exploration's pools are gone. Sibling successors of each step
// are recycled into the replay ctx; the selected states are never put back,
// so their zones are safe to retain. The replay double-checks each step
// against the recorded discrete key and fails loudly on any divergence — by
// construction there is none, since enumeration is a pure function of the
// parent state, indices were captured before any RDFS shuffle, and each
// replayed parent is bit-identical to the original.
func (c *Checker) replayTrace(logs *parentLogs, ref int64) ([]TraceStep, error) {
	type chainStep struct {
		key uint64
		idx int32
	}
	var chain []chainStep
	for r := ref; r != noRef; {
		parent, key, idx := logs.at(r)
		chain = append(chain, chainStep{key, idx})
		r = parent
	}
	slices.Reverse(chain)

	ctx := c.eng.newCtx() // keepLabels: replay materializes the labels
	cur, err := c.eng.initial()
	if err != nil {
		return nil, err
	}
	if cur.discreteKey() != chain[0].key {
		return nil, fmt.Errorf("core: internal: trace log root does not match the initial state")
	}
	steps := make([]TraceStep, 0, len(chain))
	steps = append(steps, TraceStep{State: cur})
	var succs []succ
	for _, st := range chain[1:] {
		succs, err = c.eng.successors(ctx, cur, succs[:0])
		if err != nil {
			return nil, fmt.Errorf("core: internal: trace replay: %w", err)
		}
		chosen := -1
		for i := range succs {
			if succs[i].idx == st.idx {
				chosen = i
			} else {
				ctx.putState(succs[i].state)
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("core: internal: trace replay: recorded successor %d not enabled", st.idx)
		}
		ns := succs[chosen].state
		if ns.discreteKey() != st.key {
			return nil, fmt.Errorf("core: internal: trace replay diverged after %s",
				succs[chosen].label.Format(c.net))
		}
		steps = append(steps, TraceStep{Label: succs[chosen].label, State: ns})
		cur = ns
	}
	return steps, nil
}
