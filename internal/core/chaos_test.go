//go:build faultinject

package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// This file is the core half of the chaos suite (CI job "chaos"): it runs
// only under -tags faultinject, arming faults at the explorer's named site
// and asserting the engine fails the run — never the process, never a later
// run. The whole package's pool-ownership oracles run in the same tagged
// -race configuration, so an injected crash that corrupted recycling would
// trip them.

// TestChaosWorkerPanicContained injects a panic into a parallel worker loop
// mid-sweep and requires a contained *PanicError, then proves the checker is
// still bit-identical to a fresh one on the next sweep.
func TestChaosWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	for _, workers := range []int{1, 4} {
		n, _, _, _ := buildGrid(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set("core/worker", faultinject.Fault{Kind: faultinject.KindPanic, After: 50})
		_, err = c.Explore(Options{Workers: workers}, nil)
		faultinject.Clear("core/worker")
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}

		after, err := c.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if after.Stored != want.Stored || after.Transitions != want.Transitions ||
			after.Popped != want.Popped || after.Deadlocks != want.Deadlocks {
			t.Errorf("workers=%d: post-chaos sweep %+v differs from fresh checker %+v",
				workers, after.Stats, want.Stats)
		}
	}
}

// TestChaosInjectedAllocFailure injects an error return (the alloc-failure
// scenario) and requires the run to fail with exactly that error and partial
// stats.
func TestChaosInjectedAllocFailure(t *testing.T) {
	defer faultinject.Reset()
	bang := errors.New("chaos: allocation failed")
	for _, workers := range []int{1, 4} {
		n, _, _, _ := buildGrid(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set("core/worker", faultinject.Fault{Kind: faultinject.KindError, After: 50, Err: bang})
		res, err := c.Explore(Options{Workers: workers}, nil)
		faultinject.Clear("core/worker")
		if !errors.Is(err, bang) {
			t.Fatalf("workers=%d: err = %v, want injected error", workers, err)
		}
		if res.Popped == 0 {
			t.Errorf("workers=%d: partial stats lost: %+v", workers, res.Stats)
		}
	}
}

// TestChaosStorePanicContained injects a panic inside compact-store admission
// ("core/store" fires at the top of storeEntry.admit, i.e. while the pstore
// variant holds a shard lock) and requires a contained *PanicError. The
// follow-up sweeps prove two things: the shard mutex was released by the
// deferred unlock (a leaked lock would deadlock the re-sweep), and the store
// swap left the checker reusable — the post-chaos sweep is bit-identical to a
// fresh checker's.
func TestChaosStorePanicContained(t *testing.T) {
	defer faultinject.Reset()
	for _, workers := range []int{1, 4} {
		n, _, _, _ := buildGrid(t)
		c, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set("core/store", faultinject.Fault{Kind: faultinject.KindPanic, After: 50})
		_, err = c.Explore(Options{Workers: workers}, nil)
		faultinject.Clear("core/store")
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}

		after, err := c.Explore(Options{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewChecker(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Explore(Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			if after.Stored != want.Stored || after.Transitions != want.Transitions ||
				after.Popped != want.Popped || after.Deadlocks != want.Deadlocks {
				t.Errorf("post-chaos sweep %+v differs from fresh checker %+v",
					after.Stats, want.Stats)
			}
		} else if after.Stored < want.Stored {
			// Parallel sweeps may double-admit, never store fewer.
			t.Errorf("workers=4: post-chaos stored %d < fresh sequential %d",
				after.Stored, want.Stored)
		}
	}
}

// TestChaosSlowWorkerStillCancels arms a per-expansion delay (the slow-worker
// scenario) and requires cooperative cancellation to land promptly anyway:
// the abort checkpoint sits between expansions, so a slow worker delays the
// abort by at most its own in-flight expansion.
func TestChaosSlowWorkerStillCancels(t *testing.T) {
	defer faultinject.Reset()
	n := buildHuge(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("core/worker", faultinject.Fault{Kind: faultinject.KindDelay, Delay: time.Millisecond})
	defer faultinject.Clear("core/worker")
	cancel := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err = c.Explore(Options{Workers: 4, Cancel: cancel}, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation under injected slowness took %v", elapsed)
	}
}
