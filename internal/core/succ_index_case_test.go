// Differential oracle over the paper's case-study networks (external test
// package: arch imports core, so these cannot live in-package). The compiled
// ICRNS networks exercise the index at realistic scale — broadcast completion
// channels shared by several observers, urgent dispatch channels, committed
// pass-through locations — and the oracle asserts the indexed enumerator and
// the legacy per-channel rescan agree on everything observable: sup values,
// stats, verdicts, and replayed traces, sequentially and with Workers=4 (the
// CI -race job runs both).
package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/icrns"
)

// caseCheckers compiles the multi-requirement ICRNS combination once and
// returns indexed and legacy checkers over the same network.
func caseCheckers(t *testing.T) (*arch.CompiledSet, *core.Checker, *core.Checker) {
	t.Helper()
	sys, all := icrns.Build(icrns.ComboAL, icrns.ColPNO, icrns.DefaultConfig())
	reqs := []*arch.Requirement{all[icrns.ReqHandleTMC], all[icrns.ReqAddressLookup]}
	cs, err := arch.CompileAll(sys, reqs, arch.Options{
		HorizonMSFor: func(r *arch.Requirement) int64 { return icrns.HorizonMS(r.Name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cI, err := core.NewChecker(cs.Net)
	if err != nil {
		t.Fatal(err)
	}
	cL, err := core.NewChecker(cs.Net)
	if err != nil {
		t.Fatal(err)
	}
	core.SetLegacyEnumerator(cL, true)
	return cs, cI, cL
}

// runSups measures every observer's supremum in one sweep.
func runSups(t *testing.T, cs *arch.CompiledSet, c *core.Checker, opts core.Options) ([]core.SupResult, core.Stats) {
	t.Helper()
	sups := make([]*core.SupClockQuery, len(cs.Reqs))
	queries := make([]core.Query, len(cs.Reqs))
	for i := range cs.Reqs {
		sups[i] = core.NewSupClockQuery(cs.Obs[i].Y.ID, cs.AtSeen(i))
		queries[i] = sups[i]
	}
	stats, err := c.RunQueries(opts, queries...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]core.SupResult, len(sups))
	for i, q := range sups {
		out[i] = q.Result
	}
	return out, stats
}

func TestCaseStudyIndexedMatchesScan(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study sweep in -short mode")
	}
	cs, cI, cL := caseCheckers(t)

	// Sequential: sup values AND full stats must agree — the enumeration
	// order fixes the sweep exactly.
	supI, statsI := runSups(t, cs, cI, core.Options{})
	supL, statsL := runSups(t, cs, cL, core.Options{})
	if statsI.Stored != statsL.Stored || statsI.Popped != statsL.Popped ||
		statsI.Transitions != statsL.Transitions || statsI.Deadlocks != statsL.Deadlocks {
		t.Fatalf("sequential stats differ: indexed %+v, legacy %+v", statsI, statsL)
	}
	for i := range supI {
		if supI[i].Max != supL[i].Max || supI[i].Seen != supL[i].Seen ||
			supI[i].Unbounded != supL[i].Unbounded {
			t.Fatalf("observer %d: sup %v/%v/%v indexed vs %v/%v/%v legacy", i,
				supI[i].Max, supI[i].Seen, supI[i].Unbounded,
				supL[i].Max, supL[i].Seen, supL[i].Unbounded)
		}
	}

	// Workers=4: sup values are deterministic (the sweep is exhaustive);
	// stats are scheduling-dependent and not compared.
	supI4, _ := runSups(t, cs, cI, core.Options{Workers: 4})
	supL4, _ := runSups(t, cs, cL, core.Options{Workers: 4})
	for i := range supI4 {
		if supI4[i].Max != supL4[i].Max || supI4[i].Seen != supL4[i].Seen ||
			supI4[i].Unbounded != supL4[i].Unbounded {
			t.Fatalf("observer %d parallel: sup %v indexed vs %v legacy", i,
				supI4[i].Max, supL4[i].Max)
		}
	}
}

// TestCaseStudyTraceIdentical pins the replayed-trace bytes: parent-log
// records keep only successor indices, so an enumeration-order change would
// replay a different — or no — trace. Sequential runs make the found state
// and its trace deterministic.
func TestCaseStudyTraceIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study sweep in -short mode")
	}
	cs, cI, cL := caseCheckers(t)
	pred := cs.AtSeen(0)

	foundI, traceI, statsI, err := cI.Reachable(pred, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundL, traceL, statsL, err := cL.Reachable(pred, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if foundI != foundL {
		t.Fatalf("reachability verdict differs: %v indexed, %v legacy", foundI, foundL)
	}
	if !foundI {
		t.Fatal("observer seen location unreachable — predicate broken")
	}
	if statsI.Stored != statsL.Stored || statsI.Popped != statsL.Popped {
		t.Fatalf("reachable stats differ: indexed %+v, legacy %+v", statsI, statsL)
	}
	fI := core.FormatTrace(cs.Net, traceI)
	fL := core.FormatTrace(cs.Net, traceL)
	if fI != fL {
		t.Fatalf("replayed traces differ:\nindexed:\n%s\nlegacy:\n%s", fI, fL)
	}
}
