package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ta"
)

// The discrete-time oracle: for timed automata whose guards and invariants
// are all closed (only ≤, ≥, ==), dense-time location reachability coincides
// with integer-time reachability. A brute-force explicit-state interpreter
// over integer clock valuations therefore provides an independent ground
// truth for the zone-based engine on small random models.

type concreteState struct {
	locs string // fmt of location vector
	vars string
	clks string
}

// discreteReach explores the integer-time semantics of net up to the given
// clock ceiling (all clocks are capped at ceil, which is sound when ceil
// exceeds every constant in the model) and returns the set of reachable
// discrete projections "locs|vars".
func discreteReach(t *testing.T, net *ta.Network, ceil int64) map[string]bool {
	t.Helper()
	type full struct {
		locs []ta.LocID
		vars []int64
		clks []int64
	}
	key := func(f full) concreteState {
		return concreteState{fmt.Sprint(f.locs), fmt.Sprint(f.vars), fmt.Sprint(f.clks)}
	}
	project := func(f full) string { return fmt.Sprint(f.locs) + "|" + fmt.Sprint(f.vars) }

	satisfied := func(cs []ta.Constraint, clks, vars []int64) bool {
		for _, c := range cs {
			b := c.Resolve(vars)
			vi, vj := int64(0), int64(0)
			if c.I != 0 {
				vi = clks[c.I]
			}
			if c.J != 0 {
				vj = clks[c.J]
			}
			diff := vi - vj
			if b.Weak() {
				if diff > b.Value() {
					return false
				}
			} else if diff >= b.Value() {
				return false
			}
		}
		return true
	}
	invOK := func(locs []ta.LocID, clks, vars []int64) bool {
		for pi, l := range locs {
			if !satisfied(net.Procs[pi].Locations[l].Invariant, clks, vars) {
				return false
			}
		}
		return true
	}
	urgentHere := func(locs []ta.LocID, vars []int64) bool {
		for pi, l := range locs {
			k := net.Procs[pi].Locations[l].Kind
			if k == ta.UrgentLoc || k == ta.Committed {
				return true
			}
		}
		// Urgent channels: enabled emit (broadcast-urgent) forbids delay.
		for ci, ch := range net.Chans {
			if !ch.Kind.Urgent() {
				continue
			}
			for pi, p := range net.Procs {
				for _, ei := range p.OutEdges(locs[pi]) {
					e := &p.Edges[ei]
					if e.Sync.Dir == ta.Emit && e.Sync.Chan == ta.ChanID(ci) &&
						ta.EvalGuard(e.Guard, vars) {
						return true
					}
				}
			}
		}
		return false
	}

	init := full{
		locs: make([]ta.LocID, len(net.Procs)),
		vars: net.InitialVars(),
		clks: make([]int64, net.NumClocks()),
	}
	for i, p := range net.Procs {
		init.locs[i] = p.Init
	}
	seen := map[concreteState]bool{key(init): true}
	out := map[string]bool{project(init): true}
	work := []full{init}
	push := func(f full) {
		k := key(f)
		if !seen[k] {
			seen[k] = true
			out[project(f)] = true
			work = append(work, f)
		}
	}
	clone := func(f full) full {
		return full{
			locs: append([]ta.LocID(nil), f.locs...),
			vars: append([]int64(nil), f.vars...),
			clks: append([]int64(nil), f.clks...),
		}
	}

	for steps := 0; len(work) > 0 && steps < 200000; steps++ {
		cur := work[len(work)-1]
		work = work[:len(work)-1]

		// Unit delay (clocks capped at ceil to keep the space finite).
		if !urgentHere(cur.locs, cur.vars) {
			nxt := clone(cur)
			grown := false
			for c := 1; c < len(nxt.clks); c++ {
				if nxt.clks[c] < ceil {
					nxt.clks[c]++
					grown = true
				}
			}
			if grown && invOK(nxt.locs, nxt.clks, nxt.vars) {
				push(nxt)
			}
		}

		anyCommitted := false
		for pi, l := range cur.locs {
			if net.Procs[pi].Locations[l].Kind == ta.Committed {
				anyCommitted = true
			}
		}
		fire := func(parts [][2]int) { // (proc, edge)
			if anyCommitted {
				ok := false
				for _, pt := range parts {
					if net.Procs[pt[0]].Locations[cur.locs[pt[0]]].Kind == ta.Committed {
						ok = true
					}
				}
				if !ok {
					return
				}
			}
			for _, pt := range parts {
				e := &net.Procs[pt[0]].Edges[pt[1]]
				if !satisfied(e.ClockGuard, cur.clks, cur.vars) {
					return
				}
			}
			nxt := clone(cur)
			for _, pt := range parts {
				e := &net.Procs[pt[0]].Edges[pt[1]]
				ta.ApplyUpdate(e.Update, nxt.vars)
			}
			if net.CheckVarBounds(nxt.vars) != nil {
				return
			}
			for _, pt := range parts {
				e := &net.Procs[pt[0]].Edges[pt[1]]
				nxt.locs[pt[0]] = e.Dst
				for _, r := range e.Resets {
					nxt.clks[r.Clock] = r.Value
				}
				for _, c := range e.Frees {
					_ = c // freeing is a zone-level optimization; value kept
				}
			}
			if invOK(nxt.locs, nxt.clks, nxt.vars) {
				push(nxt)
			}
		}

		for pi, p := range net.Procs {
			for _, ei := range p.OutEdges(cur.locs[pi]) {
				e := &p.Edges[ei]
				if !ta.EvalGuard(e.Guard, cur.vars) {
					continue
				}
				switch e.Sync.Dir {
				case ta.Tau:
					fire([][2]int{{pi, ei}})
				case ta.Emit:
					ch := net.Chans[e.Sync.Chan]
					if ch.Kind.IsBroadcast() {
						// Maximal participation, one enabled receiver each.
						parts := [][2]int{{pi, ei}}
						for qi, q := range net.Procs {
							if qi == pi {
								continue
							}
							for _, ri := range q.OutEdges(cur.locs[qi]) {
								r := &q.Edges[ri]
								if r.Sync.Dir == ta.Recv && r.Sync.Chan == e.Sync.Chan &&
									ta.EvalGuard(r.Guard, cur.vars) {
									parts = append(parts, [2]int{qi, ri})
									break // deterministic receiver choice
								}
							}
						}
						fire(parts)
					} else {
						for qi, q := range net.Procs {
							if qi == pi {
								continue
							}
							for _, ri := range q.OutEdges(cur.locs[qi]) {
								r := &q.Edges[ri]
								if r.Sync.Dir == ta.Recv && r.Sync.Chan == e.Sync.Chan &&
									ta.EvalGuard(r.Guard, cur.vars) {
									fire([][2]int{{pi, ei}, {qi, ri}})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// randomClosedNet builds a small random network with closed constraints only.
func randomClosedNet(r *rand.Rand) *ta.Network {
	n := ta.NewNetwork("oracle")
	x := n.AddClock("x")
	y := n.AddClock("y")
	v := n.AddVar("v", 0, 0, 3)
	ch := n.AddChan("c", ta.Binary)
	clocks := []ta.Clock{x, y}

	for pi := 0; pi < 2; pi++ {
		p := n.AddProcess(fmt.Sprintf("P%d", pi))
		nloc := 2 + r.Intn(2)
		for li := 0; li < nloc; li++ {
			var inv []ta.Constraint
			if r.Intn(2) == 0 {
				inv = append(inv, ta.CLE(clocks[r.Intn(2)], int64(2+r.Intn(4))))
			}
			p.AddLocation(fmt.Sprintf("l%d", li), ta.Normal, inv...)
		}
		nedge := 2 + r.Intn(3)
		for ei := 0; ei < nedge; ei++ {
			e := ta.Edge{
				Src: ta.LocID(r.Intn(nloc)),
				Dst: ta.LocID(r.Intn(nloc)),
			}
			switch r.Intn(3) {
			case 0:
				e.ClockGuard = []ta.Constraint{ta.CGE(clocks[r.Intn(2)], int64(r.Intn(5)))}
			case 1:
				e.ClockGuard = ta.CEq(clocks[r.Intn(2)], int64(r.Intn(5)))
			}
			if r.Intn(2) == 0 {
				e.Resets = []ta.Reset{{Clock: clocks[r.Intn(2)].ID, Value: 0}}
			}
			switch r.Intn(4) {
			case 0:
				e.Guard = ta.VarCmp(v, ta.Lt, 3)
				e.Update = ta.Inc(v, 1)
			case 1:
				e.Guard = ta.VarCmp(v, ta.Gt, 0)
				e.Update = ta.Inc(v, -1)
			}
			if r.Intn(4) == 0 {
				dir := ta.Emit
				if pi == 1 {
					dir = ta.Recv
				}
				e.Sync = ta.Sync{Chan: ch.ID, Dir: dir}
			}
			p.AddEdge(e)
		}
	}
	if err := n.Finalize(); err != nil {
		panic(err)
	}
	return n
}

// TestZoneEngineMatchesDiscreteOracle compares the discrete projections
// (location vector + variable valuation) reachable under the zone engine and
// under brute-force integer-time exploration, on random closed models.
func TestZoneEngineMatchesDiscreteOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is slow")
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		net := randomClosedNet(r)
		oracle := discreteReach(t, net, 8)

		c, err := NewChecker(net)
		if err != nil {
			t.Fatal(err)
		}
		zone := map[string]bool{}
		_, err = c.Explore(Options{MaxStates: 100000}, func(s *State) bool {
			zone[fmt.Sprint(s.Locs)+"|"+fmt.Sprint(s.Vars)] = true
			return false
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := range oracle {
			if !zone[k] {
				t.Errorf("trial %d: oracle state %s missed by the zone engine", trial, k)
			}
		}
		for k := range zone {
			if !oracle[k] {
				t.Errorf("trial %d: zone state %s not reachable in integer time", trial, k)
			}
		}
		if t.Failed() {
			t.Fatalf("trial %d network:\n%s", trial, net.DOT())
		}
	}
}

// TestParallelEngineMatchesSequentialOracle extends the oracle sweep across
// both scheduling paths of the unified engine: on random closed models the
// parallel explorer must reach exactly the discrete projections the
// sequential one reaches, Reachable verdicts must agree, and every parallel
// witness trace must replay through the successor engine (trace validity,
// not trace equality — the parallel path may find a different run).
func TestParallelEngineMatchesSequentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep is slow")
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		net := randomClosedNet(r)
		c, err := NewChecker(net)
		if err != nil {
			t.Fatal(err)
		}
		collect := func(workers int) map[string]bool {
			out := map[string]bool{}
			var mu sync.Mutex
			_, err := c.Explore(Options{MaxStates: 100000, Workers: workers}, func(s *State) bool {
				mu.Lock()
				out[fmt.Sprint(s.Locs)+"|"+fmt.Sprint(s.Vars)] = true
				mu.Unlock()
				return false
			})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			return out
		}
		seq, par := collect(1), collect(4)
		for k := range seq {
			if !par[k] {
				t.Errorf("trial %d: state %s reached sequentially but not in parallel", trial, k)
			}
		}
		for k := range par {
			if !seq[k] {
				t.Errorf("trial %d: state %s reached in parallel but not sequentially", trial, k)
			}
		}
		// Cross-check one Reachable verdict per trial: the last process
		// leaving its initial location (reachable on most random models,
		// unreachable on some — both verdicts must agree either way).
		pred := func(s *State) bool { return s.Locs[1] != net.Procs[1].Init }
		sFound, sTrace, _, err := c.Reachable(pred, Options{MaxStates: 100000})
		if err != nil {
			t.Fatal(err)
		}
		pFound, pTrace, _, err := c.Reachable(pred, Options{MaxStates: 100000, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if sFound != pFound {
			t.Errorf("trial %d: Reachable verdicts disagree: sequential=%v parallel=%v",
				trial, sFound, pFound)
		}
		if sFound {
			assertTraceValid(t, c, sTrace)
			assertTraceValid(t, c, pTrace)
			if !pred(pTrace[len(pTrace)-1].State) {
				t.Errorf("trial %d: parallel witness does not end in the target", trial)
			}
		}
		if t.Failed() {
			t.Fatalf("trial %d network:\n%s", trial, net.DOT())
		}
	}
}
