package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dbm"
)

// This file is the resource-budget substrate of the unified explorer: hard
// state and memory ceilings that turn a runaway sweep into a partial result
// instead of an OOM kill. Both budgets surface through the same cooperative
// abort point as cancellation (the between-expansions checkpoint in
// explorer.run), so a budget breach honors every ownership invariant a cancel
// does: workers stop between expansions, partial Stats are returned, and the
// checker stays reusable.
//
// Accounting follows the engine's per-worker single-writer style — no new
// atomics on the visitor path:
//
//   - States are counted at admission by the existing e.stored counter; the
//     state budget is one extra compare on the admission path.
//   - Worker-side zone bytes are known at pool get/put: every full matrix in
//     the run — worker scratch, admitted states still in flight — is drawn
//     from some worker's dbm.Pool, whose gets/reuses counters already record
//     how many matrices it allocated (gets − reuses). At each checkpoint a
//     worker publishes its own pool's allocation into its cache-line-padded
//     cell (a plain store, single writer) and sums all cells against the
//     limit. The cells are allocated only when a memory budget is
//     configured, so unbudgeted runs pay nothing — not even the allocation.
//   - Store-side bytes are charged at their ACTUAL packed footprint: the
//     passed store tracks the exact bytes of its compact zone buffers plus
//     its interned discrete vectors (store.go), and the checkpoint adds that
//     live total (passedSet.bytes) to the worker cells. Compression behind
//     the admission boundary is therefore budget-visible: the same model
//     fits a smaller MaxBytes than it would with full stored DBMs.

// ErrStateBudget reports an exploration stopped because Options.StateBudget
// unique states had been admitted. The accompanying Stats are the partial
// effort up to the abort; the Checker remains reusable. Unlike MaxStates
// (soft truncation: Stats.Truncated, no error), a state budget is a hard
// failure for callers that must not trust partial verdicts.
var ErrStateBudget = errors.New("core: exploration state budget exceeded")

// ErrMemoryBudget reports an exploration stopped because its zone memory
// exceeded Options.MaxBytes. The accompanying Stats are the partial effort up
// to the abort; the Checker remains reusable.
var ErrMemoryBudget = errors.New("core: exploration memory budget exceeded")

// PanicError is the per-run error a contained worker crash converts into: the
// run fails like a canceled one (partial Stats, reusable Checker) instead of
// taking the process down. The panicked worker abandons its succCtx — and
// with it every zone and state it owned — to the run's pools; nothing
// possibly-corrupt is ever recycled into a later run.
type PanicError struct {
	// Worker is the index of the crashed worker.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the crashed goroutine's stack at recovery.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("core: worker %d panicked: %v", p.Worker, p.Value)
}

// budgetCell is one worker's published zone-allocation bytes, padded so
// neighboring workers' stores never share a cache line.
type budgetCell struct {
	bytes atomic.Int64
	_     [56]byte
}

// memBudget accounts a run's zone memory against Options.MaxBytes.
type memBudget struct {
	limit int64
	// zoneBytes is the size of one pooled matrix (dim² bounds).
	zoneBytes int64
	// base charges the one allocation made before workers start: the initial
	// state's zone (its packed store copy is inside the stored-bytes total).
	base  int64
	cells []budgetCell
}

func newMemBudget(limit int64, dim, workers int) *memBudget {
	zb := dbm.ZoneBytes(dim)
	return &memBudget{
		limit:     limit,
		zoneBytes: zb,
		base:      zb,
		cells:     make([]budgetCell, workers),
	}
}

// publish stores worker w's pool allocation into its cell; single writer.
func (b *memBudget) publish(w int, pool *dbm.Pool) {
	gets, reuses := pool.Stats()
	b.cells[w].bytes.Store(int64(gets-reuses) * b.zoneBytes)
}

// exceeded sums every worker's published bytes plus the passed store's
// actual packed footprint against the limit.
func (b *memBudget) exceeded(storedBytes int64) bool {
	total := b.base + storedBytes
	for i := range b.cells {
		total += b.cells[i].bytes.Load()
	}
	return total > b.limit
}
