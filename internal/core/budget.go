package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dbm"
)

// This file is the resource-budget substrate of the unified explorer: hard
// state and memory ceilings that turn a runaway sweep into a partial result
// instead of an OOM kill. Both budgets surface through the same cooperative
// abort point as cancellation (the between-expansions checkpoint in
// explorer.run), so a budget breach honors every ownership invariant a cancel
// does: workers stop between expansions, partial Stats are returned, and the
// checker stays reusable.
//
// Accounting follows the engine's per-worker single-writer style — no new
// atomics on the visitor path:
//
//   - States are counted at admission by the existing e.stored counter; the
//     state budget is one extra compare on the admission path.
//   - Zone bytes are known at pool get/put: every matrix in the run — worker
//     scratch, admitted states, store copies — is drawn from some worker's
//     dbm.Pool, whose gets/reuses counters already record how many matrices
//     it allocated (gets − reuses). At each checkpoint a worker publishes its
//     own pool's allocation into its cache-line-padded cell (a plain store,
//     single writer) and sums all cells against the limit. The cells are
//     allocated only when a memory budget is configured, so unbudgeted runs
//     pay nothing — not even the allocation.

// ErrStateBudget reports an exploration stopped because Options.StateBudget
// unique states had been admitted. The accompanying Stats are the partial
// effort up to the abort; the Checker remains reusable. Unlike MaxStates
// (soft truncation: Stats.Truncated, no error), a state budget is a hard
// failure for callers that must not trust partial verdicts.
var ErrStateBudget = errors.New("core: exploration state budget exceeded")

// ErrMemoryBudget reports an exploration stopped because its zone memory
// exceeded Options.MaxBytes. The accompanying Stats are the partial effort up
// to the abort; the Checker remains reusable.
var ErrMemoryBudget = errors.New("core: exploration memory budget exceeded")

// PanicError is the per-run error a contained worker crash converts into: the
// run fails like a canceled one (partial Stats, reusable Checker) instead of
// taking the process down. The panicked worker abandons its succCtx — and
// with it every zone and state it owned — to the run's pools; nothing
// possibly-corrupt is ever recycled into a later run.
type PanicError struct {
	// Worker is the index of the crashed worker.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the crashed goroutine's stack at recovery.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("core: worker %d panicked: %v", p.Worker, p.Value)
}

// budgetCell is one worker's published zone-allocation bytes, padded so
// neighboring workers' stores never share a cache line.
type budgetCell struct {
	bytes atomic.Int64
	_     [56]byte
}

// memBudget accounts a run's zone memory against Options.MaxBytes.
type memBudget struct {
	limit int64
	// zoneBytes is the size of one pooled matrix (dim² bounds).
	zoneBytes int64
	// base charges the allocations made before workers start: the initial
	// state's zone and its store copy (drawn from the init pool).
	base  int64
	cells []budgetCell
}

func newMemBudget(limit int64, dim, workers int) *memBudget {
	zb := dbm.ZoneBytes(dim)
	return &memBudget{
		limit:     limit,
		zoneBytes: zb,
		base:      2 * zb,
		cells:     make([]budgetCell, workers),
	}
}

// publish stores worker w's pool allocation into its cell; single writer.
func (b *memBudget) publish(w int, pool *dbm.Pool) {
	gets, reuses := pool.Stats()
	b.cells[w].bytes.Store(int64(gets-reuses) * b.zoneBytes)
}

// exceeded sums every worker's published bytes against the limit.
func (b *memBudget) exceeded() bool {
	total := b.base
	for i := range b.cells {
		total += b.cells[i].bytes.Load()
	}
	return total > b.limit
}
