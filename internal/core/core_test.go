package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// buildSimple constructs: P: L0 (inv x ≤ 10) --[x ≥ 4 or x > 4]--> L1
// (committed), with a free-running global clock y. The supremum of y at L1 is
// exactly the latest entry time.
func buildSimple(t *testing.T, strictInv bool) (*ta.Network, ta.Clock, *ta.Process) {
	t.Helper()
	n := ta.NewNetwork("simple")
	x := n.AddClock("x")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 100)
	p := n.AddProcess("P")
	var inv ta.Constraint
	if strictInv {
		inv = ta.CLT(x, 10)
	} else {
		inv = ta.CLE(x, 10)
	}
	l0 := p.AddLocation("L0", ta.Normal, inv)
	l1 := p.AddLocation("L1", ta.Committed)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: []ta.Constraint{ta.CGE(x, 4)}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n, y, p
}

func atLoc(p *ta.Process, pi ta.ProcID, name string) func(*State) bool {
	l := p.LocByName(name)
	return func(s *State) bool { return s.Locs[pi] == l }
}

func TestSupClockWeakBound(t *testing.T) {
	n, y, p := buildSimple(t, false)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seen || res.Unbounded {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Max != dbm.LE(10) {
		t.Errorf("sup y = %v, want <=10", res.Max)
	}
}

func TestSupClockStrictBound(t *testing.T) {
	n, y, p := buildSimple(t, true)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != dbm.LT(10) {
		t.Errorf("sup y = %v, want <10 (never attained)", res.Max)
	}
}

func TestSupClockUnboundedBeyondHorizon(t *testing.T) {
	// A looping generator resets x but never y, so y grows without bound
	// over iterations. Without a registered horizon for y, extrapolation
	// merges the iterations and the supremum degrades to Unbounded — the
	// documented failure mode when the observation horizon is too small.
	n := ta.NewNetwork("loop")
	x := n.AddClock("x")
	y := n.AddClock("y")
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal, ta.CLE(x, 10))
	l1 := p.AddLocation("L1", ta.Committed)
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 10),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: []ta.Constraint{ta.CGE(x, 4)}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unbounded {
		t.Errorf("expected Unbounded without a registered horizon, got %+v", res)
	}
}

func TestBinarySearchMatchesSup(t *testing.T) {
	n, y, p := buildSimple(t, false)
	c, _ := NewChecker(n)
	bs, err := c.BinarySearchWCRT(y.ID, atLoc(p, 0, "L1"), 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Holds {
		t.Fatal("property must hold below 100")
	}
	// Sup is (≤ 10), attained, so AG(y < C) first holds at C = 11.
	if bs.MinimalC != 11 {
		t.Errorf("MinimalC = %d, want 11", bs.MinimalC)
	}

	n2, y2, p2 := buildSimple(t, true)
	c2, _ := NewChecker(n2)
	bs2, err := c2.BinarySearchWCRT(y2.ID, atLoc(p2, 0, "L1"), 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sup is (< 10), never attained, so AG(y < C) already holds at C = 10.
	if bs2.MinimalC != 10 {
		t.Errorf("MinimalC = %d, want 10 for strict sup", bs2.MinimalC)
	}
}

func TestBinarySearchFailsAtHorizon(t *testing.T) {
	n, y, p := buildSimple(t, false)
	c, _ := NewChecker(n)
	bs, err := c.BinarySearchWCRT(y.ID, atLoc(p, 0, "L1"), 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Holds {
		t.Error("property cannot hold at C=5 when sup is 10")
	}
}

func TestBinarySearchRejectsBadInterval(t *testing.T) {
	n, y, p := buildSimple(t, false)
	c, _ := NewChecker(n)
	if _, err := c.BinarySearchWCRT(y.ID, atLoc(p, 0, "L1"), 5, 5, Options{}); err == nil {
		t.Error("empty interval must be rejected")
	}
}

func TestUrgentChannelForbidsDelay(t *testing.T) {
	// A pending request plus an urgent "hurry" emit must fire before any
	// time elapses, so the global clock is still 0 at the target.
	n := ta.NewNetwork("urgent")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 100)
	pend := n.AddVar("pending", 1, 0, 1)
	hurry := n.AddChan("hurry", ta.BroadcastUrgent)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal)
	l1 := p.AddLocation("L1", ta.Committed)
	p.AddEdge(ta.Edge{
		Src: l0, Dst: l1,
		Guard:  ta.VarCmp(pend, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Update: ta.Inc(pend, -1),
	})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Max != dbm.LE(0) {
		t.Errorf("sup y at L1 = %v, want <=0 (urgent transition)", res.Max)
	}
}

func TestNonUrgentChannelAllowsDelay(t *testing.T) {
	// Same model with a plain broadcast channel: the emitter may wait, so y
	// is unbounded at L0 but the zone at L1 keeps y ≥ 0 arbitrary. The sup
	// at L1 (committed, bounded by the horizon via extrapolation) must be
	// Unbounded, demonstrating the semantic difference.
	n := ta.NewNetwork("lazy")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 50)
	pend := n.AddVar("pending", 1, 0, 1)
	ch := n.AddChan("go", ta.Broadcast)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal)
	l1 := p.AddLocation("L1", ta.Committed)
	p.AddEdge(ta.Edge{
		Src: l0, Dst: l1,
		Guard:  ta.VarCmp(pend, ta.Gt, 0),
		Sync:   ta.Sync{Chan: ch.ID, Dir: ta.Emit},
		Update: ta.Inc(pend, -1),
	})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unbounded {
		t.Errorf("sup y at L1 should be unbounded for a lazy channel, got %v", res.Max)
	}
}

func TestBinarySyncPairsProcesses(t *testing.T) {
	n := ta.NewNetwork("pair")
	x := n.AddClock("x")
	a := n.AddChan("a", ta.Binary)
	ps := n.AddProcess("S")
	s0 := ps.AddLocation("s0", ta.Normal, ta.CLE(x, 5))
	s1 := ps.AddLocation("s1", ta.Normal)
	ps.AddEdge(ta.Edge{Src: s0, Dst: s1, ClockGuard: ta.CEq(x, 5),
		Sync: ta.Sync{Chan: a.ID, Dir: ta.Emit}})
	pr := n.AddProcess("R")
	r0 := pr.AddLocation("r0", ta.Normal)
	r1 := pr.AddLocation("r1", ta.Normal)
	pr.AddEdge(ta.Edge{Src: r0, Dst: r1, Sync: ta.Sync{Chan: a.ID, Dir: ta.Recv}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	found, trace, _, err := c.Reachable(func(st *State) bool {
		return st.Locs[0] == s1 && st.Locs[1] == r1
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("binary sync must move both processes")
	}
	if len(trace) != 2 {
		t.Errorf("trace length = %d, want 2 (init + sync)", len(trace))
	}
	// A state where only one side moved must be unreachable.
	half, _, _, err := c.Reachable(func(st *State) bool {
		return (st.Locs[0] == s1) != (st.Locs[1] == r1)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if half {
		t.Error("binary sync must be atomic")
	}
}

func TestBinarySyncBlocksWithoutPartner(t *testing.T) {
	n := ta.NewNetwork("alone")
	a := n.AddChan("a", ta.Binary)
	ps := n.AddProcess("S")
	s0 := ps.AddLocation("s0", ta.Normal)
	s1 := ps.AddLocation("s1", ta.Normal)
	ps.AddEdge(ta.Edge{Src: s0, Dst: s1, Sync: ta.Sync{Chan: a.ID, Dir: ta.Emit}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	found, _, _, err := c.Reachable(func(st *State) bool { return st.Locs[0] == s1 }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("binary emit without receiver must block")
	}
}

func TestBroadcastReachesAllReceivers(t *testing.T) {
	n := ta.NewNetwork("bcast")
	b := n.AddChan("b", ta.Broadcast)
	ps := n.AddProcess("S")
	s0 := ps.AddLocation("s0", ta.Normal)
	s1 := ps.AddLocation("s1", ta.Normal)
	ps.AddEdge(ta.Edge{Src: s0, Dst: s1, Sync: ta.Sync{Chan: b.ID, Dir: ta.Emit}})
	var rls []ta.LocID
	for i := 0; i < 3; i++ {
		pr := n.AddProcess("R")
		r0 := pr.AddLocation("r0", ta.Normal)
		r1 := pr.AddLocation("r1", ta.Normal)
		pr.AddEdge(ta.Edge{Src: r0, Dst: r1, Sync: ta.Sync{Chan: b.ID, Dir: ta.Recv}})
		rls = append(rls, r1)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	// All receivers move in the same transition: a state with the sender
	// moved but any receiver left behind must be unreachable.
	partial, _, _, err := c.Reachable(func(st *State) bool {
		if st.Locs[0] != s1 {
			return false
		}
		for i, rl := range rls {
			if st.Locs[i+1] != rl {
				return true
			}
		}
		return false
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if partial {
		t.Error("broadcast must move every enabled receiver atomically")
	}
	all, _, _, err := c.Reachable(func(st *State) bool {
		if st.Locs[0] != s1 {
			return false
		}
		for i, rl := range rls {
			if st.Locs[i+1] != rl {
				return false
			}
		}
		return true
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !all {
		t.Error("broadcast with all receivers must be reachable")
	}
}

func TestBroadcastWithoutReceiversFires(t *testing.T) {
	n := ta.NewNetwork("bcast0")
	b := n.AddChan("b", ta.Broadcast)
	ps := n.AddProcess("S")
	s0 := ps.AddLocation("s0", ta.Normal)
	s1 := ps.AddLocation("s1", ta.Normal)
	ps.AddEdge(ta.Edge{Src: s0, Dst: s1, Sync: ta.Sync{Chan: b.ID, Dir: ta.Emit}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	found, _, _, err := c.Reachable(func(st *State) bool { return st.Locs[0] == s1 }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("broadcast emit must not block without receivers")
	}
}

func TestCommittedLocationHasPriority(t *testing.T) {
	// Process A sits in a committed location; process B has an independent
	// tau edge. From the initial state only A's edge may fire.
	n := ta.NewNetwork("committed")
	vA := n.AddVar("a", 0, 0, 1)
	vB := n.AddVar("b", 0, 0, 1)
	pa := n.AddProcess("A")
	a0 := pa.AddLocation("a0", ta.Committed)
	a1 := pa.AddLocation("a1", ta.Normal)
	pa.AddEdge(ta.Edge{Src: a0, Dst: a1, Update: ta.SetConst(vA, 1)})
	pb := n.AddProcess("B")
	b0 := pb.AddLocation("b0", ta.Normal)
	b1 := pb.AddLocation("b1", ta.Normal)
	pb.AddEdge(ta.Edge{Src: b0, Dst: b1, Update: ta.SetConst(vB, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	// B moving while A is still committed would give b=1, a=0.
	bad, _, _, err := c.Reachable(func(st *State) bool {
		return st.Vars[vB.ID] == 1 && st.Vars[vA.ID] == 0
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("non-committed process fired while another was committed")
	}
	_ = a1
	_ = b1
}

func TestUrgentLocationForbidsDelay(t *testing.T) {
	n := ta.NewNetwork("urgloc")
	x := n.AddClock("x")
	y := n.AddClock("y")
	n.EnsureMaxConst(y.ID, 100)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal, ta.CLE(x, 3))
	l1 := p.AddLocation("L1", ta.UrgentLoc)
	l2 := p.AddLocation("L2", ta.Committed)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: ta.CEq(x, 3)})
	p.AddEdge(ta.Edge{Src: l1, Dst: l2})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// y must be exactly 3 at L2: delay happened only at L0.
	if res.Max != dbm.LE(3) {
		t.Errorf("sup y at L2 = %v, want <=3", res.Max)
	}
}

func TestVarBoundViolationSurfacesAsError(t *testing.T) {
	n := ta.NewNetwork("overflow")
	v := n.AddVar("v", 0, 0, 2)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal)
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, Update: ta.Inc(v, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	_, err := c.Explore(Options{}, nil)
	if err == nil {
		t.Error("unbounded increment must surface as an analysis error")
	}
}

func TestMaxStatesTruncates(t *testing.T) {
	// An infinite-ish system: periodic generator, states distinguished by a
	// wrapping counter would terminate; use a var that grows within bounds.
	n := ta.NewNetwork("big")
	x := n.AddClock("x")
	v := n.AddVar("v", 0, 0, 1000)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal, ta.CLE(x, 1))
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 1),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: ta.Inc(v, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.Explore(Options{MaxStates: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("exploration must be truncated at MaxStates")
	}
	if res.Stored < 10 {
		t.Errorf("stored %d states, want >= 10", res.Stored)
	}
}

func TestSearchOrdersAgreeOnReachability(t *testing.T) {
	n := ta.NewNetwork("orders")
	x := n.AddClock("x")
	v := n.AddVar("v", 0, 0, 5)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal, ta.CLE(x, 2))
	l1 := p.AddLocation("L1", ta.Normal, ta.CLE(x, 2))
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: ta.CEq(x, 2),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: ta.Inc(v, 1)})
	p.AddEdge(ta.Edge{Src: l1, Dst: l0, ClockGuard: ta.CEq(x, 1),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})
	p.AddEdge(ta.Edge{Src: l1, Dst: l0, ClockGuard: ta.CEq(x, 2),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: ta.Inc(v, -1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	pred := func(st *State) bool { return st.Vars[v.ID] == 3 }
	for _, order := range []Order{BFS, DFS, RDFS} {
		found, _, _, err := c.Reachable(pred, Options{Order: order, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Errorf("order %v: v==3 must be reachable", order)
		}
	}
}

func TestSafetyCounterexampleTrace(t *testing.T) {
	n := ta.NewNetwork("trace")
	x := n.AddClock("x")
	v := n.AddVar("v", 0, 0, 3)
	p := n.AddProcess("P")
	l0 := p.AddLocation("L0", ta.Normal, ta.CLE(x, 1))
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 1),
		Guard:  ta.VarCmp(v, ta.Lt, 3), // keep the state space finite
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}, Update: ta.Inc(v, 1)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	sr, err := c.CheckSafety(Property{
		Desc:  "v stays below 2",
		Holds: func(st *State) bool { return st.Vars[v.ID] < 2 },
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Holds {
		t.Fatal("property must be violated")
	}
	if len(sr.Counterexample) != 3 {
		t.Errorf("counterexample length = %d, want 3 (init + two ticks)", len(sr.Counterexample))
	}
	if s := FormatTrace(n, sr.Counterexample); s == "" {
		t.Error("trace must render")
	}
	// Error case: the checker with a vacuous property holds.
	sr2, err := c.CheckSafety(Property{Desc: "true", Holds: func(*State) bool { return true }},
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sr2.Holds {
		t.Error("vacuous property must hold")
	}
}

func TestPeriodicServerResponse(t *testing.T) {
	// Periodic generator (P=10) feeding a 3-unit server through a counter
	// and an urgent channel: the classic pattern of the paper's Fig 4. The
	// server's busy clock never exceeds 3 and requests never queue.
	n := ta.NewNetwork("server")
	gx := n.AddClock("gx")
	sx := n.AddClock("sx")
	rec := n.AddVar("rec", 0, 0, 5)
	hurry := n.AddChan("hurry", ta.BroadcastUrgent)

	gen := n.AddProcess("GEN")
	g0 := gen.AddLocation("g0", ta.Normal, ta.CLE(gx, 10))
	gen.AddEdge(ta.Edge{Src: g0, Dst: g0, ClockGuard: ta.CEq(gx, 10),
		Resets: []ta.Reset{{Clock: gx.ID, Value: 0}}, Update: ta.Inc(rec, 1)})

	srv := n.AddProcess("SRV")
	idle := srv.AddLocation("idle", ta.Normal)
	busy := srv.AddLocation("busy", ta.Normal, ta.CLE(sx, 3))
	srv.AddEdge(ta.Edge{Src: idle, Dst: busy,
		Guard:  ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Resets: []ta.Reset{{Clock: sx.ID, Value: 0}},
		Update: ta.Inc(rec, -1)})
	srv.AddEdge(ta.Edge{Src: busy, Dst: idle, ClockGuard: ta.CEq(sx, 3)})

	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	sr, err := c.CheckSafety(Property{
		Desc:  "no queueing",
		Holds: func(st *State) bool { return st.Vars[rec.ID] <= 1 },
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Holds {
		t.Errorf("requests must never queue with P=10, C=3:\n%s",
			FormatTrace(n, sr.Counterexample))
	}
	// Binary search on the server's busy clock: minimal C with
	// AG(busy → sx < C) is 4 because sx attains 3.
	bs, err := c.BinarySearchWCRT(sx.ID, func(st *State) bool { return st.Locs[1] == busy },
		0, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Holds || bs.MinimalC != 4 {
		t.Errorf("minimal C = %d (holds=%v), want 4", bs.MinimalC, bs.Holds)
	}
}

func TestStatsAndStrings(t *testing.T) {
	n, y, p := buildSimple(t, false)
	c, _ := NewChecker(n)
	res, err := c.SupClock(y.ID, atLoc(p, 0, "L1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored < 2 || res.Popped < 1 {
		t.Errorf("implausible stats: %+v", res.Stats)
	}
	if res.Stats.String() == "" || BFS.String() != "bfs" || DFS.String() != "df" || RDFS.String() != "rdf" {
		t.Error("string renderings broken")
	}
	if c.Network() != n {
		t.Error("Network accessor broken")
	}
}

func TestUnfinalizedNetworkRejected(t *testing.T) {
	n := ta.NewNetwork("raw")
	n.AddProcess("P").AddLocation("l", ta.Normal)
	if _, err := NewChecker(n); err == nil {
		t.Error("unfinalized network must be rejected")
	}
}
