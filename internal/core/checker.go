package core

import (
	"fmt"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// parallelism is the single place Options.Workers is interpreted: it reports
// whether the unified explorer runs on the work-stealing parallel frontier
// and with how many workers. Every query kind routes through it — Explore
// consults it directly, so trace-producing queries (CheckSafety, Reachable,
// CheckDeadlockFree, SupClock witnesses) honor Workers exactly like the
// trace-free reductions; parallel runs reconstruct their traces from the
// per-worker parent logs (explore.go).
func (o Options) parallelism() (workers int, parallel bool) {
	if o.Workers <= 1 {
		return 1, false
	}
	return o.Workers, true
}

// Property is a state predicate to be verified invariantly (AG Holds).
type Property struct {
	Desc  string
	Holds func(*State) bool
}

// SafetyResult is the outcome of CheckSafety.
type SafetyResult struct {
	Stats
	// Holds reports whether the property held on every explored state. When
	// the exploration was truncated, Holds true is inconclusive.
	Holds bool
	// Counterexample is a trace to a violating state when Holds is false.
	Counterexample []TraceStep
}

// CheckSafety verifies AG prop.Holds by exhaustive symbolic reachability,
// returning a counterexample trace on violation. With Options.Workers > 1
// the exploration is parallel and prop.Holds is evaluated concurrently —
// pure predicates (the normal case) need no further care.
func (c *Checker) CheckSafety(prop Property, opts Options) (SafetyResult, error) {
	res, err := c.Explore(opts, func(s *State) bool { return !prop.Holds(s) })
	if err != nil {
		return SafetyResult{}, err
	}
	return SafetyResult{
		Stats:          res.Stats,
		Holds:          !res.Found,
		Counterexample: res.Trace,
	}, nil
}

// Reachable reports whether a state satisfying pred is reachable, with a
// witness trace. Workers > 1 explores in parallel; pred is then evaluated
// concurrently.
func (c *Checker) Reachable(pred func(*State) bool, opts Options) (bool, []TraceStep, Stats, error) {
	res, err := c.Explore(opts, pred)
	if err != nil {
		return false, nil, Stats{}, err
	}
	return res.Found, res.Trace, res.Stats, nil
}

// SupResult is the outcome of SupClock.
type SupResult struct {
	Stats
	// Seen reports whether any state satisfied the condition.
	Seen bool
	// Max is the supremum bound of the clock over all condition states, with
	// exact strictness: (≤ v) means v is attained, (< v) means approached.
	Max dbm.Bound
	// Unbounded reports that the clock's upper bound was abstracted to
	// infinity by extrapolation in some condition state, i.e. the supremum
	// lies beyond the registered maximal constant (observation horizon).
	Unbounded bool
	// Witness is a trace to the first unbounded state when Unbounded is set,
	// on the sequential and the parallel path alike. For bounded results no
	// witness is recorded (the supremum emerges from the whole sweep, not
	// one stop state); use Reachable against the computed bound to
	// materialize one, as arch.WCRTWitness does.
	Witness []TraceStep
}

// supAcc is one worker's supremum accumulator, padded so neighboring
// workers' writes never share a cache line.
type supAcc struct {
	max  dbm.Bound
	seen bool
	_    [48]byte
}

// SupClock computes the supremum of clock over every reachable state
// satisfying cond. This is the single-pass alternative to the paper's manual
// binary search: because the observer's "seen" location is committed, no
// delay is folded into those states and the zone's upper bound on the
// measuring clock is exactly the response time of the measured event.
//
// It is a thin wrapper over a one-element query set (SupClockQuery): each
// worker reduces into its own accumulator and the results merge after the
// exploration barrier, so the hot visitor path is lock-free on the
// sequential and the parallel frontier alike. To measure several clocks from
// a single sweep, pass multiple SupClockQueries to RunQueries instead — that
// is what arch.AnalyzeAll does for whole requirement sets.
//
// The clock's maximal constant (ta.Network.EnsureMaxConst) must be at least
// the largest value of interest; beyond it the result degrades to Unbounded.
func (c *Checker) SupClock(clock ta.ClockID, cond func(*State) bool, opts Options) (SupResult, error) {
	q := NewSupClockQuery(clock, cond)
	_, err := c.RunQueries(opts, q)
	return q.Result, err
}

// BinarySearchResult is the outcome of BinarySearchWCRT.
type BinarySearchResult struct {
	// MinimalC is the least integer C in (lo, hi] for which
	// AG(cond → clock < C) holds.
	MinimalC int64
	// Holds reports whether any C ≤ hi satisfied the property; when false,
	// hi is a strict lower bound on the WCRT.
	Holds bool
	// Iterations counts model-checking runs performed.
	Iterations int
	// TotalStats accumulates effort over all runs.
	TotalStats Stats
}

// BinarySearchWCRT reproduces the paper's methodology for Property 1:
// find the smallest constant C in (lo, hi] for which AG(cond → clock < C)
// is satisfied. The WCRT then lies in [C-1, C).
//
// The paper re-model-checks per threshold; since the zone graph is identical
// across thresholds, this implementation explores it ONCE — a single
// supremum sweep — and answers every threshold of the bisection from the
// recorded bound: AG(cond → clock < C) holds exactly when the supremum over
// all cond-states is below (≤ C). The bisection itself runs on integers, so
// Iterations is now always 1 (one exploration) and TotalStats is that
// sweep's effort. MinimalC is bit-identical to the paper's per-threshold
// procedure by construction, because the per-state test it model-checked —
// Sup(clock) < (≤ C) — is evaluated against the same suprema.
func (c *Checker) BinarySearchWCRT(clock ta.ClockID, cond func(*State) bool,
	lo, hi int64, opts Options) (BinarySearchResult, error) {
	if lo < 0 || hi <= lo {
		return BinarySearchResult{}, fmt.Errorf("core: invalid binary search interval (%d, %d]", lo, hi)
	}
	sup, err := c.SupClock(clock, cond, opts)
	out := BinarySearchResult{Iterations: 1, TotalStats: sup.Stats}
	if err != nil {
		return out, err
	}
	// holds replays one threshold check of the paper's loop against the
	// sweep's supremum: AG(cond → clock < C) ⟺ no cond-state admits a
	// valuation with clock ≥ C ⟺ max Sup(clock) < (≤ C). An unbounded
	// supremum (beyond the extrapolation horizon) fails every threshold,
	// exactly as the per-threshold runs would have.
	holds := func(C int64) bool {
		if !sup.Seen {
			return true
		}
		if sup.Unbounded {
			return false
		}
		return sup.Max < dbm.LE(C)
	}
	if sup.Truncated {
		// A truncated sweep's supremum is a lower bound on the true one. It
		// can still definitively REFUTE — some admitted state already
		// reaches hi, the counterexample the per-threshold procedure would
		// have stopped at within the same budget — but it cannot verify.
		if !holds(hi) {
			out.Holds = false
			return out, nil
		}
		return out, fmt.Errorf("core: binary search exploration truncated at %d states", sup.Stored)
	}
	if !holds(hi) {
		out.Holds = false
		return out, nil
	}
	out.Holds = true
	// Bisection invariant: the property is assumed to fail at lo (lo is an
	// exclusive lower bound supplied by the caller, typically 0) and has
	// been verified at hi. Monotonicity in C makes the search exact.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if holds(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	out.MinimalC = hi
	return out, nil
}

// DeadlockResult is the outcome of CheckDeadlockFree.
type DeadlockResult struct {
	Stats
	// Free reports whether no reachable state deadlocks. Inconclusive when
	// the exploration was truncated.
	Free bool
	// Witness is a trace to the first deadlocked state when Free is false.
	Witness []TraceStep
}

// CheckDeadlockFree explores the zone graph looking for states with no
// action successor (UPPAAL's "deadlock" property). Because stored states are
// closed under delay, a state without successors admits no escape at any
// future time point. It is a thin wrapper over a one-element query set
// (DeadlockQuery), so alone it stops at the first deadlock exactly as
// before, while the same query inside a larger RunQueries set lets the
// sweep keep serving the other queries. With Workers > 1 the search is
// parallel; "first" then means the first deadlock any worker reaches, and
// the witness trace is stitched from the parent logs like every other
// parallel trace.
func (c *Checker) CheckDeadlockFree(opts Options) (DeadlockResult, error) {
	q := NewDeadlockQuery()
	_, err := c.RunQueries(opts, q)
	if err != nil {
		return DeadlockResult{}, err
	}
	return q.Result, nil
}

// MaxVarResult is the outcome of MaxVar.
type MaxVarResult struct {
	Stats
	// Max is the largest value the variable takes over all reachable
	// states; Min is the smallest.
	Max, Min int64
	// Seen reports whether any state matched the condition.
	Seen bool
}

// maxVarAcc is one worker's range accumulator, padded against false sharing.
type maxVarAcc struct {
	max, min int64
	seen     bool
	_        [40]byte
}

// MaxVar computes the range of an integer variable over all reachable states
// satisfying cond (nil means all states) — e.g. the peak queue depth of a
// pending-events counter, or the largest preemption accumulator D, the
// quantity the paper's Section 3.1 asks to bound before model checking.
//
// It is a thin wrapper over a one-element query set (MaxVarQuery): the
// reduction is per-worker and merges at the exploration barrier, no lock
// anywhere, sequential or parallel.
func (c *Checker) MaxVar(v ta.VarID, cond func(*State) bool, opts Options) (MaxVarResult, error) {
	q := NewMaxVarQuery(v, cond)
	opts.noTrace = true // the query never requests a trace; skip parent logs
	_, err := c.RunQueries(opts, q)
	return q.Result, err
}
