package core

import (
	"fmt"
	"sync"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// parallelism is the single place Options.Workers is interpreted for the
// trace-free query kinds (SupClock, MaxVar): it reports whether to run on
// the parallel explorer and with how many workers. Trace-producing queries
// never consult it — trace reconstruction requires the arena only the
// sequential Explore maintains, so they call Explore directly.
func (o Options) parallelism() (workers int, parallel bool) {
	if o.Workers <= 1 {
		return 1, false
	}
	return o.Workers, true
}

// Property is a state predicate to be verified invariantly (AG Holds).
type Property struct {
	Desc  string
	Holds func(*State) bool
}

// SafetyResult is the outcome of CheckSafety.
type SafetyResult struct {
	Stats
	// Holds reports whether the property held on every explored state. When
	// the exploration was truncated, Holds true is inconclusive.
	Holds bool
	// Counterexample is a trace to a violating state when Holds is false.
	Counterexample []TraceStep
}

// CheckSafety verifies AG prop.Holds by exhaustive symbolic reachability,
// returning a counterexample trace on violation.
func (c *Checker) CheckSafety(prop Property, opts Options) (SafetyResult, error) {
	res, err := c.Explore(opts, func(s *State) bool { return !prop.Holds(s) })
	if err != nil {
		return SafetyResult{}, err
	}
	return SafetyResult{
		Stats:          res.Stats,
		Holds:          !res.Found,
		Counterexample: res.Trace,
	}, nil
}

// Reachable reports whether a state satisfying pred is reachable, with a
// witness trace.
func (c *Checker) Reachable(pred func(*State) bool, opts Options) (bool, []TraceStep, Stats, error) {
	res, err := c.Explore(opts, pred)
	if err != nil {
		return false, nil, Stats{}, err
	}
	return res.Found, res.Trace, res.Stats, nil
}

// SupResult is the outcome of SupClock.
type SupResult struct {
	Stats
	// Seen reports whether any state satisfied the condition.
	Seen bool
	// Max is the supremum bound of the clock over all condition states, with
	// exact strictness: (≤ v) means v is attained, (< v) means approached.
	Max dbm.Bound
	// Unbounded reports that the clock's upper bound was abstracted to
	// infinity by extrapolation in some condition state, i.e. the supremum
	// lies beyond the registered maximal constant (observation horizon).
	Unbounded bool
	// Witness is a trace to the state realizing Max (or the first unbounded
	// state). It is nil when the query ran on the parallel explorer
	// (Options.Workers > 1), which does not reconstruct traces.
	Witness []TraceStep
}

// SupClock computes the supremum of clock over every reachable state
// satisfying cond. This is the single-pass alternative to the paper's manual
// binary search: because the observer's "seen" location is committed, no
// delay is folded into those states and the zone's upper bound on the
// measuring clock is exactly the response time of the measured event.
//
// The clock's maximal constant (ta.Network.EnsureMaxConst) must be at least
// the largest value of interest; beyond it the result degrades to Unbounded.
func (c *Checker) SupClock(clock ta.ClockID, cond func(*State) bool, opts Options) (SupResult, error) {
	if w, par := opts.parallelism(); par {
		return c.SupClockParallel(clock, cond, opts, w)
	}
	out := SupResult{Max: dbm.LT(0)}
	res, err := c.Explore(opts, func(s *State) bool {
		if !cond(s) {
			return false
		}
		out.Seen = true
		b := s.Zone.Sup(int(clock))
		if b == dbm.Infinity {
			out.Unbounded = true
			return true // nothing larger can be learned
		}
		if b > out.Max {
			out.Max = b
		}
		return false
	})
	if err != nil {
		return out, err
	}
	out.Stats = res.Stats
	if res.Found {
		out.Witness = res.Trace
	}
	return out, nil
}

// BinarySearchResult is the outcome of BinarySearchWCRT.
type BinarySearchResult struct {
	// MinimalC is the least integer C in (lo, hi] for which
	// AG(cond → clock < C) holds.
	MinimalC int64
	// Holds reports whether any C ≤ hi satisfied the property; when false,
	// hi is a strict lower bound on the WCRT.
	Holds bool
	// Iterations counts model-checking runs performed.
	Iterations int
	// TotalStats accumulates effort over all runs.
	TotalStats Stats
}

// BinarySearchWCRT reproduces the paper's methodology for Property 1:
// repeatedly model check AG(cond → clock < C), halving the interval
// (lo, hi], to find the smallest constant C for which the property is
// satisfied. The WCRT then lies in [C-1, C).
//
// SupClock gives the same answer in one pass; this entry point exists to
// reproduce — and cross-validate against — the paper's procedure.
func (c *Checker) BinarySearchWCRT(clock ta.ClockID, cond func(*State) bool,
	lo, hi int64, opts Options) (BinarySearchResult, error) {
	if lo < 0 || hi <= lo {
		return BinarySearchResult{}, fmt.Errorf("core: invalid binary search interval (%d, %d]", lo, hi)
	}
	var out BinarySearchResult
	check := func(C int64) (bool, error) {
		out.Iterations++
		prop := Property{
			Desc: fmt.Sprintf("AG(cond -> x%d < %d)", clock, C),
			Holds: func(s *State) bool {
				if !cond(s) {
					return true
				}
				// The zone admits a valuation with clock ≥ C exactly when
				// its upper bound is at least (≤ C).
				return s.Zone.Sup(int(clock)) < dbm.LE(C)
			},
		}
		sr, err := c.CheckSafety(prop, opts)
		if err != nil {
			return false, err
		}
		out.TotalStats.Stored += sr.Stored
		out.TotalStats.Popped += sr.Popped
		out.TotalStats.Transitions += sr.Transitions
		out.TotalStats.Duration += sr.Duration
		if sr.Truncated {
			return false, fmt.Errorf("core: binary search exploration truncated at %d states", sr.Stored)
		}
		return sr.Holds, nil
	}
	ok, err := check(hi)
	if err != nil {
		return out, err
	}
	if !ok {
		out.Holds = false
		return out, nil
	}
	out.Holds = true
	// Bisection invariant: the property is assumed to fail at lo (lo is an
	// exclusive lower bound supplied by the caller, typically 0) and has
	// been verified at hi. Monotonicity in C makes the search exact.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := check(mid)
		if err != nil {
			return out, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	out.MinimalC = hi
	return out, nil
}

// DeadlockResult is the outcome of CheckDeadlockFree.
type DeadlockResult struct {
	Stats
	// Free reports whether no reachable state deadlocks. Inconclusive when
	// the exploration was truncated.
	Free bool
	// Witness is a trace to the first deadlocked state when Free is false.
	Witness []TraceStep
}

// CheckDeadlockFree explores the zone graph looking for states with no
// action successor (UPPAAL's "deadlock" property). Because stored states are
// closed under delay, a state without successors admits no escape at any
// future time point.
func (c *Checker) CheckDeadlockFree(opts Options) (DeadlockResult, error) {
	opts.StopAtDeadlock = true
	res, err := c.Explore(opts, nil)
	if err != nil {
		return DeadlockResult{}, err
	}
	return DeadlockResult{
		Stats:   res.Stats,
		Free:    res.Deadlocks == 0,
		Witness: res.DeadlockTrace,
	}, nil
}

// MaxVarResult is the outcome of MaxVar.
type MaxVarResult struct {
	Stats
	// Max is the largest value the variable takes over all reachable
	// states; Min is the smallest.
	Max, Min int64
	// Seen reports whether any state matched the condition.
	Seen bool
}

// MaxVar computes the range of an integer variable over all reachable states
// satisfying cond (nil means all states) — e.g. the peak queue depth of a
// pending-events counter, or the largest preemption accumulator D, the
// quantity the paper's Section 3.1 asks to bound before model checking.
func (c *Checker) MaxVar(v ta.VarID, cond func(*State) bool, opts Options) (MaxVarResult, error) {
	out := MaxVarResult{Max: -1 << 62, Min: 1<<62 - 1}
	visit := func(s *State) bool {
		if cond != nil && !cond(s) {
			return false
		}
		out.Seen = true
		if s.Vars[v] > out.Max {
			out.Max = s.Vars[v]
		}
		if s.Vars[v] < out.Min {
			out.Min = s.Vars[v]
		}
		return false
	}
	var res ExploreResult
	var err error
	if w, par := opts.parallelism(); par {
		// Wrap the visitor in a lock only on the concurrent path; the
		// sequential hot loop stays lock-free.
		var mu sync.Mutex
		res, err = c.ExploreParallel(opts, w, func(s *State) bool {
			mu.Lock()
			defer mu.Unlock()
			return visit(s)
		})
	} else {
		res, err = c.Explore(opts, visit)
	}
	if err != nil {
		return out, err
	}
	out.Stats = res.Stats
	return out, nil
}
