package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

func mkState(locs []ta.LocID, vars []int64, hi int64) *State {
	z := dbm.New(2)
	z.Up()
	z.Constrain(1, 0, dbm.LE(hi))
	return &State{Locs: locs, Vars: vars, Zone: z}
}

func TestStoreSubsumption(t *testing.T) {
	st := newStore(dbm.NewPool(2))
	locs := []ta.LocID{0}
	vars := []int64{0}
	if !st.Add(mkState(locs, vars, 10)) {
		t.Fatal("first state must be new")
	}
	if st.Add(mkState(locs, vars, 5)) {
		t.Error("included zone must be subsumed")
	}
	if st.Len() != 1 {
		t.Errorf("store length = %d, want 1", st.Len())
	}
	if !st.Add(mkState(locs, vars, 20)) {
		t.Error("larger zone must be admitted")
	}
	// The larger zone covers the earlier one, which must have been pruned.
	if st.Len() != 1 {
		t.Errorf("store length after covering add = %d, want 1 (pruned)", st.Len())
	}
}

func TestStoreDistinguishesDiscreteParts(t *testing.T) {
	st := newStore(dbm.NewPool(2))
	if !st.Add(mkState([]ta.LocID{0}, []int64{0}, 10)) ||
		!st.Add(mkState([]ta.LocID{1}, []int64{0}, 10)) ||
		!st.Add(mkState([]ta.LocID{0}, []int64{1}, 10)) {
		t.Fatal("distinct discrete parts must all be admitted")
	}
	if st.Len() != 3 {
		t.Errorf("store length = %d, want 3", st.Len())
	}
}

func TestStoreIncomparableZonesCoexist(t *testing.T) {
	st := newStore(dbm.NewPool(2))
	locs := []ta.LocID{0}
	vars := []int64{0}
	// x <= 10 and x >= 5 (upper bound infinity) are incomparable.
	a := mkState(locs, vars, 10)
	b := &State{Locs: locs, Vars: vars, Zone: dbm.Universe(2)}
	b.Zone.Constrain(0, 1, dbm.LE(-5))
	if !st.Add(a) || !st.Add(b) {
		t.Fatal("incomparable zones must both be admitted")
	}
	if st.Len() != 2 {
		t.Errorf("store length = %d, want 2", st.Len())
	}
}

func TestPStoreMatchesStore(t *testing.T) {
	seq := newStore(dbm.NewPool(2))
	par := newPStore(64)
	states := []*State{
		mkState([]ta.LocID{0}, []int64{0}, 10),
		mkState([]ta.LocID{0}, []int64{0}, 5),
		mkState([]ta.LocID{0}, []int64{0}, 20),
		mkState([]ta.LocID{1}, []int64{0}, 7),
		mkState([]ta.LocID{1}, []int64{0}, 7),
	}
	for i, s := range states {
		a := seq.Add(&State{Locs: s.Locs, Vars: s.Vars, Zone: s.Zone.Copy()})
		b := par.add(&State{Locs: s.Locs, Vars: s.Vars, Zone: s.Zone.Copy()}, dbm.NewPool(2))
		if a != b {
			t.Errorf("state %d: sequential add=%v parallel add=%v", i, a, b)
		}
	}
	if seq.size() != par.size() {
		t.Errorf("zone counts differ: %d vs %d", seq.size(), par.size())
	}
}
