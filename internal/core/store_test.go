package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

func mkState(locs []ta.LocID, vars []int64, hi int64) *State {
	z := dbm.New(2)
	z.Up()
	z.Constrain(1, 0, dbm.LE(hi))
	return &State{Locs: locs, Vars: vars, Zone: z}
}

func TestStoreSubsumption(t *testing.T) {
	st := newStore()
	locs := []ta.LocID{0}
	vars := []int64{0}
	if !st.Add(mkState(locs, vars, 10)) {
		t.Fatal("first state must be new")
	}
	if st.Add(mkState(locs, vars, 5)) {
		t.Error("included zone must be subsumed")
	}
	if st.Len() != 1 {
		t.Errorf("store length = %d, want 1", st.Len())
	}
	if !st.Add(mkState(locs, vars, 20)) {
		t.Error("larger zone must be admitted")
	}
	// The larger zone covers the earlier one, which must have been pruned.
	if st.Len() != 1 {
		t.Errorf("store length after covering add = %d, want 1 (pruned)", st.Len())
	}
}

func TestStoreDistinguishesDiscreteParts(t *testing.T) {
	st := newStore()
	if !st.Add(mkState([]ta.LocID{0}, []int64{0}, 10)) ||
		!st.Add(mkState([]ta.LocID{1}, []int64{0}, 10)) ||
		!st.Add(mkState([]ta.LocID{0}, []int64{1}, 10)) {
		t.Fatal("distinct discrete parts must all be admitted")
	}
	if st.Len() != 3 {
		t.Errorf("store length = %d, want 3", st.Len())
	}
}

func TestStoreIncomparableZonesCoexist(t *testing.T) {
	st := newStore()
	locs := []ta.LocID{0}
	vars := []int64{0}
	// x <= 10 and x >= 5 (upper bound infinity) are incomparable.
	a := mkState(locs, vars, 10)
	b := &State{Locs: locs, Vars: vars, Zone: dbm.Universe(2)}
	b.Zone.Constrain(0, 1, dbm.LE(-5))
	if !st.Add(a) || !st.Add(b) {
		t.Fatal("incomparable zones must both be admitted")
	}
	if st.Len() != 2 {
		t.Errorf("store length = %d, want 2", st.Len())
	}
}

func TestPStoreMatchesStore(t *testing.T) {
	seq := newStore()
	par := newPStore(64)
	states := []*State{
		mkState([]ta.LocID{0}, []int64{0}, 10),
		mkState([]ta.LocID{0}, []int64{0}, 5),
		mkState([]ta.LocID{0}, []int64{0}, 20),
		mkState([]ta.LocID{1}, []int64{0}, 7),
		mkState([]ta.LocID{1}, []int64{0}, 7),
	}
	for i, s := range states {
		a := seq.Add(&State{Locs: s.Locs, Vars: s.Vars, Zone: s.Zone.Copy()})
		b := par.add(&State{Locs: s.Locs, Vars: s.Vars, Zone: s.Zone.Copy()})
		if a != b {
			t.Errorf("state %d: sequential add=%v parallel add=%v", i, a, b)
		}
	}
	if seq.size() != par.size() {
		t.Errorf("zone counts differ: %d vs %d", seq.size(), par.size())
	}
	// Packed zone bytes agree exactly; intern bytes may differ (the pstore
	// interns per shard, so cross-shard repeats are stored once per shard).
	if seq.zoneBytes.Load() != par.zoneBytes.Load() {
		t.Errorf("packed zone bytes differ: %d vs %d", seq.zoneBytes.Load(), par.zoneBytes.Load())
	}
	if seq.bytes() <= 0 || par.bytes() < seq.bytes() {
		t.Errorf("stored bytes implausible: seq %d, par %d", seq.bytes(), par.bytes())
	}
}

// TestStoreTracksStoredBytes pins the actual-footprint accounting: bytes()
// must grow on admission, shrink when a covering zone prunes a stored one,
// and stay put on subsumption.
func TestStoreTracksStoredBytes(t *testing.T) {
	st := newStore()
	// Distinct contents so the locs and vars vectors intern separately (the
	// table is content-addressed across both kinds).
	locs := []ta.LocID{3}
	vars := []int64{0}
	if st.bytes() != 0 {
		t.Fatalf("empty store bytes = %d, want 0", st.bytes())
	}
	st.Add(mkState(locs, vars, 10))
	after1 := st.bytes()
	if after1 <= 0 {
		t.Fatalf("bytes after one admission = %d, want > 0", after1)
	}
	// dim 2 zones fit the 16-bit width: 16-byte header + 4 bounds × 2 bytes,
	// plus the two interned vectors (one word each).
	if want := int64(16+4*2) + 16; after1 != want {
		t.Errorf("bytes after one admission = %d, want %d", after1, want)
	}
	st.Add(mkState(locs, vars, 5)) // subsumed
	if st.bytes() != after1 {
		t.Errorf("bytes changed on subsumed add: %d -> %d", after1, st.bytes())
	}
	st.Add(mkState(locs, vars, 20)) // prunes the x<=10 zone
	if st.bytes() != after1 {
		t.Errorf("bytes after prune+admit = %d, want %d (same-size swap)", st.bytes(), after1)
	}
}

// TestStoreInternsDiscreteVectors pins the intern table: repeats of a
// location vector or variable valuation across distinct discrete states must
// collapse to one shared slice each.
func TestStoreInternsDiscreteVectors(t *testing.T) {
	st := newStore()
	// Same locs, three different vars: locs interned once, hit twice.
	st.Add(mkState([]ta.LocID{7}, []int64{0}, 10))
	st.Add(mkState([]ta.LocID{7}, []int64{1}, 10))
	st.Add(mkState([]ta.LocID{7}, []int64{2}, 10))
	hits, misses := st.internStats()
	if hits != 2 {
		t.Errorf("intern hits = %d, want 2 (repeated location vector)", hits)
	}
	// Misses: locs{7}, vars{0}, vars{1}, vars{2}.
	if misses != 4 {
		t.Errorf("intern misses = %d, want 4", misses)
	}
	var entries []*storeEntry
	for _, b := range st.buckets {
		entries = append(entries, b...)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	for _, e := range entries[1:] {
		if &e.locs[0] != &entries[0].locs[0] {
			t.Error("repeated location vectors not shared between entries")
		}
	}
}
