package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// TestStorePrunedZoneRecycledWithoutAliasing is the ownership contract test
// for the compact store: the store packs its own copies of admitted zones
// into compact-pool buffers, so (a) a pruned stored zone's buffer really
// returns to the compact pool and is reused for the next admission, and
// (b) the packed copy never aliases the state's full zone — mutating one
// never corrupts the other.
func TestStorePrunedZoneRecycledWithoutAliasing(t *testing.T) {
	st := newStore()
	locs := []ta.LocID{0}
	vars := []int64{0}

	small := mkState(locs, vars, 10)
	if !st.Add(small) {
		t.Fatal("first zone must be admitted")
	}
	// The store must have packed its own buffer for small.Zone.
	gets0, _ := st.cpool.Stats()
	if gets0 == 0 {
		t.Fatal("admission must draw the packed copy from the compact pool")
	}

	big := mkState(locs, vars, 20)
	if !st.Add(big) {
		t.Fatal("covering zone must be admitted")
	}
	// small's packed copy was pruned and released inside Add, and the pack
	// of big's zone (same size class) must have reused its buffer —
	// recycling closes the loop within a single Add.
	if _, reuses := st.cpool.Stats(); reuses == 0 {
		t.Fatal("pruned stored zone buffer must be reused for the next packed copy")
	}

	// The caller-owned full zones stay untouched by admission, pruning and
	// buffer recycling...
	if big.Zone.Sup(1) != dbm.LE(20) {
		t.Errorf("caller-owned zone mutated: sup=%v, want <=20", big.Zone.Sup(1))
	}
	if small.Zone.Sup(1) != dbm.LE(10) {
		t.Errorf("caller-owned zone mutated: sup=%v, want <=10", small.Zone.Sup(1))
	}
	// ...and scribbling over them cannot reach the store's packed copies:
	// x<=20 still subsumes x<=15, and x<=25 is still new.
	big.Zone.SetInit()
	small.Zone.SetInit()
	if st.Add(mkState(locs, vars, 15)) {
		t.Error("stored zone corrupted: x<=15 no longer subsumed")
	}
	if !st.Add(mkState(locs, vars, 25)) {
		t.Error("stored zone corrupted: x<=25 not admitted")
	}
}

// TestAddDoesNotRetainCallerZone verifies the reverse direction of the
// contract: mutating a state's zone after admission must not change what
// the store believes, because the store owns an independent copy.
func TestAddDoesNotRetainCallerZone(t *testing.T) {
	st := newStore()
	locs := []ta.LocID{0}
	vars := []int64{0}

	s := mkState(locs, vars, 10)
	if !st.Add(s) {
		t.Fatal("zone must be admitted")
	}
	// Simulate the explorer recycling the state's own zone.
	s.Zone.SetInit()

	if st.Add(mkState(locs, vars, 8)) {
		t.Error("store lost the admitted zone x<=10 after the caller's copy was recycled")
	}
}

// TestSuccessorsSurviveSubsumedSiblingRecycling drives the real engine:
// expanding states whose subsumed successors are recycled must never
// corrupt the admitted ones. The grid exploration revisits many subsumed
// states, so a single aliasing bug makes the stored count or the supremum
// drift (caught against the pre-pool oracle values encoded in
// parallel_test.go as well).
func TestSuccessorsSurviveSubsumedSiblingRecycling(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stored != r2.Stored || r1.Transitions != r2.Transitions {
		t.Errorf("exploration not deterministic under recycling: %v vs %v", r1.Stats, r2.Stats)
	}
	sup, err := c.SupClock(sx.ID, func(s *State) bool { return s.Locs[3] == busy }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Max != dbm.LE(2) {
		t.Errorf("busy clock sup = %v, want <=2", sup.Max)
	}
}
