package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

// TestStorePrunedZoneRecycledWithoutAliasing is the pool-ownership contract
// test: the store keeps its own copies of admitted zones, so (a) a pruned
// stored zone really returns to the pool, and (b) scribbling over a recycled
// matrix never corrupts a stored zone or a state the explorer still holds.
func TestStorePrunedZoneRecycledWithoutAliasing(t *testing.T) {
	pool := dbm.NewPool(2)
	st := newStore(pool)
	locs := []ta.LocID{0}
	vars := []int64{0}

	small := mkState(locs, vars, 10)
	if !st.Add(small) {
		t.Fatal("first zone must be admitted")
	}
	// The store must have copied, not aliased, small.Zone.
	gets0, _ := pool.Stats()
	if gets0 == 0 {
		t.Fatal("admission must draw the stored copy from the pool")
	}

	big := mkState(locs, vars, 20)
	if !st.Add(big) {
		t.Fatal("covering zone must be admitted")
	}
	// small's stored copy was pruned and released inside Add, and the copy
	// of big's zone must have reused it — recycling closes the loop within
	// a single Add.
	if _, reuses := pool.Stats(); reuses == 0 {
		t.Fatal("pruned stored zone must be reused for the next stored copy")
	}

	// Now play the explorer discarding a subsumed state: release its zone,
	// get it back recycled, and scribble over it.
	if st.Add(small) {
		t.Fatal("x<=10 must be subsumed by the stored x<=20")
	}
	pool.Put(small.Zone)
	_, reusesBefore := pool.Stats()
	recycled := pool.Get()
	if _, reuses := pool.Stats(); reuses != reusesBefore+1 {
		t.Fatal("released state zone must be reusable from the pool")
	}
	if recycled != small.Zone {
		t.Fatal("expected the released matrix back from the free list")
	}
	recycled.SetInit()
	recycled.Up()
	recycled.Constrain(1, 0, dbm.LE(999))

	// The state the "explorer" still owns must be intact...
	if big.Zone.Sup(1) != dbm.LE(20) {
		t.Errorf("caller-owned zone mutated: sup=%v, want <=20", big.Zone.Sup(1))
	}
	// ...and so must the stored zone: x<=20 still subsumes x<=15, and
	// x<=25 is still new.
	if st.Add(mkState(locs, vars, 15)) {
		t.Error("stored zone corrupted: x<=15 no longer subsumed")
	}
	if !st.Add(mkState(locs, vars, 25)) {
		t.Error("stored zone corrupted: x<=25 not admitted")
	}
}

// TestAddDoesNotRetainCallerZone verifies the reverse direction of the
// contract: mutating a state's zone after admission must not change what
// the store believes, because the store owns an independent copy.
func TestAddDoesNotRetainCallerZone(t *testing.T) {
	pool := dbm.NewPool(2)
	st := newStore(pool)
	locs := []ta.LocID{0}
	vars := []int64{0}

	s := mkState(locs, vars, 10)
	if !st.Add(s) {
		t.Fatal("zone must be admitted")
	}
	// Simulate the explorer recycling the state's own zone.
	s.Zone.SetInit()

	if st.Add(mkState(locs, vars, 8)) {
		t.Error("store lost the admitted zone x<=10 after the caller's copy was recycled")
	}
}

// TestSuccessorsSurviveSubsumedSiblingRecycling drives the real engine:
// expanding states whose subsumed successors are recycled must never
// corrupt the admitted ones. The grid exploration revisits many subsumed
// states, so a single aliasing bug makes the stored count or the supremum
// drift (caught against the pre-pool oracle values encoded in
// parallel_test.go as well).
func TestSuccessorsSurviveSubsumedSiblingRecycling(t *testing.T) {
	n, sx, _, busy := buildGrid(t)
	c, err := NewChecker(n)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stored != r2.Stored || r1.Transitions != r2.Transitions {
		t.Errorf("exploration not deterministic under recycling: %v vs %v", r1.Stats, r2.Stats)
	}
	sup, err := c.SupClock(sx.ID, func(s *State) bool { return s.Locs[3] == busy }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Max != dbm.LE(2) {
		t.Errorf("busy clock sup = %v, want <=2", sup.Max)
	}
}
