package core

import (
	"testing"

	"repro/internal/dbm"
	"repro/internal/ta"
)

func TestDeadlockDetected(t *testing.T) {
	// A single location with an invariant and no outgoing edge is a
	// time-lock: nothing can ever happen.
	n := ta.NewNetwork("dead")
	x := n.AddClock("x")
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 3))
	l1 := p.AddLocation("stuck", ta.Normal)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, ClockGuard: ta.CEq(x, 3)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.CheckDeadlockFree(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Free {
		t.Fatal("absorbing location must be reported as a deadlock")
	}
	if len(res.Witness) != 2 {
		t.Errorf("witness length = %d, want 2", len(res.Witness))
	}
}

func TestDeadlockFreeCycle(t *testing.T) {
	n := ta.NewNetwork("live")
	x := n.AddClock("x")
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 3))
	p.AddEdge(ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 3),
		Resets: []ta.Reset{{Clock: x.ID, Value: 0}}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.CheckDeadlockFree(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Free {
		t.Errorf("cycling automaton must be deadlock free:\n%s",
			FormatTrace(n, res.Witness))
	}
	if res.Deadlocks != 0 {
		t.Errorf("deadlock count = %d, want 0", res.Deadlocks)
	}
}

func TestBlockedBinarySyncIsDeadlock(t *testing.T) {
	// An emitter without a partner blocks forever.
	n := ta.NewNetwork("blocked")
	a := n.AddChan("a", ta.Binary)
	p := n.AddProcess("P")
	l0 := p.AddLocation("l0", ta.Normal)
	l1 := p.AddLocation("l1", ta.Normal)
	p.AddEdge(ta.Edge{Src: l0, Dst: l1, Sync: ta.Sync{Chan: a.ID, Dir: ta.Emit}})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.CheckDeadlockFree(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Free {
		t.Error("unmatched binary emit must deadlock")
	}
}

// TestFreeClockMergesStates demonstrates the active-clock reduction: without
// freeing, a never-reset auxiliary clock splits otherwise-identical states.
func TestFreeClockMergesStates(t *testing.T) {
	build := func(free bool) *ta.Network {
		n := ta.NewNetwork("merge")
		x := n.AddClock("x")
		y := n.AddClock("y")
		n.EnsureMaxConst(y.ID, 1000)
		v := n.AddVar("v", 0, 0, 3)
		p := n.AddProcess("P")
		l0 := p.AddLocation("l0", ta.Normal, ta.CLE(x, 10))
		e := ta.Edge{Src: l0, Dst: l0, ClockGuard: ta.CEq(x, 10),
			Resets: []ta.Reset{{Clock: x.ID, Value: 0}},
			Update: ta.Set(v, ta.Ite(ta.VarCmp(v, ta.Lt, 3), ta.Plus(ta.V(v), ta.C(1)), ta.C(3)))}
		if free {
			e.Frees = []ta.ClockID{y.ID}
		}
		p.AddEdge(e)
		if err := n.Finalize(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	cWith, _ := NewChecker(build(true))
	cWithout, _ := NewChecker(build(false))
	resWith, err := cWith.Explore(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := cWithout.Explore(Options{MaxStates: 10000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resWith.Stored >= resWithout.Stored {
		t.Errorf("freeing should shrink the zone graph: %d (free) vs %d",
			resWith.Stored, resWithout.Stored)
	}
	// Freed-clock zones must still constrain the other clock normally.
	sup, err := cWith.SupClock(1, func(s *State) bool { return s.Vars[0] == 3 }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Max != dbm.LE(10) {
		t.Errorf("x sup = %v, want <=10", sup.Max)
	}
}

func TestMaxVarTracksQueueDepth(t *testing.T) {
	// Generator at period 3 feeding a 2-unit server: the counter oscillates
	// between 0 and 1.
	n := ta.NewNetwork("depth")
	gx := n.AddClock("gx")
	sx := n.AddClock("sx")
	rec := n.AddVar("rec", 0, 0, 8)
	hurry := n.AddChan("hurry", ta.BroadcastUrgent)
	gen := n.AddProcess("GEN")
	g0 := gen.AddLocation("tick", ta.Normal, ta.CLE(gx, 3))
	gen.AddEdge(ta.Edge{Src: g0, Dst: g0, ClockGuard: ta.CEq(gx, 3),
		Resets: []ta.Reset{{Clock: gx.ID, Value: 0}}, Update: ta.Inc(rec, 1)})
	srv := n.AddProcess("SRV")
	idle := srv.AddLocation("idle", ta.Normal)
	busy := srv.AddLocation("busy", ta.Normal, ta.CLE(sx, 2))
	srv.AddEdge(ta.Edge{Src: idle, Dst: busy, Guard: ta.VarCmp(rec, ta.Gt, 0),
		Sync:   ta.Sync{Chan: hurry.ID, Dir: ta.Emit},
		Resets: []ta.Reset{{Clock: sx.ID, Value: 0}}, Update: ta.Inc(rec, -1)})
	srv.AddEdge(ta.Edge{Src: busy, Dst: idle, ClockGuard: ta.CEq(sx, 2)})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, _ := NewChecker(n)
	res, err := c.MaxVar(rec.ID, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seen || res.Min != 0 || res.Max != 1 {
		t.Errorf("rec range = [%d,%d] seen=%v, want [0,1]", res.Min, res.Max, res.Seen)
	}
}
