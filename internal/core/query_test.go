package core

import (
	"testing"

	"repro/internal/ta"
)

func queryNet(t *testing.T) *ta.Network {
	t.Helper()
	n := ta.NewNetwork("q")
	n.AddVar("rec", 0, 0, 9)
	n.AddVar("m", -1, -1, 9)
	p := n.AddProcess("SRV")
	p.AddLocation("idle", ta.Normal)
	p.AddLocation("busy", ta.Normal)
	q := n.AddProcess("OBS")
	q.AddLocation("watch", ta.Normal)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParsePredicateAtoms(t *testing.T) {
	n := queryNet(t)
	s := &State{Locs: []ta.LocID{1, 0}, Vars: []int64{3, -1}}
	cases := []struct {
		in   string
		want bool
	}{
		{"SRV.busy", true},
		{"SRV.idle", false},
		{"OBS.watch", true},
		{"rec == 3", true},
		{"rec != 3", false},
		{"rec >= 3", true},
		{"rec > 3", false},
		{"rec < 9", true},
		{"rec <= 2", false},
		{"m == -1", true},
		{"SRV.busy && rec == 3", true},
		{"SRV.busy && rec == 4", false},
		{"SRV.idle && rec == 3", false},
	}
	for _, c := range cases {
		pred, err := ParsePredicate(n, c.in)
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", c.in, err)
			continue
		}
		if got := pred(s); got != c.want {
			t.Errorf("%q = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParsePredicateErrors(t *testing.T) {
	n := queryNet(t)
	for _, in := range []string{
		"", "GHOST.idle", "SRV.nowhere", "nonsense",
		"rec == lots", "unknownvar == 3", "&&",
	} {
		if _, err := ParsePredicate(n, in); err == nil {
			t.Errorf("ParsePredicate(%q) should fail", in)
		}
	}
}

func TestFindClock(t *testing.T) {
	n := ta.NewNetwork("c")
	x := n.AddClock("x")
	n.AddProcess("P").AddLocation("l", ta.Normal)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := FindClock(n, "x")
	if err != nil || got.ID != x.ID {
		t.Errorf("FindClock(x) = %v, %v", got, err)
	}
	if _, err := FindClock(n, "nope"); err == nil {
		t.Error("unknown clock must fail")
	}
}
