package core

// SetLegacyEnumerator routes every enumeration of checker c — successors and
// the urgency test — through the retained pre-index per-channel rescan
// (succ_scan.go). Test-only: external differential-oracle tests (package
// core_test) drive case-study networks through both enumerators and assert
// identical verdicts, sup values, stats, and replayed traces.
func SetLegacyEnumerator(c *Checker, on bool) { c.eng.legacyScan = on }
