//go:build faultinject

// Package faultinject is the build-tag-gated chaos harness of the analysis
// stack. Compiled with -tags faultinject it lets tests arm faults (panic,
// injected error, artificial delay) at named sites that core and serve have
// threaded through their hot paths; compiled without the tag (the default,
// faultinject_off.go) every hook is a constant-false branch that the compiler
// deletes, so production binaries carry zero overhead and zero risk.
//
// Sites are plain strings agreed between the instrumented code and the chaos
// tests:
//
//	core/worker    — fired once per expansion in the explorer worker loop
//	serve/job      — fired when a job transitions to running, before its sweep
//	serve/dispatch — fired as a proxy job starts routing to its owner node;
//	                 an injected error degrades the dispatch to local compute,
//	                 a panic is contained like any other job crash
//
// The registry is concurrency-safe: chaos tests run parallel sweeps under
// -race while the armed fault fires on some worker.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether the binary was built with the faultinject tag.
// Instrumented code guards every hook with `if faultinject.Enabled` so the
// untagged build eliminates the calls entirely.
const Enabled = true

// Kind selects what an armed fault does when it fires.
type Kind int

const (
	// KindPanic panics with the fault's Err (or the site name) — the
	// crash-containment scenario.
	KindPanic Kind = iota
	// KindError makes Fire return the fault's Err — the alloc-failure /
	// internal-error scenario.
	KindError
	// KindDelay sleeps for the fault's Delay and keeps going — the
	// slow-worker scenario.
	KindDelay
)

// Fault is one armed fault.
type Fault struct {
	Kind Kind
	// After skips this many hits of the site before the fault fires; 0 fires
	// on the first hit. KindPanic and KindError fire once and disarm;
	// KindDelay fires on every hit past After.
	After int64
	// Delay is the sleep of a KindDelay fault.
	Delay time.Duration
	// Err is the panic value of KindPanic and the return of KindError; nil
	// defaults to a site-named error.
	Err error
}

type armed struct {
	fault Fault
	hits  atomic.Int64
	fired atomic.Bool
}

var (
	mu    sync.RWMutex
	sites = map[string]*armed{}
)

// Set arms a fault at the named site, replacing any previous one.
func Set(site string, f Fault) {
	mu.Lock()
	sites[site] = &armed{fault: f}
	mu.Unlock()
}

// Clear disarms the named site.
func Clear(site string) {
	mu.Lock()
	delete(sites, site)
	mu.Unlock()
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	sites = map[string]*armed{}
	mu.Unlock()
}

// siteError is the default error minted for a site with no explicit Err.
type siteError string

func (e siteError) Error() string { return "faultinject: fault at " + string(e) }

// Fire triggers the site: it panics, returns an error, or sleeps according
// to the armed fault, and returns nil when the site is disarmed or still
// within its After window.
func Fire(site string) error {
	mu.RLock()
	a := sites[site]
	mu.RUnlock()
	if a == nil {
		return nil
	}
	if a.hits.Add(1) <= a.fault.After {
		return nil
	}
	err := a.fault.Err
	if err == nil {
		err = siteError(site)
	}
	switch a.fault.Kind {
	case KindPanic:
		if a.fired.CompareAndSwap(false, true) {
			panic(err)
		}
	case KindError:
		if a.fired.CompareAndSwap(false, true) {
			return err
		}
	case KindDelay:
		time.Sleep(a.fault.Delay)
	}
	return nil
}
