//go:build !faultinject

package faultinject

import "time"

// Enabled is false in the default build: every `if faultinject.Enabled`
// guard is a constant-false branch the compiler deletes, so instrumented
// sites cost nothing outside chaos testing.
const Enabled = false

// Kind mirrors the tagged build so instrumentation compiles either way.
type Kind int

const (
	KindPanic Kind = iota
	KindError
	KindDelay
)

// Fault mirrors the tagged build.
type Fault struct {
	Kind  Kind
	After int64
	Delay time.Duration
	Err   error
}

// Set is a no-op without the faultinject tag.
func Set(string, Fault) {}

// Clear is a no-op without the faultinject tag.
func Clear(string) {}

// Reset is a no-op without the faultinject tag.
func Reset() {}

// Fire is a no-op without the faultinject tag; it inlines to nil.
func Fire(string) error { return nil }
