package dbm

import (
	"math"
	"testing"
)

// mkZone builds a small canonical zone: x1 ∈ [lo, hi], other clocks free-ish.
func mkZone(t *testing.T, dim int, lo, hi int64) *DBM {
	t.Helper()
	z := New(dim)
	z.Up()
	if !z.Constrain(1, 0, LE(hi)) || !z.Constrain(0, 1, LE(-lo)) {
		t.Fatalf("zone [%d,%d] empty", lo, hi)
	}
	return z
}

// scaleZone multiplies every finite bound value by lambda. For lambda ≥ 1
// this preserves canonical form: bound comparison and path addition both
// commute with scaling the values (the weak bits are untouched), so every
// triangle inequality of the closure survives. The fuzzers use it to push
// small generated zones into the 32- and 64-bit encoding widths.
func scaleZone(d *DBM, lambda int64) *DBM {
	s := d.Copy()
	for i := range s.m {
		if s.m[i] != Infinity {
			s.m[i] = MakeBound(s.m[i].Value()*lambda, s.m[i].Weak())
		}
	}
	return s
}

func TestCompactRoundTripWidths(t *testing.T) {
	base := mkZone(t, 3, 2, 9)
	for _, tc := range []struct {
		name   string
		lambda int64
		width  int
	}{
		{"16bit", 1, 2},
		{"32bit", 1 << 14, 4},
		{"64bit", 1 << 33, 8},
	} {
		z := scaleZone(base, tc.lambda)
		c := EncodeCompact(z, nil)
		if c.Width() != tc.width {
			t.Errorf("%s: width = %d, want %d", tc.name, c.Width(), tc.width)
		}
		if c.Dim() != z.Dim() {
			t.Errorf("%s: dim = %d, want %d", tc.name, c.Dim(), z.Dim())
		}
		if c.Score() != InclusionScore(z) {
			t.Errorf("%s: score = %d, want %d", tc.name, c.Score(), InclusionScore(z))
		}
		if got := c.Decode(); !got.Eq(z) {
			t.Errorf("%s: round trip diverges:\n got %s\nwant %s", tc.name, got, z)
		}
		into := New(z.Dim())
		c.DecodeInto(into)
		if !into.Eq(z) {
			t.Errorf("%s: DecodeInto diverges", tc.name)
		}
		if len(c) != compactHeader+z.Dim()*z.Dim()*tc.width {
			t.Errorf("%s: len = %d, want %d", tc.name, len(c), compactHeader+z.Dim()*z.Dim()*tc.width)
		}
	}
}

// TestCompactSentinelBoundary pins the width escape at the sentinel edge: an
// encoded bound equal to MaxInt16 (the 16-bit Infinity sentinel) must force
// the 32-bit width, never be stored as a false Infinity.
func TestCompactSentinelBoundary(t *testing.T) {
	z := mkZone(t, 2, 0, (math.MaxInt16-1)/2) // encoded LE bound = MaxInt16
	if b := z.At(1, 0); int64(b) != math.MaxInt16 {
		t.Fatalf("setup: encoded bound = %d, want %d", int64(b), math.MaxInt16)
	}
	c := EncodeCompact(z, nil)
	if c.Width() != 4 {
		t.Errorf("width = %d, want 4 (sentinel collision must escape)", c.Width())
	}
	if !c.Decode().Eq(z) {
		t.Error("sentinel-boundary zone corrupted by round trip")
	}
}

func TestCompactInclusionAgainstFull(t *testing.T) {
	small := mkZone(t, 3, 3, 7)
	big := mkZone(t, 3, 2, 9)
	other := mkZone(t, 3, 8, 20) // overlaps big, neither includes the other
	for _, lambda := range []int64{1, 1 << 14, 1 << 33} {
		s, b, o := scaleZone(small, lambda), scaleZone(big, lambda), scaleZone(other, lambda)
		cb := EncodeCompact(b, nil)
		if !cb.ContainsDBM(s) {
			t.Errorf("λ=%d: ContainsDBM: small ⊆ big must hold", lambda)
		}
		if cb.ContainsDBM(o) {
			t.Errorf("λ=%d: ContainsDBM: other ⊄ big", lambda)
		}
		if cb.SubsetEqDBM(s) {
			t.Errorf("λ=%d: SubsetEqDBM: big ⊄ small", lambda)
		}
		if !cb.SubsetEqDBM(b) {
			t.Errorf("λ=%d: SubsetEqDBM: big ⊆ big must hold", lambda)
		}
		cs := EncodeCompact(s, nil)
		if !cs.SubsetEqDBM(b) {
			t.Errorf("λ=%d: SubsetEqDBM: small ⊆ big must hold", lambda)
		}
		// Score monotonicity, the admission pre-filter's soundness condition.
		if InclusionScore(s) > cb.Score() {
			t.Errorf("λ=%d: score(small)=%d > score(big)=%d despite inclusion",
				lambda, InclusionScore(s), cb.Score())
		}
	}
}

// TestCompactInfinityEntries checks both directions across Infinity: a
// packed Infinity admits anything, and a packed Infinity is only included in
// a full-DBM Infinity.
func TestCompactInfinityEntries(t *testing.T) {
	free := New(2)
	free.Up() // x1 unbounded above: entry (1,0) is Infinity
	capped := mkZone(t, 2, 0, 5)
	cf := EncodeCompact(free, nil)
	if cf.Width() != 2 {
		t.Fatalf("width = %d, want 2 (Infinity is the sentinel, not a wide value)", cf.Width())
	}
	if !cf.ContainsDBM(capped) {
		t.Error("capped ⊆ free must hold")
	}
	if cf.SubsetEqDBM(capped) {
		t.Error("free ⊄ capped: packed Infinity must not fit a finite bound")
	}
	if !cf.SubsetEqDBM(free) {
		t.Error("free ⊆ free must hold")
	}
	if EncodeCompact(capped, nil).ContainsDBM(free) {
		t.Error("free ⊄ capped (full Infinity vs packed finite)")
	}
}

func TestCompactPoolRecycles(t *testing.T) {
	p := NewCompactPool()
	z := mkZone(t, 3, 1, 6)
	c1 := EncodeCompact(z, p)
	p.Put(c1)
	c2 := EncodeCompact(mkZone(t, 3, 2, 8), p)
	if gets, reuses := p.Stats(); gets != 2 || reuses != 1 {
		t.Errorf("pool stats = (%d, %d), want (2, 1)", gets, reuses)
	}
	if &c1[0] != &c2[0] {
		t.Error("same-class encode must reuse the released buffer")
	}
	if !c2.Decode().Eq(mkZone(t, 3, 2, 8)) {
		t.Error("recycled buffer holds wrong contents")
	}
	// A different size class must not collide with the recycled buffer.
	c3 := EncodeCompact(mkZone(t, 7, 1, 6), p)
	if c3.Dim() != 7 || !c3.Decode().Eq(mkZone(t, 7, 1, 6)) {
		t.Error("cross-class encode corrupted")
	}
}

// FuzzCompactRoundTrip is the encode/decode identity oracle: any canonical
// zone the exploration could produce — pushed through all three widths via
// value scaling — must decode bit-identically, with the header dimension and
// inclusion score matching the full form.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	// Wide dimension with frees: Infinity sentinels in every row.
	f.Add([]byte{4, 1, 4, 1, 4, 2, 4, 3, 9, 2, 1, 30})
	// Scale selector high: 64-bit escape path.
	f.Add([]byte{250, 2, 0, 1, 2, 9, 2, 1, 30, 0, 3, 1, 5})
	// Mid scale: 32-bit payload.
	f.Add([]byte{129, 3, 0, 2, 1, 10, 5, 1, 2, 2, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		scale := int64(1)
		switch r.next() % 3 {
		case 1:
			scale = 1 << 14
		case 2:
			scale = 1 << 33
		}
		dim := 2 + int(r.next())%5
		z := scaleZone(buildFuzzZone(r, dim), scale)
		c := EncodeCompact(z, nil)
		if c.Dim() != dim {
			t.Fatalf("header dim = %d, want %d", c.Dim(), dim)
		}
		if c.Score() != InclusionScore(z) {
			t.Fatalf("header score = %d, want %d", c.Score(), InclusionScore(z))
		}
		if got := c.Decode(); !got.Eq(z) {
			t.Fatalf("round trip diverges (width %d):\n got %s\nwant %s", c.Width(), got, z)
		}
		// Round trip again through a pooled buffer: recycling must not leak
		// stale bytes into a fresh encode.
		p := NewCompactPool()
		p.Put(EncodeCompact(z, p))
		if got := EncodeCompact(z, p).Decode(); !got.Eq(z) {
			t.Fatalf("pooled round trip diverges:\n got %s\nwant %s", got, z)
		}
	})
}

// FuzzCompactSubsetEq is the differential inclusion oracle: both packed
// inclusion directions (ContainsDBM, SubsetEqDBM) must agree with full-DBM
// SubsetEq on arbitrary canonical zone pairs at every width, and the header
// score must stay monotone under inclusion (the admission pre-filter's
// soundness condition).
func FuzzCompactSubsetEq(f *testing.F) {
	f.Add([]byte{0})
	// A pair where one strictly includes the other.
	f.Add([]byte{1, 0, 2, 1, 9, 2, 1, 30, 0, 0, 2, 1, 5, 2, 1, 12})
	// Incomparable pair at the 32-bit width.
	f.Add([]byte{130, 2, 5, 2, 1, 3, 0, 3, 1, 5, 12, 40, 7, 0, 8, 1, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		scale := int64(1)
		switch r.next() % 3 {
		case 1:
			scale = 1 << 14
		case 2:
			scale = 1 << 33
		}
		dim := 2 + int(r.next())%5
		z := scaleZone(buildFuzzZone(r, dim), scale)
		o := scaleZone(buildFuzzZone(r, dim), scale)
		c := EncodeCompact(z, nil)
		if got, want := c.ContainsDBM(o), o.SubsetEq(z); got != want {
			t.Fatalf("ContainsDBM = %v, full SubsetEq = %v\n z=%s\n o=%s", got, want, z, o)
		}
		if got, want := c.SubsetEqDBM(o), z.SubsetEq(o); got != want {
			t.Fatalf("SubsetEqDBM = %v, full SubsetEq = %v\n z=%s\n o=%s", got, want, z, o)
		}
		if o.SubsetEq(z) && InclusionScore(o) > c.Score() {
			t.Fatalf("score not monotone: score(o)=%d > score(z)=%d despite o ⊆ z\n z=%s\n o=%s",
				InclusionScore(o), c.Score(), z, o)
		}
		if z.SubsetEq(o) && c.Score() > InclusionScore(o) {
			t.Fatalf("score not monotone: score(z)=%d > score(o)=%d despite z ⊆ o\n z=%s\n o=%s",
				c.Score(), InclusionScore(o), z, o)
		}
	})
}
