package dbm

// Touched is a small set of clock indices used by the incremental
// canonicalization API (CloseTouched, CloseRows) to record which rows and
// columns of a DBM an operation modified, so that re-canonicalization can be
// restricted to them instead of re-running the full O(n³) Floyd–Warshall.
//
// A Touched is reusable scratch: Reset costs O(elements added), Add and Has
// are O(1), and after the initial allocation no operation allocates — the
// exploration hot loop keeps one per worker (in its succCtx) under the same
// recycling rules as pooled zones. A Touched is NOT safe for concurrent use.
type Touched struct {
	mark []bool
	list []int32
}

// NewTouched returns an empty set for DBMs of the given dimension.
func NewTouched(dim int) *Touched {
	if dim < 1 {
		panic("dbm: touched dimension must include the reference clock")
	}
	return &Touched{mark: make([]bool, dim), list: make([]int32, 0, dim)}
}

// Reset empties the set, keeping its storage.
func (t *Touched) Reset() {
	for _, c := range t.list {
		t.mark[c] = false
	}
	t.list = t.list[:0]
}

// Add inserts clock c; duplicates are ignored.
func (t *Touched) Add(c int) {
	if !t.mark[c] {
		t.mark[c] = true
		t.list = append(t.list, int32(c))
	}
}

// Has reports whether clock c is in the set.
func (t *Touched) Has(c int) bool { return t.mark[c] }

// Len returns the number of distinct clocks recorded.
func (t *Touched) Len() int { return len(t.list) }

// Clocks returns the recorded clocks in insertion order. The slice aliases
// the set's storage and is invalidated by Reset and Add.
func (t *Touched) Clocks() []int32 { return t.list }
