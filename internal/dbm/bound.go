// Package dbm implements difference bound matrices (DBMs), the canonical
// symbolic representation of clock zones used by UPPAAL-style timed-automata
// model checkers.
//
// A zone is a conjunction of constraints of the form xi - xj ≺ c with
// ≺ ∈ {<, ≤} over a set of clocks x1..xn plus the reference clock x0 which is
// always exactly 0. A DBM stores one bound per ordered clock pair in a dense
// (n+1)×(n+1) matrix. All algorithms follow the classical presentation in
// Bengtsson & Yi, "Timed Automata: Semantics, Algorithms and Tools".
package dbm

import (
	"fmt"
	"math"
)

// Bound is a single difference bound (c, ≺) encoded in one int64 so that the
// natural integer order coincides with bound tightness:
//
//	encode(c, <)  = 2c
//	encode(c, ≤)  = 2c + 1
//
// Hence (<, c) is strictly tighter than (≤, c) which is tighter than (<, c+1),
// and comparing encoded values compares bounds. Infinity is a distinguished
// maximal value.
type Bound int64

// Infinity is the absent constraint xi - xj < ∞.
const Infinity Bound = math.MaxInt64

// LEZero is the bound (≤, 0), the diagonal value of every canonical DBM.
const LEZero Bound = 1

// LTZero is the bound (<, 0); a diagonal entry below LEZero signals emptiness.
const LTZero Bound = 0

// MakeBound encodes the bound (value ≺) where weak selects ≤ (true) or < (false).
func MakeBound(value int64, weak bool) Bound {
	if weak {
		return Bound(value<<1 | 1)
	}
	return Bound(value << 1)
}

// LE returns the non-strict bound (≤, value).
func LE(value int64) Bound { return MakeBound(value, true) }

// LT returns the strict bound (<, value).
func LT(value int64) Bound { return MakeBound(value, false) }

// Value returns the numeric constant of the bound. It must not be called on
// Infinity.
func (b Bound) Value() int64 { return int64(b) >> 1 }

// Weak reports whether the bound is non-strict (≤).
func (b Bound) Weak() bool { return b != Infinity && b&1 == 1 }

// Strict reports whether the bound is strict (<).
func (b Bound) Strict() bool { return b == Infinity || b&1 == 0 }

// Add combines two bounds along a path: (c1,≺1) + (c2,≺2) = (c1+c2, ≺) where
// ≺ is ≤ only if both inputs are ≤. Adding anything to Infinity is Infinity.
func Add(a, b Bound) Bound {
	if a == Infinity || b == Infinity {
		return Infinity
	}
	// Sum the payloads and keep the conjunction of the weak bits.
	return a + b - ((a | b) & 1)
}

// addFin is Add for operands already known finite: the closure inner loops
// hoist the infinity tests out of the hot path, and the encoding-dependent
// sum lives here, next to Add, rather than copied into each loop.
func addFin(a, b Bound) Bound { return a + b - ((a | b) & 1) }

// Min returns the tighter of two bounds.
func Min(a, b Bound) Bound {
	if a < b {
		return a
	}
	return b
}

// Negate returns the exclusive complement of a bound: the tightest bound on
// xj - xi that contradicts (c, ≺) on xi - xj. Negate(≤ c) = (< -c) and
// Negate(< c) = (≤ -c). Negate must not be called on Infinity.
func Negate(b Bound) Bound {
	return MakeBound(-b.Value(), b.Strict())
}

// String renders the bound as "<c", "<=c" or "inf".
func (b Bound) String() string {
	if b == Infinity {
		return "inf"
	}
	if b.Weak() {
		return fmt.Sprintf("<=%d", b.Value())
	}
	return fmt.Sprintf("<%d", b.Value())
}
